package sharper_test

import (
	"strings"
	"testing"
	"time"

	"sharper"
)

// TestBatchSizeRejected pins the explicit Options validation: batches wider
// than the 64-bit cross-shard validity bitmap used to be silently capped;
// now they are an error at construction.
func TestBatchSizeRejected(t *testing.T) {
	_, err := sharper.New(sharper.Options{
		Model:     sharper.CrashOnly,
		Clusters:  2,
		F:         1,
		BatchSize: sharper.MaxBatchSize + 1,
	})
	if err == nil {
		t.Fatalf("BatchSize %d accepted", sharper.MaxBatchSize+1)
	}
	if !strings.Contains(err.Error(), "64") {
		t.Fatalf("error does not name the cap: %v", err)
	}

	net, err := sharper.New(sharper.Options{
		Model:     sharper.CrashOnly,
		Clusters:  2,
		F:         1,
		BatchSize: sharper.MaxBatchSize,
	})
	if err != nil {
		t.Fatalf("BatchSize %d rejected: %v", sharper.MaxBatchSize, err)
	}
	net.Close()
}

// TestTCPTransportOption runs the public API end to end over real loopback
// sockets: same Options surface, real wire underneath.
func TestTCPTransportOption(t *testing.T) {
	net, err := sharper.New(sharper.Options{
		Model:     sharper.CrashOnly,
		Clusters:  2,
		F:         1,
		Transport: sharper.TransportTCP,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()

	c := net.NewClient()
	if res, err := c.Transfer(net.AccountInShard(0, 0), net.AccountInShard(0, 1), 10); err != nil || !res.Committed {
		t.Fatalf("intra-shard over TCP: %+v, %v", res, err)
	}
	res, err := c.Transfer(net.AccountInShard(0, 0), net.AccountInShard(1, 0), 10)
	if err != nil || !res.Committed {
		t.Fatalf("cross-shard over TCP: %+v, %v", res, err)
	}
	if !res.CrossShard {
		t.Fatal("transfer between shards not marked cross-shard")
	}
	// Verify needs a quiesced network: the initiator cluster replies to the
	// client before the other involved cluster's replicas finish applying
	// the decision, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := net.Verify()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger audit: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
