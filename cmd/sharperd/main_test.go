package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sharper/internal/core"
	"sharper/internal/crypto"
	"sharper/internal/ledger"
	"sharper/internal/transport"
	"sharper/internal/transport/tcpnet"
	"sharper/internal/types"
)

// TestMain doubles as the replica entry point for the multi-process test:
// the test re-execs its own binary with SHARPERD_TEST_ROLE=replica, which
// runs one real sharperd replica process until killed — the same code path
// as `sharperd -topology FILE -node N`.
func TestMain(m *testing.M) {
	if os.Getenv("SHARPERD_TEST_ROLE") == "replica" {
		tf, err := ParseTopologyFile(os.Getenv("SHARPERD_TEST_TOPO"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		id, err := strconv.Atoi(os.Getenv("SHARPERD_TEST_NODE"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Runs until the parent kills it; SIGTERM triggers a clean shutdown
		// (which dumps the protocol trace when SHARPERD_DEBUG is set).
		stop := make(chan struct{})
		go func() {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, syscall.SIGTERM)
			<-sig
			close(stop)
		}()
		// CI oversubscription (multiple heavy test packages sharing the CPU
		// with 12 replica processes) can stall commit delivery for seconds;
		// the §3.2 lock expiry must dominate it or late cross-shard commits
		// become unappendable (see DESIGN.md, "Durable storage").
		lockTimeout, _ := time.ParseDuration(os.Getenv("SHARPERD_TEST_LOCK"))
		if err := runReplica(tf, types.NodeID(id), replicaOptions{
			Seed: 1, Batch: 1, Accounts: 256, Balance: 1 << 30,
			DataDir:     os.Getenv("SHARPERD_TEST_DATA"), // "" = in-memory
			LockTimeout: lockTimeout,
			// Trace every transaction so the driver's metrics roll-up has
			// stage latencies to report; one process also serves /metrics.
			TraceSample: 1,
			MetricsAddr: os.Getenv("SHARPERD_TEST_METRICS"),
		}, stop, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// freeAddrs reserves n distinct loopback ports by briefly listening on :0.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestMultiProcessDeployment boots a 4-cluster crash-model deployment as 12
// separate sharperd OS processes on loopback, drives a mixed intra-/cross-
// shard workload against it, and audits the assembled ledger DAG fetched
// over the wire — the acceptance scenario for the TCP backend.
func TestMultiProcessDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test is not -short")
	}
	const clusters, f = 4, 1
	size := types.CrashOnly.ClusterSize(f)
	total := clusters * size

	addrs := freeAddrs(t, total+1)
	metricsAddr := addrs[total]
	addrs = addrs[:total]
	var topo strings.Builder
	fmt.Fprintf(&topo, "model crash\nf %d\nsecret multiproc-test\n", f)
	for c := 0; c < clusters; c++ {
		fmt.Fprintf(&topo, "cluster %d %s\n", c, strings.Join(addrs[c*size:(c+1)*size], " "))
	}
	topoPath := filepath.Join(t.TempDir(), "topo.txt")
	if err := os.WriteFile(topoPath, []byte(topo.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTopologyFile(topoPath)
	if err != nil {
		t.Fatal(err)
	}

	// One OS process per replica.
	var replicaLogs []*bytes.Buffer
	var replicaCmds []*exec.Cmd
	for id := 0; id < total; id++ {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"SHARPERD_TEST_ROLE=replica",
			"SHARPERD_TEST_TOPO="+topoPath,
			"SHARPERD_TEST_NODE="+strconv.Itoa(id),
			"SHARPERD_TEST_LOCK=10s", // dominate oversubscribed commit delivery
			"SHARPERD_DEBUG=1",
			"SHARPER_TRACE=1",
		)
		if id == 0 {
			cmd.Env = append(cmd.Env, "SHARPERD_TEST_METRICS="+metricsAddr)
		}
		log := &bytes.Buffer{}
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn replica %d: %v", id, err)
		}
		replicaLogs = append(replicaLogs, log)
		replicaCmds = append(replicaCmds, cmd)
		proc := cmd.Process
		t.Cleanup(func() {
			proc.Kill()
			cmd.Wait()
		})
	}

	// The driver runs in-process through the exact function `sharperd
	// -topology ... -drive` dispatches to; its ConnectAll waits for the
	// replica processes to come up.
	var out bytes.Buffer
	err = runDriver(tf, driverOptions{
		Clients:        8,
		CrossPct:       20,
		Duration:       2 * time.Second,
		Seed:           1,
		Accounts:       256,
		ConnectTimeout: 20 * time.Second,
	}, &out)
	if err != nil {
		t.Log(debugChainLengths(tf))
		// Graceful shutdown dumps each replica's protocol trace.
		for _, cmd := range replicaCmds {
			cmd.Process.Signal(syscall.SIGTERM)
		}
		time.Sleep(2 * time.Second)
		for i, log := range replicaLogs {
			if log.Len() > 0 {
				t.Logf("replica %d: %s", i, log.String())
			}
		}
		t.Fatalf("driver: %v\noutput:\n%s", err, out.String())
	}

	got := out.String()
	if !strings.Contains(got, "ledger audit: all views consistent") {
		t.Fatalf("driver output missing audit line:\n%s", got)
	}
	// A healthy 2s run commits far more than this; the floor just guards
	// against an accidentally idle deployment passing the audit vacuously.
	committed, crossShard := parseTotals(t, got)
	if committed < 50 {
		t.Fatalf("suspiciously few commits (%d):\n%s", committed, got)
	}
	if crossShard == 0 {
		t.Fatalf("no cross-shard transactions committed:\n%s", got)
	}

	// The driver's closing audit must have assembled the fleet metrics
	// roll-up over the wire, stage latencies included (every replica ran
	// with TraceSample 1).
	if !strings.Contains(got, "metrics: committed=") {
		t.Fatalf("driver output missing metrics roll-up:\n%s", got)
	}
	for _, series := range []string{"intra", "cross"} {
		if !strings.Contains(got, "metrics: "+series+" commit latency") {
			t.Fatalf("driver metrics roll-up missing %s latency line:\n%s", series, got)
		}
	}

	// Replica 0 serves Prometheus text on its -metrics address; the replica
	// processes outlive the driver, so scrape it now.
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("scrape replica 0 metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read metrics body: %v", err)
	}
	for _, want := range []string{"sharper_committed_txs", "sharper_stage_intra_total_us", "sharper_link_sent{peer="} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestMultiProcessRestart is the durability acceptance scenario: a
// 12-process deployment with -data directories takes kill -9 of one replica
// per cluster mid-workload; the killed replicas are restarted over their
// storage directories, recover chain + state from disk, rejoin via chain
// sync, and the deployment keeps committing — the wire-fetched DAG audit
// must find every view consistent and divergence-free.
func TestMultiProcessRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process restart test is not -short")
	}
	const clusters, f = 4, 1
	size := types.CrashOnly.ClusterSize(f)
	total := clusters * size

	addrs := freeAddrs(t, total)
	var topo strings.Builder
	fmt.Fprintf(&topo, "model crash\nf %d\nsecret restart-test\n", f)
	for c := 0; c < clusters; c++ {
		fmt.Fprintf(&topo, "cluster %d %s\n", c, strings.Join(addrs[c*size:(c+1)*size], " "))
	}
	tmp := t.TempDir()
	topoPath := filepath.Join(tmp, "topo.txt")
	if err := os.WriteFile(topoPath, []byte(topo.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTopologyFile(topoPath)
	if err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(tmp, "data")

	logs := make(map[int]*syncBuffer)
	cmds := make(map[int]*exec.Cmd)
	spawn := func(id int) {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"SHARPERD_TEST_ROLE=replica",
			"SHARPERD_TEST_TOPO="+topoPath,
			"SHARPERD_TEST_NODE="+strconv.Itoa(id),
			"SHARPERD_TEST_DATA="+dataDir,
			"SHARPERD_TEST_LOCK=10s", // dominate oversubscribed commit delivery
		)
		log := &syncBuffer{}
		cmd.Stdout = log
		cmd.Stderr = log
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn replica %d: %v", id, err)
		}
		logs[id] = log
		cmds[id] = cmd
		proc := cmd.Process
		t.Cleanup(func() {
			proc.Kill()
			cmd.Wait()
		})
	}
	for id := 0; id < total; id++ {
		spawn(id)
	}

	// One backup per cluster dies mid-workload — a minority everywhere
	// (member 0 is the initial primary; progress never stalls).
	victims := make([]int, 0, clusters)
	for c := 0; c < clusters; c++ {
		victims = append(victims, c*size+2)
	}

	driverDone := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		driverDone <- runDriver(tf, driverOptions{
			Clients:        8,
			CrossPct:       20,
			Duration:       6 * time.Second,
			Seed:           1,
			Accounts:       256,
			ConnectTimeout: 20 * time.Second,
		}, &out)
	}()

	time.Sleep(2500 * time.Millisecond) // let the workload commit real history
	for _, id := range victims {
		if err := cmds[id].Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
			t.Fatalf("kill -9 replica %d: %v", id, err)
		}
		cmds[id].Wait()
	}
	time.Sleep(time.Second) // deployment runs on with a minority down
	restartLogs := make(map[int]*syncBuffer)
	for _, id := range victims {
		spawn(id)
		restartLogs[id] = logs[id]
	}

	if err := <-driverDone; err != nil {
		t.Log(debugChainLengths(tf))
		for id, log := range logs {
			if log.Len() > 0 {
				t.Logf("replica %d: %s", id, log.String())
			}
		}
		t.Fatalf("driver: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "ledger audit: all views consistent") {
		t.Fatalf("driver output missing audit line:\n%s", got)
	}
	committed, crossShard := parseTotals(t, got)
	if committed < 50 {
		t.Fatalf("suspiciously few commits (%d):\n%s", committed, got)
	}
	if crossShard == 0 {
		t.Fatalf("no cross-shard transactions committed:\n%s", got)
	}
	// Every restarted replica must have recovered real history from disk,
	// not restarted empty (which would mean a full resend, not recovery).
	for _, id := range victims {
		if !strings.Contains(restartLogs[id].String(), "recovered") {
			t.Fatalf("replica %d restarted without recovering from %s:\n%s",
				id, dataDir, restartLogs[id].String())
		}
	}
}

// syncBuffer is a bytes.Buffer safe to read while an exec.Cmd's copier
// goroutine still writes it (live replica processes outlast the test body).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// parseTotals extracts the committed and cross-shard counts from the
// driver's "total: N transactions (...), M cross-shard, K failed" line.
func parseTotals(t *testing.T, out string) (committed, crossShard int) {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "total: ") {
			continue
		}
		if _, err := fmt.Sscanf(line, "total: %d transactions", &committed); err != nil {
			t.Fatalf("unparseable total line %q: %v", line, err)
		}
		if i := strings.Index(line, ", "); i >= 0 {
			fmt.Sscanf(line[i+2:], "%d cross-shard", &crossShard)
		}
		return committed, crossShard
	}
	t.Fatalf("no total line in driver output:\n%s", out)
	return 0, 0
}

func TestTopologyFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.txt")
	if err := WriteTopologyFile(path, "127.0.0.1", 7300, 3, 1, types.Byzantine, "s3cret", "multiregion"); err != nil {
		t.Fatal(err)
	}
	tf, err := ParseTopologyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tf.Model != types.Byzantine || tf.F != 1 || tf.Secret != "s3cret" {
		t.Fatalf("header mismatch: %+v", tf)
	}
	if tf.Shaping == nil || tf.Shaping.Default != transport.Multiregion().Default {
		t.Fatalf("link multiregion did not round-trip: %+v", tf.Shaping)
	}
	if len(tf.Topo.Clusters) != 3 {
		t.Fatalf("want 3 clusters, got %d", len(tf.Topo.Clusters))
	}
	size := types.Byzantine.ClusterSize(1)
	if len(tf.Addrs) != 3*size {
		t.Fatalf("want %d addresses, got %d", 3*size, len(tf.Addrs))
	}
	id, ok := tf.NodeByListenAddr("127.0.0.1:7300")
	if !ok || id != 0 {
		t.Fatalf("NodeByListenAddr: id=%v ok=%v", id, ok)
	}
}

func TestTopologyFileRejectsUndersizedCluster(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.txt")
	content := "model byzantine\nf 1\nsecret x\ncluster 0 127.0.0.1:1 127.0.0.1:2 127.0.0.1:3\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTopologyFile(path); err == nil {
		t.Fatal("3-node byzantine f=1 cluster accepted (needs 3f+1=4)")
	}
}

// debugChainLengths fetches every replica's chain length for flake triage.
func debugChainLengths(tf *TopologyFile) string {
	fab, err := tcpnet.New(tcpnet.Config{Peers: tf.Addrs, Secret: crypto.WireKey(tf.Secret)})
	if err != nil {
		return err.Error()
	}
	defer fab.Close()
	var b strings.Builder
	audit := types.ClientIDBase + 500_000
	inbox := fab.Register(audit)
	for _, cid := range tf.Topo.ClusterIDs() {
		var views []*ledger.View
		for _, m := range tf.Topo.Members(cid) {
			v, err := core.FetchView(fab, audit, inbox, m, cid, 400*time.Millisecond)
			if err != nil {
				fmt.Fprintf(&b, "%s/%s: fetch error %v\n", cid, m, err)
				continue
			}
			fmt.Fprintf(&b, "%s/%s: %d blocks head=%s\n", cid, m, v.Len(), v.Head())
			views = append(views, v)
			audit++
			inbox = fab.Register(audit)
		}
		// Report the first index where members' chains diverge, if any.
		for i := 1; i < len(views); i++ {
			a, c := views[0], views[i]
			n := a.Len()
			if c.Len() < n {
				n = c.Len()
			}
			for idx := 0; idx < n; idx++ {
				if a.Block(idx).Hash() != c.Block(idx).Hash() {
					fmt.Fprintf(&b, "%s: DIVERGENCE at block %d between member 0 (%s) and member %d (%s)\n",
						cid, idx, blockTxs(a.Block(idx)), i, blockTxs(c.Block(idx)))
					break
				}
			}
		}
	}
	return b.String()
}

func blockTxs(bl *types.Block) string {
	var b strings.Builder
	for i, tx := range bl.Txs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(tx.ID.String())
	}
	fmt.Fprintf(&b, " inv=%s", bl.Involved())
	return b.String()
}

func TestTopologyFileRejectsLateFaultBound(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.txt")
	content := "model crash\nsecret x\ncluster 0 127.0.0.1:1 127.0.0.1:2 127.0.0.1:3\nf 2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTopologyFile(path); err == nil {
		t.Fatal("f directive after cluster lines accepted (earlier clusters would get the wrong quorums)")
	}
}
