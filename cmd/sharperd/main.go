// Command sharperd runs SharPer. It has three modes:
//
// Single process (the quickest way to watch the system work) — build a full
// deployment in-process, on the simulated fabric or over real loopback TCP
// sockets, drive it with a configurable workload, and print live throughput
// plus a final ledger audit:
//
//	sharperd -model crash -clusters 4 -f 1 -cross 10 -clients 16 -duration 5s
//	sharperd -transport tcp -clusters 4 -f 1 -duration 5s
//
// Add -gateway to either single-process variant (or to -drive) to issue the
// workload through the client-ingress plane — shard-routed submits into
// per-shard mempool gateways — instead of the direct request path; admission
// sheds are counted and printed:
//
//	sharperd -gateway -transport tcp -clusters 4 -f 1 -duration 5s
//
// Replica process — run ONE replica of a multi-process deployment described
// by a topology file (every process is started from the same file; node
// identity is derived from -listen or given with -node):
//
//	sharperd -topology topo.txt -listen 127.0.0.1:7100
//
// Client driver — attach to a running multi-process deployment, issue a
// mixed intra-/cross-shard workload, then fetch every cluster's chain over
// the sync protocol and audit the assembled DAG:
//
//	sharperd -topology topo.txt -drive -clients 16 -duration 5s
//
// Scaffold a topology file with -topology-init:
//
//	sharperd -topology topo.txt -topology-init -clusters 4 -f 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"sharper"
	"sharper/internal/core"
	"sharper/internal/crypto"
	"sharper/internal/ledger"
	"sharper/internal/obs"
	"sharper/internal/state"
	"sharper/internal/storage"
	"sharper/internal/transport"
	"sharper/internal/transport/tcpnet"
	"sharper/internal/types"
	"sharper/internal/workload"
)

func main() {
	model := flag.String("model", "crash", "failure model: crash or byzantine")
	clusters := flag.Int("clusters", 4, "number of clusters (= shards)")
	f := flag.Int("f", 1, "per-cluster fault bound")
	cross := flag.Int("cross", 10, "percent cross-shard transactions")
	clients := flag.Int("clients", 16, "closed-loop clients")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	seed := flag.Int64("seed", 1, "random seed")
	batch := flag.Int("batch", 1, "max transactions per block (1 = the paper's single-tx blocks)")
	showDAG := flag.Bool("dag", false, "print the ledger DAG at the end")
	transportKind := flag.String("transport", "sim", "single-process fabric: sim or tcp")
	accounts := flag.Int("accounts", 1024, "accounts seeded per shard at genesis")
	balance := flag.Int64("balance", 1<<40, "initial balance of each seeded account")
	dataDir := flag.String("data", "", "durable storage base directory (each replica uses DIR/node-<id>); a killed replica restarted with the same -data recovers in place")
	syncPolicy := flag.String("sync", "group", "WAL fsync policy: none, group, or always")
	lockTimeout := flag.Duration("lock-timeout", 0, "cross-shard lock expiry, the §3.2 'pre-determined time' (0 = default 3s); must dominate worst-case commit delivery in your environment")
	serializeCross := flag.Bool("serialize-cross", false, "restore the legacy serialized cross-shard scheduler (whole-node lock, drain-gated initiation) for A/B comparison")
	inlineCommit := flag.Bool("inline-commit", false, "restore the pre-pipeline synchronous commit path (apply, persist, and reply on the event loop) for A/B comparison")
	gateway := flag.Bool("gateway", false, "issue the workload through the client-ingress plane (shard-routed submits into per-shard mempool gateways) instead of the direct request path; admission sheds are counted and printed")
	slash := flag.Bool("slash", false, "arm the equivocation-detecting auditor on every replica; the driver and local modes print an offender report from the collected fraud proofs")
	ed25519 := flag.Bool("ed25519", false, "byzantine model: use ed25519 signatures instead of HMAC, making -slash fraud proofs verifiable by third parties holding only public keys")
	shapeSpec := flag.String("shape", "", "link shaping: 'multiregion' (the paper's cross-datacenter WAN) or a spec like 'delay 30ms bw 200Mbps loss 0.001' applied to every link; in topology modes it overrides the file's link directives, with -topology-init it is written into the file")
	verifyWindow := flag.Int("verify-window", 0, "signature batch-verification window per node (1 = strictly per signature; 0 = SHARPER_VERIFY_WINDOW or the built-in default)")

	topoPath := flag.String("topology", "", "topology file: run as one process of a multi-process deployment")
	topoInit := flag.Bool("topology-init", false, "write a fresh topology file (with -clusters, -f, -model) and exit")
	listen := flag.String("listen", "", "replica mode: run the node whose topology address is this")
	nodeID := flag.Int("node", -1, "replica mode: run this node id (alternative to -listen)")
	drive := flag.Bool("drive", false, "driver mode: issue workload against a running multi-process deployment")
	host := flag.String("host", "127.0.0.1", "host for -topology-init addresses")
	basePort := flag.Int("base-port", 7100, "first port for -topology-init addresses")
	secret := flag.String("secret", "sharper-demo", "wire secret for -topology-init")
	driverIdx := flag.Int("driver-index", 0, "unique index of this driver process (keeps client IDs disjoint)")
	connectTimeout := flag.Duration("connect-timeout", 15*time.Second, "driver mode: how long to wait for replicas to come up")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) so perf work starts from profiles")
	metricsAddr := flag.String("metrics", "", "replica mode: serve Prometheus-text /metrics on this address; with -pprof the endpoint is also registered on the pprof mux")
	traceSample := flag.Int("trace-sample", 0, "replica mode: lifecycle-tracer 1-in-N sampling (0 = built-in default, 1 = trace everything)")
	traceDir := flag.String("trace-dir", "", "driver mode: directory to dump every replica's SHARPER_TRACE ring into when the wire audit finds divergence (default: the topology file's directory)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "sharperd: pprof server: %v"+"\n", err)
			}
		}()
	}

	fm, err := parseModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sync, err := storage.ParseSyncPolicy(*syncPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	shaping, err := parseShaping(*shapeSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *topoInit {
		if *topoPath == "" {
			fmt.Fprintln(os.Stderr, "-topology-init needs -topology FILE")
			os.Exit(2)
		}
		if err := WriteTopologyFile(*topoPath, *host, *basePort, *clusters, *f, fm, *secret, *shapeSpec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d %s clusters, f=%d\n", *topoPath, *clusters, fm, *f)
		return
	}

	if *topoPath != "" {
		tf, err := ParseTopologyFile(*topoPath)
		if err != nil {
			log.Fatal(err)
		}
		if shaping != nil {
			tf.Shaping = shaping // -shape overrides the file's link directives
		}
		switch {
		case *drive:
			td := *traceDir
			if td == "" {
				td = filepath.Dir(*topoPath)
			}
			err = runDriver(tf, driverOptions{
				Clients:        *clients,
				CrossPct:       *cross,
				Duration:       *duration,
				Seed:           *seed,
				Accounts:       *accounts,
				DriverIndex:    *driverIdx,
				ConnectTimeout: *connectTimeout,
				ShowDAG:        *showDAG,
				TraceDir:       td,
				Slash:          *slash,
				Ed25519:        *ed25519,
				Gateway:        *gateway,
			}, os.Stdout)
			if err != nil {
				log.Fatal(err)
			}
		case *listen != "" || *nodeID >= 0:
			self := types.NodeID(*nodeID)
			if *listen != "" {
				id, ok := tf.NodeByListenAddr(*listen)
				if !ok {
					log.Fatalf("no node in %s listens on %s", *topoPath, *listen)
				}
				self = id
			}
			stop := make(chan struct{})
			go func() {
				sig := make(chan os.Signal, 1)
				signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
				<-sig
				close(stop)
			}()
			if err := runReplica(tf, self, replicaOptions{
				Seed:           *seed,
				Batch:          *batch,
				Accounts:       *accounts,
				Balance:        *balance,
				DataDir:        *dataDir,
				Sync:           sync,
				LockTimeout:    *lockTimeout,
				SerializeCross: *serializeCross,
				InlineCommit:   *inlineCommit,
				Slash:          *slash,
				Ed25519:        *ed25519,
				VerifyWindow:   *verifyWindow,
				MetricsAddr:    *metricsAddr,
				MetricsOnPprof: *pprofAddr != "",
				TraceSample:    *traceSample,
			}, stop, os.Stdout); err != nil {
				log.Fatal(err)
			}
		default:
			log.Fatal("with -topology, pass -listen ADDR / -node N (replica) or -drive (driver)")
		}
		return
	}

	if shaping != nil && *shapeSpec != "multiregion" {
		// The single-process facade exposes the preset only; arbitrary link
		// matrices belong in a topology file.
		fmt.Fprintln(os.Stderr, "single-process mode supports -shape multiregion only (use -topology for custom link shapes)")
		os.Exit(2)
	}
	runLocal(fm, localOptions{
		Clusters: *clusters, F: *f, CrossPct: *cross, Clients: *clients,
		Duration: *duration, Seed: *seed, Batch: *batch, ShowDAG: *showDAG,
		Accounts: *accounts, Balance: *balance, TCP: *transportKind == "tcp",
		DataDir: *dataDir, Sync: sync, SerializeCross: *serializeCross,
		InlineCommit: *inlineCommit,
		Slash: *slash, Ed25519: *ed25519,
		Multiregion: *shapeSpec == "multiregion", VerifyWindow: *verifyWindow,
		Gateway: *gateway,
	})
}

// parseShaping turns the -shape flag into a shaping matrix: empty means no
// shaping, "multiregion" is the paper's cross-datacenter preset, anything
// else is one delay/bw/loss spec applied uniformly to every link class.
func parseShaping(spec string) (*transport.Shaping, error) {
	if spec == "" {
		return nil, nil
	}
	if spec == "multiregion" {
		return transport.Multiregion(), nil
	}
	s, err := transport.ParseLinkShape(strings.Fields(spec))
	if err != nil {
		return nil, fmt.Errorf("-shape: %w", err)
	}
	return &transport.Shaping{Default: s, Intra: s, Client: s}, nil
}

func parseModel(s string) (sharper.FailureModel, error) {
	switch s {
	case "crash":
		return sharper.CrashOnly, nil
	case "byzantine", "byz":
		return sharper.Byzantine, nil
	default:
		return sharper.CrashOnly, fmt.Errorf("unknown model %q", s)
	}
}

// ---------------------------------------------------------------- replica --

type replicaOptions struct {
	Seed     int64
	Batch    int
	Accounts int
	Balance  int64
	// SerializeCross restores the legacy serialized cross-shard scheduler.
	SerializeCross bool
	// InlineCommit restores the pre-pipeline synchronous commit path.
	InlineCommit bool
	// DataDir is the deployment's storage base directory; this replica
	// persists under DataDir/node-<id> and recovers from it on restart.
	DataDir string
	Sync    storage.SyncPolicy
	// LockTimeout is the cross-shard lock expiry (0 = default).
	LockTimeout time.Duration
	// Slash arms the equivocation-detecting auditor; Ed25519 switches the
	// Byzantine authenticator to real signatures so its fraud proofs are
	// third-party verifiable.
	Slash   bool
	Ed25519 bool
	// VerifyWindow is the signature batch-verification window (0 = env or
	// default, 1 = strictly per signature).
	VerifyWindow int
	// MetricsAddr serves Prometheus-text /metrics on its own listener;
	// MetricsOnPprof additionally registers the endpoint on the process-wide
	// pprof mux. TraceSample tunes the lifecycle tracer (0 = default).
	MetricsAddr    string
	MetricsOnPprof bool
	TraceSample    int
}

// runReplica hosts one node of a multi-process deployment: a TCP fabric
// listening on the node's topology address, the replica runtime on top, and
// genesis state for its own shard. It returns when stop closes.
func runReplica(tf *TopologyFile, self types.NodeID, opts replicaOptions, stop <-chan struct{}, out io.Writer) error {
	addr, ok := tf.Addrs[self]
	if !ok {
		return fmt.Errorf("node %s is not in the topology", self)
	}
	fcfg := tcpnet.Config{
		Self:       self,
		ListenAddr: addr,
		Peers:      tf.Addrs,
		Secret:     crypto.WireKey(tf.Secret),
	}
	// Every process shapes its own outbound links, so the deployment as a
	// whole emulates the WAN the topology file describes.
	if tune := core.ShapeTune(tf.Shaping, opts.Seed, tf.Topo.ClusterOf); tune != nil {
		tune(&fcfg)
	}
	fab, err := tcpnet.New(fcfg)
	if err != nil {
		return err
	}
	defer fab.Close()

	pcfg := core.ProcessConfig{
		Topo:           tf.Topo,
		Self:           self,
		Fabric:         fab,
		Seed:           opts.Seed,
		BatchSize:      opts.Batch,
		Sync:           opts.Sync,
		LockTimeout:    opts.LockTimeout,
		SerializeCross: opts.SerializeCross,
		InlineCommit:   opts.InlineCommit,
		Slash:          opts.Slash,
		Ed25519:        opts.Ed25519,
		VerifyWindow:   opts.VerifyWindow,
		TraceSample:    opts.TraceSample,
	}
	if opts.DataDir != "" {
		pcfg.DataDir = core.NodeDataDir(opts.DataDir, self)
	}
	node, err := core.NewProcessNode(pcfg)
	if err != nil {
		return err
	}
	shards := state.ShardMap{NumShards: len(tf.Topo.Clusters)}
	for k := 0; k < opts.Accounts; k++ {
		node.Store().Credit(shards.AccountInShard(node.Cluster(), uint64(k)), opts.Balance)
	}
	node.Start()
	defer node.Stop()
	serveReplicaMetrics(node, fab, opts, out)
	if n := node.RecoveredBlocks(); n > 0 {
		fmt.Fprintf(out, "sharperd: replica %s recovered %d blocks from %s\n", self, n, pcfg.DataDir)
	}
	fmt.Fprintf(out, "sharperd: replica %s (cluster %s) listening on %s\n", self, node.Cluster(), fab.Addr())
	<-stop
	// Stop before reading the scheduler counters: Counters is a quiesced
	// read (the deferred Stop above is idempotent).
	node.Stop()
	s := node.Counters()
	fmt.Fprintf(out, "sharperd: replica %s stopping (committed %d, chain %d blocks, %d anomalies; sched leads=%d parks=%d withdraws=%d expiries=%d avoided=%d)\n",
		self, node.Committed(), node.View().Len(), node.Anomalies(),
		s.LeadsInFlight, s.Parks, s.Withdraws, s.LockExpiries, s.DefersAvoided)
	if os.Getenv("SHARPERD_DEBUG") != "" {
		for _, line := range node.DebugTrace() {
			fmt.Fprintf(out, "sharperd: trace %s: %s\n", self, line)
		}
	}
	return nil
}

// ----------------------------------------------------------------- driver --

type driverOptions struct {
	Clients        int
	CrossPct       int
	Duration       time.Duration
	Seed           int64
	Accounts       int
	DriverIndex    int
	ConnectTimeout time.Duration
	ShowDAG        bool
	// TraceDir is where a failed wire audit dumps every replica's
	// SHARPER_TRACE ring (one trace-node-<id>.log per replica).
	TraceDir string
	// Slash makes the driver fetch every replica's fraud-proof evidence
	// after the audit and print the offender report; Ed25519 tells it which
	// authenticator the replicas derive from the seed, so it can rebuild the
	// matching verifier offline.
	Slash   bool
	Ed25519 bool
	// Gateway issues the workload through the client-ingress plane (shard
	// mempool gateways) instead of the direct request path.
	Gateway bool
}

// driverClient is the issuing surface shared by the direct client and the
// gateway client, so the driver loop is path-agnostic.
type driverClient interface {
	MakeTx(ops []types.Op) *types.Transaction
	Submit(tx *types.Transaction) (bool, time.Duration, error)
}

// runDriver attaches to a running multi-process deployment over a dial-only
// fabric, issues the workload, then audits the deployment's DAG by fetching
// every cluster's chain through the sync protocol.
func runDriver(tf *TopologyFile, opts driverOptions, out io.Writer) error {
	fcfg := tcpnet.Config{
		Peers:  tf.Addrs,
		Secret: crypto.WireKey(tf.Secret),
	}
	// The driver's dial-only fabric gets the topology's client link shape, so
	// request/reply latency matches the emulated WAN too.
	if tune := core.ShapeTune(tf.Shaping, opts.Seed, tf.Topo.ClusterOf); tune != nil {
		tune(&fcfg)
	}
	fab, err := tcpnet.New(fcfg)
	if err != nil {
		return err
	}
	defer fab.Close()

	shards := state.ShardMap{NumShards: len(tf.Topo.Clusters)}
	// Client IDs are partitioned by driver index so several driver processes
	// can share one deployment without colliding.
	clientBase := types.ClientIDBase + types.NodeID(opts.DriverIndex)*100_000
	cls := make([]driverClient, opts.Clients)
	for i := range cls {
		id := clientBase + types.NodeID(i) + 1
		if opts.Gateway {
			cls[i] = core.NewGatewayClientAt(fab, tf.Topo, shards, id)
		} else {
			cls[i] = core.NewClientAt(fab, tf.Topo, shards, id)
		}
	}
	fmt.Fprintf(out, "sharperd: driver connecting to %d replicas…\n", len(tf.Addrs))
	if err := fab.ConnectAll(opts.ConnectTimeout); err != nil {
		return fmt.Errorf("deployment not up: %w", err)
	}

	gen := workload.New(workload.Config{
		Shards:           shards,
		AccountsPerShard: opts.Accounts,
		CrossShardPct:    opts.CrossPct,
		ShardsPerCross:   2,
		Seed:             opts.Seed,
	})

	var committed, crossDone, failed, shed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, c := range cls {
		wg.Add(1)
		go func(k int, c driverClient) {
			defer wg.Done()
			g := gen.Split(k)
			for !stop.Load() {
				tx := c.MakeTx(g.Next())
				ok, _, err := c.Submit(tx)
				if errors.Is(err, core.ErrOverloaded) || errors.Is(err, core.ErrExpired) {
					shed.Add(1)
					continue
				}
				if err != nil {
					failed.Add(1)
					continue
				}
				_ = ok
				committed.Add(1)
				if tx.IsCrossShard() {
					crossDone.Add(1)
				}
			}
		}(i, c)
	}

	start := time.Now()
	ticker := time.NewTicker(time.Second)
	deadline := time.After(opts.Duration)
loop:
	for {
		select {
		case <-ticker.C:
			n := committed.Load()
			fmt.Fprintf(out, "  t=%4.1fs committed=%6d (%.0f tx/s, %d cross-shard)\n",
				time.Since(start).Seconds(), n, float64(n)/time.Since(start).Seconds(), crossDone.Load())
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	stop.Store(true)
	wg.Wait()

	n := committed.Load()
	fmt.Fprintf(out, "total: %d transactions (%.0f tx/s), %d cross-shard, %d failed, %d shed\n",
		n, float64(n)/time.Since(start).Seconds(), crossDone.Load(), failed.Load(), shed.Load())

	// Replicas keep converging (cross-shard decisions propagate to
	// non-initiator replicas asynchronously, chain sync fills gaps), so
	// retry the audit until the fetched views agree or the deadline passes.
	var dag *ledger.DAG
	var auditErr error
	auditDeadline := time.Now().Add(15 * time.Second)
	for attempt := 0; ; attempt++ {
		dag, auditErr = fetchDAG(fab, tf, clientBase+99_000+types.NodeID(attempt))
		if auditErr == nil {
			if auditErr = dag.Verify(); auditErr == nil {
				auditErr = dag.VerifyPairwiseOrder()
			}
		}
		if auditErr == nil {
			break
		}
		if time.Now().After(auditDeadline) {
			// A divergent deployment's protocol history lives in the
			// replicas' SHARPER_TRACE rings; pull them all while the
			// processes are still up — they are the only evidence.
			dumpTraces(fab, tf, opts.TraceDir, clientBase+98_000, out)
			return fmt.Errorf("ledger audit FAILED: %w", auditErr)
		}
		time.Sleep(300 * time.Millisecond)
	}
	fmt.Fprintln(out, "ledger audit: all views consistent, cross-shard order agrees")
	if err := auditState(fab, tf, clientBase+94_000, out); err != nil {
		return fmt.Errorf("state audit FAILED: %w", err)
	}
	printSchedStats(fab, tf, clientBase+97_000, out)
	printMetrics(fab, tf, clientBase+95_000, out)
	if opts.Slash {
		printEvidence(fab, tf, opts.Seed, opts.Ed25519, clientBase+96_000, out)
	}
	if opts.ShowDAG {
		fmt.Fprint(out, dag.RenderASCII())
	}
	return nil
}

// auditState fetches every replica's deterministic store fingerprint
// (MsgStateRequest) and asserts that, cluster by cluster, every replica
// reports the same applied height and hash — the wire proof that
// conflict-partitioned parallel apply produced exactly the state serial
// execution would have. Replicas may briefly lag (executor drain, chain
// sync), so disagreement retries until the deadline.
func auditState(fab *tcpnet.Net, tf *TopologyFile, auditID types.NodeID, out io.Writer) error {
	inbox := fab.Register(auditID)
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for {
		got := make(map[types.NodeID]*types.StateDigest)
		for id := range tf.Addrs {
			fab.Send(id, &types.Envelope{Type: types.MsgStateRequest, From: auditID})
		}
		timeout := time.After(3 * time.Second)
	collect:
		for len(got) < len(tf.Addrs) {
			select {
			case env := <-inbox:
				if env.Type != types.MsgStateResponse {
					continue
				}
				d, err := types.DecodeStateDigest(env.Payload)
				if err != nil {
					continue
				}
				if _, known := tf.Addrs[d.Node]; !known {
					continue
				}
				got[d.Node] = d
			case <-timeout:
				break collect
			}
		}
		lastErr = stateConsensus(tf, got)
		if lastErr == nil {
			fmt.Fprintln(out, "state audit: store fingerprints agree on every cluster")
			return nil
		}
		if time.Now().After(deadline) {
			return lastErr
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// stateConsensus checks per-cluster agreement of fetched state digests.
func stateConsensus(tf *TopologyFile, got map[types.NodeID]*types.StateDigest) error {
	byCluster := make(map[types.ClusterID][]*types.StateDigest)
	for id := range tf.Addrs {
		d, ok := got[id]
		if !ok {
			return fmt.Errorf("replica %v did not answer the state audit", id)
		}
		c, ok := tf.Topo.ClusterOf(id)
		if !ok {
			continue
		}
		byCluster[c] = append(byCluster[c], d)
	}
	for c, ds := range byCluster {
		first := ds[0]
		for _, d := range ds[1:] {
			if d.Height != first.Height {
				return fmt.Errorf("cluster %v: applied heights differ (%v at %d, %v at %d)",
					c, first.Node, first.Height, d.Node, d.Height)
			}
			if d.Hash != first.Hash {
				return fmt.Errorf("cluster %v: fingerprint mismatch at height %d between %v and %v",
					c, first.Height, first.Node, d.Node)
			}
		}
	}
	return nil
}

// printSchedStats fetches every replica's cross-shard scheduler counters
// over the wire (MsgStatsRequest) and prints the deployment-wide aggregate —
// the audit's view into leads pipelining, conflict-table occupancy, and
// deferral precision.
func printSchedStats(fab *tcpnet.Net, tf *TopologyFile, statsID types.NodeID, out io.Writer) {
	inbox := fab.Register(statsID)
	for id := range tf.Addrs {
		fab.Send(id, &types.Envelope{Type: types.MsgStatsRequest, From: statsID})
	}
	var agg types.SchedStats
	got := make(map[types.NodeID]bool)
	deadline := time.After(3 * time.Second)
	for len(got) < len(tf.Addrs) {
		select {
		case env := <-inbox:
			if env.Type != types.MsgStatsResponse {
				continue
			}
			s, err := types.DecodeSchedStats(env.Payload)
			if err != nil || got[s.Node] {
				continue
			}
			if _, known := tf.Addrs[s.Node]; !known {
				continue
			}
			got[s.Node] = true
			agg.Add(s)
		case <-deadline:
			fmt.Fprintf(out, "sharperd: scheduler stats: %d/%d replicas answered\n", len(got), len(tf.Addrs))
			if len(got) == 0 {
				return
			}
			goto done
		}
	}
done:
	fmt.Fprintf(out, "scheduler: leads=%d (hw %d) table=%d grants=%d parks=%d withdraws=%d expiries=%d defers=%d avoided=%d selfwaits=%d\n",
		agg.LeadsInFlight, agg.LeadHighWater, agg.TableSize, agg.Grants, agg.Parks,
		agg.Withdraws, agg.LockExpiries, agg.Defers, agg.DefersAvoided, agg.SelfVoteWaits)
}

// metricsOnPprofOnce guards the process-wide pprof-mux registration: tests
// host several replicas in one process, and DefaultServeMux panics on a
// duplicate pattern.
var metricsOnPprofOnce sync.Once

// serveReplicaMetrics exposes the replica's registry (plus its TCP fabric's
// per-peer link counters, which live outside the registry) in Prometheus
// text form: on a dedicated listener when -metrics is set, and on the pprof
// mux when -pprof is up.
func serveReplicaMetrics(node *core.Node, fab *tcpnet.Net, opts replicaOptions, out io.Writer) {
	if opts.MetricsAddr == "" && !opts.MetricsOnPprof {
		return
	}
	handler := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if reg := node.Metrics(); reg != nil {
			reg.WritePrometheus(w)
		}
		writeLinkMetrics(w, fab)
	}
	if opts.MetricsOnPprof {
		metricsOnPprofOnce.Do(func() { http.HandleFunc("/metrics", handler) })
	}
	if opts.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", handler)
		go func() {
			if err := http.ListenAndServe(opts.MetricsAddr, mux); err != nil {
				fmt.Fprintf(out, "sharperd: metrics server: %v\n", err)
			}
		}()
	}
}

// writeLinkMetrics renders the TCP fabric's per-peer link counters as
// labelled Prometheus series (queue depth, bytes, sends/drops, shaped delay,
// reconnects) — the wire-level view the per-node registry cannot hold.
func writeLinkMetrics(w io.Writer, fab *tcpnet.Net) {
	stats := fab.LinkStats()
	if len(stats) == 0 {
		return
	}
	families := []struct {
		name string
		get  func(tcpnet.PeerLinkStats) int64
	}{
		{"sharper_link_sent", func(s tcpnet.PeerLinkStats) int64 { return s.Sent }},
		{"sharper_link_dropped", func(s tcpnet.PeerLinkStats) int64 { return s.Dropped }},
		{"sharper_link_bytes", func(s tcpnet.PeerLinkStats) int64 { return s.Bytes }},
		{"sharper_link_reconnects", func(s tcpnet.PeerLinkStats) int64 { return s.Reconnects }},
		{"sharper_link_shaped_us", func(s tcpnet.PeerLinkStats) int64 { return s.ShapedMicros }},
		{"sharper_link_queue_depth", func(s tcpnet.PeerLinkStats) int64 { return int64(s.QueueDepth) }},
	}
	for _, f := range families {
		fmt.Fprintf(w, "# TYPE %s gauge\n", f.name)
		for _, s := range stats {
			fmt.Fprintf(w, "%s{peer=\"%s\"} %d\n", f.name, s.Peer, f.get(s))
		}
	}
}

// printMetrics fetches every replica's registry snapshot over the wire
// (MsgMetricsRequest), merges the fleet, and prints the commit-latency
// breakdown plus headline counters — the audit-time roll-up companion to
// printSchedStats.
func printMetrics(fab *tcpnet.Net, tf *TopologyFile, metricsID types.NodeID, out io.Writer) {
	inbox := fab.Register(metricsID)
	for id := range tf.Addrs {
		fab.Send(id, &types.Envelope{Type: types.MsgMetricsRequest, From: metricsID})
	}
	var snaps [][]obs.Metric
	got := make(map[types.NodeID]bool)
	deadline := time.After(3 * time.Second)
	for len(got) < len(tf.Addrs) {
		select {
		case env := <-inbox:
			if env.Type != types.MsgMetricsResponse {
				continue
			}
			d, err := types.DecodeMetricsDump(env.Payload)
			if err != nil || got[d.Node] {
				continue
			}
			if _, known := tf.Addrs[d.Node]; !known {
				continue
			}
			got[d.Node] = true
			snaps = append(snaps, obs.MetricsFromWire(d.Metrics))
		case <-deadline:
			fmt.Fprintf(out, "sharperd: metrics: %d/%d replicas answered\n", len(got), len(tf.Addrs))
			if len(got) == 0 {
				return
			}
			goto merge
		}
	}
merge:
	merged := obs.Merge(snaps...)
	byName := make(map[string]*obs.Metric, len(merged))
	for i := range merged {
		byName[merged[i].Name] = &merged[i]
	}
	val := func(name string) uint64 {
		if m := byName[name]; m != nil {
			return m.Value
		}
		return 0
	}
	fmt.Fprintf(out, "metrics: committed=%d verify{windows=%d envelopes=%d bisects=%d} storage{wal=%dB ckpts=%d}\n",
		val("committed_txs"), val("verify_windows"), val("verify_envelopes"),
		val("verify_bisects"), val("storage_wal_bytes"), val("storage_checkpoints"))
	fmt.Fprintf(out, "metrics: mempool admitted=%d deduped=%d shed=%d expired=%d pending{count=%d bytes=%d}\n",
		val("mempool_admitted"), val("mempool_deduped"), val("mempool_shed"),
		val("mempool_expired"), val("mempool_pending_count"), val("mempool_pending_bytes"))
	for _, series := range []string{"intra", "cross"} {
		if m := byName["stage_"+series+"_total_us"]; m != nil && m.Count > 0 {
			fmt.Fprintf(out, "metrics: %s commit latency (µs, %d sampled): p50=%d p95=%d p99=%d\n",
				series, m.Count, m.Quantile(0.50), m.Quantile(0.95), m.Quantile(0.99))
		}
	}
}

// printEvidence fetches every replica's accumulated fraud proofs over the
// wire (MsgEvidenceRequest), deduplicates them, re-verifies each one against
// an authenticator rebuilt offline from the shared seed (exactly as every
// replica derives it — the driver never sees a private channel the proofs
// depend on), and prints the offender report. A proof that fails offline
// verification is counted separately: the replicas should never have
// admitted it.
func printEvidence(fab *tcpnet.Net, tf *TopologyFile, seed int64, ed25519 bool, evID types.NodeID, out io.Writer) {
	var verifier types.SigVerifier = crypto.NoopSigner{}
	if tf.Topo.AnyByzantine() {
		var auth crypto.Authenticator = crypto.NewMACKeyring()
		if ed25519 {
			auth = crypto.NewKeyring()
		}
		rng := rand.New(rand.NewSource(seed + 1))
		for _, id := range tf.Topo.AllNodes() {
			if err := auth.Generate(id, rng); err != nil {
				fmt.Fprintf(out, "sharperd: evidence: rebuilding keyring: %v\n", err)
				return
			}
		}
		verifier = auth
	}

	inbox := fab.Register(evID)
	for id := range tf.Addrs {
		fab.Send(id, &types.Envelope{Type: types.MsgEvidenceRequest, From: evID})
	}
	proofs := make(map[string]*types.FraudProof)
	got := make(map[types.NodeID]bool)
	deadline := time.After(3 * time.Second)
	for len(got) < len(tf.Addrs) {
		select {
		case env := <-inbox:
			if env.Type != types.MsgEvidenceResponse {
				continue
			}
			dump, err := types.DecodeEvidenceDump(env.Payload)
			if err != nil || got[dump.Node] {
				continue
			}
			if _, known := tf.Addrs[dump.Node]; !known {
				continue
			}
			got[dump.Node] = true
			for _, p := range dump.Proofs {
				proofs[p.Key()] = p
			}
		case <-deadline:
			fmt.Fprintf(out, "sharperd: evidence: %d/%d replicas answered\n", len(got), len(tf.Addrs))
			goto report
		}
	}
report:
	if len(proofs) == 0 {
		fmt.Fprintln(out, "slasher: no fraud proofs collected — no equivocation observed")
		return
	}
	perOffender := make(map[types.NodeID]map[types.FraudKind]int)
	invalid := 0
	for _, p := range proofs {
		if err := p.Verify(verifier); err != nil {
			invalid++
			fmt.Fprintf(out, "slasher: REJECTED %s: %v\n", p, err)
			continue
		}
		if perOffender[p.Offender] == nil {
			perOffender[p.Offender] = make(map[types.FraudKind]int)
		}
		perOffender[p.Offender][p.Kind]++
	}
	fmt.Fprintf(out, "slasher: %d distinct fraud proofs, %d offenders, %d failed offline verification\n",
		len(proofs)-invalid, len(perOffender), invalid)
	for _, id := range tf.Topo.AllNodes() {
		kinds, guilty := perOffender[id]
		if !guilty {
			continue
		}
		fmt.Fprintf(out, "slasher: offender %s:", id)
		for _, k := range [...]types.FraudKind{types.FraudDoubleProposal, types.FraudDoubleVote, types.FraudConflictingViewChange} {
			if n := kinds[k]; n > 0 {
				fmt.Fprintf(out, " %s=%d", k, n)
			}
		}
		fmt.Fprintln(out)
	}
}

// dumpTraces asks every replica for its SHARPER_TRACE protocol-event ring
// and writes one trace-node-<id>.log per replica into dir, giving a
// divergence hunt the cross-process evidence the ROADMAP's open fork item
// needs. Replicas running without SHARPER_TRACE answer with empty rings,
// which are noted but not written.
func dumpTraces(fab *tcpnet.Net, tf *TopologyFile, dir string, dumpID types.NodeID, out io.Writer) {
	inbox := fab.Register(dumpID)
	for id := range tf.Addrs {
		fab.Send(id, &types.Envelope{Type: types.MsgTraceRequest, From: dumpID})
	}
	got := make(map[types.NodeID]bool)
	deadline := time.After(3 * time.Second)
	empty := 0
	for len(got) < len(tf.Addrs) {
		select {
		case env := <-inbox:
			if env.Type != types.MsgTraceResponse {
				continue
			}
			dump, err := types.DecodeTraceDump(env.Payload)
			if err != nil || got[dump.Node] {
				continue
			}
			// The dump runs precisely when the audit found divergence, i.e.
			// possibly with a lying replica around: only accept names from
			// the topology so a forged Node cannot clobber another replica's
			// evidence file or satisfy the completion count. (A Byzantine
			// replica can still claim a peer's ID — rings are diagnostic
			// leads, not authenticated evidence.)
			if _, known := tf.Addrs[dump.Node]; !known {
				continue
			}
			got[dump.Node] = true
			if len(dump.Lines) == 0 {
				empty++
				continue
			}
			path := filepath.Join(dir, fmt.Sprintf("trace-node-%d.log", uint32(dump.Node)))
			var buf []byte
			for _, l := range dump.Lines {
				buf = append(buf, l...)
				buf = append(buf, '\n')
			}
			if werr := os.WriteFile(path, buf, 0o644); werr != nil {
				fmt.Fprintf(out, "sharperd: trace dump %s: %v\n", path, werr)
				continue
			}
			fmt.Fprintf(out, "sharperd: wrote %s (%d events)\n", path, len(dump.Lines))
		case <-deadline:
			fmt.Fprintf(out, "sharperd: trace dump: %d/%d replicas answered\n", len(got), len(tf.Addrs))
			return
		}
	}
	if empty > 0 {
		fmt.Fprintf(out, "sharperd: trace dump: %d replicas had empty rings (start them with SHARPER_TRACE=1 to record)\n", empty)
	}
}

// fetchDAG pulls one representative chain per cluster over the sync
// protocol and assembles the Fig. 2 union DAG, giving a driver process the
// same audit a co-located deployment gets from Deployment.DAG().
func fetchDAG(fab *tcpnet.Net, tf *TopologyFile, auditID types.NodeID) (*ledger.DAG, error) {
	inbox := fab.Register(auditID)
	var views []*ledger.View
	for _, cid := range tf.Topo.ClusterIDs() {
		peer := tf.Topo.Members(cid)[0]
		v, err := core.FetchView(fab, auditID, inbox, peer, cid, 500*time.Millisecond)
		if err != nil {
			return nil, err
		}
		views = append(views, v)
	}
	return ledger.NewDAG(views...), nil
}

// ------------------------------------------------------- single process ----

type localOptions struct {
	Clusters, F, CrossPct, Clients int
	Duration                       time.Duration
	Seed                           int64
	Batch                          int
	ShowDAG                        bool
	Accounts                       int
	Balance                        int64
	TCP                            bool
	DataDir                        string
	Sync                           storage.SyncPolicy
	SerializeCross                 bool
	InlineCommit                   bool
	Slash                          bool
	Ed25519                        bool
	Multiregion                    bool
	VerifyWindow                   int
	// Gateway issues the workload through the client-ingress plane.
	Gateway bool
}

// localClient is the issuing surface shared by the facade's direct and
// gateway clients.
type localClient interface {
	Submit(ops []sharper.Op) (sharper.Result, error)
}

// runLocal is the original single-process mode: a full deployment in one
// process, on the simulated fabric or (with -transport tcp) on real
// loopback sockets.
func runLocal(fm sharper.FailureModel, opts localOptions) {
	tr := sharper.TransportSim
	trName := "simulated fabric"
	if opts.TCP {
		tr = sharper.TransportTCP
		trName = "loopback TCP sockets"
	}
	net, err := sharper.New(sharper.Options{
		Model:            fm,
		Clusters:         opts.Clusters,
		F:                opts.F,
		Seed:             opts.Seed,
		BatchSize:        opts.Batch,
		Transport:        tr,
		AccountsPerShard: opts.Accounts,
		InitialBalance:   opts.Balance,
		DataDir:          opts.DataDir,
		Sync:             opts.Sync,
		SerializeCross:   opts.SerializeCross,
		InlineCommit:     opts.InlineCommit,
		Slash:            opts.Slash,
		Ed25519:          opts.Ed25519,
		Multiregion:      opts.Multiregion,
		VerifyWindow:     opts.VerifyWindow,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	if opts.Multiregion {
		trName += ", multiregion WAN shaping"
	}
	size := fm.ClusterSize(opts.F)
	fmt.Printf("sharperd: %s model, %d clusters × %d nodes (%d total) over %s, %d%% cross-shard, %d clients, batch≤%d\n",
		fm, opts.Clusters, size, opts.Clusters*size, trName, opts.CrossPct, opts.Clients, opts.Batch)

	gen := workload.New(workload.Config{
		Shards:           state.ShardMap{NumShards: opts.Clusters},
		AccountsPerShard: opts.Accounts,
		CrossShardPct:    opts.CrossPct,
		ShardsPerCross:   2,
		Seed:             opts.Seed,
	})

	var committed, crossDone, shed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			var c localClient
			if opts.Gateway {
				c = net.NewGatewayClient()
			} else {
				c = net.NewClient()
			}
			for !stop.Load() {
				ops := g.Next()
				res, err := c.Submit(toOps(ops))
				if errors.Is(err, sharper.ErrOverloaded) || errors.Is(err, sharper.ErrExpired) {
					shed.Add(1)
					continue
				}
				if err != nil {
					continue
				}
				committed.Add(1)
				if res.CrossShard {
					crossDone.Add(1)
				}
			}
		}(i)
	}

	start := time.Now()
	ticker := time.NewTicker(time.Second)
	deadline := time.After(opts.Duration)
loop:
	for {
		select {
		case <-ticker.C:
			n := committed.Load()
			fmt.Printf("  t=%4.1fs committed=%6d (%.0f tx/s, %d cross-shard)\n",
				time.Since(start).Seconds(), n, float64(n)/time.Since(start).Seconds(), crossDone.Load())
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	stop.Store(true)
	wg.Wait()
	time.Sleep(200 * time.Millisecond) // quiesce

	n := committed.Load()
	fmt.Printf("total: %d transactions (%.0f tx/s), %d cross-shard, %d shed\n",
		n, float64(n)/time.Since(start).Seconds(), crossDone.Load(), shed.Load())
	// Stop the deployment before reading counters and auditing: scheduler
	// counters are a quiesced read, and Close is idempotent under the
	// deferred call above.
	net.Close()
	s := net.SchedStats()
	fmt.Printf("scheduler: leads=%d (hw %d) table=%d grants=%d parks=%d withdraws=%d expiries=%d defers=%d avoided=%d selfwaits=%d\n",
		s.LeadsInFlight, s.LeadHighWater, s.TableSize, s.Grants, s.Parks,
		s.Withdraws, s.LockExpiries, s.Defers, s.DefersAvoided, s.SelfVoteWaits)
	if err := net.Verify(); err != nil {
		log.Fatalf("ledger audit FAILED: %v", err)
	}
	fmt.Println("ledger audit: all views consistent, cross-shard order agrees")
	if opts.Slash {
		proofs := net.FraudProofs()
		if len(proofs) == 0 {
			fmt.Println("slasher: no fraud proofs — no equivocation observed")
		} else {
			// A fault-free local run should never reach here; proofs mean a
			// replica equivocated (or the auditor has a bug worth a report).
			fmt.Printf("slasher: %d fraud proofs collected:\n", len(proofs))
			for _, p := range proofs {
				fmt.Printf("  %s\n", p)
			}
		}
	}
	if opts.ShowDAG {
		fmt.Print(net.DAG().RenderASCII())
	}
}

func toOps(in []types.Op) []sharper.Op {
	out := make([]sharper.Op, len(in))
	copy(out, in)
	return out
}
