// Command sharperd runs a SharPer deployment on the simulated fabric and
// drives it with a configurable workload, printing live throughput and a
// final ledger audit. It is the quickest way to watch the system work:
//
//	sharperd -model crash -clusters 4 -f 1 -cross 10 -clients 16 -duration 5s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sharper"
	"sharper/internal/state"
	"sharper/internal/types"
	"sharper/internal/workload"
)

func main() {
	model := flag.String("model", "crash", "failure model: crash or byzantine")
	clusters := flag.Int("clusters", 4, "number of clusters (= shards)")
	f := flag.Int("f", 1, "per-cluster fault bound")
	cross := flag.Int("cross", 10, "percent cross-shard transactions")
	clients := flag.Int("clients", 16, "closed-loop clients")
	duration := flag.Duration("duration", 5*time.Second, "run length")
	seed := flag.Int64("seed", 1, "random seed")
	batch := flag.Int("batch", 1, "max transactions per block (1 = the paper's single-tx blocks)")
	showDAG := flag.Bool("dag", false, "print the ledger DAG at the end")
	flag.Parse()

	var fm sharper.FailureModel
	switch *model {
	case "crash":
		fm = sharper.CrashOnly
	case "byzantine", "byz":
		fm = sharper.Byzantine
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	net, err := sharper.New(sharper.Options{
		Model:     fm,
		Clusters:  *clusters,
		F:         *f,
		Seed:      *seed,
		BatchSize: *batch,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	size := fm.ClusterSize(*f)
	fmt.Printf("sharperd: %s model, %d clusters × %d nodes (%d total), %d%% cross-shard, %d clients, batch≤%d\n",
		fm, *clusters, size, *clusters*size, *cross, *clients, *batch)

	gen := workload.New(workload.Config{
		Shards:           state.ShardMap{NumShards: *clusters},
		AccountsPerShard: 1024,
		CrossShardPct:    *cross,
		ShardsPerCross:   2,
		Seed:             *seed,
	})

	var committed, crossDone atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := net.NewClient()
			for !stop.Load() {
				ops := g.Next()
				res, err := c.Submit(toOps(ops))
				if err != nil {
					continue
				}
				committed.Add(1)
				if res.CrossShard {
					crossDone.Add(1)
				}
			}
		}(i)
	}

	start := time.Now()
	ticker := time.NewTicker(time.Second)
	deadline := time.After(*duration)
loop:
	for {
		select {
		case <-ticker.C:
			n := committed.Load()
			fmt.Printf("  t=%4.1fs committed=%6d (%.0f tx/s, %d cross-shard)\n",
				time.Since(start).Seconds(), n, float64(n)/time.Since(start).Seconds(), crossDone.Load())
		case <-deadline:
			break loop
		}
	}
	ticker.Stop()
	stop.Store(true)
	wg.Wait()
	time.Sleep(200 * time.Millisecond) // quiesce

	n := committed.Load()
	fmt.Printf("total: %d transactions (%.0f tx/s), %d cross-shard\n",
		n, float64(n)/time.Since(start).Seconds(), crossDone.Load())
	if err := net.Verify(); err != nil {
		log.Fatalf("ledger audit FAILED: %v", err)
	}
	fmt.Println("ledger audit: all views consistent, cross-shard order agrees")
	if *showDAG {
		fmt.Print(net.DAG().RenderASCII())
	}
}

func toOps(in []types.Op) []sharper.Op {
	out := make([]sharper.Op, len(in))
	copy(out, in)
	return out
}
