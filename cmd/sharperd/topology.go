package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sharper/internal/consensus"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// TopologyFile is the parsed form of a sharperd topology file, the single
// artifact every process of a multi-process deployment is started from.
//
// The format is line-based; '#' starts a comment:
//
//	model crash            # or: byzantine
//	f 1                    # per-cluster fault bound (cluster size follows)
//	secret demo-secret     # shared wire-authentication secret
//	cluster 0 127.0.0.1:7100 127.0.0.1:7101 127.0.0.1:7102
//	cluster 1 127.0.0.1:7110 127.0.0.1:7111 127.0.0.1:7112
//
// Optional `link` directives shape the links between clusters, netem-style
// (every process applies them to its own outbound connections, so the whole
// deployment emulates one WAN from the one file):
//
//	link multiregion                    # preset: paper-style cross-datacenter WAN
//	link default delay 30ms bw 200Mbps  # links between clusters not paired below
//	link intra delay 500us bw 1Gbps     # links within a cluster
//	link client delay 1ms               # driver↔replica links, both directions
//	link 0 2 delay 80ms loss 0.001      # one specific cluster pair
//
// The preset may be combined with later overrides; keys are delay, bw (or
// bandwidth), and loss (a fraction in [0,1]).
//
// Node IDs are assigned densely in listing order (cluster 0's members are
// n0, n1, n2, …), matching consensus.UniformTopology, so every process
// derives the same topology — and, for Byzantine deployments, the same
// seed-derived keyring — from the same file.
type TopologyFile struct {
	Model   types.FailureModel
	F       int
	Secret  string
	Topo    *consensus.Topology
	Addrs   map[types.NodeID]string
	Shaping *transport.Shaping // nil when the file has no link directives
}

// ParseTopologyFile reads and validates a topology file.
func ParseTopologyFile(path string) (*TopologyFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	tf := &TopologyFile{
		F:     1,
		Topo:  &consensus.Topology{Clusters: map[types.ClusterID]consensus.Cluster{}},
		Addrs: map[types.NodeID]string{},
	}
	next := types.NodeID(0)
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "model":
			if next > 0 {
				return nil, fmt.Errorf("%s:%d: model must precede all cluster lines", path, lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: model needs one value", path, lineNo)
			}
			switch fields[1] {
			case "crash":
				tf.Model = types.CrashOnly
			case "byzantine", "byz":
				tf.Model = types.Byzantine
			default:
				return nil, fmt.Errorf("%s:%d: unknown model %q", path, lineNo, fields[1])
			}
		case "f":
			if next > 0 {
				// Each cluster line snapshots the current F; a later change
				// would silently give earlier clusters the wrong quorums.
				return nil, fmt.Errorf("%s:%d: f must precede all cluster lines", path, lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: f needs one value", path, lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("%s:%d: bad fault bound %q", path, lineNo, fields[1])
			}
			tf.F = v
		case "secret":
			if len(fields) != 2 {
				return nil, fmt.Errorf("%s:%d: secret needs one value", path, lineNo)
			}
			tf.Secret = fields[1]
		case "cluster":
			if len(fields) < 3 {
				return nil, fmt.Errorf("%s:%d: cluster needs an id and at least one address", path, lineNo)
			}
			cid64, err := strconv.ParseUint(fields[1], 10, 16)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: bad cluster id %q", path, lineNo, fields[1])
			}
			cid := types.ClusterID(cid64)
			if _, dup := tf.Topo.Clusters[cid]; dup {
				return nil, fmt.Errorf("%s:%d: cluster %s listed twice", path, lineNo, cid)
			}
			cl := consensus.Cluster{ID: cid, F: tf.F}
			for _, addr := range fields[2:] {
				tf.Addrs[next] = addr
				cl.Members = append(cl.Members, next)
				next++
			}
			tf.Topo.Clusters[cid] = cl
		case "link":
			if err := tf.parseLink(fields[1:]); err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, lineNo, err)
			}
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tf.Secret == "" {
		return nil, fmt.Errorf("%s: missing `secret` directive (all processes must share one)", path)
	}
	tf.Topo.Model = tf.Model
	size := tf.Model.ClusterSize(tf.F)
	for cid, cl := range tf.Topo.Clusters {
		if len(cl.Members) < size {
			return nil, fmt.Errorf("%s: cluster %s has %d addresses, %s f=%d needs %d",
				path, cid, len(cl.Members), tf.Model, tf.F, size)
		}
	}
	if err := tf.Topo.Validate(); err != nil {
		return nil, err
	}
	return tf, nil
}

// parseLink handles one `link` directive (arguments after the keyword).
func (tf *TopologyFile) parseLink(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("link needs a target (multiregion, default, intra, client, or a cluster pair)")
	}
	if tf.Shaping == nil {
		tf.Shaping = &transport.Shaping{}
	}
	switch args[0] {
	case "multiregion":
		if len(args) != 1 {
			return fmt.Errorf("link multiregion takes no further arguments")
		}
		pairs := tf.Shaping.Pairs // keep pairs already set; preset fills the classes
		*tf.Shaping = *transport.Multiregion()
		if pairs != nil {
			tf.Shaping.Pairs = pairs
		}
		return nil
	case "default", "intra", "client":
		shape, err := transport.ParseLinkShape(args[1:])
		if err != nil {
			return err
		}
		switch args[0] {
		case "default":
			tf.Shaping.Default = shape
		case "intra":
			tf.Shaping.Intra = shape
		case "client":
			tf.Shaping.Client = shape
		}
		return nil
	}
	if len(args) < 3 {
		return fmt.Errorf("link pair needs two cluster ids and a shape")
	}
	a, errA := strconv.ParseUint(args[0], 10, 16)
	b, errB := strconv.ParseUint(args[1], 10, 16)
	if errA != nil || errB != nil {
		return fmt.Errorf("bad link target %q %q (want multiregion, default, intra, client, or two cluster ids)", args[0], args[1])
	}
	shape, err := transport.ParseLinkShape(args[2:])
	if err != nil {
		return err
	}
	tf.Shaping.SetPair(types.ClusterID(a), types.ClusterID(b), shape)
	return nil
}

// NodeByListenAddr resolves -listen: the node whose topology address equals
// addr.
func (tf *TopologyFile) NodeByListenAddr(addr string) (types.NodeID, bool) {
	for id, a := range tf.Addrs {
		if a == addr {
			return id, true
		}
	}
	return 0, false
}

// WriteTopologyFile renders a topology file for n uniform clusters, used by
// `sharperd -topology-init` to scaffold a deployment. A non-empty shape
// ("multiregion" or a raw delay/bw/loss spec applied to every link class)
// adds the matching link directives.
func WriteTopologyFile(path, host string, basePort, clusters, f int, model types.FailureModel, secret, shape string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# sharperd topology: %d %s clusters, f=%d\n", clusters, model, f)
	fmt.Fprintf(&b, "model %s\nf %d\nsecret %s\n", model, f, secret)
	switch {
	case shape == "multiregion":
		b.WriteString("# paper-style WAN: fast intra-datacenter links, ~30ms between regions\nlink multiregion\n")
	case shape != "":
		if _, err := transport.ParseLinkShape(strings.Fields(shape)); err != nil {
			return fmt.Errorf("-shape: %w", err)
		}
		fmt.Fprintf(&b, "link default %[1]s\nlink intra %[1]s\nlink client %[1]s\n", shape)
	}
	size := model.ClusterSize(f)
	port := basePort
	for c := 0; c < clusters; c++ {
		fmt.Fprintf(&b, "cluster %d", c)
		for i := 0; i < size; i++ {
			fmt.Fprintf(&b, " %s:%d", host, port)
			port++
		}
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
