// Command sharper-bench regenerates the paper's evaluation figures (§4).
//
// Usage:
//
//	sharper-bench -fig 6a          # one panel
//	sharper-bench -fig 7           # all four panels of Fig. 7
//	sharper-bench -fig all         # everything
//	sharper-bench -fig 8a -quick   # fast, low-resolution sweep
//
// Panels: 6a–6d (crash, 0/20/80/100% cross-shard), 7a–7d (Byzantine),
// 8a/8b (scalability, crash/Byzantine), s34 (§3.4 clustered-network
// optimization), ablation (super-primary routing on/off), batching
// (multi-transaction blocks at batch sizes 1/8/16; -json writes the
// machine-readable BENCH_batching.json other tooling tracks), latency
// (per-stage commit-latency breakdown, intra vs cross × loopback vs
// multiregion × batch 1/16, plus the metrics-overhead A/B → BENCH_latency.json;
// -assert-overhead makes the overhead budget a hard failure), pipeline
// (commit pipeline vs inline commit across both fabrics × WAL fsync
// policies × batch 1/16 → BENCH_pipeline.json), saturation (open-loop
// offered-load ladder through the gateway ingress path, both fabrics ×
// batch 1/16, latency-vs-load knee and admission-control sheds →
// BENCH_saturation.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sharper/internal/bench"
	"sharper/internal/types"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 6a..6d, 7a..7d, 8a, 8b, s34, ablation, skew, batching, persistence, hotpath, crossparallel, wan, latency, pipeline, saturation, 6, 7, 8, all")
	quick := flag.Bool("quick", false, "small client counts and short windows")
	seed := flag.Int64("seed", 42, "random seed")
	csvPath := flag.String("csv", "", "also append results as CSV to this file")
	jsonPath := flag.String("json", "", "write machine-readable JSON here (batching → BENCH_batching.json, persistence → BENCH_persistence.json, hotpath → BENCH_hotpath.json when unset)")
	assertOverhead := flag.Bool("assert-overhead", false, "with -fig latency: exit nonzero if the metrics overhead exceeds its budget")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run here (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit here (go tool pprof)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	o := bench.FigureOptions{Quick: *quick, Seed: *seed}
	out := os.Stdout
	crossPct := map[byte]int{'a': 0, 'b': 20, 'c': 80, 'd': 100}
	// An explicit -json path is honored only for a directly requested
	// figure: under -fig all, several figures emit JSON and would silently
	// clobber one another at a single path.
	jsonOverride := *jsonPath
	if strings.ToLower(*fig) == "all" {
		jsonOverride = ""
	}

	var csvOut *os.File
	if *csvPath != "" {
		f, err := os.OpenFile(*csvPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvOut = f
	}
	emit := func(name string, series []bench.Series) {
		if csvOut != nil {
			if err := bench.FprintCSV(csvOut, name, series); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
	}

	var run func(name string) bool
	run = func(name string) bool {
		switch {
		case len(name) == 2 && name[0] == '6':
			pct, ok := crossPct[name[1]]
			if !ok {
				return false
			}
			emit(name, bench.Figure6(out, pct, o))
		case len(name) == 2 && name[0] == '7':
			pct, ok := crossPct[name[1]]
			if !ok {
				return false
			}
			emit(name, bench.Figure7(out, pct, o))
		case name == "8a":
			emit(name, bench.Figure8(out, types.CrashOnly, o))
		case name == "8b":
			emit(name, bench.Figure8(out, types.Byzantine, o))
		case name == "s34":
			emit(name, bench.Section34(out, o))
		case name == "ablation":
			emit(name, bench.AblationSuperPrimary(out, o))
		case name == "skew":
			emit(name, bench.AblationSkew(out, o))
		case name == "batching":
			writeJSON(out, jsonOverride, "BENCH_batching.json", bench.AblationBatching(out, o))
		case name == "persistence":
			writeJSON(out, jsonOverride, "BENCH_persistence.json", bench.AblationPersistence(out, o))
		case name == "hotpath":
			writeJSON(out, jsonOverride, "BENCH_hotpath.json", bench.AblationHotpath(out, o))
		case name == "pipeline":
			writeJSON(out, jsonOverride, "BENCH_pipeline.json", bench.AblationPipeline(out, o))
		case name == "crossparallel":
			writeJSON(out, jsonOverride, "BENCH_crossparallel.json", bench.AblationCrossParallel(out, o))
		case name == "wan":
			writeJSON(out, jsonOverride, "BENCH_wan.json", bench.AblationWAN(out, o))
		case name == "saturation":
			writeJSON(out, jsonOverride, "BENCH_saturation.json", bench.AblationSaturation(out, o))
		case name == "latency":
			rep := bench.AblationLatency(out, o)
			writeJSON(out, jsonOverride, "BENCH_latency.json", rep)
			if *assertOverhead && rep.MetricsOverheadPct > rep.OverheadBudgetPct {
				fmt.Fprintf(os.Stderr, "metrics overhead %.2f%% exceeds the %.0f%% budget\n",
					rep.MetricsOverheadPct, rep.OverheadBudgetPct)
				os.Exit(1)
			}
		case name == "6":
			for _, p := range []string{"6a", "6b", "6c", "6d"} {
				run(p)
			}
		case name == "7":
			for _, p := range []string{"7a", "7b", "7c", "7d"} {
				run(p)
			}
		case name == "8":
			run("8a")
			run("8b")
		case name == "all":
			for _, p := range []string{"6", "7", "8", "s34", "ablation", "skew", "batching", "persistence", "hotpath", "crossparallel", "wan", "latency", "pipeline", "saturation"} {
				run(p)
			}
		default:
			return false
		}
		return true
	}

	if !run(strings.ToLower(*fig)) {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
}

// writeJSON writes results to the explicit -json path, or to the figure's
// default file when -json was not given.
func writeJSON(out *os.File, path, fallback string, results interface{}) {
	if path == "" {
		path = fallback
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "# wrote %s\n", path)
}
