// Crossshard: renders the Fig. 2 ledger structure. Intra-shard transactions
// of different clusters commit in parallel; cross-shard transactions appear
// in every involved cluster's view with one parent hash per view; and
// cross-shard transactions over disjoint cluster sets ({0,1} vs {2,3})
// proceed simultaneously — the property that distinguishes SharPer's
// flattened protocol from a single reference committee.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"sharper"
)

func main() {
	net, err := sharper.New(sharper.Options{
		Model:            sharper.CrashOnly,
		Clusters:         4,
		F:                1,
		AccountsPerShard: 8,
		InitialBalance:   1_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	// A few intra-shard transactions per cluster, concurrently.
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := net.NewClient()
			for j := 0; j < 3; j++ {
				shard := sharper.ClusterID(c)
				if _, err := cl.Transfer(
					net.AccountInShard(shard, uint64(j)),
					net.AccountInShard(shard, uint64(j+1)),
					10,
				); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()

	// Two cross-shard transactions with non-overlapping clusters — these
	// run through the flattened protocol at the same time.
	wg.Add(2)
	go func() {
		defer wg.Done()
		cl := net.NewClient()
		if _, err := cl.Transfer(net.AccountInShard(0, 0), net.AccountInShard(1, 0), 5); err != nil {
			log.Fatal(err)
		}
	}()
	go func() {
		defer wg.Done()
		cl := net.NewClient()
		if _, err := cl.Transfer(net.AccountInShard(2, 0), net.AccountInShard(3, 0), 5); err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()

	// One transaction touching three shards.
	cl := net.NewClient()
	res, err := cl.Submit([]sharper.Op{
		{From: net.AccountInShard(0, 1), To: net.AccountInShard(2, 1), Amount: 1},
		{From: net.AccountInShard(2, 1), To: net.AccountInShard(3, 1), Amount: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three-shard transaction: committed=%v cross-shard=%v\n", res.Committed, res.CrossShard)

	time.Sleep(300 * time.Millisecond) // let every replica apply everything

	fmt.Println("\nledger views (one chain per cluster; X marks cross-shard blocks):")
	fmt.Print(net.DAG().RenderASCII())

	if err := net.Verify(); err != nil {
		log.Fatalf("ledger audit: %v", err)
	}
	fmt.Println("ledger audit passed: every cross-shard block appears in all involved views, in the same order")
}
