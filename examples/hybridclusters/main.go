// Hybridclusters: the §3.4 clustered-network optimization. 23 Byzantine
// nodes with a single global fault bound f=3 fit only 2 clusters of 3f+1;
// knowing the per-group bounds — group A with 7 nodes and f=2, group B with
// 16 nodes and f=1 — the same machines form 5 clusters, and throughput
// grows with the extra parallelism.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sharper"
)

func run(name string, plan *sharper.Plan) float64 {
	net, err := sharper.New(sharper.Options{
		Model:            sharper.Byzantine,
		Plan:             plan,
		AccountsPerShard: 64,
		InitialBalance:   1 << 30,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	shards := plan.NumClusters()
	var committed atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := net.NewClient()
			for j := 0; !stop.Load(); j++ {
				fromShard := sharper.ClusterID((k + j) % shards)
				toShard := fromShard
				if j%10 == 0 && shards > 1 { // 10% cross-shard
					toShard = sharper.ClusterID((k + j + 1) % shards)
				}
				_, err := c.Transfer(
					net.AccountInShard(fromShard, uint64(j%64)),
					net.AccountInShard(toShard, uint64((j+1)%64)),
					1,
				)
				if err == nil {
					committed.Add(1)
				}
			}
		}(i)
	}
	time.Sleep(2 * time.Second)
	stop.Store(true)
	wg.Wait()

	tput := float64(committed.Load()) / 2
	fmt.Printf("%-28s %d clusters  %8.0f tx/s\n", name, shards, tput)
	return tput
}

func main() {
	fmt.Println("23 Byzantine nodes, 90% intra / 10% cross-shard workload")
	defer hybridModels()

	// Without group knowledge: global f=3 → clusters of 10 → |P| = 2
	// (the second cluster absorbs the 3 leftover nodes, §2.2).
	global, err := sharper.PlanClusters(sharper.Byzantine, []sharper.Group{
		{Nodes: 23, F: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	t2 := run("global f=3", global)

	// Group-aware: A(7 nodes, f=2) → 1 cluster; B(16 nodes, f=1) → 4
	// clusters; |P| = 5.
	aware, err := sharper.PlanClusters(sharper.Byzantine, []sharper.Group{
		{Nodes: 7, F: 2},
		{Nodes: 16, F: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	t5 := run("group-aware (A:f=2, B:f=1)", aware)

	fmt.Printf("\ngroup-aware clustering delivers %.1f× the throughput of the global plan\n", t5/t2)
}

// hybridModels demonstrates the second §3.4 extension: clusters with
// different failure models in one deployment — a private crash-only cloud
// (Paxos intra-shard) beside a public Byzantine one (PBFT intra-shard),
// with cross-shard transactions spanning both through the decentralized
// flattened protocol using per-cluster quorums.
func hybridModels() {
	fmt.Println("\nhybrid failure models: crash-only private cloud + Byzantine public cloud")
	plan, err := sharper.PlanHybridClusters([]sharper.HybridGroup{
		{Nodes: 3, F: 1, Model: sharper.CrashOnly},
		{Nodes: 8, F: 1, Model: sharper.Byzantine},
	})
	if err != nil {
		log.Fatal(err)
	}
	net, err := sharper.New(sharper.Options{
		Plan:             plan,
		AccountsPerShard: 16,
		InitialBalance:   1000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	c := net.NewClient()
	res, err := c.Transfer(net.AccountInShard(0, 0), net.AccountInShard(2, 0), 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash-shard → byzantine-shard transfer: committed=%v latency=%v\n",
		res.Committed, res.Latency)
	time.Sleep(200 * time.Millisecond)
	if err := net.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid ledger audit passed")
}
