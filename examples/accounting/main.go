// Accounting: the paper's §4 evaluation application — a blockchain-based
// accounting service where clients transfer assets between accounts spread
// over shards. Many concurrent clients drive a 90/10 intra/cross-shard mix
// (the "typical settings in partitioned database systems") against a
// Byzantine deployment, then the example audits global conservation of
// money and ledger consistency.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sharper"
)

const (
	clusters         = 4
	accountsPerShard = 64
	initialBalance   = int64(10_000)
	clients          = 8
	txPerClient      = 50
)

func main() {
	net, err := sharper.New(sharper.Options{
		Model:            sharper.Byzantine, // PBFT intra-shard, Algorithm 2 cross-shard
		Clusters:         clusters,
		F:                1,
		AccountsPerShard: accountsPerShard,
		InitialBalance:   initialBalance,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	var committed, rejected, crossShard atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := net.NewClient()
			for j := 0; j < txPerClient; j++ {
				fromShard := sharper.ClusterID(k % clusters)
				toShard := fromShard
				if j%10 == 0 { // 10% cross-shard
					toShard = sharper.ClusterID((k + 1 + j) % clusters)
				}
				from := net.AccountInShard(fromShard, uint64((k*7+j)%accountsPerShard))
				to := net.AccountInShard(toShard, uint64((k*13+j+1)%accountsPerShard))
				if from == to {
					continue
				}
				res, err := c.Transfer(from, to, int64(1+j%5))
				if err != nil {
					log.Fatalf("client %d: %v", k, err)
				}
				if res.Committed {
					committed.Add(1)
				} else {
					rejected.Add(1)
				}
				if res.CrossShard {
					crossShard.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	time.Sleep(300 * time.Millisecond) // let all replicas settle

	fmt.Printf("committed %d transactions (%d rejected, %d cross-shard) in %v — %.0f tx/s\n",
		committed.Load(), rejected.Load(), crossShard.Load(), elapsed.Round(time.Millisecond),
		float64(committed.Load())/elapsed.Seconds())

	// Audit 1: money is conserved globally (transfers only move balances).
	var total int64
	for c := 0; c < clusters; c++ {
		for k := 0; k < accountsPerShard; k++ {
			total += net.Balance(net.AccountInShard(sharper.ClusterID(c), uint64(k)))
		}
	}
	want := int64(clusters*accountsPerShard) * initialBalance
	if total != want {
		log.Fatalf("conservation violated: total=%d want=%d", total, want)
	}
	fmt.Printf("conservation audit passed: total balance %d unchanged\n", total)

	// Audit 2: the DAG ledger is internally consistent across all views.
	if err := net.Verify(); err != nil {
		log.Fatalf("ledger audit: %v", err)
	}
	fmt.Println("ledger audit passed: per-view chains and cross-shard order agree")
}
