// Quickstart: spin up a 3-cluster crash-fault-tolerant SharPer network,
// move money within and across shards, and read the resulting balances.
package main

import (
	"fmt"
	"log"

	"sharper"
)

func main() {
	net, err := sharper.New(sharper.Options{
		Model:            sharper.CrashOnly, // Paxos intra-shard, Algorithm 1 cross-shard
		Clusters:         3,                 // three clusters → three data shards
		F:                1,                 // tolerate one crash per cluster (2f+1 = 3 nodes each)
		AccountsPerShard: 16,
		InitialBalance:   1_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	client := net.NewClient()

	alice := net.AccountInShard(0, 0) // lives in shard 0
	bob := net.AccountInShard(0, 1)   // also shard 0
	carol := net.AccountInShard(2, 0) // lives in shard 2

	// Intra-shard transfer: ordered by shard 0's own Paxos instance.
	res, err := client.Transfer(alice, bob, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice→bob   100: committed=%v cross-shard=%v latency=%v\n",
		res.Committed, res.CrossShard, res.Latency)

	// Cross-shard transfer: ordered by the flattened protocol among the
	// two involved clusters only — cluster 1 is not consulted.
	res, err = client.Transfer(alice, carol, 250)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice→carol 250: committed=%v cross-shard=%v latency=%v\n",
		res.Committed, res.CrossShard, res.Latency)

	// Overdraft: ordered, then rejected atomically by validation.
	res, err = client.Transfer(alice, carol, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overdraft      : committed=%v (rejected as expected)\n", res.Committed)

	fmt.Printf("balances: alice=%d bob=%d carol=%d\n",
		net.Balance(alice), net.Balance(bob), net.Balance(carol))

	if err := net.Verify(); err != nil {
		log.Fatalf("ledger audit: %v", err)
	}
	fmt.Println("ledger audit passed")
}
