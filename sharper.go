// Package sharper is a Go implementation of SharPer, the permissioned
// blockchain system of Amiri, Agrawal, and El Abbadi ("SharPer: Sharding
// Permissioned Blockchains Over Network Clusters", SIGMOD 2021).
//
// SharPer partitions the nodes of a permissioned blockchain into clusters
// of 2f+1 crash-only or 3f+1 Byzantine nodes, assigns one data shard to
// each cluster, and represents the ledger as a directed acyclic graph of
// single-transaction blocks in which every cluster maintains only its own
// view. Intra-shard transactions are ordered by per-cluster consensus
// (Paxos or PBFT); cross-shard transactions are ordered by a flattened
// consensus protocol among all and only the involved clusters, so
// cross-shard transactions over disjoint cluster sets commit in parallel.
//
// The package runs a full deployment on a simulated network fabric with
// configurable latency, fault injection, and a per-node processing-cost
// model, which makes it suitable for protocol research, benchmarking, and
// teaching. See DESIGN.md for the mapping from the paper's sections to the
// packages under internal/.
//
// # Quick start
//
//	net, err := sharper.New(sharper.Options{
//		Model:    sharper.CrashOnly,
//		Clusters: 4,
//		F:        1,
//	})
//	if err != nil { ... }
//	defer net.Close()
//
//	client := net.NewClient()
//	res, err := client.Transfer(
//		net.AccountInShard(0, 0), // from, shard 0
//		net.AccountInShard(1, 0), // to, shard 1 → cross-shard
//		42,
//	)
package sharper

import (
	"fmt"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/core"
	"sharper/internal/ledger"
	"sharper/internal/storage"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// FailureModel selects the fault assumption of a deployment.
type FailureModel = types.FailureModel

// Failure models.
const (
	// CrashOnly tolerates f stop failures per cluster of 2f+1 nodes, using
	// Paxos intra-shard and Algorithm 1 cross-shard.
	CrashOnly = types.CrashOnly
	// Byzantine tolerates f arbitrary failures per cluster of 3f+1 nodes,
	// using PBFT intra-shard and Algorithm 2 cross-shard.
	Byzantine = types.Byzantine
)

// AccountID names an account in the account-based data model.
type AccountID = types.AccountID

// Op is a single transfer inside a transaction.
type Op = types.Op

// ClusterID identifies a cluster and its data shard.
type ClusterID = types.ClusterID

// Transport selects the message fabric a deployment runs over.
type Transport int

const (
	// TransportSim is the in-process simulated fabric with modelled latency,
	// fault injection, and per-message processing cost — the default, and
	// what tests and benchmarks use.
	TransportSim Transport = iota
	// TransportTCP runs every replica on its own loopback TCP socket:
	// length-prefixed, HMAC-authenticated frames between real listeners.
	// Same API, real wire. For a deployment of separate OS processes (one
	// replica per process, on loopback or a LAN), see cmd/sharperd's
	// -topology/-listen mode.
	TransportTCP
)

// MaxBatchSize is the upper bound on Options.BatchSize: the flattened
// cross-shard protocol carries per-transaction validity verdicts as a 64-bit
// bitmap, so larger blocks cannot be voted on (see DESIGN.md).
const MaxBatchSize = core.MaxBatchSize

// SyncPolicy selects when a durable deployment fsyncs its write-ahead log.
// Every policy writes records before the message they vouch for leaves the
// node, so killing a replica process loses nothing; the policies trade
// throughput against what an OS or power failure can take (see DESIGN.md,
// "Durable storage").
type SyncPolicy = storage.SyncPolicy

// Sync policies for Options.Sync.
const (
	// SyncGroup (the default) batches fsyncs: a background flusher syncs
	// acknowledged acceptor state every 50ms, so an OS crash can lose at
	// most that window (a killed process loses nothing).
	SyncGroup = storage.SyncGroup
	// SyncNone never fsyncs; the kernel writes back on its own schedule.
	SyncNone = storage.SyncNone
	// SyncAlways fsyncs every record before the ack leaves.
	SyncAlways = storage.SyncAlways
)

// NetworkOptions tunes the simulated fabric.
type NetworkOptions struct {
	// IntraClusterLatency is the one-way delay inside a cluster.
	IntraClusterLatency time.Duration
	// CrossClusterLatency is the one-way delay between clusters.
	CrossClusterLatency time.Duration
	// ClientLatency is the one-way client↔replica delay.
	ClientLatency time.Duration
	// DropProb drops each message with this probability.
	DropProb float64
	// ProcessingTime is the per-message service cost at each replica.
	ProcessingTime time.Duration
}

// Options configures a deployment.
type Options struct {
	// Model is the failure assumption (CrashOnly or Byzantine).
	Model FailureModel
	// Clusters is the number of clusters |P| (= number of shards).
	Clusters int
	// F is the per-cluster fault bound; cluster size follows from Model.
	F int
	// AccountsPerShard seeds this many accounts per shard at genesis.
	AccountsPerShard int
	// InitialBalance is each seeded account's starting balance.
	InitialBalance int64
	// DisableSuperPrimary turns off the §3.2 super-primary routing rule.
	DisableSuperPrimary bool
	// Transport selects the fabric: TransportSim (default) or TransportTCP.
	Transport Transport
	// Network tunes the simulated fabric; zero values take defaults.
	// Ignored under TransportTCP (real sockets have real latency).
	Network NetworkOptions
	// Multiregion shapes every link after the paper's cross-datacenter
	// setup — sub-millisecond intra-cluster links, ~30ms / 200Mbps between
	// clusters — on either transport (the simulated fabric models the
	// delays; TCP fabrics shape their real sockets). It overrides the
	// scalar Network latencies.
	Multiregion bool
	// Seed drives all randomness; runs with equal seeds are comparable.
	Seed int64
	// Plan overrides the uniform cluster layout, e.g. the §3.4
	// group-aware plan built with PlanClusters.
	Plan *Plan
	// BatchSize caps the number of transactions per block (one consensus
	// instance orders the whole batch). The default of 1 reproduces the
	// paper's single-transaction blocks; larger values amortize the quorum
	// message cost and raise saturation throughput. Values above
	// MaxBatchSize (64, the cross-shard validity-bitmap width) are rejected
	// by New with an error. See DESIGN.md, "Batched blocks".
	BatchSize int
	// BatchTimeout bounds how long a partial batch waits for more requests
	// while earlier instances are in flight (default 2ms). A batch never
	// waits when the pipeline is empty.
	BatchTimeout time.Duration
	// MaxInFlight bounds pipelined consensus instances per cluster
	// (default 8).
	MaxInFlight int
	// VerifyWindow is each node's signature batch-verification window: up
	// to this many queued envelopes are verified per batch, with bisection
	// recovering exact per-envelope verdicts when a batch fails. 1 verifies
	// strictly per signature; 0 takes the SHARPER_VERIFY_WINDOW override,
	// defaulting to crypto.DefaultVerifyWindow.
	VerifyWindow int
	// SerializeCross restores the legacy serialized cross-shard scheduler
	// (whole-node lock, drain-gated initiation, one lead at a time) in
	// place of the conflict-aware one, for A/B comparison.
	SerializeCross bool
	// InlineCommit restores the pre-pipeline synchronous commit path (the
	// event loop applies, persists, and replies between consensus
	// messages) in place of the commit pipeline, for A/B comparison.
	InlineCommit bool
	// DataDir enables durable storage: every replica keeps a write-ahead
	// log and periodic checkpoints under DataDir/node-<id>, and a replica
	// restarted over the same directory (RestartNode, or a new process for
	// sharperd deployments) recovers its chain, balances, and consensus
	// obligations from disk, then fetches only the delta via chain sync.
	// Empty (the default) runs in-memory; setting SHARPER_PERSIST=1 in the
	// environment turns persistence on for such deployments too (CI runs
	// the whole suite that way).
	DataDir string
	// Sync is the write-ahead-log fsync policy (default SyncGroup).
	Sync SyncPolicy
	// CheckpointInterval is the number of committed blocks between
	// checkpoints (default 256).
	CheckpointInterval int
	// Ed25519 switches Byzantine deployments from the default HMAC
	// authenticators to real ed25519 signatures. Slower, but fraud proofs
	// minted under it are verifiable by third parties holding only public
	// keys.
	Ed25519 bool
	// Slash arms the equivocation-detecting auditor on every replica:
	// conflicting signed claims (double proposals, double votes, conflicting
	// view-change histories) are turned into fraud proofs, gossiped
	// cluster-wide, persisted to the evidence log when DataDir is set, and
	// exposed through FraudProofs. See DESIGN.md, "Adversary model &
	// slashing".
	Slash bool
}

// Network is a running SharPer deployment.
type Network struct {
	d *core.Deployment
}

// New builds and starts a deployment.
func New(opts Options) (*Network, error) {
	if opts.BatchSize > MaxBatchSize {
		return nil, fmt.Errorf("sharper: BatchSize %d exceeds MaxBatchSize %d (the cross-shard validity bitmap is %d bits wide)",
			opts.BatchSize, MaxBatchSize, MaxBatchSize)
	}
	if opts.AccountsPerShard <= 0 {
		opts.AccountsPerShard = 1024
	}
	if opts.InitialBalance == 0 {
		opts.InitialBalance = 1 << 40
	}
	netCfg := transport.DefaultConfig()
	if opts.Network.IntraClusterLatency > 0 {
		netCfg.IntraClusterLatency = opts.Network.IntraClusterLatency
	}
	if opts.Network.CrossClusterLatency > 0 {
		netCfg.CrossClusterLatency = opts.Network.CrossClusterLatency
	}
	if opts.Network.ClientLatency > 0 {
		netCfg.ClientLatency = opts.Network.ClientLatency
	}
	if opts.Network.DropProb > 0 {
		netCfg.DropProb = opts.Network.DropProb
	}
	if opts.Network.ProcessingTime > 0 {
		netCfg.ProcessingTime = opts.Network.ProcessingTime
	}
	cfg := core.Config{
		Model:               opts.Model,
		Clusters:            opts.Clusters,
		F:                   opts.F,
		Transport:           core.TransportKind(opts.Transport),
		Network:             netCfg,
		DisableSuperPrimary: opts.DisableSuperPrimary,
		Seed:                opts.Seed,
		BatchSize:           opts.BatchSize,
		BatchTimeout:        opts.BatchTimeout,
		MaxInFlight:         opts.MaxInFlight,
		VerifyWindow:        opts.VerifyWindow,
		SerializeCross:      opts.SerializeCross,
		InlineCommit:        opts.InlineCommit,
		DataDir:             opts.DataDir,
		Sync:                opts.Sync,
		CheckpointInterval:  opts.CheckpointInterval,
		Ed25519:             opts.Ed25519,
		Slash:               opts.Slash,
	}
	if opts.Multiregion {
		cfg.Shaping = transport.Multiregion()
	}
	if opts.Plan != nil {
		cfg.Topology = opts.Plan.topo
	}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	d.SeedAccounts(opts.AccountsPerShard, opts.InitialBalance)
	d.Start()
	return &Network{d: d}, nil
}

// Close stops every node and tears down the fabric.
func (n *Network) Close() { n.d.Stop() }

// Clusters returns the number of clusters (= shards).
func (n *Network) Clusters() int { return len(n.d.Topo.Clusters) }

// AccountInShard returns the k-th seeded account of the given shard, so
// callers can construct intra- or cross-shard transfers deliberately.
func (n *Network) AccountInShard(shard ClusterID, k uint64) AccountID {
	return n.d.Shards.AccountInShard(shard, k)
}

// ShardOf returns the shard that stores the account.
func (n *Network) ShardOf(a AccountID) ClusterID { return n.d.Shards.Cluster(a) }

// Balance reads an account's balance from a replica of its shard.
// It is a direct state read, not an ordered transaction.
func (n *Network) Balance(a AccountID) int64 {
	c := n.d.Shards.Cluster(a)
	return n.d.Node(n.d.Topo.Members(c)[0]).Store().Balance(a)
}

// DAG assembles the union blockchain ledger (Fig. 2a) from one
// representative view per cluster, for inspection and audits.
func (n *Network) DAG() *ledger.DAG { return n.d.DAG() }

// SchedStats returns the deployment-wide aggregate of every replica's
// cross-shard scheduler counters (leads in flight, conflict-table size,
// parks, withdraws, deferral precision) — the conflict-aware scheduler's
// observability surface. Call it on a quiesced (or closed) network; a
// running deployment is probed over the wire instead (MsgStatsRequest),
// which each replica's event loop answers itself.
func (n *Network) SchedStats() types.SchedStats {
	var agg types.SchedStats
	for _, node := range n.d.Nodes() {
		agg.Add(node.Counters())
	}
	return agg
}

// FraudProofs returns every distinct fraud proof the deployment's slashers
// hold (empty unless Options.Slash; gossip deduplicated). Call it on a
// quiesced (or closed) network, like SchedStats.
func (n *Network) FraudProofs() []*types.FraudProof { return n.d.FraudProofs() }

// Verify checks ledger consistency across all clusters: per-view hash
// chains, cross-shard agreement, and pairwise commit order. Call it on a
// quiesced network.
func (n *Network) Verify() error {
	dag := n.d.DAG()
	if err := dag.Verify(); err != nil {
		return err
	}
	return dag.VerifyPairwiseOrder()
}

// CrashNode simulates the crash of one replica of the given cluster
// (0 ≤ idx < cluster size). Consensus keeps making progress while at most f
// replicas per cluster are down; crashing a primary triggers a view change.
func (n *Network) CrashNode(cluster ClusterID, idx int) error {
	members := n.d.Topo.Members(cluster)
	if idx < 0 || idx >= len(members) {
		return fmt.Errorf("sharper: cluster %s has no member %d", cluster, idx)
	}
	n.d.CrashNode(members[idx])
	return nil
}

// RestartNode restarts a (typically crashed) replica as if its process had
// been killed and relaunched: with Options.DataDir set the replica recovers
// its chain, balances, and consensus obligations from disk and then fetches
// only what it missed via chain sync; without durable storage it rejoins
// empty and resyncs from genesis. Simulated transport only.
func (n *Network) RestartNode(cluster ClusterID, idx int) error {
	members := n.d.Topo.Members(cluster)
	if idx < 0 || idx >= len(members) {
		return fmt.Errorf("sharper: cluster %s has no member %d", cluster, idx)
	}
	_, err := n.d.RestartNode(members[idx])
	return err
}

// Result reports the outcome of a submitted transaction.
type Result struct {
	// Committed is true when the transaction's effects were applied; false
	// means it was ordered but rejected by validation (e.g. overdraft).
	Committed bool
	// CrossShard reports whether the transaction spanned clusters.
	CrossShard bool
	// Latency is the end-to-end client-observed time.
	Latency time.Duration
}

// Client issues transactions against the deployment. Each client is a
// single closed-loop issuer; create one per concurrent goroutine.
type Client struct {
	n *Network
	c *core.Client
}

// NewClient registers a new client endpoint.
func (n *Network) NewClient() *Client {
	return &Client{n: n, c: n.d.NewClient()}
}

// SetRetry adjusts the client's per-attempt reply timeout and its attempt
// budget (default 2s × 8). Fault-injection tests that must ride out view
// changes under heavy machine load scale the budget up instead of racing a
// fixed deadline.
func (c *Client) SetRetry(timeout time.Duration, attempts int) {
	if timeout > 0 {
		c.c.Timeout = timeout
	}
	if attempts > 0 {
		c.c.MaxAttempts = attempts
	}
}

// Transfer moves amount from one account to another, waiting for the reply
// quorum. The involved-cluster set is derived from the accounts: same shard
// → intra-shard consensus, different shards → flattened cross-shard
// consensus.
func (c *Client) Transfer(from, to AccountID, amount int64) (Result, error) {
	return c.Submit([]Op{{From: from, To: to, Amount: amount}})
}

// Submit executes a multi-op transaction atomically.
func (c *Client) Submit(ops []Op) (Result, error) {
	tx := c.c.MakeTx(ops)
	committed, lat, err := c.c.Submit(tx)
	return Result{
		Committed:  committed,
		CrossShard: tx.IsCrossShard(),
		Latency:    lat,
	}, err
}

// Submit outcomes surfaced by gateway clients.
var (
	// ErrOverloaded: the gateway's mempool shed the submit under admission
	// control; back off and retry later.
	ErrOverloaded = core.ErrOverloaded
	// ErrExpired: the transaction's timestamp fell outside the mempool TTL;
	// re-issue with a fresh timestamp.
	ErrExpired = core.ErrExpired
)

// GatewayClient issues transactions through the client-ingress plane
// (MsgSubmit → per-shard mempool → sealer) instead of the direct request
// path: submits are routed shard-aware to the owning cluster's gateways,
// admitted into byte- and count-capped pools, and answered per transaction —
// including explicit Overloaded / Expired verdicts when admission control
// sheds. Create one per concurrent goroutine, like Client.
type GatewayClient struct {
	n *Network
	c *core.GatewayClient
}

// NewGatewayClient registers a new gateway-client endpoint.
func (n *Network) NewGatewayClient() *GatewayClient {
	return &GatewayClient{n: n, c: n.d.NewGatewayClient()}
}

// SetRetry adjusts the client's per-attempt reply timeout and its attempt
// budget (default 2s × 8), like Client.SetRetry.
func (c *GatewayClient) SetRetry(timeout time.Duration, attempts int) {
	if timeout > 0 {
		c.c.Timeout = timeout
	}
	if attempts > 0 {
		c.c.MaxAttempts = attempts
	}
}

// Transfer moves amount between accounts through the gateway path.
func (c *GatewayClient) Transfer(from, to AccountID, amount int64) (Result, error) {
	return c.Submit([]Op{{From: from, To: to, Amount: amount}})
}

// Submit executes a multi-op transaction atomically through the gateway
// path. Admission sheds return ErrOverloaded or ErrExpired.
func (c *GatewayClient) Submit(ops []Op) (Result, error) {
	tx := c.c.MakeTx(ops)
	committed, lat, err := c.c.Submit(tx)
	return Result{
		Committed:  committed,
		CrossShard: tx.IsCrossShard(),
		Latency:    lat,
	}, err
}

// Plan is a cluster layout, possibly heterogeneous (§3.4): groups with
// known, different fault bounds yield more clusters than a single global f.
type Plan struct {
	topo *consensus.Topology
}

// Group describes one node group for PlanClusters.
type Group struct {
	// Nodes is the group's size.
	Nodes int
	// F is the group's fault bound.
	F int
}

// PlanClusters builds the §3.4 group-aware plan: each group is partitioned
// independently into clusters of Model.ClusterSize(group.F), with leftover
// nodes absorbed by the group's last cluster.
func PlanClusters(model FailureModel, groups []Group) (*Plan, error) {
	topo := &consensus.Topology{Model: model, Clusters: map[types.ClusterID]consensus.Cluster{}}
	next := types.NodeID(0)
	cid := types.ClusterID(0)
	for gi, g := range groups {
		size := model.ClusterSize(g.F)
		if g.Nodes < size {
			return nil, fmt.Errorf("sharper: group %d has %d nodes, needs at least %d for f=%d",
				gi, g.Nodes, size, g.F)
		}
		count := g.Nodes / size
		for c := 0; c < count; c++ {
			members := size
			if c == count-1 {
				members = g.Nodes - size*(count-1) // last cluster absorbs leftovers
			}
			cl := consensus.Cluster{ID: cid, F: g.F}
			for i := 0; i < members; i++ {
				cl.Members = append(cl.Members, next)
				next++
			}
			topo.Clusters[cid] = cl
			cid++
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &Plan{topo: topo}, nil
}

// NumClusters returns the number of clusters in the plan.
func (p *Plan) NumClusters() int { return len(p.topo.Clusters) }

// HybridGroup describes one node group for PlanHybridClusters: its size,
// fault bound, and failure model.
type HybridGroup struct {
	// Nodes is the group's size.
	Nodes int
	// F is the group's fault bound.
	F int
	// Model is the group's failure model: crash-only groups form clusters
	// of 2f+1 running Paxos, Byzantine groups clusters of 3f+1 running
	// PBFT.
	Model FailureModel
}

// PlanHybridClusters builds the §3.4 hybrid-cloud plan: clusters with
// different failure models in one deployment (e.g. a private crash-only
// cloud next to a public Byzantine one). Intra-shard consensus follows each
// cluster's own model; cross-shard transactions run the decentralized
// flattened protocol with per-cluster quorums (f+1 from crash clusters,
// 2f+1 from Byzantine ones) and deployment-wide signatures.
func PlanHybridClusters(groups []HybridGroup) (*Plan, error) {
	topo := &consensus.Topology{Model: CrashOnly, Clusters: map[types.ClusterID]consensus.Cluster{}}
	next := types.NodeID(0)
	cid := types.ClusterID(0)
	for gi, g := range groups {
		size := g.Model.ClusterSize(g.F)
		if g.Nodes < size {
			return nil, fmt.Errorf("sharper: hybrid group %d has %d nodes, needs at least %d for f=%d (%s)",
				gi, g.Nodes, size, g.F, g.Model)
		}
		count := g.Nodes / size
		for c := 0; c < count; c++ {
			members := size
			if c == count-1 {
				members = g.Nodes - size*(count-1)
			}
			cl := consensus.Cluster{ID: cid, F: g.F, Model: g.Model, ModelSet: true}
			for i := 0; i < members; i++ {
				cl.Members = append(cl.Members, next)
				next++
			}
			topo.Clusters[cid] = cl
			cid++
		}
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	return &Plan{topo: topo}, nil
}
