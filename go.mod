module sharper

go 1.22
