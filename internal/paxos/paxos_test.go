package paxos

import (
	"testing"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/ledger"
	"sharper/internal/types"
)

// harness drives a cluster of engines deterministically: outbound messages
// are queued and delivered in FIFO order, with optional drops.
type harness struct {
	t       *testing.T
	topo    *consensus.Topology
	engines map[types.NodeID]*Engine
	queue   []routed
	decided map[types.NodeID][]consensus.Decision
	drop    func(to types.NodeID, env *types.Envelope) bool
	now     time.Time
}

type routed struct {
	to  types.NodeID
	env *types.Envelope
}

func newHarness(t *testing.T, f int) *harness {
	topo := consensus.UniformTopology(types.CrashOnly, 1, f)
	h := &harness{
		t:       t,
		topo:    topo,
		engines: make(map[types.NodeID]*Engine),
		decided: make(map[types.NodeID][]consensus.Decision),
		now:     time.Unix(0, 0),
	}
	for _, id := range topo.AllNodes() {
		h.engines[id] = New(Config{Topology: topo, Cluster: 0, Self: id, Timeout: 100 * time.Millisecond},
			ledger.GenesisHash())
	}
	return h
}

func (h *harness) sendAll(outs []consensus.Outbound) {
	for _, o := range outs {
		for _, to := range o.To {
			if h.drop != nil && h.drop(to, o.Env) {
				continue
			}
			h.queue = append(h.queue, routed{to: to, env: o.Env})
		}
	}
}

// pump delivers queued messages until quiescence.
func (h *harness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		outs, decs := h.engines[m.to].Step(m.env, h.now)
		h.sendAll(outs)
		h.decided[m.to] = append(h.decided[m.to], decs...)
	}
}

// tick advances time and fires every engine's timers.
func (h *harness) tick(d time.Duration) {
	h.now = h.now.Add(d)
	for _, id := range h.topo.AllNodes() {
		outs, decs := h.engines[id].Tick(h.now)
		h.sendAll(outs)
		h.decided[id] = append(h.decided[id], decs...)
	}
	h.pump()
}

func (h *harness) propose(txs ...*types.Transaction) {
	for _, e := range h.engines {
		if e.IsPrimary() {
			outs, _ := e.Propose(txs, h.now)
			h.sendAll(outs)
			h.pump()
			return
		}
	}
	h.t.Fatal("no primary")
}

// batch wraps transactions as a proposal batch.
func batch(txs ...*types.Transaction) []*types.Transaction { return txs }

func tx(seq uint64) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: types.ClientIDBase + 1, Seq: seq},
		Client:   types.ClientIDBase + 1,
		Ops:      []types.Op{{From: 0, To: 1, Amount: int64(seq)}},
		Involved: types.ClusterSet{0},
	}
}

func TestNormalCaseCommit(t *testing.T) {
	h := newHarness(t, 1)
	h.propose(tx(1))
	h.propose(tx(2))
	for id, decs := range h.decided {
		if len(decs) != 2 {
			t.Fatalf("node %s decided %d blocks, want 2", id, len(decs))
		}
		if decs[0].Seq != 1 || decs[1].Seq != 2 {
			t.Fatalf("node %s decided out of order: %v", id, decs)
		}
		if decs[0].Block.Txs[0].ID.Seq != 1 {
			t.Fatalf("node %s decided wrong tx first", id)
		}
	}
	// All engines agree on the committed head.
	var head types.Hash
	for _, e := range h.engines {
		_, h2 := e.ProposedHead()
		if head.IsZero() {
			head = h2
		} else if head != h2 {
			t.Fatal("heads diverge")
		}
	}
}

// TestBatchedCommit: a multi-transaction batch commits through one Paxos
// instance as one block, in proposal order, at every node.
func TestBatchedCommit(t *testing.T) {
	h := newHarness(t, 1)
	h.propose(tx(1), tx(2), tx(3))
	for id, decs := range h.decided {
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d instances, want 1", id, len(decs))
		}
		b := decs[0].Block
		if len(b.Txs) != 3 {
			t.Fatalf("node %s block carries %d txs, want 3", id, len(b.Txs))
		}
		for i, bt := range b.Txs {
			if bt.ID.Seq != uint64(i+1) {
				t.Fatalf("node %s batch order broken at %d", id, i)
			}
		}
	}
}

func TestPipelinedProposals(t *testing.T) {
	h := newHarness(t, 1)
	// Queue three proposals before delivering anything.
	var primary *Engine
	for _, e := range h.engines {
		if e.IsPrimary() {
			primary = e
		}
	}
	for i := uint64(1); i <= 3; i++ {
		outs, seq := primary.Propose(batch(tx(i)), h.now)
		if seq != i {
			t.Fatalf("assigned seq %d, want %d", seq, i)
		}
		h.sendAll(outs)
	}
	h.pump()
	for id, decs := range h.decided {
		if len(decs) != 3 {
			t.Fatalf("node %s decided %d, want 3", id, len(decs))
		}
	}
}

func TestCommitWithFCrashedBackups(t *testing.T) {
	h := newHarness(t, 1)
	crashed := h.topo.Members(0)[2]
	h.drop = func(to types.NodeID, env *types.Envelope) bool { return to == crashed }
	h.propose(tx(1))
	for id, decs := range h.decided {
		if id == crashed {
			continue
		}
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d, want 1", id, len(decs))
		}
	}
}

func TestViewChangeOnPrimaryCrash(t *testing.T) {
	h := newHarness(t, 1)
	old := h.topo.Primary(0, 0)
	h.propose(tx(1))
	// Crash the primary, then deliver a proposal that cannot commit: a
	// backup accepts but never sees the commit, its timer fires.
	h.drop = func(to types.NodeID, env *types.Envelope) bool { return to == old }
	outs, _ := h.engines[old].Propose(batch(tx(2)), h.now)
	h.sendAll(outs)
	h.pump()
	// Fire timers past the timeout: backups suspect and elect view 1.
	h.tick(200 * time.Millisecond)
	h.tick(200 * time.Millisecond)
	for id, e := range h.engines {
		if id == old {
			continue
		}
		if e.View() != 1 {
			t.Fatalf("node %s still in view %d", id, e.View())
		}
	}
	newPrimary := h.topo.Primary(0, 1)
	if newPrimary == old {
		t.Fatal("rotation returned the crashed primary")
	}
	// The new primary can commit fresh transactions.
	outs, _ = h.engines[newPrimary].Propose(batch(tx(3)), h.now)
	h.sendAll(outs)
	h.pump()
	committed := 0
	for id, decs := range h.decided {
		if id == old {
			continue
		}
		for _, d := range decs {
			if d.Block.Txs[0].ID.Seq == 3 {
				committed++
			}
		}
	}
	if committed != 2 {
		t.Fatalf("tx 3 committed at %d live nodes, want 2", committed)
	}
}

func TestSuspectPrimary(t *testing.T) {
	h := newHarness(t, 1)
	backup := h.topo.Members(0)[1]
	outs := h.engines[backup].SuspectPrimary(h.now)
	if len(outs) == 0 {
		t.Fatal("suspicion produced no view-change message")
	}
	h.sendAll(outs)
	h.pump()
	h.tick(10 * time.Millisecond)
}

func TestSyncChainHeadResetsPipeline(t *testing.T) {
	h := newHarness(t, 1)
	var primary *Engine
	for _, e := range h.engines {
		if e.IsPrimary() {
			primary = e
		}
	}
	h.propose(tx(1))
	// Primary pipelines seq 2 and 3; they never commit.
	primary.Propose(batch(tx(2)), h.now)
	primary.Propose(batch(tx(3)), h.now)
	// An external (cross-shard) block takes seq 2.
	external := types.HashBytes([]byte("cross-block"))
	_, _, orphans := primary.SyncChainHead(2, external, h.now)
	if len(orphans) != 2 {
		t.Fatalf("%d orphans, want 2 (the dead pipeline)", len(orphans))
	}
	seq, head := primary.ProposedHead()
	if seq != 2 || head != external {
		t.Fatalf("pipeline not reset: seq=%d", seq)
	}
	// The next proposal chains to the external block at seq 3.
	_, seq = primary.Propose(batch(tx(4)), h.now)
	if seq != 3 {
		t.Fatalf("next proposal at seq %d, want 3", seq)
	}
}

func TestStaleProposalRejected(t *testing.T) {
	h := newHarness(t, 1)
	backup := h.topo.Members(0)[1]
	// A proposal whose parent does not extend the backup's chain.
	m := &types.ConsensusMsg{
		View: 0, Seq: 1, Digest: types.BatchDigest(batch(tx(9))), Cluster: 0,
		PrevHashes: []types.Hash{types.HashBytes([]byte("bogus"))},
		Txs:        batch(tx(9)),
	}
	outs, decs := h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPaxosAccept, From: h.topo.Primary(0, 0), Payload: m.Encode(nil),
	}, h.now)
	if len(outs) != 0 || len(decs) != 0 {
		t.Fatal("backup accepted a proposal that does not extend its chain")
	}
}

func TestNonPrimaryProposalIgnored(t *testing.T) {
	h := newHarness(t, 1)
	backup := h.topo.Members(0)[2]
	m := &types.ConsensusMsg{
		View: 0, Seq: 1, Digest: types.BatchDigest(batch(tx(9))), Cluster: 0,
		PrevHashes: []types.Hash{ledger.GenesisHash()},
		Txs:        batch(tx(9)),
	}
	// Sent "from" a backup instead of the primary.
	outs, _ := h.engines[h.topo.Members(0)[1]].Step(&types.Envelope{
		Type: types.MsgPaxosAccept, From: backup, Payload: m.Encode(nil),
	}, h.now)
	if len(outs) != 0 {
		t.Fatal("proposal from a non-primary was answered")
	}
}

func TestOutOfOrderDeliveryParksAndRecovers(t *testing.T) {
	h := newHarness(t, 1)
	var primary *Engine
	for _, e := range h.engines {
		if e.IsPrimary() {
			primary = e
		}
	}
	outs1, _ := primary.Propose(batch(tx(1)), h.now)
	outs2, _ := primary.Propose(batch(tx(2)), h.now)
	// Deliver proposal 2 before proposal 1 at one backup.
	backup := h.topo.Members(0)[1]
	for _, o := range append(outs2, outs1...) {
		for _, to := range o.To {
			if to != backup {
				continue
			}
			replies, _ := h.engines[backup].Step(o.Env, h.now)
			h.sendAll(replies)
		}
	}
	h.pump()
	seq, _ := h.engines[backup].ProposedHead()
	if seq != 2 {
		t.Fatalf("backup proposedSeq %d, want 2 (parked proposal replayed)", seq)
	}
}

func TestCommitBeforeAcceptBuffered(t *testing.T) {
	h := newHarness(t, 1)
	var primary *Engine
	for _, e := range h.engines {
		if e.IsPrimary() {
			primary = e
		}
	}
	outs, _ := primary.Propose(batch(tx(1)), h.now)
	backup := h.topo.Members(0)[1]

	// Hand-build the commit the primary would send and deliver it BEFORE
	// the accept at one backup (network reordering).
	cm := &types.ConsensusMsg{View: 0, Seq: 1, Digest: types.BatchDigest(batch(tx(1))), Cluster: 0}
	_, decs := h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPaxosCommit, From: primary.self, Payload: cm.Encode(nil),
	}, h.now)
	if len(decs) != 0 {
		t.Fatal("decided without the transaction body")
	}
	// Now the accept arrives: the buffered commit completes the instance.
	for _, o := range outs {
		for _, to := range o.To {
			if to != backup {
				continue
			}
			_, decs = h.engines[backup].Step(o.Env, h.now)
		}
	}
	if len(decs) != 1 || decs[0].Block.Txs[0].ID.Seq != 1 {
		t.Fatalf("reordered commit+accept did not decide: %v", decs)
	}
}

func TestDuplicateAcceptedNotDoubleCounted(t *testing.T) {
	h := newHarness(t, 2) // 5 nodes, quorum f+1 = 3
	var primary *Engine
	for _, e := range h.engines {
		if e.IsPrimary() {
			primary = e
		}
	}
	outs, _ := primary.Propose(batch(tx(1)), h.now)
	_ = outs
	// One backup's accepted message delivered three times must not commit
	// (primary + 1 distinct backup = 2 < 3).
	m := &types.ConsensusMsg{View: 0, Seq: 1, Digest: types.BatchDigest(batch(tx(1))), Cluster: 0}
	env := &types.Envelope{Type: types.MsgPaxosAccepted, From: h.topo.Members(0)[1], Payload: m.Encode(nil)}
	var sent []consensus.Outbound
	for i := 0; i < 3; i++ {
		o, _ := primary.Step(env, h.now)
		sent = append(sent, o...)
	}
	for _, o := range sent {
		if o.Env.Type == types.MsgPaxosCommit {
			t.Fatal("duplicate accepted votes reached quorum")
		}
	}
	// A second distinct backup completes the quorum.
	env2 := &types.Envelope{Type: types.MsgPaxosAccepted, From: h.topo.Members(0)[2], Payload: m.Encode(nil)}
	o, _ := primary.Step(env2, h.now)
	committed := false
	for _, ob := range o {
		if ob.Env.Type == types.MsgPaxosCommit {
			committed = true
		}
	}
	if !committed {
		t.Fatal("quorum of distinct votes did not commit")
	}
}
