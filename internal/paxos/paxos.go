// Package paxos implements the intra-shard crash-fault-tolerant consensus
// of §3.1 (Fig. 3a): a primary-led, three-step protocol over 2f+1 nodes.
// The primary assigns a sequence number and the hash of the previous block,
// multicasts an accept message, collects f+1 matching accepted messages
// (counting itself), and multicasts commit. Liveness under primary failure
// comes from a timeout-driven view change (§3.2 "Safety and Liveness").
//
// The engine is a pure state machine: callers feed it envelopes and timer
// ticks; it returns outbound messages and ordered decisions. It never
// touches the network, the ledger, or the clock, which keeps every protocol
// step deterministic and unit-testable.
package paxos

import (
	"fmt"
	"os"
	"sort"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// Engine is one node's Paxos state for one cluster.
type Engine struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID

	view uint64

	// Primary-side proposal chain: the hash/seq of the latest block this
	// primary has proposed (it may be ahead of the committed head, which
	// enables pipelining — block hashes are computable at proposal time
	// because they cover only the transaction and parent links).
	proposedSeq  uint64
	proposedHead types.Hash

	// Committed progress, advanced by Engine.advance as decisions drain.
	committedSeq  uint64
	committedHead types.Hash

	instances map[uint64]*instance
	delivered map[uint64]bool
	// parked holds accept messages that arrived out of order (their seq or
	// parent does not yet extend our chain); they are retried whenever the
	// proposal chain advances.
	parked map[uint64]*types.Envelope

	// View change bookkeeping. promised is the highest view this node has
	// voted a view change for: like a Paxos phase-1 promise, once cast the
	// node rejects proposals from lower views — otherwise an acceptance
	// granted after the view-change vote would be invisible to the new
	// view's value recovery, and the deposed primary could commit with it.
	vcVotes      map[uint64]map[types.NodeID]*types.ViewChange
	viewChanging bool
	promised     uint64
	// vcDeadline bounds how long the node waits for the voted view to
	// install before escalating to the next one. Without it, a view whose
	// candidate primary is itself dead (view numbers rotate over all
	// members, crashed or not) wedges the cluster forever: every live node
	// sits in viewChanging, and Tick fires no further suspicion.
	vcDeadline time.Time

	// New-primary recovery state: values reported prepared by the
	// view-change quorum, to re-propose in order, and the committed
	// sequence this node must reach (by chain sync) before proposing
	// anything — a voter reported commits we have not seen, so proposing
	// earlier could re-bind an already-committed slot.
	pendingRepropose []preparedCand
	reproposeBarrier uint64

	// Proposal timeout for backups awaiting commit.
	timeout time.Duration

	// persist, when set, records acceptances and view positions to stable
	// storage before the message they vouch for leaves the node, so a
	// restarted acceptor cannot renege on a promise or an acceptance.
	persist consensus.Persister

	// reserved consults the cross-shard conflict table (see Config.Reserved).
	reserved func(seq uint64) bool

	// ring is a bounded ring of structured protocol events for post-mortem
	// debugging (see DebugTrace), recorded only when SHARPER_TRACE is set —
	// the formatting is not free on the benchmark hot path. The wall-clock
	// stamp on each event lets a divergence hunt merge this ring with the
	// cross-shard engine's (and other processes') into one timeline.
	ring *obs.EventRing

	// metrics, when configured, tracks engine health (view changes,
	// straggler drops, instance-map size); nil-safe handles.
	metrics *obs.EngineMetrics
	// onPrepared fires when a proposal launched by this primary reaches its
	// commit quorum — the intra-shard "prepared" lifecycle stamp.
	onPrepared func(seq uint64)
}

// DebugTrace returns the recent protocol events (oldest first), rendered in
// the historical SHARPER_TRACE line format.
func (e *Engine) DebugTrace() []string { return e.ring.Lines() }

// DebugEvents returns the recent protocol events in structured form.
func (e *Engine) DebugEvents() []obs.Event { return e.ring.Events() }

// preparedCand is one value owed to the chain by a deposed view. digest is
// the batch digest the reporting quorum already verified for txs, carried
// along so later re-reports need not recompute it.
type preparedCand struct {
	seq    uint64
	view   uint64
	digest types.Hash
	txs    []*types.Transaction
}

type instance struct {
	digest types.Hash
	parent types.Hash
	txs    []*types.Transaction
	// block is the batch as a chain block, built once when the body is
	// known; its memoized Hash makes every later chain-walk relink cheap.
	block     *types.Block
	view      uint64
	accepted  map[types.NodeID]bool
	committed bool
	sentCmt   bool
	own       bool // proposed by this node (as primary)
	deadline  time.Time
	// durableView/durableDigest track what PersistAccept last recorded for
	// this slot, so duplicate deliveries do not rewrite the log.
	durable       bool
	durableView   uint64
	durableDigest types.Hash
}

// Config parametrizes an Engine.
type Config struct {
	Topology *consensus.Topology
	Cluster  types.ClusterID
	Self     types.NodeID
	// Timeout before a backup suspects the primary for an in-flight
	// proposal and votes to change view.
	Timeout time.Duration
	// Persist, when non-nil, is the stable-storage hook for acceptor state
	// (persist-before-ack; see consensus.Persister).
	Persist consensus.Persister
	// Reserved, when non-nil, reports whether the node's cross-shard engine
	// holds this node's vote for the given chain slot (§3.2: a node must
	// never vote for two values at one slot). The engine refuses to accept
	// or propose an intra-shard binding at a reserved slot — it parks the
	// proposal instead and retries when the reservation clears. This check
	// sits at the vote boundary because proposals reach it through internal
	// paths (parked-gap retries, view-change re-proposals) that never pass
	// the node's dispatch-level deferral.
	Reserved func(seq uint64) bool
	// Obs, when non-nil, receives engine health metrics (view changes,
	// straggler drops, live instance count).
	Obs *obs.EngineMetrics
	// OnPrepared, when non-nil, fires when a proposal this primary launched
	// reaches its commit quorum (per-transaction lifecycle tracing).
	OnPrepared func(seq uint64)
}

// New creates an engine starting at view 0 with the genesis head.
func New(cfg Config, genesis types.Hash) *Engine {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	return &Engine{
		topo:          cfg.Topology,
		cluster:       cfg.Cluster,
		self:          cfg.Self,
		proposedHead:  genesis,
		committedHead: genesis,
		instances:     make(map[uint64]*instance),
		delivered:     make(map[uint64]bool),
		parked:        make(map[uint64]*types.Envelope),
		vcVotes:       make(map[uint64]map[types.NodeID]*types.ViewChange),
		timeout:       cfg.Timeout,
		persist:       cfg.Persist,
		reserved:      cfg.Reserved,
		ring:          obs.NewEventRing(0, os.Getenv("SHARPER_TRACE") != ""),
		metrics:       cfg.Obs,
		onPrepared:    cfg.OnPrepared,
	}
}

// slotReserved reports whether the cross-shard engine holds this node's vote
// for the chain slot.
func (e *Engine) slotReserved(seq uint64) bool {
	return e.reserved != nil && e.reserved(seq)
}

// persistAccept records the instance's current binding if it changed since
// the last record for this slot. False means the record did not reach
// stable storage and the caller must withhold the acceptance (the durable
// marker stays clear, so the next delivery retries).
func (e *Engine) persistAccept(seq uint64, inst *instance) bool {
	if e.persist == nil || len(inst.txs) == 0 {
		return true
	}
	if inst.durable && inst.durableView == inst.view && inst.durableDigest == inst.digest {
		return true
	}
	if err := e.persist.PersistAccept(seq, inst.view, inst.parent, inst.digest, inst.txs); err != nil {
		return false
	}
	inst.durable = true
	inst.durableView = inst.view
	inst.durableDigest = inst.digest
	return true
}

// persistViewState records the engine's view position; false withholds the
// dependent message.
func (e *Engine) persistViewState() bool {
	if e.persist == nil {
		return true
	}
	return e.persist.PersistView(e.view, e.promised) == nil
}

// Restore warms a freshly built engine from recovered durable state: the
// view position and every acceptance the node had taken on. Call it once,
// after SyncChainHead has advanced the engine to the recovered chain head
// and before the node starts processing messages.
func (e *Engine) Restore(view, promised uint64, insts []consensus.DurableInstance, now time.Time) {
	if view > e.view {
		e.view = view
	}
	if promised > e.promised {
		e.promised = promised
	}
	for _, d := range insts {
		if d.Seq <= e.committedSeq || len(d.Txs) == 0 {
			continue
		}
		e.instances[d.Seq] = &instance{
			digest:   d.Digest,
			parent:   d.Parent,
			txs:      d.Txs,
			block:    &types.Block{Txs: d.Txs, Parents: []types.Hash{d.Parent}},
			view:     d.View,
			accepted: map[types.NodeID]bool{e.self: true},
			deadline: now.Add(e.timeout),
			durable:  true, durableView: d.View, durableDigest: d.Digest,
		}
	}
	// Restored acceptances occupy their pipeline slots: walk the proposal
	// chain over the contiguous run above the committed head (the same
	// relink SyncChainHead does) so a restarted primary's next Propose
	// cannot allocate — and overwrite — a slot it had already accepted a
	// value in.
	expect := e.proposedHead
	for s := e.proposedSeq + 1; ; s++ {
		inst, ok := e.instances[s]
		if !ok || len(inst.txs) == 0 || inst.parent != expect {
			break
		}
		bh := inst.block.Hash()
		e.proposedSeq = s
		e.proposedHead = bh
		expect = bh
	}
	e.ring.Recordf("restore", e.proposedSeq, types.ZeroHash,
		"v=%d promised=%d committed=%d accepted=%d", e.view, e.promised, e.committedSeq, len(insts))
}

// DurableState reports the engine state a checkpoint must carry forward
// into a fresh log segment: the view position and every
// accepted-but-uncommitted value (including recovered values not yet
// re-proposed, which are acceptor obligations all the same).
func (e *Engine) DurableState() (view, promised uint64, insts []consensus.DurableInstance) {
	for seq, inst := range e.instances {
		if seq > e.committedSeq && len(inst.txs) > 0 {
			insts = append(insts, consensus.DurableInstance{
				Seq: seq, View: inst.view, Parent: inst.parent, Digest: inst.digest, Txs: inst.txs,
			})
		}
	}
	for _, c := range e.pendingRepropose {
		if c.seq > e.committedSeq {
			insts = append(insts, consensus.DurableInstance{
				Seq: c.seq, View: c.view, Digest: c.digest, Txs: c.txs,
			})
		}
	}
	return e.view, e.promised, insts
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the current primary of the cluster.
func (e *Engine) Primary() types.NodeID { return e.topo.Primary(e.cluster, e.view) }

// IsPrimary reports whether this node leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.self }

// ProposedHead returns the hash of the last block this node has proposed
// (primary) or committed (backup) — the h_i the cluster contributes to
// cross-shard proposals.
func (e *Engine) ProposedHead() (uint64, types.Hash) { return e.proposedSeq, e.proposedHead }

// SyncChainHead advances the proposal chain past a block decided outside
// this engine (a cross-shard block committed by the flattened protocol
// shares the cluster's chain). The runtime calls it after appending such a
// block so subsequent intra-shard proposals chain to it. In-flight
// proposals that no longer extend the chain are discarded — their clients
// retransmit — and out-of-order proposals parked earlier are retried; any
// resulting outbound messages are returned.
func (e *Engine) SyncChainHead(seq uint64, head types.Hash, now time.Time) ([]consensus.Outbound, []consensus.Decision, []*types.Transaction) {
	if seq <= e.committedSeq {
		// Stale: the engine has already committed past (or to) this height,
		// so the caller's chain is catching up to knowledge the engine
		// holds. Rewinding the proposal chain here would discard
		// accepted-but-uncommitted instances above seq — acceptances other
		// nodes may have counted toward commit quorums — and a node whose
		// erased acceptance later lets it vote a cross-shard block into one
		// of those slots forks the cluster.
		e.ring.Recordf("sync-head-stale", seq, types.ZeroHash, "c=%d p=%d", e.committedSeq, e.proposedSeq)
		return nil, nil, nil
	}
	e.ring.Recordf("sync-head", seq, head, "was c=%d p=%d parked=%d",
		e.committedSeq, e.proposedSeq, len(e.parked))
	e.proposedSeq = seq
	e.proposedHead = head
	e.committedSeq = seq
	e.committedHead = head
	// Slots at or below the new head are decided; their instances are
	// stale. This node's own uncommitted proposals among them are handed
	// back for re-proposal (the runtime dedups against the chain).
	var orphans []*types.Transaction
	for s, inst := range e.instances {
		if s <= seq {
			if inst.own && !inst.committed {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	// Instances ABOVE the new head survive if they still chain onto it: a
	// synced block is often exactly the parent an accepted-but-uncommitted
	// proposal was built on (the replica missed the commit, not the value),
	// and wiping such an acceptance is unsafe — the primary counted it, so
	// the slot may already be committed elsewhere, while this replica would
	// report itself drained and vote a cross-shard block into that slot.
	// Walk upward re-linking; everything past the first break is dead
	// pipeline (it chained through a block that lost the slot race).
	expect := head
	for s := seq + 1; ; s++ {
		inst, ok := e.instances[s]
		if !ok || len(inst.txs) == 0 || inst.parent != expect {
			break
		}
		bh := inst.block.Hash()
		e.proposedSeq = s
		e.proposedHead = bh
		expect = bh
	}
	for s, inst := range e.instances {
		// Committed instances above the walk are kept: the cluster bound
		// those slots; chain sync will deliver or supersede them.
		if s > e.proposedSeq && !inst.committed {
			if inst.own {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	for s := range e.parked {
		if s <= seq {
			delete(e.parked, s)
		}
	}
	out, decs := e.retryParked(now)
	// The synced block may have satisfied the recovery barrier.
	out = append(out, e.drainRepropose(now)...)
	return out, decs, orphans
}

// HasUncommitted reports whether any consensus instance with a known body
// sits above the committed head — accepted-but-uncommitted, or committed
// above a gap. The cross-shard protocol must not treat the chain as drained
// while such a slot exists: its value may already hold a commit quorum
// elsewhere, and a cross-shard block voted on the current head would fork
// the chain against it.
func (e *Engine) HasUncommitted() bool {
	for seq, inst := range e.instances {
		if seq <= e.committedSeq {
			continue
		}
		// A bodyless committed instance (a commit that raced ahead of its
		// accept) counts too: the slot is known bound even though the value
		// has not arrived yet.
		if inst.committed || len(inst.txs) > 0 {
			return true
		}
	}
	return false
}

// retryParked replays parked accepts that may now extend the chain. The
// decisions it surfaces MUST reach the caller: a parked proposal whose
// commit raced ahead delivers the moment its body is accepted, and dropping
// that decision leaves the engine's committed state ahead of the ledger —
// the desync behind a whole class of intra/cross forks (the chain heals by
// sync, the backward head reset erases live acceptances, and the node votes
// a cross-shard block into a slot it had already promised to intra).
func (e *Engine) retryParked(now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	var out []consensus.Outbound
	var decs []consensus.Decision
	for {
		if e.slotReserved(e.proposedSeq + 1) {
			return out, decs // the slot is promised to a cross-shard vote
		}
		env, ok := e.parked[e.proposedSeq+1]
		if !ok {
			return out, decs
		}
		delete(e.parked, e.proposedSeq+1)
		o, d := e.onAccept(env, now)
		out = append(out, o...)
		decs = append(decs, d...)
		if len(o) == 0 {
			return out, decs // still not acceptable; avoid spinning
		}
	}
}

// Propose starts consensus on a batch of transactions. Only the current
// primary may call it. It returns the accept multicast and the assigned
// sequence; the whole batch occupies one consensus instance and one block.
func (e *Engine) Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64) {
	if !e.IsPrimary() || e.viewChanging || len(txs) == 0 {
		return nil, 0
	}
	// A fresh primary first replays what the deposed view owed the chain
	// (and catches up to any commit a view-change voter reported); new
	// client batches wait so they cannot steal a possibly-committed slot.
	if e.committedSeq < e.reproposeBarrier || len(e.pendingRepropose) > 0 {
		return nil, 0
	}
	seq := e.proposedSeq + 1
	if e.slotReserved(seq) {
		// The cross-shard engine holds this node's vote for the slot; the
		// batch stays queued until the reservation resolves.
		return nil, 0
	}
	parent := e.proposedHead
	block := &types.Block{Txs: txs, Parents: []types.Hash{parent}}
	digest := block.BatchDigest()
	if prev, ok := e.instances[seq]; ok {
		if prev.committed {
			// The slot is already bound (a commit raced ahead of its
			// accept): proposing over it would erase that knowledge. Chain
			// sync delivers or supersedes it; the batch stays queued.
			return nil, 0
		}
		if len(prev.txs) > 0 && prev.view == e.view && prev.digest != digest {
			// This node already accepted a different value for the slot in
			// THIS view (a restored acceptance whose parent did not link
			// into the proposal walk): binding a second value at the same
			// (view, seq) is equivocation. A higher view's recovery may
			// overwrite it; the same view may not.
			return nil, 0
		}
	}

	inst := &instance{
		digest:   digest,
		parent:   parent,
		txs:      txs,
		block:    block,
		view:     e.view,
		accepted: map[types.NodeID]bool{e.self: true}, // primary counts itself
		own:      true,
		deadline: now.Add(e.timeout),
	}
	// The primary's self-acceptance counts toward the commit quorum, so it
	// must be just as durable as a backup's — and refused (batch back to
	// the queue) when storage cannot record it.
	if !e.persistAccept(seq, inst) {
		return nil, 0
	}
	e.instances[seq] = inst
	e.proposedSeq = seq
	e.proposedHead = block.Hash()
	e.ring.Recordf("propose", seq, digest, "v=%d tx0=%s", e.view, txs[0].ID)

	msg := &types.ConsensusMsg{
		View:       e.view,
		Seq:        seq,
		Digest:     digest,
		Cluster:    e.cluster,
		PrevHashes: []types.Hash{parent},
		Txs:        txs,
	}
	out := consensus.Outbound{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPaxosAccept, From: e.self, Payload: msg.Encode(nil)},
	}
	return []consensus.Outbound{out}, seq
}

// Step consumes one protocol message and returns outbound messages plus any
// decisions that became deliverable (in sequence order).
func (e *Engine) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	outs, decs := e.step(env, now)
	e.metrics.InstGauge().Set(uint64(len(e.instances)))
	return outs, decs
}

func (e *Engine) step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	switch env.Type {
	case types.MsgPaxosAccept:
		return e.onAccept(env, now)
	case types.MsgPaxosAccepted:
		return e.onAccepted(env)
	case types.MsgPaxosCommit:
		return e.onCommit(env)
	case types.MsgViewChange:
		return e.onViewChange(env, now)
	case types.MsgNewView:
		return e.onNewView(env, now)
	default:
		return nil, nil
	}
}

func (e *Engine) onAccept(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.Txs) == 0 {
		return nil, nil
	}
	// Only the primary of the message's view may propose, and only at or
	// above the view this node has promised.
	if env.From != e.topo.Primary(e.cluster, m.View) || m.View < e.view || m.View < e.promised {
		return nil, nil
	}
	if m.View > e.view {
		// We lag behind a view change; adopt the higher view.
		e.installView(m.View, now)
	}
	// Proposals must extend our chain in order: seq proposedSeq+1 with the
	// parent equal to our proposed head. Later proposals park until the gap
	// fills (out-of-order delivery or a cross-shard block in between);
	// earlier or non-extending ones are stale and ignored.
	switch {
	case m.Seq == e.proposedSeq && m.PrevHashes[0] == e.instanceParent(m.Seq) && e.instances[m.Seq] != nil:
		// Duplicate of the current in-flight proposal: re-ack below.
	case m.Seq != e.proposedSeq+1:
		if m.Seq > e.proposedSeq+1 {
			e.parked[m.Seq] = env
		}
		return nil, nil
	case m.PrevHashes[0] != e.proposedHead:
		return nil, nil // does not extend our chain (stale across a cross-shard commit)
	}
	if e.slotReserved(m.Seq) {
		// This node's cross-shard vote has promised the slot away (§3.2);
		// acknowledging an intra-shard binding there would vote twice at one
		// height. Park the proposal: it retries when the reservation clears
		// (cross commit advancing the chain, or abort/expiry via Tick).
		e.ring.Recordf("reserve-park", m.Seq, m.Digest, "v=%d", m.View)
		e.parked[m.Seq] = env
		return nil, nil
	}
	inst, ok := e.instances[m.Seq]
	if !ok {
		inst = &instance{accepted: make(map[types.NodeID]bool)}
		e.instances[m.Seq] = inst
	}
	if inst.committed && inst.digest != m.Digest {
		// We know this slot committed with a different value (awaiting the
		// gap below it); a conflicting re-proposal must not overwrite it.
		return nil, nil
	}
	if inst.view != m.View {
		// A retained instance from a deposed view is overwritten by the new
		// view's proposal; its old votes must not leak into the new binding.
		inst.accepted = map[types.NodeID]bool{}
		inst.sentCmt = false
		inst.own = false
	}
	inst.digest = m.Digest
	inst.parent = m.PrevHashes[0]
	inst.txs = m.Txs
	inst.block = &types.Block{Txs: m.Txs, Parents: []types.Hash{inst.parent}}
	inst.view = m.View
	inst.deadline = now.Add(e.timeout)
	e.ring.Recordf("accept", m.Seq, m.Digest, "v=%d tx0=%s", m.View, m.Txs[0].ID)
	if m.Seq > e.proposedSeq {
		e.proposedSeq = m.Seq
		e.proposedHead = inst.block.Hash()
	}

	// Persist the acceptance before the ack leaves: the primary will count
	// it toward a commit quorum, so this node must still report it after a
	// restart (view-change value recovery). Unpersistable ⇒ no ack.
	if !e.persistAccept(m.Seq, inst) {
		return nil, nil
	}
	reply := &types.ConsensusMsg{View: m.View, Seq: m.Seq, Digest: m.Digest, Cluster: e.cluster}
	out := []consensus.Outbound{{
		To:  []types.NodeID{env.From},
		Env: &types.Envelope{Type: types.MsgPaxosAccepted, From: e.self, Payload: reply.Encode(nil)},
	}}
	// A commit may have arrived before this proposal (network reordering):
	// now that the transaction body is known, the decision can deliver.
	decs := e.advance()
	o2, d2 := e.retryParked(now)
	return append(out, o2...), append(decs, d2...)
}

// instanceParent returns the parent hash of the in-flight instance at seq,
// or the zero hash if unknown.
func (e *Engine) instanceParent(seq uint64) types.Hash {
	if inst, ok := e.instances[seq]; ok {
		return inst.parent
	}
	return types.ZeroHash
}

func (e *Engine) onAccepted(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	inst, ok := e.instances[m.Seq]
	if !ok || inst.view != m.View || inst.digest != m.Digest || inst.sentCmt {
		return nil, nil
	}
	if !e.IsPrimary() || e.viewChanging || m.View < e.promised {
		// A primary that joined a view change has promised not to commit in
		// the old view: late accepteds must not complete its quorums.
		return nil, nil
	}
	inst.accepted[env.From] = true
	if len(inst.accepted) < e.topo.F(e.cluster)+1 {
		return nil, nil
	}
	// Quorum: multicast commit and decide locally.
	inst.sentCmt = true
	inst.committed = true
	e.ring.Recordf("commit-quorum", m.Seq, inst.digest, "v=%d acc=%d", inst.view, len(inst.accepted))
	if e.onPrepared != nil && inst.own {
		e.onPrepared(m.Seq)
	}
	cm := &types.ConsensusMsg{View: inst.view, Seq: m.Seq, Digest: inst.digest, Cluster: e.cluster}
	out := []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPaxosCommit, From: e.self, Payload: cm.Encode(nil)},
	}}
	return out, e.advance()
}

func (e *Engine) onCommit(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, m.View) {
		return nil, nil
	}
	if m.Seq <= e.committedSeq {
		// The slot is already delivered; a straggler commit must not
		// resurrect its deleted instance (see pbft.Engine.onPrepare — the
		// zombie would linger in e.instances and tax every Tick and
		// HasUncommitted sweep).
		e.metrics.Stragglers().Inc()
		return nil, nil
	}
	inst, ok := e.instances[m.Seq]
	if !ok {
		// Commit raced ahead of accept; remember it and wait for the accept.
		inst = &instance{accepted: make(map[types.NodeID]bool)}
		e.instances[m.Seq] = inst
	}
	if inst.digest.IsZero() {
		inst.digest = m.Digest
	}
	if inst.digest != m.Digest {
		// A stale commit from a deposed view must not commit the slot's new
		// binding (nor may a buffered commit accept a different body later).
		return nil, nil
	}
	inst.committed = true
	e.ring.Recordf("commit-msg", m.Seq, m.Digest, "v=%d from=%s", m.View, env.From)
	return nil, e.advance()
}

// advance drains committed instances in sequence order into decisions.
func (e *Engine) advance() []consensus.Decision {
	var out []consensus.Decision
	for {
		seq := e.committedSeq + 1
		inst, ok := e.instances[seq]
		if !ok || !inst.committed || len(inst.txs) == 0 || e.delivered[seq] {
			return out
		}
		block := inst.block
		e.delivered[seq] = true
		e.committedSeq = seq
		e.committedHead = block.Hash()
		e.ring.Recordf("deliver", seq, inst.digest, "")
		out = append(out, consensus.Decision{Block: block, Seq: seq})
		delete(e.instances, seq)
		e.metrics.InstGauge().Set(uint64(len(e.instances)))
	}
}

// Tick fires proposal timeouts: a backup with an instance past its deadline
// suspects the primary and votes for the next view. A fresh primary uses the
// tick to retry its recovery obligations once chain sync catches it up. A
// node stuck mid-view-change past its deadline escalates to the next view —
// the candidate primary may be dead too.
func (e *Engine) Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if e.viewChanging {
		if now.After(e.vcDeadline) {
			next := e.promised + 1
			e.ring.Recordf("vc-escalate", 0, types.ZeroHash, "nv=%d", next)
			return e.startViewChange(next, now), nil
		}
		return nil, nil
	}
	// A slot reservation released without a chain advance (cross-shard abort
	// or expiry) leaves reserve-parked proposals with no other retry path.
	out, decs := e.retryParked(now)
	if e.IsPrimary() {
		return append(out, e.drainRepropose(now)...), decs
	}
	expired := false
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed && len(inst.txs) > 0 && now.After(inst.deadline) {
			expired = true
			break
		}
	}
	if !expired {
		return out, decs
	}
	return append(out, e.startViewChange(e.view+1, now)...), decs
}

func (e *Engine) startViewChange(newView uint64, now time.Time) []consensus.Outbound {
	e.viewChanging = true
	// Give the candidate primary two full windows to assemble the new view
	// before escalating past it.
	e.vcDeadline = now.Add(2 * e.timeout)
	if newView > e.promised {
		e.promised = newView
	}
	// The promise must hit stable storage before the vote leaves: a
	// restarted node that forgot it could accept proposals from the deposed
	// view, invisible to the new view's value recovery. Unpersistable ⇒ no
	// vote (the escalation timer retries).
	if !e.persistViewState() {
		return nil
	}
	vc := &types.ViewChange{
		NewView:  newView,
		Cluster:  e.cluster,
		LastSeq:  e.committedSeq,
		LastHash: e.committedHead,
	}
	// Report every uncommitted accepted instance — with its body — so the
	// new primary can re-propose the values (Paxos phase-1 value recovery,
	// collapsed because crash-only nodes never lie). Any value that reached
	// a commit quorum at the deposed primary was accepted by at least one
	// member of every view-change quorum, so it is always reported.
	// Committed-but-undelivered instances (a commit observed above a gap)
	// are reported too: they are bound slots the new primary must respect.
	reported := make(map[uint64]bool)
	for seq, inst := range e.instances {
		if seq > e.committedSeq && len(inst.txs) > 0 {
			vc.Prepared = append(vc.Prepared, types.PreparedInstance{
				Seq: seq, View: inst.view, Digest: inst.digest, Txs: inst.txs,
			})
			reported[seq] = true
			if seq > vc.PreparedSeq {
				vc.PreparedSeq = seq
				vc.PreparedHash = inst.digest
			}
		}
	}
	// Values this node recovered as primary but had not re-proposed yet
	// live only in pendingRepropose; they must survive into the next view's
	// recovery as well, or a twice-deposed value could lose its slot.
	for _, c := range e.pendingRepropose {
		if c.seq > e.committedSeq && !reported[c.seq] {
			vc.Prepared = append(vc.Prepared, types.PreparedInstance{
				Seq: c.seq, View: c.view, Digest: c.digest, Txs: c.txs,
			})
		}
	}
	e.recordViewChange(e.self, vc)
	e.ring.Recordf("vc-vote", vc.LastSeq, types.ZeroHash, "nv=%d prepared=%d", newView, len(vc.Prepared))
	env := &types.Envelope{Type: types.MsgViewChange, From: e.self, Payload: vc.Encode(nil)}
	return []consensus.Outbound{{To: others(e.topo.Members(e.cluster), e.self), Env: env}}
}

func (e *Engine) recordViewChange(from types.NodeID, vc *types.ViewChange) {
	m, ok := e.vcVotes[vc.NewView]
	if !ok {
		m = make(map[types.NodeID]*types.ViewChange)
		e.vcVotes[vc.NewView] = m
	}
	m[from] = vc
}

func (e *Engine) onViewChange(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	vc, err := types.DecodeViewChange(env.Payload)
	if err != nil || vc.NewView <= e.view || vc.Cluster != e.cluster {
		return nil, nil
	}
	e.recordViewChange(env.From, vc)

	var out []consensus.Outbound
	// Join the view change once anyone credible started it (we are behind
	// or our timer fired too); crash-only nodes don't need f+1 proof.
	if !e.viewChanging {
		out = append(out, e.startViewChange(vc.NewView, now)...)
	}
	// The would-be primary of newView collects f+1 votes (incl. itself) and
	// announces the new view.
	if e.topo.Primary(e.cluster, vc.NewView) != e.self {
		return out, nil
	}
	votes := e.vcVotes[vc.NewView]
	if len(votes) < e.topo.F(e.cluster)+1 {
		return out, nil
	}
	nv := &types.ViewChange{NewView: vc.NewView, Cluster: e.cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	env2 := &types.Envelope{Type: types.MsgNewView, From: e.self, Payload: nv.Encode(nil)}
	out = append(out, consensus.Outbound{To: others(e.topo.Members(e.cluster), e.self), Env: env2})
	e.adoptRecovery(votes)
	e.installView(vc.NewView, now)
	out = append(out, e.drainRepropose(now)...)
	return out, nil
}

// adoptRecovery digests the view-change quorum's reports into the new
// primary's obligations: the commit level it must reach before proposing
// (reproposeBarrier, satisfied by chain sync) and the accepted values it
// must re-bind first (pendingRepropose, ascending, highest accept-view wins
// per slot).
func (e *Engine) adoptRecovery(votes map[types.NodeID]*types.ViewChange) {
	maxLast := e.committedSeq
	cands := make(map[uint64]preparedCand)
	for _, vc := range votes {
		if vc.LastSeq > maxLast {
			maxLast = vc.LastSeq
		}
		for _, p := range vc.Prepared {
			if len(p.Txs) == 0 || types.BatchDigest(p.Txs) != p.Digest {
				continue
			}
			if cur, ok := cands[p.Seq]; !ok || p.View > cur.view {
				cands[p.Seq] = preparedCand{seq: p.Seq, view: p.View, digest: p.Digest, txs: p.Txs}
			}
		}
	}
	e.reproposeBarrier = maxLast
	e.pendingRepropose = e.pendingRepropose[:0]
	for _, c := range cands {
		if c.seq > e.committedSeq {
			e.pendingRepropose = append(e.pendingRepropose, c)
		}
	}
	sort.Slice(e.pendingRepropose, func(i, j int) bool {
		return e.pendingRepropose[i].seq < e.pendingRepropose[j].seq
	})
	e.ring.Recordf("adopt-recovery", e.reproposeBarrier, types.ZeroHash,
		"pending=%d committed=%d", len(e.pendingRepropose), e.committedSeq)
}

// drainRepropose re-binds recovered values once the primary has caught up
// to the barrier; slots already filled by synced blocks are skipped.
func (e *Engine) drainRepropose(now time.Time) []consensus.Outbound {
	if !e.IsPrimary() || e.viewChanging || e.committedSeq < e.reproposeBarrier || len(e.pendingRepropose) == 0 {
		return nil
	}
	pending := e.pendingRepropose
	e.pendingRepropose = nil
	var out []consensus.Outbound
	for _, c := range pending {
		if c.seq <= e.committedSeq {
			continue // chain sync already delivered this slot
		}
		o, _ := e.Propose(c.txs, now)
		out = append(out, o...)
	}
	return out
}

func (e *Engine) onNewView(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	nv, err := types.DecodeViewChange(env.Payload)
	if err != nil || nv.NewView < e.view || nv.Cluster != e.cluster {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, nv.NewView) {
		return nil, nil
	}
	e.installView(nv.NewView, now)
	return nil, nil
}

func (e *Engine) installView(v uint64, now time.Time) {
	if v <= e.view {
		e.viewChanging = false
		return
	}
	e.view = v
	e.viewChanging = false
	e.metrics.VC().Inc()
	// Best effort: the installed view is recoverable from peers (a higher
	// view's first proposal re-installs it); the promise above is what
	// safety rides on.
	e.persistViewState()
	e.ring.Recordf("install-view", e.committedSeq, types.ZeroHash, "v=%d", v)
	// Reset the proposal chain to committed state. Uncommitted accepted
	// instances are RETAINED: like Paxos acceptors, this node keeps the
	// values it voted for so later view changes can still recover them (a
	// value may hold a commit quorum at the deposed primary). Their timers
	// restart so the new primary gets a full window to re-bind them; the
	// new view's proposals overwrite them slot by slot.
	e.proposedSeq = e.committedSeq
	e.proposedHead = e.committedHead
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed {
			inst.deadline = now.Add(e.timeout)
		}
	}
	e.parked = make(map[uint64]*types.Envelope)
}

// others returns members minus self.
func others(members []types.NodeID, self types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// DebugString renders internal engine state for test diagnostics.
func (e *Engine) DebugString() string {
	s := fmt.Sprintf("view=%d proposed=%d/%s committed=%d/%s vc=%v parked=%d",
		e.view, e.proposedSeq, e.proposedHead, e.committedSeq, e.committedHead,
		e.viewChanging, len(e.parked))
	for seq, inst := range e.instances {
		s += fmt.Sprintf(" inst[%d]{d=%s p=%s txs=%d v=%d acc=%d cmt=%v sc=%v}",
			seq, inst.digest, inst.parent, len(inst.txs), inst.view,
			len(inst.accepted), inst.committed, inst.sentCmt)
	}
	return s
}

// SuspectPrimary votes to depose the current primary. The runtime calls it
// when a forwarded client request goes unexecuted past its timeout — the
// PBFT rule that lets a cluster recover from a primary that fails while
// holding no in-flight proposals.
func (e *Engine) SuspectPrimary(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	return e.startViewChange(e.view+1, now)
}
