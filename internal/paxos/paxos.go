// Package paxos implements the intra-shard crash-fault-tolerant consensus
// of §3.1 (Fig. 3a): a primary-led, three-step protocol over 2f+1 nodes.
// The primary assigns a sequence number and the hash of the previous block,
// multicasts an accept message, collects f+1 matching accepted messages
// (counting itself), and multicasts commit. Liveness under primary failure
// comes from a timeout-driven view change (§3.2 "Safety and Liveness").
//
// The engine is a pure state machine: callers feed it envelopes and timer
// ticks; it returns outbound messages and ordered decisions. It never
// touches the network, the ledger, or the clock, which keeps every protocol
// step deterministic and unit-testable.
package paxos

import (
	"fmt"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/types"
)

// Engine is one node's Paxos state for one cluster.
type Engine struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID

	view uint64

	// Primary-side proposal chain: the hash/seq of the latest block this
	// primary has proposed (it may be ahead of the committed head, which
	// enables pipelining — block hashes are computable at proposal time
	// because they cover only the transaction and parent links).
	proposedSeq  uint64
	proposedHead types.Hash

	// Committed progress, advanced by Engine.advance as decisions drain.
	committedSeq  uint64
	committedHead types.Hash

	instances map[uint64]*instance
	delivered map[uint64]bool
	// parked holds accept messages that arrived out of order (their seq or
	// parent does not yet extend our chain); they are retried whenever the
	// proposal chain advances.
	parked map[uint64]*types.Envelope

	// View change bookkeeping.
	vcVotes      map[uint64]map[types.NodeID]*types.ViewChange
	viewChanging bool

	// Proposal timeout for backups awaiting commit.
	timeout time.Duration
}

type instance struct {
	digest    types.Hash
	parent    types.Hash
	txs       []*types.Transaction
	view      uint64
	accepted  map[types.NodeID]bool
	committed bool
	sentCmt   bool
	own       bool // proposed by this node (as primary)
	deadline  time.Time
}

// Config parametrizes an Engine.
type Config struct {
	Topology *consensus.Topology
	Cluster  types.ClusterID
	Self     types.NodeID
	// Timeout before a backup suspects the primary for an in-flight
	// proposal and votes to change view.
	Timeout time.Duration
}

// New creates an engine starting at view 0 with the genesis head.
func New(cfg Config, genesis types.Hash) *Engine {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	return &Engine{
		topo:          cfg.Topology,
		cluster:       cfg.Cluster,
		self:          cfg.Self,
		proposedHead:  genesis,
		committedHead: genesis,
		instances:     make(map[uint64]*instance),
		delivered:     make(map[uint64]bool),
		parked:        make(map[uint64]*types.Envelope),
		vcVotes:       make(map[uint64]map[types.NodeID]*types.ViewChange),
		timeout:       cfg.Timeout,
	}
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the current primary of the cluster.
func (e *Engine) Primary() types.NodeID { return e.topo.Primary(e.cluster, e.view) }

// IsPrimary reports whether this node leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.self }

// ProposedHead returns the hash of the last block this node has proposed
// (primary) or committed (backup) — the h_i the cluster contributes to
// cross-shard proposals.
func (e *Engine) ProposedHead() (uint64, types.Hash) { return e.proposedSeq, e.proposedHead }

// SyncChainHead advances the proposal chain past a block decided outside
// this engine (a cross-shard block committed by the flattened protocol
// shares the cluster's chain). The runtime calls it after appending such a
// block so subsequent intra-shard proposals chain to it. In-flight
// proposals that no longer extend the chain are discarded — their clients
// retransmit — and out-of-order proposals parked earlier are retried; any
// resulting outbound messages are returned.
func (e *Engine) SyncChainHead(seq uint64, head types.Hash, now time.Time) ([]consensus.Outbound, []*types.Transaction) {
	// The externally decided block supersedes the entire in-flight pipeline:
	// any proposal at or above seq chained through a block that lost the
	// race for this slot, so the proposal chain resets to the new head even
	// when it means moving proposedSeq backwards. Transactions this node
	// itself proposed in the dead pipeline are returned so the runtime can
	// re-propose them on the new chain.
	e.proposedSeq = seq
	e.proposedHead = head
	if seq > e.committedSeq {
		e.committedSeq = seq
		e.committedHead = head
	}
	var orphans []*types.Transaction
	for s, inst := range e.instances {
		if !inst.committed || s > seq {
			if inst.own && !inst.committed {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	for s := range e.parked {
		if s <= seq {
			delete(e.parked, s)
		}
	}
	return e.retryParked(now), orphans
}

// retryParked replays parked accepts that may now extend the chain.
func (e *Engine) retryParked(now time.Time) []consensus.Outbound {
	var out []consensus.Outbound
	for {
		env, ok := e.parked[e.proposedSeq+1]
		if !ok {
			return out
		}
		delete(e.parked, e.proposedSeq+1)
		o, _ := e.onAccept(env, now)
		out = append(out, o...)
		if len(o) == 0 {
			return out // still not acceptable; avoid spinning
		}
	}
}

// Propose starts consensus on a batch of transactions. Only the current
// primary may call it. It returns the accept multicast and the assigned
// sequence; the whole batch occupies one consensus instance and one block.
func (e *Engine) Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64) {
	if !e.IsPrimary() || e.viewChanging || len(txs) == 0 {
		return nil, 0
	}
	seq := e.proposedSeq + 1
	parent := e.proposedHead
	block := &types.Block{Txs: txs, Parents: []types.Hash{parent}}
	digest := types.BatchDigest(txs)

	inst := &instance{
		digest:   digest,
		parent:   parent,
		txs:      txs,
		view:     e.view,
		accepted: map[types.NodeID]bool{e.self: true}, // primary counts itself
		own:      true,
		deadline: now.Add(e.timeout),
	}
	e.instances[seq] = inst
	e.proposedSeq = seq
	e.proposedHead = block.Hash()

	msg := &types.ConsensusMsg{
		View:       e.view,
		Seq:        seq,
		Digest:     digest,
		Cluster:    e.cluster,
		PrevHashes: []types.Hash{parent},
		Txs:        txs,
	}
	out := consensus.Outbound{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPaxosAccept, From: e.self, Payload: msg.Encode(nil)},
	}
	return []consensus.Outbound{out}, seq
}

// Step consumes one protocol message and returns outbound messages plus any
// decisions that became deliverable (in sequence order).
func (e *Engine) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	switch env.Type {
	case types.MsgPaxosAccept:
		return e.onAccept(env, now)
	case types.MsgPaxosAccepted:
		return e.onAccepted(env)
	case types.MsgPaxosCommit:
		return e.onCommit(env)
	case types.MsgViewChange:
		return e.onViewChange(env, now)
	case types.MsgNewView:
		return e.onNewView(env, now)
	default:
		return nil, nil
	}
}

func (e *Engine) onAccept(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.Txs) == 0 {
		return nil, nil
	}
	// Only the primary of the message's view may propose.
	if env.From != e.topo.Primary(e.cluster, m.View) || m.View < e.view {
		return nil, nil
	}
	if m.View > e.view {
		// We lag behind a view change; adopt the higher view.
		e.installView(m.View)
	}
	// Proposals must extend our chain in order: seq proposedSeq+1 with the
	// parent equal to our proposed head. Later proposals park until the gap
	// fills (out-of-order delivery or a cross-shard block in between);
	// earlier or non-extending ones are stale and ignored.
	switch {
	case m.Seq == e.proposedSeq && m.PrevHashes[0] == e.instanceParent(m.Seq) && e.instances[m.Seq] != nil:
		// Duplicate of the current in-flight proposal: re-ack below.
	case m.Seq != e.proposedSeq+1:
		if m.Seq > e.proposedSeq+1 {
			e.parked[m.Seq] = env
		}
		return nil, nil
	case m.PrevHashes[0] != e.proposedHead:
		return nil, nil // does not extend our chain (stale across a cross-shard commit)
	}
	inst, ok := e.instances[m.Seq]
	if !ok {
		inst = &instance{accepted: make(map[types.NodeID]bool)}
		e.instances[m.Seq] = inst
	}
	inst.digest = m.Digest
	inst.parent = m.PrevHashes[0]
	inst.txs = m.Txs
	inst.view = m.View
	inst.deadline = now.Add(e.timeout)
	if m.Seq > e.proposedSeq {
		e.proposedSeq = m.Seq
		block := &types.Block{Txs: m.Txs, Parents: []types.Hash{inst.parent}}
		e.proposedHead = block.Hash()
	}

	reply := &types.ConsensusMsg{View: m.View, Seq: m.Seq, Digest: m.Digest, Cluster: e.cluster}
	out := []consensus.Outbound{{
		To:  []types.NodeID{env.From},
		Env: &types.Envelope{Type: types.MsgPaxosAccepted, From: e.self, Payload: reply.Encode(nil)},
	}}
	out = append(out, e.retryParked(now)...)
	// A commit may have arrived before this proposal (network reordering):
	// now that the transaction body is known, the decision can deliver.
	return out, e.advance()
}

// instanceParent returns the parent hash of the in-flight instance at seq,
// or the zero hash if unknown.
func (e *Engine) instanceParent(seq uint64) types.Hash {
	if inst, ok := e.instances[seq]; ok {
		return inst.parent
	}
	return types.ZeroHash
}

func (e *Engine) onAccepted(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	inst, ok := e.instances[m.Seq]
	if !ok || inst.view != m.View || inst.digest != m.Digest || inst.sentCmt {
		return nil, nil
	}
	if !e.IsPrimary() {
		return nil, nil
	}
	inst.accepted[env.From] = true
	if len(inst.accepted) < e.topo.F(e.cluster)+1 {
		return nil, nil
	}
	// Quorum: multicast commit and decide locally.
	inst.sentCmt = true
	inst.committed = true
	cm := &types.ConsensusMsg{View: inst.view, Seq: m.Seq, Digest: inst.digest, Cluster: e.cluster}
	out := []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPaxosCommit, From: e.self, Payload: cm.Encode(nil)},
	}}
	return out, e.advance()
}

func (e *Engine) onCommit(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, m.View) {
		return nil, nil
	}
	inst, ok := e.instances[m.Seq]
	if !ok {
		// Commit raced ahead of accept; remember it and wait for the accept.
		inst = &instance{accepted: make(map[types.NodeID]bool)}
		e.instances[m.Seq] = inst
	}
	inst.committed = true
	return nil, e.advance()
}

// advance drains committed instances in sequence order into decisions.
func (e *Engine) advance() []consensus.Decision {
	var out []consensus.Decision
	for {
		seq := e.committedSeq + 1
		inst, ok := e.instances[seq]
		if !ok || !inst.committed || len(inst.txs) == 0 || e.delivered[seq] {
			return out
		}
		block := &types.Block{Txs: inst.txs, Parents: []types.Hash{inst.parent}}
		e.delivered[seq] = true
		e.committedSeq = seq
		e.committedHead = block.Hash()
		out = append(out, consensus.Decision{Block: block, Seq: seq})
		delete(e.instances, seq)
	}
}

// Tick fires proposal timeouts: a backup with an instance past its deadline
// suspects the primary and votes for the next view.
func (e *Engine) Tick(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	expired := false
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed && len(inst.txs) > 0 && now.After(inst.deadline) {
			expired = true
			break
		}
	}
	if !expired {
		return nil
	}
	return e.startViewChange(e.view + 1)
}

func (e *Engine) startViewChange(newView uint64) []consensus.Outbound {
	e.viewChanging = true
	vc := &types.ViewChange{
		NewView:  newView,
		Cluster:  e.cluster,
		LastSeq:  e.committedSeq,
		LastHash: e.committedHead,
	}
	// Report the highest uncommitted accepted instance so the new primary
	// can re-propose it (Paxos phase-1 value recovery, collapsed because
	// crash-only nodes never lie).
	for seq, inst := range e.instances {
		if seq > e.committedSeq && len(inst.txs) > 0 && !inst.committed && seq > vc.PreparedSeq {
			vc.PreparedSeq = seq
			vc.PreparedHash = inst.digest
		}
	}
	e.recordViewChange(e.self, vc)
	env := &types.Envelope{Type: types.MsgViewChange, From: e.self, Payload: vc.Encode(nil)}
	return []consensus.Outbound{{To: others(e.topo.Members(e.cluster), e.self), Env: env}}
}

func (e *Engine) recordViewChange(from types.NodeID, vc *types.ViewChange) {
	m, ok := e.vcVotes[vc.NewView]
	if !ok {
		m = make(map[types.NodeID]*types.ViewChange)
		e.vcVotes[vc.NewView] = m
	}
	m[from] = vc
}

func (e *Engine) onViewChange(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	vc, err := types.DecodeViewChange(env.Payload)
	if err != nil || vc.NewView <= e.view || vc.Cluster != e.cluster {
		return nil, nil
	}
	e.recordViewChange(env.From, vc)

	var out []consensus.Outbound
	// Join the view change once anyone credible started it (we are behind
	// or our timer fired too); crash-only nodes don't need f+1 proof.
	if !e.viewChanging {
		out = append(out, e.startViewChange(vc.NewView)...)
	}
	// The would-be primary of newView collects f+1 votes (incl. itself) and
	// announces the new view.
	if e.topo.Primary(e.cluster, vc.NewView) != e.self {
		return out, nil
	}
	votes := e.vcVotes[vc.NewView]
	if len(votes) < e.topo.F(e.cluster)+1 {
		return out, nil
	}
	nv := &types.ViewChange{NewView: vc.NewView, Cluster: e.cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	env2 := &types.Envelope{Type: types.MsgNewView, From: e.self, Payload: nv.Encode(nil)}
	out = append(out, consensus.Outbound{To: others(e.topo.Members(e.cluster), e.self), Env: env2})
	e.installView(vc.NewView)
	// Re-propose the highest reported uncommitted instance, if any.
	out = append(out, e.reproposePrepared(votes, now)...)
	return out, nil
}

func (e *Engine) reproposePrepared(votes map[types.NodeID]*types.ViewChange, now time.Time) []consensus.Outbound {
	var best *types.ViewChange
	for _, vc := range votes {
		if vc.PreparedSeq > e.committedSeq && (best == nil || vc.PreparedSeq > best.PreparedSeq) {
			best = vc
		}
	}
	if best == nil {
		return nil
	}
	// Find the batch body locally (we may have accepted it too).
	inst, ok := e.instances[best.PreparedSeq]
	if !ok || len(inst.txs) == 0 {
		return nil // body unavailable; the clients will retransmit
	}
	out, _ := e.Propose(inst.txs, now)
	return out
}

func (e *Engine) onNewView(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	nv, err := types.DecodeViewChange(env.Payload)
	if err != nil || nv.NewView < e.view || nv.Cluster != e.cluster {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, nv.NewView) {
		return nil, nil
	}
	e.installView(nv.NewView)
	return nil, nil
}

func (e *Engine) installView(v uint64) {
	if v <= e.view {
		e.viewChanging = false
		return
	}
	e.view = v
	e.viewChanging = false
	// Reset the proposal chain to committed state: uncommitted proposals
	// from the old primary are abandoned (their clients retransmit).
	e.proposedSeq = e.committedSeq
	e.proposedHead = e.committedHead
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed {
			delete(e.instances, seq)
		}
	}
	e.parked = make(map[uint64]*types.Envelope)
}

// others returns members minus self.
func others(members []types.NodeID, self types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// DebugString renders internal engine state for test diagnostics.
func (e *Engine) DebugString() string {
	s := fmt.Sprintf("view=%d proposed=%d/%s committed=%d/%s vc=%v parked=%d",
		e.view, e.proposedSeq, e.proposedHead, e.committedSeq, e.committedHead,
		e.viewChanging, len(e.parked))
	for seq, inst := range e.instances {
		s += fmt.Sprintf(" inst[%d]{d=%s p=%s txs=%d v=%d acc=%d cmt=%v sc=%v}",
			seq, inst.digest, inst.parent, len(inst.txs), inst.view,
			len(inst.accepted), inst.committed, inst.sentCmt)
	}
	return s
}

// SuspectPrimary votes to depose the current primary. The runtime calls it
// when a forwarded client request goes unexecuted past its timeout — the
// PBFT rule that lets a cluster recover from a primary that fails while
// holding no in-flight proposals.
func (e *Engine) SuspectPrimary(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	_ = now
	return e.startViewChange(e.view + 1)
}
