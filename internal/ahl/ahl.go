// Package ahl implements the modified AHL baseline the paper benchmarks
// (§4.1): AHL-C and AHL-B [21]. Intra-shard transactions are processed
// exactly as in SharPer (per-cluster Paxos or PBFT), but cross-shard
// transactions are coordinated by a *reference committee* (RC) — an extra
// set of 2f+1 crash-only or 3f+1 Byzantine nodes — running classic 2PC with
// 2PL, where every 2PC step is itself a consensus round:
//
//  1. the RC orders BEGIN(tx) through its own consensus,
//  2. each involved cluster orders PREPARE(tx) through its intra-shard
//     consensus, locking the cluster and voting commit/abort to the RC,
//  3. the RC orders DECIDE(tx, outcome) through its own consensus,
//  4. each involved cluster orders the decision through intra-shard
//     consensus, applying and unlocking.
//
// The RC coordinates cross-shard transactions one at a time, which is why
// AHL cannot process cross-shard transactions over non-overlapping clusters
// in parallel — the property SharPer's flattened protocol removes.
package ahl

import (
	"fmt"
	"math/rand"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/state"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// RCCluster is the pseudo-cluster ID the reference committee registers
// under in the topology.
const RCCluster types.ClusterID = 0xFFFF

// phase bits folded into control-entry sequence numbers so the 2PC steps of
// one client transaction never collide in reply caches.
const (
	seqPhaseBegin   = uint64(1) << 60
	seqPhasePrepare = uint64(2) << 60
	seqPhaseDecide  = uint64(3) << 60
	seqPhaseApply   = uint64(4) << 60
	seqPhaseMask    = ^(uint64(7) << 60)
)

// Config describes an AHL deployment.
type Config struct {
	Model    types.FailureModel
	Clusters int
	F        int
	// Network configures the simulated fabric; ignored when Fabric is set.
	Network transport.Config
	// Fabric, when non-nil, overrides the simulated network with an
	// externally built message fabric.
	Fabric transport.Fabric

	IntraTimeout time.Duration
	TickInterval time.Duration
	Seed         int64
}

// Deployment is a running AHL system: data clusters plus the reference
// committee.
type Deployment struct {
	cfg     Config
	Topo    *consensus.Topology
	Net     transport.Fabric
	Keyring crypto.Authenticator
	Shards  state.ShardMap

	nodes   map[types.NodeID]*Node
	rcFirst types.NodeID
	started bool
}

// NewDeployment builds the clusters and the reference committee.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.Clusters <= 0 || cfg.F <= 0 {
		return nil, fmt.Errorf("ahl: Clusters and F must be positive")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 5 * time.Millisecond
	}
	if cfg.IntraTimeout <= 0 {
		cfg.IntraTimeout = 500 * time.Millisecond
	}
	topo := consensus.UniformTopology(cfg.Model, cfg.Clusters, cfg.F)
	// Append the reference committee as an extra pseudo-cluster.
	size := cfg.Model.ClusterSize(cfg.F)
	rcFirst := types.NodeID(cfg.Clusters * size)
	rc := consensus.Cluster{ID: RCCluster, F: cfg.F}
	for i := 0; i < size; i++ {
		rc.Members = append(rc.Members, rcFirst+types.NodeID(i))
	}
	topo.Clusters[RCCluster] = rc

	net := cfg.Fabric
	if net == nil {
		netCfg := cfg.Network
		if netCfg == (transport.Config{}) {
			netCfg = transport.DefaultConfig()
		}
		if netCfg.Seed == 0 {
			netCfg.Seed = cfg.Seed
		}
		net = transport.New(netCfg, func(id types.NodeID) (types.ClusterID, bool) {
			return topo.ClusterOf(id)
		})
	}

	d := &Deployment{
		cfg:     cfg,
		Topo:    topo,
		Net:     net,
		Keyring: crypto.NewMACKeyring(),
		Shards:  state.ShardMap{NumShards: cfg.Clusters},
		nodes:   make(map[types.NodeID]*Node),
		rcFirst: rcFirst,
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	for _, id := range topo.AllNodes() {
		var signer crypto.Signer = crypto.NoopSigner{}
		var verifier crypto.Verifier = crypto.NoopSigner{}
		if cfg.Model == types.Byzantine {
			if err := d.Keyring.Generate(id, rng); err != nil {
				return nil, err
			}
			s, err := d.Keyring.SignerFor(id)
			if err != nil {
				return nil, err
			}
			signer, verifier = s, d.Keyring
		}
		cluster, _ := topo.ClusterOf(id)
		d.nodes[id] = newNode(d, cluster, id, signer, verifier)
	}
	return d, nil
}

// Start runs every node.
func (d *Deployment) Start() {
	if d.started {
		return
	}
	d.started = true
	for _, n := range d.nodes {
		n.start()
	}
}

// Stop terminates every node.
func (d *Deployment) Stop() {
	d.Net.Close()
	if !d.started {
		return
	}
	for _, n := range d.nodes {
		n.stop()
	}
	d.started = false
}

// Node returns the replica with the given ID.
func (d *Deployment) Node(id types.NodeID) *Node { return d.nodes[id] }

// Nodes returns every replica.
func (d *Deployment) Nodes() []*Node {
	var out []*Node
	for _, id := range d.Topo.AllNodes() {
		out = append(out, d.nodes[id])
	}
	return out
}

// SeedAccounts mirrors the SharPer genesis state on the data clusters.
func (d *Deployment) SeedAccounts(perShard int, balance int64) {
	for _, n := range d.nodes {
		if n.cluster == RCCluster {
			continue
		}
		for k := 0; k < perShard; k++ {
			n.store.Credit(d.Shards.AccountInShard(n.cluster, uint64(k)), balance)
		}
	}
}

// ctrlTx wraps a client transaction into a 2PC control entry with a
// phase-disambiguated ID.
func ctrlTx(orig *types.Transaction, kind types.TxKind, phase uint64) *types.Transaction {
	return &types.Transaction{
		ID:        types.TxID{Client: orig.ID.Client, Seq: (orig.ID.Seq & seqPhaseMask) | phase},
		Kind:      kind,
		Client:    orig.Client,
		Timestamp: orig.Timestamp,
		Ops:       orig.Ops,
		Involved:  orig.Involved,
	}
}

// origID recovers the client-visible transaction ID from a control entry.
func origID(id types.TxID) types.TxID {
	return types.TxID{Client: id.Client, Seq: id.Seq & seqPhaseMask}
}
