package ahl

import (
	"fmt"
	"sync/atomic"
	"time"

	"sharper/internal/types"
)

// Client submits transactions to an AHL deployment: intra-shard requests go
// to the owning cluster, cross-shard requests to the reference committee.
type Client struct {
	id    types.NodeID
	d     *Deployment
	inbox <-chan *types.Envelope
	seq   uint64

	// Timeout before retransmission.
	Timeout time.Duration
	// MaxAttempts bounds retransmissions.
	MaxAttempts int
}

var clientCounter atomic.Uint32

// NewClient registers a fresh client endpoint.
func (d *Deployment) NewClient() *Client {
	id := types.ClientIDBase + types.NodeID(1<<18) + types.NodeID(clientCounter.Add(1))
	return &Client{
		id:          id,
		d:           d,
		inbox:       d.Net.Register(id),
		Timeout:     2 * time.Second,
		MaxAttempts: 8,
	}
}

// MakeTx assembles a transaction from ops.
func (c *Client) MakeTx(ops []types.Op) *types.Transaction {
	c.seq++
	return &types.Transaction{
		ID:        types.TxID{Client: c.id, Seq: c.seq},
		Client:    c.id,
		Timestamp: time.Now().UnixNano(),
		Ops:       ops,
		Involved:  c.d.Shards.Involved(ops),
	}
}

// Transfer builds, submits, and waits for the reply quorum.
func (c *Client) Transfer(ops []types.Op) (bool, time.Duration, error) {
	return c.Submit(c.MakeTx(ops))
}

// Submit sends tx and blocks until enough matching replies arrive.
func (c *Client) Submit(tx *types.Transaction) (bool, time.Duration, error) {
	needed := 1
	if c.d.cfg.Model == types.Byzantine {
		needed = c.d.cfg.F + 1
	}
	payload := (&types.Request{Tx: tx}).Encode(nil)
	start := time.Now()
	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		c.sendRequest(tx, payload, attempt)
		if ok, committed := c.awaitReplies(tx.ID, needed, c.Timeout); ok {
			return committed, time.Since(start), nil
		}
	}
	return false, time.Since(start), fmt.Errorf("ahl: tx %s timed out after %d attempts", tx.ID, c.MaxAttempts)
}

func (c *Client) sendRequest(tx *types.Transaction, payload []byte, attempt int) {
	var target []types.NodeID
	if tx.IsCrossShard() {
		target = c.d.Topo.Members(RCCluster)
	} else {
		target = c.d.Topo.Members(tx.Involved[0])
	}
	env := &types.Envelope{Type: types.MsgRequest, From: c.id, Payload: payload}
	if attempt == 0 {
		c.d.Net.Send(target[0], env)
		return
	}
	for _, m := range target {
		c.d.Net.Send(m, env)
	}
}

func (c *Client) awaitReplies(id types.TxID, needed int, timeout time.Duration) (bool, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	votes := make(map[bool]map[types.NodeID]bool)
	for {
		select {
		case env := <-c.inbox:
			if env.Type != types.MsgReply {
				continue
			}
			r, err := types.DecodeReply(env.Payload)
			if err != nil || r.TxID != id || r.Replica != env.From {
				continue
			}
			m, ok := votes[r.Committed]
			if !ok {
				m = make(map[types.NodeID]bool)
				votes[r.Committed] = m
			}
			m[r.Replica] = true
			if len(m) >= needed {
				return true, r.Committed
			}
		case <-deadline.C:
			return false, false
		}
	}
}
