package ahl

import (
	"sync"
	"testing"
	"time"

	"sharper/internal/types"
)

func newTestDeployment(t *testing.T, model types.FailureModel, clusters int) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{Model: model, Clusters: clusters, F: 1, Seed: 7})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
	return d
}

func TestIntraShard(t *testing.T) {
	for _, model := range []types.FailureModel{types.CrashOnly, types.Byzantine} {
		t.Run(model.String(), func(t *testing.T) {
			d := newTestDeployment(t, model, 3)
			c := d.NewClient()
			for i := 0; i < 5; i++ {
				ok, _, err := c.Transfer([]types.Op{{
					From:   d.Shards.AccountInShard(1, 0),
					To:     d.Shards.AccountInShard(1, 1),
					Amount: 3,
				}})
				if err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
				if !ok {
					t.Fatalf("tx %d rejected", i)
				}
			}
		})
	}
}

func TestCrossShard2PC(t *testing.T) {
	for _, model := range []types.FailureModel{types.CrashOnly, types.Byzantine} {
		t.Run(model.String(), func(t *testing.T) {
			d := newTestDeployment(t, model, 3)
			c := d.NewClient()
			for i := 0; i < 5; i++ {
				ok, _, err := c.Transfer([]types.Op{{
					From:   d.Shards.AccountInShard(0, 0),
					To:     d.Shards.AccountInShard(2, 1),
					Amount: 3,
				}})
				if err != nil {
					t.Fatalf("tx %d: %v", i, err)
				}
				if !ok {
					t.Fatalf("tx %d rejected", i)
				}
			}
			// Both shards eventually apply their halves on every replica
			// (the client quorum is smaller than the cluster).
			settled := func() bool {
				for _, n := range d.Nodes() {
					switch n.Cluster() {
					case 0:
						if n.Store().Balance(d.Shards.AccountInShard(0, 0)) != 1_000_000-15 {
							return false
						}
					case 2:
						if n.Store().Balance(d.Shards.AccountInShard(2, 1)) != 1_000_000+15 {
							return false
						}
					}
				}
				return true
			}
			deadline := time.Now().Add(5 * time.Second)
			for !settled() {
				if time.Now().After(deadline) {
					t.Fatal("replicas did not converge on the 2PC outcome")
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}

func TestCrossShardAbortsOnOverdraw(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	c := d.NewClient()
	ok, _, err := c.Transfer([]types.Op{{
		From:   d.Shards.AccountInShard(0, 0),
		To:     d.Shards.AccountInShard(1, 0),
		Amount: 2_000_000, // exceeds the seeded balance
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if ok {
		t.Fatal("overdraw committed; want abort")
	}
	for _, n := range d.Nodes() {
		if n.Cluster() == 1 {
			if got := n.Store().Balance(d.Shards.AccountInShard(1, 0)); got != 1_000_000 {
				t.Fatalf("node %s: aborted tx mutated state: %d", n.ID(), got)
			}
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewClient()
			c.Timeout = 5 * time.Second
			for j := 0; j < 10; j++ {
				from := types.ClusterID(k % 4)
				to := from
				if j%3 == 0 {
					to = types.ClusterID((k + 1) % 4)
				}
				_, _, err := c.Transfer([]types.Op{{
					From:   d.Shards.AccountInShard(from, uint64(k)),
					To:     d.Shards.AccountInShard(to, uint64(k+1)),
					Amount: 1,
				}})
				if err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client error: %v", err)
	}
}

// TestRCSerializesCrossShard documents AHL's central property: the
// reference committee coordinates one cross-shard transaction at a time, so
// transactions over disjoint cluster pairs cannot proceed in parallel (the
// limitation SharPer's flattened protocol removes).
func TestRCSerializesCrossShard(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	var wg sync.WaitGroup
	start := time.Now()
	lat := make([]time.Duration, 2)
	for pair := 0; pair < 2; pair++ {
		wg.Add(1)
		go func(pair int) {
			defer wg.Done()
			c := d.NewClient()
			c.Timeout = 5 * time.Second
			for i := 0; i < 5; i++ {
				a := types.ClusterID(2 * pair)
				b := types.ClusterID(2*pair + 1)
				_, l, err := c.Transfer([]types.Op{{
					From:   d.Shards.AccountInShard(a, uint64(i)),
					To:     d.Shards.AccountInShard(b, uint64(i)),
					Amount: 1,
				}})
				if err != nil {
					t.Error(err)
					return
				}
				lat[pair] += l
			}
		}(pair)
	}
	wg.Wait()
	_ = start
	// Not a strict timing assertion (that's what the benches measure) —
	// only that both disjoint pairs completed through the single RC.
	if lat[0] == 0 || lat[1] == 0 {
		t.Fatal("a pair made no progress through the reference committee")
	}
}

// TestIntraUnaffectedByIdleRC checks that intra-shard traffic flows without
// consulting the reference committee.
func TestIntraUnaffectedByIdleRC(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	c := d.NewClient()
	for i := 0; i < 10; i++ {
		ok, _, err := c.Transfer([]types.Op{{
			From:   d.Shards.AccountInShard(0, 0),
			To:     d.Shards.AccountInShard(0, 1),
			Amount: 1,
		}})
		if err != nil || !ok {
			t.Fatalf("intra tx %d: ok=%v err=%v", i, ok, err)
		}
	}
	// RC members ordered no transfers.
	for _, n := range d.Nodes() {
		if n.Cluster() == RCCluster && n.Committed() != 0 {
			t.Fatalf("RC node %s executed %d transfers", n.ID(), n.Committed())
		}
	}
}

// TestInterleavedIntraAndCross keeps a cluster busy with intra traffic
// while a 2PC locks it: the queued intra transactions must drain after the
// decision.
func TestInterleavedIntraAndCross(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		c := d.NewClient()
		c.Timeout = 5 * time.Second
		for i := 0; i < 15; i++ {
			if _, _, err := c.Transfer([]types.Op{{
				From: d.Shards.AccountInShard(0, 2), To: d.Shards.AccountInShard(0, 3), Amount: 1,
			}}); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		c := d.NewClient()
		c.Timeout = 5 * time.Second
		for i := 0; i < 8; i++ {
			if _, _, err := c.Transfer([]types.Op{{
				From: d.Shards.AccountInShard(0, 0), To: d.Shards.AccountInShard(1, 0), Amount: 1,
			}}); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConservationAcrossShards audits global conservation after mixed load.
func TestConservationAcrossShards(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 3)
	c := d.NewClient()
	for i := 0; i < 20; i++ {
		from := types.ClusterID(i % 3)
		to := types.ClusterID((i + 1) % 3)
		if _, _, err := c.Transfer([]types.Op{{
			From:   d.Shards.AccountInShard(from, uint64(i%8)),
			To:     d.Shards.AccountInShard(to, uint64((i+1)%8)),
			Amount: int64(1 + i%3),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// Let all replicas settle, then sum one replica per data cluster.
	deadline := time.Now().Add(5 * time.Second)
	want := int64(3*64) * 1_000_000
	for {
		var total int64
		for _, cid := range []types.ClusterID{0, 1, 2} {
			n := d.Node(d.Topo.Members(cid)[0])
			total += n.Store().Total()
		}
		if total == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("conservation violated: total %d, want %d", total, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
