package ahl

import (
	"sync/atomic"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/ledger"
	"sharper/internal/paxos"
	"sharper/internal/pbft"
	"sharper/internal/state"
	"sharper/internal/types"
)

// engine is the slice of the Paxos/PBFT engines AHL nodes use.
type engine interface {
	Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64)
	Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision)
	Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision)
	Primary() types.NodeID
	IsPrimary() bool
}

// Node is one AHL replica: a data-cluster member or a reference-committee
// member, distinguished by its cluster ID.
type Node struct {
	d       *Deployment
	cluster types.ClusterID
	id      types.NodeID
	signer  crypto.Signer

	inbox  <-chan *types.Envelope
	engine engine
	store  *state.Store

	// Data-cluster 2PL state: prepared cross-shard transaction holding the
	// cluster lock, plus the queue of proposals waiting behind it.
	prepared     map[types.TxID]bool // orig IDs currently holding the lock
	pendingIntra []*types.Transaction

	// RC-primary coordinator state: 2PC runs strictly one at a time.
	queue   []*types.Transaction
	queued  map[types.TxID]bool
	current *twoPC
	done    map[types.TxID]bool // completed 2PCs (dedup retransmissions)

	replyCache *consensus.ReplyCache
	inFlight   map[types.TxID]time.Time
	committed  atomic.Int64

	stopCh chan struct{}
	doneCh chan struct{}
}

// twoPC tracks one in-flight cross-shard transaction at the RC.
type twoPC struct {
	tx       *types.Transaction
	votes    map[types.ClusterID]map[types.NodeID]bool // node → commit?
	decided  bool
	outcome  bool
	acks     map[types.ClusterID]map[types.NodeID]bool
	started  time.Time
	resendAt time.Time
}

func newNode(d *Deployment, cluster types.ClusterID, id types.NodeID,
	signer crypto.Signer, verifier crypto.Verifier) *Node {
	n := &Node{
		d:          d,
		cluster:    cluster,
		id:         id,
		signer:     signer,
		inbox:      d.Net.Register(id),
		store:      state.NewStore(cluster, d.Shards),
		prepared:   make(map[types.TxID]bool),
		queued:     make(map[types.TxID]bool),
		done:       make(map[types.TxID]bool),
		replyCache: consensus.NewReplyCache(1 << 16),
		inFlight:   make(map[types.TxID]time.Time),
		stopCh:     make(chan struct{}),
		doneCh:     make(chan struct{}),
	}
	genesis := ledger.GenesisHash()
	if d.cfg.Model == types.Byzantine {
		n.engine = pbft.New(pbft.Config{
			Topology: d.Topo, Cluster: cluster, Self: id,
			Signer: signer, Verifier: verifier, Timeout: d.cfg.IntraTimeout,
		}, genesis)
	} else {
		n.engine = paxos.New(paxos.Config{
			Topology: d.Topo, Cluster: cluster, Self: id, Timeout: d.cfg.IntraTimeout,
		}, genesis)
	}
	return n
}

// ID returns the node's identity.
func (n *Node) ID() types.NodeID { return n.id }

// Cluster returns the node's (pseudo-)cluster.
func (n *Node) Cluster() types.ClusterID { return n.cluster }

// Committed returns the number of transactions executed.
func (n *Node) Committed() int64 { return n.committed.Load() }

// Store returns the node's shard state.
func (n *Node) Store() *state.Store { return n.store }

func (n *Node) start() { go n.loop() }

func (n *Node) stop() {
	close(n.stopCh)
	<-n.doneCh
}

func (n *Node) loop() {
	defer close(n.doneCh)
	ticker := time.NewTicker(n.d.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case env := <-n.inbox:
			n.dispatch(env, time.Now())
		case now := <-ticker.C:
			outs, decs := n.engine.Tick(now)
			n.send(outs)
			for _, dec := range decs {
				for _, tx := range dec.Block.Txs {
					n.execute(tx, now)
				}
			}
			n.rcTick(now)
		}
	}
}

func (n *Node) send(outs []consensus.Outbound) {
	for _, o := range outs {
		n.d.Net.Multicast(o.To, o.Env)
	}
}

func (n *Node) dispatch(env *types.Envelope, now time.Time) {
	switch env.Type {
	case types.MsgRequest:
		n.onRequest(env, now)
	case types.MsgAHLVote:
		n.onVote(env, now)
	case types.MsgAHLAck:
		n.onAck(env, now)
	case types.MsgAHLPrepare:
		n.onPrepare(env, now)
	case types.MsgAHLDecision:
		n.onDecision(env, now)
	default:
		outs, decs := n.engine.Step(env, now)
		n.send(outs)
		for _, dec := range decs {
			for _, tx := range dec.Block.Txs {
				n.execute(tx, now)
			}
		}
	}
}

// onRequest routes client traffic: intra-shard through this cluster's
// consensus, cross-shard through the reference committee's 2PC.
func (n *Node) onRequest(env *types.Envelope, now time.Time) {
	req, err := types.DecodeRequest(env.Payload)
	if err != nil || len(req.Tx.Involved) == 0 {
		return
	}
	tx := req.Tx
	if r, ok := n.replyCache.Get(tx.ID); ok {
		n.d.Net.Send(tx.Client, &types.Envelope{Type: types.MsgReply, From: n.id, Payload: r.Encode(nil)})
		return
	}
	if tx.IsCrossShard() && (n.queued[tx.ID] || n.done[tx.ID]) {
		return
	}
	if t, ok := n.inFlight[tx.ID]; ok && now.Sub(t) < n.d.cfg.IntraTimeout {
		return
	}

	if tx.IsCrossShard() {
		if n.cluster != RCCluster {
			n.d.Net.Send(n.d.rcFirst, env) // route to the reference committee
			return
		}
		if !n.engine.IsPrimary() {
			n.d.Net.Send(n.engine.Primary(), env)
			return
		}
		if n.queued[tx.ID] || n.done[tx.ID] || (n.current != nil && n.current.tx.ID == tx.ID) {
			return
		}
		n.inFlight[tx.ID] = now
		n.queued[tx.ID] = true
		n.queue = append(n.queue, tx)
		n.tryStartNext(now)
		return
	}

	// Intra-shard transaction for our cluster.
	if n.cluster == RCCluster || tx.Involved[0] != n.cluster {
		members := n.d.Topo.Members(tx.Involved[0])
		n.d.Net.Send(members[0], env)
		return
	}
	if !n.engine.IsPrimary() {
		n.d.Net.Send(n.engine.Primary(), env)
		return
	}
	n.inFlight[tx.ID] = now
	n.proposeLocal(tx, now)
}

// proposeLocal orders a transaction in this cluster, queueing behind any
// prepared cross-shard transaction (cluster-level 2PL).
func (n *Node) proposeLocal(tx *types.Transaction, now time.Time) {
	if len(n.prepared) > 0 && tx.Kind == types.TxTransfer {
		n.pendingIntra = append(n.pendingIntra, tx)
		return
	}
	outs, _ := n.engine.Propose([]*types.Transaction{tx}, now)
	n.send(outs)
}

// tryStartNext starts the next queued 2PC if the committee is free: AHL's
// single reference committee serializes cross-shard transactions.
func (n *Node) tryStartNext(now time.Time) {
	if n.current != nil || len(n.queue) == 0 || !n.engine.IsPrimary() {
		return
	}
	tx := n.queue[0]
	n.queue = n.queue[1:]
	delete(n.queued, tx.ID)
	n.current = &twoPC{
		tx:      tx,
		votes:   make(map[types.ClusterID]map[types.NodeID]bool),
		acks:    make(map[types.ClusterID]map[types.NodeID]bool),
		started: now,
	}
	// Step 1: the RC reaches consensus on beginning the 2PC.
	outs, _ := n.engine.Propose([]*types.Transaction{ctrlTx(tx, types.TxAHLBegin, seqPhaseBegin)}, now)
	n.send(outs)
}

// execute applies a decided entry. Data clusters execute transfers and the
// 2PC control entries; the RC executes BEGIN/DECIDE by driving the protocol.
func (n *Node) execute(tx *types.Transaction, now time.Time) {
	if n.replyCache.Contains(tx.ID) {
		return
	}
	switch tx.Kind {
	case types.TxTransfer:
		delete(n.inFlight, tx.ID)
		ok := n.store.Apply(tx) == nil
		n.committed.Add(1)
		n.reply(tx.ID, tx.Client, ok)

	case types.TxAHLBegin:
		// RC decided to run this 2PC: the primary asks the involved
		// clusters to prepare.
		n.replyCache.Put(tx.ID, &types.Reply{TxID: tx.ID, Replica: n.id})
		if n.engine.IsPrimary() && n.cluster == RCCluster {
			n.broadcastToClusters(tx, types.MsgAHLPrepare)
		}

	case types.TxAHLPrepare:
		// Cluster decided to prepare: lock, validate, vote to the RC.
		n.replyCache.Put(tx.ID, &types.Reply{TxID: tx.ID, Replica: n.id})
		oid := origID(tx.ID)
		n.prepared[oid] = true
		vote := n.store.Validate(tx) == nil
		msg := &types.ConsensusMsg{Digest: txKey(oid), Cluster: n.cluster}
		if vote {
			msg.Seq = 1
		}
		payload := msg.Encode(nil)
		n.d.Net.Multicast(n.d.Topo.Members(RCCluster), &types.Envelope{
			Type: types.MsgAHLVote, From: n.id, Payload: payload, Sig: n.signer.Sign(payload),
		})

	case types.TxAHLCommit, types.TxAHLAbort:
		if n.cluster == RCCluster {
			// RC consensus on the decision: the primary relays it.
			n.replyCache.Put(tx.ID, &types.Reply{TxID: tx.ID, Replica: n.id})
			if n.engine.IsPrimary() && n.current != nil && origID(tx.ID) == n.current.tx.ID {
				n.current.decided = true
				n.current.outcome = tx.Kind == types.TxAHLCommit
				n.broadcastToClusters(tx, types.MsgAHLDecision)
			}
			return
		}
		// Data cluster applies the decision and releases the lock.
		n.replyCache.Put(tx.ID, &types.Reply{TxID: tx.ID, Replica: n.id})
		oid := origID(tx.ID)
		delete(n.prepared, oid)
		committed := false
		if tx.Kind == types.TxAHLCommit {
			committed = n.store.Apply(tx) == nil
		}
		n.committed.Add(1)
		n.reply(oid, tx.Client, committed)
		// Ack completion to the RC and release queued work.
		msg := &types.ConsensusMsg{Digest: txKey(oid), Cluster: n.cluster}
		payload := msg.Encode(nil)
		n.d.Net.Multicast(n.d.Topo.Members(RCCluster), &types.Envelope{
			Type: types.MsgAHLAck, From: n.id, Payload: payload, Sig: n.signer.Sign(payload),
		})
		if len(n.prepared) == 0 && n.engine.IsPrimary() {
			pendingTxs := n.pendingIntra
			n.pendingIntra = nil
			for _, p := range pendingTxs {
				n.proposeLocal(p, now)
			}
		}
	}
}

func (n *Node) reply(id types.TxID, client types.NodeID, committed bool) {
	r := &types.Reply{TxID: id, Replica: n.id, Committed: committed}
	n.replyCache.Put(id, r)
	// Crash model: only the cluster primary answers; Byzantine clients need
	// f+1 matching replies, so every replica answers.
	if n.d.cfg.Model == types.CrashOnly && !n.engine.IsPrimary() {
		return
	}
	payload := r.Encode(nil)
	n.d.Net.Send(client, &types.Envelope{Type: types.MsgReply, From: n.id,
		Payload: payload, Sig: n.signer.Sign(payload)})
}

// broadcastToClusters sends a 2PC step to every member of every involved
// data cluster (the primaries order it; the rest ignore duplicates).
func (n *Node) broadcastToClusters(tx *types.Transaction, kind types.MsgType) {
	payload := tx.Encode(nil)
	env := &types.Envelope{Type: kind, From: n.id, Payload: payload, Sig: n.signer.Sign(payload)}
	for _, c := range tx.Involved {
		n.d.Net.Multicast(n.d.Topo.Members(c), env)
	}
}

// onPrepare (data-cluster): order the PREPARE entry through local consensus.
func (n *Node) onPrepare(env *types.Envelope, now time.Time) {
	tx, _, err := types.DecodeTransaction(env.Payload)
	if err != nil || n.cluster == RCCluster || !tx.Involved.Contains(n.cluster) {
		return
	}
	if !n.engine.IsPrimary() {
		return
	}
	entry := ctrlTx(tx, types.TxAHLPrepare, seqPhasePrepare)
	// The prepare entry itself is a cross-shard control entry and must not
	// queue behind the lock it is about to take.
	if n.replyCache.Contains(entry.ID) {
		return
	}
	if t, ok := n.inFlight[entry.ID]; ok && now.Sub(t) < n.d.cfg.IntraTimeout {
		return
	}
	n.inFlight[entry.ID] = now
	outs, _ := n.engine.Propose([]*types.Transaction{entry}, now)
	n.send(outs)
}

// onDecision (data-cluster): order the decision through local consensus.
func (n *Node) onDecision(env *types.Envelope, now time.Time) {
	tx, _, err := types.DecodeTransaction(env.Payload)
	if err != nil || n.cluster == RCCluster || !tx.Involved.Contains(n.cluster) {
		return
	}
	if !n.engine.IsPrimary() {
		return
	}
	entry := ctrlTx(tx, tx.Kind, seqPhaseApply)
	if n.replyCache.Contains(entry.ID) {
		return
	}
	if t, ok := n.inFlight[entry.ID]; ok && now.Sub(t) < n.d.cfg.IntraTimeout {
		return
	}
	n.inFlight[entry.ID] = now
	outs, _ := n.engine.Propose([]*types.Transaction{entry}, now)
	n.send(outs)
}

// onVote (RC): tally per-cluster votes; when every involved cluster has a
// quorum, order the decision through RC consensus.
func (n *Node) onVote(env *types.Envelope, now time.Time) {
	if n.cluster != RCCluster || !n.engine.IsPrimary() || n.current == nil {
		return
	}
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || m.Digest != txKey(n.current.tx.ID) {
		return
	}
	senderCluster, ok := n.d.Topo.ClusterOf(env.From)
	if !ok || !n.current.tx.Involved.Contains(senderCluster) {
		return
	}
	if n.current.votes[senderCluster] == nil {
		n.current.votes[senderCluster] = make(map[types.NodeID]bool)
	}
	n.current.votes[senderCluster][env.From] = m.Seq == 1
	if n.current.decided {
		return
	}
	// Quorum per cluster: f+1 matching votes (one correct node suffices to
	// pin the deterministic validation outcome under crash; f+1 under byz).
	need := n.d.cfg.F + 1
	if n.d.cfg.Model == types.CrashOnly {
		need = 1
	}
	outcome := true
	for _, c := range n.current.tx.Involved {
		yes, no := 0, 0
		for _, v := range n.current.votes[c] {
			if v {
				yes++
			} else {
				no++
			}
		}
		switch {
		case no >= need:
			outcome = false
		case yes >= need:
		default:
			return // this cluster has not voted conclusively yet
		}
	}
	kind := types.TxAHLCommit
	if !outcome {
		kind = types.TxAHLAbort
	}
	n.current.decided = true
	n.current.outcome = outcome
	outs, _ := n.engine.Propose([]*types.Transaction{ctrlTx(n.current.tx, kind, seqPhaseDecide)}, now)
	n.send(outs)
}

// onAck (RC): once every involved cluster acked the decision, the committee
// is free for the next cross-shard transaction.
func (n *Node) onAck(env *types.Envelope, now time.Time) {
	if n.cluster != RCCluster || !n.engine.IsPrimary() || n.current == nil {
		return
	}
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || m.Digest != txKey(n.current.tx.ID) {
		return
	}
	senderCluster, ok := n.d.Topo.ClusterOf(env.From)
	if !ok || !n.current.tx.Involved.Contains(senderCluster) {
		return
	}
	if n.current.acks[senderCluster] == nil {
		n.current.acks[senderCluster] = make(map[types.NodeID]bool)
	}
	n.current.acks[senderCluster][env.From] = true
	need := n.d.cfg.F + 1
	if n.d.cfg.Model == types.CrashOnly {
		need = 1
	}
	for _, c := range n.current.tx.Involved {
		if len(n.current.acks[c]) < need {
			return
		}
	}
	delete(n.inFlight, n.current.tx.ID)
	n.done[n.current.tx.ID] = true
	n.current = nil
	n.tryStartNext(now)
}

// rcTick re-drives a stalled 2PC (lost votes or acks) and drains the queue.
func (n *Node) rcTick(now time.Time) {
	if n.cluster != RCCluster || !n.engine.IsPrimary() {
		return
	}
	if n.current == nil {
		n.tryStartNext(now)
		return
	}
	if n.current.resendAt.IsZero() {
		n.current.resendAt = now.Add(n.d.cfg.IntraTimeout)
		return
	}
	if !now.After(n.current.resendAt) {
		return
	}
	n.current.resendAt = now.Add(n.d.cfg.IntraTimeout)
	if n.current.decided {
		kind := types.TxAHLCommit
		if !n.current.outcome {
			kind = types.TxAHLAbort
		}
		n.broadcastToClusters(ctrlTx(n.current.tx, kind, 0), types.MsgAHLDecision)
	} else {
		n.broadcastToClusters(n.current.tx, types.MsgAHLPrepare)
	}
}

// txKey folds a TxID into a hash for compact vote matching.
func txKey(id types.TxID) types.Hash {
	var buf [12]byte
	buf[0] = byte(id.Client)
	buf[1] = byte(id.Client >> 8)
	buf[2] = byte(id.Client >> 16)
	buf[3] = byte(id.Client >> 24)
	for i := 0; i < 8; i++ {
		buf[4+i] = byte(id.Seq >> (8 * i))
	}
	return types.HashBytes(buf[:])
}
