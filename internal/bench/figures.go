package bench

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"sharper/internal/ahl"
	"sharper/internal/apr"
	"sharper/internal/consensus"
	"sharper/internal/core"
	"sharper/internal/crypto"
	"sharper/internal/fab"
	"sharper/internal/fastpaxos"
	"sharper/internal/obs"
	"sharper/internal/replica"
	"sharper/internal/state"
	"sharper/internal/storage"
	"sharper/internal/transport"
	"sharper/internal/types"
	"sharper/internal/workload"
)

// FigureOptions tunes a figure reproduction run.
type FigureOptions struct {
	// Quick shrinks client counts and windows so tests finish fast; the
	// full sweep reproduces the paper's curves.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// AccountsPerShard sizes the seeded genesis state.
	AccountsPerShard int
}

func (o *FigureOptions) fill() {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.AccountsPerShard == 0 {
		o.AccountsPerShard = 1024
	}
}

func (o FigureOptions) clients() []int {
	if o.Quick {
		return []int{8, 24}
	}
	return []int{4, 8, 16, 32, 64, 128}
}

func (o FigureOptions) bench() Options {
	if o.Quick {
		return Options{Warmup: 150 * 1e6, Measure: 400 * 1e6} // 150ms / 400ms
	}
	return DefaultOptions()
}

const seedBalance = int64(1) << 40

// workloadFor builds the §4 accounting workload for a given shard count and
// cross-shard percentage.
func workloadFor(shards, crossPct int, o FigureOptions) *workload.Generator {
	return workload.New(workload.Config{
		Shards:           state.ShardMap{NumShards: shards},
		AccountsPerShard: o.AccountsPerShard,
		CrossShardPct:    crossPct,
		ShardsPerCross:   2,
		Amount:           1,
		Seed:             o.Seed,
	})
}

// Figure6 reproduces one panel of Fig. 6: throughput/latency under the
// crash model (12 nodes; SharPer and AHL-C as 4 clusters × 3, APR-C with 3
// active replicas, FPaxos with 4) at the given cross-shard percentage
// (0, 20, 80, or 100 in the paper).
func Figure6(w io.Writer, crossPct int, o FigureOptions) []Series {
	o.fill()
	const clusters, f = 4, 1
	gen := workloadFor(clusters, crossPct, o)
	var series []Series

	series = append(series, runSharPer(types.CrashOnly, clusters, f, gen, o, nil))
	series = append(series, runAHL(types.CrashOnly, clusters, f, gen, o))
	series = append(series, runReplicaBaseline("APR-C", gen, o, func() (*replica.Deployment, error) {
		return apr.NewCrash(12, f, transport.Config{}, o.Seed)
	}))
	series = append(series, runReplicaBaseline("FPaxos", gen, o, func() (*replica.Deployment, error) {
		return fastpaxos.New(12, f, transport.Config{}, o.Seed)
	}))

	Fprint(w, fmt.Sprintf("Figure 6 — crash model, %d%% cross-shard", crossPct), series)
	return series
}

// Figure7 reproduces one panel of Fig. 7: the Byzantine counterpart
// (16 nodes; SharPer and AHL-B as 4 clusters × 4, APR-B with 4 active
// replicas, FaB with 6).
func Figure7(w io.Writer, crossPct int, o FigureOptions) []Series {
	o.fill()
	const clusters, f = 4, 1
	gen := workloadFor(clusters, crossPct, o)
	var series []Series

	series = append(series, runSharPer(types.Byzantine, clusters, f, gen, o, nil))
	series = append(series, runAHL(types.Byzantine, clusters, f, gen, o))
	series = append(series, runReplicaBaseline("APR-B", gen, o, func() (*replica.Deployment, error) {
		return apr.NewByzantine(16, f, transport.Config{}, o.Seed)
	}))
	series = append(series, runReplicaBaseline("FaB", gen, o, func() (*replica.Deployment, error) {
		return fab.New(16, f, transport.Config{}, o.Seed)
	}))

	Fprint(w, fmt.Sprintf("Figure 7 — Byzantine model, %d%% cross-shard", crossPct), series)
	return series
}

// Figure8 reproduces Fig. 8: SharPer's scalability with 2, 3, 4, and 5
// clusters under the typical 90% intra / 10% cross-shard workload.
func Figure8(w io.Writer, model types.FailureModel, o FigureOptions) []Series {
	o.fill()
	var series []Series
	counts := []int{2, 3, 4, 5}
	if o.Quick {
		counts = []int{2, 4}
	}
	for _, clusters := range counts {
		gen := workloadFor(clusters, 10, o)
		s := runSharPer(model, clusters, 1, gen, o, nil)
		s.Name = fmt.Sprintf("%d-clusters", clusters)
		series = append(series, s)
	}
	Fprint(w, fmt.Sprintf("Figure 8 — SharPer scalability, %s model, 10%% cross-shard", model), series)
	return series
}

// Section34 reproduces the §3.4 clustered-network example: 23 Byzantine
// nodes. Without group knowledge (global f=3) only 2 clusters fit; knowing
// group A (n=7, f=2) and group B (n=16, f=1) yields 5 clusters and more
// parallelism.
func Section34(w io.Writer, o FigureOptions) []Series {
	o.fill()
	var series []Series

	// Plan 1: global f=3 → clusters of 3f+1=10; 23 nodes → 2 clusters
	// (the second absorbs the 3 leftover nodes, §2.2).
	plan1 := &consensus.Topology{Model: types.Byzantine, Clusters: map[types.ClusterID]consensus.Cluster{}}
	next := types.NodeID(0)
	addCluster := func(t *consensus.Topology, id types.ClusterID, f, size int) {
		c := consensus.Cluster{ID: id, F: f}
		for i := 0; i < size; i++ {
			c.Members = append(c.Members, next)
			next++
		}
		t.Clusters[id] = c
	}
	addCluster(plan1, 0, 3, 10)
	addCluster(plan1, 1, 3, 13)
	gen1 := workloadFor(2, 10, o)
	s1 := runSharPer(types.Byzantine, 0, 0, gen1, o, plan1)
	s1.Name = "2-clusters(global-f)"
	series = append(series, s1)

	// Plan 2: group-aware clustering → 1 cluster of 7 (f=2) + 4 of 4 (f=1).
	plan2 := &consensus.Topology{Model: types.Byzantine, Clusters: map[types.ClusterID]consensus.Cluster{}}
	next = 0
	addCluster(plan2, 0, 2, 7)
	for i := 1; i <= 4; i++ {
		addCluster(plan2, types.ClusterID(i), 1, 4)
	}
	gen2 := workloadFor(5, 10, o)
	s2 := runSharPer(types.Byzantine, 0, 0, gen2, o, plan2)
	s2.Name = "5-clusters(group-aware)"
	series = append(series, s2)

	Fprint(w, "Section 3.4 — clustered-network optimization, 23 Byzantine nodes, 10% cross-shard", series)
	return series
}

// AblationSkew measures contention sensitivity, an experiment beyond the
// paper: the same 20% cross-shard workload with uniform account selection
// versus a heavily Zipf-skewed one. Account skew concentrates conflicts on
// hot records, but because SharPer serializes at cluster granularity (not
// per record), throughput is expected to be largely insensitive to skew —
// a property worth documenting either way.
func AblationSkew(w io.Writer, o FigureOptions) []Series {
	o.fill()
	const clusters, f = 4, 1
	var series []Series
	for _, zipf := range []float64{0, 1.5} {
		gen := workload.New(workload.Config{
			Shards:           state.ShardMap{NumShards: clusters},
			AccountsPerShard: o.AccountsPerShard,
			CrossShardPct:    20,
			ShardsPerCross:   2,
			Amount:           1,
			Zipf:             zipf,
			Seed:             o.Seed,
		})
		s := runSharPer(types.CrashOnly, clusters, f, gen, o, nil)
		if zipf == 0 {
			s.Name = "uniform"
		} else {
			s.Name = fmt.Sprintf("zipf-%.1f", zipf)
		}
		series = append(series, s)
	}
	Fprint(w, "Ablation — account skew, crash model, 20% cross-shard", series)
	return series
}

// AblationSuperPrimary compares SharPer with and without the super-primary
// routing rule under a high cross-shard percentage, where conflicting
// cross-shard transactions are common (§3.2).
func AblationSuperPrimary(w io.Writer, o FigureOptions) []Series {
	o.fill()
	const clusters, f = 4, 1
	gen := workloadFor(clusters, 80, o)

	on := runSharPer(types.CrashOnly, clusters, f, gen, o, nil)
	on.Name = "super-primary"

	d, err := core.NewDeployment(core.Config{
		Model: types.CrashOnly, Clusters: clusters, F: f,
		Seed: o.Seed, DisableSuperPrimary: true,
	})
	off := Series{Name: "independent-initiators"}
	if err == nil {
		d.SeedAccounts(o.AccountsPerShard, seedBalance)
		d.Start()
		sys := SharPerSystem{D: d}
		off.Points = Sweep(sys, gen, o.clients(), o.bench())
		sys.Stop()
	}
	series := []Series{on, off}
	Fprint(w, "Ablation — super-primary routing, crash model, 80% cross-shard", series)
	return series
}

// BatchingResult is one point of the batching ablation, shaped for the
// machine-readable BENCH_batching.json that tracks the perf trajectory
// across PRs.
type BatchingResult struct {
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	MsgsPerTx    float64 `json:"msgs_per_tx"`
}

// AblationBatching measures SharPer's multi-transaction blocks (a deliberate
// deviation from the paper's single-tx blocks; see DESIGN.md) on the
// Fig. 6(a) intra-shard workload at batch sizes 1, 8, and 16, with a client
// pool large enough to saturate the 4-cluster fabric. It reports throughput,
// latency, and delivered messages per committed transaction — the quantity
// batching amortizes.
func AblationBatching(w io.Writer, o FigureOptions) []BatchingResult {
	o.fill()
	const clusters, f = 4, 1
	clients := 128
	if o.Quick {
		clients = 48
	}
	gen := workloadFor(clusters, 0, o)
	var results []BatchingResult
	var series []Series
	for _, bs := range []int{1, 8, 16} {
		d, err := core.NewDeployment(core.Config{
			Model: types.CrashOnly, Clusters: clusters, F: f, Seed: o.Seed, BatchSize: bs,
		})
		if err != nil {
			// Surface the failure instead of silently truncating the sweep:
			// a short BENCH_batching.json must be distinguishable from a
			// completed run.
			fmt.Fprintf(w, "# batch-%d: deployment failed: %v\n", bs, err)
			continue
		}
		d.SeedAccounts(o.AccountsPerShard, seedBalance)
		d.Start()
		sys := SharPerSystem{D: d}
		startMsgs := d.Net.Stats().Delivered.Load()
		startCommitted := d.TotalCommitted()
		pt := Run(sys, gen, clients, o.bench())
		msgs := d.Net.Stats().Delivered.Load() - startMsgs
		committed := d.TotalCommitted() - startCommitted
		sys.Stop()
		r := BatchingResult{
			BatchSize:    bs,
			Clients:      clients,
			ThroughputTx: pt.ThroughputTx,
			AvgLatencyMs: pt.AvgLatencyMs,
		}
		if committed > 0 {
			r.MsgsPerTx = float64(msgs) / float64(committed)
		}
		results = append(results, r)
		series = append(series, Series{Name: fmt.Sprintf("batch-%d", bs), Points: []Point{pt}})
	}
	Fprint(w, "Ablation — batched blocks, crash model, 0% cross-shard", series)
	return results
}

// PersistenceResult is one point of the durability ablation, shaped for the
// machine-readable BENCH_persistence.json that puts the WAL's overhead on
// the perf trajectory.
type PersistenceResult struct {
	// SyncPolicy is "memory" (no storage at all) or a storage.SyncPolicy
	// name: "none", "group", "always".
	SyncPolicy   string  `json:"sync_policy"`
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	// OverheadPct is the throughput cost versus the in-memory baseline at
	// the same batch size (0 for the baseline itself).
	OverheadPct float64 `json:"overhead_pct_vs_memory"`
}

// AblationPersistence measures the durable-storage subsystem's cost on the
// Fig. 6(a) intra-shard workload: the in-memory baseline against the three
// WAL fsync policies (none / group / always), at batch sizes 1 and 16.
// Every durable run writes a real write-ahead log plus checkpoints to a
// temporary directory; "always" additionally pays one fsync per record,
// which is the full persist-before-ack guarantee against power loss.
func AblationPersistence(w io.Writer, o FigureOptions) []PersistenceResult {
	o.fill()
	const clusters, f = 4, 1
	clients := 128
	if o.Quick {
		clients = 48
	}
	gen := workloadFor(clusters, 0, o)
	configs := []struct {
		name string
		sync storage.SyncPolicy
		mem  bool
	}{
		{name: "memory", mem: true},
		{name: "none", sync: storage.SyncNone},
		{name: "group", sync: storage.SyncGroup},
		{name: "always", sync: storage.SyncAlways},
	}
	var results []PersistenceResult
	var series []Series
	baseline := make(map[int]float64) // batch size → memory tx/s
	for _, bs := range []int{1, 16} {
		for _, c := range configs {
			cfg := core.Config{
				Model: types.CrashOnly, Clusters: clusters, F: f,
				Seed: o.Seed, BatchSize: bs,
				// The in-memory row must stay in-memory even under the
				// SHARPER_PERSIST suite override.
				NoPersist: c.mem,
			}
			var dir string
			if !c.mem {
				var err error
				dir, err = os.MkdirTemp("", "sharper-bench-persist-")
				if err != nil {
					fmt.Fprintf(w, "# %s/batch-%d: tempdir failed: %v\n", c.name, bs, err)
					continue
				}
				cfg.DataDir = dir
				cfg.Sync = c.sync
			}
			d, err := core.NewDeployment(cfg)
			if err != nil {
				fmt.Fprintf(w, "# %s/batch-%d: deployment failed: %v\n", c.name, bs, err)
				if dir != "" {
					os.RemoveAll(dir)
				}
				continue
			}
			d.SeedAccounts(o.AccountsPerShard, seedBalance)
			d.Start()
			sys := SharPerSystem{D: d}
			pt := Run(sys, gen, clients, o.bench())
			sys.Stop()
			if dir != "" {
				os.RemoveAll(dir)
			}
			r := PersistenceResult{
				SyncPolicy:   c.name,
				BatchSize:    bs,
				Clients:      clients,
				ThroughputTx: pt.ThroughputTx,
				AvgLatencyMs: pt.AvgLatencyMs,
			}
			if c.mem {
				baseline[bs] = pt.ThroughputTx
			} else if base := baseline[bs]; base > 0 {
				r.OverheadPct = 100 * (base - pt.ThroughputTx) / base
			}
			results = append(results, r)
			series = append(series, Series{
				Name:   fmt.Sprintf("%s/batch-%d", c.name, bs),
				Points: []Point{pt},
			})
		}
	}
	Fprint(w, "Ablation — durable storage (WAL fsync policies), crash model, 0% cross-shard", series)
	return results
}

// PipelineResult is one point of the commit-pipeline ablation, shaped for
// the machine-readable BENCH_pipeline.json that tracks the decoupled
// commit path (parallel apply + group-commit durability + off-loop
// replies) against the inline baseline.
type PipelineResult struct {
	// Fabric is "sim" (the modelled in-process network) or "tcp" (real
	// loopback sockets).
	Fabric string `json:"fabric"`
	// Commit is "inline" (the legacy synchronous path: the event loop
	// applies, persists, and replies before touching the next message) or
	// "pipelined" (the bounded executor stage).
	Commit string `json:"commit"`
	// SyncPolicy is the WAL fsync policy: "none", "group", "always".
	SyncPolicy   string  `json:"sync_policy"`
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	// Speedup is ThroughputTx over the inline row of the same
	// fabric/sync/batch configuration (pipelined rows only).
	Speedup float64 `json:"speedup_vs_inline,omitempty"`
	// Raw holds every rep's throughput (tx/s) behind the reported median, so
	// the JSON preserves the spread a single cell hides.
	Raw []float64 `json:"raw,omitempty"`
}

// AblationPipeline A/Bs the commit pipeline against the inline commit path
// on the Fig. 6(a) intra-shard workload: both fabrics × WAL fsync policies
// × batch sizes, every run writing a real write-ahead log. The pipelined
// rows keep the identical persist-before-ack guarantee (replies leave only
// after the batched append is durable under the run's sync policy); what
// changes is *where* the work happens — conflict-partitioned parallel
// apply off the event loop, and one fsync amortized over a whole commit
// group instead of one per block. SyncAlways at batch 1 is the stress
// case: inline pays a blocking fsync per block on the consensus loop,
// while the pipeline overlaps that fsync with ordering the next blocks.
// Each cell is the median of three back-to-back runs (one under -quick):
// single runs on a busy box swing ±10%, which would drown the A/B.
func AblationPipeline(w io.Writer, o FigureOptions) []PipelineResult {
	o.fill()
	const clusters, f = 4, 1
	clients := 128
	if o.Quick {
		clients = 48
	}
	batches := []int{1, 16}
	syncs := []storage.SyncPolicy{storage.SyncNone, storage.SyncGroup, storage.SyncAlways}
	if o.Quick {
		syncs = []storage.SyncPolicy{storage.SyncGroup}
	}
	gen := workloadFor(clusters, 0, o)
	var results []PipelineResult
	var series []Series
	for _, fabric := range []struct {
		name string
		kind core.TransportKind
	}{{"sim", core.TransportSim}, {"tcp", core.TransportTCP}} {
		for _, sync := range syncs {
			for _, bs := range batches {
				reps := 3
				if o.Quick {
					reps = 1
				}
				var inlineTx float64
				for _, commit := range []string{"inline", "pipelined"} {
					runs := make([]Point, 0, reps)
					for rep := 0; rep < reps; rep++ {
						dir, err := os.MkdirTemp("", "sharper-bench-pipeline-")
						if err != nil {
							fmt.Fprintf(w, "# %s/%s/batch-%d: tempdir failed: %v\n", fabric.name, sync, bs, err)
							continue
						}
						d, err := core.NewDeployment(core.Config{
							Model: types.CrashOnly, Clusters: clusters, F: f,
							Seed: o.Seed, BatchSize: bs, Transport: fabric.kind,
							DataDir: dir, Sync: sync,
							InlineCommit: commit == "inline",
						})
						if err != nil {
							fmt.Fprintf(w, "# %s/%s/%s/batch-%d: deployment failed: %v\n", fabric.name, commit, sync, bs, err)
							os.RemoveAll(dir)
							continue
						}
						d.SeedAccounts(o.AccountsPerShard, seedBalance)
						d.Start()
						sys := SharPerSystem{D: d}
						runs = append(runs, Run(sys, gen, clients, o.bench()))
						sys.Stop()
						os.RemoveAll(dir)
					}
					if len(runs) == 0 {
						continue
					}
					sort.Slice(runs, func(i, j int) bool { return runs[i].ThroughputTx < runs[j].ThroughputTx })
					raw := make([]float64, len(runs))
					for i, run := range runs {
						raw[i] = run.ThroughputTx
					}
					pt := runs[len(runs)/2]
					r := PipelineResult{
						Fabric:       fabric.name,
						Commit:       commit,
						SyncPolicy:   sync.String(),
						BatchSize:    bs,
						Clients:      clients,
						ThroughputTx: pt.ThroughputTx,
						AvgLatencyMs: pt.AvgLatencyMs,
						Raw:          raw,
					}
					if commit == "inline" {
						inlineTx = pt.ThroughputTx
					} else if inlineTx > 0 {
						r.Speedup = pt.ThroughputTx / inlineTx
					}
					results = append(results, r)
					series = append(series, Series{
						Name:   fmt.Sprintf("%s/%s/%s/batch-%d", fabric.name, commit, sync, bs),
						Points: []Point{pt},
					})
				}
			}
		}
	}
	Fprint(w, "Ablation — commit pipeline vs inline commit, crash model, 0% cross-shard", series)
	return results
}

// HotpathResult is one point of the hot-path ablation, shaped for the
// machine-readable BENCH_hotpath.json that tracks the send/receive/verify
// overhaul (digest memoization, pooled zero-alloc encoding, coalesced TCP
// writes, parallel verification) against the pre-overhaul seed.
type HotpathResult struct {
	// Fabric is "sim" (the modelled in-process network) or "tcp" (real
	// loopback sockets, one fabric per replica).
	Fabric       string  `json:"fabric"`
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	// AllocsPerTx is the process-wide heap allocation count per committed
	// transaction over the measurement window (clients included) — the
	// quantity the pooled encoding work drives down.
	AllocsPerTx float64 `json:"allocs_per_tx"`
	// SeedThroughputTx is the same configuration measured at the pre-overhaul
	// commit (see hotpathSeed); Speedup = ThroughputTx / SeedThroughputTx.
	SeedThroughputTx float64 `json:"seed_tx_per_sec,omitempty"`
	Speedup          float64 `json:"speedup_vs_seed,omitempty"`
}

// hotpathSeed holds the pre-overhaul baselines for AblationHotpath's exact
// configurations (4 crash clusters × 3, 64 clients, 0% cross-shard,
// 1024 accounts/shard, seed 42, full windows), measured on the development
// machine at the PR base commit (328496d, single CPU). Refresh alongside
// BENCH_hotpath.json when re-baselining on different hardware.
var hotpathSeed = map[string]float64{
	"sim/1": 15756, "sim/8": 34685, "sim/16": 33968,
	"tcp/1": 10665, "tcp/8": 22181, "tcp/16": 26490,
}

// AblationHotpath measures the hot-path overhaul on the Fig. 6(a)
// intra-shard workload at batch sizes 1, 8, and 16, over both fabrics. The
// TCP rows are the headline: real sockets pay for every allocation, HMAC
// state, and write syscall the overhaul removes, so they isolate the wire
// hot path the way the simulated fabric (which models per-message cost
// instead of paying it) cannot.
func AblationHotpath(w io.Writer, o FigureOptions) []HotpathResult {
	o.fill()
	const clusters, f = 4, 1
	clients := 64
	if o.Quick {
		clients = 24
	}
	gen := workloadFor(clusters, 0, o)
	var results []HotpathResult
	var series []Series
	for _, fabric := range []struct {
		name string
		kind core.TransportKind
	}{{"sim", core.TransportSim}, {"tcp", core.TransportTCP}} {
		for _, bs := range []int{1, 8, 16} {
			d, err := core.NewDeployment(core.Config{
				Model: types.CrashOnly, Clusters: clusters, F: f, Seed: o.Seed,
				BatchSize: bs, Transport: fabric.kind,
				// The hot path under measurement is the wire, not the disk.
				NoPersist: true,
			})
			if err != nil {
				fmt.Fprintf(w, "# %s/batch-%d: deployment failed: %v\n", fabric.name, bs, err)
				continue
			}
			d.SeedAccounts(o.AccountsPerShard, seedBalance)
			d.Start()
			sys := SharPerSystem{D: d}
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			startCommitted := d.TotalCommitted()
			pt := Run(sys, gen, clients, o.bench())
			runtime.ReadMemStats(&m1)
			committed := d.TotalCommitted() - startCommitted
			sys.Stop()
			r := HotpathResult{
				Fabric:       fabric.name,
				BatchSize:    bs,
				Clients:      clients,
				ThroughputTx: pt.ThroughputTx,
				AvgLatencyMs: pt.AvgLatencyMs,
			}
			if committed > 0 {
				r.AllocsPerTx = float64(m1.Mallocs-m0.Mallocs) / float64(committed)
			}
			// Quick runs use different client counts/windows than the
			// recorded baselines; comparing them would be noise.
			if base := hotpathSeed[fmt.Sprintf("%s/%d", fabric.name, bs)]; base > 0 && !o.Quick {
				r.SeedThroughputTx = base
				r.Speedup = r.ThroughputTx / base
			}
			results = append(results, r)
			series = append(series, Series{
				Name:   fmt.Sprintf("%s/batch-%d", fabric.name, bs),
				Points: []Point{pt},
			})
		}
	}
	Fprint(w, "Ablation — hot-path overhaul (sim + TCP fabrics), crash model, 0% cross-shard", series)
	return results
}

// CrossParallelResult is one point of the cross-shard scheduling ablation,
// shaped for the machine-readable BENCH_crossparallel.json that tracks the
// conflict-aware scheduler against the serialized one it replaced.
type CrossParallelResult struct {
	// Workload names the mix: "intra", "cross50-disjoint",
	// "cross90-disjoint", "cross90-overlap".
	Workload string `json:"workload"`
	// Scheduler is "serialized" (whole-node lock, drain-gated initiation,
	// one lead) or "parallel" (conflict table, pipelined leads,
	// slot-precise deferral).
	Scheduler    string  `json:"scheduler"`
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	P99LatencyMs float64 `json:"p99_ms"`
	// MsgsPerTx is delivered fabric messages per committed transaction over
	// the measurement window — what scheduling churn (re-proposals, parks,
	// retries) shows up as.
	MsgsPerTx float64 `json:"msgs_per_tx"`
	// Scheduler counters summed over all replicas at the end of the run.
	Leads         uint64 `json:"lead_high_water_sum"`
	Parks         uint64 `json:"parks"`
	Withdraws     uint64 `json:"withdraws"`
	DefersAvoided uint64 `json:"defers_avoided"`
	SelfVoteWaits uint64 `json:"self_vote_waits"`
	// Speedup is parallel/serialized throughput for the same workload
	// (set on parallel rows once both measured).
	Speedup float64 `json:"speedup_vs_serialized,omitempty"`
	// Raw holds every rep's throughput (tx/s) behind the reported median.
	Raw []float64 `json:"raw,omitempty"`
}

// AblationCrossParallel measures the conflict-aware cross-shard scheduler
// against the serialized one on cross-heavy workloads (the regime Fig. 8's
// parallelism claim is about): 50% and 90% cross-shard with cluster-disjoint
// sets, 90% with overlapping sets (the contention-bound case, where little
// improvement is possible by construction), and the intra-only workload as a
// no-regression guard.
func AblationCrossParallel(w io.Writer, o FigureOptions) []CrossParallelResult {
	o.fill()
	const clusters, f = 4, 1
	bs := 16
	clients := 96
	if o.Quick {
		clients = 32
	}
	workloads := []struct {
		name     string
		crossPct int
		sets     workload.CrossSetMode
	}{
		{"intra", 0, workload.SetsRandom},
		{"cross50-disjoint", 50, workload.SetsDisjoint},
		{"cross90-disjoint", 90, workload.SetsDisjoint},
		{"cross90-random", 90, workload.SetsRandom},
		{"cross90-overlap", 90, workload.SetsOverlapping},
	}
	// The shared benchmark host is noisy, so each configuration is measured
	// over fresh deployments several times and the median-throughput run is
	// reported; single-shot A/B ratios on this machine swing ±15%.
	reps := 3
	if o.Quick {
		reps = 1
	}
	var results []CrossParallelResult
	var series []Series
	serialized := make(map[string]float64) // workload → serialized tx/s
	for _, sched := range []struct {
		name      string
		serialize bool
	}{{"serialized", true}, {"parallel", false}} {
		for _, wl := range workloads {
			var runs []CrossParallelResult
			for rep := 0; rep < reps; rep++ {
				gen := workload.New(workload.Config{
					Shards:           state.ShardMap{NumShards: clusters},
					AccountsPerShard: o.AccountsPerShard,
					CrossShardPct:    wl.crossPct,
					ShardsPerCross:   2,
					CrossSets:        wl.sets,
					Amount:           1,
					Seed:             o.Seed + int64(rep),
				})
				d, err := core.NewDeployment(core.Config{
					Model: types.CrashOnly, Clusters: clusters, F: f,
					Seed:      o.Seed + int64(rep),
					BatchSize: bs, SerializeCross: sched.serialize, NoPersist: true,
				})
				if err != nil {
					fmt.Fprintf(w, "# %s/%s: deployment failed: %v\n", sched.name, wl.name, err)
					continue
				}
				d.SeedAccounts(o.AccountsPerShard, seedBalance)
				d.Start()
				sys := SharPerSystem{D: d}
				startMsgs := d.Net.Stats().Delivered.Load()
				startCommitted := d.TotalCommitted()
				pt := Run(sys, gen, clients, o.bench())
				msgs := d.Net.Stats().Delivered.Load() - startMsgs
				committed := d.TotalCommitted() - startCommitted
				sys.Stop() // counters are a quiesced read
				var agg types.SchedStats
				for _, n := range d.Nodes() {
					agg.Add(n.Counters())
				}
				r := CrossParallelResult{
					Workload:      wl.name,
					Scheduler:     sched.name,
					BatchSize:     bs,
					Clients:       clients,
					ThroughputTx:  pt.ThroughputTx,
					AvgLatencyMs:  pt.AvgLatencyMs,
					P99LatencyMs:  pt.P99LatencyMs,
					Leads:         agg.LeadHighWater,
					Parks:         agg.Parks,
					Withdraws:     agg.Withdraws,
					DefersAvoided: agg.DefersAvoided,
					SelfVoteWaits: agg.SelfVoteWaits,
				}
				if committed > 0 {
					r.MsgsPerTx = float64(msgs) / float64(committed)
				}
				runs = append(runs, r)
			}
			if len(runs) == 0 {
				continue
			}
			sort.Slice(runs, func(i, j int) bool {
				return runs[i].ThroughputTx < runs[j].ThroughputTx
			})
			raw := make([]float64, len(runs))
			for i, run := range runs {
				raw[i] = run.ThroughputTx
			}
			r := runs[len(runs)/2]
			r.Raw = raw
			if sched.serialize {
				serialized[wl.name] = r.ThroughputTx
			} else if base := serialized[wl.name]; base > 0 {
				r.Speedup = r.ThroughputTx / base
			}
			results = append(results, r)
			series = append(series, Series{
				Name: fmt.Sprintf("%s/%s", sched.name, wl.name),
				Points: []Point{{
					Clients:      r.Clients,
					ThroughputTx: r.ThroughputTx,
					AvgLatencyMs: r.AvgLatencyMs,
					P99LatencyMs: r.P99LatencyMs,
				}},
			})
		}
	}
	Fprint(w, "Ablation — conflict-aware cross-shard scheduling vs serialized, crash model, batch 16", series)
	return results
}

// WanResult is one point of the WAN ablation, shaped for the
// machine-readable BENCH_wan.json that tracks the link-shaping and
// batched-verification work: shaped-vs-loopback isolates the emulated WAN's
// cost, batched-vs-per-signature isolates the verify pool's window.
type WanResult struct {
	// Crypto is "mac" (PBFT's normal-case HMAC vectors) or "ed25519".
	Crypto string `json:"crypto"`
	// Network is "loopback" (unshaped sockets) or "multiregion" (the paper's
	// cross-datacenter link matrix emulated on those sockets).
	Network string `json:"network"`
	// VerifyWindow is the verify pool's batch window (1 = strictly per
	// signature, the baseline every speedup row divides by).
	VerifyWindow int     `json:"verify_window"`
	BatchSize    int     `json:"batch_size"`
	Clients      int     `json:"clients"`
	CrossPct     int     `json:"cross_pct"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	P99LatencyMs float64 `json:"p99_ms"`
	// SpeedupVsPerSig is ThroughputTx over the window-1 row with the same
	// crypto and network (set once both measured).
	SpeedupVsPerSig float64 `json:"speedup_vs_per_sig,omitempty"`
	// WanCostPct is the throughput lost to multiregion shaping relative to
	// the loopback row with the same crypto and window.
	WanCostPct float64 `json:"wan_cost_pct,omitempty"`
	// Raw holds every rep's throughput (tx/s) behind the reported median.
	Raw []float64 `json:"raw,omitempty"`
}

// AblationWAN measures the two halves of the WAN-real fabric work on a
// Byzantine TCP deployment (4 clusters × 4 over real sockets): per-link
// multiregion shaping against raw loopback, and windowed batch verification
// against strict per-signature verification, for both authenticator families.
// Single-transaction blocks keep the verify pool on the hot path (every
// commit is its own PBFT instance, so signature checks per transaction are
// maximal — the regime the batching work targets), and the workload is
// intra-shard only: cross-shard mixes are bound by cross-region round-trips
// and lock contention, not verification, so they would bury the crypto A/B
// in scheduler noise (measured: 10% cross at high client counts loses more
// to parks/defers than the verify pool can ever win back).
func AblationWAN(w io.Writer, o FigureOptions) []WanResult {
	o.fill()
	const clusters, f = 4, 1
	const bs = 1
	const crossPct = 0
	clients := 64
	if o.Quick {
		clients = 24
	}
	cases := []struct {
		crypto  string
		ed25519 bool
		network string
		window  int
	}{
		{"mac", false, "loopback", 1},
		{"mac", false, "loopback", crypto.DefaultVerifyWindow},
		{"mac", false, "multiregion", 1},
		{"mac", false, "multiregion", 4},
		{"mac", false, "multiregion", crypto.DefaultVerifyWindow},
		{"ed25519", true, "multiregion", 1},
		{"ed25519", true, "multiregion", crypto.DefaultVerifyWindow},
	}
	// Shaped links need a longer window than the defaults (the delay lines
	// ramp throughput over the first second), and deployments measured back
	// to back in one process interfere (GC debt, scheduler state): each
	// configuration runs over several fresh deployments and reports the
	// median-throughput run, the same discipline as AblationCrossParallel.
	opts := Options{Warmup: time.Second, Measure: 3 * time.Second}
	reps := 3
	if o.Quick {
		opts = o.bench()
		reps = 1
	}
	perSig := make(map[string]float64)   // crypto/network → window-1 tx/s
	unshaped := make(map[string]float64) // crypto/window → loopback tx/s
	var results []WanResult
	var series []Series
	for _, c := range cases {
		var runs []Point
		for rep := 0; rep < reps; rep++ {
			gen := workloadFor(clusters, crossPct, o)
			cfg := core.Config{
				Model: types.Byzantine, Clusters: clusters, F: f,
				Seed:      o.Seed + int64(rep),
				BatchSize: bs, Transport: core.TransportTCP,
				Ed25519: c.ed25519, VerifyWindow: c.window,
				// The path under measurement is the wire + the verify pool.
				NoPersist: true,
			}
			if c.network == "multiregion" {
				cfg.Shaping = transport.Multiregion()
			}
			d, err := core.NewDeployment(cfg)
			if err != nil {
				fmt.Fprintf(w, "# %s/%s/window-%d: deployment failed: %v\n", c.crypto, c.network, c.window, err)
				continue
			}
			d.SeedAccounts(o.AccountsPerShard, seedBalance)
			d.Start()
			sys := SharPerSystem{D: d}
			runs = append(runs, Run(sys, gen, clients, opts))
			sys.Stop()
			runtime.GC() // don't bill this deployment's garbage to the next
		}
		if len(runs) == 0 {
			continue
		}
		sort.Slice(runs, func(i, j int) bool { return runs[i].ThroughputTx < runs[j].ThroughputTx })
		raw := make([]float64, len(runs))
		for i, run := range runs {
			raw[i] = run.ThroughputTx
		}
		pt := runs[len(runs)/2]
		r := WanResult{
			Crypto:       c.crypto,
			Network:      c.network,
			VerifyWindow: c.window,
			BatchSize:    bs,
			Clients:      clients,
			CrossPct:     crossPct,
			ThroughputTx: pt.ThroughputTx,
			AvgLatencyMs: pt.AvgLatencyMs,
			P99LatencyMs: pt.P99LatencyMs,
			Raw:          raw,
		}
		if c.window == 1 {
			perSig[c.crypto+"/"+c.network] = r.ThroughputTx
		} else if base := perSig[c.crypto+"/"+c.network]; base > 0 {
			r.SpeedupVsPerSig = r.ThroughputTx / base
		}
		key := fmt.Sprintf("%s/%d", c.crypto, c.window)
		if c.network == "loopback" {
			unshaped[key] = r.ThroughputTx
		} else if base := unshaped[key]; base > 0 {
			r.WanCostPct = 100 * (base - r.ThroughputTx) / base
		}
		results = append(results, r)
		series = append(series, Series{
			Name:   fmt.Sprintf("%s/%s/window-%d", c.crypto, c.network, c.window),
			Points: []Point{pt},
		})
	}
	Fprint(w, "Ablation — WAN shaping + batched verification, Byzantine model over TCP, intra-shard workload", series)
	return results
}

// StageLatency is one lifecycle stage's share of commit latency: the delta
// from the previous stamped stage to this one, over every sampled commit.
type StageLatency struct {
	Stage string `json:"stage"`
	Count uint64 `json:"count"`
	P50Us uint64 `json:"p50_us"`
	P99Us uint64 `json:"p99_us"`
}

// SeriesLatency breaks one transaction class ("intra" or "cross") into its
// per-stage latency distribution plus the end-to-end total.
type SeriesLatency struct {
	Series     string         `json:"series"`
	Sampled    uint64         `json:"sampled"`
	TotalP50Us uint64         `json:"total_p50_us"`
	TotalP99Us uint64         `json:"total_p99_us"`
	Stages     []StageLatency `json:"stages"`
}

// LatencyResult is one cell of the latency matrix: a network × batch-size
// configuration with both series' stage breakdowns.
type LatencyResult struct {
	// Network is "loopback" (unshaped sim fabric) or "multiregion" (the
	// paper's cross-datacenter link matrix emulated on it).
	Network      string          `json:"network"`
	BatchSize    int             `json:"batch_size"`
	Clients      int             `json:"clients"`
	CrossPct     int             `json:"cross_pct"`
	ThroughputTx float64         `json:"tx_per_sec"`
	AvgLatencyMs float64         `json:"ms_per_tx"`
	Series       []SeriesLatency `json:"series"`
}

// LatencyReport is the machine-readable BENCH_latency.json: the stage
// breakdown matrix plus the metrics-overhead A/B the CI guard tracks.
type LatencyReport struct {
	Cases []LatencyResult `json:"cases"`
	// MetricsOnTx / MetricsOffTx are median batch-16 sim throughputs with the
	// observability registry at its production default vs NoMetrics.
	MetricsOnTx        float64 `json:"metrics_on_tx_per_sec"`
	MetricsOffTx       float64 `json:"metrics_off_tx_per_sec"`
	MetricsOverheadPct float64 `json:"metrics_overhead_pct"`
	OverheadBudgetPct  float64 `json:"overhead_budget_pct"`
	// MetricsOnRaw / MetricsOffRaw hold every rep behind the medians (tx/s).
	MetricsOnRaw  []float64 `json:"metrics_on_raw,omitempty"`
	MetricsOffRaw []float64 `json:"metrics_off_raw,omitempty"`
}

// AblationLatency produces the per-stage commit-latency breakdown the
// observability work exists to answer: where does a transaction's time go,
// intra vs cross, on a local fabric vs an emulated WAN, with and without
// batching? Every transaction is traced (TraceSample 1) so the histograms
// are the figure, not a sample of it; the separate overhead A/B below runs
// at the production sampling default, since that is the configuration whose
// cost the ≤3% budget bounds.
func AblationLatency(w io.Writer, o FigureOptions) LatencyReport {
	o.fill()
	const clusters, f = 3, 1
	const crossPct = 20
	clients := 24
	opts := Options{Warmup: 500 * time.Millisecond, Measure: 2 * time.Second}
	if o.Quick {
		clients = 8
		opts = o.bench()
	}
	report := LatencyReport{OverheadBudgetPct: 3}
	cases := []struct {
		network string
		batch   int
	}{
		{"loopback", 1},
		{"loopback", 16},
		{"multiregion", 1},
		{"multiregion", 16},
	}
	fmt.Fprintf(w, "\n## Ablation — commit-latency stage breakdown (crash model, sim fabric, %d%% cross-shard, %d clients)\n", crossPct, clients)
	for _, c := range cases {
		gen := workloadFor(clusters, crossPct, o)
		cfg := core.Config{
			Model: types.CrashOnly, Clusters: clusters, F: f, Seed: o.Seed,
			BatchSize: c.batch, TraceSample: 1,
		}
		if c.network == "multiregion" {
			cfg.Shaping = transport.Multiregion()
		}
		d, err := core.NewDeployment(cfg)
		if err != nil {
			fmt.Fprintf(w, "# latency %s/batch-%d: deployment failed: %v\n", c.network, c.batch, err)
			continue
		}
		d.SeedAccounts(o.AccountsPerShard, seedBalance)
		d.Start()
		sys := SharPerSystem{D: d}
		pt := Run(sys, gen, clients, opts)
		snap := d.MetricsSnapshot()
		sys.Stop()
		runtime.GC() // don't bill this deployment's garbage to the next

		r := LatencyResult{
			Network: c.network, BatchSize: c.batch, Clients: clients,
			CrossPct: crossPct, ThroughputTx: pt.ThroughputTx, AvgLatencyMs: pt.AvgLatencyMs,
		}
		byName := make(map[string]*obs.Metric, len(snap))
		for i := range snap {
			byName[snap[i].Name] = &snap[i]
		}
		for si, series := range []string{"intra", "cross"} {
			sl := SeriesLatency{Series: series}
			if tot := byName["stage_"+series+"_total_us"]; tot != nil {
				sl.Sampled = tot.Count
				sl.TotalP50Us = tot.Quantile(0.50)
				sl.TotalP99Us = tot.Quantile(0.99)
			}
			for st := obs.StageSeal; st < obs.NumStages; st++ {
				if si == 0 && st == obs.StageLockGrant {
					continue
				}
				h := byName["stage_"+series+"_"+st.String()+"_us"]
				if h == nil || h.Count == 0 {
					continue
				}
				sl.Stages = append(sl.Stages, StageLatency{
					Stage: st.String(), Count: h.Count,
					P50Us: h.Quantile(0.50), P99Us: h.Quantile(0.99),
				})
			}
			fmt.Fprintf(w, "%-11s batch=%-2d %-5s  sampled=%-5d total p50=%6dµs p99=%6dµs |",
				c.network, c.batch, series, sl.Sampled, sl.TotalP50Us, sl.TotalP99Us)
			for _, s := range sl.Stages {
				fmt.Fprintf(w, " %s=%dµs", s.Stage, s.P50Us)
			}
			fmt.Fprintln(w)
			r.Series = append(r.Series, sl)
		}
		report.Cases = append(report.Cases, r)
	}

	// Overhead A/B: batch-16 loopback throughput with the registry at its
	// production default against NoMetrics, interleaved so machine drift hits
	// both arms equally, medians compared. NoPersist keeps fsync jitter from
	// burying the few-percent signal under measurement noise.
	reps := 3
	if o.Quick {
		reps = 1
	}
	measure := func(noMetrics bool, rep int) float64 {
		gen := workloadFor(clusters, crossPct, o)
		d, err := core.NewDeployment(core.Config{
			Model: types.CrashOnly, Clusters: clusters, F: f,
			Seed: o.Seed + int64(rep), BatchSize: 16,
			NoPersist: true, NoMetrics: noMetrics,
		})
		if err != nil {
			return 0
		}
		d.SeedAccounts(o.AccountsPerShard, seedBalance)
		d.Start()
		sys := SharPerSystem{D: d}
		pt := Run(sys, gen, clients, opts)
		sys.Stop()
		runtime.GC()
		return pt.ThroughputTx
	}
	var on, off []float64
	for rep := 0; rep < reps; rep++ {
		off = append(off, measure(true, rep))
		on = append(on, measure(false, rep))
	}
	sort.Float64s(on)
	sort.Float64s(off)
	report.MetricsOnRaw = append([]float64(nil), on...)
	report.MetricsOffRaw = append([]float64(nil), off...)
	report.MetricsOnTx = on[len(on)/2]
	report.MetricsOffTx = off[len(off)/2]
	if report.MetricsOffTx > 0 {
		report.MetricsOverheadPct = 100 * (report.MetricsOffTx - report.MetricsOnTx) / report.MetricsOffTx
	}
	fmt.Fprintf(w, "metrics overhead: on=%.0f tx/s off=%.0f tx/s → %.2f%% (budget %.0f%%)\n",
		report.MetricsOnTx, report.MetricsOffTx, report.MetricsOverheadPct, report.OverheadBudgetPct)
	return report
}

func runSharPer(model types.FailureModel, clusters, f int, gen *workload.Generator,
	o FigureOptions, topo *consensus.Topology) Series {
	cfg := core.Config{Model: model, Clusters: clusters, F: f, Seed: o.Seed, Topology: topo}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return Series{Name: "SharPer"}
	}
	d.SeedAccounts(o.AccountsPerShard, seedBalance)
	d.Start()
	sys := SharPerSystem{D: d}
	pts := Sweep(sys, gen, o.clients(), o.bench())
	sys.Stop()
	return Series{Name: "SharPer", Points: pts}
}

func runAHL(model types.FailureModel, clusters, f int, gen *workload.Generator, o FigureOptions) Series {
	name := "AHL-C"
	if model == types.Byzantine {
		name = "AHL-B"
	}
	d, err := ahl.NewDeployment(ahl.Config{Model: model, Clusters: clusters, F: f, Seed: o.Seed})
	if err != nil {
		return Series{Name: name}
	}
	d.SeedAccounts(o.AccountsPerShard, seedBalance)
	d.Start()
	sys := AHLSystem{D: d}
	pts := Sweep(sys, gen, o.clients(), o.bench())
	sys.Stop()
	return Series{Name: name, Points: pts}
}

func runReplicaBaseline(name string, gen *workload.Generator, o FigureOptions,
	build func() (*replica.Deployment, error)) Series {
	d, err := build()
	if err != nil {
		return Series{Name: name}
	}
	d.SeedAccounts(state.ShardMap{NumShards: gen.NumShards()}, o.AccountsPerShard, seedBalance)
	d.Start()
	sys := ReplicaSystem{D: d}
	pts := Sweep(sys, gen, o.clients(), o.bench())
	sys.Stop()
	return Series{Name: name, Points: pts}
}
