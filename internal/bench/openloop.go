package bench

import (
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/types"
	"sharper/internal/workload"
)

// OpenLoopIssuer submits one transaction built from ops and blocks until its
// verdict arrives. It reports shed=true when the system refused the
// transaction under admission control (overloaded or expired) — the open-loop
// harness counts those separately from failures, because shedding under
// overload is the behaviour the saturation figure exists to measure.
type OpenLoopIssuer func(ops []types.Op) (lat time.Duration, shed bool, err error)

// OpenLoopSystem abstracts a running deployment the open-loop harness can
// drive through its admission-controlled ingress path.
type OpenLoopSystem interface {
	// NewOpenIssuer returns a fresh ingress client bound to the system.
	NewOpenIssuer() OpenLoopIssuer
	// Stop tears the deployment down.
	Stop()
}

// OpenLoopPoint is one offered-load measurement: arrivals were generated at a
// fixed rate regardless of completions (open loop), so past saturation the
// latency and shed columns diverge instead of the arrival rate silently
// adapting the way closed-loop clients do.
type OpenLoopPoint struct {
	// OfferedTx is the realized arrival rate over the measurement window.
	OfferedTx float64
	// ThroughputTx counts committed transactions per second.
	ThroughputTx float64
	AvgLatencyMs float64
	P50LatencyMs float64
	P99LatencyMs float64
	// Shed counts arrivals refused by admission control plus arrivals dropped
	// at the harness's in-flight cap (every issuer slot busy — the system is
	// not keeping up with the offered rate either way).
	Shed   int64
	Errors int64
}

// RunOpenLoop offers transactions at `rate` per second with exponential
// (Poisson-process) inter-arrival times, servicing arrivals from the fixed
// issuer pool. The pool size is the in-flight cap: an arrival that finds
// every issuer busy is counted as shed rather than queued, so the measured
// latency is pure system latency, not harness queueing delay. Issuers are
// created by the caller (once per deployment) so repeated ladder points reuse
// the same registered clients instead of growing the fabric.
func RunOpenLoop(issuers []OpenLoopIssuer, gen *workload.Generator, rate float64, seed int64, opts Options) OpenLoopPoint {
	var (
		measuring atomic.Bool
		committed atomic.Int64
		offered   atomic.Int64
		shed      atomic.Int64
		errs      atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	pool := make(chan OpenLoopIssuer, len(issuers))
	for _, is := range issuers {
		pool <- is
	}
	rng := rand.New(rand.NewSource(seed))
	interval := func() time.Duration {
		return time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
	}

	start := time.Now()
	warmEnd := start.Add(opts.Warmup)
	stopAt := warmEnd.Add(opts.Measure)
	var measureStart time.Time
	next := start
	for {
		now := time.Now()
		if !now.Before(stopAt) {
			break
		}
		if !measuring.Load() && !now.Before(warmEnd) {
			measureStart = now
			measuring.Store(true)
		}
		if d := next.Sub(now); d > 0 {
			time.Sleep(d)
		}
		next = next.Add(interval())
		ops := gen.Next()
		if measuring.Load() {
			offered.Add(1)
		}
		select {
		case issue := <-pool:
			wg.Add(1)
			go func(issue OpenLoopIssuer, ops []types.Op) {
				defer wg.Done()
				m := measuring.Load()
				lat, sh, err := issue(ops)
				switch {
				case sh:
					if m {
						shed.Add(1)
					}
				case err != nil:
					if m {
						errs.Add(1)
					}
				default:
					if m {
						committed.Add(1)
						latMu.Lock()
						latencies = append(latencies, lat)
						latMu.Unlock()
					}
				}
				pool <- issue
			}(issue, ops)
		default:
			// In-flight cap reached: the open loop does not queue.
			if measuring.Load() {
				shed.Add(1)
			}
		}
	}
	measuring.Store(false)
	wg.Wait()

	elapsed := opts.Measure
	if !measureStart.IsZero() {
		elapsed = stopAt.Sub(measureStart)
	}
	p := OpenLoopPoint{
		OfferedTx:    float64(offered.Load()) / elapsed.Seconds(),
		ThroughputTx: float64(committed.Load()) / elapsed.Seconds(),
		Shed:         shed.Load(),
		Errors:       errs.Load(),
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		p.AvgLatencyMs = float64(sum.Microseconds()) / float64(len(latencies)) / 1000
		p.P50LatencyMs = float64(latencies[len(latencies)/2].Microseconds()) / 1000
		p.P99LatencyMs = float64(latencies[len(latencies)*99/100].Microseconds()) / 1000
	}
	return p
}
