package bench

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sharper/internal/state"
	"sharper/internal/types"
	"sharper/internal/workload"
)

// fakeSystem commits instantly with a fixed synthetic latency.
type fakeSystem struct {
	latency time.Duration
	issued  atomic.Int64
}

func (s *fakeSystem) NewIssuer() Issuer {
	return func(ops []types.Op) (time.Duration, error) {
		s.issued.Add(1)
		time.Sleep(s.latency)
		return s.latency, nil
	}
}

func (s *fakeSystem) Stop() {}

func testGen() *workload.Generator {
	return workload.New(workload.Config{
		Shards:           state.ShardMap{NumShards: 2},
		AccountsPerShard: 8,
		CrossShardPct:    50,
		Seed:             1,
	})
}

func TestRunMeasuresThroughputAndLatency(t *testing.T) {
	sys := &fakeSystem{latency: time.Millisecond}
	p := Run(sys, testGen(), 4, Options{Warmup: 20 * time.Millisecond, Measure: 200 * time.Millisecond})
	if p.Clients != 4 {
		t.Fatalf("clients = %d", p.Clients)
	}
	// 4 closed-loop clients at 1ms each ≈ 4000 tx/s; allow wide slack for
	// scheduler noise but catch order-of-magnitude bugs.
	if p.ThroughputTx < 1000 || p.ThroughputTx > 8000 {
		t.Fatalf("throughput %f implausible", p.ThroughputTx)
	}
	if p.AvgLatencyMs < 0.5 || p.AvgLatencyMs > 10 {
		t.Fatalf("latency %f implausible", p.AvgLatencyMs)
	}
	if p.Errors != 0 {
		t.Fatalf("errors = %d", p.Errors)
	}
}

func TestSweepProducesOnePointPerClientCount(t *testing.T) {
	sys := &fakeSystem{latency: 200 * time.Microsecond}
	pts := Sweep(sys, testGen(), []int{1, 2, 4},
		Options{Warmup: 10 * time.Millisecond, Measure: 50 * time.Millisecond})
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	for i, want := range []int{1, 2, 4} {
		if pts[i].Clients != want {
			t.Fatalf("point %d clients = %d", i, pts[i].Clients)
		}
	}
}

func TestFprintFormat(t *testing.T) {
	var buf bytes.Buffer
	Fprint(&buf, "Test Panel", []Series{{
		Name:   "SharPer",
		Points: []Point{{Clients: 8, ThroughputTx: 12000, AvgLatencyMs: 1.5}},
	}})
	out := buf.String()
	for _, want := range []string{"Test Panel", "SharPer", "12.00", "peaks"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPeakThroughput(t *testing.T) {
	s := Series{Points: []Point{
		{ThroughputTx: 5}, {ThroughputTx: 11}, {ThroughputTx: 7},
	}}
	if s.PeakThroughput() != 11 {
		t.Fatalf("peak = %f", s.PeakThroughput())
	}
}
