package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"sharper/internal/core"
	"sharper/internal/types"
)

// SaturationPoint is one rung of the offered-load ladder, shaped for the
// machine-readable BENCH_saturation.json.
type SaturationPoint struct {
	// OfferedFrac is the target fraction of the closed-loop reference
	// throughput this rung offered.
	OfferedFrac float64 `json:"offered_frac"`
	// OfferedTx is the realized arrival rate over the measurement window.
	OfferedTx    float64 `json:"offered_tx_per_sec"`
	ThroughputTx float64 `json:"tx_per_sec"`
	AvgLatencyMs float64 `json:"ms_per_tx"`
	P50LatencyMs float64 `json:"p50_ms"`
	P99LatencyMs float64 `json:"p99_ms"`
	// Shed counts submits refused by admission control (Overloaded/Expired)
	// plus arrivals dropped at the harness's in-flight cap.
	Shed   int64 `json:"shed"`
	Errors int64 `json:"errors"`
}

// SaturationResult is one fabric × batch-size saturation curve: the latency
// vs offered load ladder through the gateway path, anchored to the in-process
// closed-loop reference measured on the same deployment.
type SaturationResult struct {
	// Fabric is "sim" (the modelled in-process network) or "tcp" (real
	// loopback sockets).
	Fabric    string `json:"fabric"`
	BatchSize int    `json:"batch_size"`
	// ClosedLoopTx is the direct-path (MsgRequest, no gateway) closed-loop
	// throughput the ladder's offered rates are fractions of.
	ClosedLoopTx float64 `json:"closed_loop_tx_per_sec"`
	// Knee is the highest offered rate the gateway path still served at
	// ≥90% goodput; past it latency climbs and admission control sheds.
	KneeOfferedTx    float64 `json:"knee_offered_tx_per_sec"`
	KneeThroughputTx float64 `json:"knee_tx_per_sec"`
	// GatewayVsClosedPct is knee goodput as a percentage of the closed-loop
	// reference — how much the ingress plane (mempool admission, propagation
	// batching, submit replies) costs against in-process clients.
	GatewayVsClosedPct float64           `json:"gateway_vs_closed_pct"`
	Points             []SaturationPoint `json:"points"`
}

// AblationSaturation measures the client-ingress plane under open-loop load:
// for each fabric × batch size it takes a closed-loop reference through the
// direct client path, then offers Poisson arrivals through gateway clients at
// increasing fractions of that reference. Closed-loop clients adapt their
// arrival rate to the system (each waits for its reply), so they can never
// show the saturation knee; the open loop keeps offering, so past the knee
// the latency column climbs and the shed column goes non-zero — that is the
// admission-control behaviour under test. The same deployment serves the
// reference and the whole ladder (rungs ascend, so overload only pollutes the
// tail), and gateway issuers are registered once and reused across rungs.
func AblationSaturation(w io.Writer, o FigureOptions) []SaturationResult {
	o.fill()
	const clusters, f = 4, 1
	const crossPct = 0
	fracs := []float64{0.25, 0.5, 0.75, 0.9, 1.0, 1.2, 1.5}
	clients := 64
	inflight := 256
	opts := Options{Warmup: 500 * time.Millisecond, Measure: 1500 * time.Millisecond}
	if o.Quick {
		fracs = []float64{0.5, 1.0, 1.5}
		clients = 24
		inflight = 96
		opts = o.bench()
	}

	var results []SaturationResult
	for _, fabric := range []struct {
		name string
		kind core.TransportKind
	}{{"sim", core.TransportSim}, {"tcp", core.TransportTCP}} {
		for _, bs := range []int{1, 16} {
			gen := workloadFor(clusters, crossPct, o)
			d, err := core.NewDeployment(core.Config{
				Model: types.CrashOnly, Clusters: clusters, F: f,
				Seed: o.Seed, BatchSize: bs, Transport: fabric.kind,
				NoPersist: true,
			})
			if err != nil {
				fmt.Fprintf(w, "# saturation %s/batch-%d: deployment failed: %v\n", fabric.name, bs, err)
				continue
			}
			d.SeedAccounts(o.AccountsPerShard, seedBalance)
			d.Start()

			// Closed-loop reference through the direct MsgRequest path.
			ref := Run(SharPerSystem{D: d}, gen, clients, opts)
			r := SaturationResult{
				Fabric: fabric.name, BatchSize: bs,
				ClosedLoopTx: ref.ThroughputTx,
			}
			fmt.Fprintf(w, "# saturation %s/batch-%d closed-loop reference: %.0f tx/s\n",
				fabric.name, bs, ref.ThroughputTx)

			// Gateway issuer pool: registered once, reused for every rung.
			gw := GatewaySystem{D: d, Timeout: time.Second, MaxAttempts: 2}
			issuers := make([]OpenLoopIssuer, inflight)
			for i := range issuers {
				issuers[i] = gw.NewOpenIssuer()
			}
			for ri, frac := range fracs {
				rate := ref.ThroughputTx * frac
				if rate < 1 {
					rate = 1
				}
				pt := RunOpenLoop(issuers, gen, rate, o.Seed+int64(ri), opts)
				sp := SaturationPoint{
					OfferedFrac:  frac,
					OfferedTx:    pt.OfferedTx,
					ThroughputTx: pt.ThroughputTx,
					AvgLatencyMs: pt.AvgLatencyMs,
					P50LatencyMs: pt.P50LatencyMs,
					P99LatencyMs: pt.P99LatencyMs,
					Shed:         pt.Shed,
					Errors:       pt.Errors,
				}
				r.Points = append(r.Points, sp)
				if pt.OfferedTx > 0 && pt.ThroughputTx >= 0.9*pt.OfferedTx {
					r.KneeOfferedTx = pt.OfferedTx
					r.KneeThroughputTx = pt.ThroughputTx
				}
				fmt.Fprintf(w, "%-4s batch=%-2d offered=%7.0f tx/s (%.2fx)  goodput=%7.0f tx/s  p50=%7.2fms p99=%7.2fms  shed=%-6d errs=%d\n",
					fabric.name, bs, pt.OfferedTx, frac, pt.ThroughputTx,
					pt.P50LatencyMs, pt.P99LatencyMs, pt.Shed, pt.Errors)
			}
			if r.ClosedLoopTx > 0 {
				r.GatewayVsClosedPct = 100 * r.KneeThroughputTx / r.ClosedLoopTx
			}
			fmt.Fprintf(w, "# saturation %s/batch-%d knee: %.0f tx/s offered → %.0f tx/s goodput (%.1f%% of closed loop)\n",
				fabric.name, bs, r.KneeOfferedTx, r.KneeThroughputTx, r.GatewayVsClosedPct)
			results = append(results, r)
			d.Stop()
			runtime.GC() // don't bill this deployment's garbage to the next
		}
	}
	return results
}
