package bench

import (
	"time"

	"sharper/internal/ahl"
	"sharper/internal/core"
	"sharper/internal/replica"
	"sharper/internal/types"
)

// SharPerSystem adapts a SharPer deployment to the harness.
type SharPerSystem struct{ D *core.Deployment }

// NewIssuer returns a closed-loop SharPer client.
func (s SharPerSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s SharPerSystem) Stop() { s.D.Stop() }

// GatewaySystem adapts the client-ingress plane (gateway + sharded mempool)
// to the open-loop harness. Admission sheds (overloaded, expired) surface as
// shed, not errors.
type GatewaySystem struct {
	D *core.Deployment
	// Timeout and MaxAttempts override the gateway client's retransmit policy
	// when non-zero; the saturation ladder shortens them so overloaded
	// attempts release their issuer slot quickly instead of burning the full
	// retransmit schedule.
	Timeout     time.Duration
	MaxAttempts int
}

// NewOpenIssuer returns an open-loop issuer backed by a fresh gateway client.
func (s GatewaySystem) NewOpenIssuer() OpenLoopIssuer {
	c := s.D.NewGatewayClient()
	if s.Timeout > 0 {
		c.Timeout = s.Timeout
	}
	if s.MaxAttempts > 0 {
		c.MaxAttempts = s.MaxAttempts
	}
	return func(ops []types.Op) (time.Duration, bool, error) {
		_, lat, err := c.Transfer(ops)
		switch err {
		case core.ErrOverloaded, core.ErrExpired:
			return lat, true, nil
		}
		return lat, false, err
	}
}

// Stop tears the deployment down.
func (s GatewaySystem) Stop() { s.D.Stop() }

// AHLSystem adapts an AHL deployment to the harness.
type AHLSystem struct{ D *ahl.Deployment }

// NewIssuer returns a closed-loop AHL client.
func (s AHLSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s AHLSystem) Stop() { s.D.Stop() }

// ReplicaSystem adapts an unsharded baseline (APR-C/APR-B/FPaxos/FaB).
type ReplicaSystem struct{ D *replica.Deployment }

// NewIssuer returns a closed-loop baseline client.
func (s ReplicaSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s ReplicaSystem) Stop() { s.D.Stop() }
