package bench

import (
	"time"

	"sharper/internal/ahl"
	"sharper/internal/core"
	"sharper/internal/replica"
	"sharper/internal/types"
)

// SharPerSystem adapts a SharPer deployment to the harness.
type SharPerSystem struct{ D *core.Deployment }

// NewIssuer returns a closed-loop SharPer client.
func (s SharPerSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s SharPerSystem) Stop() { s.D.Stop() }

// AHLSystem adapts an AHL deployment to the harness.
type AHLSystem struct{ D *ahl.Deployment }

// NewIssuer returns a closed-loop AHL client.
func (s AHLSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s AHLSystem) Stop() { s.D.Stop() }

// ReplicaSystem adapts an unsharded baseline (APR-C/APR-B/FPaxos/FaB).
type ReplicaSystem struct{ D *replica.Deployment }

// NewIssuer returns a closed-loop baseline client.
func (s ReplicaSystem) NewIssuer() Issuer {
	c := s.D.NewClient()
	return func(ops []types.Op) (time.Duration, error) {
		_, lat, err := c.Transfer(ops)
		return lat, err
	}
}

// Stop tears the deployment down.
func (s ReplicaSystem) Stop() { s.D.Stop() }
