// Package bench is the measurement harness behind every figure in §4: it
// drives a system with an increasing number of closed-loop clients, measures
// steady-state throughput and latency per client count, and emits the
// (throughput, latency) series the paper plots.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/types"
	"sharper/internal/workload"
)

// Issuer submits one transaction built from ops and blocks until the reply
// quorum arrives, returning the end-to-end latency.
type Issuer func(ops []types.Op) (time.Duration, error)

// System abstracts a running deployment the harness can drive.
type System interface {
	// NewIssuer returns a fresh closed-loop client bound to the system.
	NewIssuer() Issuer
	// Stop tears the deployment down.
	Stop()
}

// Point is one measurement: a client count and the observed steady state.
type Point struct {
	Clients      int
	ThroughputTx float64 // committed transactions per second
	AvgLatencyMs float64
	P50LatencyMs float64
	P99LatencyMs float64
	Errors       int64
}

// Options tunes a measurement run.
type Options struct {
	// Warmup is discarded before measurement starts.
	Warmup time.Duration
	// Measure is the steady-state window.
	Measure time.Duration
}

// DefaultOptions returns windows long enough for steady state on the
// simulated network while keeping full sweeps fast.
func DefaultOptions() Options {
	return Options{Warmup: 300 * time.Millisecond, Measure: time.Second}
}

// Run drives the system with `clients` closed-loop issuers and measures the
// steady-state window.
func Run(sys System, gen *workload.Generator, clients int, opts Options) Point {
	var (
		started   atomic.Bool
		measuring atomic.Bool
		count     atomic.Int64
		errs      atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
		stop      atomic.Bool
		wg        sync.WaitGroup
	)
	started.Store(true)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := gen.Split(i)
			issue := sys.NewIssuer()
			var local []time.Duration
			for !stop.Load() {
				ops := g.Next()
				lat, err := issue(ops)
				if err != nil {
					errs.Add(1)
					continue
				}
				if measuring.Load() {
					count.Add(1)
					local = append(local, lat)
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(i)
	}

	time.Sleep(opts.Warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opts.Measure)
	measuring.Store(false)
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	p := Point{
		Clients:      clients,
		ThroughputTx: float64(count.Load()) / elapsed.Seconds(),
		Errors:       errs.Load(),
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		p.AvgLatencyMs = float64(sum.Milliseconds()) / float64(len(latencies))
		p.P50LatencyMs = float64(latencies[len(latencies)/2].Microseconds()) / 1000
		p.P99LatencyMs = float64(latencies[len(latencies)*99/100].Microseconds()) / 1000
	}
	return p
}

// Sweep measures the system at each client count in order, producing the
// throughput/latency curve of one plotted series. The same deployment is
// reused across points (matching the paper's methodology of raising client
// load against a fixed network).
func Sweep(sys System, gen *workload.Generator, clientCounts []int, opts Options) []Point {
	points := make([]Point, 0, len(clientCounts))
	for _, c := range clientCounts {
		points = append(points, Run(sys, gen, c, opts))
	}
	return points
}

// Series is a named curve, e.g. "SharPer" in Fig. 6(a).
type Series struct {
	Name   string
	Points []Point
}

// PeakThroughput returns the highest throughput across the series.
func (s Series) PeakThroughput() float64 {
	var best float64
	for _, p := range s.Points {
		if p.ThroughputTx > best {
			best = p.ThroughputTx
		}
	}
	return best
}

// FprintCSV writes the series as CSV rows (experiment, system, clients,
// txps, avg_ms, p50_ms, p99_ms, errors) ready for plotting tools.
func FprintCSV(w io.Writer, experiment string, series []Series) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"experiment", "system", "clients", "txps", "avg_ms", "p50_ms", "p99_ms", "errors"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				experiment, s.Name,
				strconv.Itoa(p.Clients),
				strconv.FormatFloat(p.ThroughputTx, 'f', 2, 64),
				strconv.FormatFloat(p.AvgLatencyMs, 'f', 3, 64),
				strconv.FormatFloat(p.P50LatencyMs, 'f', 3, 64),
				strconv.FormatFloat(p.P99LatencyMs, 'f', 3, 64),
				strconv.FormatInt(p.Errors, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fprint renders the series the way the paper's plots read: throughput on
// the x axis (ktx/s), latency on the y axis (ms).
func Fprint(w io.Writer, title string, series []Series) {
	fmt.Fprintf(w, "# %s\n", title)
	fmt.Fprintf(w, "%-12s %8s %14s %12s %12s %12s %8s\n",
		"system", "clients", "ktx/s", "avg-ms", "p50-ms", "p99-ms", "errors")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(w, "%-12s %8d %14.2f %12.2f %12.2f %12.2f %8d\n",
				s.Name, p.Clients, p.ThroughputTx/1000, p.AvgLatencyMs, p.P50LatencyMs, p.P99LatencyMs, p.Errors)
		}
	}
	fmt.Fprintf(w, "# peaks:")
	for _, s := range series {
		fmt.Fprintf(w, " %s=%.2fktx/s", s.Name, s.PeakThroughput()/1000)
	}
	fmt.Fprintln(w)
}
