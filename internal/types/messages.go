package types

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// MsgType discriminates protocol messages on the wire.
type MsgType uint8

// Message kinds. One namespace is shared by every protocol in the repo so a
// node can dispatch on the type alone.
const (
	MsgInvalid MsgType = iota

	// Client traffic.
	MsgRequest // client → primary: ordered transaction request
	MsgReply   // replica → client: execution result

	// Intra-shard Paxos (§3.1, Fig. 3a).
	MsgPaxosAccept   // primary → cluster
	MsgPaxosAccepted // node → primary
	MsgPaxosCommit   // primary → cluster

	// Intra-shard PBFT (§3.1, Fig. 3b).
	MsgPrePrepare // primary → cluster
	MsgPrepare    // node → cluster
	MsgCommit     // node → cluster

	// Flattened cross-shard consensus (§3.2 Alg. 1, §3.3 Alg. 2).
	MsgXPropose // initiator primary → all nodes of involved clusters
	MsgXAccept  // node → primary (crash) or → all involved nodes (byz)
	MsgXCommit  // primary → involved nodes (crash) or node → all (byz)
	MsgXAbort   // initiator → involved nodes: attempt withdrawn, release locks

	// Chain synchronization (state transfer for lagging replicas).
	MsgSyncRequest  // node → cluster peer: send me blocks from index N
	MsgSyncResponse // peer → node: requested blocks

	// View change (both intra engines; §3.2/§3.3 liveness).
	MsgViewChange
	MsgNewView

	// AHL baseline reference-committee 2PC (§4.1).
	MsgAHLPrepare    // RC → involved cluster primaries: vote request
	MsgAHLVote       // cluster → RC: prepared / abort
	MsgAHLDecision   // RC → involved clusters: commit / abort
	MsgAHLAck        // cluster → RC: decision applied
	MsgAHLRCInternal // intra-RC consensus traffic wrapper

	// Active/passive replication baseline.
	MsgAPRStateUpdate // active replica → passive replicas

	// Fast Paxos / FaB baselines (two-phase protocols).
	MsgFastPropose
	MsgFastAccept
	MsgFastCommit

	// Debug traffic: fetch a replica's SHARPER_TRACE protocol-event ring
	// for post-mortem divergence hunts (sharperd -drive dumps every
	// process's ring when the wire audit fails). Empty unless the replica
	// runs with SHARPER_TRACE set.
	MsgTraceRequest
	MsgTraceResponse

	// Scheduler observability: fetch a replica's cross-shard scheduling
	// counters (leads in flight, conflict-table size, defers avoided,
	// park/withdraw counts). A sharperd -drive audit prints the
	// deployment-wide aggregate after every run.
	MsgStatsRequest
	MsgStatsResponse

	// Slashing: a FraudProof gossiped between replicas on detection, and the
	// driver-side evidence fetch mirroring the trace/stats request pattern.
	// Appended after the stats pair to keep existing wire values stable.
	MsgFraudProof
	MsgEvidenceRequest
	MsgEvidenceResponse

	// Metrics: fetch a replica's full obs registry snapshot (counters,
	// gauges, per-stage latency histograms) so a sharperd -drive audit can
	// print a fleet-wide roll-up. Appended after the evidence pair to keep
	// existing wire values stable.
	MsgMetricsRequest
	MsgMetricsResponse

	// State audit: fetch a replica's deterministic store fingerprint (hash
	// over sorted balances at a stated applied height) so the wire audit can
	// assert every replica of a cluster — whatever interleaving its parallel
	// apply took — holds byte-identical state. Appended after the metrics
	// pair to keep existing wire values stable.
	MsgStateRequest
	MsgStateResponse

	// Client ingress: a transaction batch submitted to a gateway replica for
	// mempool admission (client → gateway, or gateway → primary propagation
	// batch), and the gateway's per-transaction outcome reply. Appended after
	// the state pair to keep existing wire values stable.
	MsgSubmit
	MsgSubmitReply
)

var msgNames = map[MsgType]string{
	MsgRequest: "request", MsgReply: "reply",
	MsgPaxosAccept: "paxos-accept", MsgPaxosAccepted: "paxos-accepted", MsgPaxosCommit: "paxos-commit",
	MsgPrePrepare: "pre-prepare", MsgPrepare: "prepare", MsgCommit: "commit",
	MsgXPropose: "x-propose", MsgXAccept: "x-accept", MsgXCommit: "x-commit", MsgXAbort: "x-abort",
	MsgSyncRequest: "sync-req", MsgSyncResponse: "sync-resp",
	MsgViewChange: "view-change", MsgNewView: "new-view",
	MsgAHLPrepare: "ahl-prepare", MsgAHLVote: "ahl-vote", MsgAHLDecision: "ahl-decision",
	MsgAHLAck: "ahl-ack", MsgAHLRCInternal: "ahl-rc",
	MsgAPRStateUpdate: "apr-update",
	MsgFastPropose:    "fast-propose", MsgFastAccept: "fast-accept", MsgFastCommit: "fast-commit",
	MsgTraceRequest: "trace-req", MsgTraceResponse: "trace-resp",
	MsgStatsRequest: "stats-req", MsgStatsResponse: "stats-resp",
	MsgFraudProof: "fraud-proof", MsgEvidenceRequest: "evidence-req", MsgEvidenceResponse: "evidence-resp",
	MsgMetricsRequest: "metrics-req", MsgMetricsResponse: "metrics-resp",
	MsgStateRequest: "state-req", MsgStateResponse: "state-resp",
	MsgSubmit: "submit", MsgSubmitReply: "submit-reply",
}

func (m MsgType) String() string {
	if s, ok := msgNames[m]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// Envelope is the unit the transport delivers: a typed payload plus sender
// identity and, under the Byzantine model, a signature over the payload.
// Channels are pairwise authenticated (§2.1), so From is trustworthy even
// when Sig is empty (crash model).
type Envelope struct {
	Type    MsgType
	From    NodeID
	Payload []byte
	Sig     []byte

	// auth caches the protocol-level signature verdict over (From, Payload,
	// Sig), set by the parallel verification pool ahead of the consensus
	// loop: 0 unverified, 1 valid, 2 invalid. Atomic because the simulated
	// fabric multicasts one envelope pointer to many nodes, whose pools may
	// verify it concurrently (they share the deployment keyring, so every
	// writer stores the same verdict). Never encoded on the wire.
	auth atomic.Uint32
}

// MarkAuth records the signature verdict for the envelope's payload.
func (e *Envelope) MarkAuth(ok bool) {
	v := uint32(2)
	if ok {
		v = 1
	}
	e.auth.Store(v)
}

// Auth returns the cached signature verdict. known is false when no
// verification pool has processed the envelope — the consumer must verify
// inline then (e.g. envelopes stepped directly into an engine by tests).
func (e *Envelope) Auth() (ok, known bool) {
	switch e.auth.Load() {
	case 1:
		return true, true
	case 2:
		return false, true
	default:
		return false, false
	}
}

// Encode appends the canonical wire encoding of the envelope: type, sender,
// then length-prefixed payload and signature. This is the unit the TCP
// backend frames onto the wire; the simulated fabric passes envelopes by
// pointer and never serializes them.
func (e *Envelope) Encode(dst []byte) []byte {
	dst = append(dst, byte(e.Type))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Payload)))
	dst = append(dst, e.Payload...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(e.Sig)))
	dst = append(dst, e.Sig...)
	return dst
}

// DecodeEnvelope parses an envelope from b, returning the envelope and the
// number of bytes consumed. The payload and signature alias b; callers that
// reuse the buffer must copy first (the TCP backend reads each frame into a
// fresh buffer, so aliasing is safe there).
func DecodeEnvelope(b []byte) (*Envelope, int, error) {
	const hdr = 1 + 4 + 4
	if len(b) < hdr {
		return nil, 0, fmt.Errorf("types: short envelope header: %d bytes", len(b))
	}
	e := &Envelope{
		Type: MsgType(b[0]),
		From: NodeID(binary.LittleEndian.Uint32(b[1:])),
	}
	plen := binary.LittleEndian.Uint32(b[5:])
	off := hdr
	if uint64(plen) > uint64(len(b)-off) {
		return nil, 0, fmt.Errorf("types: envelope payload length %d exceeds %d remaining bytes", plen, len(b)-off)
	}
	if plen > 0 {
		e.Payload = b[off : off+int(plen)]
	}
	off += int(plen)
	if len(b) < off+2 {
		return nil, 0, fmt.Errorf("types: short envelope signature length")
	}
	slen := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if slen > len(b)-off {
		return nil, 0, fmt.Errorf("types: envelope signature length %d exceeds %d remaining bytes", slen, len(b)-off)
	}
	if slen > 0 {
		e.Sig = b[off : off+slen]
	}
	off += slen
	return e, off, nil
}

// Request is the client's signed transaction request ⟨REQUEST, tx, τ_c, c⟩.
type Request struct {
	Tx *Transaction
}

// Encode appends the canonical encoding.
func (r *Request) Encode(dst []byte) []byte { return r.Tx.Encode(dst) }

// DecodeRequest parses a Request.
func DecodeRequest(b []byte) (*Request, error) {
	tx, _, err := DecodeTransaction(b)
	if err != nil {
		return nil, err
	}
	return &Request{Tx: tx}, nil
}

// Reply is a replica's response to the client.
type Reply struct {
	TxID      TxID
	Replica   NodeID
	Committed bool // false ⇒ the transaction was rejected by validation
	Result    int64
}

// Encode appends the canonical encoding.
func (r *Reply) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.TxID.Client))
	dst = binary.LittleEndian.AppendUint64(dst, r.TxID.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Replica))
	if r.Committed {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Result))
	return dst
}

// DecodeReply parses a Reply.
func DecodeReply(b []byte) (*Reply, error) {
	if len(b) < 4+8+4+1+8 {
		return nil, fmt.Errorf("types: short reply")
	}
	r := &Reply{}
	r.TxID.Client = NodeID(binary.LittleEndian.Uint32(b))
	r.TxID.Seq = binary.LittleEndian.Uint64(b[4:])
	r.Replica = NodeID(binary.LittleEndian.Uint32(b[12:]))
	r.Committed = b[16] == 1
	r.Result = int64(binary.LittleEndian.Uint64(b[17:]))
	return r, nil
}

// Submit is the client-ingress payload: a batch of transactions offered to a
// gateway replica for mempool admission. Via distinguishes the two hops of
// the ingest path: zero means a direct client submit (the receiver owes the
// client a SubmitReply per transaction), nonzero names the gateway replica
// that already admitted the batch and is propagating it to its primary for
// ordering (no reply owed — the origin gateway answers the client from its
// own commit observation).
type Submit struct {
	Via NodeID
	Txs []*Transaction
}

// Encode appends the canonical encoding.
func (s *Submit) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Via))
	return EncodeTxBatch(dst, s.Txs)
}

// DecodeSubmit parses a Submit.
func DecodeSubmit(b []byte) (*Submit, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("types: short submit")
	}
	s := &Submit{Via: NodeID(binary.LittleEndian.Uint32(b))}
	txs, _, err := decodeTxBatch(b[4:])
	if err != nil {
		return nil, err
	}
	s.Txs = txs
	return s, nil
}

// SubmitCode is the gateway's admission/commit verdict for one submitted
// transaction.
type SubmitCode uint8

// Submit outcomes. Committed/Rejected arrive after ordering and execution;
// Overloaded and Expired are immediate admission-control verdicts (the client
// should back off, or re-issue with a fresh timestamp, respectively).
const (
	SubmitCommitted  SubmitCode = iota // ordered, executed, and applied
	SubmitRejected                     // ordered but failed validation
	SubmitOverloaded                   // shed: pending pool at capacity
	SubmitExpired                      // timestamp outside the mempool TTL
)

func (c SubmitCode) String() string {
	switch c {
	case SubmitCommitted:
		return "committed"
	case SubmitRejected:
		return "rejected"
	case SubmitOverloaded:
		return "overloaded"
	case SubmitExpired:
		return "expired"
	}
	return fmt.Sprintf("SubmitCode(%d)", uint8(c))
}

// SubmitReply is a gateway's per-transaction response to a Submit.
type SubmitReply struct {
	TxID    TxID
	Replica NodeID
	Code    SubmitCode
}

// Encode appends the canonical encoding (fixed 17 bytes).
func (r *SubmitReply) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.TxID.Client))
	dst = binary.LittleEndian.AppendUint64(dst, r.TxID.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Replica))
	dst = append(dst, byte(r.Code))
	return dst
}

// DecodeSubmitReply parses a SubmitReply.
func DecodeSubmitReply(b []byte) (*SubmitReply, error) {
	if len(b) < 4+8+4+1 {
		return nil, fmt.Errorf("types: short submit reply")
	}
	r := &SubmitReply{}
	r.TxID.Client = NodeID(binary.LittleEndian.Uint32(b))
	r.TxID.Seq = binary.LittleEndian.Uint64(b[4:])
	r.Replica = NodeID(binary.LittleEndian.Uint32(b[12:]))
	if b[16] > byte(SubmitExpired) {
		return nil, fmt.Errorf("types: bad submit reply code %d", b[16])
	}
	r.Code = SubmitCode(b[16])
	return r, nil
}

// ConsensusMsg is the single payload shape shared by every ordering protocol
// in the repo (Paxos, PBFT, flattened cross-shard, baselines). Fields unused
// by a given protocol/phase are left zero; the codec is tolerant of that.
//
// Field mapping to the paper:
//   - View: current view (primary epoch) of the sending cluster.
//   - Seq: per-cluster sequence number (the paper chains by hash; we carry
//     the hash in PrevHashes and a sequence for quorum bookkeeping). The
//     flattened cross-shard protocol reuses this field as the per-transaction
//     validity bitmap of the carried batch (bit i = batch transaction i
//     passed local validation), which caps cross-shard batches at 64.
//   - Digest: D(m), the batch digest (types.BatchDigest) the vote refers to.
//   - Cluster: the cluster the *sender* speaks for.
//   - PrevHashes: h_i, h_j, h_k … — one prior-block hash per involved
//     cluster. Slot order matches Involved order in the carried batch;
//     for phase-1 messages only the sender's slot is filled.
//   - Txs: full transaction batch; carried only on proposal-phase messages.
type ConsensusMsg struct {
	View       uint64
	Seq        uint64
	Digest     Hash
	Cluster    ClusterID
	PrevHashes []Hash
	Txs        []*Transaction
}

// Encode appends the canonical encoding of m.
func (m *ConsensusMsg) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, m.View)
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, m.Digest[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(m.Cluster))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.PrevHashes)))
	for _, h := range m.PrevHashes {
		dst = append(dst, h[:]...)
	}
	if len(m.Txs) > 0 {
		dst = append(dst, 1)
		dst = EncodeTxBatch(dst, m.Txs)
	} else {
		dst = append(dst, 0)
	}
	return dst
}

// PeekConsensusSeq reads the Seq field of an encoded ConsensusMsg without
// decoding the rest — the scheduler's slot-conflict check needs only the
// sequence, and a full decode (including the tx batch) on the dispatch hot
// path would be paid twice. Layout lockstep with Encode: View(8) | Seq(8).
func PeekConsensusSeq(b []byte) (uint64, bool) {
	if len(b) < 16 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[8:]), true
}

// DecodeConsensusMsg parses a ConsensusMsg.
func DecodeConsensusMsg(b []byte) (*ConsensusMsg, error) {
	const fixed = 8 + 8 + 32 + 2 + 2
	if len(b) < fixed {
		return nil, fmt.Errorf("types: short consensus message: %d bytes", len(b))
	}
	m := &ConsensusMsg{}
	off := 0
	m.View = binary.LittleEndian.Uint64(b[off:])
	off += 8
	m.Seq = binary.LittleEndian.Uint64(b[off:])
	off += 8
	copy(m.Digest[:], b[off:off+32])
	off += 32
	m.Cluster = ClusterID(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+n*32+1 {
		return nil, fmt.Errorf("types: short consensus message hash section")
	}
	m.PrevHashes = make([]Hash, n)
	for i := 0; i < n; i++ {
		copy(m.PrevHashes[i][:], b[off:off+32])
		off += 32
	}
	hasTx := b[off]
	off++
	switch hasTx {
	case 0:
	case 1:
		txs, _, err := decodeTxBatch(b[off:])
		if err != nil {
			return nil, err
		}
		if len(txs) == 0 {
			return nil, fmt.Errorf("types: consensus message tx flag set on empty batch")
		}
		m.Txs = txs
	default:
		// Found by fuzzing: a lax flag byte made malformed input decode to a
		// message that re-encodes differently, a digest-confusion hazard.
		return nil, fmt.Errorf("types: bad consensus message tx flag %d", hasTx)
	}
	return m, nil
}

// SyncRequest asks a cluster peer for the blocks of its view starting at
// index From (state transfer for replicas that fell behind while blocked on
// a cross-shard transaction).
type SyncRequest struct {
	From uint64
}

// Encode appends the canonical encoding.
func (s *SyncRequest) Encode(dst []byte) []byte {
	return binary.LittleEndian.AppendUint64(dst, s.From)
}

// DecodeSyncRequest parses a SyncRequest.
func DecodeSyncRequest(b []byte) (*SyncRequest, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("types: short sync request")
	}
	return &SyncRequest{From: binary.LittleEndian.Uint64(b)}, nil
}

// SyncResponse returns a contiguous run of blocks starting at index From.
type SyncResponse struct {
	From   uint64
	Blocks []*Block
}

// Encode appends the canonical encoding.
func (s *SyncResponse) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, s.From)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s.Blocks)))
	for _, b := range s.Blocks {
		dst = b.Encode(dst)
	}
	return dst
}

// DecodeSyncResponse parses a SyncResponse.
func DecodeSyncResponse(b []byte) (*SyncResponse, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("types: short sync response")
	}
	s := &SyncResponse{From: binary.LittleEndian.Uint64(b)}
	n := int(binary.LittleEndian.Uint16(b[8:]))
	off := 10
	s.Blocks = make([]*Block, 0, n)
	for i := 0; i < n; i++ {
		bl, used, err := DecodeBlock(b[off:])
		if err != nil {
			return nil, err
		}
		s.Blocks = append(s.Blocks, bl)
		off += used
	}
	return s, nil
}

// TraceDump carries one replica's SHARPER_TRACE protocol-event ring (the
// engines' bounded debug rings) to a requesting driver. Lines is empty when
// the replica runs without SHARPER_TRACE.
type TraceDump struct {
	Node  NodeID
	Lines []string
}

// maxTraceLine bounds a single decoded trace line; the rings hold short
// formatted protocol events, so anything huge is a hostile length prefix.
const maxTraceLine = 1 << 16

// Encode appends the canonical encoding.
func (t *TraceDump) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Node))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(t.Lines)))
	for _, l := range t.Lines {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(l)))
		dst = append(dst, l...)
	}
	return dst
}

// DecodeTraceDump parses a TraceDump.
func DecodeTraceDump(b []byte) (*TraceDump, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("types: short trace dump")
	}
	t := &TraceDump{Node: NodeID(binary.LittleEndian.Uint32(b))}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	off := 8
	for i := 0; i < n; i++ {
		if len(b) < off+4 {
			return nil, fmt.Errorf("types: short trace dump line header")
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l > maxTraceLine || l > len(b)-off {
			return nil, fmt.Errorf("types: trace dump line overruns buffer")
		}
		t.Lines = append(t.Lines, string(b[off:off+l]))
		off += l
	}
	return t, nil
}

// SchedStats is one replica's cross-shard scheduler counters, answered to a
// MsgStatsRequest. The conflict-aware scheduler's behaviour is otherwise
// invisible from outside a process: these are how benchmarks and the
// sharperd -drive audit see leads pipelining and deferral precision working.
type SchedStats struct {
	Node NodeID
	// Flattened-protocol event counts.
	Proposes     uint64 // initiator PROPOSE multicasts (incl. retries)
	Withdraws    uint64 // initiator attempt withdrawals
	Grants       uint64 // participant votes granted (slot-vote acquisitions)
	Decides      uint64 // attempts decided at this node as initiator
	LockExpiries uint64 // slot votes released by the §3.2 timeout
	Parks        uint64 // proposals parked for a busy slot or undrained chain
	// Conflict-table scheduling state.
	LeadsInFlight uint64 // current in-flight initiator attempts
	LeadHighWater uint64 // most leads ever in flight together
	TableSize     uint64 // live attempts tracked right now
	Defers        uint64 // intra messages deferred on a slot conflict
	DefersAvoided uint64 // intra messages processed despite a held slot vote
	SelfVoteWaits uint64 // initiator self-votes deferred for a busy slot
}

// Add accumulates other's counters into s (for deployment-wide aggregates;
// Node is left alone).
func (s *SchedStats) Add(other *SchedStats) {
	s.Proposes += other.Proposes
	s.Withdraws += other.Withdraws
	s.Grants += other.Grants
	s.Decides += other.Decides
	s.LockExpiries += other.LockExpiries
	s.Parks += other.Parks
	s.LeadsInFlight += other.LeadsInFlight
	s.LeadHighWater += other.LeadHighWater
	s.TableSize += other.TableSize
	s.Defers += other.Defers
	s.DefersAvoided += other.DefersAvoided
	s.SelfVoteWaits += other.SelfVoteWaits
}

// schedStatsSize is the fixed wire size of a SchedStats.
const schedStatsSize = 4 + 12*8

// Encode appends the canonical encoding.
func (s *SchedStats) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Node))
	for _, v := range [...]uint64{
		s.Proposes, s.Withdraws, s.Grants, s.Decides, s.LockExpiries, s.Parks,
		s.LeadsInFlight, s.LeadHighWater, s.TableSize, s.Defers, s.DefersAvoided,
		s.SelfVoteWaits,
	} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeSchedStats parses a SchedStats.
func DecodeSchedStats(b []byte) (*SchedStats, error) {
	if len(b) < schedStatsSize {
		return nil, fmt.Errorf("types: short sched stats: %d bytes", len(b))
	}
	s := &SchedStats{Node: NodeID(binary.LittleEndian.Uint32(b))}
	off := 4
	for _, p := range [...]*uint64{
		&s.Proposes, &s.Withdraws, &s.Grants, &s.Decides, &s.LockExpiries, &s.Parks,
		&s.LeadsInFlight, &s.LeadHighWater, &s.TableSize, &s.Defers, &s.DefersAvoided,
		&s.SelfVoteWaits,
	} {
		*p = binary.LittleEndian.Uint64(b[off:])
		off += 8
	}
	return s, nil
}

// StateDigest is one replica's deterministic store fingerprint, answered to
// a MsgStateRequest: the chain height the store reflects, the number of
// transactions applied, and the hash over sorted balances. Replicas of a
// cluster reporting the same Height must report the same Hash — the wire
// audit's proof that conflict-partitioned parallel apply produced the same
// state serial execution would have.
type StateDigest struct {
	Node    NodeID
	Height  uint64
	Applied uint64
	Hash    Hash
}

// stateDigestSize is the fixed wire size of a StateDigest.
const stateDigestSize = 4 + 8 + 8 + 32

// Encode appends the canonical encoding.
func (s *StateDigest) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Node))
	dst = binary.LittleEndian.AppendUint64(dst, s.Height)
	dst = binary.LittleEndian.AppendUint64(dst, s.Applied)
	return append(dst, s.Hash[:]...)
}

// DecodeStateDigest parses a StateDigest.
func DecodeStateDigest(b []byte) (*StateDigest, error) {
	if len(b) < stateDigestSize {
		return nil, fmt.Errorf("types: short state digest: %d bytes", len(b))
	}
	s := &StateDigest{
		Node:    NodeID(binary.LittleEndian.Uint32(b)),
		Height:  binary.LittleEndian.Uint64(b[4:]),
		Applied: binary.LittleEndian.Uint64(b[12:]),
	}
	copy(s.Hash[:], b[20:])
	return s, nil
}

// MetricVal is one metric in a MetricsDump: counters and gauges carry a
// single value, histograms carry [count, sum, bucket0..bucketN-1] so the
// receiver can re-extract quantiles and merge fleet-wide (bucket layouts are
// fixed, see obs.NumBuckets).
type MetricVal struct {
	Name   string
	Kind   uint8 // 0 counter, 1 gauge, 2 histogram
	Values []uint64
}

// MetricsDump carries one replica's full metrics-registry snapshot, answered
// to a MsgMetricsRequest (the registry cousin of TraceDump and SchedStats).
type MetricsDump struct {
	Node    NodeID
	Metrics []MetricVal
}

// Bounds on a decoded MetricsDump; the registry holds dozens of short-named
// metrics, so anything bigger is a hostile length prefix.
const (
	maxMetricName   = 256
	maxMetricValues = 256
	maxMetricsCount = 1 << 14
)

// Encode appends the canonical encoding.
func (d *MetricsDump) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Node))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Metrics)))
	for i := range d.Metrics {
		m := &d.Metrics[i]
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Name)))
		dst = append(dst, m.Name...)
		dst = append(dst, m.Kind)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(m.Values)))
		for _, v := range m.Values {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// DecodeMetricsDump parses a MetricsDump.
func DecodeMetricsDump(b []byte) (*MetricsDump, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("types: short metrics dump")
	}
	d := &MetricsDump{Node: NodeID(binary.LittleEndian.Uint32(b))}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	if n > maxMetricsCount {
		return nil, fmt.Errorf("types: metrics dump count %d exceeds bound", n)
	}
	off := 8
	for i := 0; i < n; i++ {
		if len(b) < off+2 {
			return nil, fmt.Errorf("types: short metrics dump name header")
		}
		nameLen := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if nameLen > maxMetricName || nameLen > len(b)-off {
			return nil, fmt.Errorf("types: metrics dump name overruns buffer")
		}
		m := MetricVal{Name: string(b[off : off+nameLen])}
		off += nameLen
		if len(b) < off+3 {
			return nil, fmt.Errorf("types: short metrics dump value header")
		}
		m.Kind = b[off]
		vals := int(binary.LittleEndian.Uint16(b[off+1:]))
		off += 3
		if vals > maxMetricValues || vals*8 > len(b)-off {
			return nil, fmt.Errorf("types: metrics dump values overrun buffer")
		}
		m.Values = make([]uint64, vals)
		for j := 0; j < vals; j++ {
			m.Values[j] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
		d.Metrics = append(d.Metrics, m)
	}
	return d, nil
}

// VoteProof is one signed vote inside a prepared certificate: the named
// node signed the canonical prepare/commit payload for (view, seq, digest).
type VoteProof struct {
	Node NodeID
	Sig  []byte
}

// PreparedInstance reports one accepted-but-uncommitted consensus instance
// inside a ViewChange, including the transaction body so the new primary can
// re-propose the value even when it never received the original proposal
// (it may have been deferred behind a cross-shard lock, or lost). Carrying
// the body is what makes the Paxos phase-1 value recovery actually work: a
// value that reached a commit quorum at the deposed primary is reported by
// at least one member of any view-change quorum (quorum intersection), and
// the new primary re-binds it before anything else can take its slot.
//
// Under the Byzantine model the claim must be provable: Proof carries 2f+1
// distinct nodes' signatures over the prepare/commit payload (they share
// one canonical encoding), so a single honest reporter suffices and no
// coalition of f liars can fabricate a binding.
type PreparedInstance struct {
	Seq    uint64
	View   uint64 // view the instance was accepted in; highest view wins
	Digest Hash
	// Parent is the chain parent the certified votes bound: vote payloads
	// carry it (see pbft.Engine.votePrepare), so certificate verification
	// must reconstruct it.
	Parent Hash
	Txs    []*Transaction
	Proof  []VoteProof
}

// ViewChange carries a node's vote to depose the current primary, together
// with its last committed sequence and every accepted-but-uncommitted
// instance (with bodies) so the new primary can resume without losing
// possibly-committed values.
type ViewChange struct {
	NewView      uint64
	Cluster      ClusterID
	LastSeq      uint64
	LastHash     Hash
	PreparedSeq  uint64 // highest sequence this node voted for but saw no commit
	PreparedHash Hash   // digest of that in-flight proposal (zero if none)
	Prepared     []PreparedInstance
}

// Encode appends the canonical encoding.
func (v *ViewChange) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, v.NewView)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(v.Cluster))
	dst = binary.LittleEndian.AppendUint64(dst, v.LastSeq)
	dst = append(dst, v.LastHash[:]...)
	dst = binary.LittleEndian.AppendUint64(dst, v.PreparedSeq)
	dst = append(dst, v.PreparedHash[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Prepared)))
	for _, p := range v.Prepared {
		dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
		dst = binary.LittleEndian.AppendUint64(dst, p.View)
		dst = append(dst, p.Digest[:]...)
		dst = append(dst, p.Parent[:]...)
		dst = EncodeTxBatch(dst, p.Txs)
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p.Proof)))
		for _, pr := range p.Proof {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(pr.Node))
			dst = binary.LittleEndian.AppendUint16(dst, uint16(len(pr.Sig)))
			dst = append(dst, pr.Sig...)
		}
	}
	return dst
}

// DecodeViewChange parses a ViewChange.
func DecodeViewChange(b []byte) (*ViewChange, error) {
	if len(b) < 8+2+8+32+8+32+2 {
		return nil, fmt.Errorf("types: short view-change")
	}
	v := &ViewChange{}
	off := 0
	v.NewView = binary.LittleEndian.Uint64(b[off:])
	off += 8
	v.Cluster = ClusterID(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	v.LastSeq = binary.LittleEndian.Uint64(b[off:])
	off += 8
	copy(v.LastHash[:], b[off:off+32])
	off += 32
	v.PreparedSeq = binary.LittleEndian.Uint64(b[off:])
	off += 8
	copy(v.PreparedHash[:], b[off:off+32])
	off += 32
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < n; i++ {
		if len(b) < off+8+8+32+32 {
			return nil, fmt.Errorf("types: short view-change prepared entry")
		}
		var p PreparedInstance
		p.Seq = binary.LittleEndian.Uint64(b[off:])
		off += 8
		p.View = binary.LittleEndian.Uint64(b[off:])
		off += 8
		copy(p.Digest[:], b[off:off+32])
		off += 32
		copy(p.Parent[:], b[off:off+32])
		off += 32
		txs, used, err := decodeTxBatch(b[off:])
		if err != nil {
			return nil, err
		}
		off += used
		p.Txs = txs
		if len(b) < off+2 {
			return nil, fmt.Errorf("types: short view-change proof count")
		}
		np := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		for j := 0; j < np; j++ {
			if len(b) < off+4+2 {
				return nil, fmt.Errorf("types: short view-change proof header")
			}
			var pr VoteProof
			pr.Node = NodeID(binary.LittleEndian.Uint32(b[off:]))
			off += 4
			slen := int(binary.LittleEndian.Uint16(b[off:]))
			off += 2
			if slen > len(b)-off {
				return nil, fmt.Errorf("types: view-change proof signature overruns buffer")
			}
			if slen > 0 {
				pr.Sig = b[off : off+slen]
			}
			off += slen
			p.Proof = append(p.Proof, pr)
		}
		v.Prepared = append(v.Prepared, p)
	}
	return v, nil
}
