// Package types defines the wire-level vocabulary shared by every SharPer
// subsystem: node/cluster identifiers, transactions, blocks, protocol
// messages, and a deterministic binary codec for all of them.
//
// The paper (§2.3) uses single-transaction blocks; Block generalizes that to
// a batch of transactions plus the hash links that place it in the DAG
// ledger, with the single-transaction block as the batch-of-1 special case.
package types

import (
	"fmt"
	"sort"
)

// NodeID uniquely identifies a node (replica or client endpoint) in the
// deployment. Replica IDs are assigned densely from 0; client IDs start at
// ClientIDBase so the two ranges never collide.
type NodeID uint32

// ClientIDBase is the first NodeID used for clients. Replicas always have
// IDs below this value.
const ClientIDBase NodeID = 1 << 20

// IsClient reports whether the ID belongs to a client endpoint.
func (n NodeID) IsClient() bool { return n >= ClientIDBase }

func (n NodeID) String() string {
	if n.IsClient() {
		return fmt.Sprintf("c%d", uint32(n-ClientIDBase))
	}
	return fmt.Sprintf("n%d", uint32(n))
}

// ClusterID identifies a cluster (and therefore the data shard the cluster
// maintains — the paper's p_i / d_i pairing).
type ClusterID uint16

func (c ClusterID) String() string { return fmt.Sprintf("p%d", uint16(c)) }

// ClusterSet is an ordered, duplicate-free set of clusters involved in a
// transaction. The order is ascending by ClusterID so that two nodes
// computing the set for the same transaction agree byte-for-byte.
type ClusterSet []ClusterID

// NewClusterSet returns the normalized (sorted, deduplicated) set.
func NewClusterSet(ids ...ClusterID) ClusterSet {
	cs := make(ClusterSet, 0, len(ids))
	seen := make(map[ClusterID]bool, len(ids))
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			cs = append(cs, id)
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Contains reports whether id is a member of the set.
func (cs ClusterSet) Contains(id ClusterID) bool {
	for _, c := range cs {
		if c == id {
			return true
		}
	}
	return false
}

// Overlaps reports whether the two sets share at least one cluster.
// Cross-shard transactions with non-overlapping sets may commit in parallel
// (§1, §3.2).
func (cs ClusterSet) Overlaps(other ClusterSet) bool {
	i, j := 0, 0
	for i < len(cs) && j < len(other) {
		switch {
		case cs[i] == other[j]:
			return true
		case cs[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Min returns the smallest cluster in the set. The paper's super-primary
// rule (§3.2) routes a cross-shard transaction over set P to the primary of
// min(P). Min panics on an empty set: an empty involved-set is a programming
// error upstream.
func (cs ClusterSet) Min() ClusterID {
	if len(cs) == 0 {
		panic("types: Min of empty ClusterSet")
	}
	return cs[0]
}

// Equal reports whether the two normalized sets are identical.
func (cs ClusterSet) Equal(other ClusterSet) bool {
	if len(cs) != len(other) {
		return false
	}
	for i := range cs {
		if cs[i] != other[i] {
			return false
		}
	}
	return true
}

func (cs ClusterSet) String() string {
	s := "{"
	for i, c := range cs {
		if i > 0 {
			s += ","
		}
		s += c.String()
	}
	return s + "}"
}

// FailureModel selects the fault assumption a deployment runs under (§2.1).
type FailureModel uint8

const (
	// CrashOnly nodes may stop and restart but never lie. Clusters need
	// 2f+1 nodes and intra-shard consensus is Paxos.
	CrashOnly FailureModel = iota
	// Byzantine nodes may behave arbitrarily. Clusters need 3f+1 nodes and
	// intra-shard consensus is PBFT.
	Byzantine
)

func (m FailureModel) String() string {
	switch m {
	case CrashOnly:
		return "crash"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("FailureModel(%d)", uint8(m))
	}
}

// ClusterSize returns the minimum cluster size tolerating f faults under the
// model: 2f+1 for crash, 3f+1 for Byzantine.
func (m FailureModel) ClusterSize(f int) int {
	if m == Byzantine {
		return 3*f + 1
	}
	return 2*f + 1
}

// QuorumSize returns the per-cluster agreement quorum used by the flattened
// cross-shard protocol: f+1 for crash (Algorithm 1), 2f+1 for Byzantine
// (Algorithm 2).
func (m FailureModel) QuorumSize(f int) int {
	if m == Byzantine {
		return 2*f + 1
	}
	return f + 1
}
