package types

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Hash is a SHA-256 digest. It is used both as the cryptographic hash linking
// blocks in the DAG ledger (§2.3) and as the message digest D(m) of §2.1.
type Hash [32]byte

// ZeroHash is the all-zero hash; it marks "no predecessor" slots and is the
// parent of the genesis block.
var ZeroHash Hash

func (h Hash) String() string { return fmt.Sprintf("%x", h[:6]) }

// IsZero reports whether h is the zero hash.
func (h Hash) IsZero() bool { return h == ZeroHash }

// HashBytes returns the SHA-256 digest of b.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// encScratch pools encoding buffers for digest computation, so the hot path
// (every quorum check, chain walk, and wire frame re-derives some digest)
// runs without per-call allocations.
var encScratch = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// getScratch/putScratch wrap the pool; buffers that grew beyond 1 MiB are
// dropped so one huge sync response cannot pin memory forever.
func getScratch() *[]byte { return encScratch.Get().(*[]byte) }
func putScratch(bp *[]byte) {
	if cap(*bp) <= 1<<20 {
		encScratch.Put(bp)
	}
}

// digestCache memoizes a SHA-256 over a canonical encoding. The cache is
// validated on every read by re-encoding into a pooled buffer and comparing
// against enc — a mutated value can never reuse a stale digest, and a cache
// hit replaces the SHA-256 with a (much cheaper) byte comparison.
type digestCache struct {
	enc []byte // the canonical encoding the digest was computed over
	sum Hash
}

// lookup returns the memoized digest when enc matches the cached encoding,
// computing and caching it otherwise. p is an atomic pointer so concurrent
// readers (the node loop, ledger audits, the verify pool) race safely; all
// writers store the same value for the same bytes.
func (c *digestCache) lookup(p *atomic.Pointer[digestCache], enc []byte) Hash {
	if c != nil && bytes.Equal(c.enc, enc) {
		return c.sum
	}
	sum := sha256.Sum256(enc)
	p.Store(&digestCache{enc: append([]byte(nil), enc...), sum: sum})
	return sum
}

// AccountID names an account in the account-based data model (§2.4).
// The shard an account lives in is derived from the ID by the shard map.
type AccountID uint64

func (a AccountID) String() string { return fmt.Sprintf("acct:%d", uint64(a)) }

// Op is a single read-modify-write step inside a transaction: transfer
// Amount units out of From (negative effects) into To. A transaction "might
// read and write several records" (§4), so it carries a slice of Ops.
type Op struct {
	From   AccountID
	To     AccountID
	Amount int64
}

// TxKind distinguishes ordinary transfers from the 2PC control entries the
// AHL baseline orders through per-committee consensus.
type TxKind uint8

// Transaction kinds. SharPer itself uses only TxTransfer; the AHL baseline
// threads its two-phase commit through consensus as control entries.
const (
	TxTransfer   TxKind = iota // ordinary account transfer
	TxAHLBegin                 // reference committee: start 2PC for the wrapped tx
	TxAHLPrepare               // cluster: vote request (lock + validate)
	TxAHLCommit                // cluster: 2PC decision = commit
	TxAHLAbort                 // cluster: 2PC decision = abort
	TxAHLDecide                // reference committee: record the decision
)

// Transaction is the unit of execution; blocks batch one or more of them as
// the unit of ordering (the paper's §2.3 single-transaction block is the
// batch-of-1 case). Involved is the normalized set of clusters whose shards
// the transaction touches; len(Involved)==1 means intra-shard.
type Transaction struct {
	// ID is unique per client request: high bits client, low bits sequence.
	ID TxID
	// Kind discriminates transfers from AHL 2PC control entries.
	Kind TxKind
	// Client that issued the request.
	Client NodeID
	// Timestamp τ_c from the client, used for liveness timers and dedup.
	Timestamp int64
	// Ops are the transfers to apply atomically.
	Ops []Op
	// Involved is the set of clusters the Ops touch (precomputed by the
	// client or the receiving primary through the shard map).
	Involved ClusterSet

	// dcache memoizes Digest. It is validated against the current encoding
	// on every read (see digestCache), so mutating any field above simply
	// misses the cache — it can never serve a stale digest.
	dcache atomic.Pointer[digestCache]
}

// TxID identifies a transaction: the client's NodeID and a per-client
// sequence number.
type TxID struct {
	Client NodeID
	Seq    uint64
}

func (t TxID) String() string { return fmt.Sprintf("%s#%d", t.Client, t.Seq) }

// IsCrossShard reports whether the transaction spans more than one cluster.
func (t *Transaction) IsCrossShard() bool { return len(t.Involved) > 1 }

// Digest returns D(m): the SHA-256 digest of the transaction's canonical
// encoding. Two correct nodes always compute the same digest for the same
// transaction. The digest is memoized: repeated calls re-encode into a
// pooled buffer and compare against the cached encoding, skipping the
// SHA-256 (and all allocations) when the transaction is unchanged.
func (t *Transaction) Digest() Hash {
	bp := getScratch()
	enc := t.Encode((*bp)[:0])
	sum := t.dcache.Load().lookup(&t.dcache, enc)
	*bp = enc
	putScratch(bp)
	return sum
}

// Encode appends the canonical binary encoding of t to dst and returns the
// extended slice. The layout is fixed-width little-endian fields followed by
// length-prefixed repeated sections, so the encoding is deterministic.
func (t *Transaction) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.ID.Client))
	dst = binary.LittleEndian.AppendUint64(dst, t.ID.Seq)
	dst = append(dst, byte(t.Kind))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Client))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.Timestamp))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Ops)))
	for _, op := range t.Ops {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(op.From))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(op.To))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(op.Amount))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Involved)))
	for _, c := range t.Involved {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(c))
	}
	return dst
}

// DecodeTransaction parses a transaction from b, returning the transaction
// and the number of bytes consumed.
func DecodeTransaction(b []byte) (*Transaction, int, error) {
	const fixed = 4 + 8 + 1 + 4 + 8 + 2
	if len(b) < fixed {
		return nil, 0, fmt.Errorf("types: short transaction: %d bytes", len(b))
	}
	t := &Transaction{}
	off := 0
	t.ID.Client = NodeID(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	t.ID.Seq = binary.LittleEndian.Uint64(b[off:])
	off += 8
	t.Kind = TxKind(b[off])
	off++
	t.Client = NodeID(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	t.Timestamp = int64(binary.LittleEndian.Uint64(b[off:]))
	off += 8
	nOps := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+nOps*24+2 {
		return nil, 0, fmt.Errorf("types: short transaction ops section")
	}
	if nOps > 0 {
		t.Ops = make([]Op, nOps)
	}
	for i := 0; i < nOps; i++ {
		t.Ops[i].From = AccountID(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		t.Ops[i].To = AccountID(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		t.Ops[i].Amount = int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	nInv := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+nInv*2 {
		return nil, 0, fmt.Errorf("types: short transaction involved section")
	}
	t.Involved = make(ClusterSet, nInv)
	for i := 0; i < nInv; i++ {
		t.Involved[i] = ClusterID(binary.LittleEndian.Uint16(b[off:]))
		off += 2
	}
	return t, off, nil
}

// Block is one vertex of the DAG ledger: a batch of transactions plus one
// predecessor hash per involved cluster. The paper (§2.3) uses
// single-transaction blocks; this implementation generalizes the block to a
// batch so one consensus instance amortizes its quorum message cost over many
// transactions (the paper's block is the batch-of-1 special case). Every
// transaction in a batch shares the same involved-cluster set, so the
// parent-slot layout of §2.3 is unchanged: for an intra-shard block Parents
// has exactly one entry; for a cross-shard block it has one entry per
// involved cluster, in the same order as the shared Involved set.
type Block struct {
	Txs     []*Transaction
	Parents []Hash

	// hcache/bdcache memoize Hash and BatchDigest, validated against the
	// current encoding on every read (see digestCache) so a mutated block
	// misses rather than serving stale digests.
	hcache  atomic.Pointer[digestCache]
	bdcache atomic.Pointer[digestCache]
}

// Involved returns the involved-cluster set shared by every transaction in
// the block (empty for an empty block, e.g. genesis placeholders).
func (bl *Block) Involved() ClusterSet {
	if len(bl.Txs) == 0 {
		return nil
	}
	return bl.Txs[0].Involved
}

// IsCrossShard reports whether the block's batch spans more than one cluster.
func (bl *Block) IsCrossShard() bool { return len(bl.Involved()) > 1 }

// BatchDigest returns D(m) for the block's batch — the value consensus votes
// refer to. Tampering with any transaction in the batch changes the digest.
// Memoized per block (see Transaction.Digest for the invalidation rule).
func (bl *Block) BatchDigest() Hash {
	bp := getScratch()
	enc := EncodeTxBatch((*bp)[:0], bl.Txs)
	sum := bl.bdcache.Load().lookup(&bl.bdcache, enc)
	*bp = enc
	putScratch(bp)
	return sum
}

// BatchDigest returns the SHA-256 digest of the canonical encoding of a
// transaction batch. Two correct nodes always compute the same digest for
// the same ordered batch; any bit of any transaction changes it. Unlike
// Block.BatchDigest there is no holder to memoize on, but the encoding runs
// in a pooled buffer so the call stays allocation-free.
func BatchDigest(txs []*Transaction) Hash {
	bp := getScratch()
	enc := EncodeTxBatch((*bp)[:0], txs)
	sum := sha256.Sum256(enc)
	*bp = enc
	putScratch(bp)
	return sum
}

// Encode appends the canonical encoding of the block.
func (bl *Block) Encode(dst []byte) []byte {
	dst = EncodeTxBatch(dst, bl.Txs)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(bl.Parents)))
	for _, p := range bl.Parents {
		dst = append(dst, p[:]...)
	}
	return dst
}

// DecodeBlock parses a block from b, returning the block and bytes consumed.
func DecodeBlock(b []byte) (*Block, int, error) {
	txs, off, err := decodeTxBatch(b)
	if err != nil {
		return nil, 0, err
	}
	if len(b) < off+2 {
		return nil, 0, fmt.Errorf("types: short block header")
	}
	n := int(binary.LittleEndian.Uint16(b[off:]))
	off += 2
	if len(b) < off+n*32 {
		return nil, 0, fmt.Errorf("types: short block parents section")
	}
	bl := &Block{Txs: txs, Parents: make([]Hash, n)}
	for i := 0; i < n; i++ {
		copy(bl.Parents[i][:], b[off:off+32])
		off += 32
	}
	return bl, off, nil
}

// Hash returns the block's cryptographic hash, covering the transaction and
// all parent links. This is the value successor blocks chain to. Memoized
// per block (see Transaction.Digest for the invalidation rule), which makes
// the repeated chain-walk hashing in the consensus engines and the ledger
// nearly free for an unchanged block.
func (bl *Block) Hash() Hash {
	bp := getScratch()
	enc := bl.Encode((*bp)[:0])
	sum := bl.hcache.Load().lookup(&bl.hcache, enc)
	*bp = enc
	putScratch(bp)
	return sum
}

// EncodeTxBatch appends a length-prefixed batch of transactions, used by
// the active/passive baselines to stream execution results efficiently.
func EncodeTxBatch(dst []byte, txs []*Transaction) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(txs)))
	for _, t := range txs {
		dst = t.Encode(dst)
	}
	return dst
}

// DecodeTxBatch parses a batch written by EncodeTxBatch.
func DecodeTxBatch(b []byte) ([]*Transaction, error) {
	txs, _, err := decodeTxBatch(b)
	return txs, err
}

// decodeTxBatch parses a batch and reports the bytes consumed.
func decodeTxBatch(b []byte) ([]*Transaction, int, error) {
	if len(b) < 2 {
		return nil, 0, fmt.Errorf("types: short tx batch")
	}
	n := int(binary.LittleEndian.Uint16(b))
	off := 2
	out := make([]*Transaction, 0, n)
	for i := 0; i < n; i++ {
		t, used, err := DecodeTransaction(b[off:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, t)
		off += used
	}
	return out, off, nil
}
