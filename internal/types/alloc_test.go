//go:build !race

// Steady-state allocation regressions for the wire codec hot path. The
// counts are contractual (see ISSUE/DESIGN "hot path"): encoding a
// consensus message into a reused buffer and re-deriving a memoized digest
// must not allocate at all. Excluded under the race detector, which adds
// its own allocations.

package types

import "testing"

func allocBatch(n int) []*Transaction {
	txs := make([]*Transaction, n)
	for i := range txs {
		txs[i] = &Transaction{
			ID:        TxID{Client: ClientIDBase + 1, Seq: uint64(i)},
			Client:    ClientIDBase + 1,
			Timestamp: int64(i),
			Ops:       []Op{{From: 1, To: 2, Amount: 3}},
			Involved:  ClusterSet{0},
		}
	}
	return txs
}

func assertAllocs(t *testing.T, what string, max, got float64) {
	t.Helper()
	if got > max {
		t.Fatalf("%s allocates %.1f per op in steady state (max %.0f)", what, got, max)
	}
}

func TestEnvelopeEncodeAllocs(t *testing.T) {
	m := &ConsensusMsg{View: 3, Seq: 9, Cluster: 1, PrevHashes: []Hash{{1}}, Txs: allocBatch(16)}
	env := &Envelope{Type: MsgPrePrepare, From: 2, Payload: m.Encode(nil), Sig: make([]byte, 32)}
	buf := make([]byte, 0, 4096)
	n := testing.AllocsPerRun(200, func() { buf = env.Encode(buf[:0]) })
	assertAllocs(t, "Envelope.Encode into a reused buffer", 0, n)
}

func TestEnvelopeDecodeAllocs(t *testing.T) {
	m := &ConsensusMsg{View: 3, Seq: 9, Cluster: 1, PrevHashes: []Hash{{1}}, Txs: allocBatch(16)}
	enc := (&Envelope{Type: MsgPrePrepare, From: 2, Payload: m.Encode(nil), Sig: make([]byte, 32)}).Encode(nil)
	n := testing.AllocsPerRun(200, func() {
		if _, _, err := DecodeEnvelope(enc); err != nil {
			t.Fatal(err)
		}
	})
	// Exactly the envelope object itself: payload and signature alias the
	// input buffer.
	assertAllocs(t, "DecodeEnvelope", 1, n)
}

func TestConsensusMsgEncodeAllocs(t *testing.T) {
	m := &ConsensusMsg{View: 3, Seq: 9, Cluster: 1, PrevHashes: []Hash{{1}}, Txs: allocBatch(16)}
	buf := make([]byte, 0, 4096)
	n := testing.AllocsPerRun(200, func() { buf = m.Encode(buf[:0]) })
	assertAllocs(t, "ConsensusMsg.Encode into a reused buffer", 0, n)
}

func TestTxDigestSteadyStateAllocs(t *testing.T) {
	tx := allocBatch(1)[0]
	tx.Digest() // warm the cache
	n := testing.AllocsPerRun(200, func() { tx.Digest() })
	assertAllocs(t, "Transaction.Digest (memoized)", 0, n)
}

func TestBlockDigestSteadyStateAllocs(t *testing.T) {
	bl := &Block{Txs: allocBatch(16), Parents: []Hash{{1}}}
	bl.Hash()
	bl.BatchDigest()
	n := testing.AllocsPerRun(200, func() { bl.Hash() })
	assertAllocs(t, "Block.Hash (memoized)", 0, n)
	n = testing.AllocsPerRun(200, func() { bl.BatchDigest() })
	assertAllocs(t, "Block.BatchDigest (memoized)", 0, n)
}

func TestBatchDigestAllocs(t *testing.T) {
	txs := allocBatch(16)
	BatchDigest(txs) // warm the scratch pool
	n := testing.AllocsPerRun(200, func() { BatchDigest(txs) })
	assertAllocs(t, "BatchDigest (pooled scratch)", 0, n)
}
