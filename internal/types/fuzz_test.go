package types

import (
	"bytes"
	"testing"
)

// The wire decoders receive bytes straight off TCP sockets once the tcpnet
// backend is in play, so each must reject arbitrary malformed input with an
// error — never panic, never over-read. The fuzz targets also pin the
// round-trip property on inputs that do decode: re-encoding the decoded
// value must reproduce the consumed bytes.

func fuzzTx(seq uint64) *Transaction {
	return &Transaction{
		ID:        TxID{Client: ClientIDBase + 3, Seq: seq},
		Client:    ClientIDBase + 3,
		Timestamp: 42,
		Ops:       []Op{{From: 1, To: 2, Amount: 7}, {From: 9, To: 1, Amount: -3}},
		Involved:  NewClusterSet(0, 2),
	}
}

func FuzzDecodeEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Envelope{Type: MsgRequest, From: 7, Payload: []byte("hi"), Sig: []byte{1, 2, 3}}).Encode(nil))
	f.Add((&Envelope{Type: MsgCommit, From: ClientIDBase}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		env, used, err := DecodeEnvelope(b)
		if err != nil {
			return
		}
		if used > len(b) {
			t.Fatalf("consumed %d of %d bytes", used, len(b))
		}
		if !bytes.Equal(env.Encode(nil), b[:used]) {
			t.Fatalf("re-encode mismatch for %x", b[:used])
		}
	})
}

func FuzzDecodeViewChange(f *testing.F) {
	f.Add([]byte{})
	f.Add((&ViewChange{NewView: 3, Cluster: 1, LastSeq: 9, PreparedSeq: 10}).Encode(nil))
	f.Add((&ViewChange{NewView: 4, Cluster: 0, LastSeq: 11, Prepared: []PreparedInstance{
		{Seq: 12, View: 3, Digest: HashBytes([]byte("d")), Txs: []*Transaction{fuzzTx(9)}},
	}}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		v, err := DecodeViewChange(b)
		if err != nil {
			return
		}
		enc := v.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeTxBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTxBatch(nil, []*Transaction{fuzzTx(1), fuzzTx(2)}))
	f.Fuzz(func(t *testing.T, b []byte) {
		txs, err := DecodeTxBatch(b)
		if err != nil {
			return
		}
		enc := EncodeTxBatch(nil, txs)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeConsensusMsg(f *testing.F) {
	f.Add([]byte{})
	m := &ConsensusMsg{View: 1, Seq: 2, Cluster: 3,
		PrevHashes: []Hash{HashBytes([]byte("a")), HashBytes([]byte("b"))},
		Txs:        []*Transaction{fuzzTx(5)}}
	f.Add(m.Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeConsensusMsg(b)
		if err != nil {
			return
		}
		enc := m.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeSyncResponse(f *testing.F) {
	f.Add([]byte{})
	blk := &Block{Txs: []*Transaction{fuzzTx(8)}, Parents: []Hash{HashBytes([]byte("p")), {}}}
	f.Add((&SyncResponse{From: 4, Blocks: []*Block{blk}}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSyncResponse(b)
		if err != nil {
			return
		}
		enc := s.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeSyncRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add((&SyncRequest{From: 77}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSyncRequest(b)
		if err != nil {
			return
		}
		enc := s.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeReply(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Reply{TxID: TxID{Client: ClientIDBase + 1, Seq: 2}, Replica: 3, Committed: true, Result: -9}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeReply(b)
		if err != nil {
			return
		}
		enc := r.Encode(nil)
		// Committed is one byte on the wire; any nonzero-but-not-1 value
		// decodes to false, so re-encoding may legitimately differ there.
		if len(b) < len(enc) {
			t.Fatalf("decoder consumed more than available")
		}
	})
}

func FuzzDecodeSubmit(f *testing.F) {
	f.Add([]byte{})
	f.Add((&Submit{Via: 0, Txs: []*Transaction{fuzzTx(1)}}).Encode(nil))
	f.Add((&Submit{Via: 5, Txs: []*Transaction{fuzzTx(2), fuzzTx(3)}}).Encode(nil))
	f.Add((&SubmitReply{TxID: TxID{Client: ClientIDBase + 1, Seq: 9}, Replica: 2, Code: SubmitOverloaded}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		if s, err := DecodeSubmit(b); err == nil {
			enc := s.Encode(nil)
			if !bytes.Equal(enc, b[:len(enc)]) {
				t.Fatalf("submit re-encode mismatch")
			}
		}
		if r, err := DecodeSubmitReply(b); err == nil {
			enc := r.Encode(nil)
			if !bytes.Equal(enc, b[:len(enc)]) {
				t.Fatalf("submit-reply re-encode mismatch")
			}
		}
	})
}

func FuzzDecodeSchedStats(f *testing.F) {
	f.Add([]byte{})
	f.Add((&SchedStats{Node: 3, Proposes: 7, Grants: 2, LeadsInFlight: 4, DefersAvoided: 11}).Encode(nil))
	f.Add((&SchedStats{Node: ClientIDBase, LockExpiries: 1, SelfVoteWaits: 9}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSchedStats(b)
		if err != nil {
			return
		}
		enc := s.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch for %x", b[:len(enc)])
		}
	})
}

func fuzzFraudProof() *FraudProof {
	mk := func(d string) *Envelope {
		m := &ConsensusMsg{View: 2, Seq: 5, Digest: HashBytes([]byte(d)), Cluster: 1}
		return &Envelope{Type: MsgPrePrepare, From: 9, Payload: m.Encode(nil), Sig: []byte{1, 2, 3, 4}}
	}
	return &FraudProof{
		Offender: 9, Cluster: 1, Kind: FraudDoubleProposal, View: 2, Seq: 5,
		First: mk("a"), Second: mk("b"),
	}
}

func FuzzDecodeFraudProof(f *testing.F) {
	f.Add([]byte{})
	f.Add(fuzzFraudProof().Encode(nil))
	vc := &FraudProof{Offender: 3, Cluster: 0, Kind: FraudConflictingViewChange, View: 1, Seq: 7,
		First:  &Envelope{Type: MsgViewChange, From: 3, Payload: (&ViewChange{NewView: 1, LastSeq: 7, LastHash: HashBytes([]byte("x"))}).Encode(nil)},
		Second: &Envelope{Type: MsgViewChange, From: 3, Payload: (&ViewChange{NewView: 1, LastSeq: 7, LastHash: HashBytes([]byte("y"))}).Encode(nil)},
	}
	f.Add(vc.Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodeFraudProof(b)
		if err != nil {
			return
		}
		enc := p.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeEvidenceDump(f *testing.F) {
	f.Add([]byte{})
	f.Add((&EvidenceDump{Node: 4}).Encode(nil))
	f.Add((&EvidenceDump{Node: 4, Proofs: []*FraudProof{fuzzFraudProof()}}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeEvidenceDump(b)
		if err != nil {
			return
		}
		enc := d.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

func FuzzDecodeMetricsDump(f *testing.F) {
	f.Add([]byte{})
	f.Add((&MetricsDump{Node: 2}).Encode(nil))
	f.Add((&MetricsDump{Node: 5, Metrics: []MetricVal{
		{Name: "committed_txs", Kind: 0, Values: []uint64{42}},
		{Name: "stage_intra_prepared_us", Kind: 2, Values: []uint64{3, 900, 0, 1, 2}},
	}}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeMetricsDump(b)
		if err != nil {
			return
		}
		enc := d.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch for %x", b[:len(enc)])
		}
	})
}

func FuzzDecodeTraceDump(f *testing.F) {
	f.Add([]byte{})
	f.Add((&TraceDump{Node: 3, Lines: []string{"propose v=0 seq=1", "commit-msg v=0 seq=1"}}).Encode(nil))
	f.Add((&TraceDump{Node: ClientIDBase}).Encode(nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := DecodeTraceDump(b)
		if err != nil {
			return
		}
		enc := d.Encode(nil)
		if !bytes.Equal(enc, b[:len(enc)]) {
			t.Fatalf("re-encode mismatch for %x", b[:len(enc)])
		}
	})
}
