package types

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// FraudKind classifies what the two envelopes bundled in a FraudProof prove
// about the offender.
type FraudKind uint8

const (
	// FraudDoubleProposal: a primary asserted two different digests for one
	// (view, seq, parent) slot binding — either two conflicting
	// pre-prepares, or a pre-prepare whose digest contradicts the primary's
	// own vote. The parent must match across both envelopes: a slot
	// re-bound under a new parent (cross-shard chain sync) is honest.
	FraudDoubleProposal FraudKind = iota + 1
	// FraudDoubleVote: a node cast prepare/commit votes for two different
	// digests at one (view, seq, parent) slot binding.
	FraudDoubleVote
	// FraudConflictingViewChange: a node claimed two different chain heads
	// for the same height across view-change messages. The per-cluster chain
	// is append-only, so one height has exactly one hash for an honest node,
	// stable across crash-recovery.
	FraudConflictingViewChange
)

var fraudKindNames = map[FraudKind]string{
	FraudDoubleProposal:        "double-proposal",
	FraudDoubleVote:            "double-vote",
	FraudConflictingViewChange: "conflicting-view-change",
}

func (k FraudKind) String() string {
	if s, ok := fraudKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FraudKind(%d)", uint8(k))
}

// SigVerifier is the slice of the crypto authenticator a fraud proof needs:
// public-key verification only. Declared here (rather than importing
// internal/crypto) so the wire package stays dependency-free; crypto.Keyring
// and crypto.MACKeyring satisfy it as-is.
type SigVerifier interface {
	Verify(from NodeID, payload, sig []byte) bool
}

// FraudProof bundles two conflicting signed envelopes from one node into a
// self-contained, offline-verifiable accusation: any party holding the
// cluster's public keys can check both signatures and the conflict without
// trusting the accuser or replaying the run. The envelopes are embedded
// whole (payload + signature) so the proof survives gossip and storage.
//
// Third-party verifiability requires asymmetric signatures (the Ed25519
// keyring). Under the default HMAC authenticator a proof still verifies for
// parties holding the pairwise MAC keys — the replicas themselves and the
// test driver — but is not evidence to an outsider, since any key holder
// could have forged either envelope.
type FraudProof struct {
	Offender NodeID
	Cluster  ClusterID
	Kind     FraudKind
	View     uint64 // view of the conflicting pair (new-view for VC claims)
	Seq      uint64 // slot of the conflict (chain height for VC claims)
	First    *Envelope
	Second   *Envelope
}

// Key is a stable dedup identity: one proof per (offender, kind, locus).
func (p *FraudProof) Key() string {
	return fmt.Sprintf("%d/%d/%d/%d/%d", p.Offender, p.Cluster, p.Kind, p.View, p.Seq)
}

func (p *FraudProof) String() string {
	return fmt.Sprintf("fraud[%s node=%d cluster=%d view=%d seq=%d]",
		p.Kind, p.Offender, p.Cluster, p.View, p.Seq)
}

// maxFraudEnvelope bounds one embedded envelope; consensus envelopes are
// small (votes) or batch-sized (proposals), so anything beyond this is a
// hostile length prefix.
const maxFraudEnvelope = 1 << 20

// Encode appends the canonical encoding of p.
func (p *FraudProof) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.Offender))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(p.Cluster))
	dst = append(dst, byte(p.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, p.View)
	dst = binary.LittleEndian.AppendUint64(dst, p.Seq)
	for _, env := range [...]*Envelope{p.First, p.Second} {
		enc := env.Encode(nil)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// DecodeFraudProof parses a FraudProof. The embedded envelopes alias b.
func DecodeFraudProof(b []byte) (*FraudProof, error) {
	const hdr = 4 + 2 + 1 + 8 + 8
	if len(b) < hdr {
		return nil, fmt.Errorf("types: short fraud proof: %d bytes", len(b))
	}
	p := &FraudProof{
		Offender: NodeID(binary.LittleEndian.Uint32(b)),
		Cluster:  ClusterID(binary.LittleEndian.Uint16(b[4:])),
		Kind:     FraudKind(b[6]),
		View:     binary.LittleEndian.Uint64(b[7:]),
		Seq:      binary.LittleEndian.Uint64(b[15:]),
	}
	off := hdr
	for _, slot := range [...]**Envelope{&p.First, &p.Second} {
		if len(b) < off+4 {
			return nil, fmt.Errorf("types: short fraud proof envelope header")
		}
		elen := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if elen > maxFraudEnvelope || elen > len(b)-off {
			return nil, fmt.Errorf("types: fraud proof envelope overruns buffer")
		}
		env, used, err := DecodeEnvelope(b[off : off+elen])
		if err != nil {
			return nil, err
		}
		if used != elen {
			// Trailing garbage inside the length-prefixed region would make
			// the decoded proof re-encode differently — reject.
			return nil, fmt.Errorf("types: fraud proof envelope length %d, consumed %d", elen, used)
		}
		*slot = env
		off += elen
	}
	return p, nil
}

func isVote(t MsgType) bool { return t == MsgPrepare || t == MsgCommit }

// Verify checks that the proof is self-consistent and damning: both
// envelopes carry the offender's valid signature and together assert a
// conflict no honest node can produce. It needs only v (public keys) — no
// chain state, no run history.
func (p *FraudProof) Verify(v SigVerifier) error {
	if p.First == nil || p.Second == nil {
		return fmt.Errorf("fraud proof missing envelope")
	}
	for i, env := range [...]*Envelope{p.First, p.Second} {
		if env.From != p.Offender {
			return fmt.Errorf("envelope %d is from node %d, not offender %d", i+1, env.From, p.Offender)
		}
		if v != nil && !v.Verify(env.From, env.Payload, env.Sig) {
			return fmt.Errorf("envelope %d signature invalid", i+1)
		}
	}
	if bytes.Equal(p.First.Payload, p.Second.Payload) && p.First.Type == p.Second.Type {
		// A byte-identical rebroadcast is benign, never fraud.
		return fmt.Errorf("envelopes are identical")
	}
	switch p.Kind {
	case FraudDoubleProposal, FraudDoubleVote:
		if p.Kind == FraudDoubleProposal {
			if p.First.Type != MsgPrePrepare && p.Second.Type != MsgPrePrepare {
				return fmt.Errorf("double-proposal proof without a pre-prepare")
			}
			for i, env := range [...]*Envelope{p.First, p.Second} {
				if env.Type != MsgPrePrepare && !isVote(env.Type) {
					return fmt.Errorf("envelope %d type %s is not a proposal or vote", i+1, env.Type)
				}
			}
		} else {
			for i, env := range [...]*Envelope{p.First, p.Second} {
				if !isVote(env.Type) {
					return fmt.Errorf("envelope %d type %s is not a vote", i+1, env.Type)
				}
			}
		}
		var digests [2]Hash
		var parents [2]Hash
		for i, env := range [...]*Envelope{p.First, p.Second} {
			m, err := DecodeConsensusMsg(env.Payload)
			if err != nil {
				return fmt.Errorf("envelope %d: %w", i+1, err)
			}
			if m.View != p.View || m.Seq != p.Seq || m.Cluster != p.Cluster {
				return fmt.Errorf("envelope %d binds (view=%d seq=%d cluster=%d), proof claims (view=%d seq=%d cluster=%d)",
					i+1, m.View, m.Seq, m.Cluster, p.View, p.Seq, p.Cluster)
			}
			if len(m.PrevHashes) == 0 {
				// Without a named parent the claim is not self-contained: an
				// honest node re-votes a slot re-bound by a cross-shard chain
				// sync, and only the parent separates that from equivocation.
				return fmt.Errorf("envelope %d names no parent", i+1)
			}
			digests[i] = m.Digest
			parents[i] = m.PrevHashes[0]
		}
		if parents[0] != parents[1] {
			return fmt.Errorf("envelopes bind different parents (%x vs %x): honest slot re-bind, not fraud",
				parents[0][:4], parents[1][:4])
		}
		if digests[0] == digests[1] {
			return fmt.Errorf("envelopes agree on digest %x", digests[0][:4])
		}
	case FraudConflictingViewChange:
		var heads [2]Hash
		for i, env := range [...]*Envelope{p.First, p.Second} {
			if env.Type != MsgViewChange {
				return fmt.Errorf("envelope %d type %s is not a view-change", i+1, env.Type)
			}
			vc, err := DecodeViewChange(env.Payload)
			if err != nil {
				return fmt.Errorf("envelope %d: %w", i+1, err)
			}
			if vc.Cluster != p.Cluster || vc.LastSeq != p.Seq {
				return fmt.Errorf("envelope %d claims (cluster=%d height=%d), proof claims (cluster=%d height=%d)",
					i+1, vc.Cluster, vc.LastSeq, p.Cluster, p.Seq)
			}
			heads[i] = vc.LastHash
		}
		if heads[0] == heads[1] {
			return fmt.Errorf("envelopes agree on chain head %x", heads[0][:4])
		}
	default:
		return fmt.Errorf("unknown fraud kind %d", p.Kind)
	}
	return nil
}

// EvidenceDump carries one replica's accumulated fraud proofs to a
// requesting driver, answering MsgEvidenceRequest the way TraceDump answers
// MsgTraceRequest.
type EvidenceDump struct {
	Node   NodeID
	Proofs []*FraudProof
}

// maxFraudProof bounds one encoded proof inside a dump (two envelopes plus
// the fixed header).
const maxFraudProof = 2*maxFraudEnvelope + 64

// Encode appends the canonical encoding.
func (d *EvidenceDump) Encode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(d.Node))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(d.Proofs)))
	for _, p := range d.Proofs {
		enc := p.Encode(nil)
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(enc)))
		dst = append(dst, enc...)
	}
	return dst
}

// DecodeEvidenceDump parses an EvidenceDump.
func DecodeEvidenceDump(b []byte) (*EvidenceDump, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("types: short evidence dump")
	}
	d := &EvidenceDump{Node: NodeID(binary.LittleEndian.Uint32(b))}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	off := 8
	for i := 0; i < n; i++ {
		if len(b) < off+4 {
			return nil, fmt.Errorf("types: short evidence dump proof header")
		}
		l := int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
		if l > maxFraudProof || l > len(b)-off {
			return nil, fmt.Errorf("types: evidence dump proof overruns buffer")
		}
		p, err := DecodeFraudProof(b[off : off+l])
		if err != nil {
			return nil, err
		}
		if len(p.Encode(nil)) != l {
			return nil, fmt.Errorf("types: evidence dump proof has trailing bytes")
		}
		d.Proofs = append(d.Proofs, p)
		off += l
	}
	return d, nil
}
