package types

import "testing"

func memoTx(amount int64) *Transaction {
	return &Transaction{
		ID:        TxID{Client: ClientIDBase + 1, Seq: 7},
		Client:    ClientIDBase + 1,
		Timestamp: 99,
		Ops:       []Op{{From: 1, To: 2, Amount: amount}},
		Involved:  ClusterSet{0},
	}
}

// TestDigestMemoizationInvalidation locks in the safety contract of the
// digest caches: a decoded-then-mutated transaction (or block) must never
// reuse a stale cached digest, whether the mutation happens before or after
// the first Digest call.
func TestDigestMemoizationInvalidation(t *testing.T) {
	enc := memoTx(3).Encode(nil)
	dec, _, err := DecodeTransaction(enc)
	if err != nil {
		t.Fatal(err)
	}

	d1 := dec.Digest()
	if d1 != memoTx(3).Digest() {
		t.Fatal("decoded transaction digest differs from original")
	}
	// Mutate AFTER the digest was computed and cached.
	dec.Ops[0].Amount = 4
	d2 := dec.Digest()
	if d2 == d1 {
		t.Fatal("mutated transaction reused the stale cached digest")
	}
	if d2 != memoTx(4).Digest() {
		t.Fatal("post-mutation digest does not match a fresh equivalent transaction")
	}
	// Mutate back: the cache must track the content, not the history.
	dec.Ops[0].Amount = 3
	if dec.Digest() != d1 {
		t.Fatal("digest did not return to the original after undoing the mutation")
	}

	// Mutation BEFORE the first call must also be honest.
	dec2, _, err := DecodeTransaction(enc)
	if err != nil {
		t.Fatal(err)
	}
	dec2.Timestamp = 12345
	want := memoTx(3)
	want.Timestamp = 12345
	if dec2.Digest() != want.Digest() {
		t.Fatal("pre-first-call mutation produced a wrong digest")
	}
}

// TestBlockMemoizationInvalidation is the block-level counterpart: Hash and
// BatchDigest are memoized per block and must miss after any transaction in
// the batch (or a parent link) changes.
func TestBlockMemoizationInvalidation(t *testing.T) {
	bl := &Block{Txs: []*Transaction{memoTx(3), memoTx(5)}, Parents: []Hash{{1, 2, 3}}}
	h1, bd1 := bl.Hash(), bl.BatchDigest()
	if h1 != bl.Hash() || bd1 != bl.BatchDigest() {
		t.Fatal("repeated calls disagree")
	}

	bl.Txs[1].Ops[0].Amount = 6
	if bl.Hash() == h1 {
		t.Fatal("block hash reused stale cache after tx mutation")
	}
	if bl.BatchDigest() == bd1 {
		t.Fatal("batch digest reused stale cache after tx mutation")
	}
	if bl.BatchDigest() != BatchDigest(bl.Txs) {
		t.Fatal("memoized batch digest disagrees with the free-function digest")
	}

	bl.Txs[1].Ops[0].Amount = 5
	if bl.Hash() != h1 || bl.BatchDigest() != bd1 {
		t.Fatal("digests did not return after undoing the mutation")
	}

	bl.Parents[0] = Hash{9}
	if bl.Hash() == h1 {
		t.Fatal("block hash reused stale cache after parent mutation")
	}
	if bl.BatchDigest() != bd1 {
		t.Fatal("batch digest must not cover parent links")
	}
}

// TestDecodedBlockDigestsMatch guards the decode path: a round-tripped
// block's memoized digests agree with the original's.
func TestDecodedBlockDigestsMatch(t *testing.T) {
	bl := &Block{Txs: []*Transaction{memoTx(3)}, Parents: []Hash{{7}}}
	dec, _, err := DecodeBlock(bl.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != bl.Hash() || dec.BatchDigest() != bl.BatchDigest() {
		t.Fatal("decoded block digests diverge from original")
	}
}
