package types

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTx() *Transaction {
	return &Transaction{
		ID:        TxID{Client: ClientIDBase + 7, Seq: 42},
		Kind:      TxTransfer,
		Client:    ClientIDBase + 7,
		Timestamp: 123456789,
		Ops: []Op{
			{From: 1, To: 5, Amount: 100},
			{From: 2, To: 6, Amount: -0x7fffffff},
		},
		Involved: NewClusterSet(1, 2),
	}
}

func TestTransactionRoundTrip(t *testing.T) {
	tx := sampleTx()
	enc := tx.Encode(nil)
	dec, n, err := DecodeTransaction(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(tx, dec) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tx, dec)
	}
}

func TestTransactionDigestStable(t *testing.T) {
	a, b := sampleTx(), sampleTx()
	if a.Digest() != b.Digest() {
		t.Fatal("equal transactions produced different digests")
	}
	b.Ops[0].Amount++
	if a.Digest() == b.Digest() {
		t.Fatal("different transactions produced the same digest")
	}
}

func TestTransactionDecodeShortInput(t *testing.T) {
	enc := sampleTx().Encode(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeTransaction(enc[:i]); err == nil {
			t.Fatalf("decode of %d-byte prefix succeeded", i)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	bl := &Block{
		Txs:     []*Transaction{sampleTx()},
		Parents: []Hash{HashBytes([]byte("a")), HashBytes([]byte("b"))},
	}
	enc := bl.Encode(nil)
	dec, n, err := DecodeBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(bl, dec) {
		t.Fatal("block round trip mismatch")
	}
	if bl.Hash() != dec.Hash() {
		t.Fatal("block hash changed across codec")
	}
}

// TestMultiTxBlockRoundTrip covers the batched-block codec: a block holding
// several transactions survives Encode∘Decode bit-exactly, and its hash and
// batch digest are stable across the codec.
func TestMultiTxBlockRoundTrip(t *testing.T) {
	txs := make([]*Transaction, 5)
	for i := range txs {
		txs[i] = sampleTx()
		txs[i].ID.Seq = uint64(42 + i)
		txs[i].Ops[0].Amount = int64(i * 7)
	}
	bl := &Block{
		Txs:     txs,
		Parents: []Hash{HashBytes([]byte("a")), HashBytes([]byte("b"))},
	}
	enc := bl.Encode(nil)
	dec, n, err := DecodeBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(bl, dec) {
		t.Fatal("multi-tx block round trip mismatch")
	}
	if bl.Hash() != dec.Hash() {
		t.Fatal("multi-tx block hash changed across codec")
	}
	if bl.BatchDigest() != dec.BatchDigest() {
		t.Fatal("batch digest changed across codec")
	}
	if !bl.Involved().Equal(txs[0].Involved) {
		t.Fatalf("Involved = %v, want %v", bl.Involved(), txs[0].Involved)
	}
	if !bl.IsCrossShard() {
		t.Fatal("two-cluster batch not classified cross-shard")
	}
}

// TestBatchDigestTamper asserts the batch digest covers every member: any
// mutated transaction, a reordered batch, or a dropped transaction yields a
// different digest.
func TestBatchDigestTamper(t *testing.T) {
	mk := func() []*Transaction {
		txs := make([]*Transaction, 3)
		for i := range txs {
			txs[i] = sampleTx()
			txs[i].ID.Seq = uint64(i)
		}
		return txs
	}
	base := BatchDigest(mk())
	tampered := mk()
	tampered[1].Ops[0].Amount++
	if BatchDigest(tampered) == base {
		t.Fatal("tampering with a middle transaction kept the digest")
	}
	reordered := mk()
	reordered[0], reordered[2] = reordered[2], reordered[0]
	if BatchDigest(reordered) == base {
		t.Fatal("reordering the batch kept the digest")
	}
	if BatchDigest(mk()[:2]) == base {
		t.Fatal("truncating the batch kept the digest")
	}
	if BatchDigest(mk()) != base {
		t.Fatal("equal batches produced different digests")
	}
}

// TestMultiTxConsensusMsgRoundTrip covers proposal messages carrying a
// full batch plus a validity bitmap in Seq.
func TestMultiTxConsensusMsgRoundTrip(t *testing.T) {
	txs := []*Transaction{sampleTx(), sampleTx(), sampleTx()}
	for i, tx := range txs {
		tx.ID.Seq = uint64(100 + i)
	}
	m := &ConsensusMsg{
		View:       7,
		Seq:        0b101, // validity bitmap: txs 0 and 2 valid
		Digest:     BatchDigest(txs),
		Cluster:    1,
		PrevHashes: []Hash{HashBytes([]byte("p"))},
		Txs:        txs,
	}
	dec, err := DecodeConsensusMsg(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, dec) {
		t.Fatal("batched consensus message round trip mismatch")
	}
	if dec.Digest != BatchDigest(dec.Txs) {
		t.Fatal("decoded batch digest mismatch")
	}
}

func TestConsensusMsgRoundTrip(t *testing.T) {
	m := &ConsensusMsg{
		View:       3,
		Seq:        99,
		Digest:     HashBytes([]byte("d")),
		Cluster:    2,
		PrevHashes: []Hash{HashBytes([]byte("p1")), HashBytes([]byte("p2"))},
		Txs:        []*Transaction{sampleTx()},
	}
	dec, err := DecodeConsensusMsg(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, dec) {
		t.Fatal("consensus message round trip mismatch")
	}
	// Without a transaction batch.
	m.Txs = nil
	dec, err = DecodeConsensusMsg(m.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Txs != nil {
		t.Fatal("expected nil transaction batch")
	}
}

func TestReplyRoundTrip(t *testing.T) {
	r := &Reply{TxID: TxID{Client: 9, Seq: 1}, Replica: 3, Committed: true, Result: -5}
	dec, err := DecodeReply(r.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, dec) {
		t.Fatal("reply round trip mismatch")
	}
}

func TestViewChangeRoundTrip(t *testing.T) {
	v := &ViewChange{
		NewView: 4, Cluster: 1, LastSeq: 17,
		LastHash: HashBytes([]byte("l")), PreparedSeq: 18, PreparedHash: HashBytes([]byte("p")),
	}
	dec, err := DecodeViewChange(v.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v, dec) {
		t.Fatal("view change round trip mismatch")
	}
}

func TestSyncRoundTrip(t *testing.T) {
	req := &SyncRequest{From: 12}
	gotReq, err := DecodeSyncRequest(req.Encode(nil))
	if err != nil || gotReq.From != 12 {
		t.Fatalf("sync request round trip: %v %+v", err, gotReq)
	}
	resp := &SyncResponse{From: 12, Blocks: []*Block{
		{Txs: []*Transaction{sampleTx()}, Parents: []Hash{HashBytes([]byte("x"))}},
		{Txs: []*Transaction{sampleTx()}, Parents: []Hash{HashBytes([]byte("y")), HashBytes([]byte("z"))}},
	}}
	gotResp, err := DecodeSyncResponse(resp.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatal("sync response round trip mismatch")
	}
}

func TestPeekConsensusSeqMatchesDecode(t *testing.T) {
	m := &ConsensusMsg{View: 3, Seq: 41, Cluster: 2,
		PrevHashes: []Hash{HashBytes([]byte("p"))},
		Txs:        []*Transaction{sampleTx()}}
	b := m.Encode(nil)
	seq, ok := PeekConsensusSeq(b)
	if !ok || seq != 41 {
		t.Fatalf("peek = (%d, %v), want (41, true)", seq, ok)
	}
	if _, ok := PeekConsensusSeq(b[:15]); ok {
		t.Fatal("peek accepted a short buffer")
	}
}

func TestSchedStatsRoundTrip(t *testing.T) {
	s := &SchedStats{
		Node: 7, Proposes: 1, Withdraws: 2, Grants: 3, Decides: 4,
		LockExpiries: 5, Parks: 6, LeadsInFlight: 7, LeadHighWater: 8,
		TableSize: 9, Defers: 10, DefersAvoided: 11, SelfVoteWaits: 12,
	}
	got, err := DecodeSchedStats(s.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("sched stats round trip mismatch: %+v vs %+v", s, got)
	}
	var sum SchedStats
	sum.Add(s)
	sum.Add(s)
	if sum.Parks != 12 || sum.DefersAvoided != 22 {
		t.Fatalf("aggregate mismatch: %+v", sum)
	}
}

func TestMetricsDumpRoundTrip(t *testing.T) {
	d := &MetricsDump{Node: 9, Metrics: []MetricVal{
		{Name: "committed_txs", Kind: 0, Values: []uint64{42}},
		{Name: "queue_depth", Kind: 1, Values: []uint64{3}},
		{Name: "stage_cross_prepared_us", Kind: 2, Values: []uint64{2, 800, 0, 1, 1}},
	}}
	got, err := DecodeMetricsDump(d.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, got) {
		t.Fatalf("metrics dump round trip mismatch: %+v vs %+v", d, got)
	}
	if _, err := DecodeMetricsDump([]byte{1, 2, 3}); err == nil {
		t.Fatal("short metrics dump decoded without error")
	}
	// hostile count prefix must be rejected, not allocated
	hostile := make([]byte, 8)
	hostile[4], hostile[5], hostile[6], hostile[7] = 0xff, 0xff, 0xff, 0xff
	if _, err := DecodeMetricsDump(hostile); err == nil {
		t.Fatal("hostile metrics count decoded without error")
	}
}

func TestTxBatchRoundTrip(t *testing.T) {
	txs := []*Transaction{sampleTx(), sampleTx()}
	txs[1].ID.Seq = 43
	dec, err := DecodeTxBatch(EncodeTxBatch(nil, txs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(txs, dec) {
		t.Fatal("tx batch round trip mismatch")
	}
}

func TestClusterSet(t *testing.T) {
	cs := NewClusterSet(3, 1, 2, 1, 3)
	if !cs.Equal(ClusterSet{1, 2, 3}) {
		t.Fatalf("normalization failed: %v", cs)
	}
	if cs.Min() != 1 {
		t.Fatalf("Min = %v", cs.Min())
	}
	if !cs.Contains(2) || cs.Contains(4) {
		t.Fatal("Contains failed")
	}
	if !cs.Overlaps(NewClusterSet(3, 9)) {
		t.Fatal("Overlaps missed common cluster")
	}
	if cs.Overlaps(NewClusterSet(4, 5)) {
		t.Fatal("Overlaps reported disjoint sets as overlapping")
	}
}

func TestFailureModelSizes(t *testing.T) {
	cases := []struct {
		model           FailureModel
		f, size, quorum int
	}{
		{CrashOnly, 1, 3, 2},
		{CrashOnly, 2, 5, 3},
		{Byzantine, 1, 4, 3},
		{Byzantine, 3, 10, 7},
	}
	for _, c := range cases {
		if got := c.model.ClusterSize(c.f); got != c.size {
			t.Errorf("%s f=%d: size %d, want %d", c.model, c.f, got, c.size)
		}
		if got := c.model.QuorumSize(c.f); got != c.quorum {
			t.Errorf("%s f=%d: quorum %d, want %d", c.model, c.f, got, c.quorum)
		}
	}
}

func TestNodeIDClasses(t *testing.T) {
	if NodeID(5).IsClient() {
		t.Fatal("replica classified as client")
	}
	if !(ClientIDBase + 1).IsClient() {
		t.Fatal("client classified as replica")
	}
}

// randomTx builds an arbitrary but well-formed transaction from fuzz input.
func randomTx(rng *rand.Rand) *Transaction {
	tx := &Transaction{
		ID:        TxID{Client: NodeID(rng.Uint32()), Seq: rng.Uint64()},
		Kind:      TxKind(rng.Intn(6)),
		Client:    NodeID(rng.Uint32()),
		Timestamp: rng.Int63(),
	}
	for i := 0; i < rng.Intn(5); i++ {
		tx.Ops = append(tx.Ops, Op{
			From: AccountID(rng.Uint64()), To: AccountID(rng.Uint64()), Amount: rng.Int63(),
		})
	}
	var ids []ClusterID
	for i := 0; i <= rng.Intn(4); i++ {
		ids = append(ids, ClusterID(rng.Intn(8)))
	}
	tx.Involved = NewClusterSet(ids...)
	return tx
}

// TestQuickTransactionCodec property: Encode∘Decode is the identity for any
// well-formed transaction.
func TestQuickTransactionCodec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tx := randomTx(rng)
		dec, n, err := DecodeTransaction(tx.Encode(nil))
		return err == nil && n == len(tx.Encode(nil)) && reflect.DeepEqual(tx, dec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDigestInjective property: distinct encodings imply distinct
// digests (collision resistance sanity at the codec level).
func TestQuickDigestInjective(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomTx(rand.New(rand.NewSource(seedA)))
		b := randomTx(rand.New(rand.NewSource(seedB)))
		encA, encB := a.Encode(nil), b.Encode(nil)
		if bytes.Equal(encA, encB) {
			return a.Digest() == b.Digest()
		}
		return a.Digest() != b.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickClusterSetNormalized property: NewClusterSet always yields a
// sorted, duplicate-free set regardless of input.
func TestQuickClusterSetNormalized(t *testing.T) {
	f := func(raw []uint16) bool {
		ids := make([]ClusterID, len(raw))
		for i, r := range raw {
			ids[i] = ClusterID(r % 16)
		}
		cs := NewClusterSet(ids...)
		for i := 1; i < len(cs); i++ {
			if cs[i-1] >= cs[i] {
				return false
			}
		}
		for _, id := range ids {
			if !cs.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
