// Package mempool implements the per-shard transaction pool behind the
// client-ingress gateway: digest-keyed admission with dedup against both
// pending and recently-committed transactions, byte- and count-capped
// pending pools, expiration windows, and FIFO draining toward the sealer.
//
// The pool's capacity accounting covers pending ∪ in-flight transactions:
// a transaction drained toward the primary stays counted against the caps
// until its commit is observed, so a stalled primary (e.g. the commit
// pipeline's backpressure gate holding proposals) backs pressure all the way
// up to the admitting gateways, whose Admit then sheds with Overloaded. The
// byte cap is therefore a hard bound on gateway-held transaction memory, not
// just on the queued tail.
package mempool

import (
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/types"
)

// Code is the admission verdict for one offered transaction.
type Code uint8

// Admission outcomes.
const (
	Admitted   Code = iota // accepted into the pending pool
	Duplicate              // already pending, in flight, or recently committed
	Overloaded             // shed: pool at byte or count capacity
	Expired                // client timestamp outside the TTL window
)

// Config bounds one pool. Zero values take the defaults below.
type Config struct {
	// MaxBytes caps the encoded size of pending + in-flight transactions.
	MaxBytes int64
	// MaxCount caps the number of pending + in-flight transactions.
	MaxCount int
	// TTL is how old a client timestamp may be at admission, and how long a
	// pending transaction may wait before the sweep expires it.
	TTL time.Duration
	// CommittedWindow is how long committed digests are remembered for
	// dedup after commit.
	CommittedWindow time.Duration
}

// Defaults, sized after the knobs production pools expose (pending pool
// bytes, propagation batch size, expiration deadline).
const (
	DefaultMaxBytes        = int64(16 << 20)
	DefaultMaxCount        = 1 << 16
	DefaultTTL             = 30 * time.Second
	DefaultCommittedWindow = 30 * time.Second

	// committedCap bounds the committed-digest dedup set independently of
	// the time window, so a throughput burst cannot grow it without limit.
	committedCap = 1 << 17
)

func (c Config) withDefaults() Config {
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultMaxBytes
	}
	if c.MaxCount <= 0 {
		c.MaxCount = DefaultMaxCount
	}
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.CommittedWindow <= 0 {
		c.CommittedWindow = DefaultCommittedWindow
	}
	return c
}

// entry is one pooled transaction with its admission bookkeeping.
type entry struct {
	tx       *types.Transaction
	digest   types.Hash
	size     int64
	admitted time.Time
}

// committedEntry remembers one committed digest until its window expires.
type committedEntry struct {
	digest types.Hash
	at     time.Time
}

// Pool is one gateway's transaction pool. Safe for concurrent use: the node
// loop admits and drains while the commit pipeline's executor goroutine
// marks commits.
type Pool struct {
	cfg Config

	mu        sync.Mutex
	pending   map[types.Hash]*entry // admitted, not yet drained
	order     []*entry              // FIFO over pending (nil holes after removal)
	head      int                   // first live index in order
	inflight  map[types.Hash]*entry // drained toward the sealer, commit not yet seen
	committed map[types.Hash]time.Time
	comOrder  []committedEntry // FIFO over committed for window expiry
	comHead   int

	bytes int64 // pending + inflight encoded bytes
	count int   // pending + inflight transactions

	// queuedN mirrors len(pending) so the hot pump path can skip the mutex
	// when the pool is idle.
	queuedN atomic.Int64
}

// New returns an empty pool bounded by cfg.
func New(cfg Config) *Pool {
	return &Pool{
		cfg:       cfg.withDefaults(),
		pending:   make(map[types.Hash]*entry),
		inflight:  make(map[types.Hash]*entry),
		committed: make(map[types.Hash]time.Time),
	}
}

// Config returns the bounds the pool runs with (defaults applied).
func (p *Pool) Config() Config { return p.cfg }

// txSize is the capacity cost of one transaction: its canonical encoding.
func txSize(tx *types.Transaction) int64 {
	return int64(len(tx.Encode(nil)))
}

// Admit offers tx to the pool and returns the admission verdict. Expired
// wins over Duplicate and Overloaded so clients learn to refresh their
// timestamp; Duplicate wins over Overloaded so re-submits of tracked work
// never read as shed load.
func (p *Pool) Admit(tx *types.Transaction, now time.Time) Code {
	if age := now.UnixNano() - tx.Timestamp; age > p.cfg.TTL.Nanoseconds() {
		return Expired
	}
	d := tx.Digest()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pending[d]; ok {
		return Duplicate
	}
	if _, ok := p.inflight[d]; ok {
		return Duplicate
	}
	if _, ok := p.committed[d]; ok {
		return Duplicate
	}
	size := txSize(tx)
	if p.count+1 > p.cfg.MaxCount || p.bytes+size > p.cfg.MaxBytes {
		return Overloaded
	}
	e := &entry{tx: tx, digest: d, size: size, admitted: now}
	p.pending[d] = e
	p.order = append(p.order, e)
	p.bytes += size
	p.count++
	p.queuedN.Store(int64(len(p.pending)))
	return Admitted
}

// Drain pops up to max transactions from the pending FIFO and moves them to
// the in-flight set (they stay counted against the caps until MarkCommitted
// or an expiry sweep releases them). Returns nil when the pool is empty or
// max is non-positive.
func (p *Pool) Drain(max int) []*types.Transaction {
	if max <= 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*types.Transaction
	for p.head < len(p.order) && len(out) < max {
		e := p.order[p.head]
		p.order[p.head] = nil
		p.head++
		if e == nil || p.pending[e.digest] != e {
			continue // removed by a sweep
		}
		delete(p.pending, e.digest)
		p.inflight[e.digest] = e
		out = append(out, e.tx)
	}
	p.compactLocked()
	p.queuedN.Store(int64(len(p.pending)))
	return out
}

// MarkCommitted records that the transaction with digest d committed (or was
// ordered and rejected — either way it is settled): its capacity is released
// and the digest enters the committed dedup window.
func (p *Pool) MarkCommitted(d types.Hash, now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.pending[d]; ok {
		delete(p.pending, d)
		p.queuedN.Store(int64(len(p.pending)))
		p.releaseLocked(e)
	} else if e, ok := p.inflight[d]; ok {
		delete(p.inflight, d)
		p.releaseLocked(e)
	}
	if _, ok := p.committed[d]; !ok {
		p.committed[d] = now
		p.comOrder = append(p.comOrder, committedEntry{digest: d, at: now})
		// Hard cap: evict the oldest committed digests past capacity so a
		// burst cannot grow the window without bound.
		for len(p.comOrder)-p.comHead > committedCap {
			old := p.comOrder[p.comHead]
			p.comOrder[p.comHead] = committedEntry{}
			p.comHead++
			if at, ok := p.committed[old.digest]; ok && at.Equal(old.at) {
				delete(p.committed, old.digest)
			}
		}
	}
}

// releaseLocked returns e's capacity to the pool.
func (p *Pool) releaseLocked(e *entry) {
	p.bytes -= e.size
	p.count--
}

// Sweep expires state by age: pending transactions older than the TTL are
// removed and returned (the gateway answers their origins with Expired);
// over-age in-flight entries are silently released (their commit reply, if
// any, already went through the reply cache); committed digests past the
// window are forgotten. Call it periodically from the node tick.
func (p *Pool) Sweep(now time.Time) []*types.Transaction {
	p.mu.Lock()
	defer p.mu.Unlock()
	var expired []*types.Transaction
	cutoff := now.Add(-p.cfg.TTL)
	for d, e := range p.pending {
		if e.admitted.Before(cutoff) {
			delete(p.pending, d)
			p.releaseLocked(e)
			expired = append(expired, e.tx)
		}
	}
	p.queuedN.Store(int64(len(p.pending)))
	for d, e := range p.inflight {
		if e.admitted.Before(cutoff) {
			delete(p.inflight, d)
			p.releaseLocked(e)
		}
	}
	comCutoff := now.Add(-p.cfg.CommittedWindow)
	for p.comHead < len(p.comOrder) {
		old := p.comOrder[p.comHead]
		if !old.at.Before(comCutoff) {
			break
		}
		p.comOrder[p.comHead] = committedEntry{}
		p.comHead++
		if at, ok := p.committed[old.digest]; ok && at.Equal(old.at) {
			delete(p.committed, old.digest)
		}
	}
	p.compactComLocked()
	return expired
}

// compactLocked reclaims the consumed prefix of the pending FIFO.
func (p *Pool) compactLocked() {
	if p.head > 0 && (p.head >= len(p.order) || p.head > 4096) {
		p.order = append(p.order[:0], p.order[p.head:]...)
		p.head = 0
	}
}

// compactComLocked reclaims the consumed prefix of the committed FIFO.
func (p *Pool) compactComLocked() {
	if p.comHead > 0 && (p.comHead >= len(p.comOrder) || p.comHead > 4096) {
		p.comOrder = append(p.comOrder[:0], p.comOrder[p.comHead:]...)
		p.comHead = 0
	}
}

// PendingBytes returns the encoded size of pending + in-flight transactions.
func (p *Pool) PendingBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.bytes
}

// PendingCount returns the number of pending + in-flight transactions.
func (p *Pool) PendingCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count
}

// QueuedCount returns the number of pending (not yet drained) transactions.
func (p *Pool) QueuedCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

// HasQueued reports whether any transaction awaits draining, without taking
// the pool lock (the node's pump runs after every dispatch).
func (p *Pool) HasQueued() bool { return p.queuedN.Load() > 0 }
