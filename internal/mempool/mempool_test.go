package mempool

import (
	"testing"
	"time"

	"sharper/internal/types"
)

func mkTx(client types.NodeID, seq uint64, at time.Time) *types.Transaction {
	return &types.Transaction{
		ID:        types.TxID{Client: client, Seq: seq},
		Client:    client,
		Timestamp: at.UnixNano(),
		Ops:       []types.Op{{From: 1, To: 2, Amount: 3}},
		Involved:  types.NewClusterSet(0),
	}
}

func TestAdmitDrainCommit(t *testing.T) {
	now := time.Now()
	p := New(Config{})
	tx := mkTx(types.ClientIDBase, 1, now)
	if c := p.Admit(tx, now); c != Admitted {
		t.Fatalf("admit: got %d", c)
	}
	if c := p.Admit(tx, now); c != Duplicate {
		t.Fatalf("re-admit pending: got %d, want Duplicate", c)
	}
	if n := p.PendingCount(); n != 1 {
		t.Fatalf("pending count %d", n)
	}
	got := p.Drain(10)
	if len(got) != 1 || got[0] != tx {
		t.Fatalf("drain returned %v", got)
	}
	// In flight still counts against capacity and still dedups.
	if n := p.PendingCount(); n != 1 {
		t.Fatalf("inflight not counted: %d", n)
	}
	if c := p.Admit(tx, now); c != Duplicate {
		t.Fatalf("re-admit inflight: got %d, want Duplicate", c)
	}
	p.MarkCommitted(tx.Digest(), now)
	if n := p.PendingCount(); n != 0 {
		t.Fatalf("capacity not released: %d", n)
	}
	if b := p.PendingBytes(); b != 0 {
		t.Fatalf("bytes not released: %d", b)
	}
	// Committed window still dedups.
	if c := p.Admit(tx, now); c != Duplicate {
		t.Fatalf("re-admit committed: got %d, want Duplicate", c)
	}
	// Past the window the same digest admits again.
	later := now.Add(2 * DefaultCommittedWindow)
	p.Sweep(later)
	tx2 := mkTx(types.ClientIDBase, 1, later)
	if c := p.Admit(tx2, later); c != Admitted {
		t.Fatalf("admit after window: got %d", c)
	}
}

func TestCountCapSheds(t *testing.T) {
	now := time.Now()
	p := New(Config{MaxCount: 2})
	for i := uint64(1); i <= 2; i++ {
		if c := p.Admit(mkTx(types.ClientIDBase, i, now), now); c != Admitted {
			t.Fatalf("admit %d: got %d", i, c)
		}
	}
	if c := p.Admit(mkTx(types.ClientIDBase, 3, now), now); c != Overloaded {
		t.Fatalf("over cap: got %d, want Overloaded", c)
	}
	// Draining does NOT free capacity — only commit observation does.
	p.Drain(2)
	if c := p.Admit(mkTx(types.ClientIDBase, 3, now), now); c != Overloaded {
		t.Fatalf("inflight over cap: got %d, want Overloaded", c)
	}
	p.MarkCommitted(mkTx(types.ClientIDBase, 1, now).Digest(), now)
	if c := p.Admit(mkTx(types.ClientIDBase, 3, now), now); c != Admitted {
		t.Fatalf("after release: got %d", c)
	}
}

func TestByteCapSheds(t *testing.T) {
	now := time.Now()
	one := mkTx(types.ClientIDBase, 1, now)
	size := int64(len(one.Encode(nil)))
	p := New(Config{MaxBytes: 2*size + 1})
	if c := p.Admit(one, now); c != Admitted {
		t.Fatalf("admit 1: %d", c)
	}
	if c := p.Admit(mkTx(types.ClientIDBase, 2, now), now); c != Admitted {
		t.Fatalf("admit 2: %d", c)
	}
	if c := p.Admit(mkTx(types.ClientIDBase, 3, now), now); c != Overloaded {
		t.Fatalf("over byte cap: got %d, want Overloaded", c)
	}
	if b := p.PendingBytes(); b > 2*size+1 {
		t.Fatalf("byte cap exceeded: %d > %d", b, 2*size+1)
	}
}

func TestExpiry(t *testing.T) {
	now := time.Now()
	p := New(Config{TTL: time.Second})
	stale := mkTx(types.ClientIDBase, 1, now.Add(-2*time.Second))
	if c := p.Admit(stale, now); c != Expired {
		t.Fatalf("stale admit: got %d, want Expired", c)
	}
	fresh := mkTx(types.ClientIDBase, 2, now)
	if c := p.Admit(fresh, now); c != Admitted {
		t.Fatalf("fresh admit: %d", c)
	}
	exp := p.Sweep(now.Add(5 * time.Second))
	if len(exp) != 1 || exp[0] != fresh {
		t.Fatalf("sweep returned %v", exp)
	}
	if n := p.PendingCount(); n != 0 {
		t.Fatalf("sweep left %d counted", n)
	}
	// Expired-in-flight entries release capacity too.
	tx3 := mkTx(types.ClientIDBase, 3, now.Add(5*time.Second))
	if c := p.Admit(tx3, now.Add(5*time.Second)); c != Admitted {
		t.Fatalf("admit 3: %d", c)
	}
	p.Drain(1)
	p.Sweep(now.Add(20 * time.Second))
	if n := p.PendingCount(); n != 0 {
		t.Fatalf("inflight expiry left %d counted", n)
	}
}

func TestDrainFIFO(t *testing.T) {
	now := time.Now()
	p := New(Config{})
	for i := uint64(1); i <= 5; i++ {
		p.Admit(mkTx(types.ClientIDBase, i, now), now)
	}
	got := p.Drain(3)
	if len(got) != 3 {
		t.Fatalf("drained %d", len(got))
	}
	for i, tx := range got {
		if tx.ID.Seq != uint64(i+1) {
			t.Fatalf("drain order: pos %d got seq %d", i, tx.ID.Seq)
		}
	}
	if n := p.QueuedCount(); n != 2 {
		t.Fatalf("queued after drain: %d", n)
	}
}

func TestCommittedWindowHardCap(t *testing.T) {
	now := time.Now()
	p := New(Config{})
	for i := 0; i < committedCap+100; i++ {
		p.MarkCommitted(mkTx(types.ClientIDBase, uint64(i+1), now).Digest(), now)
	}
	p.mu.Lock()
	n := len(p.committed)
	p.mu.Unlock()
	if n > committedCap {
		t.Fatalf("committed set %d exceeds cap %d", n, committedCap)
	}
}
