package transport

import "sharper/internal/types"

// Fabric is the message substrate every SharPer runtime (core, the
// baselines, clients) speaks to. Two implementations exist:
//
//   - *Network (this package): the in-process simulated fabric with
//     modelled latency, fault injection, and per-message processing cost —
//     the default for tests and benchmarks;
//   - *tcpnet.Net: real TCP sockets with length-prefixed, HMAC-authenticated
//     frames, used to run a deployment as separate OS processes.
//
// The consensus engines never see this interface; they emit outbound
// messages as data (consensus.Outbound) and the node runtime pushes them
// into whichever fabric it was configured with.
type Fabric interface {
	// Register creates (or returns) the local inbox for id. Each node and
	// client calls this once before participating.
	Register(id types.NodeID) <-chan *types.Envelope
	// Send queues env for delivery to `to`. Send never blocks the caller;
	// fabrics are lossy under pressure (consensus tolerates drops).
	Send(to types.NodeID, env *types.Envelope)
	// Multicast sends env to every destination in to.
	Multicast(to []types.NodeID, env *types.Envelope)
	// Stats returns the fabric's live message counters.
	Stats() *Stats
	// Close tears the fabric down; subsequent sends are dropped.
	Close()
}

// FaultInjector is the optional fault-modelling surface of a fabric. The
// simulated Network implements it; the TCP backend does not (to crash a TCP
// node you close its fabric or kill its process, like on a real cluster).
type FaultInjector interface {
	// Crash marks id as stopped: it receives no further messages until
	// Restart.
	Crash(id types.NodeID)
	// Restart clears the crashed mark for id.
	Restart(id types.NodeID)
	// Partition blocks delivery in both directions between every pair drawn
	// from a and b.
	Partition(a, b []types.NodeID)
	// Heal removes the partition rules between every pair drawn from a and
	// b, leaving other partitions intact.
	Heal(a, b []types.NodeID)
	// HealPartition removes all partition rules.
	HealPartition()
}

var (
	_ Fabric        = (*Network)(nil)
	_ FaultInjector = (*Network)(nil)
)
