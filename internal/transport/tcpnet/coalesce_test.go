package tcpnet

import (
	"encoding/binary"
	"testing"
	"time"

	"sharper/internal/types"
)

// TestCoalescedBurstOrdered floods one peer link with a burst far larger
// than a single writer wakeup can drain, so the coalescing path (batch
// assembly + one flush per wakeup) is exercised for real, and asserts every
// message arrives intact and in send order — the FIFO the consensus layer
// assumes of a connection.
func TestCoalescedBurstOrdered(t *testing.T) {
	fabs, client, err := Loopback([]types.NodeID{0}, testSecret, func(c *Config) {
		c.InboxSize = 1 << 15
		c.QueueSize = 1 << 15
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer fabs[0].Close()

	inbox := fabs[0].Register(0)
	if err := client.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const total = 8192
	payload := make([]byte, 64)
	for i := 0; i < total; i++ {
		binary.LittleEndian.PutUint64(payload, uint64(i))
		client.Send(0, &types.Envelope{
			Type:    types.MsgRequest,
			From:    types.ClientIDBase + 1,
			Payload: append([]byte(nil), payload...),
		})
	}

	for want := 0; want < total; want++ {
		select {
		case env := <-inbox:
			got := binary.LittleEndian.Uint64(env.Payload)
			if got != uint64(want) {
				t.Fatalf("message %d arrived out of order (got seq %d)", want, got)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("burst stalled: %d/%d delivered (dropped=%d)",
				want, total, fabs[0].Stats().Dropped.Load()+client.Stats().Dropped.Load())
		}
	}
}
