package tcpnet

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"sharper/internal/transport"
	"sharper/internal/types"
)

// shapedPair builds a listening fabric b and a dialer a whose outbound link
// to b carries the given shape; cfg tweaks a's config further when non-nil.
func shapedPair(t *testing.T, shape transport.LinkShape, tuneA, tuneB func(*Config)) (*Net, *Net) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peers := map[types.NodeID]string{1: ln.Addr().String()}
	bCfg := Config{Self: 1, Listener: ln, Peers: peers, Secret: testSecret}
	if tuneB != nil {
		tuneB(&bCfg)
	}
	b, err := New(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	aCfg := Config{Self: 0, Peers: peers, Secret: testSecret}
	if !shape.IsZero() {
		aCfg.Shape = map[types.NodeID]transport.LinkShape{1: shape}
	}
	if tuneA != nil {
		tuneA(&aCfg)
	}
	a, err := New(aCfg)
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

// TestShapedLinkDelay: a 60ms one-way shaped link must hold frames for
// roughly that long, while the unshaped loopback baseline stays fast.
func TestShapedLinkDelay(t *testing.T) {
	a, b := shapedPair(t, transport.LinkShape{Delay: 60 * time.Millisecond}, nil, nil)
	inbox := b.Register(1)
	if err := a.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0})
	waitEnvelope(t, inbox, 5*time.Second)
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("shaped frame arrived in %v, want ≥ ~60ms", d)
	}

	fast, slow := shapedPair(t, transport.LinkShape{}, nil, nil)
	inbox2 := slow.Register(1)
	if err := fast.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	fast.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0})
	waitEnvelope(t, inbox2, 5*time.Second)
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("unshaped loopback frame took %v", d)
	}
}

// TestShapedLinkLoss: loss=1 must drop every data frame at the shaper's
// loss gate (counted as drops) while the connection itself stays healthy —
// loss emulates a lossy path, not a dead one.
func TestShapedLinkLoss(t *testing.T) {
	a, b := shapedPair(t, transport.LinkShape{Loss: 1}, nil, nil)
	inbox := b.Register(1)
	if err := a.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	const frames = 20
	before := a.Stats().Dropped.Load()
	for i := 0; i < frames; i++ {
		a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0})
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Stats().Dropped.Load() < before+frames {
		if time.Now().After(deadline) {
			t.Fatalf("dropped = %d, want ≥ %d", a.Stats().Dropped.Load()-before, frames)
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case env := <-inbox:
		t.Fatalf("frame survived a loss=1 link: %+v", env)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestShapedLinkBandwidth: a burst through a 2 Mbps link must take at least
// the serialization time the bandwidth dictates.
func TestShapedLinkBandwidth(t *testing.T) {
	shape := transport.LinkShape{Bandwidth: 2_000_000}
	a, b := shapedPair(t, shape, nil, nil)
	inbox := b.Register(1)
	if err := a.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 2000)
	const frames = 20 // ≈ 40 KB ≈ 160 ms at 2 Mbps
	start := time.Now()
	for i := 0; i < frames; i++ {
		a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0, Payload: payload})
	}
	for i := 0; i < frames; i++ {
		waitEnvelope(t, inbox, 5*time.Second)
	}
	elapsed := time.Since(start)
	want := shape.TxTime(frames * len(payload))
	if elapsed < want/2 {
		t.Fatalf("burst took %v, want ≥ ~%v of serialization", elapsed, want)
	}
}

// TestIdleInboundConnReaped: an accepted connection whose dialer never
// sends anything (no frames, no keepalive probes — not a tcpnet fabric)
// must be reaped by the idle timer instead of lingering forever.
func TestIdleInboundConnReaped(t *testing.T) {
	fabs, client, err := Loopback([]types.NodeID{0}, testSecret, func(c *Config) {
		c.KeepaliveInterval = 50 * time.Millisecond
		c.IdleTimeout = 200 * time.Millisecond
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	t.Cleanup(fabs[0].Close)

	raw, err := net.Dial("tcp", fabs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("silent connection survived the idle timeout")
	}
}

// TestKeepaliveKeepsQuietLinkAlive: with keepalive probes well inside the
// acceptor's idle timeout, a long-quiet peer link must stay on its original
// connection — the acceptor sees exactly one accept, and traffic after the
// quiet period flows without a reconnect.
func TestKeepaliveKeepsQuietLinkAlive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := &countingListener{Listener: ln}
	peers := map[types.NodeID]string{1: ln.Addr().String()}
	b, err := New(Config{Self: 1, Listener: cl, Peers: peers, Secret: testSecret,
		IdleTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Self: 0, Peers: peers, Secret: testSecret,
		KeepaliveInterval: 75 * time.Millisecond})
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	inbox := b.Register(1)
	a.Register(0)
	if err := a.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	time.Sleep(1200 * time.Millisecond) // several idle timeouts of silence

	a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0})
	waitEnvelope(t, inbox, 5*time.Second)
	if got := cl.accepts.Load(); got != 1 {
		t.Fatalf("%d connections accepted, want 1 (keepalive failed to hold the link)", got)
	}
}

type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}
