// Package tcpnet is the real-network implementation of transport.Fabric:
// length-prefixed frames over TCP connections, so a SharPer deployment can
// run as separate OS processes on loopback or a LAN (§5 runs replicas as
// networked processes; the simulated fabric in internal/transport remains
// the default for tests and benchmarks).
//
// # Wire format
//
// Every frame is
//
//	uint32 LE  frameLen            (length of everything below)
//	uint32 LE  to                  (destination NodeID, or helloDst)
//	           envelope            (types.Envelope canonical encoding)
//	[32]byte   HMAC-SHA256 tag     (over to ‖ envelope, keyed by the
//	                                deployment's shared wire secret)
//
// Frames whose tag does not verify are discarded and the connection is
// dropped: an attacker on the network cannot inject or alter protocol
// messages, which restores the pairwise-authenticated-channel assumption of
// §2.1 that the simulated fabric gets for free. Protocol-level signatures
// (internal/crypto MAC vectors or ed25519) ride inside the envelope and are
// unchanged.
//
// # Hot path
//
// Send never serializes: it enqueues the envelope pointer on the
// destination link's bounded queue. Each link's writer goroutine drains the
// queue in batches, assembling frames into a reused buffer (HMAC computed
// in place by a pooled authenticator, zero allocations in steady state) and
// flushing the whole batch through one buffered write per wakeup — so a
// burst of N consensus messages costs one syscall, not N. The read side
// buffers the socket the same way.
//
// # Routing
//
// One Net instance typically hosts a single replica (its process) or a set
// of client endpoints (a driver process). Send routes by destination:
// locally registered inboxes deliver directly; replica IDs named in the
// static peer table go out over a per-peer connection with its own bounded
// outbound queue, reconnect, and exponential backoff; anything else (client
// IDs, which are dynamic) routes over the connection the destination was
// last seen on. Connections advertise their local inboxes with small hello
// frames on establishment, so replies to clients flow back over the
// client's own connections without the clients appearing in any topology
// file.
//
// # Link shaping
//
// Config.Shape attaches a netem-style discipline to each outbound peer
// link: propagation delay, serialization bandwidth, and random loss
// (transport.LinkShape — the same type the simulated fabric's shaping
// matrix uses, so one topology file drives both). Shaping happens in the
// link's writer goroutine after batch assembly: drained frames pass a
// per-frame loss gate, serialize through a virtual busy clock at the link
// bandwidth, then sit on a FIFO delay line until due — assembly is never
// blocked by a sleeping link, and a shaped link still coalesces exactly
// like an unshaped one. The delay line is bounded (tail drop beyond it,
// like a congested router queue). Connection establishment traffic (hellos,
// carried retransmissions) is written unshaped: shaping emulates the
// steady-state path, not the dial handshake.
//
// # Liveness
//
// Every outbound peer link writes a small hello probe each
// KeepaliveInterval. Accepted connections arm a read deadline of
// IdleTimeout — a partitioned or wedged dialer stops refreshing it, the
// read fails, and the connection is reaped, handing the link back to the
// dialer's reconnect/backoff loop. Only accepted connections are reaped:
// an outbound link to a quiet peer legitimately reads nothing (replies
// travel over the peer's own dialed connection), and every dialer in a
// SharPer deployment is a tcpnet fabric that probes. WriteTimeout bounds
// each batch write so a peer that stops reading cannot pin a writer.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/crypto"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// helloDst is the reserved destination of route-advertisement frames. It is
// far outside both the replica ID range (dense from 0) and the client range
// (from types.ClientIDBase).
const helloDst = ^uint32(0)

// maxCoalesce bounds how many bytes one writer wakeup assembles before
// flushing, so a deep queue cannot grow the batch buffer without bound.
const maxCoalesce = 256 << 10

// sockBufSize sizes the per-connection buffered reader and writer.
const sockBufSize = 64 << 10

// Config describes one process's attachment to the wire.
type Config struct {
	// Self is the primary identity this fabric hosts, used in error text.
	// Dial-only fabrics (client drivers) may leave it zero.
	Self types.NodeID
	// ListenAddr is the TCP address to accept peer connections on
	// ("host:port"; ":0" picks a free port — read it back with Addr).
	// Empty means dial-only: the fabric originates connections but accepts
	// none, which is all a client driver needs.
	ListenAddr string
	// Listener, when non-nil, is used instead of ListenAddr (ownership
	// transfers to the fabric). Loopback uses this to fix every node's
	// address before any fabric starts.
	Listener net.Listener
	// Peers maps every replica to its address. Destinations outside the map
	// are assumed to be clients and routed over learned return routes.
	Peers map[types.NodeID]string
	// Secret keys the per-frame HMAC; every process of the deployment must
	// share it (crypto.WireKey derives it from a secret string).
	Secret []byte
	// InboxSize is the buffered capacity of each local inbox (default 16384).
	InboxSize int
	// QueueSize bounds each per-peer outbound queue; frames beyond it are
	// dropped, like the simulated fabric under saturation (default 16384).
	QueueSize int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxFrame caps accepted frame sizes (default 4 MiB); oversized length
	// prefixes poison the connection, which is dropped and redialed.
	MaxFrame int
	// Shape applies netem-style shaping (delay, bandwidth, loss) to the
	// outbound link toward each listed peer; unlisted peers are unshaped.
	// core.Deployment builds this map from a topology-level shaping matrix
	// (transport.Shaping) and each peer's cluster.
	Shape map[types.NodeID]transport.LinkShape
	// ClientShape, when non-nil and non-zero, shapes return-route traffic
	// (replies to clients) on every accepted connection.
	ClientShape *transport.LinkShape
	// ShapeSeed seeds the per-link loss generators, so shaped runs are
	// reproducible.
	ShapeSeed int64
	// KeepaliveInterval is how often each outbound peer link writes a hello
	// probe, keeping the acceptor's idle timer refreshed across quiet
	// periods (default 1s; negative disables probing).
	KeepaliveInterval time.Duration
	// IdleTimeout reaps an accepted connection that delivered no bytes for
	// this long — its dialer is partitioned or wedged — handing the link
	// back to the dialer's reconnect/backoff loop (default 5× the keepalive
	// interval; negative disables).
	IdleTimeout time.Duration
	// WriteTimeout bounds each batch write, so a peer that stops reading
	// cannot pin a writer goroutine forever (default 10s; negative
	// disables).
	WriteTimeout time.Duration
}

func (c *Config) fillDefaults() {
	if c.InboxSize <= 0 {
		c.InboxSize = 16384
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16384
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 4 << 20
	}
	if c.KeepaliveInterval == 0 {
		c.KeepaliveInterval = time.Second
	} else if c.KeepaliveInterval < 0 {
		c.KeepaliveInterval = 0
	}
	if c.IdleTimeout == 0 && c.KeepaliveInterval > 0 {
		c.IdleTimeout = 5 * c.KeepaliveInterval
	} else if c.IdleTimeout < 0 {
		c.IdleTimeout = 0
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	} else if c.WriteTimeout < 0 {
		c.WriteTimeout = 0
	}
}

// outFrame is one queued outbound message: the destination that goes into
// the frame header plus the envelope, serialized by the link's writer
// goroutine (not by the sender) so frame assembly reuses one buffer per
// link instead of allocating per message.
type outFrame struct {
	to  uint32
	env *types.Envelope
}

// Net is the TCP fabric. It is safe for concurrent use.
type Net struct {
	cfg  Config
	ln   net.Listener
	auth *crypto.FrameAuth

	mu      sync.RWMutex
	inboxes map[types.NodeID]chan *types.Envelope
	routes  map[types.NodeID]*wireConn // learned client return routes
	conns   map[*wireConn]struct{}     // every live connection, for shutdown
	peers   map[types.NodeID]*peer
	closed  bool

	stats   transport.Stats
	connSeq atomic.Int64 // salts per-connection loss generators
	done    chan struct{}
	wg      sync.WaitGroup
}

var _ transport.Fabric = (*Net)(nil)

// New creates a fabric and, when a listen address (or listener) is
// configured, starts accepting connections immediately.
func New(cfg Config) (*Net, error) {
	cfg.fillDefaults()
	if len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("tcpnet: empty wire secret")
	}
	n := &Net{
		cfg:     cfg,
		auth:    crypto.NewFrameAuth(cfg.Secret),
		inboxes: make(map[types.NodeID]chan *types.Envelope),
		routes:  make(map[types.NodeID]*wireConn),
		conns:   make(map[*wireConn]struct{}),
		peers:   make(map[types.NodeID]*peer),
		done:    make(chan struct{}),
	}
	if cfg.Listener != nil {
		n.ln = cfg.Listener
	} else if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.ListenAddr, err)
		}
		n.ln = ln
	}
	if n.ln != nil {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the fabric's accept address ("" for dial-only fabrics).
func (n *Net) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Stats returns the live counters.
func (n *Net) Stats() *transport.Stats { return &n.stats }

// PeerLinkStats is a point-in-time snapshot of one outbound peer link.
type PeerLinkStats struct {
	Peer         types.NodeID
	Sent         int64 // frames enqueued toward the peer
	Dropped      int64 // frames lost to queue overflow on this link
	Bytes        int64 // payload bytes enqueued
	Reconnects   int64 // successful dials beyond the first
	ShapedMicros int64 // cumulative emulated delay (serialization + propagation), µs
	QueueDepth   int   // frames waiting in the outbound queue right now
}

// LinkStats snapshots every established outbound peer link, sorted by peer.
func (n *Net) LinkStats() []PeerLinkStats {
	n.mu.RLock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.RUnlock()
	out := make([]PeerLinkStats, 0, len(peers))
	for _, p := range peers {
		rc := p.connects.Load() - 1
		if rc < 0 {
			rc = 0
		}
		out = append(out, PeerLinkStats{
			Peer:         p.id,
			Sent:         p.sent.Load(),
			Dropped:      p.dropped.Load(),
			Bytes:        p.bytes.Load(),
			Reconnects:   rc,
			ShapedMicros: p.shapedMicros.Load(),
			QueueDepth:   len(p.ch),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// Register creates (or returns) the local inbox for id and advertises it to
// every known peer, so replicas can route replies back here. Advertisements
// travel through the same per-peer queues as ordinary frames, so on any one
// connection the hello always precedes traffic the new endpoint sends later.
func (n *Net) Register(id types.NodeID) <-chan *types.Envelope {
	n.mu.Lock()
	if ch, ok := n.inboxes[id]; ok {
		n.mu.Unlock()
		return ch
	}
	ch := make(chan *types.Envelope, n.cfg.InboxSize)
	n.inboxes[id] = ch
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	hello := outFrame{to: helloDst, env: &types.Envelope{From: id}}
	for _, p := range peers {
		p.enqueue(hello, &n.stats)
	}
	return ch
}

// Send routes env toward `to`: local inbox, static peer link, or learned
// return route, in that order. Send never blocks and never serializes; the
// link's writer goroutine encodes. Undeliverable or over-pressure frames
// are dropped and counted.
func (n *Net) Send(to types.NodeID, env *types.Envelope) {
	n.stats.Sent.Add(1)
	n.stats.Bytes.Add(int64(len(env.Payload)))

	n.mu.RLock()
	closed := n.closed
	local, isLocal := n.inboxes[to]
	route := n.routes[to]
	n.mu.RUnlock()
	if closed {
		n.stats.Dropped.Add(1)
		return
	}
	if isLocal {
		select {
		case local <- env:
			n.stats.Delivered.Add(1)
		default:
			n.stats.Dropped.Add(1)
		}
		return
	}
	if _, ok := n.cfg.Peers[to]; ok {
		p := n.peerFor(to)
		p.sent.Add(1)
		p.bytes.Add(int64(len(env.Payload)))
		p.enqueue(outFrame{to: uint32(to), env: env}, &n.stats)
		return
	}
	if route != nil {
		route.enqueue(outFrame{to: uint32(to), env: env}, &n.stats)
		return
	}
	n.stats.Dropped.Add(1)
}

// Multicast sends env to every destination in to.
func (n *Net) Multicast(to []types.NodeID, env *types.Envelope) {
	for _, id := range to {
		n.Send(id, env)
	}
}

// ConnectAll eagerly establishes a connection to every peer in the table,
// waiting up to timeout for the set to come up (and for each connection's
// hello advertisements to be written). It returns an error naming the peers
// still unreachable; the fabric keeps redialing those in the background, so
// a partial failure is not fatal. Client drivers call this before issuing
// load so replies routed by replicas they never dialed directly still find a
// return path.
func (n *Net) ConnectAll(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	waiting := make(map[types.NodeID]*peer, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		waiting[id] = n.peerFor(id)
	}
	var unreachable []types.NodeID
	for id, p := range waiting {
		remain := time.Until(deadline)
		if remain < 0 {
			remain = 0
		}
		select {
		case <-p.ready:
		case <-n.done:
			return fmt.Errorf("tcpnet: fabric closed while connecting")
		case <-time.After(remain):
			unreachable = append(unreachable, id)
		}
	}
	if len(unreachable) > 0 {
		return fmt.Errorf("tcpnet: %d peer(s) unreachable after %s: %v", len(unreachable), timeout, unreachable)
	}
	return nil
}

// Close tears the fabric down: the listener stops, every connection closes,
// all goroutines exit, and subsequent sends are dropped.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*wireConn, 0, len(n.conns))
	for wc := range n.conns {
		conns = append(conns, wc)
	}
	n.mu.Unlock()
	close(n.done)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, wc := range conns {
		wc.close()
	}
	n.wg.Wait()
}

// appendFrame assembles one complete length-prefixed, authenticated wire
// frame for env into dst and returns the extended slice. The HMAC runs over
// the frame bytes in place, so steady-state frame assembly into a reused
// buffer does not allocate. sess is the calling goroutine's frame session
// (rolling keyed HMAC state, no pool round-trip per frame); nil falls back
// to the fabric's shared pooled authenticator.
func (n *Net) appendFrame(dst []byte, to uint32, env *types.Envelope, sess *crypto.FrameSession) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = binary.LittleEndian.AppendUint32(dst, to)
	dst = env.Encode(dst)
	if sess != nil {
		dst = sess.AppendTag(dst, dst[start+4:])
	} else {
		dst = n.auth.AppendTag(dst, dst[start+4:])
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// helloEnvs returns one advertisement per locally registered inbox.
func (n *Net) helloEnvs() []outFrame {
	n.mu.RLock()
	out := make([]outFrame, 0, len(n.inboxes))
	for id := range n.inboxes {
		out = append(out, outFrame{to: helloDst, env: &types.Envelope{From: id}})
	}
	n.mu.RUnlock()
	return out
}

// peerFor returns (creating if needed) the outbound link to a static peer.
func (n *Net) peerFor(id types.NodeID) *peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[id]; ok {
		return p
	}
	p := &peer{
		id:    id,
		addr:  n.cfg.Peers[id],
		ch:    make(chan outFrame, n.cfg.QueueSize),
		ready: make(chan struct{}),
	}
	n.peers[id] = p
	if !n.closed {
		n.wg.Add(1)
		go n.runPeer(p)
	}
	return p
}

// peer is one static outbound link: a bounded frame queue drained by a
// goroutine that dials, redials with backoff, and writes.
type peer struct {
	id   types.NodeID
	addr string
	ch   chan outFrame

	ready     chan struct{} // closed after the first successful connect
	readyOnce sync.Once

	// Link counters, snapshotted by Net.LinkStats.
	sent         atomic.Int64
	dropped      atomic.Int64
	bytes        atomic.Int64
	connects     atomic.Int64
	shapedMicros atomic.Int64
}

// enqueue adds a frame to an outbound queue, dropping when full.
func (p *peer) enqueue(f outFrame, stats *transport.Stats) {
	select {
	case p.ch <- f:
	default:
		stats.Dropped.Add(1)
		p.dropped.Add(1)
	}
}

// drainBatch coalesces f and everything already waiting on ch (up to
// maxCoalesce bytes) into scratch as wire frames, returning the filled
// buffer and the number of frames in it. This is the heart of the write
// path: one wakeup, one buffer, one flush — however many messages the
// queue held.
func (n *Net) drainBatch(scratch []byte, f outFrame, ch <-chan outFrame, sess *crypto.FrameSession) ([]byte, int) {
	scratch = n.appendFrame(scratch[:0], f.to, f.env, sess)
	count := 1
	for len(scratch) < maxCoalesce {
		select {
		case more := <-ch:
			scratch = n.appendFrame(scratch, more.to, more.env, sess)
			count++
		default:
			return scratch, count
		}
	}
	return scratch, count
}

// drainBatchLossy is drainBatch behind a per-frame loss gate: each frame is
// dropped (and counted) with probability sh.shape.Loss before assembly, the
// way a lossy path loses individual packets out of a burst.
func (n *Net) drainBatchLossy(scratch []byte, f outFrame, ch <-chan outFrame, sess *crypto.FrameSession, sh *linkShaper) ([]byte, int) {
	count := 0
	loss := sh.shape.Loss
	if loss > 0 && sh.rng.Float64() < loss {
		n.stats.Dropped.Add(1)
	} else {
		scratch = n.appendFrame(scratch, f.to, f.env, sess)
		count++
	}
	for len(scratch) < maxCoalesce {
		select {
		case more := <-ch:
			if loss > 0 && sh.rng.Float64() < loss {
				n.stats.Dropped.Add(1)
				continue
			}
			scratch = n.appendFrame(scratch, more.to, more.env, sess)
			count++
		default:
			return scratch, count
		}
	}
	return scratch, count
}

// shapedBacklog bounds the bytes a shaped link may hold on its delay line —
// the emulated router queue. Frames beyond it tail-drop, as they would on a
// congested path; without the bound, a sender outrunning the link bandwidth
// would grow the queue without limit.
const shapedBacklog = 4 << 20

// linkShaper models one outbound link's emulated discipline (netem-style):
// frames drained off the queue pass a per-frame loss gate, serialize
// through a virtual busy clock at the link bandwidth, and sit on a FIFO
// delay line until their due time. The owning writer goroutine writes
// batches as they come due; nothing in the shaper ever blocks batch
// assembly, so a link "sleeping out" its propagation delay keeps
// coalescing arrivals the whole time.
type linkShaper struct {
	shape  transport.LinkShape
	rng    *rand.Rand    // loss gate; seeded per link for reproducibility
	shaped *atomic.Int64 // cumulative emulated delay added, µs (may be nil)
	busy  time.Time  // virtual clock: when queued bytes finish serializing
	queue []shapedBatch
	bytes int      // wire bytes on the delay line, bounded by shapedBacklog
	free  [][]byte // recycled batch buffers
}

// shapedBatch is one assembled batch waiting out its delay.
type shapedBatch struct {
	due   time.Time
	buf   []byte
	count int
}

func newLinkShaper(shape transport.LinkShape, seed int64, shaped *atomic.Int64) *linkShaper {
	return &linkShaper{shape: shape, rng: rand.New(rand.NewSource(seed)), shaped: shaped}
}

func (sh *linkShaper) getBuf() []byte {
	if n := len(sh.free); n > 0 {
		b := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return b[:0]
	}
	return nil
}

func (sh *linkShaper) putBuf(b []byte) {
	if cap(b) <= maxCoalesce && len(sh.free) < 8 {
		sh.free = append(sh.free, b)
	}
}

// push schedules an assembled batch: serialization time advances the busy
// clock, propagation delay sets the due time. Due times are monotone, so
// the delay line stays FIFO.
func (sh *linkShaper) push(buf []byte, count int, now time.Time) {
	if sh.busy.Before(now) {
		sh.busy = now
	}
	sh.busy = sh.busy.Add(sh.shape.TxTime(len(buf)))
	due := sh.busy.Add(sh.shape.Delay)
	if sh.shaped != nil {
		sh.shaped.Add(due.Sub(now).Microseconds())
	}
	sh.queue = append(sh.queue, shapedBatch{due: due, buf: buf, count: count})
	sh.bytes += len(buf)
}

// fold concatenates every batch from index from onward into carry (in FIFO
// order) and empties the delay line, returning the carry and the number of
// frames in it — the write path failed, and what was in flight either rides
// the reconnect (peer links) or is dropped with accounting (return routes).
func (sh *linkShaper) fold(carry []byte, from int) ([]byte, int) {
	lost := 0
	for _, b := range sh.queue[from:] {
		carry = append(carry, b.buf...)
		lost += b.count
	}
	sh.queue = sh.queue[:0]
	sh.bytes = 0
	sh.busy = time.Time{}
	return carry, lost
}

// runPeer owns the peer's connection lifecycle: dial with exponential
// backoff, advertise local inboxes, then drain the outbound queue until the
// connection breaks or the fabric closes. Draining coalesces every queued
// message into one buffered write per wakeup. A batch whose write failed is
// carried across the reconnect and retransmitted first on the next
// connection — coalescing must not amplify a broken connection's one
// in-flight loss into the loss of the whole drained batch. (The receiver
// tolerates the resulting duplicates when the failed write partially
// landed; consensus is built for redelivery. Carried frames skip the
// shaper: they already paid its discipline once.)
func (n *Net) runPeer(p *peer) {
	defer n.wg.Done()
	const minBackoff = 25 * time.Millisecond
	const maxBackoff = time.Second
	backoff := minBackoff
	sess := n.auth.NewSession()
	var sh *linkShaper
	if shape, ok := n.cfg.Shape[p.id]; ok && !shape.IsZero() {
		sh = newLinkShaper(shape, n.cfg.ShapeSeed*1000003+int64(p.id)+1, &p.shapedMicros)
	}
	var carry []byte // drained-but-unwritten frames, retried after reconnect
	for {
		select {
		case <-n.done:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err != nil {
			select {
			case <-n.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = minBackoff
		p.connects.Add(1)
		wc := n.adoptConn(c, false)
		if wc == nil {
			return // fabric closed during dial
		}
		// Hellos go in their own buffer: carry may hold a prior batch, and
		// route advertisements must precede it on the new connection.
		ok := true
		var hellos []byte
		for _, hello := range n.helloEnvs() {
			hellos = n.appendFrame(hellos, hello.to, hello.env, sess)
		}
		if len(hellos) > 0 {
			ok = wc.write(hellos) == nil
		}
		if ok {
			p.readyOnce.Do(func() { close(p.ready) })
		}
		if ok && len(carry) > 0 {
			ok = wc.write(carry) == nil
		}
		if ok {
			carry = carry[:0]
			var alive bool
			carry, _, alive = n.drainConn(p.ch, wc, carry, sh, sess, n.cfg.KeepaliveInterval)
			if !alive {
				return
			}
		}
		n.dropConn(wc)
		if len(carry) == 0 && cap(carry) > maxCoalesce {
			carry = nil // don't pin a burst-sized buffer across reconnects
		}
	}
}

// drainConn drains ch into wc — coalescing, shaping when sh is non-nil, and
// probing each keepalive interval when one is set — until the connection
// fails or the fabric closes. It returns the frames drained but not yet
// written (runPeer retries them after reconnect; writeLoop drops them with
// accounting), how many there are, and whether the fabric is still open.
func (n *Net) drainConn(ch <-chan outFrame, wc *wireConn, carry []byte, sh *linkShaper, sess *crypto.FrameSession, keepalive time.Duration) ([]byte, int, bool) {
	var kaC <-chan time.Time
	if keepalive > 0 {
		ka := time.NewTicker(keepalive)
		defer ka.Stop()
		kaC = ka.C
	}
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var due <-chan time.Time
		if sh != nil && len(sh.queue) > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(time.Until(sh.queue[0].due))
			due = timer.C
		}
		select {
		case <-n.done:
			return carry, 0, false
		case f := <-ch:
			if sh == nil {
				var count int
				carry, count = n.drainBatch(carry[:0], f, ch, sess)
				if err := wc.write(carry); err != nil {
					return carry, count, true
				}
				carry = carry[:0]
				continue
			}
			buf, count := n.drainBatchLossy(sh.getBuf(), f, ch, sess, sh)
			if count == 0 {
				sh.putBuf(buf)
				continue
			}
			if sh.bytes+len(buf) > shapedBacklog {
				n.stats.Dropped.Add(int64(count)) // emulated queue overflow
				sh.putBuf(buf)
				continue
			}
			sh.push(buf, count, time.Now())
		case <-due:
			now := time.Now()
			pop := 0
			for pop < len(sh.queue) && !sh.queue[pop].due.After(now) {
				b := sh.queue[pop]
				if err := wc.write(b.buf); err != nil {
					var lost int
					carry, lost = sh.fold(carry[:0], pop)
					return carry, lost, true
				}
				sh.bytes -= len(b.buf)
				sh.putBuf(b.buf)
				pop++
			}
			sh.queue = append(sh.queue[:0], sh.queue[pop:]...)
		case <-kaC:
			var probe []byte
			for _, hello := range n.helloEnvs() {
				probe = n.appendFrame(probe, hello.to, hello.env, sess)
			}
			if len(probe) == 0 {
				continue // nothing registered yet: nothing to advertise
			}
			if err := wc.write(probe); err != nil {
				var lost int
				if sh != nil {
					carry, lost = sh.fold(carry[:0], 0)
				} else {
					carry = carry[:0]
				}
				return carry, lost, true
			}
		}
	}
}

// adoptConn registers a new connection: tracked for shutdown, read loop
// started. inbound marks accepted (vs dialed) connections, which are the
// only ones the idle timer reaps. Returns nil (closing c) if the fabric is
// already closed.
func (n *Net) adoptConn(c net.Conn, inbound bool) *wireConn {
	wc := &wireConn{
		c:            c,
		w:            bufio.NewWriterSize(c, sockBufSize),
		out:          make(chan outFrame, n.cfg.QueueSize),
		inbound:      inbound,
		seq:          n.connSeq.Add(1),
		writeTimeout: n.cfg.WriteTimeout,
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil
	}
	n.conns[wc] = struct{}{}
	n.mu.Unlock()
	n.wg.Add(2)
	go n.readLoop(wc)
	go n.writeLoop(wc)
	return wc
}

// dropConn closes a connection and forgets it and any routes through it.
func (n *Net) dropConn(wc *wireConn) {
	wc.close()
	n.mu.Lock()
	delete(n.conns, wc)
	for id, route := range n.routes {
		if route == wc {
			delete(n.routes, id)
		}
	}
	n.mu.Unlock()
}

// acceptLoop admits inbound connections until the listener closes.
func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.adoptConn(c, true)
	}
}

// writeLoop drains a connection's return-route queue with the same
// coalescing (and, under Config.ClientShape, the same shaping discipline)
// as runPeer. Static peer frames are written by runPeer directly; this
// queue carries replies to clients and hello advertisements, so neither
// path ever blocks a consensus goroutine. Unlike a static peer there is no
// reconnect to retry on, so frames in flight when the connection dies are
// lost — counted as drops, and clients retransmit.
func (n *Net) writeLoop(wc *wireConn) {
	defer n.wg.Done()
	var sh *linkShaper
	if n.cfg.ClientShape != nil && !n.cfg.ClientShape.IsZero() {
		sh = newLinkShaper(*n.cfg.ClientShape, n.cfg.ShapeSeed*1000003-wc.seq, nil)
	}
	_, lost, alive := n.drainConn(wc.out, wc, nil, sh, n.auth.NewSession(), 0)
	if alive && lost > 0 {
		n.stats.Dropped.Add(int64(lost))
	}
}

// readLoop parses frames off one connection until it breaks: verify the
// authenticator, learn return routes from hellos (and from any sender we
// cannot reach otherwise), and deliver to the local inbox. The socket is
// read through a buffered reader, so a coalesced burst costs one syscall to
// ingest too. Delivery blocks when an inbox is full — TCP flow control then
// pushes back on the sender, as on any real network.
func (n *Net) readLoop(wc *wireConn) {
	defer n.wg.Done()
	defer n.dropConn(wc)
	sess := n.auth.NewSession()
	idle := time.Duration(0)
	if wc.inbound {
		idle = n.cfg.IdleTimeout
	}
	br := bufio.NewReaderSize(wc.c, sockBufSize)
	var lenBuf [4]byte
	for {
		if idle > 0 {
			// Armed before each frame: a dialer that stops sending (even
			// keepalive probes) is partitioned or dead, and holding its
			// connection would only hide that from the routing table.
			wc.c.SetReadDeadline(time.Now().Add(idle))
		}
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if int64(frameLen) > int64(n.cfg.MaxFrame) || frameLen < 4+crypto.FrameTagSize {
			return // malformed or hostile length prefix: poison, drop the conn
		}
		// One allocation per inbound frame: the decoded envelope's payload
		// and signature alias this buffer, which the consensus layer may
		// retain indefinitely, so it cannot be pooled.
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		body := frame[:len(frame)-crypto.FrameTagSize]
		tag := frame[len(frame)-crypto.FrameTagSize:]
		if !sess.Verify(body, tag) {
			return // unauthenticated traffic: drop the connection
		}
		to := binary.LittleEndian.Uint32(body)
		env, _, err := types.DecodeEnvelope(body[4:])
		if err != nil {
			return
		}
		if to == helloDst {
			// Routes are learned ONLY from hello frames: an ordinary frame's
			// From may have been forwarded by a replica, and recording the
			// forwarding connection as the sender's route would misdeliver
			// every later reply.
			n.learnRoute(env.From, wc)
			continue
		}
		n.mu.RLock()
		ch, ok := n.inboxes[types.NodeID(to)]
		n.mu.RUnlock()
		if !ok {
			n.stats.Dropped.Add(1)
			continue
		}
		select {
		case ch <- env:
			n.stats.Delivered.Add(1)
		case <-n.done:
			return
		}
	}
}

// learnRoute records (or refreshes) the connection a dynamic sender is
// reachable over. Static peers never route this way.
func (n *Net) learnRoute(from types.NodeID, wc *wireConn) {
	if _, static := n.cfg.Peers[from]; static {
		return
	}
	n.mu.Lock()
	if !n.closed {
		if _, local := n.inboxes[from]; !local {
			n.routes[from] = wc
		}
	}
	n.mu.Unlock()
}

// wireConn wraps one TCP connection with a buffered writer under a mutex
// (runPeer and writeLoop may interleave on the same socket) and a bounded
// queue for return-route traffic.
type wireConn struct {
	c            net.Conn
	w            *bufio.Writer
	out          chan outFrame
	inbound      bool  // accepted (true) vs dialed; only accepted conns idle out
	seq          int64 // fabric-unique, salts this connection's loss generator
	writeTimeout time.Duration

	wmu       sync.Mutex
	closeOnce sync.Once
}

// write pushes an assembled batch of frames through the buffered writer and
// flushes once — one syscall per wakeup for any batch up to the buffer
// size. The write deadline bounds how long a peer that stopped reading can
// pin the writer goroutine.
func (wc *wireConn) write(batch []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if wc.writeTimeout > 0 {
		wc.c.SetWriteDeadline(time.Now().Add(wc.writeTimeout))
	}
	if _, err := wc.w.Write(batch); err != nil {
		return err
	}
	return wc.w.Flush()
}

// enqueue queues a frame for the connection's writer, dropping when full.
func (wc *wireConn) enqueue(f outFrame, stats *transport.Stats) {
	select {
	case wc.out <- f:
	default:
		stats.Dropped.Add(1)
	}
}

func (wc *wireConn) close() {
	wc.closeOnce.Do(func() { wc.c.Close() })
}

// Loopback builds one listening fabric per replica on 127.0.0.1 plus a
// dial-only fabric for clients, all sharing one secret — a full multi-node
// TCP deployment inside a single process, used by core's TransportTCP mode
// and the integration tests. tune, when non-nil, adjusts each fabric's
// config before construction.
func Loopback(ids []types.NodeID, secret []byte, tune func(*Config)) (map[types.NodeID]*Net, *Net, error) {
	listeners := make(map[types.NodeID]net.Listener, len(ids))
	peers := make(map[types.NodeID]string, len(ids))
	fail := func(err error) (map[types.NodeID]*Net, *Net, error) {
		for _, ln := range listeners {
			ln.Close()
		}
		return nil, nil, err
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("tcpnet: loopback listener for %s: %w", id, err))
		}
		listeners[id] = ln
		peers[id] = ln.Addr().String()
	}
	fabrics := make(map[types.NodeID]*Net, len(ids))
	for _, id := range ids {
		cfg := Config{Self: id, Listener: listeners[id], Peers: peers, Secret: secret}
		if tune != nil {
			tune(&cfg)
		}
		fab, err := New(cfg)
		if err != nil {
			for _, f := range fabrics {
				f.Close()
			}
			return fail(err)
		}
		delete(listeners, id) // ownership transferred
		fabrics[id] = fab
	}
	clientCfg := Config{Peers: peers, Secret: secret}
	if tune != nil {
		tune(&clientCfg)
	}
	clientFab, err := New(clientCfg)
	if err != nil {
		for _, f := range fabrics {
			f.Close()
		}
		return fail(err)
	}
	return fabrics, clientFab, nil
}
