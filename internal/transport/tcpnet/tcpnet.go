// Package tcpnet is the real-network implementation of transport.Fabric:
// length-prefixed frames over TCP connections, so a SharPer deployment can
// run as separate OS processes on loopback or a LAN (§5 runs replicas as
// networked processes; the simulated fabric in internal/transport remains
// the default for tests and benchmarks).
//
// # Wire format
//
// Every frame is
//
//	uint32 LE  frameLen            (length of everything below)
//	uint32 LE  to                  (destination NodeID, or helloDst)
//	           envelope            (types.Envelope canonical encoding)
//	[32]byte   HMAC-SHA256 tag     (over to ‖ envelope, keyed by the
//	                                deployment's shared wire secret)
//
// Frames whose tag does not verify are discarded and the connection is
// dropped: an attacker on the network cannot inject or alter protocol
// messages, which restores the pairwise-authenticated-channel assumption of
// §2.1 that the simulated fabric gets for free. Protocol-level signatures
// (internal/crypto MAC vectors or ed25519) ride inside the envelope and are
// unchanged.
//
// # Routing
//
// One Net instance typically hosts a single replica (its process) or a set
// of client endpoints (a driver process). Send routes by destination:
// locally registered inboxes deliver directly; replica IDs named in the
// static peer table go out over a per-peer connection with its own bounded
// outbound queue, reconnect, and exponential backoff; anything else (client
// IDs, which are dynamic) routes over the connection the destination was
// last seen on. Connections advertise their local inboxes with small hello
// frames on establishment, so replies to clients flow back over the
// client's own connections without the clients appearing in any topology
// file.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sharper/internal/crypto"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// helloDst is the reserved destination of route-advertisement frames. It is
// far outside both the replica ID range (dense from 0) and the client range
// (from types.ClientIDBase).
const helloDst = ^uint32(0)

// Config describes one process's attachment to the wire.
type Config struct {
	// Self is the primary identity this fabric hosts, used in error text.
	// Dial-only fabrics (client drivers) may leave it zero.
	Self types.NodeID
	// ListenAddr is the TCP address to accept peer connections on
	// ("host:port"; ":0" picks a free port — read it back with Addr).
	// Empty means dial-only: the fabric originates connections but accepts
	// none, which is all a client driver needs.
	ListenAddr string
	// Listener, when non-nil, is used instead of ListenAddr (ownership
	// transfers to the fabric). Loopback uses this to fix every node's
	// address before any fabric starts.
	Listener net.Listener
	// Peers maps every replica to its address. Destinations outside the map
	// are assumed to be clients and routed over learned return routes.
	Peers map[types.NodeID]string
	// Secret keys the per-frame HMAC; every process of the deployment must
	// share it (crypto.WireKey derives it from a secret string).
	Secret []byte
	// InboxSize is the buffered capacity of each local inbox (default 16384).
	InboxSize int
	// QueueSize bounds each per-peer outbound queue; frames beyond it are
	// dropped, like the simulated fabric under saturation (default 16384).
	QueueSize int
	// DialTimeout bounds one connection attempt (default 2s).
	DialTimeout time.Duration
	// MaxFrame caps accepted frame sizes (default 4 MiB); oversized length
	// prefixes poison the connection, which is dropped and redialed.
	MaxFrame int
}

func (c *Config) fillDefaults() {
	if c.InboxSize <= 0 {
		c.InboxSize = 16384
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 16384
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = 4 << 20
	}
}

// Net is the TCP fabric. It is safe for concurrent use.
type Net struct {
	cfg Config
	ln  net.Listener

	mu      sync.RWMutex
	inboxes map[types.NodeID]chan *types.Envelope
	routes  map[types.NodeID]*wireConn // learned client return routes
	conns   map[*wireConn]struct{}     // every live connection, for shutdown
	peers   map[types.NodeID]*peer
	closed  bool

	stats transport.Stats
	done  chan struct{}
	wg    sync.WaitGroup
}

var _ transport.Fabric = (*Net)(nil)

// New creates a fabric and, when a listen address (or listener) is
// configured, starts accepting connections immediately.
func New(cfg Config) (*Net, error) {
	cfg.fillDefaults()
	if len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("tcpnet: empty wire secret")
	}
	n := &Net{
		cfg:     cfg,
		inboxes: make(map[types.NodeID]chan *types.Envelope),
		routes:  make(map[types.NodeID]*wireConn),
		conns:   make(map[*wireConn]struct{}),
		peers:   make(map[types.NodeID]*peer),
		done:    make(chan struct{}),
	}
	if cfg.Listener != nil {
		n.ln = cfg.Listener
	} else if cfg.ListenAddr != "" {
		ln, err := net.Listen("tcp", cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.ListenAddr, err)
		}
		n.ln = ln
	}
	if n.ln != nil {
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Addr returns the fabric's accept address ("" for dial-only fabrics).
func (n *Net) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

// Stats returns the live counters.
func (n *Net) Stats() *transport.Stats { return &n.stats }

// Register creates (or returns) the local inbox for id and advertises it to
// every known peer, so replicas can route replies back here. Advertisements
// travel through the same per-peer queues as ordinary frames, so on any one
// connection the hello always precedes traffic the new endpoint sends later.
func (n *Net) Register(id types.NodeID) <-chan *types.Envelope {
	n.mu.Lock()
	if ch, ok := n.inboxes[id]; ok {
		n.mu.Unlock()
		return ch
	}
	ch := make(chan *types.Envelope, n.cfg.InboxSize)
	n.inboxes[id] = ch
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	hello := n.encodeFrame(helloDst, &types.Envelope{From: id})
	for _, p := range peers {
		p.enqueue(hello, &n.stats)
	}
	return ch
}

// Send routes env toward `to`: local inbox, static peer link, or learned
// return route, in that order. Send never blocks; undeliverable or
// over-pressure frames are dropped and counted.
func (n *Net) Send(to types.NodeID, env *types.Envelope) {
	n.stats.Sent.Add(1)
	n.stats.Bytes.Add(int64(len(env.Payload)))

	n.mu.RLock()
	closed := n.closed
	local, isLocal := n.inboxes[to]
	route := n.routes[to]
	n.mu.RUnlock()
	if closed {
		n.stats.Dropped.Add(1)
		return
	}
	if isLocal {
		select {
		case local <- env:
			n.stats.Delivered.Add(1)
		default:
			n.stats.Dropped.Add(1)
		}
		return
	}
	if _, ok := n.cfg.Peers[to]; ok {
		n.peerFor(to).enqueue(n.encodeFrame(uint32(to), env), &n.stats)
		return
	}
	if route != nil {
		route.enqueue(n.encodeFrame(uint32(to), env), &n.stats)
		return
	}
	n.stats.Dropped.Add(1)
}

// Multicast sends env to every destination in to.
func (n *Net) Multicast(to []types.NodeID, env *types.Envelope) {
	for _, id := range to {
		n.Send(id, env)
	}
}

// ConnectAll eagerly establishes a connection to every peer in the table,
// waiting up to timeout for the set to come up (and for each connection's
// hello advertisements to be written). It returns an error naming the peers
// still unreachable; the fabric keeps redialing those in the background, so
// a partial failure is not fatal. Client drivers call this before issuing
// load so replies routed by replicas they never dialed directly still find a
// return path.
func (n *Net) ConnectAll(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	waiting := make(map[types.NodeID]*peer, len(n.cfg.Peers))
	for id := range n.cfg.Peers {
		waiting[id] = n.peerFor(id)
	}
	var unreachable []types.NodeID
	for id, p := range waiting {
		remain := time.Until(deadline)
		if remain < 0 {
			remain = 0
		}
		select {
		case <-p.ready:
		case <-n.done:
			return fmt.Errorf("tcpnet: fabric closed while connecting")
		case <-time.After(remain):
			unreachable = append(unreachable, id)
		}
	}
	if len(unreachable) > 0 {
		return fmt.Errorf("tcpnet: %d peer(s) unreachable after %s: %v", len(unreachable), timeout, unreachable)
	}
	return nil
}

// Close tears the fabric down: the listener stops, every connection closes,
// all goroutines exit, and subsequent sends are dropped.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := make([]*wireConn, 0, len(n.conns))
	for wc := range n.conns {
		conns = append(conns, wc)
	}
	n.mu.Unlock()
	close(n.done)
	if n.ln != nil {
		n.ln.Close()
	}
	for _, wc := range conns {
		wc.close()
	}
	n.wg.Wait()
}

// encodeFrame builds a complete length-prefixed, authenticated wire frame.
func (n *Net) encodeFrame(to uint32, env *types.Envelope) []byte {
	buf := make([]byte, 4, 4+4+9+len(env.Payload)+len(env.Sig)+crypto.FrameTagSize)
	buf = binary.LittleEndian.AppendUint32(buf, to)
	buf = env.Encode(buf)
	buf = append(buf, crypto.FrameTag(n.cfg.Secret, buf[4:])...)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	return buf
}

// helloFrames returns one advertisement frame per locally registered inbox.
func (n *Net) helloFrames() [][]byte {
	n.mu.RLock()
	ids := make([]types.NodeID, 0, len(n.inboxes))
	for id := range n.inboxes {
		ids = append(ids, id)
	}
	n.mu.RUnlock()
	out := make([][]byte, 0, len(ids))
	for _, id := range ids {
		out = append(out, n.encodeFrame(helloDst, &types.Envelope{From: id}))
	}
	return out
}

// peerFor returns (creating if needed) the outbound link to a static peer.
func (n *Net) peerFor(id types.NodeID) *peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[id]; ok {
		return p
	}
	p := &peer{
		id:    id,
		addr:  n.cfg.Peers[id],
		ch:    make(chan []byte, n.cfg.QueueSize),
		ready: make(chan struct{}),
	}
	n.peers[id] = p
	if !n.closed {
		n.wg.Add(1)
		go n.runPeer(p)
	}
	return p
}

// peer is one static outbound link: a bounded frame queue drained by a
// goroutine that dials, redials with backoff, and writes.
type peer struct {
	id   types.NodeID
	addr string
	ch   chan []byte

	ready     chan struct{} // closed after the first successful connect
	readyOnce sync.Once
}

// enqueue adds a frame to an outbound queue, dropping when full.
func (p *peer) enqueue(frame []byte, stats *transport.Stats) {
	select {
	case p.ch <- frame:
	default:
		stats.Dropped.Add(1)
	}
}

// runPeer owns the peer's connection lifecycle: dial with exponential
// backoff, advertise local inboxes, then drain the outbound queue until the
// connection breaks or the fabric closes.
func (n *Net) runPeer(p *peer) {
	defer n.wg.Done()
	const minBackoff = 25 * time.Millisecond
	const maxBackoff = time.Second
	backoff := minBackoff
	for {
		select {
		case <-n.done:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", p.addr, n.cfg.DialTimeout)
		if err != nil {
			select {
			case <-n.done:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = minBackoff
		wc := n.adoptConn(c)
		if wc == nil {
			return // fabric closed during dial
		}
		ok := true
		for _, hello := range n.helloFrames() {
			if err := wc.write(hello); err != nil {
				ok = false
				break
			}
		}
		if ok {
			p.readyOnce.Do(func() { close(p.ready) })
		}
	drain:
		for ok {
			select {
			case <-n.done:
				return
			case frame := <-p.ch:
				if err := wc.write(frame); err != nil {
					break drain
				}
			}
		}
		n.dropConn(wc)
	}
}

// adoptConn registers a new connection: tracked for shutdown, read loop
// started. Returns nil (closing c) if the fabric is already closed.
func (n *Net) adoptConn(c net.Conn) *wireConn {
	wc := &wireConn{c: c, out: make(chan []byte, n.cfg.QueueSize)}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil
	}
	n.conns[wc] = struct{}{}
	n.mu.Unlock()
	n.wg.Add(2)
	go n.readLoop(wc)
	go n.writeLoop(wc)
	return wc
}

// dropConn closes a connection and forgets it and any routes through it.
func (n *Net) dropConn(wc *wireConn) {
	wc.close()
	n.mu.Lock()
	delete(n.conns, wc)
	for id, route := range n.routes {
		if route == wc {
			delete(n.routes, id)
		}
	}
	n.mu.Unlock()
}

// acceptLoop admits inbound connections until the listener closes.
func (n *Net) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.adoptConn(c)
	}
}

// writeLoop drains a connection's return-route queue. Static peer frames are
// written by runPeer directly; this queue carries replies to clients and
// hello advertisements, so neither path ever blocks a consensus goroutine.
func (n *Net) writeLoop(wc *wireConn) {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case frame := <-wc.out:
			if err := wc.write(frame); err != nil {
				return
			}
		}
	}
}

// readLoop parses frames off one connection until it breaks: verify the
// authenticator, learn return routes from hellos (and from any sender we
// cannot reach otherwise), and deliver to the local inbox. Delivery blocks
// when an inbox is full — TCP flow control then pushes back on the sender,
// as on any real network.
func (n *Net) readLoop(wc *wireConn) {
	defer n.wg.Done()
	defer n.dropConn(wc)
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(wc.c, lenBuf[:]); err != nil {
			return
		}
		frameLen := binary.LittleEndian.Uint32(lenBuf[:])
		if int64(frameLen) > int64(n.cfg.MaxFrame) || frameLen < 4+crypto.FrameTagSize {
			return // malformed or hostile length prefix: poison, drop the conn
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(wc.c, frame); err != nil {
			return
		}
		body := frame[:len(frame)-crypto.FrameTagSize]
		tag := frame[len(frame)-crypto.FrameTagSize:]
		if !crypto.VerifyFrameTag(n.cfg.Secret, body, tag) {
			return // unauthenticated traffic: drop the connection
		}
		to := binary.LittleEndian.Uint32(body)
		env, _, err := types.DecodeEnvelope(body[4:])
		if err != nil {
			return
		}
		if to == helloDst {
			// Routes are learned ONLY from hello frames: an ordinary frame's
			// From may have been forwarded by a replica, and recording the
			// forwarding connection as the sender's route would misdeliver
			// every later reply.
			n.learnRoute(env.From, wc)
			continue
		}
		n.mu.RLock()
		ch, ok := n.inboxes[types.NodeID(to)]
		n.mu.RUnlock()
		if !ok {
			n.stats.Dropped.Add(1)
			continue
		}
		select {
		case ch <- env:
			n.stats.Delivered.Add(1)
		case <-n.done:
			return
		}
	}
}

// learnRoute records (or refreshes) the connection a dynamic sender is
// reachable over. Static peers never route this way.
func (n *Net) learnRoute(from types.NodeID, wc *wireConn) {
	if _, static := n.cfg.Peers[from]; static {
		return
	}
	n.mu.Lock()
	if !n.closed {
		if _, local := n.inboxes[from]; !local {
			n.routes[from] = wc
		}
	}
	n.mu.Unlock()
}

// wireConn wraps one TCP connection with a write mutex (runPeer and
// writeLoop may interleave on the same socket) and a bounded queue for
// return-route traffic.
type wireConn struct {
	c   net.Conn
	out chan []byte

	wmu       sync.Mutex
	closeOnce sync.Once
}

func (wc *wireConn) write(frame []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	_, err := wc.c.Write(frame)
	return err
}

// enqueue queues a frame for the connection's writer, dropping when full.
func (wc *wireConn) enqueue(frame []byte, stats *transport.Stats) {
	select {
	case wc.out <- frame:
	default:
		stats.Dropped.Add(1)
	}
}

func (wc *wireConn) close() {
	wc.closeOnce.Do(func() { wc.c.Close() })
}

// Loopback builds one listening fabric per replica on 127.0.0.1 plus a
// dial-only fabric for clients, all sharing one secret — a full multi-node
// TCP deployment inside a single process, used by core's TransportTCP mode
// and the integration tests. tune, when non-nil, adjusts each fabric's
// config before construction.
func Loopback(ids []types.NodeID, secret []byte, tune func(*Config)) (map[types.NodeID]*Net, *Net, error) {
	listeners := make(map[types.NodeID]net.Listener, len(ids))
	peers := make(map[types.NodeID]string, len(ids))
	fail := func(err error) (map[types.NodeID]*Net, *Net, error) {
		for _, ln := range listeners {
			ln.Close()
		}
		return nil, nil, err
	}
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(fmt.Errorf("tcpnet: loopback listener for %s: %w", id, err))
		}
		listeners[id] = ln
		peers[id] = ln.Addr().String()
	}
	fabrics := make(map[types.NodeID]*Net, len(ids))
	for _, id := range ids {
		cfg := Config{Self: id, Listener: listeners[id], Peers: peers, Secret: secret}
		if tune != nil {
			tune(&cfg)
		}
		fab, err := New(cfg)
		if err != nil {
			for _, f := range fabrics {
				f.Close()
			}
			return fail(err)
		}
		delete(listeners, id) // ownership transferred
		fabrics[id] = fab
	}
	clientCfg := Config{Peers: peers, Secret: secret}
	if tune != nil {
		tune(&clientCfg)
	}
	clientFab, err := New(clientCfg)
	if err != nil {
		for _, f := range fabrics {
			f.Close()
		}
		return fail(err)
	}
	return fabrics, clientFab, nil
}
