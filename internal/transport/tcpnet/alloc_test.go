//go:build !race

// Steady-state allocation regression for wire-frame assembly: building a
// complete authenticated frame (length prefix + destination + envelope +
// HMAC tag) into a reused buffer must not allocate — the pooled HMAC states
// and in-place tagging are what keep a writer wakeup at one buffer and one
// flush regardless of batch size. Excluded under the race detector, which
// adds its own allocations.

package tcpnet

import (
	"testing"

	"sharper/internal/types"
)

func TestAppendFrameAllocs(t *testing.T) {
	n, err := New(Config{Secret: testSecret}) // dial-only fabric: no sockets needed
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	env := &types.Envelope{
		Type:    types.MsgPrepare,
		From:    3,
		Payload: make([]byte, 256),
		Sig:     make([]byte, 32),
	}
	buf := make([]byte, 0, 4096)
	buf = n.appendFrame(buf, 7, env, nil) // warm the HMAC pool
	allocs := testing.AllocsPerRun(200, func() {
		buf = n.appendFrame(buf[:0], 7, env, nil)
	})
	if allocs > 0 {
		t.Fatalf("appendFrame allocates %.1f per frame in steady state (want 0)", allocs)
	}

	// The per-link session path must be allocation-free too.
	sess := n.auth.NewSession()
	buf = n.appendFrame(buf[:0], 7, env, sess)
	allocs = testing.AllocsPerRun(200, func() {
		buf = n.appendFrame(buf[:0], 7, env, sess)
	})
	if allocs > 0 {
		t.Fatalf("session appendFrame allocates %.1f per frame in steady state (want 0)", allocs)
	}
}
