package tcpnet

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"sharper/internal/crypto"
	"sharper/internal/types"
)

var testSecret = crypto.WireKey("tcpnet-test")

func waitEnvelope(t *testing.T, ch <-chan *types.Envelope, timeout time.Duration) *types.Envelope {
	t.Helper()
	select {
	case env := <-ch:
		return env
	case <-time.After(timeout):
		t.Fatalf("no envelope within %s", timeout)
		return nil
	}
}

// twoNodes builds two listening fabrics that know each other's addresses.
func twoNodes(t *testing.T) (*Net, *Net) {
	t.Helper()
	fabs, client, err := Loopback([]types.NodeID{0, 1}, testSecret, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	t.Cleanup(func() {
		fabs[0].Close()
		fabs[1].Close()
	})
	return fabs[0], fabs[1]
}

func TestSendBetweenFabrics(t *testing.T) {
	a, b := twoNodes(t)
	a.Register(0)
	inbox := b.Register(1)

	payload := []byte("over the wire")
	a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0, Payload: payload, Sig: []byte{9, 9}})
	env := waitEnvelope(t, inbox, 5*time.Second)
	if env.Type != types.MsgRequest || env.From != 0 || string(env.Payload) != string(payload) || len(env.Sig) != 2 {
		t.Fatalf("envelope corrupted in transit: %+v", env)
	}

	// And the reverse direction over b's own dialed connection.
	b.Send(0, &types.Envelope{Type: types.MsgReply, From: 1})
	if env := waitEnvelope(t, a.Register(0), 5*time.Second); env.Type != types.MsgReply {
		t.Fatalf("reverse envelope: %+v", env)
	}
}

func TestLocalDelivery(t *testing.T) {
	a, _ := twoNodes(t)
	inbox := a.Register(0)
	a.Send(0, &types.Envelope{Type: types.MsgCommit, From: 0})
	if env := waitEnvelope(t, inbox, time.Second); env.Type != types.MsgCommit {
		t.Fatalf("local delivery: %+v", env)
	}
}

// TestClientReturnRoute covers the reply path the crash-model protocol
// needs: the client dials a replica, and the replica reaches the client
// without the client appearing in any peer table.
func TestClientReturnRoute(t *testing.T) {
	fabs, clientFab, err := Loopback([]types.NodeID{0}, testSecret, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fabs[0].Close()
		clientFab.Close()
	})
	replicaInbox := fabs[0].Register(0)
	clientID := types.ClientIDBase + 7
	clientInbox := clientFab.Register(clientID)
	if err := clientFab.ConnectAll(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	clientFab.Send(0, &types.Envelope{Type: types.MsgRequest, From: clientID})
	if env := waitEnvelope(t, replicaInbox, 5*time.Second); env.From != clientID {
		t.Fatalf("request from %s", env.From)
	}
	fabs[0].Send(clientID, &types.Envelope{Type: types.MsgReply, From: 0})
	if env := waitEnvelope(t, clientInbox, 5*time.Second); env.Type != types.MsgReply {
		t.Fatalf("reply: %+v", env)
	}
}

// TestForgedFrameRejected sends a well-formed frame with a bad HMAC tag and
// a garbage blob, directly over a raw TCP connection: neither may reach the
// inbox, and authentic traffic afterwards still flows.
func TestForgedFrameRejected(t *testing.T) {
	fabs, clientFab, err := Loopback([]types.NodeID{0}, testSecret, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fabs[0].Close()
		clientFab.Close()
	})
	inbox := fabs[0].Register(0)

	// Forge: correct structure, wrong key.
	attacker, err := New(Config{Peers: map[types.NodeID]string{0: fabs[0].Addr()}, Secret: crypto.WireKey("wrong")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(attacker.Close)
	attacker.Send(0, &types.Envelope{Type: types.MsgRequest, From: 99})

	// Garbage: random bytes with a plausible length prefix.
	raw, err := net.Dial("tcp", fabs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	blob := make([]byte, 4+64)
	binary.LittleEndian.PutUint32(blob, 64)
	for i := range blob[4:] {
		blob[4+i] = byte(i * 7)
	}
	raw.Write(blob)
	raw.Close()

	select {
	case env := <-inbox:
		t.Fatalf("unauthenticated envelope delivered: %+v", env)
	case <-time.After(300 * time.Millisecond):
	}

	clientFab.Register(types.ClientIDBase + 1)
	clientFab.Send(0, &types.Envelope{Type: types.MsgRequest, From: types.ClientIDBase + 1})
	if env := waitEnvelope(t, inbox, 5*time.Second); env.From != types.ClientIDBase+1 {
		t.Fatalf("authentic traffic blocked: %+v", env)
	}
}

// TestReconnectAfterPeerRestart drops a peer's listener mid-run and brings a
// new fabric up on the same address: the sender's backoff loop must
// reconnect and deliver fresh traffic without any intervention.
func TestReconnectAfterPeerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	peers := map[types.NodeID]string{1: addr}

	b1, err := New(Config{Self: 1, Listener: ln, Peers: peers, Secret: testSecret})
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(Config{Self: 0, Peers: peers, Secret: testSecret})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	a.Register(0)

	inbox1 := b1.Register(1)
	a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0, Payload: []byte("one")})
	waitEnvelope(t, inbox1, 5*time.Second)

	b1.Close() // peer dies: connection breaks, sender starts redialing

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	b2, err := New(Config{Self: 1, Listener: ln2, Peers: peers, Secret: testSecret})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b2.Close)
	inbox2 := b2.Register(1)

	// The sender's queue may drop messages while disconnected (the fabric is
	// lossy, like the simulated one); keep sending until one lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0, Payload: []byte("two")})
		select {
		case env := <-inbox2:
			if string(env.Payload) == "two" {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("no delivery after peer restart")
		}
	}
}

// TestOversizedFramePoisonsConnection verifies a hostile length prefix
// cannot make the receiver allocate unboundedly: the connection is dropped.
func TestOversizedFramePoisonsConnection(t *testing.T) {
	fabs, clientFab, err := Loopback([]types.NodeID{0}, testSecret, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		fabs[0].Close()
		clientFab.Close()
	})
	inbox := fabs[0].Register(0)

	raw, err := net.Dial("tcp", fabs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	var huge [4]byte
	binary.LittleEndian.PutUint32(huge[:], 1<<31)
	raw.Write(huge[:])
	buf := make([]byte, 1)
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("connection survived an oversized length prefix")
	}
	raw.Close()

	select {
	case env := <-inbox:
		t.Fatalf("unexpected delivery: %+v", env)
	default:
	}
}

func TestCloseDropsSends(t *testing.T) {
	a, b := twoNodes(t)
	b.Register(1)
	a.Close()
	before := a.Stats().Dropped.Load()
	a.Send(1, &types.Envelope{Type: types.MsgRequest, From: 0})
	if got := a.Stats().Dropped.Load(); got != before+1 {
		t.Fatalf("send after close: dropped %d → %d", before, got)
	}
}
