// Link shaping: netem-style per-link delay / bandwidth / loss emulation,
// shared by both fabrics. The simulated Network applies a Shaping directly in
// its delivery model; the TCP fabric (internal/transport/tcpnet) applies the
// per-peer LinkShape it derives from the same Shaping on each outbound link.
// One topology file therefore drives identical network conditions over either
// fabric, which is what makes cross-datacenter numbers comparable between the
// simulation and real processes.
package transport

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"sharper/internal/types"
)

// LinkShape is the emulated behaviour of one directed link.
type LinkShape struct {
	// Delay is the added one-way propagation delay.
	Delay time.Duration
	// Bandwidth caps the link's throughput in bits per second (0 =
	// unlimited). Frames serialize onto the link one after another, so a
	// burst behind a slow link sees queueing delay on top of Delay, exactly
	// like netem's rate limiter.
	Bandwidth int64
	// Loss drops each frame independently with this probability.
	Loss float64
}

// IsZero reports whether the shape emulates nothing.
func (s LinkShape) IsZero() bool {
	return s.Delay == 0 && s.Bandwidth == 0 && s.Loss == 0
}

// TxTime is how long n bytes occupy the link at the shaped bandwidth.
func (s LinkShape) TxTime(n int) time.Duration {
	if s.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) * 8 / float64(s.Bandwidth) * float64(time.Second))
}

func (s LinkShape) String() string {
	var parts []string
	if s.Delay > 0 {
		parts = append(parts, fmt.Sprintf("delay %s", s.Delay))
	}
	if s.Bandwidth > 0 {
		parts = append(parts, fmt.Sprintf("bw %s", FormatBandwidth(s.Bandwidth)))
	}
	if s.Loss > 0 {
		parts = append(parts, fmt.Sprintf("loss %g", s.Loss))
	}
	if len(parts) == 0 {
		return "unshaped"
	}
	return strings.Join(parts, " ")
}

// ClusterPair is an unordered cluster pair, the key of a Shaping matrix
// entry. Use PairKey to normalize.
type ClusterPair struct{ A, B types.ClusterID }

// PairKey normalizes an unordered cluster pair.
func PairKey(a, b types.ClusterID) ClusterPair {
	if b < a {
		a, b = b, a
	}
	return ClusterPair{A: a, B: b}
}

// Shaping is a deployment's link-shape matrix: defaults per link class plus
// per cluster-pair overrides. Links are symmetric (the shape applies to both
// directions independently, like configuring netem on both endpoints).
type Shaping struct {
	// Default applies to cross-cluster links without a Pairs override.
	Default LinkShape
	// Intra applies between nodes of the same cluster.
	Intra LinkShape
	// Client applies between clients and replicas (both directions).
	Client LinkShape
	// Pairs overrides the cross-cluster default for specific cluster pairs.
	Pairs map[ClusterPair]LinkShape
}

// SetPair records a cluster-pair override.
func (s *Shaping) SetPair(a, b types.ClusterID, shape LinkShape) {
	if s.Pairs == nil {
		s.Pairs = make(map[ClusterPair]LinkShape)
	}
	s.Pairs[PairKey(a, b)] = shape
}

// For returns the shape of the link between clusters a and b.
func (s *Shaping) For(a, b types.ClusterID) LinkShape {
	if a == b {
		return s.Intra
	}
	if sh, ok := s.Pairs[PairKey(a, b)]; ok {
		return sh
	}
	return s.Default
}

// Multiregion reproduces the paper's cross-datacenter deployment (§4 runs
// clusters in different regions): sub-millisecond links inside a datacenter,
// tens of milliseconds and constrained bandwidth between them, clients
// co-located with their home region.
func Multiregion() *Shaping {
	return &Shaping{
		Intra:   LinkShape{Delay: 500 * time.Microsecond, Bandwidth: 1_000_000_000},
		Default: LinkShape{Delay: 30 * time.Millisecond, Bandwidth: 200_000_000},
		Client:  LinkShape{Delay: 1 * time.Millisecond, Bandwidth: 1_000_000_000},
	}
}

// ParseBandwidth parses a rate like "200Mbps", "1gbps", "64kbps", or a plain
// number of bits per second.
func ParseBandwidth(s string) (int64, error) {
	v := strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(v, "kbps"):
		mult, v = 1_000, strings.TrimSuffix(v, "kbps")
	case strings.HasSuffix(v, "mbps"):
		mult, v = 1_000_000, strings.TrimSuffix(v, "mbps")
	case strings.HasSuffix(v, "gbps"):
		mult, v = 1_000_000_000, strings.TrimSuffix(v, "gbps")
	case strings.HasSuffix(v, "bps"):
		v = strings.TrimSuffix(v, "bps")
	}
	n, err := strconv.ParseFloat(v, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("transport: bad bandwidth %q", s)
	}
	return int64(n * float64(mult)), nil
}

// FormatBandwidth renders bits per second with the largest clean suffix.
func FormatBandwidth(bps int64) string {
	switch {
	case bps >= 1_000_000_000 && bps%1_000_000_000 == 0:
		return fmt.Sprintf("%dGbps", bps/1_000_000_000)
	case bps >= 1_000_000 && bps%1_000_000 == 0:
		return fmt.Sprintf("%dMbps", bps/1_000_000)
	case bps >= 1_000 && bps%1_000 == 0:
		return fmt.Sprintf("%dKbps", bps/1_000)
	default:
		return fmt.Sprintf("%dbps", bps)
	}
}

// ParseLinkShape parses the key/value tail of a topology-file link directive:
// "delay 30ms bw 200Mbps loss 0.001" in any order. Unknown keys are errors.
func ParseLinkShape(args []string) (LinkShape, error) {
	var shape LinkShape
	if len(args)%2 != 0 {
		return shape, fmt.Errorf("transport: link shape needs key/value pairs, got %q", strings.Join(args, " "))
	}
	for i := 0; i < len(args); i += 2 {
		key, val := args[i], args[i+1]
		switch key {
		case "delay":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return shape, fmt.Errorf("transport: bad link delay %q", val)
			}
			shape.Delay = d
		case "bw", "bandwidth":
			b, err := ParseBandwidth(val)
			if err != nil {
				return shape, err
			}
			shape.Bandwidth = b
		case "loss":
			l, err := strconv.ParseFloat(val, 64)
			if err != nil || l < 0 || l > 1 {
				return shape, fmt.Errorf("transport: bad link loss %q (want [0,1])", val)
			}
			shape.Loss = l
		default:
			return shape, fmt.Errorf("transport: unknown link shape key %q", key)
		}
	}
	return shape, nil
}
