package transport

import (
	"testing"
	"time"

	"sharper/internal/types"
)

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"200Mbps", 200_000_000},
		{"1gbps", 1_000_000_000},
		{"64kbps", 64_000},
		{"1.5Mbps", 1_500_000},
		{"9600bps", 9600},
		{"9600", 9600},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBandwidth(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "fast", "-1Mbps"} {
		if _, err := ParseBandwidth(bad); err == nil {
			t.Errorf("ParseBandwidth(%q) succeeded", bad)
		}
	}
}

func TestParseLinkShape(t *testing.T) {
	s, err := ParseLinkShape([]string{"delay", "30ms", "bw", "200Mbps", "loss", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Delay != 30*time.Millisecond || s.Bandwidth != 200_000_000 || s.Loss != 0.01 {
		t.Fatalf("parsed %+v", s)
	}
	for _, bad := range [][]string{
		{"delay"},          // dangling key
		{"delay", "fast"},  // bad duration
		{"loss", "2"},      // out of range
		{"speed", "1Mbps"}, // unknown key
		{"bw", "veryfast"}, // bad rate
		{"delay", "-5ms"},  // negative
	} {
		if _, err := ParseLinkShape(bad); err == nil {
			t.Errorf("ParseLinkShape(%v) succeeded", bad)
		}
	}
}

func TestShapingForMatrix(t *testing.T) {
	s := &Shaping{
		Default: LinkShape{Delay: 30 * time.Millisecond},
		Intra:   LinkShape{Delay: 500 * time.Microsecond},
		Client:  LinkShape{Delay: time.Millisecond},
	}
	s.SetPair(1, 0, LinkShape{Delay: 80 * time.Millisecond})
	if got := s.For(0, 0); got.Delay != 500*time.Microsecond {
		t.Fatalf("intra = %v", got)
	}
	// Pair lookup is symmetric regardless of the order set or queried.
	if got := s.For(0, 1); got.Delay != 80*time.Millisecond {
		t.Fatalf("pair 0-1 = %v", got)
	}
	if got := s.For(1, 0); got.Delay != 80*time.Millisecond {
		t.Fatalf("pair 1-0 = %v", got)
	}
	if got := s.For(0, 2); got.Delay != 30*time.Millisecond {
		t.Fatalf("default = %v", got)
	}
}

// TestShapedDelayAppliesPerLink drives one intra and one cross message and
// checks the cross link's much larger shaped delay is observable end to end.
func TestShapedDelayAppliesPerLink(t *testing.T) {
	shaping := &Shaping{
		Intra:   LinkShape{Delay: 0},
		Default: LinkShape{Delay: 30 * time.Millisecond},
	}
	n := New(Config{Shaping: shaping}, func(id types.NodeID) (types.ClusterID, bool) {
		return types.ClusterID(uint32(id) % 2), true
	})
	defer n.Close()
	a := types.NodeID(0)
	intra := n.Register(types.NodeID(2)) // same cluster as a
	cross := n.Register(types.NodeID(1)) // other cluster

	start := time.Now()
	n.Send(2, &types.Envelope{From: a, Type: types.MsgRequest})
	<-intra
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("intra link took %v, want ~0", d)
	}
	start = time.Now()
	n.Send(1, &types.Envelope{From: a, Type: types.MsgRequest})
	<-cross
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("cross link took %v, want ≥ ~30ms", d)
	}
}

// TestShapedLossDropsPerLink: loss=1 on cross links kills exactly the cross
// traffic; intra traffic is untouched. This is the sim-side parity for the
// tcpnet per-link loss config.
func TestShapedLossDropsPerLink(t *testing.T) {
	shaping := &Shaping{Default: LinkShape{Loss: 1}}
	n := New(Config{Shaping: shaping}, func(id types.NodeID) (types.ClusterID, bool) {
		return types.ClusterID(uint32(id) % 2), true
	})
	defer n.Close()
	a := types.NodeID(0)
	intra := n.Register(types.NodeID(2))
	n.Register(types.NodeID(1))

	const rounds = 50
	for i := 0; i < rounds; i++ {
		n.Send(1, &types.Envelope{From: a, Type: types.MsgRequest}) // cross: lost
		n.Send(2, &types.Envelope{From: a, Type: types.MsgRequest}) // intra: delivered
	}
	for i := 0; i < rounds; i++ {
		select {
		case <-intra:
		case <-time.After(time.Second):
			t.Fatal("intra delivery stalled")
		}
	}
	if got := n.Stats().Dropped.Load(); got != rounds {
		t.Fatalf("dropped = %d, want %d (every cross frame)", got, rounds)
	}
	if got := n.Stats().Delivered.Load(); got != rounds {
		t.Fatalf("delivered = %d, want %d (every intra frame)", got, rounds)
	}
}

// TestShapedBandwidthSerializes checks that a burst through a slow link takes
// at least the serialization time bandwidth dictates.
func TestShapedBandwidthSerializes(t *testing.T) {
	// 1 Mbps; 50 frames × ~1048 wire bytes ≈ 419 ms of serialization.
	shaping := &Shaping{Intra: LinkShape{Bandwidth: 1_000_000}}
	n := New(Config{Shaping: shaping}, locateAll)
	defer n.Close()
	a, b := types.NodeID(0), types.NodeID(1)
	n.Register(a)
	inboxB := n.Register(b)

	payload := make([]byte, 1000)
	const frames = 50
	start := time.Now()
	for i := 0; i < frames; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest, Payload: payload})
	}
	for i := 0; i < frames; i++ {
		<-inboxB
	}
	elapsed := time.Since(start)
	var want time.Duration
	for i := 0; i < frames; i++ {
		want += shaping.Intra.TxTime(len(payload) + 48)
	}
	if elapsed < want/2 {
		t.Fatalf("burst of %d frames took %v, want ≥ ~%v of link serialization", frames, elapsed, want)
	}
}
