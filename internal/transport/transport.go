// Package transport simulates the network substrate of §2.1: point-to-point,
// pairwise-authenticated, bi-directional channels between every pair of
// nodes. The simulation models per-link latency (intra-cluster vs
// cross-cluster vs client links), jitter, message drops, duplication,
// network partitions, and node crashes, so consensus protocols built on top
// exercise the same code paths they would on a real cluster.
//
// Delivery is asynchronous: messages may be delayed, dropped, duplicated, or
// reordered (the safety assumption of §3), but a message that is delivered
// is delivered intact and with an authentic sender identity.
package transport

import (
	"container/heap"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/types"
)

// Config describes the simulated network's behaviour.
type Config struct {
	// IntraClusterLatency is the one-way delay between two nodes in the
	// same cluster (nodes are co-located, §2.2).
	IntraClusterLatency time.Duration
	// CrossClusterLatency is the one-way delay between nodes of different
	// clusters.
	CrossClusterLatency time.Duration
	// ClientLatency is the one-way delay between a client and any replica.
	ClientLatency time.Duration
	// JitterFrac adds uniform jitter in [0, JitterFrac·latency) per message.
	JitterFrac float64
	// DropProb drops each message independently with this probability.
	DropProb float64
	// DupProb duplicates each delivered message with this probability.
	DupProb float64
	// Seed makes fault injection reproducible.
	Seed int64
	// InboxSize is the buffered capacity of each node's inbox. Messages
	// beyond it spill into a bounded per-node overflow queue drained in
	// arrival order, so saturation never silently loses or reorders the
	// traffic the network decided to deliver; only a node whose overflow
	// also fills (overflowFactor×InboxSize) starts dropping.
	InboxSize int
	// ProcessingTime models per-message service cost at each replica (CPU
	// serialization, marshalling, syscalls). Every message a replica sends
	// or receives occupies it for this long, so a node caps out at roughly
	// 1/ProcessingTime messages per second — the resource that makes a
	// single ordering group saturate and lets sharding scale throughput
	// with cluster count, as on the paper's real testbed. Zero disables the
	// model. Clients are not charged.
	ProcessingTime time.Duration
	// Shaping, when set, replaces the three scalar latencies above with a
	// per-link shape matrix (delay, bandwidth, loss per cluster pair — the
	// same structure the TCP fabric applies per peer link, so one topology
	// file drives both fabrics). JitterFrac still applies on top of shaped
	// delays; DropProb composes with per-link Loss.
	Shaping *Shaping
}

// DefaultConfig returns a LAN-like configuration suitable for benchmarks:
// sub-millisecond intra-cluster links and ~1ms cross-cluster links.
func DefaultConfig() Config {
	return Config{
		IntraClusterLatency: 100 * time.Microsecond,
		CrossClusterLatency: 200 * time.Microsecond,
		ClientLatency:       200 * time.Microsecond,
		JitterFrac:          0.2,
		InboxSize:           16384,
		ProcessingTime:      15 * time.Microsecond,
	}
}

// Locator maps a node to the cluster it belongs to, for latency selection.
// Clients (id.IsClient()) are not expected to be mapped.
type Locator func(types.NodeID) (types.ClusterID, bool)

// Stats aggregates message-level counters, used by tests to assert on the
// number of communication phases and by benchmarks to report network load.
type Stats struct {
	Sent      atomic.Int64
	Delivered atomic.Int64
	Dropped   atomic.Int64
	Bytes     atomic.Int64
}

// LinkStats aggregates per-destination counters: messages and bytes sent
// toward one node, drops on that path, and the cumulative simulated delay
// (processing + shaped serialization + propagation) the fabric scheduled.
// Counters are atomics; a snapshot read while traffic flows is approximate
// but race-free.
type LinkStats struct {
	Sent        atomic.Int64
	Delivered   atomic.Int64
	Dropped     atomic.Int64
	Bytes       atomic.Int64
	DelayMicros atomic.Int64 // total scheduled one-way delay, µs
}

// Network is the in-process message fabric. It is safe for concurrent use.
type Network struct {
	cfg    Config
	locate Locator

	mu        sync.RWMutex
	inboxes   map[types.NodeID]chan *types.Envelope
	crashed   map[types.NodeID]bool
	partition map[[2]types.NodeID]bool // blocked ordered pairs
	closed    bool

	rngMu sync.Mutex
	rng   *rand.Rand

	// busyUntil models each replica's single message-processing core: the
	// virtual time until which the node is occupied. linkBusy models each
	// directed link's serialization under a shaped bandwidth the same way.
	// Both guarded by busyMu.
	busyMu    sync.Mutex
	busyUntil map[types.NodeID]time.Time
	linkBusy  map[[2]types.NodeID]time.Time

	// Delayed-delivery machinery: a min-heap drained by the dispatcher
	// goroutine on a fine quantum (see Network.dispatcher).
	qMu     sync.Mutex
	queue   deliveryHeap
	qWake   chan struct{}
	qDone   chan struct{}
	qClosed bool

	// Per-node overflow queues for messages that found the inbox full; one
	// drainer goroutine per backed-up node feeds them into the inbox in
	// order (see Network.deliver).
	ovMu     sync.Mutex
	overflow map[types.NodeID][]*types.Envelope
	ovBusy   map[types.NodeID]bool

	stats Stats

	// Per-destination link counters, created lazily on first send.
	linkMu sync.RWMutex
	links  map[types.NodeID]*LinkStats
}

// overflowFactor sizes the per-node overflow queue relative to InboxSize;
// beyond InboxSize×overflowFactor backed-up messages the node is considered
// unrecoverable at current load and further traffic to it is dropped
// (counted in Stats.Dropped) rather than buffered without bound.
const overflowFactor = 4

// New creates a network with the given behaviour and topology.
func New(cfg Config, locate Locator) *Network {
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 16384
	}
	n := &Network{
		cfg:       cfg,
		locate:    locate,
		inboxes:   make(map[types.NodeID]chan *types.Envelope),
		crashed:   make(map[types.NodeID]bool),
		partition: make(map[[2]types.NodeID]bool),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		busyUntil: make(map[types.NodeID]time.Time),
		linkBusy:  make(map[[2]types.NodeID]time.Time),
		qWake:     make(chan struct{}, 1),
		qDone:     make(chan struct{}),
		overflow:  make(map[types.NodeID][]*types.Envelope),
		ovBusy:    make(map[types.NodeID]bool),
		links:     make(map[types.NodeID]*LinkStats),
	}
	go n.dispatcher()
	return n
}

// occupy charges the node's processing core for one message starting no
// earlier than at, returning when processing completes. Clients have no
// modelled core.
func (n *Network) occupy(id types.NodeID, at time.Time) time.Time {
	if n.cfg.ProcessingTime <= 0 || id.IsClient() {
		return at
	}
	n.busyMu.Lock()
	start := at
	if b := n.busyUntil[id]; b.After(start) {
		start = b
	}
	done := start.Add(n.cfg.ProcessingTime)
	n.busyUntil[id] = done
	n.busyMu.Unlock()
	return done
}

// Stats returns the live counters.
func (n *Network) Stats() *Stats { return &n.stats }

// Link returns the live per-destination counters for traffic toward id,
// creating them on first use.
func (n *Network) Link(id types.NodeID) *LinkStats {
	n.linkMu.RLock()
	ls, ok := n.links[id]
	n.linkMu.RUnlock()
	if ok {
		return ls
	}
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	if ls, ok = n.links[id]; ok {
		return ls
	}
	ls = &LinkStats{}
	n.links[id] = ls
	return ls
}

// QueueDepth reports the number of messages buffered toward id: its inbox
// backlog plus any overflow spill. Zero for unregistered nodes.
func (n *Network) QueueDepth(id types.NodeID) int {
	n.mu.RLock()
	ch := n.inboxes[id]
	n.mu.RUnlock()
	depth := 0
	if ch != nil {
		depth = len(ch)
	}
	n.ovMu.Lock()
	depth += len(n.overflow[id])
	n.ovMu.Unlock()
	return depth
}

// Register creates (or returns) the inbox for id. Each node and client calls
// this once before participating.
func (n *Network) Register(id types.NodeID) <-chan *types.Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ch, ok := n.inboxes[id]; ok {
		return ch
	}
	ch := make(chan *types.Envelope, n.cfg.InboxSize)
	n.inboxes[id] = ch
	return ch
}

// Crash marks id as stopped: it receives no further messages until Restart.
// This models the crash failure of §2.1.
func (n *Network) Crash(id types.NodeID) {
	n.mu.Lock()
	n.crashed[id] = true
	n.mu.Unlock()
}

// Restart clears the crashed mark for id.
func (n *Network) Restart(id types.NodeID) {
	n.mu.Lock()
	delete(n.crashed, id)
	n.mu.Unlock()
}

// Partition blocks delivery in both directions between every pair drawn from
// a and b. Heal pairwise with Heal, or wholesale with HealPartition.
func (n *Network) Partition(a, b []types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			n.partition[[2]types.NodeID{x, y}] = true
			n.partition[[2]types.NodeID{y, x}] = true
		}
	}
}

// Heal removes the partition rules between every pair drawn from a and b,
// leaving any other partitions in place — so overlapping cuts installed by
// separate Partition calls can be lifted independently.
func (n *Network) Heal(a, b []types.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			delete(n.partition, [2]types.NodeID{x, y})
			delete(n.partition, [2]types.NodeID{y, x})
		}
	}
}

// HealPartition removes all partition rules.
func (n *Network) HealPartition() {
	n.mu.Lock()
	n.partition = make(map[[2]types.NodeID]bool)
	n.mu.Unlock()
}

// Close tears the network down; subsequent sends are dropped.
func (n *Network) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.qMu.Lock()
	if !n.qClosed {
		n.qClosed = true
		close(n.qDone)
	}
	n.qMu.Unlock()
}

// shapeFor resolves the configured LinkShape of the link from → to (zero
// when no Shaping matrix is configured).
func (n *Network) shapeFor(from, to types.NodeID) LinkShape {
	s := n.cfg.Shaping
	if s == nil {
		return LinkShape{}
	}
	if from.IsClient() || to.IsClient() {
		return s.Client
	}
	cf, okF := n.locate(from)
	ct, okT := n.locate(to)
	if !okF || !okT {
		return s.Default
	}
	return s.For(cf, ct)
}

// latency picks the one-way delay for the link from → to.
func (n *Network) latency(from, to types.NodeID) time.Duration {
	var base time.Duration
	if n.cfg.Shaping != nil {
		base = n.shapeFor(from, to).Delay
	} else {
		switch {
		case from.IsClient() || to.IsClient():
			base = n.cfg.ClientLatency
		default:
			cf, okF := n.locate(from)
			ct, okT := n.locate(to)
			if okF && okT && cf == ct {
				base = n.cfg.IntraClusterLatency
			} else {
				base = n.cfg.CrossClusterLatency
			}
		}
	}
	if n.cfg.JitterFrac > 0 && base > 0 {
		n.rngMu.Lock()
		j := n.rng.Float64() * n.cfg.JitterFrac
		n.rngMu.Unlock()
		base += time.Duration(float64(base) * j)
	}
	return base
}

// linkOccupy serializes one frame of wireBytes onto the directed link
// from → to starting no earlier than at, returning when the last bit leaves
// the sender — the shaped-bandwidth queueing model.
func (n *Network) linkOccupy(from, to types.NodeID, at time.Time, tx time.Duration) time.Time {
	if tx <= 0 {
		return at
	}
	key := [2]types.NodeID{from, to}
	n.busyMu.Lock()
	start := at
	if b := n.linkBusy[key]; b.After(start) {
		start = b
	}
	done := start.Add(tx)
	n.linkBusy[key] = done
	n.busyMu.Unlock()
	return done
}

// wireBytes approximates the frame size of env on a real link: payload,
// signature, and the fixed header/tag overhead of the TCP wire format.
func wireBytes(env *types.Envelope) int {
	return len(env.Payload) + len(env.Sig) + 48
}

// roll returns true with probability p.
func (n *Network) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	n.rngMu.Lock()
	v := n.rng.Float64()
	n.rngMu.Unlock()
	return v < p
}

// Send queues env for delivery to `to`. Drops, duplication, and latency are
// applied per the config; partitioned or crashed destinations receive
// nothing. Send never blocks the caller.
func (n *Network) Send(to types.NodeID, env *types.Envelope) {
	n.stats.Sent.Add(1)
	n.stats.Bytes.Add(int64(len(env.Payload)))
	link := n.Link(to)
	link.Sent.Add(1)
	link.Bytes.Add(int64(len(env.Payload)))

	n.mu.RLock()
	closed := n.closed
	blocked := n.partition[[2]types.NodeID{env.From, to}]
	n.mu.RUnlock()
	shape := n.shapeFor(env.From, to)
	if closed || blocked || n.roll(n.cfg.DropProb) || n.roll(shape.Loss) {
		n.stats.Dropped.Add(1)
		link.Dropped.Add(1)
		return
	}

	// Total delay = sender serialization + shaped link transmission + link
	// latency + receiver serialization: the node's processing core, then the
	// link's bandwidth, then propagation.
	now := time.Now()
	sent := n.occupy(env.From, now)
	sent = n.linkOccupy(env.From, to, sent, shape.TxTime(wireBytes(env)))
	arrival := sent.Add(n.latency(env.From, to))
	done := n.occupy(to, arrival)
	link.Delivered.Add(1)
	link.DelayMicros.Add(done.Sub(now).Microseconds())
	n.deliverAfter(to, env, done.Sub(now))
	if n.roll(n.cfg.DupProb) {
		n.deliverAfter(to, env, done.Sub(now)+n.latency(env.From, to))
	}
}

// queued is one message awaiting its delivery time.
type queued struct {
	due time.Time
	to  types.NodeID
	env *types.Envelope
}

// deliveryHeap orders queued messages by due time.
type deliveryHeap []queued

func (h deliveryHeap) Len() int            { return len(h) }
func (h deliveryHeap) Less(i, j int) bool  { return h[i].due.Before(h[j].due) }
func (h deliveryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deliveryHeap) Push(x interface{}) { *h = append(*h, x.(queued)) }
func (h *deliveryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

func (n *Network) deliverAfter(to types.NodeID, env *types.Envelope, d time.Duration) {
	if d <= 0 {
		n.deliver(to, env)
		return
	}
	n.qMu.Lock()
	heap.Push(&n.queue, queued{due: time.Now().Add(d), to: to, env: env})
	n.qMu.Unlock()
	select {
	case n.qWake <- struct{}{}:
	default:
	}
}

// dispatcher delivers queued messages with sub-millisecond precision.
// Go runtime timers (time.AfterFunc, time.Sleep) round sub-millisecond
// waits up to ~1ms, which would dwarf the configured link latencies, so the
// dispatcher sleeps coarsely only while the next deadline is far away and
// yield-spins across the final stretch.
func (n *Network) dispatcher() {
	for {
		n.qMu.Lock()
		for n.queue.Len() == 0 && !n.qClosed {
			n.qMu.Unlock()
			select {
			case <-n.qWake:
			case <-n.qDone:
				return
			}
			n.qMu.Lock()
		}
		if n.qClosed {
			n.qMu.Unlock()
			return
		}
		now := time.Now()
		var due []queued
		for n.queue.Len() > 0 && !n.queue[0].due.After(now) {
			due = append(due, heap.Pop(&n.queue).(queued))
		}
		var wait time.Duration
		if n.queue.Len() > 0 {
			wait = n.queue[0].due.Sub(now)
		}
		n.qMu.Unlock()
		for _, q := range due {
			n.deliver(q.to, q.env)
		}
		if wait > 2*time.Millisecond {
			time.Sleep(wait - time.Millisecond)
		} else {
			runtime.Gosched()
		}
	}
}

func (n *Network) deliver(to types.NodeID, env *types.Envelope) {
	n.mu.RLock()
	ch, ok := n.inboxes[to]
	dead := n.crashed[to] || n.closed
	n.mu.RUnlock()
	if !ok || dead {
		n.stats.Dropped.Add(1)
		return
	}
	n.ovMu.Lock()
	if n.ovBusy[to] || len(n.overflow[to]) > 0 {
		// The node is backed up (queued messages, or the drainer still has
		// one in flight): append behind them so delivery order is
		// preserved while the drainer catches up. Checking ovBusy matters —
		// the drainer pops a message before sending it, so an empty queue
		// alone does not mean the backlog has fully landed.
		n.spillLocked(to, ch, env)
		n.ovMu.Unlock()
		return
	}
	n.ovMu.Unlock()
	select {
	case ch <- env:
		n.stats.Delivered.Add(1)
	default:
		// Inbox full: spill into the bounded per-node overflow queue; a
		// single drainer goroutine per node feeds it into the inbox in
		// order, so the timer callback never blocks and saturation cannot
		// spawn one goroutine per overflowing message.
		n.ovMu.Lock()
		n.spillLocked(to, ch, env)
		n.ovMu.Unlock()
	}
}

// spillLocked enqueues env on to's overflow queue (dropping when the bound
// is hit) and ensures a drainer goroutine is running. Caller holds ovMu.
func (n *Network) spillLocked(to types.NodeID, ch chan *types.Envelope, env *types.Envelope) {
	if len(n.overflow[to]) >= n.cfg.InboxSize*overflowFactor {
		n.stats.Dropped.Add(1)
		return
	}
	n.overflow[to] = append(n.overflow[to], env)
	if !n.ovBusy[to] {
		n.ovBusy[to] = true
		go n.drainOverflow(to, ch)
	}
}

// drainOverflow pushes to's backed-up messages into its inbox in order,
// exiting when the queue empties or the network shuts down.
func (n *Network) drainOverflow(to types.NodeID, ch chan *types.Envelope) {
	for {
		n.ovMu.Lock()
		q := n.overflow[to]
		if len(q) == 0 {
			n.ovBusy[to] = false
			delete(n.overflow, to)
			n.ovMu.Unlock()
			return
		}
		env := q[0]
		n.overflow[to] = q[1:]
		n.ovMu.Unlock()
		select {
		case ch <- env:
			n.stats.Delivered.Add(1)
		case <-n.qDone:
			return
		}
	}
}

// Multicast sends env to every destination in to (excluding none; callers
// decide whether to include themselves).
func (n *Network) Multicast(to []types.NodeID, env *types.Envelope) {
	for _, id := range to {
		n.Send(id, env)
	}
}
