package transport

import (
	"testing"
	"time"

	"sharper/internal/types"
)

func locateAll(types.NodeID) (types.ClusterID, bool) { return 0, true }

// TestHopOverhead measures real delivery delay vs configured latency.
func TestHopOverhead(t *testing.T) {
	cfg := Config{IntraClusterLatency: 100 * time.Microsecond, InboxSize: 64}
	n := New(cfg, locateAll)
	a, b := types.NodeID(0), types.NodeID(1)
	n.Register(a)
	inboxB := n.Register(b)

	const rounds = 200
	start := time.Now()
	for i := 0; i < rounds; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
		<-inboxB
	}
	per := time.Since(start) / rounds
	t.Logf("per-hop effective delay: %v (configured %v)", per, cfg.IntraClusterLatency)
}

func twoNodes(cfg Config) (*Network, types.NodeID, types.NodeID, <-chan *types.Envelope) {
	n := New(cfg, func(id types.NodeID) (types.ClusterID, bool) {
		return types.ClusterID(uint32(id) % 2), true // nodes 0,2,… in cluster 0; 1,3,… in cluster 1
	})
	a, b := types.NodeID(0), types.NodeID(1)
	n.Register(a)
	return n, a, b, n.Register(b)
}

func TestDeliveryAndStats(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{IntraClusterLatency: 50 * time.Microsecond})
	defer n.Close()
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest, Payload: []byte("hi")})
	env := <-inboxB
	if env.From != a || string(env.Payload) != "hi" {
		t.Fatalf("bad delivery: %+v", env)
	}
	if n.Stats().Sent.Load() != 1 || n.Stats().Delivered.Load() != 1 {
		t.Fatal("stats mismatch")
	}
}

func TestCrashBlocksDelivery(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{})
	defer n.Close()
	n.Crash(b)
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
		t.Fatal("crashed node received a message")
	case <-time.After(20 * time.Millisecond):
	}
	n.Restart(b)
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
	case <-time.After(time.Second):
		t.Fatal("restarted node received nothing")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{})
	defer n.Close()
	n.Partition([]types.NodeID{a}, []types.NodeID{b})
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
		t.Fatal("message crossed the partition")
	case <-time.After(20 * time.Millisecond):
	}
	n.HealPartition()
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
	case <-time.After(time.Second):
		t.Fatal("message lost after heal")
	}
}

// TestPairwiseHeal: two overlapping partitions installed by separate calls
// must be liftable independently — healing the a↔b cut must not reconnect
// a↔c. HealPartition's all-or-nothing semantics can't express that, which is
// what Heal exists for (the partition+equivocation combo scenarios lift one
// cut while keeping the other).
func TestPairwiseHeal(t *testing.T) {
	n := New(Config{}, locateAll)
	defer n.Close()
	a, b, c := types.NodeID(0), types.NodeID(1), types.NodeID(2)
	n.Register(a)
	inboxB := n.Register(b)
	inboxC := n.Register(c)

	n.Partition([]types.NodeID{a}, []types.NodeID{b})
	n.Partition([]types.NodeID{a}, []types.NodeID{c})
	n.Heal([]types.NodeID{a}, []types.NodeID{b})

	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
	case <-time.After(time.Second):
		t.Fatal("healed pair still partitioned")
	}
	n.Send(c, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxC:
		t.Fatal("pairwise heal lifted an unrelated partition")
	case <-time.After(20 * time.Millisecond):
	}
	// Both directions of the healed pair are open.
	inboxA := n.Register(a)
	n.Send(a, &types.Envelope{From: b, Type: types.MsgRequest})
	select {
	case <-inboxA:
	case <-time.After(time.Second):
		t.Fatal("reverse direction still partitioned after heal")
	}
}

func TestDropProbability(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{DropProb: 1.0})
	defer n.Close()
	for i := 0; i < 10; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	}
	select {
	case <-inboxB:
		t.Fatal("message delivered despite DropProb=1")
	case <-time.After(20 * time.Millisecond):
	}
	if n.Stats().Dropped.Load() != 10 {
		t.Fatalf("dropped = %d, want 10", n.Stats().Dropped.Load())
	}
}

func TestDuplication(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{DupProb: 1.0})
	defer n.Close()
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	got := 0
	deadline := time.After(time.Second)
	for got < 2 {
		select {
		case <-inboxB:
			got++
		case <-deadline:
			t.Fatalf("got %d copies, want 2", got)
		}
	}
}

func TestProcessingTimeCapsThroughput(t *testing.T) {
	// With 1ms per message, node b can absorb at most ~1000 msg/s; 100
	// messages must take ≥ ~90ms to deliver fully.
	n, a, b, inboxB := twoNodes(Config{ProcessingTime: time.Millisecond})
	defer n.Close()
	start := time.Now()
	const msgs = 100
	for i := 0; i < msgs; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	}
	for i := 0; i < msgs; i++ {
		<-inboxB
	}
	elapsed := time.Since(start)
	// The sender and receiver charges pipeline, so the batch takes at
	// least ~100ms (one core-second of work at each side, overlapped).
	if elapsed < 90*time.Millisecond {
		t.Fatalf("100 msgs delivered in %v; processing model not enforced", elapsed)
	}
}

func TestCrossClusterSlowerThanIntra(t *testing.T) {
	cfg := Config{
		IntraClusterLatency: 100 * time.Microsecond,
		CrossClusterLatency: 5 * time.Millisecond,
	}
	n := New(cfg, func(id types.NodeID) (types.ClusterID, bool) {
		return types.ClusterID(uint32(id) % 2), true
	})
	defer n.Close()
	a, b, c := types.NodeID(0), types.NodeID(1), types.NodeID(2)
	n.Register(a)
	inboxB := n.Register(b) // other cluster
	inboxC := n.Register(c) // same cluster as a

	start := time.Now()
	n.Send(c, &types.Envelope{From: a, Type: types.MsgRequest})
	<-inboxC
	intra := time.Since(start)

	start = time.Now()
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	<-inboxB
	cross := time.Since(start)

	if cross < 2*intra {
		t.Fatalf("cross-cluster (%v) not noticeably slower than intra (%v)", cross, intra)
	}
}

func TestCloseDropsTraffic(t *testing.T) {
	n, a, b, inboxB := twoNodes(Config{})
	n.Close()
	n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	select {
	case <-inboxB:
		t.Fatal("closed network delivered a message")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestOverflowDrainsInOrder: messages beyond the inbox capacity spill into
// the bounded per-node overflow queue and are delivered in arrival order
// once the receiver starts consuming — saturation must not reorder or
// silently lose traffic the network decided to deliver.
func TestOverflowDrainsInOrder(t *testing.T) {
	const inbox = 8
	n, a, b, inboxB := twoNodes(Config{InboxSize: inbox})
	defer n.Close()

	const total = 3 * inbox // well past the channel capacity
	for i := 0; i < total; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest, Payload: []byte{byte(i)}})
	}
	deadline := time.After(2 * time.Second)
	for i := 0; i < total; i++ {
		select {
		case env := <-inboxB:
			if int(env.Payload[0]) != i {
				t.Fatalf("message %d delivered at position %d", env.Payload[0], i)
			}
		case <-deadline:
			t.Fatalf("only %d of %d messages delivered", i, total)
		}
	}
	if got := n.Stats().Delivered.Load(); got != total {
		t.Fatalf("delivered %d, want %d", got, total)
	}
}

// TestOverflowBounded: a receiver that never drains drops traffic only past
// inbox + overflowFactor×inbox buffered messages, instead of spawning one
// goroutine per overflowing message.
func TestOverflowBounded(t *testing.T) {
	const inbox = 4
	n, a, b, inboxB := twoNodes(Config{InboxSize: inbox})
	defer n.Close()
	_ = inboxB // registered but never consumed

	const total = 10 * inbox
	for i := 0; i < total; i++ {
		n.Send(b, &types.Envelope{From: a, Type: types.MsgRequest})
	}
	// Allow the dispatcher and drainer to settle.
	time.Sleep(50 * time.Millisecond)
	// Buffered at most: inbox (channel) + 1 (drainer in flight) +
	// overflowFactor×inbox (queue); the rest must be counted dropped.
	maxBuffered := int64(inbox + 1 + overflowFactor*inbox)
	dropped := n.Stats().Dropped.Load()
	if dropped < total-maxBuffered {
		t.Fatalf("dropped %d, want ≥ %d (overflow must be bounded)", dropped, total-maxBuffered)
	}
	if delivered := n.Stats().Delivered.Load(); delivered > int64(inbox) {
		t.Fatalf("delivered %d into a never-consumed inbox of %d", delivered, inbox)
	}
}
