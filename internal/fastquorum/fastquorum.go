// Package fastquorum implements the two-phase "fast" replication engines
// the paper benchmarks against (§4, §5): protocols that spend extra
// replicas to drop one communication phase. Fast Paxos [34] reaches crash
// consensus over 3f+1 nodes in two steps (propose, accept) instead of
// Paxos's three, and FaB [40] reaches Byzantine consensus over 5f+1 nodes
// in two steps instead of PBFT's three.
//
// The engine is leader-based: the primary multicasts a proposal and every
// node multicasts an accept; a node decides once it has Q matching accepts,
// where Q = 2f+1 of 3f+1 (Fast Paxos) or 4f+1 of 5f+1 (FaB). Both variants
// share this skeleton and differ only in group size, quorum, and signing.
package fastquorum

import (
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// Config parametrizes the engine.
type Config struct {
	Topology *consensus.Topology
	Cluster  types.ClusterID
	Self     types.NodeID
	// Quorum is the number of matching accepts (including the node's own)
	// required to decide.
	Quorum int
	// Sign enables signatures on every message (FaB).
	Sign     bool
	Signer   crypto.Signer
	Verifier crypto.Verifier
	// Timeout before a backup suspects the primary.
	Timeout time.Duration
	// Obs, when non-nil, receives engine health metrics (view changes,
	// straggler drops, live instance count).
	Obs *obs.EngineMetrics
}

// Engine is one node's state. It satisfies the replica.Engine interface.
type Engine struct {
	cfg  Config
	view uint64

	proposedSeq  uint64
	proposedHead types.Hash

	committedSeq  uint64
	committedHead types.Hash

	instances map[uint64]*instance
	delivered map[uint64]bool

	vcVotes      map[uint64]map[types.NodeID]*types.ViewChange
	viewChanging bool
}

type instance struct {
	digest     types.Hash
	parent     types.Hash
	txs        []*types.Transaction
	view       uint64
	accepts    map[types.NodeID]types.Hash
	sentAccept bool
	committed  bool
	deadline   time.Time
}

// New creates an engine at view 0.
func New(cfg Config, genesis types.Hash) *Engine {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 500 * time.Millisecond
	}
	if cfg.Signer == nil {
		cfg.Signer = crypto.NoopSigner{}
	}
	if cfg.Verifier == nil {
		cfg.Verifier = crypto.NoopSigner{}
	}
	return &Engine{
		cfg:           cfg,
		proposedHead:  genesis,
		committedHead: genesis,
		instances:     make(map[uint64]*instance),
		delivered:     make(map[uint64]bool),
		vcVotes:       make(map[uint64]map[types.NodeID]*types.ViewChange),
	}
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the current primary.
func (e *Engine) Primary() types.NodeID { return e.cfg.Topology.Primary(e.cfg.Cluster, e.view) }

// IsPrimary reports whether this node leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.cfg.Self }

func (e *Engine) members() []types.NodeID { return e.cfg.Topology.Members(e.cfg.Cluster) }

func (e *Engine) sign(p []byte) []byte {
	if !e.cfg.Sign {
		return nil
	}
	return e.cfg.Signer.Sign(p)
}

func (e *Engine) authentic(env *types.Envelope) bool {
	if !e.cfg.Sign {
		return true
	}
	if ok, known := env.Auth(); known {
		return ok // verdict precomputed by the parallel verification pool
	}
	return e.cfg.Verifier.Verify(env.From, env.Payload, env.Sig)
}

// Propose starts consensus on a batch of transactions (primary only).
func (e *Engine) Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64) {
	if !e.IsPrimary() || e.viewChanging || len(txs) == 0 {
		return nil, 0
	}
	seq := e.proposedSeq + 1
	parent := e.proposedHead
	block := &types.Block{Txs: txs, Parents: []types.Hash{parent}}
	digest := types.BatchDigest(txs)

	inst := e.getInstance(seq)
	inst.digest = digest
	inst.parent = parent
	inst.txs = txs
	inst.view = e.view
	inst.deadline = now.Add(e.cfg.Timeout)
	e.proposedSeq = seq
	e.proposedHead = block.Hash()

	msg := &types.ConsensusMsg{
		View: e.view, Seq: seq, Digest: digest, Cluster: e.cfg.Cluster,
		PrevHashes: []types.Hash{parent}, Txs: txs,
	}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To:  others(e.members(), e.cfg.Self),
		Env: &types.Envelope{Type: types.MsgFastPropose, From: e.cfg.Self, Payload: payload, Sig: e.sign(payload)},
	}}
	out = append(out, e.voteAccept(inst, seq)...)
	return out, seq
}

func (e *Engine) getInstance(seq uint64) *instance {
	inst, ok := e.instances[seq]
	if !ok {
		inst = &instance{accepts: make(map[types.NodeID]types.Hash)}
		e.instances[seq] = inst
	}
	return inst
}

// Step consumes one protocol message.
func (e *Engine) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if !e.authentic(env) {
		return nil, nil
	}
	switch env.Type {
	case types.MsgFastPropose:
		return e.onPropose(env, now)
	case types.MsgFastAccept:
		return e.onAccept(env)
	case types.MsgViewChange:
		return e.onViewChange(env)
	case types.MsgNewView:
		return e.onNewView(env)
	default:
		return nil, nil
	}
}

func (e *Engine) onPropose(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.Txs) == 0 || len(m.PrevHashes) != 1 {
		return nil, nil
	}
	if env.From != e.cfg.Topology.Primary(e.cfg.Cluster, m.View) || m.View != e.view {
		return nil, nil
	}
	if m.Digest != types.BatchDigest(m.Txs) {
		return nil, nil
	}
	if m.Seq <= e.committedSeq {
		// Delivered slot: a re-delivered proposal must not resurrect its
		// deleted instance (see pbft.Engine.onPrepare).
		e.cfg.Obs.Stragglers().Inc()
		return nil, nil
	}
	inst := e.getInstance(m.Seq)
	if len(inst.txs) == 0 {
		inst.digest = m.Digest
		inst.parent = m.PrevHashes[0]
		inst.txs = m.Txs
		inst.view = m.View
		inst.deadline = now.Add(e.cfg.Timeout)
	}
	if m.Seq > e.proposedSeq {
		e.proposedSeq = m.Seq
		block := &types.Block{Txs: m.Txs, Parents: []types.Hash{inst.parent}}
		e.proposedHead = block.Hash()
	}
	out := e.voteAccept(inst, m.Seq)
	return out, e.advanceFrom(inst, m.Seq)
}

func (e *Engine) voteAccept(inst *instance, seq uint64) []consensus.Outbound {
	if inst.sentAccept {
		return nil
	}
	inst.sentAccept = true
	inst.accepts[e.cfg.Self] = inst.digest
	m := &types.ConsensusMsg{View: inst.view, Seq: seq, Digest: inst.digest, Cluster: e.cfg.Cluster}
	payload := m.Encode(nil)
	return []consensus.Outbound{{
		To:  others(e.members(), e.cfg.Self),
		Env: &types.Envelope{Type: types.MsgFastAccept, From: e.cfg.Self, Payload: payload, Sig: e.sign(payload)},
	}}
}

func (e *Engine) onAccept(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	if m.Seq <= e.committedSeq {
		e.cfg.Obs.Stragglers().Inc()
		return nil, nil // delivered slot; straggler vote (see pbft.Engine.onPrepare)
	}
	inst := e.getInstance(m.Seq)
	inst.accepts[env.From] = m.Digest
	return nil, e.advanceFrom(inst, m.Seq)
}

func (e *Engine) advanceFrom(inst *instance, seq uint64) []consensus.Decision {
	if len(inst.txs) > 0 && !inst.committed {
		n := 0
		for _, d := range inst.accepts {
			if d == inst.digest {
				n++
			}
		}
		if n >= e.cfg.Quorum {
			inst.committed = true
		}
	}
	var out []consensus.Decision
	for {
		next := e.committedSeq + 1
		in, ok := e.instances[next]
		if !ok || !in.committed || len(in.txs) == 0 || e.delivered[next] {
			return out
		}
		block := &types.Block{Txs: in.txs, Parents: []types.Hash{in.parent}}
		e.delivered[next] = true
		e.committedSeq = next
		e.committedHead = block.Hash()
		out = append(out, consensus.Decision{Block: block, Seq: next})
		delete(e.instances, next)
		e.cfg.Obs.InstGauge().Set(uint64(len(e.instances)))
	}
}

// Tick fires backup timers and triggers a view change on a stuck proposal.
func (e *Engine) Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if e.IsPrimary() || e.viewChanging {
		return nil, nil
	}
	for seq, inst := range e.instances {
		if seq > e.committedSeq && len(inst.txs) > 0 && !inst.committed && now.After(inst.deadline) {
			return e.startViewChange(e.view + 1), nil
		}
	}
	return nil, nil
}

func (e *Engine) startViewChange(newView uint64) []consensus.Outbound {
	e.viewChanging = true
	vc := &types.ViewChange{NewView: newView, Cluster: e.cfg.Cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	e.recordVC(e.cfg.Self, vc)
	payload := vc.Encode(nil)
	return []consensus.Outbound{{
		To:  others(e.members(), e.cfg.Self),
		Env: &types.Envelope{Type: types.MsgViewChange, From: e.cfg.Self, Payload: payload, Sig: e.sign(payload)},
	}}
}

func (e *Engine) recordVC(from types.NodeID, vc *types.ViewChange) {
	m, ok := e.vcVotes[vc.NewView]
	if !ok {
		m = make(map[types.NodeID]*types.ViewChange)
		e.vcVotes[vc.NewView] = m
	}
	m[from] = vc
}

func (e *Engine) onViewChange(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	vc, err := types.DecodeViewChange(env.Payload)
	if err != nil || vc.NewView <= e.view || vc.Cluster != e.cfg.Cluster {
		return nil, nil
	}
	e.recordVC(env.From, vc)
	votes := e.vcVotes[vc.NewView]
	f := e.cfg.Topology.F(e.cfg.Cluster)

	var out []consensus.Outbound
	if !e.viewChanging && len(votes) >= f+1 {
		out = append(out, e.startViewChange(vc.NewView)...)
		votes = e.vcVotes[vc.NewView]
	}
	if e.cfg.Topology.Primary(e.cfg.Cluster, vc.NewView) != e.cfg.Self {
		return out, nil
	}
	if len(votes) < e.cfg.Quorum {
		return out, nil
	}
	nv := &types.ViewChange{NewView: vc.NewView, Cluster: e.cfg.Cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	payload := nv.Encode(nil)
	out = append(out, consensus.Outbound{
		To:  others(e.members(), e.cfg.Self),
		Env: &types.Envelope{Type: types.MsgNewView, From: e.cfg.Self, Payload: payload, Sig: e.sign(payload)},
	})
	e.installView(vc.NewView)
	return out, nil
}

func (e *Engine) onNewView(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	nv, err := types.DecodeViewChange(env.Payload)
	if err != nil || nv.NewView < e.view || nv.Cluster != e.cfg.Cluster {
		return nil, nil
	}
	if env.From != e.cfg.Topology.Primary(e.cfg.Cluster, nv.NewView) {
		return nil, nil
	}
	e.installView(nv.NewView)
	return nil, nil
}

func (e *Engine) installView(v uint64) {
	if v <= e.view {
		e.viewChanging = false
		return
	}
	e.view = v
	e.viewChanging = false
	e.cfg.Obs.VC().Inc()
	e.proposedSeq = e.committedSeq
	e.proposedHead = e.committedHead
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed {
			delete(e.instances, seq)
		}
	}
	e.cfg.Obs.InstGauge().Set(uint64(len(e.instances)))
}

func others(members []types.NodeID, self types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// SuspectPrimary votes to depose the current primary. The runtime calls it
// when a forwarded client request goes unexecuted past its timeout — the
// PBFT rule that lets a cluster recover from a primary that fails while
// holding no in-flight proposals.
func (e *Engine) SuspectPrimary(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	_ = now
	return e.startViewChange(e.view + 1)
}
