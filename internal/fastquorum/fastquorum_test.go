package fastquorum

import (
	"testing"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/ledger"
	"sharper/internal/types"
)

type harness struct {
	t       *testing.T
	topo    *consensus.Topology
	engines map[types.NodeID]*Engine
	queue   []routed
	decided map[types.NodeID][]consensus.Decision
	drop    func(to types.NodeID) bool
	now     time.Time
}

type routed struct {
	to  types.NodeID
	env *types.Envelope
}

// newHarness builds a Fast Paxos-like group: size nodes, quorum q.
func newHarness(t *testing.T, size, f, q int) *harness {
	members := make([]types.NodeID, size)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	topo := &consensus.Topology{
		Model: types.CrashOnly,
		Clusters: map[types.ClusterID]consensus.Cluster{
			0: {ID: 0, F: f, Members: members},
		},
	}
	h := &harness{
		t:       t,
		topo:    topo,
		engines: make(map[types.NodeID]*Engine),
		decided: make(map[types.NodeID][]consensus.Decision),
		now:     time.Unix(0, 0),
	}
	for _, id := range members {
		h.engines[id] = New(Config{
			Topology: topo, Cluster: 0, Self: id, Quorum: q,
			Timeout: 100 * time.Millisecond,
		}, ledger.GenesisHash())
	}
	return h
}

func (h *harness) sendAll(outs []consensus.Outbound) {
	for _, o := range outs {
		for _, to := range o.To {
			if h.drop != nil && h.drop(to) {
				continue
			}
			h.queue = append(h.queue, routed{to: to, env: o.Env})
		}
	}
}

func (h *harness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		outs, decs := h.engines[m.to].Step(m.env, h.now)
		h.sendAll(outs)
		h.decided[m.to] = append(h.decided[m.to], decs...)
	}
}

func tx(seq uint64) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: types.ClientIDBase + 1, Seq: seq},
		Client:   types.ClientIDBase + 1,
		Ops:      []types.Op{{From: 0, To: 1, Amount: 1}},
		Involved: types.ClusterSet{0},
	}
}

func TestTwoPhaseCommit(t *testing.T) {
	h := newHarness(t, 4, 1, 3) // Fast Paxos: 3f+1 nodes, quorum 2f+1
	outs, _ := h.engines[0].Propose([]*types.Transaction{tx(1)}, h.now)
	h.sendAll(outs)
	h.pump()
	for id, decs := range h.decided {
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d, want 1", id, len(decs))
		}
	}
}

func TestCommitWithFSilent(t *testing.T) {
	h := newHarness(t, 4, 1, 3)
	h.drop = func(to types.NodeID) bool { return to == 3 }
	outs, _ := h.engines[0].Propose([]*types.Transaction{tx(1)}, h.now)
	h.sendAll(outs)
	h.pump()
	for id, decs := range h.decided {
		if id == 3 {
			continue
		}
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d, want 1", id, len(decs))
		}
	}
}

func TestNoCommitBelowQuorum(t *testing.T) {
	h := newHarness(t, 6, 1, 5) // FaB sizing: 5f+1, quorum 4f+1
	// Two nodes silent: only 4 < 5 accepts can gather.
	h.drop = func(to types.NodeID) bool { return to == 4 || to == 5 }
	outs, _ := h.engines[0].Propose([]*types.Transaction{tx(1)}, h.now)
	h.sendAll(outs)
	h.pump()
	for id, decs := range h.decided {
		if len(decs) != 0 {
			t.Fatalf("node %s decided with %d silent nodes beyond f", id, len(decs))
		}
	}
}

func TestSequentialDecisions(t *testing.T) {
	h := newHarness(t, 4, 1, 3)
	for i := uint64(1); i <= 5; i++ {
		outs, _ := h.engines[0].Propose([]*types.Transaction{tx(i)}, h.now)
		h.sendAll(outs)
	}
	h.pump()
	for id, decs := range h.decided {
		if len(decs) != 5 {
			t.Fatalf("node %s decided %d, want 5", id, len(decs))
		}
		for i, d := range decs {
			if d.Seq != uint64(i+1) {
				t.Fatalf("node %s out of order at %d", id, i)
			}
		}
	}
}

func TestViewChangeViaSuspicion(t *testing.T) {
	h := newHarness(t, 4, 1, 3)
	old := h.topo.Primary(0, 0)
	h.drop = func(to types.NodeID) bool { return to == old }
	for _, id := range h.topo.Members(0) {
		if id == old {
			continue
		}
		h.sendAll(h.engines[id].SuspectPrimary(h.now))
	}
	h.pump()
	for id, e := range h.engines {
		if id == old {
			continue
		}
		if e.View() != 1 {
			t.Fatalf("node %s in view %d, want 1", id, e.View())
		}
	}
}
