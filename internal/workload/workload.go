// Package workload generates the §4 accounting workloads: a configurable
// percentage of cross-shard transactions (0%, 10%, 20%, 80%, 100% in the
// paper), a configurable number of involved shards per cross-shard
// transaction (two in the paper), and account selection with optional skew.
// The load is spread evenly across clusters ("the load is equally
// distributed among all the nodes", §4.1).
package workload

import (
	"math/rand"

	"sharper/internal/state"
	"sharper/internal/types"
)

// Config describes a workload mix.
type Config struct {
	// Shards is the deployment's shard map.
	Shards state.ShardMap
	// AccountsPerShard bounds account selection (must match the seeded
	// genesis state).
	AccountsPerShard int
	// CrossShardPct is the percentage (0–100) of cross-shard transactions.
	CrossShardPct int
	// ShardsPerCross is how many distinct shards a cross-shard transaction
	// touches (the paper uses 2).
	ShardsPerCross int
	// Amount transferred per op.
	Amount int64
	// Zipf skews account selection within a shard when > 0 (s parameter of
	// a Zipf distribution); 0 selects uniformly.
	Zipf float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Generator produces transaction op-lists. It is not safe for concurrent
// use; give each client goroutine its own (Split).
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	next int // round-robin home cluster to spread the load evenly
}

// New validates the configuration and builds a generator.
func New(cfg Config) *Generator {
	if cfg.ShardsPerCross < 2 {
		cfg.ShardsPerCross = 2
	}
	if cfg.ShardsPerCross > cfg.Shards.NumShards {
		cfg.ShardsPerCross = cfg.Shards.NumShards
	}
	if cfg.AccountsPerShard <= 1 {
		cfg.AccountsPerShard = 2
	}
	if cfg.Amount == 0 {
		cfg.Amount = 1
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, uint64(cfg.AccountsPerShard-1))
	}
	return g
}

// Split derives an independent generator with a decorrelated seed, for
// handing one to each client goroutine.
func (g *Generator) Split(i int) *Generator {
	cfg := g.cfg
	cfg.Seed = g.cfg.Seed*7919 + int64(i)*104729 + 1
	return New(cfg)
}

// pickAccount selects account index k within a shard.
func (g *Generator) pickAccount(c types.ClusterID) types.AccountID {
	var k uint64
	if g.zipf != nil {
		k = g.zipf.Uint64()
	} else {
		k = uint64(g.rng.Intn(g.cfg.AccountsPerShard))
	}
	return g.cfg.Shards.AccountInShard(c, k)
}

// pickDistinct selects account index k' ≠ avoiding collision with from.
func (g *Generator) pickDistinct(c types.ClusterID, from types.AccountID) types.AccountID {
	for i := 0; i < 8; i++ {
		to := g.pickAccount(c)
		if to != from {
			return to
		}
	}
	// Fall back to a deterministic neighbour.
	return g.cfg.Shards.AccountInShard(c, (uint64(from)/uint64(g.cfg.Shards.NumShards)+1)%uint64(g.cfg.AccountsPerShard))
}

// Next returns the ops of the next transaction in the stream.
func (g *Generator) Next() []types.Op {
	n := g.cfg.Shards.NumShards
	home := types.ClusterID(g.next % n)
	g.next++

	cross := g.rng.Intn(100) < g.cfg.CrossShardPct && n > 1
	if !cross {
		from := g.pickAccount(home)
		return []types.Op{{From: from, To: g.pickDistinct(home, from), Amount: g.cfg.Amount}}
	}

	// Choose ShardsPerCross distinct random shards (§4.1: "two (randomly
	// chosen) shards are involved in each cross-shard transaction").
	shards := g.rng.Perm(n)[:g.cfg.ShardsPerCross]
	ops := make([]types.Op, 0, len(shards)-1)
	for i := 0; i+1 < len(shards); i++ {
		from := g.pickAccount(types.ClusterID(shards[i]))
		to := g.pickAccount(types.ClusterID(shards[i+1]))
		ops = append(ops, types.Op{From: from, To: to, Amount: g.cfg.Amount})
	}
	return ops
}

// IsCross reports whether the op-list spans multiple shards, for callers
// that track the realized mix.
func (g *Generator) IsCross(ops []types.Op) bool {
	return len(g.cfg.Shards.Involved(ops)) > 1
}

// NumShards returns the shard count the generator produces accounts for.
func (g *Generator) NumShards() int { return g.cfg.Shards.NumShards }
