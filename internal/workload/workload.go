// Package workload generates the §4 accounting workloads: a configurable
// percentage of cross-shard transactions (0%, 10%, 20%, 80%, 100% in the
// paper), a configurable number of involved shards per cross-shard
// transaction (two in the paper), and account selection with optional skew.
// The load is spread evenly across clusters ("the load is equally
// distributed among all the nodes", §4.1).
package workload

import (
	"math/rand"

	"sharper/internal/state"
	"sharper/internal/types"
)

// CrossSetMode selects how a cross-shard transaction's involved-cluster set
// is chosen — the paper's "with/without overlapping clusters" axis. Disjoint
// sets are what SharPer processes in parallel (§3.2); overlapping sets
// serialize through the shared cluster's chain, so benchmarks and stress
// tests dial contention with this knob.
type CrossSetMode int

const (
	// SetsRandom picks ShardsPerCross distinct shards uniformly (the §4.1
	// default: "two (randomly chosen) shards").
	SetsRandom CrossSetMode = iota
	// SetsDisjoint partitions the shards into fixed ⌊n/k⌋ groups
	// ({0..k-1}, {k..2k-1}, …) and round-robins between them: concurrent
	// cross-shard transactions conflict only within their own group.
	SetsDisjoint
	// SetsOverlapping pivots every set on cluster 0 plus rotating others:
	// maximal contention, every cross-shard transaction fights for the
	// pivot cluster's chain.
	SetsOverlapping
	// SetsMixed picks SetsOverlapping with probability OverlapPct (percent)
	// and SetsDisjoint otherwise.
	SetsMixed
)

// Config describes a workload mix.
type Config struct {
	// Shards is the deployment's shard map.
	Shards state.ShardMap
	// AccountsPerShard bounds account selection (must match the seeded
	// genesis state).
	AccountsPerShard int
	// CrossShardPct is the percentage (0–100) of cross-shard transactions.
	CrossShardPct int
	// ShardsPerCross is how many distinct shards a cross-shard transaction
	// touches (the paper uses 2).
	ShardsPerCross int
	// CrossSets selects the involved-cluster-set mode (default SetsRandom).
	CrossSets CrossSetMode
	// OverlapPct is the percentage (0–100) of overlapping-set cross-shard
	// transactions under SetsMixed.
	OverlapPct int
	// Amount transferred per op.
	Amount int64
	// Zipf skews account selection within a shard when > 0 (s parameter of
	// a Zipf distribution); 0 selects uniformly.
	Zipf float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Generator produces transaction op-lists. It is not safe for concurrent
// use; give each client goroutine its own (Split).
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
	next int // round-robin home cluster to spread the load evenly
	// nextGroup round-robins the disjoint-mode group and the overlapping
	// mode's rotating partners.
	nextGroup int
}

// New validates the configuration and builds a generator.
func New(cfg Config) *Generator {
	if cfg.ShardsPerCross < 2 {
		cfg.ShardsPerCross = 2
	}
	if cfg.ShardsPerCross > cfg.Shards.NumShards {
		cfg.ShardsPerCross = cfg.Shards.NumShards
	}
	if cfg.AccountsPerShard <= 1 {
		cfg.AccountsPerShard = 2
	}
	if cfg.Amount == 0 {
		cfg.Amount = 1
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Zipf > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.Zipf, 1, uint64(cfg.AccountsPerShard-1))
	}
	return g
}

// Split derives an independent generator with a decorrelated seed, for
// handing one to each client goroutine.
func (g *Generator) Split(i int) *Generator {
	cfg := g.cfg
	cfg.Seed = g.cfg.Seed*7919 + int64(i)*104729 + 1
	return New(cfg)
}

// pickAccount selects account index k within a shard.
func (g *Generator) pickAccount(c types.ClusterID) types.AccountID {
	var k uint64
	if g.zipf != nil {
		k = g.zipf.Uint64()
	} else {
		k = uint64(g.rng.Intn(g.cfg.AccountsPerShard))
	}
	return g.cfg.Shards.AccountInShard(c, k)
}

// pickDistinct selects account index k' ≠ avoiding collision with from.
func (g *Generator) pickDistinct(c types.ClusterID, from types.AccountID) types.AccountID {
	for i := 0; i < 8; i++ {
		to := g.pickAccount(c)
		if to != from {
			return to
		}
	}
	// Fall back to a deterministic neighbour.
	return g.cfg.Shards.AccountInShard(c, (uint64(from)/uint64(g.cfg.Shards.NumShards)+1)%uint64(g.cfg.AccountsPerShard))
}

// Next returns the ops of the next transaction in the stream.
func (g *Generator) Next() []types.Op {
	n := g.cfg.Shards.NumShards
	home := types.ClusterID(g.next % n)
	g.next++

	cross := g.rng.Intn(100) < g.cfg.CrossShardPct && n > 1
	if !cross {
		from := g.pickAccount(home)
		return []types.Op{{From: from, To: g.pickDistinct(home, from), Amount: g.cfg.Amount}}
	}

	shards := g.pickCrossSet(n)
	ops := make([]types.Op, 0, len(shards)-1)
	for i := 0; i+1 < len(shards); i++ {
		from := g.pickAccount(types.ClusterID(shards[i]))
		to := g.pickAccount(types.ClusterID(shards[i+1]))
		ops = append(ops, types.Op{From: from, To: to, Amount: g.cfg.Amount})
	}
	return ops
}

// pickCrossSet chooses the involved shards of one cross-shard transaction
// per the configured set mode.
func (g *Generator) pickCrossSet(n int) []int {
	k := g.cfg.ShardsPerCross
	mode := g.cfg.CrossSets
	if mode == SetsMixed {
		if g.rng.Intn(100) < g.cfg.OverlapPct {
			mode = SetsOverlapping
		} else {
			mode = SetsDisjoint
		}
	}
	switch mode {
	case SetsDisjoint:
		groups := n / k
		if groups < 1 {
			groups = 1
		}
		gi := g.nextGroup % groups
		g.nextGroup++
		shards := make([]int, 0, k)
		for i := 0; i < k; i++ {
			shards = append(shards, (gi*k+i)%n)
		}
		return shards
	case SetsOverlapping:
		// Pivot on shard 0 plus k-1 rotating partners from 1..n-1.
		shards := make([]int, 0, k)
		shards = append(shards, 0)
		for i := 0; i < k-1 && len(shards) < n; i++ {
			shards = append(shards, 1+(g.nextGroup+i)%(n-1))
		}
		g.nextGroup++
		return shards
	default:
		// §4.1: "two (randomly chosen) shards are involved in each
		// cross-shard transaction".
		return g.rng.Perm(n)[:k]
	}
}

// IsCross reports whether the op-list spans multiple shards, for callers
// that track the realized mix.
func (g *Generator) IsCross(ops []types.Op) bool {
	return len(g.cfg.Shards.Involved(ops)) > 1
}

// NumShards returns the shard count the generator produces accounts for.
func (g *Generator) NumShards() int { return g.cfg.Shards.NumShards }
