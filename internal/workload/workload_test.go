package workload

import (
	"testing"

	"sharper/internal/state"
	"sharper/internal/types"
)

func setOf(t *testing.T, shards state.ShardMap, ops []types.Op) types.ClusterSet {
	t.Helper()
	return shards.Involved(ops)
}

func TestCrossSetModes(t *testing.T) {
	shards := state.ShardMap{NumShards: 4}
	base := Config{
		Shards: shards, AccountsPerShard: 64, CrossShardPct: 100,
		ShardsPerCross: 2, Seed: 11,
	}

	t.Run("disjoint", func(t *testing.T) {
		cfg := base
		cfg.CrossSets = SetsDisjoint
		g := New(cfg)
		want := []types.ClusterSet{types.NewClusterSet(0, 1), types.NewClusterSet(2, 3)}
		seen := map[string]int{}
		for i := 0; i < 100; i++ {
			set := setOf(t, shards, g.Next())
			ok := false
			for _, w := range want {
				if set.Equal(w) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("disjoint mode produced set %s", set)
			}
			seen[set.String()]++
		}
		if len(seen) != 2 {
			t.Fatalf("disjoint mode used %d groups, want 2", len(seen))
		}
	})

	t.Run("overlapping", func(t *testing.T) {
		cfg := base
		cfg.CrossSets = SetsOverlapping
		g := New(cfg)
		partners := map[types.ClusterID]bool{}
		for i := 0; i < 100; i++ {
			set := setOf(t, shards, g.Next())
			if !set.Contains(0) {
				t.Fatalf("overlapping mode produced pivot-free set %s", set)
			}
			for _, c := range set {
				if c != 0 {
					partners[c] = true
				}
			}
		}
		if len(partners) != 3 {
			t.Fatalf("overlapping mode rotated over %d partners, want 3", len(partners))
		}
	})

	t.Run("mixed", func(t *testing.T) {
		cfg := base
		cfg.CrossSets = SetsMixed
		cfg.OverlapPct = 50
		g := New(cfg)
		overlap, disjoint := 0, 0
		for i := 0; i < 400; i++ {
			set := setOf(t, shards, g.Next())
			if set.Contains(0) && !set.Equal(types.NewClusterSet(0, 1)) {
				overlap++
			} else {
				disjoint++
			}
		}
		if overlap == 0 || disjoint == 0 {
			t.Fatalf("mixed mode not mixing: overlap=%d disjoint=%d", overlap, disjoint)
		}
	})

	t.Run("random-default", func(t *testing.T) {
		g := New(base) // SetsRandom zero value
		distinct := map[string]bool{}
		for i := 0; i < 200; i++ {
			distinct[setOf(t, shards, g.Next()).String()] = true
		}
		if len(distinct) < 4 {
			t.Fatalf("random mode produced only %d distinct sets", len(distinct))
		}
	})
}

func gen(crossPct int) *Generator {
	return New(Config{
		Shards:           state.ShardMap{NumShards: 4},
		AccountsPerShard: 64,
		CrossShardPct:    crossPct,
		ShardsPerCross:   2,
		Seed:             9,
	})
}

func TestMixPercentage(t *testing.T) {
	for _, pct := range []int{0, 20, 80, 100} {
		g := gen(pct)
		cross := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if g.IsCross(g.Next()) {
				cross++
			}
		}
		got := 100 * cross / n
		if got < pct-5 || got > pct+5 {
			t.Errorf("cross pct %d: realized %d%%", pct, got)
		}
	}
}

func TestIntraOpsStayInOneShard(t *testing.T) {
	g := gen(0)
	shards := state.ShardMap{NumShards: 4}
	for i := 0; i < 500; i++ {
		ops := g.Next()
		if len(shards.Involved(ops)) != 1 {
			t.Fatalf("intra workload produced cross-shard ops: %v", ops)
		}
		if ops[0].From == ops[0].To {
			t.Fatalf("self transfer: %v", ops[0])
		}
	}
}

func TestCrossOpsSpanExactlyTwoShards(t *testing.T) {
	g := gen(100)
	shards := state.ShardMap{NumShards: 4}
	for i := 0; i < 500; i++ {
		ops := g.Next()
		if got := len(shards.Involved(ops)); got != 2 {
			t.Fatalf("cross tx spans %d shards, want 2: %v", got, ops)
		}
	}
}

func TestDeterministicStream(t *testing.T) {
	a, b := gen(50), gen(50)
	for i := 0; i < 100; i++ {
		opsA, opsB := a.Next(), b.Next()
		if len(opsA) != len(opsB) {
			t.Fatal("streams diverged in length")
		}
		for j := range opsA {
			if opsA[j] != opsB[j] {
				t.Fatalf("streams diverged at %d", i)
			}
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	g := gen(50)
	a, b := g.Split(1), g.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		opsA, opsB := a.Next(), b.Next()
		if len(opsA) == len(opsB) && opsA[0] == opsB[0] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("split streams correlated: %d/100 identical", same)
	}
}

func TestHomeClusterRoundRobin(t *testing.T) {
	g := gen(0)
	shards := state.ShardMap{NumShards: 4}
	counts := make(map[int]int)
	for i := 0; i < 400; i++ {
		ops := g.Next()
		counts[int(shards.Cluster(ops[0].From))]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 100 {
			t.Fatalf("cluster %d got %d txs, want 100 (even spread)", c, counts[c])
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := New(Config{
		Shards:           state.ShardMap{NumShards: 1},
		AccountsPerShard: 64,
		Zipf:             1.5,
		Seed:             3,
	})
	counts := make(map[uint64]int)
	shards := state.ShardMap{NumShards: 1}
	for i := 0; i < 2000; i++ {
		ops := g.Next()
		counts[uint64(ops[0].From)/uint64(shards.NumShards)]++
	}
	// Rank-0 account must dominate under heavy skew.
	if counts[0] < 400 {
		t.Fatalf("zipf skew too weak: rank-0 count %d", counts[0])
	}
}
