// Package fab builds the FaB baseline of §4: Fast Byzantine consensus [40]
// uses 5f+1 nodes to reach agreement in two communication phases instead of
// PBFT's three; the remaining nodes are passive replicas.
package fab

import (
	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/fastquorum"
	"sharper/internal/ledger"
	"sharper/internal/replica"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// New builds a FaB deployment: total nodes, 5f+1 active, quorum 4f+1.
func New(total, f int, net transport.Config, seed int64) (*replica.Deployment, error) {
	return replica.NewDeployment(replica.Config{
		Model:      types.Byzantine,
		ActiveSize: 5*f + 1,
		TotalNodes: total,
		F:          f,
		Network:    net,
		Sign:       true,
		Seed:       seed,
		Factory: func(topo *consensus.Topology, self types.NodeID,
			signer crypto.Signer, verifier crypto.Verifier) replica.Engine {
			return fastquorum.New(fastquorum.Config{
				Topology: topo, Cluster: 0, Self: self,
				Quorum: 4*f + 1,
				Sign:   true, Signer: signer, Verifier: verifier,
			}, ledger.GenesisHash())
		},
	})
}
