package adversary

import (
	"math/rand"
	"testing"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// rig: one byz cluster of 4 (nodes 0–3) plus a second cluster (4–7) for the
// cross-shard cells, over a simulated fabric wrapped for every node.
type rig struct {
	topo *consensus.Topology
	kr   *crypto.Keyring
	adv  *Adversary
	net  *transport.Network
	fabs map[types.NodeID]transport.Fabric
	in   map[types.NodeID]<-chan *types.Envelope
}

func newRig(t *testing.T) *rig {
	t.Helper()
	topo := consensus.UniformTopology(types.Byzantine, 2, 1)
	kr := crypto.NewKeyring()
	rng := rand.New(rand.NewSource(7))
	for _, id := range topo.AllNodes() {
		if err := kr.Generate(id, rng); err != nil {
			t.Fatal(err)
		}
	}
	net := transport.New(transport.Config{}, func(id types.NodeID) (types.ClusterID, bool) {
		return topo.ClusterOf(id)
	})
	t.Cleanup(net.Close)
	r := &rig{topo: topo, kr: kr, adv: New(topo), net: net,
		fabs: make(map[types.NodeID]transport.Fabric),
		in:   make(map[types.NodeID]<-chan *types.Envelope)}
	for _, id := range topo.AllNodes() {
		r.fabs[id] = r.adv.Wrap(id, net)
		r.in[id] = r.fabs[id].Register(id)
	}
	return r
}

func (r *rig) signer(t *testing.T, id types.NodeID) crypto.Signer {
	t.Helper()
	s, err := r.kr.SignerFor(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (r *rig) signed(t *testing.T, typ types.MsgType, from types.NodeID, m *types.ConsensusMsg) *types.Envelope {
	t.Helper()
	payload := m.Encode(nil)
	return &types.Envelope{Type: typ, From: from, Payload: payload, Sig: r.signer(t, from).Sign(payload)}
}

// drain collects n envelopes for id or fails.
func (r *rig) drain(t *testing.T, id types.NodeID, n int, timeout time.Duration) []*types.Envelope {
	t.Helper()
	var out []*types.Envelope
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case env := <-r.in[id]:
			out = append(out, env)
		case <-deadline:
			t.Fatalf("node %d received %d of %d envelopes", id, len(out), n)
		}
	}
	return out
}

func (r *rig) assertQuiet(t *testing.T, id types.NodeID) {
	t.Helper()
	select {
	case env := <-r.in[id]:
		t.Fatalf("node %d unexpectedly received %s", id, env.Type)
	case <-time.After(20 * time.Millisecond):
	}
}

func tx(seq uint64) *types.Transaction {
	return &types.Transaction{
		ID: types.TxID{Client: types.ClientIDBase, Seq: seq}, Client: types.ClientIDBase,
		Ops: []types.Op{{From: 1, To: 2, Amount: int64(seq)}}, Involved: types.NewClusterSet(0),
	}
}

// TestEquivocateWitnessOverlap: the two conflicting variants go to
// overlapping halves; the witness in the overlap receives both, every
// signature is valid, and the two digests differ while binding one slot.
func TestEquivocateWitnessOverlap(t *testing.T) {
	r := newRig(t)
	r.adv.Compromise(0, r.signer(t, 0), Rule{Kind: Equivocate})
	txs := []*types.Transaction{tx(1), tx(2)}
	m := &types.ConsensusMsg{View: 0, Seq: 1, Digest: types.BatchDigest(txs), Cluster: 0, Txs: txs}
	r.fabs[0].Multicast([]types.NodeID{1, 2, 3}, r.signed(t, types.MsgPrePrepare, 0, m))

	witness := r.drain(t, 2, 2, time.Second) // to[1] sits in both halves
	d := make(map[types.Hash]bool)
	for _, env := range witness {
		dm, err := types.DecodeConsensusMsg(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if dm.View != 0 || dm.Seq != 1 {
			t.Fatalf("variant rebound the slot: view=%d seq=%d", dm.View, dm.Seq)
		}
		if !r.kr.Verify(env.From, env.Payload, env.Sig) {
			t.Fatal("variant signature invalid")
		}
		if len(dm.Txs) < 2 || types.BatchDigest(dm.Txs) != dm.Digest {
			t.Fatal("multi-tx variant is not a valid proposal")
		}
		d[dm.Digest] = true
	}
	if len(d) != 2 {
		t.Fatalf("witness saw %d distinct digests, want 2", len(d))
	}
	one := r.drain(t, 1, 1, time.Second)[0] // first half: original only
	r.assertQuiet(t, 1)
	if dm, _ := types.DecodeConsensusMsg(one.Payload); dm.Digest != m.Digest {
		t.Fatal("first half did not receive the original")
	}
	if r.adv.Applied(0, Equivocate) == 0 {
		t.Fatal("equivocation not logged")
	}
}

func TestWithholdAndReplay(t *testing.T) {
	r := newRig(t)
	r.adv.Compromise(1, r.signer(t, 1),
		Rule{Kind: Withhold, Types: []types.MsgType{types.MsgPrepare}, Victims: []types.NodeID{3}},
		Rule{Kind: Replay, Types: []types.MsgType{types.MsgCommit}},
	)
	prep := r.signed(t, types.MsgPrepare, 1, &types.ConsensusMsg{View: 0, Seq: 1, Cluster: 0})
	r.fabs[1].Multicast([]types.NodeID{0, 2, 3}, prep)
	r.drain(t, 0, 1, time.Second)
	r.drain(t, 2, 1, time.Second)
	r.assertQuiet(t, 3) // victim starved of the prepare

	com := r.signed(t, types.MsgCommit, 1, &types.ConsensusMsg{View: 0, Seq: 1, Cluster: 0})
	r.fabs[1].Send(0, com)
	got := r.drain(t, 0, 2, time.Second)
	if string(got[0].Payload) != string(got[1].Payload) {
		t.Fatal("replayed copies differ")
	}

	// An honest node through the same wrapper is untouched.
	r.fabs[2].Send(3, r.signed(t, types.MsgPrepare, 2, &types.ConsensusMsg{View: 0, Seq: 1, Cluster: 0}))
	r.drain(t, 3, 1, time.Second)
}

// TestStarveScopesToForeignClusters: a starved XPropose reaches only the
// offender's own cluster (which will grant and lock), never the other
// involved cluster; the withdrawal XAbort is suppressed; and once Limit
// rounds are exhausted the proposal flows everywhere again.
func TestStarveScopesToForeignClusters(t *testing.T) {
	r := newRig(t)
	r.adv.Compromise(0, r.signer(t, 0), Rule{Kind: Starve, Limit: 2})
	all := []types.NodeID{1, 2, 3, 4, 5, 6, 7}
	xp := r.signed(t, types.MsgXPropose, 0, &types.ConsensusMsg{View: 0, Seq: 1, Cluster: 0})
	r.fabs[0].Multicast(all, xp) // round 1: starved
	for _, id := range []types.NodeID{1, 2, 3} {
		r.drain(t, id, 1, time.Second)
	}
	for _, id := range []types.NodeID{4, 5, 6, 7} {
		r.assertQuiet(t, id)
	}
	// The withdrawal is suppressed while rounds remain — locks must ride
	// out the timeout.
	r.fabs[0].Send(4, r.signed(t, types.MsgXAbort, 0, &types.ConsensusMsg{View: 0, Seq: 1, Cluster: 0}))
	r.assertQuiet(t, 4)

	r.fabs[0].Multicast(all, xp) // round 2: starved, budget exhausted
	for _, id := range []types.NodeID{1, 2, 3} {
		r.drain(t, id, 1, time.Second)
	}
	r.assertQuiet(t, 4)

	r.fabs[0].Multicast(all, xp) // round 3 goes through everywhere
	for _, id := range all {
		r.drain(t, id, 1, time.Second)
	}
}

// TestVCSpamEmitsConflictingPairs: the spam pair carries two different chain
// heads for one height under valid signatures — exactly what the slasher's
// view-change detector slashes.
func TestVCSpamEmitsConflictingPairs(t *testing.T) {
	r := newRig(t)
	r.adv.Compromise(3, r.signer(t, 3), Rule{Kind: VCSpam, Limit: 1})
	for i := 0; i < 4; i++ { // cadence: one pair per 4 trigger sends
		r.fabs[3].Send(0, r.signed(t, types.MsgPrepare, 3, &types.ConsensusMsg{View: 0, Seq: uint64(i), Cluster: 0}))
	}
	var spam []*types.Envelope
	for _, env := range r.drain(t, 0, 6, time.Second) { // 4 prepares + 2 spam
		if env.Type == types.MsgViewChange {
			spam = append(spam, env)
		}
	}
	if len(spam) != 2 {
		t.Fatalf("got %d view-change spam envelopes, want 2", len(spam))
	}
	heads := make(map[types.Hash]bool)
	for _, env := range spam {
		if !r.kr.Verify(env.From, env.Payload, env.Sig) {
			t.Fatal("spam signature invalid")
		}
		vc, err := types.DecodeViewChange(env.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if vc.LastSeq != 0 {
			t.Fatalf("spam claims height %d, want 0", vc.LastSeq)
		}
		heads[vc.LastHash] = true
	}
	if len(heads) != 2 {
		t.Fatal("spam pair does not conflict")
	}
}

// TestTamperKeepsSignatureValid: the corrupted digest still verifies — the
// attack must get past authentication to test the digest check.
func TestTamperKeepsSignatureValid(t *testing.T) {
	r := newRig(t)
	r.adv.Compromise(0, r.signer(t, 0), Rule{Kind: Tamper, Victims: []types.NodeID{1}})
	txs := []*types.Transaction{tx(1)}
	m := &types.ConsensusMsg{View: 0, Seq: 1, Digest: types.BatchDigest(txs), Cluster: 0, Txs: txs}
	r.fabs[0].Multicast([]types.NodeID{1, 2}, r.signed(t, types.MsgPrePrepare, 0, m))

	tampered := r.drain(t, 1, 1, time.Second)[0]
	if !r.kr.Verify(tampered.From, tampered.Payload, tampered.Sig) {
		t.Fatal("tampered envelope must carry a valid signature")
	}
	dm, err := types.DecodeConsensusMsg(tampered.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if dm.Digest == m.Digest || dm.Digest == types.BatchDigest(dm.Txs) {
		t.Fatal("digest not corrupted")
	}
	clean := r.drain(t, 2, 1, time.Second)[0]
	if dm2, _ := types.DecodeConsensusMsg(clean.Payload); dm2.Digest != m.Digest {
		t.Fatal("non-victim received a tampered envelope")
	}
}
