// Package adversary is the attack injector: a transport.Fabric decorator
// that turns up to f nodes per cluster Byzantine at the fabric boundary.
// Because it wraps the Fabric interface rather than any engine, the same
// attack scripts run unchanged over the simulated Network and the TCP
// backend, and against every consensus engine in the repo.
//
// A compromised node's outbound traffic is rewritten according to a set of
// Rules: conflicting proposals to overlapping recipient halves
// (Equivocate), digest corruption with a valid re-signature (Tamper),
// selective per-peer/per-type drops (Withhold), byte-identical re-delivery
// (Replay), cross-shard grant-then-withhold lock starvation (Starve), and
// conflicting view-change floods (VCSpam). Mutated envelopes are re-signed
// with the compromised node's own key — a Byzantine node signing its own
// lies — so they pass honest verification and exercise the protocol guards
// rather than the signature check.
//
// Honest nodes' fabrics pass through untouched; the injector never forges
// traffic from a node it does not hold a signer for.
package adversary

import (
	"sync"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// Kind enumerates the attack cells of the matrix.
type Kind int

const (
	// Equivocate splits every matching multicast into two conflicting
	// variants sent to overlapping recipient halves. The overlap node — any
	// two quorums intersect — is the witness whose slasher holds both
	// signed envelopes.
	Equivocate Kind = iota + 1
	// Tamper corrupts the digest field for the victim set and re-signs, so
	// the envelope passes authentication and fails the digest check.
	Tamper
	// Withhold silently drops matching sends to the victim set.
	Withhold
	// Replay delivers every matching envelope twice, byte-identical.
	Replay
	// Starve performs cross-shard grant-then-withhold: XPropose reaches
	// only the initiator's own cluster (which grants and locks its slot)
	// while other involved clusters never hear of it, and the withdrawal
	// XAbort is suppressed — so the granted locks sit until the §3.2
	// timeout. Limit bounds how many proposal rounds are starved.
	Starve
	// VCSpam floods the offender's cluster with pairs of view-change
	// messages claiming two different chain heads for one height —
	// liveness noise that is also provable equivocation.
	VCSpam
)

var kindNames = map[Kind]string{
	Equivocate: "equivocate", Tamper: "tamper", Withhold: "withhold",
	Replay: "replay", Starve: "starve", VCSpam: "vc-spam",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Rule scripts one attack behaviour of a compromised node.
type Rule struct {
	Kind Kind
	// Types restricts the rule to these message types. Empty means the
	// kind's default: Equivocate/Tamper → pre-prepare, Replay → vote
	// messages, Withhold → everything (bounded by Victims), Starve →
	// cross-shard proposal/abort, VCSpam → triggered by any consensus send.
	Types []types.MsgType
	// Victims restricts Tamper/Withhold to these recipients; empty = all.
	Victims []types.NodeID
	// Limit caps rule applications (0 = unlimited). Starve counts starved
	// proposal rounds; others count transformed envelopes.
	Limit int
}

type rule struct {
	Rule
	applied int
}

func (r *rule) exhausted() bool { return r.Limit > 0 && r.applied >= r.Limit }

func (r *rule) matches(t types.MsgType) bool {
	if r.exhausted() {
		return false
	}
	if len(r.Types) > 0 {
		for _, mt := range r.Types {
			if mt == t {
				return true
			}
		}
		return false
	}
	switch r.Kind {
	case Equivocate, Tamper:
		return t == types.MsgPrePrepare
	case Replay:
		return t == types.MsgPrepare || t == types.MsgCommit || t == types.MsgPaxosAccepted
	case Withhold:
		return true
	case Starve:
		return t == types.MsgXPropose || t == types.MsgXAbort
	default:
		return false
	}
}

func (r *rule) targets(to types.NodeID) bool {
	if len(r.Victims) == 0 {
		return true
	}
	for _, v := range r.Victims {
		if v == to {
			return true
		}
	}
	return false
}

// Event records one injected action, for test assertions ("the attack
// actually fired") and post-mortem artifacts.
type Event struct {
	Kind Kind
	Msg  types.MsgType
	From types.NodeID
	To   types.NodeID
}

const maxEvents = 1 << 12

type compromised struct {
	signer  crypto.Signer
	cluster types.ClusterID
	rules   []*rule
}

// Adversary holds the shared attack state across all wrapped fabrics of a
// deployment.
type Adversary struct {
	mu      sync.Mutex
	topo    *consensus.Topology
	comp    map[types.NodeID]*compromised
	events  []Event
	spamSeq uint64
	spamGas uint64 // send counter driving the VCSpam cadence
}

// New creates an Adversary over the deployment topology (needed to aim
// cluster-scoped attacks like Starve and VCSpam).
func New(topo *consensus.Topology) *Adversary {
	return &Adversary{topo: topo, comp: make(map[types.NodeID]*compromised)}
}

// Compromise marks id Byzantine with the given attack script. signer must be
// id's own signer so mutated envelopes carry valid signatures; the caller is
// responsible for keeping compromised counts within f per cluster (the
// safety assertions assume it, exactly like the paper's fault bound).
func (a *Adversary) Compromise(id types.NodeID, signer crypto.Signer, rules ...Rule) {
	cl, _ := a.topo.ClusterOf(id)
	c := &compromised{signer: signer, cluster: cl}
	for i := range rules {
		c.rules = append(c.rules, &rule{Rule: rules[i]})
	}
	a.mu.Lock()
	a.comp[id] = c
	a.mu.Unlock()
}

// Events returns a snapshot of the injected-action log.
func (a *Adversary) Events() []Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Event, len(a.events))
	copy(out, a.events)
	return out
}

// Applied returns how many times the given attack kind fired for node id.
func (a *Adversary) Applied(id types.NodeID, k Kind) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, e := range a.events {
		if e.From == id && e.Kind == k {
			n++
		}
	}
	return n
}

func (a *Adversary) record(e Event) {
	if len(a.events) < maxEvents {
		a.events = append(a.events, e)
	}
}

// Wrap decorates a node's fabric with the attack injector. Its signature
// matches core's WrapFabric hook, so a test passes the method value
// directly. Honest nodes pay one map lookup per send.
func (a *Adversary) Wrap(id types.NodeID, inner transport.Fabric) transport.Fabric {
	return &fabric{a: a, inner: inner}
}

type fabric struct {
	a     *Adversary
	inner transport.Fabric
}

func (f *fabric) Register(id types.NodeID) <-chan *types.Envelope { return f.inner.Register(id) }
func (f *fabric) Stats() *transport.Stats                         { return f.inner.Stats() }
func (f *fabric) Close()                                          { f.inner.Close() }

func (f *fabric) Send(to types.NodeID, env *types.Envelope) {
	a := f.a
	a.mu.Lock()
	c := a.comp[env.From]
	if c == nil {
		a.mu.Unlock()
		f.inner.Send(to, env)
		return
	}
	deliveries := a.transformLocked(c, to, env)
	spam := a.maybeSpamLocked(c, env)
	a.mu.Unlock()
	for _, d := range deliveries {
		f.inner.Send(to, d)
	}
	f.deliverSpam(c, spam)
}

func (f *fabric) Multicast(to []types.NodeID, env *types.Envelope) {
	a := f.a
	a.mu.Lock()
	c := a.comp[env.From]
	if c == nil {
		a.mu.Unlock()
		f.inner.Multicast(to, env)
		return
	}
	groups, handled := a.equivocateLocked(c, to, env)
	if !handled {
		groups, handled = a.starveLocked(c, to, env)
	}
	if handled {
		spam := a.maybeSpamLocked(c, env)
		a.mu.Unlock()
		for _, g := range groups {
			f.inner.Multicast(g.to, g.env)
		}
		f.deliverSpam(c, spam)
		return
	}
	perDst := make(map[types.NodeID][]*types.Envelope, len(to))
	for _, dst := range to {
		perDst[dst] = a.transformLocked(c, dst, env)
	}
	spam := a.maybeSpamLocked(c, env)
	a.mu.Unlock()
	for _, dst := range to {
		for _, d := range perDst[dst] {
			f.inner.Send(dst, d)
		}
	}
	f.deliverSpam(c, spam)
}

type group struct {
	to  []types.NodeID
	env *types.Envelope
}

// equivocateLocked handles the Equivocate rule on a multicast: the original
// goes to the first half plus the witness, a conflicting re-signed variant
// to the second half plus the witness.
func (a *Adversary) equivocateLocked(c *compromised, to []types.NodeID, env *types.Envelope) ([]group, bool) {
	for _, r := range c.rules {
		if r.Kind != Equivocate || !r.matches(env.Type) {
			continue
		}
		variant := a.conflictingVariant(c, env)
		if variant == nil {
			return nil, false
		}
		r.applied++
		mid := len(to) / 2
		hi := mid + 1
		if hi > len(to) {
			hi = len(to)
		}
		for _, dst := range to {
			a.record(Event{Kind: Equivocate, Msg: env.Type, From: env.From, To: dst})
		}
		return []group{{to: to[:hi], env: env}, {to: to[mid:], env: variant}}, true
	}
	return nil, false
}

// conflictingVariant builds a second, validly signed envelope binding a
// different digest to the same (view, seq) slot. When the batch has two or
// more transactions the variant is a semantically valid reordering — honest
// nodes will happily vote for it — otherwise only the digest field is
// swapped, which honest receivers reject but still counts as a conflicting
// signed claim.
func (a *Adversary) conflictingVariant(c *compromised, env *types.Envelope) *types.Envelope {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil
	}
	m2 := *m
	if len(m.Txs) >= 2 {
		rev := make([]*types.Transaction, len(m.Txs))
		for i, tx := range m.Txs {
			rev[len(rev)-1-i] = tx
		}
		m2.Txs = rev
		m2.Digest = types.BatchDigest(rev)
	} else {
		m2.Digest = types.HashBytes(append(m.Digest[:], 'e', 'q'))
	}
	payload := m2.Encode(nil)
	return &types.Envelope{Type: env.Type, From: env.From, Payload: payload, Sig: c.signer.Sign(payload)}
}

// starveLocked handles the Starve rule on an XPropose multicast: one
// application per proposal round, delivering only to the offender's own
// cluster. (XAbort suppression stays per-recipient in transformLocked and
// does not consume the round budget.)
func (a *Adversary) starveLocked(c *compromised, to []types.NodeID, env *types.Envelope) ([]group, bool) {
	if env.Type != types.MsgXPropose {
		return nil, false
	}
	for _, r := range c.rules {
		if r.Kind != Starve || !r.matches(env.Type) {
			continue
		}
		r.applied++
		var own []types.NodeID
		for _, dst := range to {
			if cl, ok := a.topo.ClusterOf(dst); ok && cl == c.cluster {
				own = append(own, dst)
				continue
			}
			a.record(Event{Kind: Starve, Msg: env.Type, From: env.From, To: dst})
		}
		return []group{{to: own, env: env}}, true
	}
	return nil, false
}

// transformLocked applies the first matching per-recipient rule and returns
// the envelopes to actually deliver (empty = withheld).
func (a *Adversary) transformLocked(c *compromised, to types.NodeID, env *types.Envelope) []*types.Envelope {
	for _, r := range c.rules {
		if !r.matches(env.Type) {
			continue
		}
		switch r.Kind {
		case Withhold:
			if !r.targets(to) {
				continue
			}
			r.applied++
			a.record(Event{Kind: Withhold, Msg: env.Type, From: env.From, To: to})
			return nil
		case Starve:
			// While proposal rounds remain to starve, the withdrawal XAbort
			// is suppressed too — that is the grant-then-withhold: granted
			// locks are released only by the §3.2 timeout. Direct XPropose
			// sends to foreign clusters are likewise dropped.
			if env.Type == types.MsgXAbort {
				a.record(Event{Kind: Starve, Msg: env.Type, From: env.From, To: to})
				return nil
			}
			if cl, ok := a.topo.ClusterOf(to); ok && cl == c.cluster {
				continue
			}
			a.record(Event{Kind: Starve, Msg: env.Type, From: env.From, To: to})
			return nil
		case Tamper:
			if !r.targets(to) {
				continue
			}
			if t := a.tamper(c, env); t != nil {
				r.applied++
				a.record(Event{Kind: Tamper, Msg: env.Type, From: env.From, To: to})
				return []*types.Envelope{t}
			}
		case Replay:
			r.applied++
			a.record(Event{Kind: Replay, Msg: env.Type, From: env.From, To: to})
			return []*types.Envelope{env, env}
		}
	}
	return []*types.Envelope{env}
}

// tamper corrupts the digest field of a consensus payload and re-signs, so
// authentication passes and the digest check must catch it.
func (a *Adversary) tamper(c *compromised, env *types.Envelope) *types.Envelope {
	payload := make([]byte, len(env.Payload))
	copy(payload, env.Payload)
	if len(payload) >= 48 {
		// ConsensusMsg layout: View(8) | Seq(8) | Digest(32) | …
		for i := 16; i < 20; i++ {
			payload[i] ^= 0xff
		}
	} else if len(payload) > 0 {
		payload[len(payload)-1] ^= 0xff
	} else {
		return nil
	}
	return &types.Envelope{Type: env.Type, From: env.From, Payload: payload, Sig: c.signer.Sign(payload)}
}

// spamPair is a ready-to-send conflicting view-change pair.
type spamPair struct {
	targets []types.NodeID
	envs    []*types.Envelope
}

// maybeSpamLocked emits a conflicting view-change pair every few consensus
// sends while a VCSpam rule has budget.
func (a *Adversary) maybeSpamLocked(c *compromised, trigger *types.Envelope) *spamPair {
	switch trigger.Type {
	case types.MsgPrePrepare, types.MsgPrepare, types.MsgCommit,
		types.MsgPaxosAccept, types.MsgPaxosAccepted, types.MsgPaxosCommit:
	default:
		return nil
	}
	for _, r := range c.rules {
		if r.Kind != VCSpam || r.exhausted() {
			continue
		}
		a.spamGas++
		if a.spamGas%4 != 1 {
			return nil
		}
		r.applied++
		a.spamSeq++
		nv := 1_000_000 + a.spamSeq // far above any live view: recorded, never joined
		mk := func(tag byte) *types.Envelope {
			vc := &types.ViewChange{
				NewView: nv, Cluster: c.cluster, LastSeq: 0,
				LastHash: types.HashBytes([]byte{tag, byte(a.spamSeq), byte(a.spamSeq >> 8), 's', 'p', 'a', 'm'}),
			}
			payload := vc.Encode(nil)
			return &types.Envelope{Type: types.MsgViewChange, From: trigger.From, Payload: payload, Sig: c.signer.Sign(payload)}
		}
		var targets []types.NodeID
		for _, m := range a.topo.Members(c.cluster) {
			if m != trigger.From {
				targets = append(targets, m)
			}
		}
		for _, dst := range targets {
			a.record(Event{Kind: VCSpam, Msg: types.MsgViewChange, From: trigger.From, To: dst})
		}
		return &spamPair{targets: targets, envs: []*types.Envelope{mk('a'), mk('b')}}
	}
	return nil
}

func (f *fabric) deliverSpam(c *compromised, s *spamPair) {
	if s == nil {
		return
	}
	for _, env := range s.envs {
		f.inner.Multicast(s.targets, env)
	}
}
