package slasher

import (
	"math/rand"
	"testing"

	"sharper/internal/crypto"
	"sharper/internal/types"
)

func testKeyring(t *testing.T, ids ...types.NodeID) *crypto.Keyring {
	t.Helper()
	kr := crypto.NewKeyring()
	rng := rand.New(rand.NewSource(1))
	for _, id := range ids {
		if err := kr.Generate(id, rng); err != nil {
			t.Fatal(err)
		}
	}
	return kr
}

// testParent stands in for the chain parent every vote names; conflicting
// claims are only slashable within one parent binding.
var testParent = types.HashBytes([]byte("parent"))

func signedConsensus(t *testing.T, kr *crypto.Keyring, typ types.MsgType, from types.NodeID, m *types.ConsensusMsg) *types.Envelope {
	t.Helper()
	signer, err := kr.SignerFor(from)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PrevHashes) == 0 {
		m.PrevHashes = []types.Hash{testParent}
	}
	payload := m.Encode(nil)
	return &types.Envelope{Type: typ, From: from, Payload: payload, Sig: signer.Sign(payload)}
}

func signedVC(t *testing.T, kr *crypto.Keyring, from types.NodeID, vc *types.ViewChange) *types.Envelope {
	t.Helper()
	signer, err := kr.SignerFor(from)
	if err != nil {
		t.Fatal(err)
	}
	payload := vc.Encode(nil)
	return &types.Envelope{Type: types.MsgViewChange, From: from, Payload: payload, Sig: signer.Sign(payload)}
}

// pubOnly rebuilds a verification-only keyring — the position of an external
// auditor who holds public keys but no secrets.
func pubOnly(t *testing.T, kr *crypto.Keyring, ids ...types.NodeID) *crypto.Keyring {
	t.Helper()
	out := crypto.NewKeyring()
	for _, id := range ids {
		pub, ok := kr.PublicKey(id)
		if !ok {
			t.Fatalf("no public key for %d", id)
		}
		out.AddPublicKey(id, pub)
	}
	return out
}

func TestDoubleProposalDetected(t *testing.T) {
	kr := testKeyring(t, 1)
	s := New(Config{Verifier: kr})
	d1 := types.HashBytes([]byte("batch-a"))
	d2 := types.HashBytes([]byte("batch-b"))
	e1 := signedConsensus(t, kr, types.MsgPrePrepare, 1, &types.ConsensusMsg{View: 0, Seq: 3, Digest: d1, Cluster: 0})
	e2 := signedConsensus(t, kr, types.MsgPrePrepare, 1, &types.ConsensusMsg{View: 0, Seq: 3, Digest: d2, Cluster: 0})

	if got := s.Observe(e1); len(got) != 0 {
		t.Fatalf("first proposal produced %d proofs", len(got))
	}
	got := s.Observe(e2)
	if len(got) != 1 {
		t.Fatalf("conflicting proposal produced %d proofs, want 1", len(got))
	}
	p := got[0]
	if p.Offender != 1 || p.Kind != types.FraudDoubleProposal || p.Seq != 3 {
		t.Fatalf("bad proof: %v", p)
	}
	if err := p.Verify(kr); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
	// Offline verification with only public keys — and it must survive a
	// wire round trip, since that is how evidence reaches an auditor.
	dec, err := types.DecodeFraudProof(p.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := dec.Verify(pubOnly(t, kr, 1)); err != nil {
		t.Fatalf("offline pub-key-only verification failed: %v", err)
	}
}

// TestCrossClassConflictDetected: a primary whose tampered pre-prepare
// contradicts its own later vote is caught even though no two pre-prepares
// conflict — the slot index collapses message classes.
func TestCrossClassConflictDetected(t *testing.T) {
	kr := testKeyring(t, 2)
	s := New(Config{Verifier: kr})
	d1 := types.HashBytes([]byte("x"))
	d2 := types.HashBytes([]byte("y"))
	s.Observe(signedConsensus(t, kr, types.MsgPrePrepare, 2, &types.ConsensusMsg{View: 1, Seq: 7, Digest: d1, Cluster: 1}))
	got := s.Observe(signedConsensus(t, kr, types.MsgCommit, 2, &types.ConsensusMsg{View: 1, Seq: 7, Digest: d2, Cluster: 1}))
	if len(got) != 1 || got[0].Kind != types.FraudDoubleProposal {
		t.Fatalf("cross-class conflict not detected: %v", got)
	}
	if err := got[0].Verify(kr); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}

	// Two conflicting plain votes are a double-vote, not a double-proposal.
	s2 := New(Config{Verifier: kr})
	s2.Observe(signedConsensus(t, kr, types.MsgPrepare, 2, &types.ConsensusMsg{View: 1, Seq: 8, Digest: d1, Cluster: 1}))
	got = s2.Observe(signedConsensus(t, kr, types.MsgCommit, 2, &types.ConsensusMsg{View: 1, Seq: 8, Digest: d2, Cluster: 1}))
	if len(got) != 1 || got[0].Kind != types.FraudDoubleVote {
		t.Fatalf("double vote not detected: %v", got)
	}
	if err := got[0].Verify(kr); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
}

// TestBenignStreamsProduceNothing: consistent votes, byte-identical replays
// (the deferral path re-observes envelopes), different slots, and repeated
// identical view-change claims must never produce evidence.
func TestBenignStreamsProduceNothing(t *testing.T) {
	kr := testKeyring(t, 1, 2, 3)
	s := New(Config{Verifier: kr})
	d := types.HashBytes([]byte("honest"))
	for seq := uint64(1); seq <= 5; seq++ {
		for _, n := range []types.NodeID{1, 2, 3} {
			env := signedConsensus(t, kr, types.MsgPrepare, n, &types.ConsensusMsg{View: 0, Seq: seq, Digest: d, Cluster: 0})
			for i := 0; i < 3; i++ { // replays included
				if got := s.Observe(env); len(got) != 0 {
					t.Fatalf("benign envelope produced a proof: %v", got[0])
				}
			}
			// Same slot, commit phase, same digest: consistent.
			cm := signedConsensus(t, kr, types.MsgCommit, n, &types.ConsensusMsg{View: 0, Seq: seq, Digest: d, Cluster: 0})
			if got := s.Observe(cm); got != nil {
				t.Fatalf("consistent commit produced a proof")
			}
		}
	}
	head := types.HashBytes([]byte("head5"))
	for _, nv := range []uint64{1, 2, 3} { // escalating views, same honest claim
		vc := signedVC(t, kr, 2, &types.ViewChange{NewView: nv, Cluster: 0, LastSeq: 5, LastHash: head})
		if got := s.Observe(vc); len(got) != 0 {
			t.Fatalf("honest view-change claim produced a proof")
		}
	}
	if len(s.Proofs()) != 0 {
		t.Fatalf("retained %d proofs from a benign stream", len(s.Proofs()))
	}
}

// TestHonestRebindNotSlashed: a slot superseded by a cross-shard chain sync
// is legitimately re-proposed and re-voted with a different digest under a
// different parent. That pattern must neither be indexed as a conflict nor
// be constructible into a proof that verifies.
func TestHonestRebindNotSlashed(t *testing.T) {
	kr := testKeyring(t, 1)
	s := New(Config{Verifier: kr})
	p1 := types.HashBytes([]byte("chain-head-before-sync"))
	p2 := types.HashBytes([]byte("cross-shard-block"))
	d1 := types.HashBytes([]byte("batch-a"))
	d2 := types.HashBytes([]byte("batch-b"))
	e1 := signedConsensus(t, kr, types.MsgPrePrepare, 1,
		&types.ConsensusMsg{View: 0, Seq: 3, Digest: d1, PrevHashes: []types.Hash{p1}})
	e2 := signedConsensus(t, kr, types.MsgPrePrepare, 1,
		&types.ConsensusMsg{View: 0, Seq: 3, Digest: d2, PrevHashes: []types.Hash{p2}})
	s.Observe(e1)
	if got := s.Observe(e2); len(got) != 0 {
		t.Fatalf("honest re-bind produced a proof: %v", got[0])
	}
	// Nor can anyone assemble the two legitimate envelopes into evidence.
	forged := &types.FraudProof{Offender: 1, Kind: types.FraudDoubleProposal,
		View: 0, Seq: 3, First: e1, Second: e2}
	if err := forged.Verify(kr); err == nil {
		t.Fatal("proof built from two honest re-bind envelopes verified")
	}
	// A vote that names no parent at all is not indexable evidence either.
	bare := signedConsensus(t, kr, types.MsgPrepare, 1,
		&types.ConsensusMsg{View: 0, Seq: 9, Digest: d1, PrevHashes: []types.Hash{{}}})
	bare2 := &types.ConsensusMsg{View: 0, Seq: 9, Digest: d2}
	payload := bare2.Encode(nil)
	signer, _ := kr.SignerFor(1)
	s.Observe(bare)
	if got := s.Observe(&types.Envelope{Type: types.MsgPrepare, From: 1,
		Payload: payload, Sig: signer.Sign(payload)}); len(got) != 0 {
		t.Fatal("parentless vote was indexed as conflicting")
	}
}

func TestConflictingViewChangeClaims(t *testing.T) {
	kr := testKeyring(t, 3)
	s := New(Config{Verifier: kr})
	s.Observe(signedVC(t, kr, 3, &types.ViewChange{NewView: 1, Cluster: 2, LastSeq: 9, LastHash: types.HashBytes([]byte("h1"))}))
	got := s.Observe(signedVC(t, kr, 3, &types.ViewChange{NewView: 4, Cluster: 2, LastSeq: 9, LastHash: types.HashBytes([]byte("h2"))}))
	if len(got) != 1 {
		t.Fatalf("conflicting chain-head claims produced %d proofs, want 1", len(got))
	}
	p := got[0]
	if p.Kind != types.FraudConflictingViewChange || p.Offender != 3 || p.Seq != 9 {
		t.Fatalf("bad proof: %v", p)
	}
	if err := p.Verify(pubOnly(t, kr, 3)); err != nil {
		t.Fatalf("offline verification failed: %v", err)
	}
	// Claims at a different height don't conflict.
	if got := s.Observe(signedVC(t, kr, 3, &types.ViewChange{NewView: 5, Cluster: 2, LastSeq: 10, LastHash: types.HashBytes([]byte("h3"))})); len(got) != 0 {
		t.Fatalf("different-height claim slashed")
	}
}

// TestForgedEnvelopeNotIndexed: an envelope with a bad signature must be
// ignored entirely, or an attacker could plant half of a "conflict" and
// frame an honest node.
func TestForgedEnvelopeNotIndexed(t *testing.T) {
	kr := testKeyring(t, 1)
	s := New(Config{Verifier: kr})
	d1 := types.HashBytes([]byte("a"))
	d2 := types.HashBytes([]byte("b"))
	forged := &types.Envelope{Type: types.MsgPrePrepare, From: 1,
		Payload: (&types.ConsensusMsg{View: 0, Seq: 1, Digest: d1}).Encode(nil),
		Sig:     []byte("not a signature")}
	if got := s.Observe(forged); len(got) != 0 {
		t.Fatal("forged envelope produced a proof")
	}
	// The honest (signed) message for the same slot with a different digest
	// must not conflict with the ignored forgery.
	if got := s.Observe(signedConsensus(t, kr, types.MsgPrePrepare, 1, &types.ConsensusMsg{View: 0, Seq: 1, Digest: d2})); len(got) != 0 {
		t.Fatal("forgery was indexed and framed an honest node")
	}
}

func TestProofDedupAndGossip(t *testing.T) {
	kr := testKeyring(t, 1, 2)
	s := New(Config{Verifier: kr})
	mk := func(d string) *types.Envelope {
		return signedConsensus(t, kr, types.MsgPrePrepare, 1, &types.ConsensusMsg{View: 0, Seq: 3, Digest: types.HashBytes([]byte(d))})
	}
	s.Observe(mk("a"))
	first := s.Observe(mk("b"))
	if len(first) != 1 {
		t.Fatal("no proof for first conflict")
	}
	// A third variant at the same locus is deduplicated.
	if got := s.Observe(mk("c")); len(got) != 0 {
		t.Fatalf("duplicate locus produced another proof")
	}
	if len(s.Proofs()) != 1 {
		t.Fatalf("retained %d proofs, want 1", len(s.Proofs()))
	}

	// Gossip receipt: a fresh slasher accepts the proof once, rejects the
	// duplicate, and rejects a tampered copy.
	peer := New(Config{Verifier: kr})
	if !peer.AddProof(first[0]) {
		t.Fatal("valid gossiped proof rejected")
	}
	if peer.AddProof(first[0]) {
		t.Fatal("duplicate gossiped proof accepted")
	}
	bad, err := types.DecodeFraudProof(first[0].Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	bad.Second.Payload[0] ^= 0xff // break the signature binding
	bad.View++                    // move the locus so dedup can't mask the check
	if peer.AddProof(bad) {
		t.Fatal("tampered proof accepted")
	}
	if got := peer.Offenders()[1]; got != 1 {
		t.Fatalf("offender tally = %d, want 1", got)
	}
}

// TestIndexBounded: the claim index evicts FIFO past MaxEntries rather than
// growing without bound under slot churn.
func TestIndexBounded(t *testing.T) {
	kr := testKeyring(t, 1)
	s := New(Config{Verifier: kr, MaxEntries: 4})
	d := types.HashBytes([]byte("d"))
	for seq := uint64(0); seq < 100; seq++ {
		s.Observe(signedConsensus(t, kr, types.MsgPrepare, 1, &types.ConsensusMsg{View: 0, Seq: seq, Digest: d}))
	}
	s.mu.Lock()
	n := len(s.votes)
	s.mu.Unlock()
	if n > 4 {
		t.Fatalf("vote index grew to %d entries, bound is 4", n)
	}
}
