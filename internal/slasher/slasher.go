// Package slasher implements the equivocation-detecting auditor: it watches
// the consensus message stream of a replica, indexes every signed claim a
// node makes about a slot or its chain head, and when two claims conflict it
// bundles the two envelopes into a types.FraudProof — a self-contained
// accusation verifiable offline by any party holding the public keys.
//
// The detectors are deliberately scoped to claims an honest node can never
// make twice with different content, so a proof is damning by construction
// and the honest-run false-positive rate is zero:
//
//   - Slot claims: within one (view, seq, cluster, parent), every
//     pre-prepare, prepare and commit a node emits binds the same digest.
//     The engines guarantee this (one vote per instance, first-wins digest
//     binding, re-signed identically across crash-recovery), so indexing the
//     three message classes under one key also catches a primary whose
//     tampered pre-prepare contradicts its own vote. The parent is part of
//     the key because it is part of an honest node's claim: a slot superseded
//     by a cross-shard SyncChainHead is legitimately re-proposed and re-voted
//     with a different digest — under a different parent. Votes carry the
//     parent on the wire (ConsensusMsg.PrevHashes) precisely so this
//     distinction survives into offline verification.
//   - Chain-head claims: a view-change message asserts "my chain at height
//     LastSeq ends in LastHash". The per-cluster chain is append-only and
//     survives restarts via the WAL, so one height has exactly one hash for
//     an honest node — across any number of view changes.
//
// Non-goals (documented in DESIGN.md): cross-shard XAccept grants are NOT
// slashed, because an honest participant legitimately re-grants the same
// (view, digest) with a different chain head after a lock expiry or an
// initiator withdrawal; and byte-identical rebroadcasts are always benign
// (the rules require differing content).
package slasher

import (
	"sync"

	"sharper/internal/types"
)

// Config parameterizes a Slasher.
type Config struct {
	// Verifier checks envelope signatures before a claim is indexed, so a
	// forged envelope cannot plant evidence against an honest node. May be
	// nil when the fabric already authenticates (the slasher then trusts
	// envelopes whose pool verdict is unknown).
	Verifier types.SigVerifier
	// MaxEntries bounds each claim index; oldest entries are evicted FIFO.
	// Defaults to 16384.
	MaxEntries int
	// MaxProofs bounds retained fraud proofs. Defaults to 256.
	MaxProofs int
}

// voteKey identifies one slot claim. The message class (pre-prepare /
// prepare / commit) is intentionally absent: an honest node binds one digest
// per slot across all three. The parent IS present: re-binding a slot under
// a new parent after a cross-shard chain sync is honest behavior.
type voteKey struct {
	node    types.NodeID
	cluster types.ClusterID
	view    uint64
	seq     uint64
	parent  types.Hash
}

type voteRec struct {
	digest types.Hash
	env    *types.Envelope
}

// claimKey identifies one chain-head claim from view-change messages.
type claimKey struct {
	node    types.NodeID
	cluster types.ClusterID
	height  uint64
}

type claimRec struct {
	head types.Hash
	env  *types.Envelope
}

// Slasher is one replica's evidence index. Observe is called from the node's
// event loop; Proofs/Offenders may be read concurrently by audit tooling.
type Slasher struct {
	mu         sync.Mutex
	cfg        Config
	votes      map[voteKey]voteRec
	voteOrder  []voteKey
	claims     map[claimKey]claimRec
	claimOrder []claimKey
	proofs     []*types.FraudProof
	proofIdx   map[string]bool
	evicted    uint64
}

// New creates a Slasher.
func New(cfg Config) *Slasher {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 1 << 14
	}
	if cfg.MaxProofs <= 0 {
		cfg.MaxProofs = 256
	}
	return &Slasher{
		cfg:      cfg,
		votes:    make(map[voteKey]voteRec),
		claims:   make(map[claimKey]claimRec),
		proofIdx: make(map[string]bool),
	}
}

// authentic reports whether env's signature can be relied on: the pool
// verdict if one exists, an inline check otherwise. Unverifiable envelopes
// are never indexed — evidence must be signed.
func (s *Slasher) authentic(env *types.Envelope) bool {
	if ok, known := env.Auth(); known {
		return ok
	}
	if s.cfg.Verifier != nil {
		return s.cfg.Verifier.Verify(env.From, env.Payload, env.Sig)
	}
	return true
}

// Observe feeds one inbound envelope through the detectors and returns any
// freshly minted fraud proofs (at most one today; a slice for future
// detectors). Re-observing the same envelope — the node runtime re-dispatches
// deferred messages — is harmless: identical claims never conflict, and
// proofs deduplicate on their locus.
func (s *Slasher) Observe(env *types.Envelope) []*types.FraudProof {
	switch env.Type {
	case types.MsgPrePrepare, types.MsgPrepare, types.MsgCommit:
		m, err := types.DecodeConsensusMsg(env.Payload)
		if err != nil {
			return nil
		}
		if !s.authentic(env) {
			return nil
		}
		return s.observeSlot(env, m)
	case types.MsgViewChange:
		vc, err := types.DecodeViewChange(env.Payload)
		if err != nil {
			return nil
		}
		if !s.authentic(env) {
			return nil
		}
		return s.observeClaim(env, vc)
	default:
		return nil
	}
}

func (s *Slasher) observeSlot(env *types.Envelope, m *types.ConsensusMsg) []*types.FraudProof {
	if len(m.PrevHashes) == 0 {
		// A slot claim that names no parent is not self-contained evidence:
		// it cannot be told apart from an honest re-vote after a chain
		// re-bind, so it is never indexed (current engines always name one).
		return nil
	}
	key := voteKey{node: env.From, cluster: m.Cluster, view: m.View, seq: m.Seq,
		parent: m.PrevHashes[0]}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.votes[key]
	if !ok {
		if len(s.votes) >= s.cfg.MaxEntries {
			oldest := s.voteOrder[0]
			s.voteOrder = s.voteOrder[1:]
			delete(s.votes, oldest)
			s.evicted++
		}
		s.votes[key] = voteRec{digest: m.Digest, env: env}
		s.voteOrder = append(s.voteOrder, key)
		return nil
	}
	if prev.digest == m.Digest {
		return nil // consistent claim (or byte-identical replay): benign
	}
	kind := types.FraudDoubleVote
	if prev.env.Type == types.MsgPrePrepare || env.Type == types.MsgPrePrepare {
		kind = types.FraudDoubleProposal
	}
	p := &types.FraudProof{
		Offender: env.From, Cluster: m.Cluster, Kind: kind,
		View: m.View, Seq: m.Seq,
		First: prev.env, Second: env,
	}
	return s.emitLocked(p)
}

func (s *Slasher) observeClaim(env *types.Envelope, vc *types.ViewChange) []*types.FraudProof {
	key := claimKey{node: env.From, cluster: vc.Cluster, height: vc.LastSeq}
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.claims[key]
	if !ok {
		if len(s.claims) >= s.cfg.MaxEntries {
			oldest := s.claimOrder[0]
			s.claimOrder = s.claimOrder[1:]
			delete(s.claims, oldest)
			s.evicted++
		}
		s.claims[key] = claimRec{head: vc.LastHash, env: env}
		s.claimOrder = append(s.claimOrder, key)
		return nil
	}
	if prev.head == vc.LastHash {
		return nil
	}
	p := &types.FraudProof{
		Offender: env.From, Cluster: vc.Cluster, Kind: types.FraudConflictingViewChange,
		View: vc.NewView, Seq: vc.LastSeq,
		First: prev.env, Second: env,
	}
	return s.emitLocked(p)
}

// emitLocked records a locally detected proof, deduplicating on its locus.
func (s *Slasher) emitLocked(p *types.FraudProof) []*types.FraudProof {
	if s.proofIdx[p.Key()] || len(s.proofs) >= s.cfg.MaxProofs {
		return nil
	}
	s.proofIdx[p.Key()] = true
	s.proofs = append(s.proofs, p)
	return []*types.FraudProof{p}
}

// AddProof ingests a proof received from a peer (gossip) or reloaded from
// storage. It is verified before acceptance — a Byzantine peer must not be
// able to plant false evidence. Returns true when the proof is new.
func (s *Slasher) AddProof(p *types.FraudProof) bool {
	if err := p.Verify(s.cfg.Verifier); err != nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proofIdx[p.Key()] || len(s.proofs) >= s.cfg.MaxProofs {
		return false
	}
	s.proofIdx[p.Key()] = true
	s.proofs = append(s.proofs, p)
	return true
}

// Proofs returns a snapshot of all retained fraud proofs.
func (s *Slasher) Proofs() []*types.FraudProof {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*types.FraudProof, len(s.proofs))
	copy(out, s.proofs)
	return out
}

// Offenders aggregates retained proofs per accused node.
func (s *Slasher) Offenders() map[types.NodeID]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[types.NodeID]int)
	for _, p := range s.proofs {
		out[p.Offender]++
	}
	return out
}
