// Package replica is a generic single-group replicated state machine used
// by the non-sharded baselines of §4 (APR-C, APR-B, FPaxos, FaB): one
// ordering group of active replicas runs a consensus engine over the whole
// database, and the remaining nodes are passive replicas that receive
// execution results only ("the extra nodes become passive replicas", §5).
package replica

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/state"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// Engine is the ordering protocol run by the active group. The Paxos and
// PBFT engines satisfy it, as does the two-phase fastquorum engine.
type Engine interface {
	Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64)
	Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision)
	Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision)
	View() uint64
	Primary() types.NodeID
	IsPrimary() bool
	SuspectPrimary(now time.Time) []consensus.Outbound
}

// EngineFactory builds the engine for one active replica.
type EngineFactory func(topo *consensus.Topology, self types.NodeID,
	signer crypto.Signer, verifier crypto.Verifier) Engine

// Config describes a baseline deployment.
type Config struct {
	// Model determines the reply quorum clients wait for.
	Model types.FailureModel
	// ActiveSize is the ordering-group size (2f+1, 3f+1, or 5f+1).
	ActiveSize int
	// TotalNodes is the full deployment size; TotalNodes-ActiveSize nodes
	// become passive replicas.
	TotalNodes int
	// F is the fault bound inside the active group.
	F int
	// Factory builds the per-replica ordering engine.
	Factory EngineFactory
	// Network configures the simulated fabric; zero value =
	// transport.DefaultConfig(). Ignored when Fabric is set.
	Network transport.Config
	// Fabric, when non-nil, overrides the simulated network with an
	// externally built message fabric (e.g. a tcpnet.Net), letting the
	// baselines run over real sockets like the sharded system.
	Fabric transport.Fabric
	// Sign enables signatures (Byzantine deployments).
	Sign bool

	IntraTimeout time.Duration
	TickInterval time.Duration
	Seed         int64
}

// Deployment is a running baseline system.
type Deployment struct {
	cfg     Config
	Topo    *consensus.Topology
	Net     transport.Fabric
	Keyring crypto.Authenticator
	Shards  state.ShardMap

	nodes      []*Node
	nextClient atomic.Uint32
	started    bool
}

// NewDeployment builds the active group plus passive replicas.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.ActiveSize <= 0 || cfg.TotalNodes < cfg.ActiveSize {
		return nil, fmt.Errorf("replica: bad sizes: active=%d total=%d", cfg.ActiveSize, cfg.TotalNodes)
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 5 * time.Millisecond
	}
	if cfg.IntraTimeout <= 0 {
		cfg.IntraTimeout = 500 * time.Millisecond
	}
	// One "cluster" holding the active group; passives live outside it.
	members := make([]types.NodeID, cfg.ActiveSize)
	for i := range members {
		members[i] = types.NodeID(i)
	}
	topo := &consensus.Topology{
		Model: cfg.Model,
		Clusters: map[types.ClusterID]consensus.Cluster{
			0: {ID: 0, F: cfg.F, Members: members},
		},
	}

	net := cfg.Fabric
	if net == nil {
		netCfg := cfg.Network
		if netCfg == (transport.Config{}) {
			netCfg = transport.DefaultConfig()
		}
		if netCfg.Seed == 0 {
			netCfg.Seed = cfg.Seed
		}
		net = transport.New(netCfg, func(id types.NodeID) (types.ClusterID, bool) {
			if int(id) < cfg.ActiveSize {
				return 0, true
			}
			return 1, true // passives are "elsewhere": cross-cluster latency
		})
	}

	d := &Deployment{
		cfg:     cfg,
		Topo:    topo,
		Net:     net,
		Keyring: crypto.NewMACKeyring(),
		Shards:  state.ShardMap{NumShards: 1},
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var passives []types.NodeID
	for i := cfg.ActiveSize; i < cfg.TotalNodes; i++ {
		passives = append(passives, types.NodeID(i))
	}
	for i := 0; i < cfg.TotalNodes; i++ {
		id := types.NodeID(i)
		var signer crypto.Signer = crypto.NoopSigner{}
		var verifier crypto.Verifier = crypto.NoopSigner{}
		if cfg.Sign {
			if err := d.Keyring.Generate(id, rng); err != nil {
				return nil, err
			}
			s, err := d.Keyring.SignerFor(id)
			if err != nil {
				return nil, err
			}
			signer, verifier = s, d.Keyring
		}
		n := &Node{
			d:          d,
			id:         id,
			active:     i < cfg.ActiveSize,
			passives:   passives,
			inbox:      net.Register(id),
			store:      state.NewStore(0, d.Shards),
			signer:     signer,
			replyCache: consensus.NewReplyCache(1 << 16),
			inFlight:   make(map[types.TxID]time.Time),
			forwarded:  make(map[types.TxID]*forwardedReq),
			stopCh:     make(chan struct{}),
			doneCh:     make(chan struct{}),
		}
		if n.active {
			n.engine = cfg.Factory(topo, id, signer, verifier)
		}
		d.nodes = append(d.nodes, n)
	}
	return d, nil
}

// Start runs all replicas.
func (d *Deployment) Start() {
	if d.started {
		return
	}
	d.started = true
	for _, n := range d.nodes {
		n.start()
	}
}

// Stop terminates all replicas.
func (d *Deployment) Stop() {
	d.Net.Close()
	if !d.started {
		return
	}
	for _, n := range d.nodes {
		n.stop()
	}
	d.started = false
}

// Nodes returns all replicas (actives first).
func (d *Deployment) Nodes() []*Node { return d.nodes }

// SeedAccounts credits accounts on every replica, mirroring the SharPer
// deployment's genesis state for apples-to-apples workloads. perShard and
// shards describe the *workload's* account naming (the baseline itself is
// unsharded and stores everything everywhere).
func (d *Deployment) SeedAccounts(shards state.ShardMap, perShard int, balance int64) {
	for _, n := range d.nodes {
		for c := 0; c < shards.NumShards; c++ {
			for k := 0; k < perShard; k++ {
				n.store.Credit(shards.AccountInShard(types.ClusterID(c), uint64(k)), balance)
			}
		}
	}
}

// Node is one baseline replica (active or passive).
type Node struct {
	d        *Deployment
	id       types.NodeID
	active   bool
	passives []types.NodeID
	inbox    <-chan *types.Envelope
	engine   Engine
	store    *state.Store
	signer   crypto.Signer

	replyCache *consensus.ReplyCache
	inFlight   map[types.TxID]time.Time
	forwarded  map[types.TxID]*forwardedReq
	committed  atomic.Int64
	// updateQueue batches execution results bound for the passive replicas;
	// flushed on each tick or when it grows past a threshold.
	updateQueue []*types.Transaction

	stopCh chan struct{}
	doneCh chan struct{}
}

// ID returns the replica's identity.
func (n *Node) ID() types.NodeID { return n.id }

// Active reports whether the replica is in the ordering group.
func (n *Node) Active() bool { return n.active }

// Committed returns the number of transactions executed.
func (n *Node) Committed() int64 { return n.committed.Load() }

// Store returns the replica's state.
func (n *Node) Store() *state.Store { return n.store }

func (n *Node) start() { go n.loop() }

func (n *Node) stop() {
	close(n.stopCh)
	<-n.doneCh
}

func (n *Node) loop() {
	defer close(n.doneCh)
	ticker := time.NewTicker(n.d.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopCh:
			return
		case env := <-n.inbox:
			n.dispatch(env, time.Now())
		case now := <-ticker.C:
			if n.active {
				outs, decs := n.engine.Tick(now)
				n.send(outs)
				for _, dec := range decs {
					for _, tx := range dec.Block.Txs {
						n.execute(tx)
						// Mirror the dispatch path: the primary streams
						// executed results to passive replicas.
						if n.engine.IsPrimary() && len(n.passives) > 0 {
							n.updateQueue = append(n.updateQueue, tx)
						}
					}
				}
				n.flushUpdates()
				n.checkForwards(now)
			}
		}
	}
}

func (n *Node) send(outs []consensus.Outbound) {
	for _, o := range outs {
		n.d.Net.Multicast(o.To, o.Env)
	}
}

func (n *Node) dispatch(env *types.Envelope, now time.Time) {
	switch env.Type {
	case types.MsgRequest:
		n.onRequest(env, now)
	case types.MsgAPRStateUpdate:
		n.onStateUpdate(env)
	default:
		if !n.active {
			return
		}
		outs, decs := n.engine.Step(env, now)
		n.send(outs)
		for _, dec := range decs {
			for _, tx := range dec.Block.Txs {
				n.execute(tx)
				// Actives stream execution results to the passive replicas;
				// only the primary sends, batched to amortize the cost.
				if n.engine.IsPrimary() && len(n.passives) > 0 {
					n.updateQueue = append(n.updateQueue, tx)
					if len(n.updateQueue) >= 32 {
						n.flushUpdates()
					}
				}
			}
		}
	}
}

// flushUpdates sends the queued execution results to the passive replicas
// as one batched message.
func (n *Node) flushUpdates() {
	if len(n.updateQueue) == 0 {
		return
	}
	up := &types.Envelope{Type: types.MsgAPRStateUpdate, From: n.id,
		Payload: types.EncodeTxBatch(nil, n.updateQueue)}
	n.updateQueue = nil
	n.d.Net.Multicast(n.passives, up)
}

func (n *Node) onRequest(env *types.Envelope, now time.Time) {
	req, err := types.DecodeRequest(env.Payload)
	if err != nil {
		return
	}
	tx := req.Tx
	if r, ok := n.replyCache.Get(tx.ID); ok {
		n.d.Net.Send(tx.Client, &types.Envelope{Type: types.MsgReply, From: n.id, Payload: r.Encode(nil)})
		return
	}
	if !n.active {
		n.d.Net.Send(0, env) // forward toward the active group
		return
	}
	if !n.engine.IsPrimary() {
		if _, ok := n.forwarded[tx.ID]; !ok {
			n.forwarded[tx.ID] = &forwardedReq{tx: tx, env: env, at: now}
		}
		n.d.Net.Send(n.engine.Primary(), env)
		return
	}
	if t, ok := n.inFlight[tx.ID]; ok && now.Sub(t) < n.d.cfg.IntraTimeout {
		return
	}
	n.inFlight[tx.ID] = now
	outs, _ := n.engine.Propose([]*types.Transaction{tx}, now)
	n.send(outs)
}

// forwardedReq is a relayed client request awaiting execution.
type forwardedReq struct {
	tx  *types.Transaction
	env *types.Envelope
	at  time.Time
}

// checkForwards suspects the primary when relayed requests sit unexecuted
// past the timeout.
func (n *Node) checkForwards(now time.Time) {
	for id, fw := range n.forwarded {
		if n.replyCache.Contains(id) {
			delete(n.forwarded, id)
			continue
		}
		if now.Sub(fw.at) < n.d.cfg.IntraTimeout {
			continue
		}
		fw.at = now
		if n.engine.IsPrimary() {
			delete(n.forwarded, id)
			n.dispatch(fw.env, now)
			continue
		}
		n.send(n.engine.SuspectPrimary(now))
		n.d.Net.Send(n.engine.Primary(), fw.env)
	}
}

func (n *Node) onStateUpdate(env *types.Envelope) {
	txs, err := types.DecodeTxBatch(env.Payload)
	if err != nil {
		return
	}
	for _, tx := range txs {
		if n.replyCache.Contains(tx.ID) {
			continue
		}
		ok := n.store.Apply(tx) == nil
		n.committed.Add(1)
		n.replyCache.Put(tx.ID, &types.Reply{TxID: tx.ID, Replica: n.id, Committed: ok})
	}
}

func (n *Node) execute(tx *types.Transaction) {
	if r, done := n.replyCache.Get(tx.ID); done {
		n.d.Net.Send(tx.Client, &types.Envelope{Type: types.MsgReply, From: n.id, Payload: r.Encode(nil)})
		return
	}
	delete(n.inFlight, tx.ID)
	delete(n.forwarded, tx.ID)
	ok := n.store.Apply(tx) == nil
	n.committed.Add(1)
	r := &types.Reply{TxID: tx.ID, Replica: n.id, Committed: ok}
	n.replyCache.Put(tx.ID, r)
	// Under the crash model only the primary answers (Fig. 3a); Byzantine
	// clients need f+1 matching replies, so every active answers.
	if n.d.cfg.Model == types.CrashOnly && !n.engine.IsPrimary() {
		return
	}
	payload := r.Encode(nil)
	n.d.Net.Send(tx.Client, &types.Envelope{Type: types.MsgReply, From: n.id,
		Payload: payload, Sig: n.signer.Sign(payload)})
}
