package replica_test

import (
	"testing"
	"time"

	"sharper/internal/apr"
	"sharper/internal/fab"
	"sharper/internal/fastpaxos"
	"sharper/internal/replica"
	"sharper/internal/state"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// client is a minimal closed-loop issuer for the baseline deployments.
type client struct {
	id    types.NodeID
	d     *replica.Deployment
	inbox <-chan *types.Envelope
	seq   uint64
	model types.FailureModel
	f     int
}

var nextClientID types.NodeID = types.ClientIDBase + 1<<19

func newClient(d *replica.Deployment, model types.FailureModel, f int) *client {
	nextClientID++
	return &client{id: nextClientID, d: d, inbox: d.Net.Register(nextClientID), model: model, f: f}
}

func (c *client) transfer(t *testing.T, from, to types.AccountID, amount int64) bool {
	t.Helper()
	c.seq++
	tx := &types.Transaction{
		ID:       types.TxID{Client: c.id, Seq: c.seq},
		Client:   c.id,
		Ops:      []types.Op{{From: from, To: to, Amount: amount}},
		Involved: types.ClusterSet{0},
	}
	payload := (&types.Request{Tx: tx}).Encode(nil)
	needed := 1
	if c.model == types.Byzantine {
		needed = c.f + 1
	}
	for attempt := 0; attempt < 8; attempt++ {
		c.d.Net.Send(0, &types.Envelope{Type: types.MsgRequest, From: c.id, Payload: payload})
		deadline := time.NewTimer(2 * time.Second)
		got := make(map[types.NodeID]bool)
		var committed bool
	waitLoop:
		for {
			select {
			case env := <-c.inbox:
				r, err := types.DecodeReply(env.Payload)
				if err != nil || r.TxID != tx.ID {
					continue
				}
				got[r.Replica] = true
				committed = r.Committed
				if len(got) >= needed {
					deadline.Stop()
					return committed
				}
			case <-deadline.C:
				break waitLoop
			}
		}
	}
	t.Fatalf("baseline tx %s timed out", tx.ID)
	return false
}

func seedAndStart(t *testing.T, d *replica.Deployment) {
	t.Helper()
	d.SeedAccounts(state.ShardMap{NumShards: 4}, 16, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
}

func TestAPRCrash(t *testing.T) {
	d, err := apr.NewCrash(12, 1, transport.Config{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	seedAndStart(t, d)
	c := newClient(d, types.CrashOnly, 1)
	for i := 0; i < 10; i++ {
		if !c.transfer(t, 0, 1, 5) {
			t.Fatalf("tx %d rejected", i)
		}
	}
	// Passive replicas eventually receive the execution results.
	deadline := time.Now().Add(5 * time.Second)
	for {
		lagging := 0
		for _, n := range d.Nodes() {
			if !n.Active() && n.Committed() < 10 {
				lagging++
			}
		}
		if lagging == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d passive replicas still lagging", lagging)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestAPRByzantine(t *testing.T) {
	d, err := apr.NewByzantine(16, 1, transport.Config{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	seedAndStart(t, d)
	c := newClient(d, types.Byzantine, 1)
	for i := 0; i < 5; i++ {
		if !c.transfer(t, 0, 1, 5) {
			t.Fatalf("tx %d rejected", i)
		}
	}
}

func TestFastPaxos(t *testing.T) {
	d, err := fastpaxos.New(12, 1, transport.Config{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	seedAndStart(t, d)
	c := newClient(d, types.CrashOnly, 1)
	for i := 0; i < 10; i++ {
		if !c.transfer(t, 0, 1, 5) {
			t.Fatalf("tx %d rejected", i)
		}
	}
}

func TestFaB(t *testing.T) {
	d, err := fab.New(16, 1, transport.Config{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	seedAndStart(t, d)
	c := newClient(d, types.Byzantine, 1)
	for i := 0; i < 5; i++ {
		if !c.transfer(t, 0, 1, 5) {
			t.Fatalf("tx %d rejected", i)
		}
	}
}

func TestValidationRejectsOverdraw(t *testing.T) {
	d, err := apr.NewCrash(12, 1, transport.Config{}, 15)
	if err != nil {
		t.Fatal(err)
	}
	seedAndStart(t, d)
	c := newClient(d, types.CrashOnly, 1)
	if c.transfer(t, 0, 1, 5_000_000) {
		t.Fatal("overdraw committed; want rejection")
	}
}
