// Package pbft implements the intra-shard Byzantine-fault-tolerant
// consensus of §3.1 (Fig. 3b): PBFT's normal-case agreement over 3f+1 nodes
// (pre-prepare, prepare with 2f matching votes, commit with 2f+1 matching
// votes) plus the timeout-driven view change that deposes a faulty primary.
// Messages are signed and verified per §2.1.
//
// Like the Paxos engine, this is a pure state machine: envelopes and ticks
// in, outbound messages and ordered decisions out.
package pbft

import (
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/types"
)

// Engine is one node's PBFT state for one cluster.
type Engine struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID
	signer  crypto.Signer
	verify  crypto.Verifier

	view uint64

	proposedSeq  uint64
	proposedHead types.Hash

	committedSeq  uint64
	committedHead types.Hash

	instances map[uint64]*instance
	delivered map[uint64]bool
	// parked holds pre-prepares that arrived out of order; they are retried
	// whenever the proposal chain advances.
	parked map[uint64]*types.Envelope

	vcVotes      map[uint64]map[types.NodeID]*types.ViewChange
	viewChanging bool

	timeout time.Duration
}

type instance struct {
	digest     types.Hash
	parent     types.Hash
	txs        []*types.Transaction
	view       uint64
	own        bool // proposed by this node (as primary)
	prePrep    bool
	prepares   map[types.NodeID]types.Hash
	commits    map[types.NodeID]types.Hash
	sentPrep   bool
	sentCommit bool
	committed  bool
	deadline   time.Time
}

// Config parametrizes an Engine.
type Config struct {
	Topology *consensus.Topology
	Cluster  types.ClusterID
	Self     types.NodeID
	Signer   crypto.Signer
	Verifier crypto.Verifier
	Timeout  time.Duration
}

// New creates an engine at view 0 with the genesis head.
func New(cfg Config, genesis types.Hash) *Engine {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Signer == nil {
		cfg.Signer = crypto.NoopSigner{}
	}
	if cfg.Verifier == nil {
		cfg.Verifier = crypto.NoopSigner{}
	}
	return &Engine{
		topo:          cfg.Topology,
		cluster:       cfg.Cluster,
		self:          cfg.Self,
		signer:        cfg.Signer,
		verify:        cfg.Verifier,
		proposedHead:  genesis,
		committedHead: genesis,
		instances:     make(map[uint64]*instance),
		delivered:     make(map[uint64]bool),
		parked:        make(map[uint64]*types.Envelope),
		vcVotes:       make(map[uint64]map[types.NodeID]*types.ViewChange),
		timeout:       cfg.Timeout,
	}
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the primary of the current view.
func (e *Engine) Primary() types.NodeID { return e.topo.Primary(e.cluster, e.view) }

// IsPrimary reports whether this node leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.self }

// ProposedHead returns the sequence and hash of the last proposed block.
func (e *Engine) ProposedHead() (uint64, types.Hash) { return e.proposedSeq, e.proposedHead }

// SyncChainHead advances past a block decided by the cross-shard protocol,
// discarding in-flight proposals that no longer extend the chain and
// retrying parked ones.
func (e *Engine) SyncChainHead(seq uint64, head types.Hash, now time.Time) ([]consensus.Outbound, []*types.Transaction) {
	// The externally decided block supersedes the entire in-flight pipeline
	// (see paxos.Engine.SyncChainHead): reset unconditionally and hand the
	// node's own orphaned transactions back for re-proposal.
	e.proposedSeq = seq
	e.proposedHead = head
	if seq > e.committedSeq {
		e.committedSeq = seq
		e.committedHead = head
	}
	var orphans []*types.Transaction
	for s, inst := range e.instances {
		if !inst.committed || s > seq {
			if inst.own && !inst.committed {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	for s := range e.parked {
		if s <= seq {
			delete(e.parked, s)
		}
	}
	return e.retryParked(now), orphans
}

// retryParked replays parked pre-prepares that may now extend the chain.
func (e *Engine) retryParked(now time.Time) []consensus.Outbound {
	var out []consensus.Outbound
	for {
		env, ok := e.parked[e.proposedSeq+1]
		if !ok {
			return out
		}
		delete(e.parked, e.proposedSeq+1)
		o, _ := e.onPrePrepare(env, now)
		out = append(out, o...)
		if len(o) == 0 {
			return out
		}
	}
}

func (e *Engine) sign(payload []byte) []byte { return e.signer.Sign(payload) }

func (e *Engine) authentic(env *types.Envelope) bool {
	return e.verify.Verify(env.From, env.Payload, env.Sig)
}

// Propose starts consensus on a batch of transactions; primary only. The
// whole batch occupies one consensus instance and one block, and the digest
// the cluster votes on covers every transaction in the batch.
func (e *Engine) Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64) {
	if !e.IsPrimary() || e.viewChanging || len(txs) == 0 {
		return nil, 0
	}
	seq := e.proposedSeq + 1
	parent := e.proposedHead
	block := &types.Block{Txs: txs, Parents: []types.Hash{parent}}
	digest := types.BatchDigest(txs)

	inst := e.getInstance(seq)
	inst.digest = digest
	inst.parent = parent
	inst.txs = txs
	inst.view = e.view
	inst.own = true
	inst.prePrep = true
	inst.deadline = now.Add(e.timeout)
	e.proposedSeq = seq
	e.proposedHead = block.Hash()

	msg := &types.ConsensusMsg{
		View: e.view, Seq: seq, Digest: digest, Cluster: e.cluster,
		PrevHashes: []types.Hash{parent}, Txs: txs,
	}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPrePrepare, From: e.self, Payload: payload, Sig: e.sign(payload)},
	}}
	// The primary's own prepare vote is broadcast like everyone else's.
	out = append(out, e.votePrepare(inst, seq)...)
	return out, seq
}

func (e *Engine) getInstance(seq uint64) *instance {
	inst, ok := e.instances[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[types.NodeID]types.Hash),
			commits:  make(map[types.NodeID]types.Hash),
		}
		e.instances[seq] = inst
	}
	return inst
}

// Step consumes one protocol message.
func (e *Engine) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if !e.authentic(env) {
		return nil, nil
	}
	switch env.Type {
	case types.MsgPrePrepare:
		return e.onPrePrepare(env, now)
	case types.MsgPrepare:
		return e.onPrepare(env)
	case types.MsgCommit:
		return e.onCommit(env)
	case types.MsgViewChange:
		return e.onViewChange(env, now)
	case types.MsgNewView:
		return e.onNewView(env)
	default:
		return nil, nil
	}
}

func (e *Engine) onPrePrepare(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.Txs) == 0 || len(m.PrevHashes) != 1 {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, m.View) || m.View != e.view {
		return nil, nil
	}
	if m.Digest != types.BatchDigest(m.Txs) {
		return nil, nil // malicious primary: digest mismatch (any tampered tx in the batch)
	}
	// Proposals must extend our chain in order (see paxos.Engine.onAccept):
	// park ahead-of-chain pre-prepares, drop stale ones.
	if dup := e.instances[m.Seq]; !(m.Seq == e.proposedSeq && dup != nil && dup.parent == m.PrevHashes[0]) {
		if m.Seq != e.proposedSeq+1 {
			if m.Seq > e.proposedSeq+1 {
				e.parked[m.Seq] = env
			}
			return nil, nil
		}
		if m.PrevHashes[0] != e.proposedHead {
			return nil, nil
		}
	}
	inst := e.getInstance(m.Seq)
	if inst.prePrep && inst.digest != m.Digest {
		return nil, nil // equivocating primary: keep the first pre-prepare
	}
	inst.prePrep = true
	inst.digest = m.Digest
	inst.parent = m.PrevHashes[0]
	inst.txs = m.Txs
	inst.view = m.View
	inst.deadline = now.Add(e.timeout)
	if m.Seq > e.proposedSeq {
		e.proposedSeq = m.Seq
		block := &types.Block{Txs: m.Txs, Parents: []types.Hash{inst.parent}}
		e.proposedHead = block.Hash()
	}
	out := e.votePrepare(inst, m.Seq)
	out2, dec := e.maybeProgress(inst, m.Seq)
	out = append(out, out2...)
	out = append(out, e.retryParked(now)...)
	return out, dec
}

func (e *Engine) votePrepare(inst *instance, seq uint64) []consensus.Outbound {
	if inst.sentPrep {
		return nil
	}
	inst.sentPrep = true
	inst.prepares[e.self] = inst.digest
	m := &types.ConsensusMsg{View: inst.view, Seq: seq, Digest: inst.digest, Cluster: e.cluster}
	payload := m.Encode(nil)
	return []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPrepare, From: e.self, Payload: payload, Sig: e.sign(payload)},
	}}
}

func (e *Engine) onPrepare(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || m.View != e.view {
		return nil, nil
	}
	inst := e.getInstance(m.Seq)
	inst.prepares[env.From] = m.Digest
	return e.maybeProgress(inst, m.Seq)
}

func (e *Engine) onCommit(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	inst := e.getInstance(m.Seq)
	inst.commits[env.From] = m.Digest
	return e.maybeProgress(inst, m.Seq)
}

// maybeProgress moves an instance through prepared → committed as vote
// quorums fill in, tolerating any message arrival order.
func (e *Engine) maybeProgress(inst *instance, seq uint64) ([]consensus.Outbound, []consensus.Decision) {
	var out []consensus.Outbound
	f := e.topo.F(e.cluster)
	if inst.prePrep && !inst.sentCommit && countMatching(inst.prepares, inst.digest) >= 2*f+1 {
		// Prepared: 2f matching prepares from others + our own (§3.1).
		inst.sentCommit = true
		inst.commits[e.self] = inst.digest
		m := &types.ConsensusMsg{View: inst.view, Seq: seq, Digest: inst.digest, Cluster: e.cluster}
		payload := m.Encode(nil)
		out = append(out, consensus.Outbound{
			To:  others(e.topo.Members(e.cluster), e.self),
			Env: &types.Envelope{Type: types.MsgCommit, From: e.self, Payload: payload, Sig: e.sign(payload)},
		})
	}
	if inst.prePrep && !inst.committed && countMatching(inst.commits, inst.digest) >= 2*f+1 {
		inst.committed = true
	}
	return out, e.advance()
}

func (e *Engine) advance() []consensus.Decision {
	var out []consensus.Decision
	for {
		seq := e.committedSeq + 1
		inst, ok := e.instances[seq]
		if !ok || !inst.committed || len(inst.txs) == 0 || e.delivered[seq] {
			return out
		}
		block := &types.Block{Txs: inst.txs, Parents: []types.Hash{inst.parent}}
		e.delivered[seq] = true
		e.committedSeq = seq
		e.committedHead = block.Hash()
		out = append(out, consensus.Decision{Block: block, Seq: seq})
		delete(e.instances, seq)
	}
}

// Tick fires the backup timers that trigger view changes.
func (e *Engine) Tick(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	for seq, inst := range e.instances {
		if seq > e.committedSeq && inst.prePrep && !inst.committed && now.After(inst.deadline) {
			return e.startViewChange(e.view + 1)
		}
	}
	return nil
}

func (e *Engine) startViewChange(newView uint64) []consensus.Outbound {
	e.viewChanging = true
	vc := &types.ViewChange{
		NewView:  newView,
		Cluster:  e.cluster,
		LastSeq:  e.committedSeq,
		LastHash: e.committedHead,
	}
	for seq, inst := range e.instances {
		// Report prepared-but-uncommitted instances for value recovery.
		if seq > e.committedSeq && len(inst.txs) > 0 && !inst.committed &&
			countMatching(inst.prepares, inst.digest) >= 2*e.topo.F(e.cluster)+1 &&
			seq > vc.PreparedSeq {
			vc.PreparedSeq = seq
			vc.PreparedHash = inst.digest
		}
	}
	e.recordViewChange(e.self, vc)
	payload := vc.Encode(nil)
	env := &types.Envelope{Type: types.MsgViewChange, From: e.self, Payload: payload, Sig: e.sign(payload)}
	return []consensus.Outbound{{To: others(e.topo.Members(e.cluster), e.self), Env: env}}
}

func (e *Engine) recordViewChange(from types.NodeID, vc *types.ViewChange) {
	m, ok := e.vcVotes[vc.NewView]
	if !ok {
		m = make(map[types.NodeID]*types.ViewChange)
		e.vcVotes[vc.NewView] = m
	}
	m[from] = vc
}

func (e *Engine) onViewChange(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	vc, err := types.DecodeViewChange(env.Payload)
	if err != nil || vc.NewView <= e.view || vc.Cluster != e.cluster {
		return nil, nil
	}
	e.recordViewChange(env.From, vc)
	votes := e.vcVotes[vc.NewView]
	f := e.topo.F(e.cluster)

	var out []consensus.Outbound
	// Join once f+1 distinct nodes ask for this view: at least one correct
	// node timed out, so the suspicion is credible.
	if !e.viewChanging && len(votes) >= f+1 {
		out = append(out, e.startViewChange(vc.NewView)...)
		votes = e.vcVotes[vc.NewView]
	}
	if e.topo.Primary(e.cluster, vc.NewView) != e.self {
		return out, nil
	}
	if len(votes) < 2*f+1 {
		return out, nil
	}
	nv := &types.ViewChange{NewView: vc.NewView, Cluster: e.cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	payload := nv.Encode(nil)
	out = append(out, consensus.Outbound{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgNewView, From: e.self, Payload: payload, Sig: e.sign(payload)},
	})
	e.installView(vc.NewView)
	// Re-propose the highest prepared uncommitted instance if we hold it.
	var best *types.ViewChange
	for _, v := range votes {
		if v.PreparedSeq > e.committedSeq && (best == nil || v.PreparedSeq > best.PreparedSeq) {
			best = v
		}
	}
	if best != nil {
		if inst, ok := e.instances[best.PreparedSeq]; ok && len(inst.txs) > 0 {
			o, _ := e.Propose(inst.txs, now)
			out = append(out, o...)
		}
	}
	return out, nil
}

func (e *Engine) onNewView(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	nv, err := types.DecodeViewChange(env.Payload)
	if err != nil || nv.NewView < e.view || nv.Cluster != e.cluster {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, nv.NewView) {
		return nil, nil
	}
	e.installView(nv.NewView)
	return nil, nil
}

func (e *Engine) installView(v uint64) {
	if v <= e.view {
		e.viewChanging = false
		return
	}
	e.view = v
	e.viewChanging = false
	e.proposedSeq = e.committedSeq
	e.proposedHead = e.committedHead
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed {
			delete(e.instances, seq)
		}
	}
	e.parked = make(map[uint64]*types.Envelope)
}

func countMatching(votes map[types.NodeID]types.Hash, digest types.Hash) int {
	n := 0
	for _, d := range votes {
		if d == digest {
			n++
		}
	}
	return n
}

func others(members []types.NodeID, self types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// SuspectPrimary votes to depose the current primary. The runtime calls it
// when a forwarded client request goes unexecuted past its timeout — the
// PBFT rule that lets a cluster recover from a primary that fails while
// holding no in-flight proposals.
func (e *Engine) SuspectPrimary(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	_ = now
	return e.startViewChange(e.view + 1)
}
