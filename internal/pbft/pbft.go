// Package pbft implements the intra-shard Byzantine-fault-tolerant
// consensus of §3.1 (Fig. 3b): PBFT's normal-case agreement over 3f+1 nodes
// (pre-prepare, prepare with 2f matching votes, commit with 2f+1 matching
// votes) plus the timeout-driven view change that deposes a faulty primary.
// Messages are signed and verified per §2.1.
//
// Like the Paxos engine, this is a pure state machine: envelopes and ticks
// in, outbound messages and ordered decisions out.
package pbft

import (
	"os"
	"sort"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// Engine is one node's PBFT state for one cluster.
type Engine struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID
	signer  crypto.Signer
	verify  crypto.Verifier

	view uint64

	proposedSeq  uint64
	proposedHead types.Hash

	committedSeq  uint64
	committedHead types.Hash

	instances map[uint64]*instance
	delivered map[uint64]bool
	// parked holds pre-prepares that arrived out of order; they are retried
	// whenever the proposal chain advances.
	parked map[uint64]*types.Envelope

	// promised is the highest view this node has voted a view change for:
	// once cast, votes for lower views are refused (see paxos.Engine).
	vcVotes      map[uint64]map[types.NodeID]*types.ViewChange
	viewChanging bool
	promised     uint64
	// vcDeadline bounds how long the node waits mid-view-change before
	// escalating to the next view (see paxos.Engine.vcDeadline: the
	// candidate primary may itself be dead, and without escalation every
	// live node wedges in viewChanging).
	vcDeadline time.Time

	// New-primary recovery state (see paxos.Engine): values the deposed
	// view owed the chain, and the commit level to reach before proposing.
	pendingRepropose []preparedCand
	reproposeBarrier uint64

	timeout time.Duration

	// persist, when set, records acceptances and view positions to stable
	// storage before the message they vouch for leaves the node (see
	// consensus.Persister and paxos.Engine).
	persist consensus.Persister

	// reserved consults the cross-shard conflict table (see Config.Reserved).
	reserved func(seq uint64) bool

	// ring records structured protocol events for post-mortem debugging when
	// SHARPER_TRACE is set (see obs.EventRing; same format as the Paxos and
	// cross-shard engines, so divergence dumps merge into one timeline).
	ring *obs.EventRing
	// metrics, when configured, tracks engine health; nil-safe handles.
	metrics *obs.EngineMetrics
	// onPrepared fires when a proposal this primary launched reaches its
	// prepared certificate — the intra-shard "prepared" lifecycle stamp.
	onPrepared func(seq uint64)
}

// DebugTrace returns the recent protocol events (oldest first), rendered in
// the historical SHARPER_TRACE line format.
func (e *Engine) DebugTrace() []string { return e.ring.Lines() }

// DebugEvents returns the recent protocol events in structured form.
func (e *Engine) DebugEvents() []obs.Event { return e.ring.Events() }

// slotReserved reports whether the cross-shard engine holds this node's vote
// for the chain slot.
func (e *Engine) slotReserved(seq uint64) bool {
	return e.reserved != nil && e.reserved(seq)
}

// preparedCand is one value owed to the chain by a deposed view, with the
// certificate that admitted it (re-reported if this primary is deposed
// too). digest is the batch digest the recovery already verified for txs.
type preparedCand struct {
	seq    uint64
	view   uint64
	digest types.Hash
	parent types.Hash // parent the certificate's votes bound
	txs    []*types.Transaction
	proof  []types.VoteProof
}

type instance struct {
	digest types.Hash
	parent types.Hash
	txs    []*types.Transaction
	// block is the batch as a chain block, built once when the body is
	// known; its memoized Hash makes every later chain-walk relink cheap.
	block    *types.Block
	view     uint64
	own      bool // proposed by this node (as primary)
	prePrep  bool
	prepares map[types.NodeID]types.Hash
	commits  map[types.NodeID]types.Hash
	// voteSigs keeps each node's signature over its prepare/commit payload
	// (one canonical encoding), so a view change can carry a verifiable
	// prepared certificate instead of an unproven claim.
	voteSigs   map[types.NodeID][]byte
	sentPrep   bool
	sentCommit bool
	committed  bool
	deadline   time.Time
	// durableView/durableDigest track what PersistAccept last recorded for
	// this slot, so duplicate deliveries do not rewrite the log.
	durable       bool
	durableView   uint64
	durableDigest types.Hash
}

// Config parametrizes an Engine.
type Config struct {
	Topology *consensus.Topology
	Cluster  types.ClusterID
	Self     types.NodeID
	Signer   crypto.Signer
	Verifier crypto.Verifier
	Timeout  time.Duration
	// Persist, when non-nil, is the stable-storage hook for acceptor state
	// (persist-before-ack; see consensus.Persister).
	Persist consensus.Persister
	// Reserved, when non-nil, reports whether the node's cross-shard engine
	// holds this node's vote for the given chain slot (§3.2; see
	// paxos.Config.Reserved). Pre-prepares at a reserved slot park until
	// the reservation clears instead of drawing a prepare vote.
	Reserved func(seq uint64) bool
	// Obs, when non-nil, receives engine health metrics (view changes,
	// straggler drops, live instance count).
	Obs *obs.EngineMetrics
	// OnPrepared, when non-nil, fires when a proposal this primary launched
	// reaches its prepared certificate (per-transaction lifecycle tracing).
	OnPrepared func(seq uint64)
}

// New creates an engine at view 0 with the genesis head.
func New(cfg Config, genesis types.Hash) *Engine {
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if cfg.Signer == nil {
		cfg.Signer = crypto.NoopSigner{}
	}
	if cfg.Verifier == nil {
		cfg.Verifier = crypto.NoopSigner{}
	}
	return &Engine{
		topo:          cfg.Topology,
		cluster:       cfg.Cluster,
		self:          cfg.Self,
		signer:        cfg.Signer,
		verify:        cfg.Verifier,
		proposedHead:  genesis,
		committedHead: genesis,
		instances:     make(map[uint64]*instance),
		delivered:     make(map[uint64]bool),
		parked:        make(map[uint64]*types.Envelope),
		vcVotes:       make(map[uint64]map[types.NodeID]*types.ViewChange),
		timeout:       cfg.Timeout,
		persist:       cfg.Persist,
		reserved:      cfg.Reserved,
		ring:          obs.NewEventRing(0, os.Getenv("SHARPER_TRACE") != ""),
		metrics:       cfg.Obs,
		onPrepared:    cfg.OnPrepared,
	}
}

// persistAccept records the instance's current binding if it changed since
// the last record for this slot. False means the record did not reach
// stable storage and the caller must withhold the vote (the durable marker
// stays clear, so the next delivery retries).
func (e *Engine) persistAccept(seq uint64, inst *instance) bool {
	if e.persist == nil || len(inst.txs) == 0 {
		return true
	}
	if inst.durable && inst.durableView == inst.view && inst.durableDigest == inst.digest {
		return true
	}
	if err := e.persist.PersistAccept(seq, inst.view, inst.parent, inst.digest, inst.txs); err != nil {
		return false
	}
	inst.durable = true
	inst.durableView = inst.view
	inst.durableDigest = inst.digest
	return true
}

// persistViewState records the engine's view position; false withholds the
// dependent message.
func (e *Engine) persistViewState() bool {
	if e.persist == nil {
		return true
	}
	return e.persist.PersistView(e.view, e.promised) == nil
}

// Restore warms a freshly built engine from recovered durable state (see
// paxos.Engine.Restore). The restored node re-signs its own prepare vote
// for each recovered instance so it stays bound to the digest it voted for:
// an equivocating pre-prepare for the same slot is rejected against the
// restored binding.
func (e *Engine) Restore(view, promised uint64, insts []consensus.DurableInstance, now time.Time) {
	if view > e.view {
		e.view = view
	}
	if promised > e.promised {
		e.promised = promised
	}
	for _, d := range insts {
		if d.Seq <= e.committedSeq || len(d.Txs) == 0 {
			continue
		}
		payload := (&types.ConsensusMsg{
			View: d.View, Seq: d.Seq, Digest: d.Digest, Cluster: e.cluster,
			PrevHashes: []types.Hash{d.Parent},
		}).Encode(nil)
		e.instances[d.Seq] = &instance{
			digest:   d.Digest,
			parent:   d.Parent,
			txs:      d.Txs,
			block:    &types.Block{Txs: d.Txs, Parents: []types.Hash{d.Parent}},
			view:     d.View,
			prePrep:  true,
			prepares: map[types.NodeID]types.Hash{e.self: d.Digest},
			commits:  make(map[types.NodeID]types.Hash),
			voteSigs: map[types.NodeID][]byte{e.self: e.sign(payload)},
			deadline: now.Add(e.timeout),
			durable:  true, durableView: d.View, durableDigest: d.Digest,
		}
	}
	// Restored acceptances occupy their pipeline slots (see
	// paxos.Engine.Restore): walk the proposal chain over the contiguous
	// run so a restarted primary cannot re-allocate a slot it voted in.
	expect := e.proposedHead
	for s := e.proposedSeq + 1; ; s++ {
		inst, ok := e.instances[s]
		if !ok || len(inst.txs) == 0 || inst.parent != expect {
			break
		}
		bh := inst.block.Hash()
		e.proposedSeq = s
		e.proposedHead = bh
		expect = bh
	}
}

// DurableState reports the engine state a checkpoint must carry forward
// into a fresh log segment (see paxos.Engine.DurableState).
func (e *Engine) DurableState() (view, promised uint64, insts []consensus.DurableInstance) {
	for seq, inst := range e.instances {
		if seq > e.committedSeq && len(inst.txs) > 0 {
			insts = append(insts, consensus.DurableInstance{
				Seq: seq, View: inst.view, Parent: inst.parent, Digest: inst.digest, Txs: inst.txs,
			})
		}
	}
	for _, c := range e.pendingRepropose {
		if c.seq > e.committedSeq {
			insts = append(insts, consensus.DurableInstance{
				Seq: c.seq, View: c.view, Digest: c.digest, Txs: c.txs,
			})
		}
	}
	return e.view, e.promised, insts
}

// View returns the current view.
func (e *Engine) View() uint64 { return e.view }

// Primary returns the primary of the current view.
func (e *Engine) Primary() types.NodeID { return e.topo.Primary(e.cluster, e.view) }

// IsPrimary reports whether this node leads the current view.
func (e *Engine) IsPrimary() bool { return e.Primary() == e.self }

// ProposedHead returns the sequence and hash of the last proposed block.
func (e *Engine) ProposedHead() (uint64, types.Hash) { return e.proposedSeq, e.proposedHead }

// SyncChainHead advances past a block decided by the cross-shard protocol,
// discarding in-flight proposals that no longer extend the chain and
// retrying parked ones.
func (e *Engine) SyncChainHead(seq uint64, head types.Hash, now time.Time) ([]consensus.Outbound, []consensus.Decision, []*types.Transaction) {
	if seq <= e.committedSeq {
		// Stale: rewinding would discard acceptances other nodes may have
		// counted toward quorums (see paxos.Engine.SyncChainHead).
		return nil, nil, nil
	}
	e.proposedSeq = seq
	e.proposedHead = head
	e.committedSeq = seq
	e.committedHead = head
	// Slots at or below the new head are decided; their instances are
	// stale, and this node's own uncommitted proposals among them are
	// handed back for re-proposal. Instances above the head survive while
	// they still chain onto it (see paxos.Engine.SyncChainHead — wiping a
	// still-valid acceptance the primary already counted lets a cross-shard
	// block steal its slot).
	var orphans []*types.Transaction
	for s, inst := range e.instances {
		if s <= seq {
			if inst.own && !inst.committed {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	expect := head
	for s := seq + 1; ; s++ {
		inst, ok := e.instances[s]
		if !ok || len(inst.txs) == 0 || inst.parent != expect {
			break
		}
		bh := inst.block.Hash()
		e.proposedSeq = s
		e.proposedHead = bh
		expect = bh
	}
	for s, inst := range e.instances {
		if s > e.proposedSeq && !inst.committed {
			if inst.own {
				orphans = append(orphans, inst.txs...)
			}
			delete(e.instances, s)
		}
	}
	for s := range e.parked {
		if s <= seq {
			delete(e.parked, s)
		}
	}
	out, decs := e.retryParked(now)
	out = append(out, e.drainRepropose(now)...)
	return out, decs, orphans
}

// HasUncommitted reports whether any consensus instance with a known body
// sits above the committed head (see paxos.Engine.HasUncommitted): the
// cross-shard protocol must not treat the chain as drained while one does.
func (e *Engine) HasUncommitted() bool {
	q := 2*e.topo.F(e.cluster) + 1
	for seq, inst := range e.instances {
		if seq <= e.committedSeq {
			continue
		}
		if len(inst.txs) > 0 || inst.committed {
			return true
		}
		// A bodyless instance with a full commit certificate is a known
		// bound slot even before the pre-prepare arrives.
		counts := make(map[types.Hash]int)
		for _, d := range inst.commits {
			counts[d]++
			if counts[d] >= q {
				return true
			}
		}
	}
	return false
}

// retryParked replays parked pre-prepares that may now extend the chain.
// Decisions surfaced here MUST propagate to the caller (see
// paxos.Engine.retryParked — dropping them desyncs engine and ledger).
func (e *Engine) retryParked(now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	var out []consensus.Outbound
	var decs []consensus.Decision
	for {
		if e.slotReserved(e.proposedSeq + 1) {
			return out, decs // the slot is promised to a cross-shard vote
		}
		env, ok := e.parked[e.proposedSeq+1]
		if !ok {
			return out, decs
		}
		delete(e.parked, e.proposedSeq+1)
		o, d := e.onPrePrepare(env, now)
		out = append(out, o...)
		decs = append(decs, d...)
		if len(o) == 0 {
			return out, decs
		}
	}
}

func (e *Engine) sign(payload []byte) []byte { return e.signer.Sign(payload) }

// authentic checks the envelope's protocol-level signature, preferring the
// verdict the parallel verification pool already computed (see
// crypto.VerifyPool); envelopes stepped in directly (tests, replay paths)
// carry no verdict and are verified inline.
func (e *Engine) authentic(env *types.Envelope) bool {
	if ok, known := env.Auth(); known {
		return ok
	}
	return e.verify.Verify(env.From, env.Payload, env.Sig)
}

// Propose starts consensus on a batch of transactions; primary only. The
// whole batch occupies one consensus instance and one block, and the digest
// the cluster votes on covers every transaction in the batch.
func (e *Engine) Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64) {
	if !e.IsPrimary() || e.viewChanging || len(txs) == 0 {
		return nil, 0
	}
	// A fresh primary first replays what the deposed view owed the chain;
	// see paxos.Engine.Propose.
	if e.committedSeq < e.reproposeBarrier || len(e.pendingRepropose) > 0 {
		return nil, 0
	}
	seq := e.proposedSeq + 1
	if e.slotReserved(seq) {
		// The cross-shard engine holds this node's vote for the slot; the
		// batch stays queued until the reservation resolves.
		return nil, 0
	}
	parent := e.proposedHead
	block := &types.Block{Txs: txs, Parents: []types.Hash{parent}}
	digest := block.BatchDigest()
	if prev, ok := e.instances[seq]; ok {
		if prev.committed {
			// The slot is already bound (a commit certificate raced ahead
			// of its body): proposing over it would erase that knowledge.
			// Chain sync delivers or supersedes it; the batch stays queued.
			return nil, 0
		}
		if len(prev.txs) > 0 && prev.view == e.view && prev.digest != digest {
			// Already voted a different value at this (view, seq) — a
			// restored acceptance outside the proposal walk; proposing a
			// second binding in the same view is equivocation.
			return nil, 0
		}
	}
	// Persist the primary's own acceptance before anything leaves the node
	// (see paxos.Engine.Propose): unpersistable ⇒ refuse, batch requeued.
	if e.persist != nil {
		if err := e.persist.PersistAccept(seq, e.view, parent, digest, txs); err != nil {
			return nil, 0
		}
	}

	// A fresh instance, never getInstance: a retained instance from a
	// deposed view may linger at this slot, and its stale votes must not
	// count toward the new binding's quorums.
	inst := &instance{
		prepares: make(map[types.NodeID]types.Hash),
		commits:  make(map[types.NodeID]types.Hash),
		voteSigs: make(map[types.NodeID][]byte),
		durable:  true, durableView: e.view, durableDigest: digest,
	}
	e.instances[seq] = inst
	inst.digest = digest
	inst.parent = parent
	inst.txs = txs
	inst.block = block
	inst.view = e.view
	inst.own = true
	inst.prePrep = true
	inst.deadline = now.Add(e.timeout)
	e.proposedSeq = seq
	e.proposedHead = block.Hash()

	msg := &types.ConsensusMsg{
		View: e.view, Seq: seq, Digest: digest, Cluster: e.cluster,
		PrevHashes: []types.Hash{parent}, Txs: txs,
	}
	e.ring.Recordf("propose", seq, digest, "v=%d tx0=%s", e.view, txs[0].ID)
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPrePrepare, From: e.self, Payload: payload, Sig: e.sign(payload)},
	}}
	// The primary's own prepare vote is broadcast like everyone else's.
	out = append(out, e.votePrepare(inst, seq)...)
	e.metrics.InstGauge().Set(uint64(len(e.instances)))
	return out, seq
}

func (e *Engine) getInstance(seq uint64) *instance {
	inst, ok := e.instances[seq]
	if !ok {
		inst = &instance{
			prepares: make(map[types.NodeID]types.Hash),
			commits:  make(map[types.NodeID]types.Hash),
			voteSigs: make(map[types.NodeID][]byte),
		}
		e.instances[seq] = inst
	}
	return inst
}

// Step consumes one protocol message.
func (e *Engine) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	outs, decs := e.step(env, now)
	e.metrics.InstGauge().Set(uint64(len(e.instances)))
	return outs, decs
}

func (e *Engine) step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if !e.authentic(env) {
		return nil, nil
	}
	switch env.Type {
	case types.MsgPrePrepare:
		return e.onPrePrepare(env, now)
	case types.MsgPrepare:
		return e.onPrepare(env)
	case types.MsgCommit:
		return e.onCommit(env)
	case types.MsgViewChange:
		return e.onViewChange(env, now)
	case types.MsgNewView:
		return e.onNewView(env, now)
	default:
		return nil, nil
	}
}

func (e *Engine) onPrePrepare(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.Txs) == 0 || len(m.PrevHashes) != 1 {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, m.View) || m.View != e.view || m.View < e.promised {
		return nil, nil
	}
	body := &types.Block{Txs: m.Txs, Parents: m.PrevHashes}
	if m.Digest != body.BatchDigest() {
		return nil, nil // malicious primary: digest mismatch (any tampered tx in the batch)
	}
	// Proposals must extend our chain in order (see paxos.Engine.onAccept):
	// park ahead-of-chain pre-prepares, drop stale ones.
	if dup := e.instances[m.Seq]; !(m.Seq == e.proposedSeq && dup != nil && dup.parent == m.PrevHashes[0]) {
		if m.Seq != e.proposedSeq+1 {
			if m.Seq > e.proposedSeq+1 {
				e.parked[m.Seq] = env
			}
			return nil, nil
		}
		if m.PrevHashes[0] != e.proposedHead {
			return nil, nil
		}
	}
	if e.slotReserved(m.Seq) {
		// This node's cross-shard vote has promised the slot away (§3.2);
		// voting prepare for an intra-shard binding there would vote twice
		// at one height. Park until the reservation resolves.
		e.parked[m.Seq] = env
		return nil, nil
	}
	inst := e.getInstance(m.Seq)
	if inst.prePrep && inst.view == m.View && inst.digest != m.Digest {
		return nil, nil // equivocating primary: keep the first pre-prepare
	}
	if inst.committed && inst.digest != m.Digest {
		return nil, nil // slot already committed with a different value
	}
	if inst.view != m.View {
		// A retained instance from a deposed view is overwritten by the new
		// view's pre-prepare; its old votes must not leak into the new one.
		inst.prepares = make(map[types.NodeID]types.Hash)
		inst.commits = make(map[types.NodeID]types.Hash)
		inst.voteSigs = make(map[types.NodeID][]byte)
		inst.sentPrep = false
		inst.sentCommit = false
		inst.own = false
	}
	inst.prePrep = true
	inst.digest = m.Digest
	inst.parent = m.PrevHashes[0]
	inst.txs = m.Txs
	inst.block = body
	inst.view = m.View
	inst.deadline = now.Add(e.timeout)
	if m.Seq > e.proposedSeq {
		e.proposedSeq = m.Seq
		e.proposedHead = body.Hash()
	}
	out := e.votePrepare(inst, m.Seq)
	out2, dec := e.maybeProgress(inst, m.Seq)
	out = append(out, out2...)
	o3, d3 := e.retryParked(now)
	return append(out, o3...), append(dec, d3...)
}

func (e *Engine) votePrepare(inst *instance, seq uint64) []consensus.Outbound {
	if inst.sentPrep {
		return nil
	}
	// Persist before the prepare vote leaves: the vote can end up inside a
	// prepared certificate, and a restarted node must keep honoring it.
	// Unpersistable ⇒ no vote (a re-delivered pre-prepare retries).
	if !e.persistAccept(seq, inst) {
		return nil
	}
	inst.sentPrep = true
	inst.prepares[e.self] = inst.digest
	// The vote names the parent it extends: a slot re-bound after a
	// cross-shard SyncChainHead is legitimately re-voted with a different
	// digest, and only the parent distinguishes that from equivocation —
	// both for the slasher and for anyone verifying a vote offline.
	m := &types.ConsensusMsg{View: inst.view, Seq: seq, Digest: inst.digest, Cluster: e.cluster,
		PrevHashes: []types.Hash{inst.parent}}
	payload := m.Encode(nil)
	sig := e.sign(payload)
	inst.voteSigs[e.self] = sig
	return []consensus.Outbound{{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgPrepare, From: e.self, Payload: payload, Sig: sig},
	}}
}

func (e *Engine) onPrepare(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || m.View != e.view || m.View < e.promised {
		return nil, nil
	}
	if m.Seq <= e.committedSeq {
		// The slot is already delivered; a straggler vote must not resurrect
		// its deleted instance (the zombie would sit in e.instances forever —
		// only SyncChainHead trims below the head — and every Tick and
		// HasUncommitted pays to skip it). The slasher audited the envelope
		// before dispatch, so no equivocation evidence is lost.
		e.metrics.Stragglers().Inc()
		return nil, nil
	}
	inst := e.getInstance(m.Seq)
	inst.prepares[env.From] = m.Digest
	inst.voteSigs[env.From] = env.Sig
	return e.maybeProgress(inst, m.Seq)
}

func (e *Engine) onCommit(env *types.Envelope) ([]consensus.Outbound, []consensus.Decision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || m.View < e.promised {
		return nil, nil
	}
	if m.Seq <= e.committedSeq {
		e.metrics.Stragglers().Inc()
		return nil, nil // delivered slot; see onPrepare
	}
	inst := e.getInstance(m.Seq)
	inst.commits[env.From] = m.Digest
	if _, ok := inst.voteSigs[env.From]; !ok {
		inst.voteSigs[env.From] = env.Sig
	}
	return e.maybeProgress(inst, m.Seq)
}

// maybeProgress moves an instance through prepared → committed as vote
// quorums fill in, tolerating any message arrival order.
func (e *Engine) maybeProgress(inst *instance, seq uint64) ([]consensus.Outbound, []consensus.Decision) {
	var out []consensus.Outbound
	f := e.topo.F(e.cluster)
	if inst.prePrep && !inst.sentCommit && countMatching(inst.prepares, inst.digest) >= 2*f+1 {
		// Prepared: 2f matching prepares from others + our own (§3.1).
		inst.sentCommit = true
		inst.commits[e.self] = inst.digest
		e.ring.Recordf("prepared", seq, inst.digest, "v=%d", inst.view)
		if e.onPrepared != nil && inst.own {
			e.onPrepared(seq)
		}
		m := &types.ConsensusMsg{View: inst.view, Seq: seq, Digest: inst.digest, Cluster: e.cluster,
			PrevHashes: []types.Hash{inst.parent}}
		payload := m.Encode(nil)
		sig := e.sign(payload)
		if _, ok := inst.voteSigs[e.self]; !ok {
			inst.voteSigs[e.self] = sig
		}
		out = append(out, consensus.Outbound{
			To:  others(e.topo.Members(e.cluster), e.self),
			Env: &types.Envelope{Type: types.MsgCommit, From: e.self, Payload: payload, Sig: sig},
		})
	}
	if inst.prePrep && !inst.committed && countMatching(inst.commits, inst.digest) >= 2*f+1 {
		inst.committed = true
	}
	return out, e.advance()
}

func (e *Engine) advance() []consensus.Decision {
	var out []consensus.Decision
	for {
		seq := e.committedSeq + 1
		inst, ok := e.instances[seq]
		if !ok || !inst.committed || len(inst.txs) == 0 || e.delivered[seq] {
			return out
		}
		block := inst.block
		e.delivered[seq] = true
		e.committedSeq = seq
		e.committedHead = block.Hash()
		e.ring.Recordf("deliver", seq, inst.digest, "")
		out = append(out, consensus.Decision{Block: block, Seq: seq})
		delete(e.instances, seq)
		e.metrics.InstGauge().Set(uint64(len(e.instances)))
	}
}

// Tick fires the backup timers that trigger view changes; a fresh primary
// uses it to retry recovery obligations once chain sync catches it up. A
// node stuck mid-view-change past its deadline escalates to the next view.
func (e *Engine) Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	if e.viewChanging {
		if now.After(e.vcDeadline) {
			return e.startViewChange(e.promised+1, now), nil
		}
		return nil, nil
	}
	// A slot reservation released without a chain advance (cross-shard abort
	// or expiry) leaves reserve-parked pre-prepares with no other retry path.
	out, decs := e.retryParked(now)
	if e.IsPrimary() {
		return append(out, e.drainRepropose(now)...), decs
	}
	for seq, inst := range e.instances {
		if seq > e.committedSeq && inst.prePrep && !inst.committed && now.After(inst.deadline) {
			return append(out, e.startViewChange(e.view+1, now)...), decs
		}
	}
	return out, decs
}

func (e *Engine) startViewChange(newView uint64, now time.Time) []consensus.Outbound {
	e.viewChanging = true
	// Two full windows for the candidate primary to assemble the view.
	e.vcDeadline = now.Add(2 * e.timeout)
	if newView > e.promised {
		e.promised = newView
	}
	// The promise must reach stable storage before the vote leaves (see
	// paxos.Engine.startViewChange); unpersistable ⇒ no vote, the
	// escalation timer retries.
	if !e.persistViewState() {
		return nil
	}
	vc := &types.ViewChange{
		NewView:  newView,
		Cluster:  e.cluster,
		LastSeq:  e.committedSeq,
		LastHash: e.committedHead,
	}
	// Report prepared-certified instances (2f+1 matching, signed prepare or
	// commit votes) and committed-but-undelivered ones, with bodies and the
	// vote signatures as the certificate, for value recovery.
	q := 2*e.topo.F(e.cluster) + 1
	reported := make(map[uint64]bool)
	for seq, inst := range e.instances {
		if seq <= e.committedSeq || len(inst.txs) == 0 {
			continue
		}
		proof := instanceProof(inst)
		if len(proof) < q {
			continue
		}
		vc.Prepared = append(vc.Prepared, types.PreparedInstance{
			Seq: seq, View: inst.view, Digest: inst.digest, Parent: inst.parent,
			Txs: inst.txs, Proof: proof,
		})
		reported[seq] = true
		if seq > vc.PreparedSeq {
			vc.PreparedSeq = seq
			vc.PreparedHash = inst.digest
		}
	}
	// Recovered-but-not-yet-re-proposed values must survive further view
	// changes too (see paxos.Engine.startViewChange); their certificates
	// ride along from the recovery that admitted them.
	for _, c := range e.pendingRepropose {
		if c.seq > e.committedSeq && !reported[c.seq] {
			vc.Prepared = append(vc.Prepared, types.PreparedInstance{
				Seq: c.seq, View: c.view, Digest: c.digest, Parent: c.parent,
				Txs: c.txs, Proof: c.proof,
			})
		}
	}
	e.recordViewChange(e.self, vc)
	e.ring.Recordf("vc-vote", vc.LastSeq, types.ZeroHash, "nv=%d prepared=%d", newView, len(vc.Prepared))
	payload := vc.Encode(nil)
	env := &types.Envelope{Type: types.MsgViewChange, From: e.self, Payload: payload, Sig: e.sign(payload)}
	return []consensus.Outbound{{To: others(e.topo.Members(e.cluster), e.self), Env: env}}
}

func (e *Engine) recordViewChange(from types.NodeID, vc *types.ViewChange) {
	m, ok := e.vcVotes[vc.NewView]
	if !ok {
		m = make(map[types.NodeID]*types.ViewChange)
		e.vcVotes[vc.NewView] = m
	}
	m[from] = vc
}

func (e *Engine) onViewChange(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	vc, err := types.DecodeViewChange(env.Payload)
	if err != nil || vc.NewView <= e.view || vc.Cluster != e.cluster {
		return nil, nil
	}
	e.recordViewChange(env.From, vc)
	votes := e.vcVotes[vc.NewView]
	f := e.topo.F(e.cluster)

	var out []consensus.Outbound
	// Join once f+1 distinct nodes ask for this view: at least one correct
	// node timed out, so the suspicion is credible.
	if !e.viewChanging && len(votes) >= f+1 {
		out = append(out, e.startViewChange(vc.NewView, now)...)
		votes = e.vcVotes[vc.NewView]
	}
	if e.topo.Primary(e.cluster, vc.NewView) != e.self {
		return out, nil
	}
	if len(votes) < 2*f+1 {
		return out, nil
	}
	nv := &types.ViewChange{NewView: vc.NewView, Cluster: e.cluster,
		LastSeq: e.committedSeq, LastHash: e.committedHead}
	payload := nv.Encode(nil)
	out = append(out, consensus.Outbound{
		To:  others(e.topo.Members(e.cluster), e.self),
		Env: &types.Envelope{Type: types.MsgNewView, From: e.self, Payload: payload, Sig: e.sign(payload)},
	})
	e.adoptRecovery(votes, f)
	e.installView(vc.NewView, now)
	out = append(out, e.drainRepropose(now)...)
	return out, nil
}

// adoptRecovery digests the view-change quorum into the new primary's
// obligations, with Byzantine-grade filters: a value counts only with a
// verifiable prepared certificate — 2f+1 distinct nodes' signatures over
// the canonical prepare/commit payload — so one honest reporter suffices
// (a commit anywhere implies f+1 honest certificate holders, and any 2f+1
// view-change quorum intersects them) while no coalition of f liars can
// fabricate a binding. The catch-up barrier is the (f+1)-th highest
// reported LastSeq, so it is bounded by an honest node's commit.
func (e *Engine) adoptRecovery(votes map[types.NodeID]*types.ViewChange, f int) {
	lastSeqs := make([]uint64, 0, len(votes))
	cands := make(map[uint64]preparedCand)
	for _, vc := range votes {
		lastSeqs = append(lastSeqs, vc.LastSeq)
		for _, p := range vc.Prepared {
			if p.Seq <= e.committedSeq || len(p.Txs) == 0 || types.BatchDigest(p.Txs) != p.Digest {
				continue
			}
			if !e.verifyCertificate(&p, 2*f+1) {
				continue
			}
			if cur, ok := cands[p.Seq]; !ok || p.View > cur.view {
				cands[p.Seq] = preparedCand{seq: p.Seq, view: p.View, digest: p.Digest,
					parent: p.Parent, txs: p.Txs, proof: p.Proof}
			}
		}
	}
	sort.Slice(lastSeqs, func(i, j int) bool { return lastSeqs[i] > lastSeqs[j] })
	barrier := e.committedSeq
	if len(lastSeqs) > f && lastSeqs[f] > barrier {
		barrier = lastSeqs[f]
	}
	e.reproposeBarrier = barrier
	e.pendingRepropose = e.pendingRepropose[:0]
	for _, c := range cands {
		e.pendingRepropose = append(e.pendingRepropose, c)
	}
	sort.Slice(e.pendingRepropose, func(i, j int) bool {
		return e.pendingRepropose[i].seq < e.pendingRepropose[j].seq
	})
}

// verifyCertificate checks that a reported prepared instance carries at
// least `need` distinct cluster members' valid signatures over the
// canonical vote payload for (view, seq, digest).
func (e *Engine) verifyCertificate(p *types.PreparedInstance, need int) bool {
	payload := (&types.ConsensusMsg{
		View: p.View, Seq: p.Seq, Digest: p.Digest, Cluster: e.cluster,
		PrevHashes: []types.Hash{p.Parent},
	}).Encode(nil)
	members := make(map[types.NodeID]bool, len(e.topo.Members(e.cluster)))
	for _, m := range e.topo.Members(e.cluster) {
		members[m] = true
	}
	valid := make(map[types.NodeID]bool)
	for _, pr := range p.Proof {
		if !members[pr.Node] || valid[pr.Node] {
			continue
		}
		if e.verify.Verify(pr.Node, payload, pr.Sig) {
			valid[pr.Node] = true
			if len(valid) >= need {
				return true
			}
		}
	}
	return false
}

// instanceProof assembles the certificate for an instance: every recorded
// prepare/commit vote matching the instance's digest, with its signature.
func instanceProof(inst *instance) []types.VoteProof {
	seen := make(map[types.NodeID]bool)
	var proof []types.VoteProof
	add := func(votes map[types.NodeID]types.Hash) {
		for id, d := range votes {
			if d == inst.digest && !seen[id] {
				seen[id] = true
				proof = append(proof, types.VoteProof{Node: id, Sig: inst.voteSigs[id]})
			}
		}
	}
	add(inst.prepares)
	add(inst.commits)
	return proof
}

// drainRepropose re-binds recovered values once the primary caught up to
// the barrier; slots already filled by synced blocks are skipped.
func (e *Engine) drainRepropose(now time.Time) []consensus.Outbound {
	if !e.IsPrimary() || e.viewChanging || e.committedSeq < e.reproposeBarrier || len(e.pendingRepropose) == 0 {
		return nil
	}
	pending := e.pendingRepropose
	e.pendingRepropose = nil
	var out []consensus.Outbound
	for _, c := range pending {
		if c.seq <= e.committedSeq {
			continue
		}
		o, _ := e.Propose(c.txs, now)
		out = append(out, o...)
	}
	return out
}

func (e *Engine) onNewView(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision) {
	nv, err := types.DecodeViewChange(env.Payload)
	if err != nil || nv.NewView < e.view || nv.Cluster != e.cluster {
		return nil, nil
	}
	if env.From != e.topo.Primary(e.cluster, nv.NewView) {
		return nil, nil
	}
	e.installView(nv.NewView, now)
	return nil, nil
}

func (e *Engine) installView(v uint64, now time.Time) {
	if v <= e.view {
		e.viewChanging = false
		return
	}
	e.view = v
	e.viewChanging = false
	e.metrics.VC().Inc()
	e.persistViewState()
	e.ring.Recordf("install-view", e.committedSeq, types.ZeroHash, "v=%d", v)
	e.proposedSeq = e.committedSeq
	e.proposedHead = e.committedHead
	// Uncommitted instances are retained (see paxos.Engine.installView):
	// prepared certificates must survive into later view changes. Timers
	// restart so the new primary gets a full window.
	for seq, inst := range e.instances {
		if seq > e.committedSeq && !inst.committed {
			inst.deadline = now.Add(e.timeout)
		}
	}
	e.parked = make(map[uint64]*types.Envelope)
}

func countMatching(votes map[types.NodeID]types.Hash, digest types.Hash) int {
	n := 0
	for _, d := range votes {
		if d == digest {
			n++
		}
	}
	return n
}

func others(members []types.NodeID, self types.NodeID) []types.NodeID {
	out := make([]types.NodeID, 0, len(members)-1)
	for _, m := range members {
		if m != self {
			out = append(out, m)
		}
	}
	return out
}

// SuspectPrimary votes to depose the current primary. The runtime calls it
// when a forwarded client request goes unexecuted past its timeout — the
// PBFT rule that lets a cluster recover from a primary that fails while
// holding no in-flight proposals.
func (e *Engine) SuspectPrimary(now time.Time) []consensus.Outbound {
	if e.IsPrimary() || e.viewChanging {
		return nil
	}
	return e.startViewChange(e.view+1, now)
}
