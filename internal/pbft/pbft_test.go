package pbft

import (
	"math/rand"
	"testing"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/ledger"
	"sharper/internal/types"
)

// harness drives a PBFT cluster deterministically with real signatures.
type harness struct {
	t       *testing.T
	topo    *consensus.Topology
	keyring *crypto.Keyring
	engines map[types.NodeID]*Engine
	queue   []routed
	decided map[types.NodeID][]consensus.Decision
	drop    func(to types.NodeID, env *types.Envelope) bool
	now     time.Time
}

type routed struct {
	to  types.NodeID
	env *types.Envelope
}

func newHarness(t *testing.T, f int) *harness {
	topo := consensus.UniformTopology(types.Byzantine, 1, f)
	h := &harness{
		t:       t,
		topo:    topo,
		keyring: crypto.NewKeyring(),
		engines: make(map[types.NodeID]*Engine),
		decided: make(map[types.NodeID][]consensus.Decision),
		now:     time.Unix(0, 0),
	}
	rng := rand.New(rand.NewSource(1))
	for _, id := range topo.AllNodes() {
		if err := h.keyring.Generate(id, rng); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range topo.AllNodes() {
		signer, err := h.keyring.SignerFor(id)
		if err != nil {
			t.Fatal(err)
		}
		h.engines[id] = New(Config{
			Topology: topo, Cluster: 0, Self: id,
			Signer: signer, Verifier: h.keyring,
			Timeout: 100 * time.Millisecond,
		}, ledger.GenesisHash())
	}
	return h
}

func (h *harness) sendAll(outs []consensus.Outbound) {
	for _, o := range outs {
		for _, to := range o.To {
			if h.drop != nil && h.drop(to, o.Env) {
				continue
			}
			h.queue = append(h.queue, routed{to: to, env: o.Env})
		}
	}
}

func (h *harness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		outs, decs := h.engines[m.to].Step(m.env, h.now)
		h.sendAll(outs)
		h.decided[m.to] = append(h.decided[m.to], decs...)
	}
}

func (h *harness) tick(d time.Duration) {
	h.now = h.now.Add(d)
	for _, id := range h.topo.AllNodes() {
		outs, decs := h.engines[id].Tick(h.now)
		h.sendAll(outs)
		h.decided[id] = append(h.decided[id], decs...)
	}
	h.pump()
}

func (h *harness) primary() *Engine {
	for _, e := range h.engines {
		if e.IsPrimary() {
			return e
		}
	}
	h.t.Fatal("no primary")
	return nil
}

func (h *harness) propose(txs ...*types.Transaction) {
	outs, _ := h.primary().Propose(txs, h.now)
	h.sendAll(outs)
	h.pump()
}

// batch wraps transactions as a proposal batch.
func batch(txs ...*types.Transaction) []*types.Transaction { return txs }

func tx(seq uint64) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: types.ClientIDBase + 1, Seq: seq},
		Client:   types.ClientIDBase + 1,
		Ops:      []types.Op{{From: 0, To: 1, Amount: int64(seq)}},
		Involved: types.ClusterSet{0},
	}
}

func TestNormalCaseCommit(t *testing.T) {
	h := newHarness(t, 1)
	h.propose(tx(1))
	h.propose(tx(2))
	for id, decs := range h.decided {
		if len(decs) != 2 {
			t.Fatalf("node %s decided %d, want 2", id, len(decs))
		}
		if decs[0].Block.Txs[0].ID.Seq != 1 || decs[1].Block.Txs[0].ID.Seq != 2 {
			t.Fatalf("node %s decided out of order", id)
		}
	}
}

func TestCommitWithFByzantineSilent(t *testing.T) {
	h := newHarness(t, 1)
	silent := h.topo.Members(0)[3]
	h.drop = func(to types.NodeID, env *types.Envelope) bool { return to == silent }
	h.propose(tx(1))
	for id, decs := range h.decided {
		if id == silent {
			continue
		}
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d, want 1", id, len(decs))
		}
	}
}

func TestForgedMessageRejected(t *testing.T) {
	h := newHarness(t, 1)
	backup := h.topo.Members(0)[1]
	m := &types.ConsensusMsg{
		View: 0, Seq: 1, Digest: types.BatchDigest(batch(tx(1))), Cluster: 0,
		PrevHashes: []types.Hash{ledger.GenesisHash()}, Txs: batch(tx(1)),
	}
	payload := m.Encode(nil)
	// Claim to be the primary but sign nothing valid.
	outs, decs := h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPrePrepare, From: h.topo.Primary(0, 0),
		Payload: payload, Sig: make([]byte, 64),
	}, h.now)
	if len(outs) != 0 || len(decs) != 0 {
		t.Fatal("forged pre-prepare processed")
	}
}

func TestDigestMismatchRejected(t *testing.T) {
	h := newHarness(t, 1)
	primaryID := h.topo.Primary(0, 0)
	signer, _ := h.keyring.SignerFor(primaryID)
	m := &types.ConsensusMsg{
		View: 0, Seq: 1, Digest: types.HashBytes([]byte("lie")), Cluster: 0,
		PrevHashes: []types.Hash{ledger.GenesisHash()}, Txs: batch(tx(1)),
	}
	payload := m.Encode(nil)
	backup := h.topo.Members(0)[1]
	outs, _ := h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPrePrepare, From: primaryID,
		Payload: payload, Sig: signer.Sign(payload),
	}, h.now)
	if len(outs) != 0 {
		t.Fatal("pre-prepare with mismatched digest answered")
	}
}

func TestEquivocatingPrimaryCannotForkCluster(t *testing.T) {
	h := newHarness(t, 1)
	primaryID := h.topo.Primary(0, 0)
	signer, _ := h.keyring.SignerFor(primaryID)
	backups := []types.NodeID{h.topo.Members(0)[1], h.topo.Members(0)[2], h.topo.Members(0)[3]}

	send := func(to types.NodeID, txx *types.Transaction) {
		m := &types.ConsensusMsg{
			View: 0, Seq: 1, Digest: types.BatchDigest(batch(txx)), Cluster: 0,
			PrevHashes: []types.Hash{ledger.GenesisHash()}, Txs: batch(txx),
		}
		payload := m.Encode(nil)
		outs, decs := h.engines[to].Step(&types.Envelope{
			Type: types.MsgPrePrepare, From: primaryID,
			Payload: payload, Sig: signer.Sign(payload),
		}, h.now)
		h.sendAll(outs)
		h.decided[to] = append(h.decided[to], decs...)
	}
	// Equivocate: tx 1 to two backups, tx 2 to the third.
	send(backups[0], tx(1))
	send(backups[1], tx(1))
	send(backups[2], tx(2))
	h.pump()

	// No two nodes may decide different blocks at seq 1.
	var committed map[types.Hash]bool = map[types.Hash]bool{}
	for _, decs := range h.decided {
		for _, d := range decs {
			if d.Seq == 1 {
				committed[d.Block.Hash()] = true
			}
		}
	}
	if len(committed) > 1 {
		t.Fatal("equivocation forked the cluster")
	}
}

// TestBatchedNormalCaseCommit: a multi-transaction batch commits through one
// PBFT instance, delivering one block with every transaction in proposal
// order at every node.
func TestBatchedNormalCaseCommit(t *testing.T) {
	h := newHarness(t, 1)
	h.propose(tx(1), tx(2), tx(3), tx(4))
	for id, decs := range h.decided {
		if len(decs) != 1 {
			t.Fatalf("node %s decided %d instances, want 1 (one batch)", id, len(decs))
		}
		b := decs[0].Block
		if len(b.Txs) != 4 {
			t.Fatalf("node %s block carries %d txs, want 4", id, len(b.Txs))
		}
		for i, bt := range b.Txs {
			if bt.ID.Seq != uint64(i+1) {
				t.Fatalf("node %s batch order broken at %d", id, i)
			}
		}
	}
}

// TestTamperedBatchTxRejected: a Byzantine primary that alters one
// transaction inside a batch (keeping the advertised digest) is caught by
// the batch-digest check — the pre-prepare is dropped, exactly like the
// single-transaction digest-mismatch case.
func TestTamperedBatchTxRejected(t *testing.T) {
	h := newHarness(t, 1)
	primaryID := h.topo.Primary(0, 0)
	signer, _ := h.keyring.SignerFor(primaryID)

	honest := batch(tx(1), tx(2), tx(3))
	digest := types.BatchDigest(honest)
	tampered := batch(tx(1), tx(2), tx(3))
	tampered[1].Ops[0].Amount += 1000 // inflate the middle transfer

	m := &types.ConsensusMsg{
		View: 0, Seq: 1, Digest: digest, Cluster: 0,
		PrevHashes: []types.Hash{ledger.GenesisHash()}, Txs: tampered,
	}
	payload := m.Encode(nil)
	backup := h.topo.Members(0)[1]
	outs, decs := h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPrePrepare, From: primaryID,
		Payload: payload, Sig: signer.Sign(payload),
	}, h.now)
	if len(outs) != 0 || len(decs) != 0 {
		t.Fatal("pre-prepare with a tampered batch transaction was processed")
	}
	// The honest batch under the same digest is accepted.
	m.Txs = honest
	payload = m.Encode(nil)
	outs, _ = h.engines[backup].Step(&types.Envelope{
		Type: types.MsgPrePrepare, From: primaryID,
		Payload: payload, Sig: signer.Sign(payload),
	}, h.now)
	if len(outs) == 0 {
		t.Fatal("honest batch with matching digest was not answered")
	}
}

func TestViewChangeAfterPrimaryFailure(t *testing.T) {
	h := newHarness(t, 1)
	old := h.topo.Primary(0, 0)
	h.propose(tx(1))
	// The primary goes dark before seeing any new request: the cluster can
	// still commit in-flight work (2f+1 backups form quorums on their own),
	// but fresh client requests stall, so backups suspect the primary via
	// the request timer and install view 1.
	h.drop = func(to types.NodeID, env *types.Envelope) bool { return to == old }
	for _, id := range h.topo.Members(0) {
		if id == old {
			continue
		}
		h.sendAll(h.engines[id].SuspectPrimary(h.now))
	}
	h.pump()
	live := 0
	for id, e := range h.engines {
		if id == old {
			continue
		}
		if e.View() >= 1 {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("%d live nodes changed view, want 3", live)
	}
	// Progress under the new primary.
	newPrimary := h.engines[h.topo.Primary(0, h.engines[h.topo.Members(0)[1]].View())]
	outs, _ := newPrimary.Propose(batch(tx(3)), h.now)
	h.sendAll(outs)
	h.pump()
	n := 0
	for id, decs := range h.decided {
		if id == old {
			continue
		}
		for _, d := range decs {
			if d.Block.Txs[0].ID.Seq == 3 {
				n++
			}
		}
	}
	if n != 3 {
		t.Fatalf("tx 3 committed at %d nodes, want 3", n)
	}
}

func TestSyncChainHeadOrphans(t *testing.T) {
	h := newHarness(t, 1)
	p := h.primary()
	h.propose(tx(1))
	p.Propose(batch(tx(2)), h.now)
	external := types.HashBytes([]byte("x"))
	_, _, orphans := p.SyncChainHead(2, external, h.now)
	if len(orphans) != 1 || orphans[0].ID.Seq != 2 {
		t.Fatalf("orphans = %v", orphans)
	}
}
