package obs

// This file defines the small handle bundles the registry owner (a
// core.Node or a cmd-level runtime) passes into subsystems at construction.
// Each bundle is nil-receiver safe end to end: a nil bundle hands out nil
// handles, and nil handles ignore updates, so subsystems never gate their
// instrumentation on a "metrics enabled" flag.

// EngineMetrics instruments an intra-shard consensus engine (Paxos, PBFT,
// or the fastquorum baseline).
type EngineMetrics struct {
	ViewChanges    *Counter // view-change installations
	StragglerDrops *Counter // messages dropped for lagging behind the commit frontier
	Instances      *Gauge   // live consensus-instance map size
}

// NewEngineMetrics registers the engine series under the given prefix
// (e.g. "paxos"). A nil registry yields a nil bundle.
func NewEngineMetrics(r *Registry, prefix string) *EngineMetrics {
	if r == nil {
		return nil
	}
	return &EngineMetrics{
		ViewChanges:    r.Counter(prefix + "_view_changes"),
		StragglerDrops: r.Counter(prefix + "_straggler_drops"),
		Instances:      r.Gauge(prefix + "_instances"),
	}
}

// VC returns the view-change counter (nil-safe).
func (m *EngineMetrics) VC() *Counter {
	if m == nil {
		return nil
	}
	return m.ViewChanges
}

// Stragglers returns the straggler-drop counter (nil-safe).
func (m *EngineMetrics) Stragglers() *Counter {
	if m == nil {
		return nil
	}
	return m.StragglerDrops
}

// InstGauge returns the instance-map gauge (nil-safe).
func (m *EngineMetrics) InstGauge() *Gauge {
	if m == nil {
		return nil
	}
	return m.Instances
}

// VerifyMetrics instruments crypto.VerifyPool.
type VerifyMetrics struct {
	Windows      *Counter   // verification windows processed
	Envelopes    *Counter   // envelopes verified
	Bisects      *Counter   // window splits after a failed aggregate check
	Occupancy    *Histogram // envelopes per window
	VerifyMicros *Histogram // per-window verification latency
}

// NewVerifyMetrics registers the verify-pool series. Nil registry → nil.
func NewVerifyMetrics(r *Registry) *VerifyMetrics {
	if r == nil {
		return nil
	}
	return &VerifyMetrics{
		Windows:      r.Counter("verify_windows"),
		Envelopes:    r.Counter("verify_envelopes"),
		Bisects:      r.Counter("verify_bisects"),
		Occupancy:    r.Histogram("verify_window_occupancy"),
		VerifyMicros: r.Histogram("verify_latency_us"),
	}
}

// StoreMetrics instruments the durable storage layer.
type StoreMetrics struct {
	FsyncMicros *Histogram // fsync latency
	WALBytes    *Counter   // bytes appended to the WAL
	Checkpoints *Counter   // checkpoints taken
}

// NewStoreMetrics registers the storage series. Nil registry → nil.
func NewStoreMetrics(r *Registry) *StoreMetrics {
	if r == nil {
		return nil
	}
	return &StoreMetrics{
		FsyncMicros: r.Histogram("storage_fsync_us"),
		WALBytes:    r.Counter("storage_wal_bytes"),
		Checkpoints: r.Counter("storage_checkpoints"),
	}
}

// Fsync returns the fsync-latency histogram (nil-safe).
func (m *StoreMetrics) Fsync() *Histogram {
	if m == nil {
		return nil
	}
	return m.FsyncMicros
}

// WAL returns the WAL-bytes counter (nil-safe).
func (m *StoreMetrics) WAL() *Counter {
	if m == nil {
		return nil
	}
	return m.WALBytes
}

// Ckpt returns the checkpoint counter (nil-safe).
func (m *StoreMetrics) Ckpt() *Counter {
	if m == nil {
		return nil
	}
	return m.Checkpoints
}

// MempoolMetrics instruments the client-ingress gateway and its mempool.
type MempoolMetrics struct {
	Admitted     *Counter   // transactions admitted into the pending pool
	Deduped      *Counter   // submits dropped as duplicates (pending/inflight/committed)
	Expired      *Counter   // submits rejected or swept for stale timestamps
	Shed         *Counter   // submits shed with Overloaded (pool at capacity)
	PendingBytes *Gauge     // encoded bytes pending + in flight
	PendingCount *Gauge     // transactions pending + in flight
	IngestMicros *Histogram // client timestamp → mempool admission latency
}

// NewMempoolMetrics registers the gateway/mempool series. Nil registry → nil.
func NewMempoolMetrics(r *Registry) *MempoolMetrics {
	if r == nil {
		return nil
	}
	return &MempoolMetrics{
		Admitted:     r.Counter("mempool_admitted"),
		Deduped:      r.Counter("mempool_deduped"),
		Expired:      r.Counter("mempool_expired"),
		Shed:         r.Counter("mempool_shed"),
		PendingBytes: r.Gauge("mempool_pending_bytes"),
		PendingCount: r.Gauge("mempool_pending_count"),
		IngestMicros: r.Histogram("mempool_ingest_us"),
	}
}
