// Package obs is the repo's dependency-free observability layer: a
// low-overhead metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with quantile extraction), per-transaction lifecycle
// tracing, and the structured event ring backing SHARPER_TRACE divergence
// dumps. Everything on the hot path is a single atomic op with zero
// allocations (locked in by TestHotPathAllocs); aggregation, quantiles, and
// text rendering only run at scrape/snapshot time.
//
// Ownership rules: each core.Node owns exactly one Registry; engines,
// storage, and the verify pool receive handles (or small handle structs) at
// construction and never create registries themselves. Shared fabrics (the
// in-process simulator) keep their own counters and are read pull-style at
// snapshot time, so a shared resource is never double-counted into per-node
// registries. Every handle type in this package is nil-receiver safe: a nil
// Registry hands out nil handles and instrumented code runs with only a
// branch of overhead when metrics are disabled.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric flavors in snapshots and on the wire.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// NumBuckets is the fixed bucket count every Histogram uses: bucket i counts
// values v with bits.Len64(v) == i, i.e. bucket 0 holds v=0 and bucket i>0
// holds [2^(i-1), 2^i). In microseconds that spans 1µs to ~35min before the
// overflow bucket, plenty for any latency this system produces.
const NumBuckets = 32

// Counter is a monotonically increasing value. The zero value is ready; a
// nil Counter ignores updates.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value; 0 on a nil Counter.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins value. A nil Gauge ignores updates.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(n uint64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Load returns the current value; 0 on a nil Gauge.
func (g *Gauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket power-of-two histogram. Observe is one atomic
// add per call; quantiles are extracted from the buckets at read time by
// interpolating within the containing bucket, so p50/p95/p99 are exact to
// within a factor-of-two bucket width. A nil Histogram ignores updates.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	i := bits.Len64(v)
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// Observe records one value (the unit is the caller's convention — latency
// histograms in this repo use microseconds, occupancy histograms use counts).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations; 0 on a nil Histogram.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram state into bucket/count/sum form.
func (h *Histogram) Snapshot() (count, sum uint64, buckets []uint64) {
	if h == nil {
		return 0, 0, nil
	}
	buckets = make([]uint64, NumBuckets)
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return h.count.Load(), h.sum.Load(), buckets
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the observed values,
// interpolated within the containing bucket.
func (h *Histogram) Quantile(q float64) uint64 {
	count, _, buckets := h.Snapshot()
	return QuantileFromBuckets(buckets, count, q)
}

// QuantileFromBuckets extracts a quantile from any bucket array laid out
// like Histogram's (shared by merged fleet snapshots and wire dumps).
func QuantileFromBuckets(buckets []uint64, count uint64, q float64) uint64 {
	if count == 0 || len(buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, b := range buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(b)
			return lo + uint64(frac*float64(hi-lo))
		}
		cum = next
	}
	_, hi := bucketBounds(len(buckets) - 1)
	return hi
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// Metric is one registry entry in snapshot form.
type Metric struct {
	Name  string
	Kind  Kind
	Value uint64 // counter / gauge value

	// Histogram fields (Kind == KindHistogram).
	Count   uint64
	Sum     uint64
	Buckets []uint64
}

// Quantile extracts a quantile from a histogram snapshot; 0 for other kinds.
func (m *Metric) Quantile(q float64) uint64 {
	if m.Kind != KindHistogram {
		return 0
	}
	return QuantileFromBuckets(m.Buckets, m.Count, q)
}

// entry is one registered metric; exactly one of the handle fields is set.
type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	gf   func() uint64
	h    *Histogram
}

// Registry is a named collection of metrics. Registration takes a lock;
// updates through the returned handles are lock-free atomics. A nil Registry
// hands out nil handles, so instrumented code never branches on "metrics
// enabled" beyond the nil checks built into the handles.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// get returns the existing entry for name or installs the one built by mk.
func (r *Registry) get(name string, kind Kind, mk func() *entry) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return e
	}
	e := mk()
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.get(name, KindCounter, func() *entry { return &entry{kind: KindCounter, c: &Counter{}} }).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.get(name, KindGauge, func() *entry { return &entry{kind: KindGauge, g: &Gauge{}} }).g
}

// GaugeFunc registers a pull-style gauge evaluated only at snapshot time.
// The callback must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.get(name, KindGauge, func() *entry { return &entry{kind: KindGauge, gf: fn} })
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.get(name, KindHistogram, func() *entry { return &entry{kind: KindHistogram, h: &Histogram{}} }).h
}

// Snapshot captures every metric in registration order. GaugeFunc callbacks
// are evaluated here, never on the hot path.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	entries := make([]*entry, len(names))
	for i, n := range names {
		entries[i] = r.entries[n]
	}
	r.mu.Unlock()

	out := make([]Metric, 0, len(names))
	for i, e := range entries {
		m := Metric{Name: names[i], Kind: e.kind}
		switch {
		case e.c != nil:
			m.Value = e.c.Load()
		case e.gf != nil:
			m.Value = e.gf()
		case e.g != nil:
			m.Value = e.g.Load()
		case e.h != nil:
			m.Count, m.Sum, m.Buckets = e.h.Snapshot()
		}
		out = append(out, m)
	}
	return out
}

// Merge sums snapshots by metric name: counters and gauges add values,
// histograms add bucket-wise. The result is sorted by name. Used for the
// fleet-wide roll-up (driver audit, in-process deployments).
func Merge(snaps ...[]Metric) []Metric {
	byName := make(map[string]*Metric)
	var order []string
	for _, snap := range snaps {
		for i := range snap {
			m := &snap[i]
			agg, ok := byName[m.Name]
			if !ok {
				cp := *m
				cp.Buckets = append([]uint64(nil), m.Buckets...)
				byName[m.Name] = &cp
				order = append(order, m.Name)
				continue
			}
			if agg.Kind != m.Kind {
				continue // name collision across kinds: keep the first
			}
			agg.Value += m.Value
			agg.Count += m.Count
			agg.Sum += m.Sum
			for i := 0; i < len(agg.Buckets) && i < len(m.Buckets); i++ {
				agg.Buckets[i] += m.Buckets[i]
			}
		}
	}
	sort.Strings(order)
	out := make([]Metric, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out
}

// promName maps a registry name to a Prometheus-legal metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("sharper_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	WriteMetricsPrometheus(w, r.Snapshot())
}

// WriteMetricsPrometheus renders any snapshot (per-node or merged) in
// Prometheus text exposition format.
func WriteMetricsPrometheus(w io.Writer, snap []Metric) {
	for i := range snap {
		m := &snap[i]
		name := promName(m.Name)
		switch m.Kind {
		case KindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.Value)
		case KindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, m.Value)
		case KindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", name)
			var cum uint64
			for i, b := range m.Buckets {
				cum += b
				_, hi := bucketBounds(i)
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, hi, cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, m.Count)
			fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, m.Sum, name, m.Count)
		}
	}
}
