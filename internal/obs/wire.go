package obs

import "sharper/internal/types"

// This file converts between registry snapshots and the wire-level
// types.MetricVal encoding, so a node can answer MsgMetricsRequest and the
// driver can re-assemble fleet snapshots for Merge. Histograms flatten to
// [count, sum, bucket0..bucketN-1]; counters and gauges to a single value.

// MetricsToWire flattens a snapshot into wire form.
func MetricsToWire(snap []Metric) []types.MetricVal {
	out := make([]types.MetricVal, 0, len(snap))
	for i := range snap {
		m := &snap[i]
		mv := types.MetricVal{Name: m.Name, Kind: uint8(m.Kind)}
		if m.Kind == KindHistogram {
			mv.Values = make([]uint64, 0, 2+len(m.Buckets))
			mv.Values = append(mv.Values, m.Count, m.Sum)
			mv.Values = append(mv.Values, m.Buckets...)
		} else {
			mv.Values = []uint64{m.Value}
		}
		out = append(out, mv)
	}
	return out
}

// MetricsFromWire rebuilds a snapshot from wire form, tolerating truncated
// or oversized value arrays from untrusted peers (extra buckets are dropped,
// missing ones read as zero).
func MetricsFromWire(vals []types.MetricVal) []Metric {
	out := make([]Metric, 0, len(vals))
	for i := range vals {
		mv := &vals[i]
		m := Metric{Name: mv.Name, Kind: Kind(mv.Kind)}
		if m.Kind == KindHistogram {
			if len(mv.Values) >= 2 {
				m.Count, m.Sum = mv.Values[0], mv.Values[1]
				n := len(mv.Values) - 2
				if n > NumBuckets {
					n = NumBuckets
				}
				m.Buckets = append([]uint64(nil), mv.Values[2:2+n]...)
			}
		} else if len(mv.Values) > 0 {
			m.Value = mv.Values[0]
		}
		out = append(out, m)
	}
	return out
}
