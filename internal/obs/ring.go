package obs

import (
	"fmt"
	"time"

	"sharper/internal/types"
)

// Event is one structured protocol-trace entry: what happened (Kind), to
// which instance (Seq and/or Digest), when (wall clock), plus a formatted
// detail string. Divergence dumps and latency tracing share this format.
type Event struct {
	At     int64 // unix microseconds
	Kind   string
	Seq    uint64
	Digest types.Hash
	Note   string
}

// Line renders the event in the historical SHARPER_TRACE dump shape:
// truncated wall-clock millis, then kind/seq/digest/detail.
func (e *Event) Line() string {
	d := "-"
	if !e.Digest.IsZero() {
		d = e.Digest.String()
	}
	return fmt.Sprintf("%d %s seq=%d d=%s %s", e.At/1000%100000, e.Kind, e.Seq, d, e.Note)
}

// EventRing is a fixed-capacity circular buffer of Events. Unlike the old
// string ring (`trace = trace[1:]` re-copied 2048 entries on every record),
// recording into a full ring overwrites the oldest slot in O(1). A nil or
// disabled ring records nothing and never formats its arguments.
type EventRing struct {
	on    bool
	buf   []Event
	next  int
	total int
}

// DefaultRingCapacity matches the old string ring's depth.
const DefaultRingCapacity = 2048

// NewEventRing builds a ring holding the last `capacity` events (≤0 picks
// DefaultRingCapacity). A disabled ring costs one branch per Record call.
func NewEventRing(capacity int, enabled bool) *EventRing {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &EventRing{on: enabled, buf: make([]Event, capacity)}
}

// Enabled reports whether the ring records events.
func (r *EventRing) Enabled() bool { return r != nil && r.on }

// Record appends an event with a fixed note.
func (r *EventRing) Record(kind string, seq uint64, digest types.Hash, note string) {
	if !r.Enabled() {
		return
	}
	r.buf[r.next] = Event{
		At: time.Now().UnixMicro(), Kind: kind, Seq: seq, Digest: digest, Note: note,
	}
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// Recordf appends an event, formatting the note only when the ring is on.
func (r *EventRing) Recordf(kind string, seq uint64, digest types.Hash, format string, args ...any) {
	if !r.Enabled() {
		return
	}
	r.Record(kind, seq, digest, fmt.Sprintf(format, args...))
}

// Events returns the recorded events, oldest first.
func (r *EventRing) Events() []Event {
	if r == nil {
		return nil
	}
	n := r.total
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]Event, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Lines renders the recorded events oldest-first, for DebugTrace and the
// -trace-dir dump path.
func (r *EventRing) Lines() []string {
	evs := r.Events()
	if len(evs) == 0 {
		return nil
	}
	out := make([]string, len(evs))
	for i := range evs {
		out[i] = evs[i].Line()
	}
	return out
}
