package obs

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"

	"sharper/internal/types"
)

// TestHistogramBucketBoundaries pins the power-of-two bucket layout: bucket
// 0 holds v=0, bucket i>0 holds [2^(i-1), 2^i), overflow saturates.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 30, 31}, {(1 << 31) - 1, 31}, {1 << 31, 31}, {1 << 60, 31},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	h := &Histogram{}
	h.Observe(0)
	h.Observe(5)
	h.Observe(1 << 40)
	count, sum, buckets := h.Snapshot()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if want := uint64(0 + 5 + 1<<40); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if buckets[0] != 1 || buckets[3] != 1 || buckets[NumBuckets-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", buckets)
	}
}

// TestHistogramQuantileVsSort draws random values, extracts p50/p95/p99 from
// the histogram, and checks each lands within one bucket of the true sorted
// quantile — the precision the power-of-two layout promises.
func TestHistogramQuantileVsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	vals := make([]uint64, 10000)
	for i := range vals {
		// mixture: mostly small latencies with a heavy tail
		v := uint64(rng.Intn(2000))
		if rng.Intn(20) == 0 {
			v = uint64(20000 + rng.Intn(500000))
		}
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		idx := int(q*float64(len(vals))) - 1
		if idx < 0 {
			idx = 0
		}
		ref := vals[idx]
		got := h.Quantile(q)
		lo, hi := bucketOf(ref), bucketOf(got)
		diff := hi - lo
		if diff < 0 {
			diff = -diff
		}
		if diff > 1 {
			t.Errorf("q%.2f: got %d (bucket %d), reference %d (bucket %d)", q, got, hi, ref, lo)
		}
	}
	if h.Quantile(0) > vals[0]*2+1 {
		t.Errorf("q0 = %d beyond first value %d's bucket", h.Quantile(0), vals[0])
	}
}

func TestQuantileEmpty(t *testing.T) {
	h := &Histogram{}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	var nilH *Histogram
	nilH.Observe(5) // must not panic
	if nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile != 0")
	}
}

// TestHotPathAllocs locks in the zero-allocation hot path for every handle
// update and for disabled tracing.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	ring := NewEventRing(8, false)
	tr := NewTxTracer(nil, 2, 8)
	id := types.TxID{Client: 1, Seq: 2} // (2+1)%2 != 0 → unsampled
	now := time.Now()

	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(7)
		h.Observe(123)
		ring.Record("x", 1, types.ZeroHash, "")
		tr.Start(id, false, now)
		tr.Stamp(id, StageSeal, now)
	}); n != 0 {
		t.Fatalf("hot path allocates: %.1f allocs/op", n)
	}

	var nilReg *Registry
	nc := nilReg.Counter("c")
	nh := nilReg.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() {
		nc.Add(1)
		nh.Observe(1)
	}); n != 0 {
		t.Fatalf("nil-registry path allocates: %.1f allocs/op", n)
	}
}

func TestRegistrySnapshotAndMerge(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("sent").Add(3)
	r2.Counter("sent").Add(4)
	r1.Gauge("depth").Set(5)
	r1.GaugeFunc("pull", func() uint64 { return 11 })
	r1.Histogram("lat").Observe(100)
	r2.Histogram("lat").Observe(200)

	m := Merge(r1.Snapshot(), r2.Snapshot())
	byName := map[string]Metric{}
	for _, x := range m {
		byName[x.Name] = x
	}
	if byName["sent"].Value != 7 {
		t.Errorf("merged counter = %d, want 7", byName["sent"].Value)
	}
	if byName["pull"].Value != 11 {
		t.Errorf("gauge func = %d, want 11", byName["pull"].Value)
	}
	lat := byName["lat"]
	if lat.Count != 2 || lat.Sum != 300 {
		t.Errorf("merged histogram count=%d sum=%d, want 2/300", lat.Count, lat.Sum)
	}

	var sb strings.Builder
	WriteMetricsPrometheus(&sb, m)
	out := sb.String()
	for _, want := range []string{"sharper_sent 7", "# TYPE sharper_lat histogram", "sharper_lat_count 2", `le="+Inf"`} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestEventRingWraps proves the ring overwrites oldest-first in O(1) and
// renders lines with kind/seq/digest.
func TestEventRingWraps(t *testing.T) {
	r := NewEventRing(4, true)
	var d types.Hash
	d[0] = 0xab
	for i := uint64(0); i < 10; i++ {
		r.Recordf("ev", i, d, "i=%d", i)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first order broken)", i, e.Seq, want)
		}
	}
	lines := r.Lines()
	if len(lines) != 4 || !strings.Contains(lines[0], "ev seq=6 d=ab") {
		t.Fatalf("lines wrong: %v", lines)
	}

	off := NewEventRing(4, false)
	off.Record("x", 1, types.ZeroHash, "dropped")
	if got := off.Lines(); got != nil {
		t.Fatalf("disabled ring recorded: %v", got)
	}
	var nilRing *EventRing
	nilRing.Record("x", 1, types.ZeroHash, "") // must not panic
}

func TestTxTracerLifecycle(t *testing.T) {
	reg := NewRegistry()
	tr := NewTxTracer(reg, 1, 4)
	base := time.Unix(1000, 0)
	id := types.TxID{Client: 3, Seq: 9}
	var digest types.Hash
	digest[0] = 1

	tr.Start(id, true, base)
	tr.Stamp(id, StageSeal, base.Add(1*time.Millisecond))
	tr.BindDigest(digest, []*types.Transaction{{ID: id}})
	tr.StampDigest(digest, StagePropose, base.Add(2*time.Millisecond))
	tr.StampDigest(digest, StageLockGrant, base.Add(3*time.Millisecond))
	tr.StampDigest(digest, StagePrepared, base.Add(4*time.Millisecond))
	tr.Stamp(id, StageCommitted, base.Add(5*time.Millisecond))
	tr.Stamp(id, StageExecuted, base.Add(5*time.Millisecond))
	tr.Stamp(id, StagePersisted, base.Add(5*time.Millisecond))
	// first-stamp-wins: a late duplicate must not move the clock back
	tr.StampDigest(digest, StagePropose, base.Add(9*time.Millisecond))
	tr.Finish(id, base.Add(6*time.Millisecond))

	done := tr.Completed()
	if len(done) != 1 {
		t.Fatalf("completed = %d traces, want 1", len(done))
	}
	got := done[0]
	if !got.Cross || got.ID != id {
		t.Fatalf("trace identity wrong: %+v", got)
	}
	prev := int64(0)
	for s := Stage(0); s < NumStages; s++ {
		if got.At[s] == 0 {
			t.Fatalf("stage %s missing", s)
		}
		if got.At[s] < prev {
			t.Fatalf("stage %s went backwards", s)
		}
		prev = got.At[s]
	}
	if got.At[StagePropose] != base.Add(2*time.Millisecond).UnixNano() {
		t.Fatal("duplicate stamp overwrote the first")
	}

	// histograms got the deltas (µs units)
	snap := reg.Snapshot()
	var total Metric
	for _, m := range snap {
		if m.Name == "stage_cross_total_us" {
			total = m
		}
	}
	if total.Count != 1 || total.Sum != 6000 {
		t.Fatalf("cross total histogram count=%d sum=%d, want 1/6000", total.Count, total.Sum)
	}

	// unsampled IDs must not trace
	tr2 := NewTxTracer(nil, 1000, 4)
	tr2.Start(types.TxID{Client: 1, Seq: 2}, false, base)
	tr2.Finish(types.TxID{Client: 1, Seq: 2}, base)
	if len(tr2.Completed()) != 0 {
		t.Fatal("unsampled tx was traced")
	}
}
