package obs

import (
	"sync"
	"time"

	"sharper/internal/types"
)

// Stage names one point in a transaction's lifecycle. Stamps are taken at
// the node that ingested the request (the proposing primary for intra, the
// initiator for cross), so a single trace never mixes clocks.
type Stage uint8

const (
	StageIngest    Stage = iota // request accepted into the proposal queue
	StageSeal                   // batch sealed (accumulator flushed)
	StagePropose                // consensus instance launched; cross: the
	// seal→propose delta is the lead-pipeline wait for conflict-table admission
	StageLockGrant // cross only: initiator's own slot vote granted
	StagePrepared  // quorum reached (commit-quorum / prepared certificate)
	StageCommitted // decision applied to the DAG ledger
	StageExecuted  // transactions applied to the store by the commit pipeline
	StagePersisted // commit durably recorded per the persistence policy
	StageReplied   // reply sent to the client
	NumStages
)

var stageNames = [NumStages]string{
	"ingest", "seal", "propose", "lock_grant", "prepared", "committed", "executed", "persisted", "replied",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// TxTrace is the sampled lifecycle record of one transaction. At[i] is the
// unix-nano stamp of stage i, 0 when the stage was never reached (intra
// traces never stamp StageLockGrant).
type TxTrace struct {
	ID    types.TxID
	Cross bool
	At    [NumStages]int64

	// index back-references, so retiring a trace is O(bindings) not O(map)
	seqs    []uint64
	digests []types.Hash
}

// maxActiveTraces bounds the in-flight trace map: past this, new samples are
// skipped rather than growing without bound (e.g. a stalled shard).
const maxActiveTraces = 4096

// DefaultTraceSample is the 1-in-N sampling rate used when a node does not
// configure one.
const DefaultTraceSample = 16

// TxTracer records sampled per-transaction stage stamps and folds finished
// traces into per-stage delta histograms (separate intra and cross series,
// microsecond units, registered as stage_<series>_<stage>_us). All stamping
// happens on the node's single-threaded event loop; the mutex only guards
// against snapshot readers.
type TxTracer struct {
	sample uint64

	mu        sync.Mutex
	active    map[types.TxID]*TxTrace
	bySeq     map[uint64][]*TxTrace
	byDigest  map[types.Hash][]*TxTrace
	completed []*TxTrace // ring, next points at the oldest slot
	next      int
	total     int

	// hist[0] = intra series, hist[1] = cross; index = destination stage of
	// the delta (e.g. hist[s][StagePrepared] is propose→prepared time).
	hist [2][NumStages]*Histogram
	e2e  [2]*Histogram
}

// NewTxTracer builds a tracer sampling 1-in-sample transactions (≤0 picks
// DefaultTraceSample; 1 traces everything) and keeping the last `keep`
// finished traces for dumps and tests. Histograms register into reg; a nil
// reg still traces (tests), a nil tracer disables tracing entirely.
func NewTxTracer(reg *Registry, sample, keep int) *TxTracer {
	if sample <= 0 {
		sample = DefaultTraceSample
	}
	if keep <= 0 {
		keep = 256
	}
	t := &TxTracer{
		sample:    uint64(sample),
		active:    make(map[types.TxID]*TxTrace),
		bySeq:     make(map[uint64][]*TxTrace),
		byDigest:  make(map[types.Hash][]*TxTrace),
		completed: make([]*TxTrace, keep),
	}
	for s, series := range [2]string{"intra", "cross"} {
		for st := StageSeal; st < NumStages; st++ {
			if s == 0 && st == StageLockGrant {
				continue
			}
			t.hist[s][st] = reg.Histogram("stage_" + series + "_" + st.String() + "_us")
		}
		t.e2e[s] = reg.Histogram("stage_" + series + "_total_us")
	}
	return t
}

// Start begins a trace for tx if it falls in the sample; call at ingest.
func (t *TxTracer) Start(id types.TxID, cross bool, now time.Time) {
	if t == nil {
		return
	}
	if (id.Seq+uint64(id.Client))%t.sample != 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.active[id]; ok || len(t.active) >= maxActiveTraces {
		return
	}
	tr := &TxTrace{ID: id, Cross: cross}
	tr.At[StageIngest] = now.UnixNano()
	t.active[id] = tr
}

// Stamp records stage `s` for a traced transaction; first stamp wins, so
// re-proposals after a refused batch keep the original timing.
func (t *TxTracer) Stamp(id types.TxID, s Stage, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if tr, ok := t.active[id]; ok && tr.At[s] == 0 {
		tr.At[s] = now.UnixNano()
	}
	t.mu.Unlock()
}

// BindSeq associates every traced transaction in ids with an intra-shard
// consensus sequence number, so the engine's prepared callback (keyed by
// seq) can stamp them.
func (t *TxTracer) BindSeq(seq uint64, ids []types.TxID) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, id := range ids {
		if tr, ok := t.active[id]; ok {
			t.bySeq[seq] = append(t.bySeq[seq], tr)
			tr.seqs = append(tr.seqs, seq)
		}
	}
	t.mu.Unlock()
}

// StampSeq records stage `s` on every trace bound to seq.
func (t *TxTracer) StampSeq(seq uint64, s Stage, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, tr := range t.bySeq[seq] {
		if tr.At[s] == 0 {
			tr.At[s] = now.UnixNano()
		}
	}
	t.mu.Unlock()
}

// BindDigest associates traced transactions with a cross-shard instance
// digest, so the cross engine's lock-grant/decide events can stamp them.
func (t *TxTracer) BindDigest(digest types.Hash, txs []*types.Transaction) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, tx := range txs {
		if tr, ok := t.active[tx.ID]; ok {
			t.byDigest[digest] = append(t.byDigest[digest], tr)
			tr.digests = append(tr.digests, digest)
		}
	}
	t.mu.Unlock()
}

// StampDigest records stage `s` on every trace bound to digest.
func (t *TxTracer) StampDigest(digest types.Hash, s Stage, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	for _, tr := range t.byDigest[digest] {
		if tr.At[s] == 0 {
			tr.At[s] = now.UnixNano()
		}
	}
	t.mu.Unlock()
}

// Finish stamps StageReplied, folds the trace's stage deltas into the
// series histograms, and retires it to the completed ring.
func (t *TxTracer) Finish(id types.TxID, now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	tr, ok := t.active[id]
	if !ok {
		t.mu.Unlock()
		return
	}
	if tr.At[StageReplied] == 0 {
		tr.At[StageReplied] = now.UnixNano()
	}
	delete(t.active, id)
	t.scrub(tr)
	t.completed[t.next] = tr
	t.next = (t.next + 1) % len(t.completed)
	t.total++
	t.mu.Unlock()

	series := 0
	if tr.Cross {
		series = 1
	}
	prev := tr.At[StageIngest]
	for s := StageSeal; s < NumStages; s++ {
		at := tr.At[s]
		if at == 0 {
			continue
		}
		d := at - prev
		if d < 0 {
			d = 0
		}
		t.hist[series][s].Observe(uint64(d) / 1e3)
		prev = at
	}
	if end := tr.At[StageReplied]; end != 0 && end >= tr.At[StageIngest] {
		t.e2e[series].Observe(uint64(end-tr.At[StageIngest]) / 1e3)
	}
}

// scrub removes tr from the seq/digest indexes, dropping emptied buckets so
// refused or re-proposed instances cannot leak index entries. Called with
// t.mu held.
func (t *TxTracer) scrub(tr *TxTrace) {
	for _, seq := range tr.seqs {
		t.bySeq[seq] = removeTrace(t.bySeq[seq], tr)
		if len(t.bySeq[seq]) == 0 {
			delete(t.bySeq, seq)
		}
	}
	for _, d := range tr.digests {
		t.byDigest[d] = removeTrace(t.byDigest[d], tr)
		if len(t.byDigest[d]) == 0 {
			delete(t.byDigest, d)
		}
	}
	tr.seqs, tr.digests = nil, nil
}

func removeTrace(list []*TxTrace, tr *TxTrace) []*TxTrace {
	for i, x := range list {
		if x == tr {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// Completed returns the retired traces, oldest first.
func (t *TxTracer) Completed() []TxTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.total
	if n > len(t.completed) {
		n = len(t.completed)
	}
	out := make([]TxTrace, 0, n)
	start := (t.next - n + len(t.completed)) % len(t.completed)
	for i := 0; i < n; i++ {
		out = append(out, *t.completed[(start+i)%len(t.completed)])
	}
	return out
}
