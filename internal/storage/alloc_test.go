//go:build !race

// Steady-state allocation regression for WAL record framing: persisting an
// acceptance or a view position builds the CRC frame in place in the
// store's reused scratch buffer (beginFrame/finishFrame), so the write path
// adds no per-record heap allocations beyond what the OS write itself
// costs. Excluded under the race detector, which adds its own allocations.

package storage

import (
	"testing"

	"sharper/internal/types"
)

func TestPersistSteadyStateAllocs(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	txs := []*types.Transaction{{
		ID:       types.TxID{Client: types.ClientIDBase + 1, Seq: 1},
		Ops:      []types.Op{{From: 1, To: 2, Amount: 3}},
		Involved: types.ClusterSet{0},
	}}
	digest := types.BatchDigest(txs)

	// Warm the scratch buffer, then require zero further allocations.
	if err := st.PersistAccept(1, 0, types.ZeroHash, digest, txs); err != nil {
		t.Fatal(err)
	}
	seq := uint64(2)
	allocs := testing.AllocsPerRun(200, func() {
		if err := st.PersistAccept(seq, 0, types.ZeroHash, digest, txs); err != nil {
			t.Fatal(err)
		}
		seq++
	})
	if allocs > 0 {
		t.Fatalf("PersistAccept allocates %.1f per record in steady state (want 0)", allocs)
	}

	allocs = testing.AllocsPerRun(200, func() {
		if err := st.PersistView(3, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("PersistView allocates %.1f per record in steady state (want 0)", allocs)
	}
}
