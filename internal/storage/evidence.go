package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// Evidence retention. Fraud proofs a replica's slasher detects (or accepts
// from gossip) are appended to evidence.log in the replica's data directory,
// one CRC-framed record per encoded types.FraudProof. The file uses the same
// torn-tail-tolerant framing as the WAL but lives apart from it: evidence is
// never truncated by checkpoints — an accusation must survive as long as the
// operator wants it, not as long as the consensus state needs it.
//
// The storage layer treats proofs as opaque bytes; encoding, verification
// and deduplication belong to the slasher. Writes are fsynced immediately:
// evidence is rare and forensically load-bearing, so it gets the strictest
// policy regardless of the WAL's SyncPolicy.
const evidenceFile = "evidence.log"

// AppendEvidence durably appends one encoded fraud proof.
func (s *Store) AppendEvidence(proof []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: store closed")
	}
	if s.evid == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, evidenceFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		s.evid = f
	}
	if _, err := s.evid.Write(appendFrame(nil, proof)); err != nil {
		return err
	}
	return s.evid.Sync()
}

// Evidence returns every intact fraud-proof record in the evidence log, in
// append order. A torn or corrupted tail ends the scan at the last valid
// record, like WAL recovery.
func (s *Store) Evidence() ([][]byte, error) {
	s.mu.Lock()
	dir := s.dir
	s.mu.Unlock()
	b, err := os.ReadFile(filepath.Join(dir, evidenceFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out [][]byte
	for len(b) > 0 {
		payload, used, err := readFrame(b)
		if err != nil {
			break // torn tail
		}
		out = append(out, payload)
		b = b[used:]
	}
	return out, nil
}
