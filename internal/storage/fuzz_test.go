package storage

import (
	"os"
	"path/filepath"
	"testing"

	"sharper/internal/types"
)

// FuzzWALRecover feeds arbitrary bytes to the log recovery path. The CRC
// frames are the only defense between a torn or corrupted on-disk tail and
// consensus state, so the properties are strict:
//
//  1. Open never panics and never fails on corrupt log contents — it
//     recovers the longest valid prefix and truncates the rest.
//  2. After recovery the log is appendable again: a fresh record written
//     post-truncation is itself recovered by the next Open.
//  3. Recovered blocks are a chain-orderable prefix (indices 1..n), never
//     garbage decoded across a corruption boundary.
func FuzzWALRecover(f *testing.F) {
	// Seed with a valid log, a truncated one, and pure noise.
	blocks := chainOf(3)
	var valid []byte
	for i, b := range blocks {
		valid = appendFrame(valid, encodeCommit(nil, uint64(i+1), ^uint64(0), b))
	}
	valid = appendFrame(valid, encodeAccept(nil, 4, 1, blocks[2].Hash(), types.BatchDigest(blocks[2].Txs), blocks[2].Txs))
	valid = appendFrame(valid, encodeView(nil, 1, 2))
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Add(valid[:frameHeader-1])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	mangled := append([]byte{}, valid...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		// The same arbitrary bytes exercise both recovery paths: the chain
		// log (commit records) and the acceptor log (accept/view records).
		if err := os.WriteFile(filepath.Join(dir, chainFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary log bytes, got: %v", err)
		}
		rec := st.Recovered()
		// Property 3: recovered blocks re-encode cleanly and form indices
		// 1..n (the replay rule admits only contiguous commits).
		for i, b := range rec.Blocks {
			enc := b.Encode(nil)
			rb, used, derr := types.DecodeBlock(enc)
			if derr != nil || used != len(enc) || rb.Hash() != b.Hash() {
				t.Fatalf("recovered block %d does not round-trip: %v", i+1, derr)
			}
		}
		for _, a := range rec.Accepted {
			if len(a.Txs) == 0 {
				t.Fatal("recovered acceptance with empty batch")
			}
		}

		// Property 2: the truncated log accepts and preserves new records.
		st.PersistView(1<<40, 1<<40)
		if err := st.Close(); err != nil {
			t.Fatalf("Close after recovery: %v", err)
		}
		st2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after post-truncation append: %v", err)
		}
		defer st2.Close()
		rec2 := st2.Recovered()
		if rec2.View != 1<<40 || rec2.Promised != 1<<40 {
			t.Fatalf("post-truncation record lost: view=%d promised=%d", rec2.View, rec2.Promised)
		}
		if len(rec2.Blocks) != len(rec.Blocks) {
			t.Fatalf("block prefix changed across reopen: %d -> %d", len(rec.Blocks), len(rec2.Blocks))
		}
	})
}

// FuzzDecodeRecord exercises the record decoder directly on framed payloads.
func FuzzDecodeRecord(f *testing.F) {
	b := chainOf(1)[0]
	f.Add(encodeCommit(nil, 1, ^uint64(0), b))
	f.Add(encodeAccept(nil, 2, 1, b.Hash(), types.BatchDigest(b.Txs), b.Txs))
	f.Add(encodeView(nil, 3, 4))
	f.Add([]byte{recCommit})
	f.Add([]byte{recAccept, 1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		rec, err := decodeRecord(payload)
		if err != nil {
			return
		}
		// A structurally valid record must re-encode to an equivalent one.
		var enc []byte
		switch rec.kind {
		case recCommit:
			enc = encodeCommit(nil, rec.seq, rec.valid, rec.block)
		case recAccept:
			enc = encodeAccept(nil, rec.seq, rec.view, rec.parent, rec.digest, rec.txs)
		case recView:
			enc = encodeView(nil, rec.view, rec.promised)
		}
		rec2, err := decodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.kind != rec.kind || rec2.seq != rec.seq || rec2.view != rec.view {
			t.Fatalf("record round-trip mismatch: %+v vs %+v", rec, rec2)
		}
	})
}
