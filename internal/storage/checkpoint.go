package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sharper/internal/types"
)

// Checkpoint files. A checkpoint is a point-in-time snapshot of one
// replica's shard store (balances + applied counter) at a chain height the
// chain log already holds durably — the blocks themselves stay in the
// append-only chain log, so a checkpoint is O(accounts), not O(chain), and
// recovery only re-executes the blocks above it. The whole file is one CRC
// frame, written to a temporary name and atomically renamed into place, so
// a crash mid-write leaves either the previous checkpoint or a complete new
// one — never a half checkpoint that recovery could mistake for state.
//
// Payload layout (inside the frame):
//
//	[8B height][4B naccounts][(8B account, 8B balance)…][8B applied]
//	[4B nfailed][(4B client, 8B seq)…]
//
// The failed list carries the transactions at or below the checkpoint
// height that were ordered but rejected (overdrafts, cross-shard validity
// vetoes): recovery rebuilds the reply cache from it, so a client
// retransmitting an old failed transaction is re-answered Committed=false
// instead of a guess.

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	chainFile  = "chain.log"
)

func ckptName(height uint64) string { return fmt.Sprintf("%s%016x%s", ckptPrefix, height, ckptSuffix) }
func walName(base uint64) string    { return fmt.Sprintf("%s%016x%s", walPrefix, base, walSuffix) }

// parseSeqName extracts the hex sequence from names like prefix<16x>suffix.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hex := name[len(prefix) : len(name)-len(suffix)]
	v, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// snapshot is a decoded checkpoint.
type snapshot struct {
	height   uint64
	balances map[types.AccountID]int64
	applied  int
	failed   []types.TxID
}

// encodeCheckpoint builds the framed checkpoint file contents.
func encodeCheckpoint(height uint64, balances map[types.AccountID]int64, applied int, failed []types.TxID) []byte {
	payload := binary.LittleEndian.AppendUint64(nil, height)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(balances)))
	// Deterministic order keeps checkpoint bytes reproducible for a given
	// state, which makes corruption diagnosable by comparison.
	accts := make([]types.AccountID, 0, len(balances))
	for a := range balances {
		accts = append(accts, a)
	}
	sort.Slice(accts, func(i, j int) bool { return accts[i] < accts[j] })
	for _, a := range accts {
		payload = binary.LittleEndian.AppendUint64(payload, uint64(a))
		payload = binary.LittleEndian.AppendUint64(payload, uint64(balances[a]))
	}
	payload = binary.LittleEndian.AppendUint64(payload, uint64(applied))
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(failed)))
	for _, id := range failed {
		payload = binary.LittleEndian.AppendUint32(payload, uint32(id.Client))
		payload = binary.LittleEndian.AppendUint64(payload, id.Seq)
	}
	return appendFrame(nil, payload)
}

// decodeCheckpoint parses a checkpoint file's contents.
func decodeCheckpoint(data []byte) (*snapshot, error) {
	payload, used, err := readFrame(data)
	if err != nil {
		return nil, err
	}
	if used != len(data) {
		return nil, fmt.Errorf("storage: %d trailing bytes after checkpoint frame", len(data)-used)
	}
	if len(payload) < 12 {
		return nil, fmt.Errorf("storage: short checkpoint payload")
	}
	s := &snapshot{height: binary.LittleEndian.Uint64(payload)}
	nb := int(binary.LittleEndian.Uint32(payload[8:]))
	off := 12
	if len(payload) < off+nb*16+8 {
		return nil, fmt.Errorf("storage: short checkpoint balance section")
	}
	s.balances = make(map[types.AccountID]int64, nb)
	for i := 0; i < nb; i++ {
		a := types.AccountID(binary.LittleEndian.Uint64(payload[off:]))
		s.balances[a] = int64(binary.LittleEndian.Uint64(payload[off+8:]))
		off += 16
	}
	s.applied = int(binary.LittleEndian.Uint64(payload[off:]))
	off += 8
	if len(payload) < off+4 {
		return nil, fmt.Errorf("storage: short checkpoint failed-tx count")
	}
	nf := int(binary.LittleEndian.Uint32(payload[off:]))
	off += 4
	if len(payload) < off+nf*12 {
		return nil, fmt.Errorf("storage: short checkpoint failed-tx section")
	}
	for i := 0; i < nf; i++ {
		s.failed = append(s.failed, types.TxID{
			Client: types.NodeID(binary.LittleEndian.Uint32(payload[off:])),
			Seq:    binary.LittleEndian.Uint64(payload[off+4:]),
		})
		off += 12
	}
	return s, nil
}

// loadBestCheckpoint finds the newest checkpoint in dir that decodes and
// checksums cleanly, falling back to older ones (a crash can race a
// checkpoint write; the rename makes a damaged newest file unlikely but
// recovery does not bet safety on it). Returns nil when none is usable.
func loadBestCheckpoint(dir string) *snapshot {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var heights []uint64
	for _, e := range entries {
		if h, ok := parseSeqName(e.Name(), ckptPrefix, ckptSuffix); ok {
			heights = append(heights, h)
		}
	}
	sort.Slice(heights, func(i, j int) bool { return heights[i] > heights[j] })
	for _, h := range heights {
		data, err := os.ReadFile(filepath.Join(dir, ckptName(h)))
		if err != nil {
			continue
		}
		s, err := decodeCheckpoint(data)
		if err != nil || s.height != h {
			continue
		}
		return s
	}
	return nil
}

// writeCheckpointFile writes the checkpoint durably: temp file, fsync,
// atomic rename, directory fsync.
func writeCheckpointFile(dir string, height uint64, data []byte) error {
	tmp := filepath.Join(dir, ckptName(height)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ckptName(height))); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
