package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sharper/internal/types"
)

// WAL framing. Every record is written as
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// and the payload is [1B record type][type-specific body] built from the
// types package's canonical codecs. The CRC frame is what makes recovery
// safe against torn tails: a record cut short by a crash (or any corrupted
// bytes after it) fails the length or checksum test, and recovery truncates
// the log at the last valid record instead of replaying garbage.
const frameHeader = 4 + 4

// maxRecordLen bounds a single record. A declared length beyond it is
// treated as tail corruption, not an allocation request — a torn length
// field must not ask recovery for gigabytes.
const maxRecordLen = 64 << 20

// crcTable is the Castagnoli polynomial, the hardware-accelerated choice.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record types.
const (
	// recCommit: [8B seq][8B valid][block] — a block committed at chain
	// index seq (genesis is index 0 and is never logged). valid is the
	// per-transaction validity bitmap the decision carried (bit i =
	// transaction i's effects were applied): replaying a block without the
	// remote shards' vetoes would apply transactions this cluster
	// originally rejected.
	recCommit byte = 1
	// recAccept: [8B seq][8B view][32B parent][32B digest][tx batch] — an
	// accepted-but-uncommitted instance (persist-before-ack).
	recAccept byte = 2
	// recView: [8B view][8B promised] — the engine's view position.
	recView byte = 3
)

// appendFrame wraps payload in the length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// beginFrame/finishFrame build one framed record in place, the hot-path
// form of appendFrame: beginFrame reserves the 8-byte header (returning its
// offset), the caller appends the payload directly behind it, and
// finishFrame patches length+CRC over what was appended. One buffer, no
// payload-then-copy step — every per-message WAL write reuses the store's
// scratch buffer without allocating.
func beginFrame(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

func finishFrame(dst []byte, start int) []byte {
	payload := dst[start+frameHeader:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(payload, crcTable))
	return dst
}

// readFrame parses one frame from b, returning the payload and the total
// bytes consumed. An error means the bytes at the front of b are not a
// whole, intact frame — recovery treats that as the end of the log.
func readFrame(b []byte) ([]byte, int, error) {
	if len(b) < frameHeader {
		return nil, 0, fmt.Errorf("storage: short frame header: %d bytes", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecordLen {
		return nil, 0, fmt.Errorf("storage: frame length %d exceeds limit", n)
	}
	if uint64(len(b)-frameHeader) < uint64(n) {
		return nil, 0, fmt.Errorf("storage: torn frame: %d of %d payload bytes", len(b)-frameHeader, n)
	}
	payload := b[frameHeader : frameHeader+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, fmt.Errorf("storage: frame checksum mismatch")
	}
	return payload, frameHeader + int(n), nil
}

// encodeCommit builds a recCommit payload.
func encodeCommit(dst []byte, seq, valid uint64, b *types.Block) []byte {
	dst = append(dst, recCommit)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, valid)
	return b.Encode(dst)
}

// encodeAccept builds a recAccept payload.
func encodeAccept(dst []byte, seq, view uint64, parent, digest types.Hash, txs []*types.Transaction) []byte {
	dst = append(dst, recAccept)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint64(dst, view)
	dst = append(dst, parent[:]...)
	dst = append(dst, digest[:]...)
	return types.EncodeTxBatch(dst, txs)
}

// encodeView builds a recView payload.
func encodeView(dst []byte, view, promised uint64) []byte {
	dst = append(dst, recView)
	dst = binary.LittleEndian.AppendUint64(dst, view)
	return binary.LittleEndian.AppendUint64(dst, promised)
}

// walRecord is one decoded record.
type walRecord struct {
	kind byte

	// recCommit
	seq   uint64
	valid uint64
	block *types.Block

	// recAccept
	view   uint64
	parent types.Hash
	digest types.Hash
	txs    []*types.Transaction

	// recView
	promised uint64
}

// decodeRecord parses a framed payload into a record. Errors mean the
// record is structurally invalid even though its checksum passed — possible
// only for records written by a different (buggy or future) version, so the
// caller stops replay there.
func decodeRecord(payload []byte) (walRecord, error) {
	var r walRecord
	if len(payload) < 1 {
		return r, fmt.Errorf("storage: empty record")
	}
	r.kind = payload[0]
	body := payload[1:]
	switch r.kind {
	case recCommit:
		if len(body) < 16 {
			return r, fmt.Errorf("storage: short commit record")
		}
		r.seq = binary.LittleEndian.Uint64(body)
		r.valid = binary.LittleEndian.Uint64(body[8:])
		b, used, err := types.DecodeBlock(body[16:])
		if err != nil {
			return r, err
		}
		if used != len(body)-16 {
			return r, fmt.Errorf("storage: %d trailing bytes after commit block", len(body)-16-used)
		}
		r.block = b
	case recAccept:
		const fixed = 8 + 8 + 32 + 32
		if len(body) < fixed {
			return r, fmt.Errorf("storage: short accept record")
		}
		r.seq = binary.LittleEndian.Uint64(body)
		r.view = binary.LittleEndian.Uint64(body[8:])
		copy(r.parent[:], body[16:48])
		copy(r.digest[:], body[48:80])
		txs, err := types.DecodeTxBatch(body[fixed:])
		if err != nil {
			return r, err
		}
		if len(txs) == 0 {
			return r, fmt.Errorf("storage: accept record with empty batch")
		}
		r.txs = txs
	case recView:
		if len(body) < 16 {
			return r, fmt.Errorf("storage: short view record")
		}
		r.view = binary.LittleEndian.Uint64(body)
		r.promised = binary.LittleEndian.Uint64(body[8:])
	default:
		return r, fmt.Errorf("storage: unknown record type %d", r.kind)
	}
	return r, nil
}
