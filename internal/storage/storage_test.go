package storage

import (
	"os"
	"path/filepath"
	"testing"

	"sharper/internal/consensus"
	"sharper/internal/types"
)

// testBlock builds a deterministic single-tx block chained to parent.
func testBlock(seq uint64, parent types.Hash) *types.Block {
	tx := &types.Transaction{
		ID:       types.TxID{Client: 1, Seq: seq},
		Client:   1,
		Ops:      []types.Op{{From: types.AccountID(seq), To: types.AccountID(seq + 1), Amount: 1}},
		Involved: types.NewClusterSet(0),
	}
	return &types.Block{Txs: []*types.Transaction{tx}, Parents: []types.Hash{parent}}
}

// chainOf builds n blocks hash-chained from a genesis-like root.
func chainOf(n int) []*types.Block {
	parent := types.HashBytes([]byte("genesis"))
	out := make([]*types.Block, 0, n)
	for i := 1; i <= n; i++ {
		b := testBlock(uint64(i), parent)
		parent = b.Hash()
		out = append(out, b)
	}
	return out
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := chainOf(3)
	for i, b := range blocks {
		st.AppendCommit(uint64(i+1), ^uint64(0), b)
	}
	st.PersistAccept(4, 2, blocks[2].Hash(), types.BatchDigest(blocks[2].Txs), blocks[2].Txs)
	st.PersistView(2, 3)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Blocks) != 3 {
		t.Fatalf("recovered %d blocks, want 3", len(rec.Blocks))
	}
	for i, b := range rec.Blocks {
		if b.Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch after recovery", i)
		}
	}
	if len(rec.Valid) != 3 || rec.Valid[0] != ^uint64(0) {
		t.Fatalf("validity bitmaps lost: %v", rec.Valid)
	}
	if rec.View != 2 || rec.Promised != 3 {
		t.Fatalf("recovered view=%d promised=%d, want 2/3", rec.View, rec.Promised)
	}
	if len(rec.Accepted) != 1 || rec.Accepted[0].Seq != 4 || len(rec.Accepted[0].Txs) != 1 {
		t.Fatalf("recovered accepted = %+v, want one instance at seq 4", rec.Accepted)
	}
	if rec.HaveSnapshot {
		t.Fatal("no checkpoint was written, but recovery claims a snapshot")
	}
}

// TestWALTornTailTruncated cuts the chain log mid-record: recovery must
// keep the valid prefix, truncate the garbage, and leave the log appendable.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := chainOf(2)
	st.AppendCommit(1, ^uint64(0), blocks[0])
	st.AppendCommit(2, ^uint64(0), blocks[1])
	st.Close()

	path := filepath.Join(dir, chainFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append half of a duplicated record: a torn write.
	torn := append(append([]byte{}, data...), data[:len(data)/3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovered()
	if len(rec.Blocks) != 2 {
		t.Fatalf("recovered %d blocks from torn log, want 2", len(rec.Blocks))
	}
	// The tail must have been truncated so new appends extend a valid log.
	st2.AppendCommit(3, ^uint64(0), testBlock(3, blocks[1].Hash()))
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := len(st3.Recovered().Blocks); got != 3 {
		t.Fatalf("recovered %d blocks after post-truncation append, want 3", got)
	}
}

// TestWALCorruptMiddleStopsReplay flips a byte inside an early record: the
// CRC must reject it and recovery must stop at the last record before it
// (suffix records chained past corruption cannot be trusted).
func TestWALCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	blocks := chainOf(3)
	for i, b := range blocks {
		st.AppendCommit(uint64(i+1), ^uint64(0), b)
	}
	st.Close()

	path := filepath.Join(dir, chainFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := len(st2.Recovered().Blocks); got >= 3 {
		t.Fatalf("recovered %d blocks through corruption, want a strict prefix", got)
	}
}

func TestCheckpointTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{CheckpointInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	blocks := chainOf(6)
	for i, b := range blocks {
		st.AppendCommit(uint64(i+1), ^uint64(0), b)
	}
	balances := map[types.AccountID]int64{1: 100, 2: 200}
	live := []consensus.DurableInstance{{
		Seq: 7, View: 1, Parent: blocks[5].Hash(),
		Digest: types.BatchDigest(blocks[5].Txs), Txs: blocks[5].Txs,
	}}
	if !st.CheckpointDue(6) {
		t.Fatal("checkpoint not due at height 6 with interval 4")
	}
	failed := []types.TxID{{Client: 1, Seq: 3}}
	if err := st.Checkpoint(6, balances, 6, failed, 1, 2, live); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint traffic lands in the new segment.
	b7 := testBlock(8, blocks[5].Hash())
	st.AppendCommit(7, ^uint64(0), b7)
	st.Close()

	// Only one segment and one checkpoint remain.
	entries, _ := os.ReadDir(dir)
	var segs, ckpts int
	for _, e := range entries {
		if _, ok := parseSeqName(e.Name(), walPrefix, walSuffix); ok {
			segs++
		}
		if _, ok := parseSeqName(e.Name(), ckptPrefix, ckptSuffix); ok {
			ckpts++
		}
	}
	if segs != 1 || ckpts != 1 {
		t.Fatalf("after checkpoint: %d segments, %d checkpoints; want 1 and 1", segs, ckpts)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if !rec.HaveSnapshot || rec.SnapshotSeq != 6 {
		t.Fatalf("snapshot not recovered: have=%v seq=%d", rec.HaveSnapshot, rec.SnapshotSeq)
	}
	if rec.Balances[1] != 100 || rec.Balances[2] != 200 || rec.Applied != 6 {
		t.Fatalf("snapshot contents wrong: %+v applied=%d", rec.Balances, rec.Applied)
	}
	if !rec.FailedTxs[types.TxID{Client: 1, Seq: 3}] || len(rec.FailedTxs) != 1 {
		t.Fatalf("failed-tx verdicts lost: %+v", rec.FailedTxs)
	}
	if len(rec.Blocks) != 7 || rec.Blocks[6].Hash() != b7.Hash() {
		t.Fatalf("recovered %d blocks, want 7 ending with the post-checkpoint block", len(rec.Blocks))
	}
	if rec.View != 1 || rec.Promised != 2 {
		t.Fatalf("seeded view state lost: view=%d promised=%d", rec.View, rec.Promised)
	}
	// The seq-7 acceptance was superseded by the commit of chain index 7
	// (the replay drops acceptances at or below the committed head); an
	// acceptance above the head must have survived the rotation, which
	// TestCheckpointKeepsLiveAcceptance pins down.
	if len(rec.Accepted) != 0 {
		t.Fatalf("superseded acceptance survived: %+v", rec.Accepted)
	}
}

// TestCheckpointKeepsLiveAcceptance checks the rotation re-seeds
// still-uncommitted acceptances into the fresh segment: truncating the old
// segment must not let a restarted acceptor renege.
func TestCheckpointKeepsLiveAcceptance(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{CheckpointInterval: 2})
	blocks := chainOf(2)
	for i, b := range blocks {
		st.AppendCommit(uint64(i+1), ^uint64(0), b)
	}
	pending := testBlock(9, blocks[1].Hash())
	live := []consensus.DurableInstance{{
		Seq: 3, View: 1, Parent: blocks[1].Hash(),
		Digest: types.BatchDigest(pending.Txs), Txs: pending.Txs,
	}}
	if err := st.Checkpoint(2, map[types.AccountID]int64{1: 5}, 2, nil, 1, 1, live); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Accepted) != 1 || rec.Accepted[0].Seq != 3 ||
		rec.Accepted[0].Digest != types.BatchDigest(pending.Txs) {
		t.Fatalf("live acceptance lost across rotation: %+v", rec.Accepted)
	}
}

// TestCorruptNewestCheckpointFallsBack damages the newest checkpoint file;
// recovery must fall back to the older one rather than fail or trust it.
func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{CheckpointInterval: 2})
	blocks := chainOf(4)
	for i, b := range blocks {
		st.AppendCommit(uint64(i+1), ^uint64(0), b)
	}
	if err := st.Checkpoint(2, map[types.AccountID]int64{1: 10}, 2, nil, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Forge a newer checkpoint with a bad checksum.
	bad := encodeCheckpoint(4, map[types.AccountID]int64{1: 999}, 4, nil)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, ckptName(4)), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if !rec.HaveSnapshot || rec.SnapshotSeq != 2 || rec.Balances[1] != 10 {
		t.Fatalf("did not fall back to the valid checkpoint: %+v", rec)
	}
}

// TestSnapshotAheadOfChainDistrusted forges a checkpoint claiming a height
// the chain log does not reach: recovery must ignore it (trusting it would
// let chain sync double-apply the missing blocks' transactions).
func TestSnapshotAheadOfChainDistrusted(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	st.AppendCommit(1, ^uint64(0), chainOf(1)[0])
	st.Close()

	forged := encodeCheckpoint(5, map[types.AccountID]int64{1: 42}, 5, nil)
	if err := os.WriteFile(filepath.Join(dir, ckptName(5)), forged, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered().HaveSnapshot {
		t.Fatal("recovery trusted a snapshot ahead of the durable chain")
	}
}

// TestAcceptSupersededByHigherView checks last-wins replay of re-accepted
// slots: only the highest-view binding for a slot survives recovery.
func TestAcceptSupersededByHigherView(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir, Options{})
	b := chainOf(1)[0]
	st.PersistAccept(1, 0, types.ZeroHash, types.BatchDigest(b.Txs), b.Txs)
	b2 := testBlock(99, types.ZeroHash)
	st.PersistAccept(1, 2, types.ZeroHash, types.BatchDigest(b2.Txs), b2.Txs)
	st.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Accepted) != 1 {
		t.Fatalf("recovered %d acceptances for one slot, want 1", len(rec.Accepted))
	}
	if rec.Accepted[0].View != 2 || rec.Accepted[0].Txs[0].ID.Seq != 99 {
		t.Fatalf("recovery kept the stale acceptance: %+v", rec.Accepted[0])
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncNone, SyncGroup, SyncAlways} {
		dir := t.TempDir()
		st, err := Open(dir, Options{Sync: p})
		if err != nil {
			t.Fatal(err)
		}
		st.AppendCommit(1, ^uint64(0), chainOf(1)[0])
		st.Flush()
		st.Close()
		st2, err := Open(dir, Options{Sync: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if len(st2.Recovered().Blocks) != 1 {
			t.Fatalf("%v: lost the committed block", p)
		}
		st2.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"": SyncGroup, "1": SyncGroup, "group": SyncGroup,
		"none": SyncNone, "always": SyncAlways,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// TestEvidenceAppendAndReload: fraud proofs appended to the evidence log
// survive a close/reopen cycle intact and in order, and a corrupted tail
// truncates the scan rather than failing it — evidence recovered so far must
// stay usable.
func TestEvidenceAppendAndReload(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("proof-one"), []byte("proof-two"), []byte("proof-three")}
	for _, p := range want {
		if err := st.AppendEvidence(p); err != nil {
			t.Fatal(err)
		}
	}
	check := func(st *Store) {
		t.Helper()
		got, err := st.Evidence()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("got %d evidence records, want %d", len(got), len(want))
		}
		for i := range want {
			if string(got[i]) != string(want[i]) {
				t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
			}
		}
	}
	check(st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a torn final write.
	f, err := os.OpenFile(filepath.Join(dir, evidenceFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	check(st2)
}

// TestAppendCommitBatchRoundTrip writes one group-commit batch (several
// commit records framed and fsynced as a single append) and recovers it:
// batched framing must be byte-compatible with the one-record path.
func TestAppendCommitBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	blocks := chainOf(4)
	recs := make([]CommitRecord, len(blocks))
	for i, b := range blocks {
		recs[i] = CommitRecord{Seq: uint64(i + 1), Valid: ^uint64(0), Block: b}
	}
	st.AppendCommitBatch(recs)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Blocks) != 4 {
		t.Fatalf("recovered %d blocks from a batched append, want 4", len(rec.Blocks))
	}
	for i, b := range rec.Blocks {
		if b.Hash() != blocks[i].Hash() {
			t.Fatalf("block %d hash mismatch after batched append", i)
		}
	}
}

// TestAppendCommitBatchTornMidGroup models kill -9 between group-commit
// fsync boundaries: a batch of commit records is appended as one group,
// but the crash leaves only part of it on disk (the unsynced tail is
// torn). Recovery must keep exactly the record-aligned prefix — never a
// half record — and leave the log appendable so the replica can re-commit
// the lost suffix fetched from its peers.
func TestAppendCommitBatchTornMidGroup(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocks := chainOf(4)
	recs := make([]CommitRecord, len(blocks))
	for i, b := range blocks {
		recs[i] = CommitRecord{Seq: uint64(i + 1), Valid: ^uint64(0), Block: b}
	}
	st.AppendCommitBatch(recs)
	st.Close()

	path := filepath.Join(dir, chainFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the group: 5/8 of four same-shaped records lands mid-way
	// through the third, so a strict prefix of the group survives.
	if err := os.WriteFile(path, data[:len(data)*5/8], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := st2.Recovered()
	kept := len(rec.Blocks)
	if kept == 0 || kept >= 4 {
		t.Fatalf("recovered %d blocks from torn group, want a strict non-empty prefix of 4", kept)
	}
	for i := 0; i < kept; i++ {
		if rec.Blocks[i].Hash() != blocks[i].Hash() {
			t.Fatalf("block %d corrupted by torn-group truncation", i)
		}
	}
	// Re-append the lost suffix (as chain sync would) and confirm the log
	// reads back whole.
	tail := make([]CommitRecord, 0, 4-kept)
	for i := kept; i < 4; i++ {
		tail = append(tail, CommitRecord{Seq: uint64(i + 1), Valid: ^uint64(0), Block: blocks[i]})
	}
	st2.AppendCommitBatch(tail)
	st2.Close()
	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if got := len(st3.Recovered().Blocks); got != 4 {
		t.Fatalf("after re-append recovered %d blocks, want 4", got)
	}
}
