// Package storage is the per-replica durability subsystem. Three kinds of
// files live in a replica's data directory, all built from length-prefixed,
// CRC-framed records over the types package's canonical codecs:
//
//   - chain.log — the append-only block log: every committed block, in
//     chain order, written before its effects happen and never rewritten.
//   - wal-<height>.log — the acceptor log: accepted-but-uncommitted
//     consensus instances and view positions, written BEFORE the message
//     they vouch for leaves the node (persist-before-ack), rotated and
//     truncated at each checkpoint.
//   - checkpoint-<height>.ckpt — a snapshot of the shard store (balances +
//     applied counter) at a chain height, so recovery re-executes only the
//     blocks above it. O(accounts), not O(chain).
//
// Crash-restart recovery rebuilds a warm replica from chain + checkpoint +
// acceptor log; torn or corrupted tails are detected by the CRC frames and
// truncated at the last valid record. The paper's system model (§2.1) gives
// replicas stable storage; this package is that storage.
//
// Durability contract, by layer:
//
//   - Acceptor state (accepts, promises) is written to the log BEFORE the
//     message it vouches for leaves the node (consensus.Persister,
//     persist-before-ack). The write always reaches the kernel before the
//     send, so killing the process (kill -9) can never make a replica renege
//     on a promise or an acceptance.
//   - Committed blocks are logged after the local append succeeds and before
//     the block's effects (execution, client replies) happen. Losing the
//     tail commit record is safe — the cluster quorum holds the block, and
//     chain sync refetches it on restart.
//   - The fsync policy (SyncPolicy) decides what survives an OS or machine
//     crash: SyncAlways fsyncs every record, SyncGroup batches fsyncs into
//     one per node tick (bounded window), SyncNone leaves it to the kernel.
package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// SyncPolicy selects when the write-ahead log is fsynced. Every policy
// writes records to the kernel before the corresponding protocol message is
// sent, so process death never loses acknowledged state; the policies differ
// only in what an OS/power failure can take.
type SyncPolicy int

const (
	// SyncGroup (the default) batches fsyncs: a background flusher syncs
	// dirty log data every flushInterval, amortizing one fsync over every
	// record the window's traffic produced without ever blocking the node's
	// event loop on the disk. An OS crash can lose at most one window of
	// acknowledgements; a process crash loses nothing (the writes are
	// already in the kernel).
	SyncGroup SyncPolicy = iota
	// SyncNone never fsyncs; the kernel writes back on its own schedule.
	// Process crashes lose nothing, OS crashes may.
	SyncNone
	// SyncAlways fsyncs after every record — full persist-before-ack even
	// against power failure, at a per-record latency cost.
	SyncAlways
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncNone:
		return "none"
	case SyncAlways:
		return "always"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy maps the flag/env spellings to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "group", "", "1", "true":
		return SyncGroup, nil
	case "none":
		return SyncNone, nil
	case "always":
		return SyncAlways, nil
	default:
		return SyncGroup, fmt.Errorf("storage: unknown sync policy %q (want none, group, or always)", s)
	}
}

// Options tunes a Store.
type Options struct {
	// Sync is the fsync policy (default SyncGroup).
	Sync SyncPolicy
	// CheckpointInterval is how many committed blocks accumulate before the
	// next checkpoint (default 256). Checkpoints bound both recovery replay
	// and log growth.
	CheckpointInterval int
	// Metrics, when non-nil, receives storage instrumentation (fsync
	// latency, WAL bytes, checkpoint count). Each store wants its own
	// bundle: the handles belong to one node's registry.
	Metrics *obs.StoreMetrics
}

func (o *Options) fill() {
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 256
	}
}

// Recovered is the durable state Open reconstructed, ready to warm a node.
type Recovered struct {
	// Blocks is the committed chain after genesis: Blocks[i] is chain index
	// i+1, replayed from the append-only chain log. Valid[i] is block i's
	// per-transaction validity bitmap (the cross-shard vote outcome; all
	// ones for intra-shard blocks).
	Blocks []*types.Block
	Valid  []uint64
	// HaveSnapshot reports whether a checkpoint supplied Balances/Applied.
	// Without one, the store state is rebuilt by re-executing Blocks over
	// the (deterministic) genesis seed.
	HaveSnapshot bool
	// SnapshotSeq is the chain height Balances reflects (0 when none).
	SnapshotSeq uint64
	// Balances and Applied are the shard store snapshot at SnapshotSeq.
	Balances map[types.AccountID]int64
	Applied  int
	// FailedTxs are the ordered-but-rejected transactions at or below
	// SnapshotSeq, for honest reply-cache reconstruction.
	FailedTxs map[types.TxID]bool
	// View and Promised restore the intra engine's view position.
	View, Promised uint64
	// Accepted are the accepted-but-uncommitted instances above the
	// recovered chain head, which the engine must keep honoring.
	Accepted []consensus.DurableInstance
}

// Fresh reports whether recovery found no prior state at all.
func (r *Recovered) Fresh() bool {
	return len(r.Blocks) == 0 && !r.HaveSnapshot && r.View == 0 && r.Promised == 0 && len(r.Accepted) == 0
}

// Store is one replica's durable storage handle: an open write-ahead log
// segment plus the state recovered at Open time. It is safe for concurrent
// use, though in practice only the node's event loop writes.
type Store struct {
	dir  string
	opts Options

	mu sync.Mutex
	// chain is the append-only block log (chain.log): commit records from
	// chain index 1 up, never rewritten or truncated (the chain IS the
	// data; checkpoints only snapshot derived state). Writes go through
	// chainW, a userspace buffer: unlike acceptor records, chain records
	// have no persist-before-ack obligation — a lost tail is refetched from
	// the cluster by chain sync — so they skip the per-record syscall. The
	// buffer is flushed by the SyncGroup flusher, at checkpoints, and at
	// Close (and whenever it fills).
	chain      *os.File
	chainW     *bufio.Writer
	chainDirty bool
	// wal is the current acceptor-log segment (wal-<base>.log):
	// accepted-but-uncommitted instances and view positions, rotated and
	// truncated at each checkpoint.
	wal      *os.File
	walBase  uint64
	walDirty bool
	// evid is the fraud-proof evidence log (evidence.log), opened lazily on
	// the first AppendEvidence; see evidence.go.
	evid    *os.File
	ckptSeq uint64
	closed  bool
	buf     []byte // framed-record scratch, reused under mu (see frameRecord)

	// flushStop terminates the SyncGroup background flusher.
	flushStop chan struct{}
	flushDone chan struct{}

	rec Recovered
}

// flusherSeq staggers colocated stores' flusher phases.
var flusherSeq atomic.Int64

// flushInterval is the SyncGroup flusher cadence — the bounded window of
// acknowledged acceptor state an OS crash can cost (a process crash costs
// nothing: every record is in the kernel before its ack leaves). The window
// is deliberately generous: every fsync forces a filesystem journal commit
// that stalls all concurrent appenders, so a colocated deployment's fsync
// rate must stay well below the journal's commit throughput or disk latency
// leaks into consensus latency (measured here: halving the window costs
// double-digit percent throughput with 12 colocated replicas). 50ms is
// still 4× tighter than e.g. PostgreSQL's default wal_writer_delay (200ms).
const flushInterval = 50 * time.Millisecond

// Open recovers the replica state under dir (creating it if needed) and
// opens the log for appending. Corrupted or torn log tails are detected by
// the CRC frames and truncated at the last valid record; a damaged newest
// checkpoint falls back to the previous one.
func Open(dir string, opts Options) (*Store, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts}

	// The chain log holds every committed block; a torn tail is truncated.
	if err := s.replayChain(filepath.Join(dir, chainFile)); err != nil {
		return nil, err
	}
	height := uint64(len(s.rec.Blocks))

	// The shard-store snapshot is trusted only when the chain log durably
	// reaches its height (Checkpoint fsyncs the chain first, so a shorter
	// chain means the files were damaged independently).
	if snap := loadBestCheckpoint(dir); snap != nil && snap.height <= height {
		s.ckptSeq = snap.height
		s.rec.HaveSnapshot = true
		s.rec.SnapshotSeq = snap.height
		s.rec.Balances = snap.balances
		s.rec.Applied = snap.applied
		s.rec.FailedTxs = make(map[types.TxID]bool, len(snap.failed))
		for _, id := range snap.failed {
			s.rec.FailedTxs[id] = true
		}
	}

	bases, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	accepted := make(map[uint64]consensus.DurableInstance)
	for i, base := range bases {
		tail := i == len(bases)-1
		if err := s.replaySegment(filepath.Join(dir, walName(base)), tail, accepted); err != nil {
			return nil, err
		}
	}
	for seq, inst := range accepted {
		if seq > height {
			s.rec.Accepted = append(s.rec.Accepted, inst)
		}
	}
	sort.Slice(s.rec.Accepted, func(i, j int) bool { return s.rec.Accepted[i].Seq < s.rec.Accepted[j].Seq })

	cf, err := os.OpenFile(filepath.Join(dir, chainFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	s.chain = cf
	s.chainW = bufio.NewWriterSize(cf, 64<<10)

	// Open the newest acceptor segment for appending (creating the first
	// one on a fresh directory). Older segments are NOT deleted here: a
	// crash may have torn the newest segment's rotation seed, leaving an
	// old segment as the only durable copy of a live acceptance — cleanup
	// belongs to the next successful Checkpoint, which re-seeds everything
	// live into a fresh fsynced segment first.
	base := s.ckptSeq
	if len(bases) > 0 {
		base = bases[len(bases)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, walName(base)), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		cf.Close()
		return nil, err
	}
	s.wal = f
	s.walBase = base
	if opts.Sync == SyncGroup {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// replayChain loads the committed chain from the append-only block log:
// contiguous commit records from index 1. The first invalid or out-of-order
// frame ends the chain; the file is truncated there so appends extend a
// valid log.
func (s *Store) replayChain(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	off := 0
	for off < len(data) {
		payload, used, err := readFrame(data[off:])
		if err != nil {
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil || rec.kind != recCommit || rec.seq != uint64(len(s.rec.Blocks))+1 {
			break
		}
		s.rec.Blocks = append(s.rec.Blocks, rec.block)
		s.rec.Valid = append(s.rec.Valid, rec.valid)
		off += used
	}
	if off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("storage: truncating torn chain tail: %w", err)
		}
	}
	return nil
}

// flusher is the SyncGroup background goroutine: it fsyncs dirty acceptor
// records every flushInterval, off the node's event loop, so consensus
// latency never rides on disk latency. Only the acceptor log needs the
// cadence — losing unsynced chain-log tail records is safe (the cluster
// quorum holds every committed block and chain sync refetches it), and the
// chain is fsynced at every checkpoint and at Close. The fsync itself runs
// outside the store mutex — os.File is safe for concurrent use, and writes
// landing during the fsync are simply picked up by the next window.
func (s *Store) flusher() {
	defer close(s.flushDone)
	// Colocated replicas open their stores nearly simultaneously; a phase
	// offset keeps their fsyncs from arriving at the filesystem journal in
	// synchronized bursts.
	select {
	case <-time.After(time.Duration(flusherSeq.Add(1)) * flushInterval / 7 % flushInterval):
	case <-s.flushStop:
		return
	}
	t := time.NewTicker(flushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.chainW != nil {
				s.chainW.Flush() // chain tail to the kernel (no fsync needed)
			}
			wf := s.wal
			walDirty := s.walDirty && !s.closed
			s.walDirty = false
			s.mu.Unlock()
			if walDirty && wf != nil {
				s.timedSync(wf) // a swapped-out (checkpoint-rotated) file syncs harmlessly
			}
		}
	}
}

// walSegments lists the log segment bases in dir, ascending.
func walSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range entries {
		if b, ok := parseSeqName(e.Name(), walPrefix, walSuffix); ok {
			bases = append(bases, b)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// replaySegment applies one acceptor-log segment's records to the recovered
// state. The first invalid frame ends the segment; when the segment is the
// log's tail, the file is truncated there so future appends extend a valid
// log.
func (s *Store) replaySegment(path string, tail bool, accepted map[uint64]consensus.DurableInstance) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		payload, used, err := readFrame(data[off:])
		if err != nil {
			break // torn or corrupted tail: stop at the last valid record
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			break
		}
		off += used
		switch rec.kind {
		case recAccept:
			accepted[rec.seq] = consensus.DurableInstance{
				Seq: rec.seq, View: rec.view, Parent: rec.parent, Digest: rec.digest, Txs: rec.txs,
			}
		case recView:
			if rec.view > s.rec.View {
				s.rec.View = rec.view
			}
			if rec.promised > s.rec.Promised {
				s.rec.Promised = rec.promised
			}
		default:
			// Commit records live in the chain log; one here is skipped.
		}
	}
	if tail && off < len(data) {
		if err := os.Truncate(path, int64(off)); err != nil {
			return fmt.Errorf("storage: truncating torn log tail of %s: %w", path, err)
		}
	}
	return nil
}

// Recovered returns the state reconstructed at Open time.
func (s *Store) Recovered() *Recovered { return &s.rec }

// Dir returns the storage directory.
func (s *Store) Dir() string { return s.dir }

// writeLocked writes the framed record(s) staged in s.buf to f, tracking
// dirtiness in *dirty. The error reports a record that did not reach the
// kernel (torn short writes are left for recovery's CRC truncation). Caller
// holds mu and has built s.buf with beginFrame/finishFrame.
func (s *Store) writeLocked(f *os.File, dirty *bool) error {
	if s.closed || f == nil {
		return fmt.Errorf("storage: store is closed")
	}
	if _, err := f.Write(s.buf); err != nil {
		return err // disk full/error; recovery truncates at the last whole record
	}
	s.opts.Metrics.WAL().Add(uint64(len(s.buf)))
	if s.opts.Sync == SyncAlways {
		return s.timedSync(f)
	}
	*dirty = true
	return nil
}

// timedSync fsyncs f, feeding the latency histogram when one is attached.
func (s *Store) timedSync(f *os.File) error {
	if s.opts.Metrics == nil {
		return f.Sync()
	}
	start := time.Now()
	err := f.Sync()
	s.opts.Metrics.Fsync().Observe(uint64(time.Since(start).Microseconds()))
	return err
}

// CommitRecord is one committed block bound for the chain log, as passed to
// AppendCommitBatch: the chain index it was committed at, the decision's
// validity bitmap, and the block itself.
type CommitRecord struct {
	Seq   uint64
	Valid uint64
	Block *types.Block
}

// AppendCommit logs a block committed at chain index seq to the chain log
// (buffered; see the chainW field for why that is safe), together with the
// decision's validity bitmap.
func (s *Store) AppendCommit(seq, valid uint64, b *types.Block) {
	s.AppendCommitBatch([]CommitRecord{{Seq: seq, Valid: valid, Block: b}})
}

// AppendCommitBatch is the group-commit form of AppendCommit: all records are
// framed into one buffer and written to the chain log under a single mutex
// acquisition and, under SyncAlways, a single fsync for the whole group.
// The commit pipeline uses it to amortize durability cost across the blocks
// that accumulated while the previous group was being persisted.
func (s *Store) AppendCommitBatch(recs []CommitRecord) {
	if len(recs) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.chainW == nil {
		return
	}
	s.buf = s.buf[:0]
	for _, r := range recs {
		var start int
		s.buf, start = beginFrame(s.buf)
		s.buf = finishFrame(encodeCommit(s.buf, r.Seq, r.Valid, r.Block), start)
	}
	if _, err := s.chainW.Write(s.buf); err != nil {
		return // disk full/error: degraded to in-memory
	}
	s.opts.Metrics.WAL().Add(uint64(len(s.buf)))
	s.chainDirty = true
	if s.opts.Sync == SyncAlways {
		s.chainW.Flush()
		s.timedSync(s.chain)
		s.chainDirty = false
	}
}

// PersistAccept logs an accepted-but-uncommitted instance (the
// consensus.Persister hook). It is called before the acceptance leaves the
// node; an error means the engine must withhold the acceptance.
func (s *Store) PersistAccept(seq, view uint64, parent, digest types.Hash, txs []*types.Transaction) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var start int
	s.buf, start = beginFrame(s.buf[:0])
	s.buf = finishFrame(encodeAccept(s.buf, seq, view, parent, digest, txs), start)
	return s.writeLocked(s.wal, &s.walDirty)
}

// PersistView logs the engine's view position (the consensus.Persister
// hook). It is called before the view-change vote leaves the node; an
// error means the engine must withhold the vote.
func (s *Store) PersistView(view, promised uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var start int
	s.buf, start = beginFrame(s.buf[:0])
	s.buf = finishFrame(encodeView(s.buf, view, promised), start)
	return s.writeLocked(s.wal, &s.walDirty)
}

// Flush synchronously fsyncs dirty log data (SyncGroup normally leaves this
// to the background flusher; SyncNone never syncs).
func (s *Store) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.Sync != SyncGroup {
		return
	}
	if s.chainDirty {
		s.chainDirty = false
		s.chainW.Flush()
		s.timedSync(s.chain)
	}
	if s.walDirty {
		s.walDirty = false
		s.timedSync(s.wal)
	}
}

// CheckpointDue reports whether the chain has grown enough past the last
// checkpoint to take a new one.
func (s *Store) CheckpointDue(height uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed && height >= s.ckptSeq+uint64(s.opts.CheckpointInterval)
}

// Checkpoint snapshots the shard store at chain height and rotates the
// acceptor log: a new segment starts at the checkpoint, seeded with the
// engine's still-live durable state (view position and uncommitted
// acceptances, which must survive the truncation of the old segment), and
// older segments and checkpoints are deleted. The chain log is fsynced
// first so the snapshot never gets ahead of the durable chain; the blocks
// themselves are never rewritten.
func (s *Store) Checkpoint(height uint64, balances map[types.AccountID]int64,
	applied int, failed []types.TxID, view, promised uint64,
	accepted []consensus.DurableInstance) error {
	data := encodeCheckpoint(height, balances, applied, failed)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storage: checkpoint on closed store")
	}
	// The snapshot is only trusted up to the durable chain (recovery checks
	// snap.height <= chain length), so the chain must hit disk first.
	if err := s.chainW.Flush(); err != nil {
		return err
	}
	if err := s.timedSync(s.chain); err != nil {
		return err
	}
	s.chainDirty = false
	if err := writeCheckpointFile(s.dir, height, data); err != nil {
		return err
	}

	// Rotate: new segment seeded with the live acceptor state.
	newPath := filepath.Join(s.dir, walName(height))
	f, err := os.OpenFile(newPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	buf, fstart := beginFrame(nil)
	buf = finishFrame(encodeView(buf, view, promised), fstart)
	for _, inst := range accepted {
		if inst.Seq > height {
			buf, fstart = beginFrame(buf)
			buf = finishFrame(encodeAccept(buf, inst.Seq, inst.View, inst.Parent, inst.Digest, inst.Txs), fstart)
		}
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(newPath)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(newPath)
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}

	s.wal.Close()
	s.wal = f
	s.walBase = height
	s.walDirty = false
	s.opts.Metrics.Ckpt().Inc()

	// Old checkpoints and acceptor segments are garbage now: the fresh
	// fsynced segment holds every live obligation, so every other segment
	// (the rotated-out one and any crash leftovers Open kept) can go.
	if entries, err := os.ReadDir(s.dir); err == nil {
		for _, e := range entries {
			if h, ok := parseSeqName(e.Name(), ckptPrefix, ckptSuffix); ok && h < height {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
			if b, ok := parseSeqName(e.Name(), walPrefix, walSuffix); ok && b != height {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	s.ckptSeq = height
	return nil
}

// Close flushes and closes the log. Idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop := s.flushStop
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.flushDone
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.chain != nil {
		s.chainW.Flush()
		if s.chainDirty && s.opts.Sync != SyncNone {
			s.chain.Sync()
		}
		err = s.chain.Close()
		s.chain, s.chainW = nil, nil
	}
	if s.wal != nil {
		if s.walDirty && s.opts.Sync != SyncNone {
			s.wal.Sync()
		}
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
		s.wal = nil
	}
	if s.evid != nil {
		if eerr := s.evid.Close(); err == nil {
			err = eerr
		}
		s.evid = nil
	}
	return err
}

// Interface check: Store is the engines' durability hook.
var _ consensus.Persister = (*Store)(nil)
