package ledger

import (
	"fmt"
	"sort"

	"sharper/internal/types"
)

// DAG is the union of per-cluster views: the full blockchain ledger of
// Fig. 2(a). SharPer never materializes it at any node (§2.3); this type
// exists for verification, audits, and visualization in tests, examples,
// and tools.
type DAG struct {
	views map[types.ClusterID]*View
}

// NewDAG builds the union over the given views.
func NewDAG(views ...*View) *DAG {
	m := make(map[types.ClusterID]*View, len(views))
	for _, v := range views {
		m[v.Cluster()] = v
	}
	return &DAG{views: m}
}

// Clusters returns the participating clusters in ascending order.
func (d *DAG) Clusters() []types.ClusterID {
	out := make([]types.ClusterID, 0, len(d.views))
	for c := range d.views {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Verify checks global consistency of the union:
//
//  1. every view's internal hash chain holds (View.Verify), and
//  2. every cross-shard block committed by one involved cluster is
//     committed by all involved clusters with identical content — this is
//     the §3.2 safety condition that conflicting cross-shard transactions
//     are ordered identically on overlapping clusters.
//
// Views may legitimately be mid-commit on their last few blocks when
// sampled concurrently with consensus, so Verify is intended for quiesced
// systems (tests stop traffic first).
func (d *DAG) Verify() error {
	for _, v := range d.views {
		if err := v.Verify(); err != nil {
			return err
		}
	}
	// Cross-shard agreement: same tx ⇒ same block hash everywhere it appears
	// (a batched cross-shard block commits identically on every involved
	// cluster, so every transaction of the batch maps to the same hash).
	seen := make(map[types.TxID]types.Hash)
	for _, v := range d.views {
		for _, b := range v.CrossShardBlocks() {
			h := b.Hash()
			for _, tx := range b.Txs {
				if prev, ok := seen[tx.ID]; ok && prev != h {
					return fmt.Errorf("ledger: cross-shard tx %s committed with diverging content", tx.ID)
				}
				seen[tx.ID] = h
			}
		}
	}
	// Every involved cluster we hold a view for must have the block.
	for _, v := range d.views {
		for _, b := range v.CrossShardBlocks() {
			for _, tx := range b.Txs {
				for _, c := range tx.Involved {
					ov, ok := d.views[c]
					if !ok {
						continue // partial union: tolerated
					}
					if !ov.Contains(tx.ID) {
						return fmt.Errorf("ledger: cross-shard tx %s missing from involved cluster %s", tx.ID, c)
					}
				}
			}
		}
	}
	return nil
}

// VerifyPairwiseOrder checks that every pair of cross-shard transactions
// sharing two or more common clusters commits in the same relative order in
// each shared view. Together with per-view chains this implies the DAG is
// acyclic.
func (d *DAG) VerifyPairwiseOrder() error {
	// position[txID][cluster] = index in that cluster's view
	position := make(map[types.TxID]map[types.ClusterID]int)
	for c, v := range d.views {
		for i, b := range v.Blocks() {
			if i == 0 || !b.IsCrossShard() {
				continue
			}
			for _, tx := range b.Txs {
				m, ok := position[tx.ID]
				if !ok {
					m = make(map[types.ClusterID]int)
					position[tx.ID] = m
				}
				m[c] = i
			}
		}
	}
	ids := make([]types.TxID, 0, len(position))
	for id := range position {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Client != ids[j].Client {
			return ids[i].Client < ids[j].Client
		}
		return ids[i].Seq < ids[j].Seq
	})
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := position[ids[i]], position[ids[j]]
			order := 0 // 0 unknown, 1 a<b, -1 a>b
			for c, pa := range a {
				pb, ok := b[c]
				if !ok {
					continue
				}
				var o int
				if pa < pb {
					o = 1
				} else {
					o = -1
				}
				if order == 0 {
					order = o
				} else if order != o {
					return fmt.Errorf("ledger: txs %s and %s commit in conflicting orders on overlapping clusters",
						ids[i], ids[j])
				}
				_ = c
			}
		}
	}
	return nil
}

// RenderASCII produces a compact textual rendering of the DAG in commit
// order per cluster, used by examples to show the Fig. 2 structure.
func (d *DAG) RenderASCII() string {
	out := ""
	for _, c := range d.Clusters() {
		v := d.views[c]
		out += fmt.Sprintf("%s:", c)
		for i, b := range v.Blocks() {
			if i == 0 {
				out += " λ"
				continue
			}
			if b.IsCrossShard() {
				out += fmt.Sprintf(" →[X %s %s]", blockLabel(b), b.Involved())
			} else {
				out += fmt.Sprintf(" →[%s]", blockLabel(b))
			}
		}
		out += "\n"
	}
	return out
}
