package ledger

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sharper/internal/types"
)

func intraTx(client types.NodeID, seq uint64, cluster types.ClusterID) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: client, Seq: seq},
		Client:   client,
		Ops:      []types.Op{{From: 0, To: 1, Amount: 1}},
		Involved: types.ClusterSet{cluster},
	}
}

func crossTx(client types.NodeID, seq uint64, clusters ...types.ClusterID) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: client, Seq: seq},
		Client:   client,
		Ops:      []types.Op{{From: 0, To: 1, Amount: 1}},
		Involved: types.NewClusterSet(clusters...),
	}
}

// appendIntra appends an intra-shard block chaining to the view head.
func appendIntra(t *testing.T, v *View, tx *types.Transaction) *types.Block {
	t.Helper()
	b := &types.Block{Txs: []*types.Transaction{tx}, Parents: []types.Hash{v.Head()}}
	if err := v.Append(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestViewChaining(t *testing.T) {
	v := NewView(0)
	if v.Len() != 1 {
		t.Fatalf("fresh view has %d blocks, want 1 (genesis)", v.Len())
	}
	if v.Head() != GenesisHash() {
		t.Fatal("fresh view head is not genesis")
	}
	b1 := appendIntra(t, v, intraTx(types.ClientIDBase+1, 1, 0))
	b2 := appendIntra(t, v, intraTx(types.ClientIDBase+1, 2, 0))
	if v.Head() != b2.Hash() {
		t.Fatal("head not advanced")
	}
	if !v.Contains(b1.Txs[0].ID) || !v.Contains(b2.Txs[0].ID) {
		t.Fatal("Contains lost a committed tx")
	}
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestViewHeadInfoAndContainsAll(t *testing.T) {
	v := NewView(0)
	if seq, head := v.HeadInfo(); seq != 0 || head != GenesisHash() {
		t.Fatalf("fresh view head info = (%d, %s)", seq, head)
	}
	t1 := intraTx(types.ClientIDBase+1, 1, 0)
	b := appendIntra(t, v, t1)
	seq, head := v.HeadInfo()
	if seq != 1 || head != b.Hash() {
		t.Fatalf("head info = (%d, %s), want (1, %s)", seq, head, b.Hash())
	}
	t2 := intraTx(types.ClientIDBase+1, 2, 0)
	if !v.ContainsAll([]*types.Transaction{t1}) {
		t.Fatal("committed batch not contained")
	}
	if v.ContainsAll([]*types.Transaction{t1, t2}) {
		t.Fatal("partially committed batch reported contained")
	}
}

func TestViewRejectsWrongParent(t *testing.T) {
	v := NewView(0)
	appendIntra(t, v, intraTx(types.ClientIDBase+1, 1, 0))
	bad := &types.Block{
		Txs:     []*types.Transaction{intraTx(types.ClientIDBase+1, 2, 0)},
		Parents: []types.Hash{GenesisHash()}, // stale parent
	}
	if err := v.Append(bad); err == nil {
		t.Fatal("append with stale parent succeeded")
	}
}

func TestViewRejectsForeignBlock(t *testing.T) {
	v := NewView(0)
	b := &types.Block{
		Txs:     []*types.Transaction{intraTx(types.ClientIDBase+1, 1, 3)}, // cluster 3, not ours
		Parents: []types.Hash{v.Head()},
	}
	if err := v.Append(b); err == nil {
		t.Fatal("appended a block that does not involve this cluster")
	}
}

func TestCrossShardParentSlots(t *testing.T) {
	v0, v1 := NewView(0), NewView(1)
	appendIntra(t, v0, intraTx(types.ClientIDBase+1, 1, 0))
	appendIntra(t, v1, intraTx(types.ClientIDBase+2, 1, 1))

	x := &types.Block{
		Txs:     []*types.Transaction{crossTx(types.ClientIDBase+3, 1, 0, 1)},
		Parents: []types.Hash{v0.Head(), v1.Head()}, // slot order = involved order
	}
	if err := v0.Append(x); err != nil {
		t.Fatal(err)
	}
	if err := v1.Append(x); err != nil {
		t.Fatal(err)
	}
	if len(v0.CrossShardBlocks()) != 1 || len(v1.CrossShardBlocks()) != 1 {
		t.Fatal("cross-shard block not visible in both views")
	}
	if err := NewDAG(v0, v1).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDAGDetectsMissingCrossBlock(t *testing.T) {
	v0, v1 := NewView(0), NewView(1)
	x := &types.Block{
		Txs:     []*types.Transaction{crossTx(types.ClientIDBase+3, 1, 0, 1)},
		Parents: []types.Hash{v0.Head(), v1.Head()},
	}
	if err := v0.Append(x); err != nil {
		t.Fatal(err)
	}
	// v1 never gets the block.
	if err := NewDAG(v0, v1).Verify(); err == nil {
		t.Fatal("DAG.Verify missed a cross-shard block absent from an involved view")
	}
}

func TestDAGDetectsConflictingOrder(t *testing.T) {
	v0, v1 := NewView(0), NewView(1)
	a := crossTx(types.ClientIDBase+1, 1, 0, 1)
	b := crossTx(types.ClientIDBase+2, 1, 0, 1)

	// v0 commits a then b; v1 commits b then a — an order violation.
	ba := &types.Block{Txs: []*types.Transaction{a}, Parents: []types.Hash{v0.Head(), v1.Head()}}
	if err := v0.Append(ba); err != nil {
		t.Fatal(err)
	}
	bb0 := &types.Block{Txs: []*types.Transaction{b}, Parents: []types.Hash{v0.Head(), GenesisHash()}}
	if err := v0.Append(bb0); err != nil {
		t.Fatal(err)
	}
	bb1 := &types.Block{Txs: []*types.Transaction{b}, Parents: []types.Hash{types.HashBytes([]byte("x")), v1.Head()}}
	if err := v1.Append(bb1); err != nil {
		t.Fatal(err)
	}
	ba1 := &types.Block{Txs: []*types.Transaction{a}, Parents: []types.Hash{types.HashBytes([]byte("y")), v1.Head()}}
	if err := v1.Append(ba1); err != nil {
		t.Fatal(err)
	}
	if err := NewDAG(v0, v1).VerifyPairwiseOrder(); err == nil {
		t.Fatal("VerifyPairwiseOrder missed conflicting cross-shard orders")
	}
}

// appendBatch appends a multi-tx intra-shard block chaining to the view head.
func appendBatch(t *testing.T, v *View, txs ...*types.Transaction) *types.Block {
	t.Helper()
	b := &types.Block{Txs: txs, Parents: []types.Hash{v.Head()}}
	if err := v.Append(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestMultiTxBlockAppend: a batched block appends as one chain link and every
// member transaction becomes visible to Contains.
func TestMultiTxBlockAppend(t *testing.T) {
	v := NewView(0)
	txs := []*types.Transaction{
		intraTx(types.ClientIDBase+1, 1, 0),
		intraTx(types.ClientIDBase+1, 2, 0),
		intraTx(types.ClientIDBase+2, 1, 0),
	}
	appendBatch(t, v, txs...)
	if v.Len() != 2 {
		t.Fatalf("len %d, want 2 (genesis + one batched block)", v.Len())
	}
	for _, tx := range txs {
		if !v.Contains(tx.ID) {
			t.Fatalf("Contains lost batched tx %s", tx.ID)
		}
	}
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiTxBlockRejectsIntraBlockDuplicate: the same transaction twice in
// one batch is a malformed block, not a tolerated re-ordering.
func TestMultiTxBlockRejectsIntraBlockDuplicate(t *testing.T) {
	v := NewView(0)
	tx := intraTx(types.ClientIDBase+1, 1, 0)
	b := &types.Block{Txs: []*types.Transaction{tx, tx}, Parents: []types.Hash{v.Head()}}
	if err := v.Append(b); err == nil {
		t.Fatal("appended a block containing the same tx twice")
	}
	if v.Len() != 1 {
		t.Fatal("rejected block still advanced the chain")
	}
}

// TestMultiTxBlockRejectsMixedInvolvedSets: every transaction of a batch
// must share one involved-cluster set or the parent-slot layout is undefined.
func TestMultiTxBlockRejectsMixedInvolvedSets(t *testing.T) {
	v := NewView(0)
	b := &types.Block{
		Txs: []*types.Transaction{
			intraTx(types.ClientIDBase+1, 1, 0),
			crossTx(types.ClientIDBase+1, 2, 0, 1),
		},
		Parents: []types.Hash{v.Head()},
	}
	if err := v.Append(b); err == nil {
		t.Fatal("appended a block mixing involved-cluster sets")
	}
	empty := &types.Block{Txs: nil, Parents: []types.Hash{v.Head()}}
	if err := v.Append(empty); err == nil {
		t.Fatal("appended an empty block")
	}
}

// TestMultiTxCrossShardBlock: a batched cross-shard block commits identically
// on every involved view and the DAG verifies, including per-tx positions in
// VerifyPairwiseOrder.
func TestMultiTxCrossShardBlock(t *testing.T) {
	v0, v1 := NewView(0), NewView(1)
	txs := []*types.Transaction{
		crossTx(types.ClientIDBase+1, 1, 0, 1),
		crossTx(types.ClientIDBase+2, 1, 0, 1),
	}
	x := &types.Block{Txs: txs, Parents: []types.Hash{v0.Head(), v1.Head()}}
	if err := v0.Append(x); err != nil {
		t.Fatal(err)
	}
	if err := v1.Append(x); err != nil {
		t.Fatal(err)
	}
	d := NewDAG(v0, v1)
	if err := d.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := d.VerifyPairwiseOrder(); err != nil {
		t.Fatal(err)
	}
	// Duplicate-across-blocks (a retransmission race) is still tolerated:
	// the conflicting-content check keys on per-tx block hashes.
	if !v0.Contains(txs[1].ID) || !v1.Contains(txs[1].ID) {
		t.Fatal("batched cross-shard tx lost from a view")
	}
}

func TestRenderASCII(t *testing.T) {
	v := NewView(0)
	appendIntra(t, v, intraTx(types.ClientIDBase+1, 1, 0))
	out := NewDAG(v).RenderASCII()
	if out == "" {
		t.Fatal("empty rendering")
	}
}

// TestQuickChainVerify property: any sequence of correctly chained blocks
// verifies, and corrupting any stored block breaks verification.
func TestQuickChainVerify(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewView(0)
		n := 2 + rng.Intn(10)
		for i := 0; i < n; i++ {
			b := &types.Block{
				Txs:     []*types.Transaction{intraTx(types.ClientIDBase+1, uint64(i+1), 0)},
				Parents: []types.Hash{v.Head()},
			}
			if v.Append(b) != nil {
				return false
			}
		}
		if v.Verify() != nil {
			return false
		}
		// Corrupt one block in place: verification must fail.
		idx := 1 + rng.Intn(n)
		v.Block(idx).Txs[0].Ops[0].Amount = 999999
		return v.Verify() != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDuplicateTxTolerated property: the chain records exactly what
// consensus decided — a duplicate transaction appends fine and Contains
// still reports it.
func TestQuickDuplicateTxTolerated(t *testing.T) {
	v := NewView(0)
	tx := intraTx(types.ClientIDBase+1, 1, 0)
	appendIntra(t, v, tx)
	appendIntra(t, v, tx)
	if v.Len() != 3 {
		t.Fatalf("len %d, want 3", v.Len())
	}
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
}
