// Package ledger implements the SharPer blockchain ledger of §2.3: a
// directed acyclic graph of blocks in which each block carries one
// predecessor hash per involved cluster. The paper uses single-transaction
// blocks; here a block batches one or more transactions that share the same
// involved-cluster set, so one DAG vertex (and one consensus instance)
// amortizes over the whole batch. No node stores the full DAG; each cluster
// maintains a View containing its intra-shard blocks and the cross-shard
// blocks it participates in, chained in a total order. The logical DAG is
// the union of the views (Fig. 2), and DAG provides that union plus
// consistency verification for tests and audits.
package ledger

import (
	"fmt"
	"sync"

	"sharper/internal/types"
)

// GenesisBlock returns λ, the unique initialization block every view starts
// from. All clusters share the same genesis so cross-shard parent slots are
// well defined from the first block.
func GenesisBlock() *types.Block {
	return &types.Block{
		Txs: []*types.Transaction{{
			ID:       types.TxID{Client: 0, Seq: 0},
			Involved: types.ClusterSet{},
		}},
		Parents: nil,
	}
}

// GenesisHash is the hash of λ.
func GenesisHash() types.Hash { return GenesisBlock().Hash() }

// View is one cluster's portion of the ledger: a totally ordered,
// hash-chained sequence of the blocks that access the cluster's shard.
// It is safe for concurrent use.
type View struct {
	cluster types.ClusterID

	mu     sync.RWMutex
	blocks []*types.Block          // index 0 is genesis
	hashes []types.Hash            // hashes[i] == blocks[i].Hash()
	byHash map[types.Hash]int      // hash → index
	byTx   map[types.TxID]struct{} // committed transaction IDs (dedup)
}

// NewView creates a view for cluster, containing only the genesis block.
func NewView(cluster types.ClusterID) *View {
	g := GenesisBlock()
	h := g.Hash()
	return &View{
		cluster: cluster,
		blocks:  []*types.Block{g},
		hashes:  []types.Hash{h},
		byHash:  map[types.Hash]int{h: 0},
		byTx:    map[types.TxID]struct{}{},
	}
}

// Cluster returns the cluster this view belongs to.
func (v *View) Cluster() types.ClusterID { return v.cluster }

// Head returns the hash of the most recently appended block. This is the
// h_i value the cluster contributes to proposals (§3.2).
func (v *View) Head() types.Hash {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.hashes[len(v.hashes)-1]
}

// HeadInfo returns the committed head's sequence (Len-1) and hash as one
// consistent pair under a single lock acquisition. The pair defines the next
// chain slot — seq+1, extending head — which is what a cross-shard vote
// promises away; reading Len and Head separately could interleave with an
// append and misreport the reservation.
func (v *View) HeadInfo() (uint64, types.Hash) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return uint64(len(v.blocks) - 1), v.hashes[len(v.hashes)-1]
}

// ContainsAll reports whether every transaction of the batch is already
// committed in the view — the dedup test for re-delivered cross-shard
// decisions (a partially contained batch must still append; see the
// runtime's apply path).
func (v *View) ContainsAll(txs []*types.Transaction) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, tx := range txs {
		if _, ok := v.byTx[tx.ID]; !ok {
			return false
		}
	}
	return true
}

// Len returns the number of blocks including genesis.
func (v *View) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.blocks)
}

// Contains reports whether the transaction is already committed in the view.
func (v *View) Contains(id types.TxID) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	_, ok := v.byTx[id]
	return ok
}

// Block returns the i-th block (0 = genesis).
func (v *View) Block(i int) *types.Block {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.blocks[i]
}

// Blocks returns a snapshot of the chain.
func (v *View) Blocks() []*types.Block {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]*types.Block, len(v.blocks))
	copy(out, v.blocks)
	return out
}

// parentSlot returns the index of this view's cluster in the block's
// involved set, which is also the index of its parent-hash slot.
func (v *View) parentSlot(b *types.Block) (int, error) {
	inv := b.Involved()
	if len(inv) == 0 {
		return 0, fmt.Errorf("ledger: block %s has empty involved set", blockLabel(b))
	}
	for i, c := range inv {
		if c == v.cluster {
			return i, nil
		}
	}
	return 0, fmt.Errorf("ledger: block %s does not involve cluster %s", blockLabel(b), v.cluster)
}

// blockLabel names a block by its first transaction for error messages.
func blockLabel(b *types.Block) string {
	if len(b.Txs) == 0 {
		return "<empty>"
	}
	if len(b.Txs) == 1 {
		return b.Txs[0].ID.String()
	}
	return fmt.Sprintf("%s(+%d)", b.Txs[0].ID, len(b.Txs)-1)
}

// validateBatch checks the structural invariants of a multi-transaction
// block: a non-empty batch, every transaction sharing one involved-cluster
// set (so the parent-slot layout is well defined), and no transaction
// appearing twice inside the same block.
func validateBatch(b *types.Block) error {
	if len(b.Txs) == 0 {
		return fmt.Errorf("ledger: empty block")
	}
	inv := b.Txs[0].Involved
	seen := make(map[types.TxID]struct{}, len(b.Txs))
	for _, tx := range b.Txs {
		if !tx.Involved.Equal(inv) {
			return fmt.Errorf("ledger: block %s mixes involved sets %s and %s",
				blockLabel(b), inv, tx.Involved)
		}
		if _, dup := seen[tx.ID]; dup {
			return fmt.Errorf("ledger: block %s contains tx %s twice", blockLabel(b), tx.ID)
		}
		seen[tx.ID] = struct{}{}
	}
	return nil
}

// Append validates that the block's parent slot for this cluster equals the
// current head and appends it. Batches must be well formed (one shared
// involved set, no intra-block duplicates). The chain records exactly what
// consensus decided; a transaction re-ordered by a client retransmission may
// appear in two different blocks, and the execution layer deduplicates (the
// second occurrence is a no-op there). Appending out of order is an error.
func (v *View) Append(b *types.Block) error {
	if err := validateBatch(b); err != nil {
		return err
	}
	slot, err := v.parentSlot(b)
	if err != nil {
		return err
	}
	if slot >= len(b.Parents) {
		return fmt.Errorf("ledger: block %s missing parent slot %d", blockLabel(b), slot)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	head := v.hashes[len(v.hashes)-1]
	if b.Parents[slot] != head {
		return fmt.Errorf("ledger: block %s parent %s does not extend head %s of %s",
			blockLabel(b), b.Parents[slot], head, v.cluster)
	}
	h := b.Hash()
	v.blocks = append(v.blocks, b)
	v.hashes = append(v.hashes, h)
	v.byHash[h] = len(v.blocks) - 1
	for _, tx := range b.Txs {
		v.byTx[tx.ID] = struct{}{}
	}
	return nil
}

// Verify walks the chain and checks every hash link. It returns the first
// violation found, or nil if the view is internally consistent.
func (v *View) Verify() error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for i := 1; i < len(v.blocks); i++ {
		b := v.blocks[i]
		if err := validateBatch(b); err != nil {
			return fmt.Errorf("ledger: block %d: %w", i, err)
		}
		slot := 0
		found := false
		for j, c := range b.Involved() {
			if c == v.cluster {
				slot, found = j, true
				break
			}
		}
		if !found {
			return fmt.Errorf("ledger: block %d (%s) does not involve %s", i, blockLabel(b), v.cluster)
		}
		if slot >= len(b.Parents) || b.Parents[slot] != v.hashes[i-1] {
			return fmt.Errorf("ledger: block %d (%s) breaks the hash chain of %s", i, blockLabel(b), v.cluster)
		}
		if v.hashes[i] != b.Hash() {
			return fmt.Errorf("ledger: block %d (%s) stored hash mismatch", i, blockLabel(b))
		}
	}
	return nil
}

// CrossShardBlocks returns the cross-shard blocks in commit order.
func (v *View) CrossShardBlocks() []*types.Block {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var out []*types.Block
	for _, b := range v.blocks[1:] {
		if b.IsCrossShard() {
			out = append(out, b)
		}
	}
	return out
}
