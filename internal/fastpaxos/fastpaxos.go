// Package fastpaxos builds the FPaxos baseline of §4: Fast Paxos [34] uses
// 3f+1 nodes to reach crash consensus in two communication phases instead
// of Paxos's three; the remaining nodes are passive replicas.
package fastpaxos

import (
	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/fastquorum"
	"sharper/internal/ledger"
	"sharper/internal/replica"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// New builds an FPaxos deployment: total nodes, 3f+1 active, quorum 2f+1.
func New(total, f int, net transport.Config, seed int64) (*replica.Deployment, error) {
	return replica.NewDeployment(replica.Config{
		Model:      types.CrashOnly,
		ActiveSize: 3*f + 1,
		TotalNodes: total,
		F:          f,
		Network:    net,
		Seed:       seed,
		Factory: func(topo *consensus.Topology, self types.NodeID,
			signer crypto.Signer, verifier crypto.Verifier) replica.Engine {
			return fastquorum.New(fastquorum.Config{
				Topology: topo, Cluster: 0, Self: self,
				Quorum: 2*f + 1,
			}, ledger.GenesisHash())
		},
	})
}
