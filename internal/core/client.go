package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/state"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// Client submits transactions to a SharPer deployment and waits for the
// model-appropriate number of matching replies: one under the crash model,
// f+1 matching replies from distinct replicas under the Byzantine model
// (§3.1). Clients are single-goroutine, closed-loop issuers; benchmarks
// raise concurrency by running many clients.
//
// A client speaks to the deployment only through a transport.Fabric plus
// the static topology and shard map, so the same type drives an in-process
// simulated deployment and a remote multi-process one over TCP.
type Client struct {
	id     types.NodeID
	net    transport.Fabric
	topo   *consensus.Topology
	shards state.ShardMap
	inbox  <-chan *types.Envelope
	seq    uint64
	sendTo map[types.ClusterID]int // rotating primary guess per cluster

	// Timeout before the client retransmits a request.
	Timeout time.Duration
	// MaxAttempts bounds retransmissions before giving up.
	MaxAttempts int
}

var clientCounter atomic.Uint32

// NewClient registers a fresh client endpoint on the deployment's fabric.
// Under TransportTCP the client fabric first connects to every replica so
// replies routed by nodes the client never dialed still find a return path.
func (d *Deployment) NewClient() *Client {
	c := NewClientOn(d.Net, d.Topo, d.Shards)
	if d.fabrics != nil {
		d.connectClients()
	}
	return c
}

// NewClientOn builds a client with a process-locally unique ID on an
// arbitrary fabric. Use NewClientAt when several driver processes share one
// deployment and must not collide.
func NewClientOn(fab transport.Fabric, topo *consensus.Topology, shards state.ShardMap) *Client {
	id := types.ClientIDBase + types.NodeID(clientCounter.Add(1))
	return NewClientAt(fab, topo, shards, id)
}

// NewClientAt builds a client with an explicit endpoint ID (must be in the
// client range, i.e. ≥ types.ClientIDBase, and unique deployment-wide).
func NewClientAt(fab transport.Fabric, topo *consensus.Topology, shards state.ShardMap, id types.NodeID) *Client {
	return &Client{
		id:          id,
		net:         fab,
		topo:        topo,
		shards:      shards,
		inbox:       fab.Register(id),
		sendTo:      make(map[types.ClusterID]int),
		Timeout:     2 * time.Second,
		MaxAttempts: 8,
	}
}

// ID returns the client's network identity.
func (c *Client) ID() types.NodeID { return c.id }

// MakeTx assembles a transaction from ops, deriving the involved-cluster
// set through the shard map.
func (c *Client) MakeTx(ops []types.Op) *types.Transaction {
	c.seq++
	return &types.Transaction{
		ID:        types.TxID{Client: c.id, Seq: c.seq},
		Client:    c.id,
		Timestamp: time.Now().UnixNano(),
		Ops:       ops,
		Involved:  c.shards.Involved(ops),
	}
}

// Submit sends tx and blocks until the reply quorum arrives or every
// attempt times out. It returns whether the transaction's effects were
// applied (false = ordered but rejected by validation) and the end-to-end
// latency.
func (c *Client) Submit(tx *types.Transaction) (bool, time.Duration, error) {
	target := c.targetCluster(tx)
	needed := 1
	if c.topo.ModelOf(target) == types.Byzantine {
		needed = c.topo.F(target) + 1
	}
	payload := (&types.Request{Tx: tx}).Encode(nil)
	start := time.Now()

	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		c.sendRequest(target, payload, attempt)
		ok, committed := c.awaitReplies(tx.ID, needed, c.Timeout)
		if ok {
			return committed, time.Since(start), nil
		}
	}
	return false, time.Since(start), fmt.Errorf("core: tx %s timed out after %d attempts", tx.ID, c.MaxAttempts)
}

// Transfer is the §4 accounting-app convenience: build, submit, and wait.
func (c *Client) Transfer(ops []types.Op) (bool, time.Duration, error) {
	return c.Submit(c.MakeTx(ops))
}

// targetCluster picks the initiator cluster: the involved cluster itself
// for intra-shard transactions, min(P) under super-primary routing.
func (c *Client) targetCluster(tx *types.Transaction) types.ClusterID {
	return tx.Involved.Min()
}

// sendRequest sends the request to a member of the target cluster, rotating
// on retries so a crashed primary does not wedge the client. The receiving
// node forwards to its current primary.
func (c *Client) sendRequest(target types.ClusterID, payload []byte, attempt int) {
	members := c.topo.Members(target)
	idx := (c.sendTo[target] + attempt) % len(members)
	if attempt > 0 {
		c.sendTo[target] = idx
	}
	env := &types.Envelope{Type: types.MsgRequest, From: c.id, Payload: payload}
	if attempt == 0 {
		c.net.Send(members[idx], env)
		return
	}
	// Retry: blanket the cluster so at least one live node forwards.
	for _, m := range members {
		c.net.Send(m, env)
	}
}

// awaitReplies drains the inbox until `needed` matching replies for id
// arrive from distinct replicas, or the deadline passes.
func (c *Client) awaitReplies(id types.TxID, needed int, timeout time.Duration) (bool, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	votes := make(map[bool]map[types.NodeID]bool) // committed? → replicas
	for {
		select {
		case env := <-c.inbox:
			if env.Type != types.MsgReply {
				continue
			}
			r, err := types.DecodeReply(env.Payload)
			if err != nil || r.TxID != id || r.Replica != env.From {
				continue
			}
			m, ok := votes[r.Committed]
			if !ok {
				m = make(map[types.NodeID]bool)
				votes[r.Committed] = m
			}
			m[r.Replica] = true
			if len(m) >= needed {
				return true, r.Committed
			}
		case <-deadline.C:
			return false, false
		}
	}
}
