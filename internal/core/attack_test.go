package core

import (
	"sync"
	"testing"
	"time"

	"sharper/internal/adversary"
	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// The attack matrix: every cell compromises at most f nodes per cluster
// through the adversary fabric decorator and asserts (a) safety — the DAG
// audit passes and honest replicas never diverge — and (b) detection — each
// equivocation variant yields a fraud proof naming exactly the compromised
// node, while non-equivocating behaviour (withholding, replay, crashes,
// duplication) yields none.

// newAttackDeployment builds a slashing-enabled deployment with the attack
// injector wrapped around every replica's fabric.
func newAttackDeployment(t *testing.T, cfg Config) (*Deployment, *adversary.Adversary) {
	t.Helper()
	if cfg.Topology == nil {
		cfg.Topology = consensus.UniformTopology(cfg.Model, cfg.Clusters, cfg.F)
	}
	adv := adversary.New(cfg.Topology)
	cfg.WrapFabric = adv.Wrap
	cfg.Slash = true
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
	return d, adv
}

// signerOf hands the adversary a compromised node's own signer — under the
// crash model signatures are not in play, so any signer does.
func signerOf(t *testing.T, d *Deployment, id types.NodeID) crypto.Signer {
	t.Helper()
	if !d.Topo.AnyByzantine() {
		return crypto.NoopSigner{}
	}
	s, err := d.Keyring.SignerFor(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// pubOnlyVerifier rebuilds a verification-only keyring holding nothing but
// the deployment's public keys — the position of an external auditor judging
// fraud proofs offline.
func pubOnlyVerifier(t *testing.T, d *Deployment) types.SigVerifier {
	t.Helper()
	kr, ok := d.Keyring.(*crypto.Keyring)
	if !ok {
		t.Fatal("offline verification needs the ed25519 keyring (Config.Ed25519)")
	}
	pub := crypto.NewKeyring()
	for _, id := range d.Topo.AllNodes() {
		pk, ok := kr.PublicKey(id)
		if !ok {
			t.Fatalf("no public key for %s", id)
		}
		pub.AddPublicKey(id, pk)
	}
	return pub
}

// assertProofsName checks that every gathered proof names the one compromised
// node (zero false positives) and, when an auditor is given, that each proof
// round-trips the wire and convinces a public-keys-only verifier.
func assertProofsName(t *testing.T, proofs []*types.FraudProof, offender types.NodeID, auditor types.SigVerifier) {
	t.Helper()
	if len(proofs) == 0 {
		t.Fatalf("no fraud proofs; expected evidence against %s", offender)
	}
	for _, p := range proofs {
		if p.Offender != offender {
			t.Fatalf("proof names %s; the only compromised node is %s", p.Offender, offender)
		}
		if auditor == nil {
			continue
		}
		rt, err := types.DecodeFraudProof(p.Encode(nil))
		if err != nil {
			t.Fatalf("proof wire round-trip: %v", err)
		}
		if err := rt.Verify(auditor); err != nil {
			t.Fatalf("offline verification of %s proof against %s: %v", p.Kind, p.Offender, err)
		}
	}
}

func runIntra(t *testing.T, d *Deployment, c *Client, n int, cluster types.ClusterID) {
	t.Helper()
	for i := 0; i < n; i++ {
		ok, _, err := c.Transfer(intraOps(d, cluster))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
}

// TestEquivocatingPrimarySlashed: the view-0 primary splits conflicting
// pre-prepares across overlapping halves. The honest quorum must keep
// committing one history, and the witness's slasher must mint a proof that an
// external auditor can verify with public keys alone.
func TestEquivocatingPrimarySlashed(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 42, Ed25519: true,
		IntraTimeout: 200 * time.Millisecond,
	})
	primary := d.Topo.Members(0)[0]
	adv.Compromise(primary, signerOf(t, d, primary), adversary.Rule{Kind: adversary.Equivocate, Limit: 2})

	c := d.NewClient()
	c.Timeout = 3 * time.Second
	runIntra(t, d, c, 8, 0)
	if adv.Applied(primary, adversary.Equivocate) == 0 {
		t.Fatal("equivocation never fired")
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify under equivocation: %v", err)
	}
	assertProofsName(t, d.FraudProofs(), primary, pubOnlyVerifier(t, d))
}

// TestDoubleVotingBackupSlashed: a backup sends conflicting prepares for one
// slot. Commits continue over the honest quorum and the witness produces a
// double-vote proof.
func TestDoubleVotingBackupSlashed(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 43, Ed25519: true,
	})
	backup := d.Topo.Members(0)[2]
	adv.Compromise(backup, signerOf(t, d, backup), adversary.Rule{
		Kind: adversary.Equivocate, Types: []types.MsgType{types.MsgPrepare}, Limit: 2,
	})

	c := d.NewClient()
	runIntra(t, d, c, 6, 0)
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify under double voting: %v", err)
	}
	proofs := d.FraudProofs()
	assertProofsName(t, proofs, backup, pubOnlyVerifier(t, d))
	hasVote := false
	for _, p := range proofs {
		if p.Kind == types.FraudDoubleVote {
			hasVote = true
		}
	}
	if !hasVote {
		t.Fatalf("no double-vote proof among %d proofs", len(proofs))
	}
}

// TestTamperedPrePrepareSlashed: the primary corrupts the digest for one
// victim and re-signs. The victim's engine rejects the proposal, and its
// slasher pairs the tampered pre-prepare with the primary's own commit for
// the same slot — a cross-class double proposal.
func TestTamperedPrePrepareSlashed(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 44, Ed25519: true,
	})
	primary := d.Topo.Members(0)[0]
	victim := d.Topo.Members(0)[2]
	adv.Compromise(primary, signerOf(t, d, primary), adversary.Rule{
		Kind: adversary.Tamper, Victims: []types.NodeID{victim}, Limit: 3,
	})

	c := d.NewClient()
	runIntra(t, d, c, 6, 0)
	if adv.Applied(primary, adversary.Tamper) == 0 {
		t.Fatal("tampering never fired")
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify under tampering: %v", err)
	}
	assertProofsName(t, d.FraudProofs(), primary, pubOnlyVerifier(t, d))
}

// TestWithholdingIsSafeAndUnslashed: a backup silently drops its votes to
// everyone — indistinguishable from a crash, tolerated by the quorum, and
// explicitly NOT slashable (silence is not signed equivocation).
func TestWithholdingIsSafeAndUnslashed(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 45,
	})
	backup := d.Topo.Members(0)[1]
	adv.Compromise(backup, signerOf(t, d, backup), adversary.Rule{
		Kind: adversary.Withhold, Types: []types.MsgType{types.MsgPrepare, types.MsgCommit},
	})

	c := d.NewClient()
	runIntra(t, d, c, 6, 0)
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify under withholding: %v", err)
	}
	if proofs := d.FraudProofs(); len(proofs) != 0 {
		t.Fatalf("withholding produced %d fraud proofs; silence must not be slashable (first: %s)",
			len(proofs), proofs[0].Kind)
	}
}

// TestVCSpamSlashed: a backup floods its cluster with conflicting view-change
// pairs. The noise must not disturb commits (one node's suspicion is below
// the f+1 join threshold) and each pair is provable equivocation.
func TestVCSpamSlashed(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 46, Ed25519: true,
	})
	backup := d.Topo.Members(0)[3]
	adv.Compromise(backup, signerOf(t, d, backup), adversary.Rule{Kind: adversary.VCSpam, Limit: 2})

	c := d.NewClient()
	runIntra(t, d, c, 8, 0)
	if adv.Applied(backup, adversary.VCSpam) == 0 {
		t.Fatal("view-change spam never fired")
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify under view-change spam: %v", err)
	}
	proofs := d.FraudProofs()
	assertProofsName(t, proofs, backup, pubOnlyVerifier(t, d))
	hasVC := false
	for _, p := range proofs {
		if p.Kind == types.FraudConflictingViewChange {
			hasVC = true
		}
	}
	if !hasVC {
		t.Fatalf("no conflicting-view-change proof among %d proofs", len(proofs))
	}
}

// TestReplayedVotesNotDoubleCounted pins replay rejection for both engines:
// with enough honest nodes crashed that a quorum is only reachable by
// counting a replayed vote twice, nothing may commit; after the crashed
// nodes return, everything commits exactly once.
func TestReplayedVotesNotDoubleCounted(t *testing.T) {
	cases := []struct {
		name  string
		model types.FailureModel
		f     int // crash: n=2f+1 quorum f+1; byz: n=3f+1 quorum 2f+1
		crash int // nodes to crash so the live count is one below quorum
	}{
		{"pbft", types.Byzantine, 1, 2},  // 4 nodes, quorum 3, 2 live
		{"paxos", types.CrashOnly, 2, 3}, // 5 nodes, quorum 3, 2 live
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, adv := newAttackDeployment(t, Config{
				Model: tc.model, Clusters: 2, F: tc.f, Seed: 47,
			})
			members := d.Topo.Members(0)
			replayer := members[1]
			adv.Compromise(replayer, signerOf(t, d, replayer), adversary.Rule{Kind: adversary.Replay})
			for _, id := range members[2 : 2+tc.crash] {
				d.CrashNode(id)
			}

			c := d.NewClient()
			c.Timeout = 250 * time.Millisecond
			c.MaxAttempts = 2
			if _, _, err := c.Transfer(intraOps(d, 0)); err == nil {
				t.Fatal("transfer committed below quorum — a replayed vote was double-counted")
			}
			// Settle in-flight traffic, then check no replica committed.
			time.Sleep(200 * time.Millisecond)
			for _, id := range members {
				if got := d.Node(id).Committed(); got != 0 {
					t.Fatalf("node %s committed %d transactions below quorum", id, got)
				}
			}

			for _, id := range members[2 : 2+tc.crash] {
				d.Faults().Restart(id)
			}
			c.Timeout = 3 * time.Second
			c.MaxAttempts = 8
			if ok, _, err := c.Transfer(intraOps(d, 0)); err != nil || !ok {
				t.Fatalf("transfer after restart: ok=%v err=%v", ok, err)
			}
			waitQuiesce(t, d)
			if err := d.DAG().Verify(); err != nil {
				t.Fatalf("DAG verify after replay window: %v", err)
			}
			// Exactly-once: every replica of the cluster converges to one
			// common commit count — laggards catch up over chain sync, a
			// wedged view change may resolve late — and the debited balance
			// matches that count exactly (a double-applied replay would drain
			// extra). At most the two issued transfers may commit.
			acct := d.Shards.AccountInShard(0, 0)
			deadline := time.Now().Add(10 * time.Second)
			for {
				ref := d.Node(members[0]).Committed()
				agreed := ref >= 1 && ref <= 2
				for _, id := range members {
					n := d.Node(id)
					if n.Committed() != ref || n.Store().Balance(acct) != 1_000_000-5*ref {
						agreed = false
					}
				}
				if agreed {
					break
				}
				if time.Now().After(deadline) {
					for _, id := range members {
						n := d.Node(id)
						t.Logf("node %s: committed=%d balance=%d", id, n.Committed(), n.Store().Balance(acct))
					}
					t.Fatal("replicas never converged to one exactly-once history")
				}
				time.Sleep(20 * time.Millisecond)
			}
			if proofs := d.FraudProofs(); len(proofs) != 0 {
				t.Fatalf("byte-identical replay produced %d fraud proofs; want none", len(proofs))
			}
		})
	}
}

// TestLockStarvationRecovers: the cross-shard initiator proposes only to its
// own cluster (which grants and locks) and suppresses the withdrawal, so
// locks ride out the §3.2 timeout. Once the starvation budget is spent the
// transaction commits, and the audit stays clean. Runs under both cross-shard
// engines.
func TestLockStarvationRecovers(t *testing.T) {
	for _, model := range []types.FailureModel{types.CrashOnly, types.Byzantine} {
		t.Run(model.String(), func(t *testing.T) {
			d, adv := newAttackDeployment(t, Config{
				Model: model, Clusters: 2, F: 1, Seed: 48,
				LockTimeout:  150 * time.Millisecond,
				RetryTimeout: 250 * time.Millisecond,
			})
			// Super-primary routing sends {0,1} transactions through the
			// primary of cluster 0 — compromise exactly that initiator.
			initiator := d.Topo.Members(0)[0]
			adv.Compromise(initiator, signerOf(t, d, initiator), adversary.Rule{Kind: adversary.Starve, Limit: 2})

			c := d.NewClient()
			c.Timeout = 4 * time.Second
			ok, _, err := c.Transfer(crossOps(d, 0, 1))
			if err != nil {
				t.Fatalf("cross transfer never recovered from starvation: %v", err)
			}
			if !ok {
				t.Fatal("cross transfer rejected")
			}
			if adv.Applied(initiator, adversary.Starve) == 0 {
				t.Fatal("starvation never fired")
			}
			waitQuiesce(t, d)
			dag := d.DAG()
			if err := dag.Verify(); err != nil {
				t.Fatalf("DAG verify after starvation: %v", err)
			}
			if err := dag.VerifyPairwiseOrder(); err != nil {
				t.Fatalf("pairwise order after starvation: %v", err)
			}
			var expiries uint64
			for _, n := range d.Nodes() {
				expiries += n.Counters().LockExpiries
			}
			if expiries == 0 {
				t.Fatal("no lock expiries recorded — the grant-then-withhold never starved a lock")
			}
		})
	}
}

// TestHonestRunYieldsNoProofs is the false-positive control: a fully honest
// Byzantine deployment with duplicated deliveries, a primary crash, a real
// view change, and a storage-backed restart. The slasher must stay silent on
// every replica.
func TestHonestRunYieldsNoProofs(t *testing.T) {
	net := transport.DefaultConfig()
	net.DupProb = 0.05
	d, _ := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 49, Ed25519: true,
		Network: net, DataDir: t.TempDir(), IntraTimeout: 150 * time.Millisecond,
	})

	c := d.NewClient()
	c.Timeout = 3 * time.Second
	runIntra(t, d, c, 6, 0)
	if _, _, err := c.Transfer(crossOps(d, 0, 1)); err != nil {
		t.Fatalf("cross transfer: %v", err)
	}

	// Concurrent intra + cross traffic drives cross-shard SyncChainHead slot
	// re-binds: a primary honestly re-proposes a superseded slot with a new
	// parent and a different digest, and honest backups re-vote it. The
	// slasher must read that as a re-bind, not equivocation (votes carry
	// their parent precisely for this).
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc := d.NewClient()
			wc.Timeout = 3 * time.Second
			for i := 0; i < 5; i++ {
				if (w+i)%2 == 0 {
					wc.Transfer(crossOps(d, 0, 1))
				} else {
					wc.Transfer(intraOps(d, 0))
				}
			}
		}(w)
	}
	wg.Wait()

	primary := d.Topo.Members(0)[0]
	d.CrashNode(primary)
	runIntra(t, d, c, 4, 0) // drives a real view change past the dead primary
	if _, err := d.RestartNode(primary); err != nil {
		t.Fatal(err)
	}
	runIntra(t, d, c, 4, 0)

	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
	for _, n := range d.Nodes() {
		if proofs := n.FraudProofs(); len(proofs) != 0 {
			t.Fatalf("node %s holds %d fraud proofs after an honest run (first: %s against %s)",
				n.ID(), len(proofs), proofs[0].Kind, proofs[0].Offender)
		}
	}
}

// TestEquivocatingPrimarySlashedTCP runs the flagship detection cell over
// real sockets: the injector wraps each replica's TCP fabric, proving the
// harness is transport-agnostic.
func TestEquivocatingPrimarySlashedTCP(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 50, Ed25519: true,
		Transport: TransportTCP, IntraTimeout: 300 * time.Millisecond,
	})
	primary := d.Topo.Members(0)[0]
	adv.Compromise(primary, signerOf(t, d, primary), adversary.Rule{Kind: adversary.Equivocate, Limit: 1})

	c := d.NewClient()
	c.Timeout = 3 * time.Second
	runIntra(t, d, c, 4, 0)
	if adv.Applied(primary, adversary.Equivocate) == 0 {
		t.Fatal("equivocation never fired")
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify over TCP: %v", err)
	}
	assertProofsName(t, d.FraudProofs(), primary, pubOnlyVerifier(t, d))
}

// TestReplayedVotesNotDoubleCountedTCP is the socket-backed half of the
// replay cell: with two backups' fabrics closed, the replaying backup's
// duplicated votes must not conjure a quorum. (No restart over TCP — that
// needs a process restart; the sim variant covers recovery.)
func TestReplayedVotesNotDoubleCountedTCP(t *testing.T) {
	d, adv := newAttackDeployment(t, Config{
		Model: types.Byzantine, Clusters: 2, F: 1, Seed: 51, Transport: TransportTCP,
	})
	members := d.Topo.Members(0)
	replayer := members[1]
	adv.Compromise(replayer, signerOf(t, d, replayer), adversary.Rule{Kind: adversary.Replay})
	d.CrashNode(members[2])
	d.CrashNode(members[3])

	c := d.NewClient()
	c.Timeout = 300 * time.Millisecond
	c.MaxAttempts = 2
	if _, _, err := c.Transfer(intraOps(d, 0)); err == nil {
		t.Fatal("transfer committed below quorum over TCP — a replayed vote was double-counted")
	}
	time.Sleep(200 * time.Millisecond)
	for _, id := range members[:2] {
		if got := d.Node(id).Committed(); got != 0 {
			t.Fatalf("node %s committed %d transactions below quorum", id, got)
		}
	}
}
