package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sharper/internal/obs"
	"sharper/internal/storage"
	"sharper/internal/types"
)

// This file is the node's commit pipeline. The event loop's only commit-side
// job is appending a decided block to the DAG view; everything downstream —
// applying transactions to the shard store, the durable chain-log append, and
// client replies — runs on the executor goroutine:
//
//	loop:     append to DAG ─┐
//	executor:                └─> apply (parallel waves) ─> group append+fsync ─> reply
//
// Invariants:
//   - Persist-before-ack: a reply leaves the node only after its block's
//     chain-log append returned under the configured sync policy, exactly as
//     the inline path ordered it.
//   - Blocks apply in chain order; within a block, transactions touching a
//     common stripe apply in block order (wave partitioning), so the store is
//     byte-identical to serial execution.
//   - Backpressure never blocks the loop: enqueue always succeeds (a decided
//     block must execute), and Full() tells the proposal paths to stop
//     feeding consensus until the pipeline drains.

// commitTask is one committed block handed from the event loop to the
// executor, with everything the off-loop stages need captured at hand-off
// time (reply gating consults loop-owned primary state).
type commitTask struct {
	seq      uint64 // chain index the block was appended at
	block    *types.Block
	valid    uint64     // decision validity bitmap (all ones for intra)
	traceSeq uint64     // intra consensus seq for tracer stamps (0: none)
	digest   types.Hash // cross batch digest for tracer stamps (zero: none)
	reply    bool       // this node answers these clients (decided on the loop)
}

// replyOut is one client reply owed after the durable group append.
type replyOut struct {
	tx     *types.Transaction
	r      *types.Reply
	resend bool // retransmission re-reply: always sent, reply gating ignored
}

// applyJob is one transaction's slot in a block's wave schedule.
type applyJob struct {
	tx   *types.Transaction
	mask uint64
	wave int
	ok   bool
}

const (
	// maxCommitGroup bounds how many queued blocks one group-commit covers:
	// one chain-log write and (under SyncAlways) one fsync amortized over the
	// blocks that accumulated while the previous group was persisting.
	maxCommitGroup = 32
	// maxApplyWorkers caps the per-node worker pool for parallel apply waves;
	// the effective pool never exceeds the schedulable parallelism (see
	// newExecutor), because dispatching map updates to goroutines that can
	// only run after the dispatcher yields is pure overhead.
	maxApplyWorkers = 4
	// minParallelWave: waves smaller than this apply serially — dispatching a
	// couple of map updates to workers costs more than it saves.
	minParallelWave = 3
)

type executor struct {
	n       *Node
	limit   int // queue depth at which Full() reports backpressure
	workers int // parallel-apply pool size (0: strictly serial apply)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []commitTask
	closed bool
	paused int  // outstanding Pause requests
	idle   bool // executor is parked at a group boundary

	depth      atomic.Int64  // blocks enqueued but not fully processed
	appliedSeq atomic.Uint64 // highest chain index applied to the store
	durableSeq atomic.Uint64 // highest chain index group-committed to the log

	jobCh   chan func()
	started bool
	done    chan struct{}

	// Consumer-goroutine scratch, reused across blocks to keep the
	// steady-state pipeline allocation-free.
	jobs      []applyJob
	waveMasks []uint64
	members   []int
	recs      []storage.CommitRecord
}

func newExecutor(n *Node, limit int) *executor {
	e := &executor{
		n:     n,
		limit: limit,
		idle:  true,
		done:  make(chan struct{}),
	}
	// One P runs one goroutine at a time: a worker pool would serialize
	// anyway, paying channel handoffs for nothing. Apply strictly serially
	// and leave the waves to machines that can actually run them.
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		e.workers = maxApplyWorkers
		if e.workers > procs-1 {
			e.workers = procs - 1
		}
		e.jobCh = make(chan func(), 64)
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// start launches the pipeline at base, the chain height the store already
// reflects (recovery replays synchronously before Start).
func (e *executor) start(base uint64) {
	e.appliedSeq.Store(base)
	e.durableSeq.Store(base)
	e.started = true
	for i := 0; i < e.workers; i++ {
		go e.worker()
	}
	go e.run()
}

func (e *executor) worker() {
	for f := range e.jobCh {
		f()
	}
}

// enqueue hands a committed block to the pipeline. It never blocks and never
// refuses — a decided block must execute no matter how deep the queue is;
// backpressure happens at the proposal sources via Full.
func (e *executor) enqueue(t commitTask) {
	e.depth.Add(1)
	e.mu.Lock()
	e.queue = append(e.queue, t)
	if len(e.queue) == 1 {
		// The consumer only sleeps on an empty queue; a non-empty append
		// has nobody to wake.
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// Full reports whether the proposal paths should stop feeding consensus.
func (e *executor) Full() bool { return e.depth.Load() >= int64(e.limit) }

// Depth returns the number of blocks in flight through the pipeline.
func (e *executor) Depth() int64 { return e.depth.Load() }

// AppliedSeq returns the highest chain index applied to the store.
func (e *executor) AppliedSeq() uint64 { return e.appliedSeq.Load() }

// DurableSeq returns the highest chain index durably appended to the log.
func (e *executor) DurableSeq() uint64 { return e.durableSeq.Load() }

// WaitApplied blocks until every block at or below seq has been applied to
// the store. The cross engine's validity vote goes through it so votes read
// fully committed state, exactly as the inline path did.
func (e *executor) WaitApplied(seq uint64) {
	if e.appliedSeq.Load() >= seq {
		return
	}
	e.mu.Lock()
	for e.appliedSeq.Load() < seq && !e.closed {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Pause quiesces the executor at a group boundary: when it returns, the
// store and the chain log both reflect exactly DurableSeq and nothing moves
// until Resume. Checkpoints and fingerprint audits use it to cut a
// consistent snapshot without stopping the event loop's intake.
func (e *executor) Pause() {
	e.mu.Lock()
	e.paused++
	for e.started && !e.idle && !e.closed {
		e.cond.Wait()
	}
	e.mu.Unlock()
}

// Resume releases a Pause.
func (e *executor) Resume() {
	e.mu.Lock()
	e.paused--
	e.cond.Broadcast()
	e.mu.Unlock()
}

// Close drains the queue, finishes every remaining block (so post-Stop reads
// of balances and counters see final state), and stops the workers. Called
// after the event loop has exited: nothing enqueues anymore.
func (e *executor) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	started := e.started
	e.mu.Unlock()
	if started {
		<-e.done
	}
	if e.jobCh != nil {
		close(e.jobCh)
	}
}

func (e *executor) run() {
	defer close(e.done)
	for {
		e.mu.Lock()
		for !e.closed && (e.paused > 0 || len(e.queue) == 0) {
			e.idle = true
			e.cond.Broadcast()
			e.cond.Wait()
		}
		if e.closed && len(e.queue) == 0 {
			e.idle = true
			e.cond.Broadcast()
			e.mu.Unlock()
			return
		}
		take := len(e.queue)
		if take > maxCommitGroup {
			take = maxCommitGroup
		}
		group := make([]commitTask, take)
		copy(group, e.queue)
		e.queue = e.queue[take:]
		e.idle = false
		e.mu.Unlock()
		e.process(group)
	}
}

// process runs one group through the three stages: apply every block (waves),
// one durable append for the whole group, then the replies.
func (e *executor) process(group []commitTask) {
	n := e.n
	outs := make([][]replyOut, len(group))
	for i := range group {
		t := &group[i]
		outs[i] = e.applyBlock(t)
		if n.tracer != nil {
			e.stamp(t, obs.StageExecuted)
		}
		// Lock-free publish: WaitApplied's fast path polls the atomic;
		// sleepers are woken by the single post-group broadcast below.
		e.appliedSeq.Store(t.seq)
	}
	if n.cfg.Storage != nil {
		recs := e.recs[:0]
		for _, t := range group {
			recs = append(recs, storage.CommitRecord{Seq: t.seq, Valid: t.valid, Block: t.block})
		}
		n.cfg.Storage.AppendCommitBatch(recs)
		e.recs = recs[:0]
	}
	if n.tracer != nil {
		for i := range group {
			e.stamp(&group[i], obs.StagePersisted)
		}
	}
	e.mu.Lock()
	e.durableSeq.Store(group[len(group)-1].seq)
	e.cond.Broadcast()
	e.mu.Unlock()
	for i := range group {
		e.sendReplies(&group[i], outs[i])
	}
	e.depth.Add(-int64(len(group)))
}

func (e *executor) stamp(t *commitTask, st obs.Stage) {
	ts := time.Now()
	if t.traceSeq != 0 {
		e.n.tracer.StampSeq(t.traceSeq, st, ts)
	}
	if !t.digest.IsZero() {
		e.n.tracer.StampDigest(t.digest, st, ts)
	}
}

// applyBlock applies one block's transactions with conflict-partitioned
// parallelism: wave w collects transactions whose stripe footprints are
// mutually disjoint; a transaction conflicting with an earlier wave runs in
// a later one, preserving same-stripe block order. Disjoint waves' members
// run concurrently on the worker pool. Vetoed transactions (validity bit
// clear) never touch the store. With no worker pool (single-P runtime) the
// schedule degenerates to strictly serial block order — same store bytes,
// none of the partitioning cost.
func (e *executor) applyBlock(t *commitTask) []replyOut {
	n := e.n
	txs := t.block.Txs
	outs := make([]replyOut, 0, len(txs))
	jobs := e.jobs[:0]
	for i, tx := range txs {
		if r, done := n.replyCache.Get(tx.ID); done {
			// Ordered twice (a retransmission raced a slow commit): the
			// first execution won; re-reply only.
			outs = append(outs, replyOut{tx: tx, r: r, resend: true})
			continue
		}
		if t.valid&(1<<uint(i)) == 0 {
			jobs = append(jobs, applyJob{tx: tx, wave: -1})
			continue
		}
		j := applyJob{tx: tx}
		if e.workers > 0 {
			j.mask = n.store.StripeMask(tx)
		}
		jobs = append(jobs, j)
	}
	if e.workers > 0 {
		e.applyWaves(jobs)
	} else {
		for k := range jobs {
			if jobs[k].wave < 0 {
				continue
			}
			jobs[k].ok = n.store.Apply(jobs[k].tx) == nil
		}
	}
	for k := range jobs {
		j := &jobs[k]
		if !j.ok && n.cfg.Storage != nil {
			// Remember rejected verdicts for checkpoints, so a restarted
			// replica re-answers retransmissions honestly. Only the executor
			// goroutine calls recordFailed while the node runs; the loop reads
			// the list at checkpoints under Pause.
			n.recordFailed(j.tx.ID)
		}
		n.committed.Add(1)
		n.committedCtr.Inc()
		r := &types.Reply{TxID: j.tx.ID, Replica: n.cfg.Self, Committed: j.ok}
		n.replyCache.Put(j.tx.ID, r)
		outs = append(outs, replyOut{tx: j.tx, r: r})
	}
	e.jobs = jobs[:0]
	return outs
}

// applyWaves partitions jobs into conflict-free waves and runs each wave's
// members concurrently on the worker pool (small waves stay serial).
func (e *executor) applyWaves(jobs []applyJob) {
	n := e.n
	waveMasks := e.waveMasks[:0]
	for k := range jobs {
		if jobs[k].wave < 0 {
			continue
		}
		w := 0
		for i := len(waveMasks) - 1; i >= 0; i-- {
			if waveMasks[i]&jobs[k].mask != 0 {
				w = i + 1
				break
			}
		}
		if w == len(waveMasks) {
			waveMasks = append(waveMasks, 0)
		}
		waveMasks[w] |= jobs[k].mask
		jobs[k].wave = w
	}
	for w := range waveMasks {
		members := e.members[:0]
		for k := range jobs {
			if jobs[k].wave == w {
				members = append(members, k)
			}
		}
		if len(members) < minParallelWave {
			for _, k := range members {
				jobs[k].ok = n.store.Apply(jobs[k].tx) == nil
			}
			e.members = members[:0]
			continue
		}
		var wg sync.WaitGroup
		wg.Add(len(members) - 1)
		for _, k := range members[1:] {
			k := k
			e.jobCh <- func() {
				jobs[k].ok = n.store.Apply(jobs[k].tx) == nil
				wg.Done()
			}
		}
		jobs[members[0]].ok = n.store.Apply(jobs[members[0]].tx) == nil
		wg.Wait()
		e.members = members[:0]
	}
	e.waveMasks = waveMasks[:0]
}

// sendReplies answers clients after the group's durable append. Reply gating
// (crash model: only the responsible primary answers) was decided on the loop
// at hand-off; retransmission re-replies are always sent, matching the inline
// path.
func (e *executor) sendReplies(t *commitTask, outs []replyOut) {
	n := e.n
	var ts time.Time
	if n.tracer != nil {
		ts = time.Now() // one clock read per block; stamps are block-grained anyway
	}
	for _, o := range outs {
		if !o.resend && n.tracer != nil {
			n.tracer.Finish(o.tx.ID, ts)
		}
		// The gateway settles regardless of MsgReply ownership: every
		// replica that admitted this transaction owes its submitter a
		// verdict from its own commit observation.
		n.gw.observeCommit(o.tx, o.r)
		if !o.resend && !t.reply {
			continue
		}
		payload := o.r.Encode(nil)
		n.cfg.Net.Send(o.tx.Client, &types.Envelope{
			Type: types.MsgReply, From: n.cfg.Self,
			Payload: payload, Sig: n.cfg.Signer.Sign(payload),
		})
	}
}
