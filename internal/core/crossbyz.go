package core

import (
	"encoding/binary"
	"math/rand"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/types"
)

// xbyz implements Algorithm 2: flattened cross-shard consensus with
// Byzantine nodes. Compared to Algorithm 1 the per-cluster quorum grows
// from f+1 to 2f+1 and the accept and commit phases are decentralized:
// every node of every involved cluster multicasts its (signed) ACCEPT and
// COMMIT to all nodes of all involved clusters, so no single node is
// trusted to tally votes.
//
// Conflict handling mirrors the crash engine: an initiator whose attempt
// stalls withdraws it with a signed ABORT and re-proposes after a jittered
// exponential backoff. Because votes are tallied by everyone, two extra
// guards protect against stale attempts committing after a release:
//   - a node multicasts COMMIT only while it still holds the lock for the
//     digest and the agreed hash for its own cluster still equals its chain
//     head, and
//   - an ABORT does not release a node that has already entered the commit
//     phase (its cluster may be pinned by the in-flight decision).
type xbyz struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID
	signer  crypto.Signer
	verify  crypto.Verifier

	status   func() chainStatus
	validate func(*types.Transaction) bool

	lockTimeout  time.Duration
	retryTimeout time.Duration
	rng          *rand.Rand

	locked       bool
	lockDigest   types.Hash
	lockDeadline time.Time
	waiting      map[types.Hash]*types.Envelope

	instances map[types.Hash]*xinst
	leads     map[types.Hash]*xbyzLead
	decided   map[types.Hash]bool
}

// xinst is per-digest participant state.
type xinst struct {
	txs        []*types.Transaction
	involved   types.ClusterSet
	proposer   types.NodeID
	view       uint64
	accepts    *consensus.HashVoteSet
	commits    *consensus.VoteSet
	sentAccept bool
	sentCommit bool
	// keyHashes remembers the hash list behind every commit key seen, so
	// the decision adopts whichever key reaches quorum.
	keyHashes map[consensus.VoteKey]keyedHashes
	// committedHashes pins the one hash list this node has endorsed with a
	// COMMIT; re-commits must match it, which keeps two different commit
	// quorums for the same digest from ever co-existing.
	committedHashes []types.Hash
	commitEnv       *types.Envelope // stored commit for re-broadcast
}

// slotOf returns the index of cluster c in the instance's involved set.
func (inst *xinst) slotOf(c types.ClusterID) int {
	for i, ic := range inst.involved {
		if ic == c {
			return i
		}
	}
	return -1
}

// xbyzLead is initiator-only retry state.
type xbyzLead struct {
	txs      []*types.Transaction
	involved types.ClusterSet
	view     uint64
	deadline time.Time
	dormant  bool
	attempts int
	// fastRetried limits split-vote-triggered re-proposals to one per
	// timer window (see xlead.fastRetried).
	fastRetried bool
}

func newXByz(topo *consensus.Topology, cluster types.ClusterID, self types.NodeID,
	signer crypto.Signer, verifier crypto.Verifier,
	status func() chainStatus, validate func(*types.Transaction) bool,
	lockTimeout, retryTimeout time.Duration, seed int64) *xbyz {
	return &xbyz{
		topo: topo, cluster: cluster, self: self,
		signer: signer, verify: verifier, status: status, validate: validate,
		lockTimeout: lockTimeout, retryTimeout: retryTimeout,
		rng:       rand.New(rand.NewSource(seed)),
		waiting:   make(map[types.Hash]*types.Envelope),
		instances: make(map[types.Hash]*xinst),
		leads:     make(map[types.Hash]*xbyzLead),
		decided:   make(map[types.Hash]bool),
	}
}

func (x *xbyz) Locked() bool { return x.locked }

func (x *xbyz) Waiting() int { return len(x.waiting) }

func (x *xbyz) Pending() int { return len(x.instances) + len(x.waiting) }

func (x *xbyz) backoff(attempts int) time.Duration {
	shift := attempts - 1
	if shift > 2 {
		shift = 2
	}
	base := x.retryTimeout << uint(shift)
	return base + time.Duration(x.rng.Int63n(int64(x.retryTimeout)))
}

func (x *xbyz) getInstance(digest types.Hash) *xinst {
	inst, ok := x.instances[digest]
	if !ok {
		inst = &xinst{
			accepts:   consensus.NewHashVoteSet(),
			commits:   consensus.NewVoteSet(),
			keyHashes: make(map[consensus.VoteKey]keyedHashes),
		}
		x.instances[digest] = inst
	}
	return inst
}

func (x *xbyz) lock(digest types.Hash, now time.Time) {
	x.locked = true
	x.lockDigest = digest
	x.lockDeadline = now.Add(x.lockTimeout)
}

func (x *xbyz) unlock(digest types.Hash) {
	if x.locked && x.lockDigest == digest {
		x.locked = false
	}
}

// Initiate starts Algorithm 2 (lines 6–8) on a batch of cross-shard
// transactions that share one involved-cluster set.
func (x *xbyz) Initiate(txs []*types.Transaction, now time.Time) []consensus.Outbound {
	involved, ok := batchInvolved(txs)
	if !ok {
		return nil
	}
	digest := types.BatchDigest(txs)
	if x.decided[digest] || x.leads[digest] != nil {
		return nil
	}
	lead := &xbyzLead{txs: txs, involved: involved}
	x.leads[digest] = lead
	return x.propose(lead, digest, now)
}

func (x *xbyz) propose(lead *xbyzLead, digest types.Hash, now time.Time) []consensus.Outbound {
	lead.attempts++
	lead.view++
	lead.dormant = false
	lead.fastRetried = false
	lead.deadline = now.Add(x.backoff(lead.attempts))

	st := x.status()
	msg := &types.ConsensusMsg{
		View:       lead.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: []types.Hash{st.Head},
		Txs:        lead.txs,
	}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(lead.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXPropose, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}

	// Join the accept phase at the new attempt view ourselves.
	inst := x.getInstance(digest)
	inst.txs = lead.txs
	inst.involved = lead.involved
	inst.proposer = x.self
	if lead.view > inst.view && !inst.sentCommit {
		inst.view = lead.view
		inst.sentAccept = false
	}
	x.lock(digest, now)
	out = append(out, x.sendAccept(inst, digest, st)...)
	return out
}

// withdraw invalidates the current attempt and asks participants that have
// not entered the commit phase to release their locks.
func (x *xbyz) withdraw(lead *xbyzLead, digest types.Hash, now time.Time) []consensus.Outbound {
	lead.dormant = true
	lead.deadline = now.Add(x.backoff(lead.attempts))

	msg := &types.ConsensusMsg{View: lead.view, Digest: digest, Cluster: x.cluster}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(lead.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXAbort, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}
	// Release ourselves under the same rule as everyone else.
	if inst := x.instances[digest]; inst != nil && !inst.sentCommit {
		x.unlock(digest)
	}
	return out
}

// Step dispatches Algorithm 2 messages. All payloads must carry a valid
// signature from the claimed sender (§2.1).
func (x *xbyz) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	if ok, known := env.Auth(); known {
		if !ok {
			return nil, nil // verdict precomputed by the parallel verification pool
		}
	} else if !x.verify.Verify(env.From, env.Payload, env.Sig) {
		return nil, nil
	}
	switch env.Type {
	case types.MsgXPropose:
		return x.onPropose(env, now)
	case types.MsgXAccept:
		return x.onAccept(env, now)
	case types.MsgXCommit:
		return x.onCommit(env)
	case types.MsgXAbort:
		return x.onAbort(env, now)
	default:
		return nil, nil
	}
}

// onPropose (lines 9–11): validate and multicast a signed ACCEPT carrying
// h_j to every node of every involved cluster.
func (x *xbyz) onPropose(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	involved, ok := batchInvolved(m.Txs)
	if !ok || !involved.Contains(x.cluster) {
		return nil, nil
	}
	digest := types.BatchDigest(m.Txs)
	if digest != m.Digest || x.decided[digest] {
		return nil, nil
	}
	// The proposer must belong to an involved cluster; a node outside the
	// involved set has no business initiating (malicious traffic).
	pc, ok := x.topo.ClusterOf(env.From)
	if !ok || !involved.Contains(pc) {
		return nil, nil
	}
	st := x.status()
	inst := x.getInstance(digest)
	inst.txs = m.Txs
	inst.involved = involved
	if inst.proposer == 0 {
		inst.proposer = env.From
	}
	if (x.locked && x.lockDigest != digest) || !st.Drained {
		x.waiting[digest] = env
		return nil, nil
	}
	delete(x.waiting, digest)
	x.maybeReleaseDeadCommit(inst, digest, st)
	if inst.sentCommit {
		// We are pinned to a commit whose parent is still our head: help
		// the new attempt converge to the same hash list by re-voting our
		// pinned h and re-broadcasting our stored commit.
		var out []consensus.Outbound
		if m.View > inst.view {
			inst.view = m.View
			inst.sentAccept = false
			out = x.sendAccept(inst, digest, st)
		}
		if inst.commitEnv != nil {
			out = append(out, consensus.Outbound{
				To:  othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
				Env: inst.commitEnv,
			})
		}
		return out, nil
	}
	if m.View > inst.view {
		// New attempt by the initiator: vote again at the higher view.
		inst.view = m.View
		inst.sentAccept = false
	}
	if inst.sentAccept {
		return nil, nil
	}
	x.lock(digest, now)
	return x.sendAccept(inst, digest, st), nil
}

// maybeReleaseDeadCommit clears a pinned commit whose agreed parent for our
// cluster no longer matches our chain head. Heads only move forward, so no
// correct node of our cluster can ever endorse that hash list again: the
// old attempt is dead and holding its lock would wedge the node.
func (x *xbyz) maybeReleaseDeadCommit(inst *xinst, digest types.Hash, st chainStatus) {
	if !inst.sentCommit {
		return
	}
	slot := inst.slotOf(x.cluster)
	if slot < 0 || slot >= len(inst.committedHashes) {
		return
	}
	if inst.committedHashes[slot] == st.Head {
		return
	}
	inst.sentCommit = false
	inst.sentAccept = false
	inst.committedHashes = nil
	inst.commitEnv = nil
	x.unlock(digest)
}

func (x *xbyz) sendAccept(inst *xinst, digest types.Hash, st chainStatus) []consensus.Outbound {
	if inst.sentAccept {
		return nil
	}
	inst.sentAccept = true
	valid := validBits(inst.txs, x.validate)
	inst.accepts.Add(x.cluster, x.self, consensus.HashVote{
		Key:   consensus.VoteKey{View: inst.view, Digest: digest},
		Prev:  st.Head,
		Valid: valid,
	})
	m := &types.ConsensusMsg{
		View:       inst.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: []types.Hash{st.Head},
		Seq:        valid, // per-transaction validity bitmap
	}
	payload := m.Encode(nil)
	return []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXAccept, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}
}

// onAccept (lines 12–14): on 2f+1 matching accepts from every involved
// cluster, assemble the hash list and multicast a signed COMMIT.
func (x *xbyz) onAccept(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.PrevHashes) != 1 || x.decided[m.Digest] {
		return nil, nil
	}
	senderCluster, ok := x.topo.ClusterOf(env.From)
	if !ok {
		return nil, nil
	}
	inst := x.getInstance(m.Digest)
	inst.accepts.Add(senderCluster, env.From, consensus.HashVote{
		Key:   consensus.VoteKey{View: m.View, Digest: m.Digest},
		Prev:  m.PrevHashes[0],
		Valid: m.Seq,
	})
	return x.maybeCommit(inst, m.Digest, now)
}

func (x *xbyz) maybeCommit(inst *xinst, digest types.Hash, now time.Time) ([]consensus.Outbound, []crossDecision) {
	if len(inst.txs) == 0 || inst.sentCommit {
		return nil, x.maybeDecide(inst, digest)
	}
	// Guard: only nodes still holding the lock vote in the commit phase, so
	// a withdrawn attempt can never resurrect after its locks were released.
	if !x.locked || x.lockDigest != digest {
		return nil, x.maybeDecide(inst, digest)
	}
	acceptKey := consensus.VoteKey{View: inst.view, Digest: digest}
	hashes, valid, ok := inst.accepts.QuorumAllPrev(inst.involved, acceptKey,
		func(c types.ClusterID) int { return x.topo.CrossQuorum(c) })
	if !ok {
		// Vote split across chain heads: if we are the initiator, launch
		// the next attempt immediately (see xcrash for the rationale), at
		// most once per timer window.
		if lead, isLead := x.leads[digest]; isLead && !lead.dormant && !lead.fastRetried {
			for _, c := range inst.involved {
				if inst.accepts.MatchImpossible(c, acceptKey, x.topo.CrossQuorum(c), len(x.topo.Members(c))) {
					out := x.propose(lead, digest, now)
					lead.fastRetried = true
					return out, nil
				}
			}
		}
		return nil, nil
	}
	// Guard: the agreed parent for our own cluster must still be our head.
	mySlot := inst.slotOf(x.cluster)
	if mySlot < 0 || hashes[mySlot] != x.status().Head {
		return nil, nil
	}
	inst.sentCommit = true
	inst.committedHashes = hashes
	key := commitKey(digest, hashes, valid)
	inst.keyHashes[key] = keyedHashes{hashes: hashes, valid: valid}
	inst.commits.Add(x.cluster, x.self, key)

	m := &types.ConsensusMsg{
		View:       inst.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: hashes,
		Txs:        inst.txs,
		Seq:        valid, // aggregated validity bitmap
	}
	payload := m.Encode(nil)
	env := &types.Envelope{Type: types.MsgXCommit, From: x.self,
		Payload: payload, Sig: x.signer.Sign(payload)}
	inst.commitEnv = env
	out := []consensus.Outbound{{
		To:  othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
		Env: env,
	}}
	return out, x.maybeDecide(inst, digest)
}

// onCommit (lines 15–16): on 2f+1 matching commits from every involved
// cluster, execute and append.
func (x *xbyz) onCommit(env *types.Envelope) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || x.decided[m.Digest] {
		return nil, nil
	}
	senderCluster, ok := x.topo.ClusterOf(env.From)
	if !ok {
		return nil, nil
	}
	inst := x.getInstance(m.Digest)
	if len(inst.txs) == 0 && len(m.Txs) > 0 && types.BatchDigest(m.Txs) == m.Digest {
		if involved, ok := batchInvolved(m.Txs); ok {
			inst.txs = m.Txs
			inst.involved = involved
		}
	}
	key := commitKey(m.Digest, m.PrevHashes, m.Seq)
	inst.keyHashes[key] = keyedHashes{hashes: m.PrevHashes, valid: m.Seq}
	inst.commits.Add(senderCluster, env.From, key)
	return nil, x.maybeDecide(inst, m.Digest)
}

func (x *xbyz) maybeDecide(inst *xinst, digest types.Hash) []crossDecision {
	if len(inst.txs) == 0 || x.decided[digest] {
		return nil
	}
	for key, kh := range inst.keyHashes {
		if !inst.commits.QuorumAll(inst.involved, key,
			func(c types.ClusterID) int { return x.topo.CrossQuorum(c) }) {
			continue
		}
		x.decided[digest] = true
		x.unlock(digest)
		delete(x.waiting, digest)
		txs := inst.txs
		delete(x.instances, digest)
		delete(x.leads, digest)
		return []crossDecision{{Txs: txs, Digest: digest, Hashes: kh.hashes, Valid: kh.valid}}
	}
	return nil
}

// keyedHashes pairs a commit key's hash list with its validity bitmap.
type keyedHashes struct {
	hashes []types.Hash
	valid  uint64
}

// onAbort releases the lock held for the digest, unless this node already
// entered the commit phase (the decision may be in flight cluster-wide).
// Only the attempt's proposer is honored.
func (x *xbyz) onAbort(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || x.decided[m.Digest] {
		return nil, nil
	}
	inst, ok := x.instances[m.Digest]
	if !ok || inst.proposer != env.From || inst.sentCommit {
		return nil, nil
	}
	delete(x.waiting, m.Digest)
	x.unlock(m.Digest)
	return x.drainWaiting(now)
}

// OnChainAdvanced retries parked proposals.
func (x *xbyz) OnChainAdvanced(now time.Time) ([]consensus.Outbound, []crossDecision) {
	return x.drainWaiting(now)
}

func (x *xbyz) drainWaiting(now time.Time) ([]consensus.Outbound, []crossDecision) {
	if len(x.waiting) == 0 || x.locked {
		return nil, nil
	}
	pending := make([]*types.Envelope, 0, len(x.waiting))
	for _, env := range x.waiting {
		pending = append(pending, env)
	}
	var outs []consensus.Outbound
	var decs []crossDecision
	for _, env := range pending {
		o, d := x.onPropose(env, now)
		outs = append(outs, o...)
		decs = append(decs, d...)
		if x.locked {
			break
		}
	}
	return outs, decs
}

// Tick expires locks (crashed-initiator fallback) and drives the withdraw /
// backoff / re-propose cycle.
func (x *xbyz) Tick(now time.Time) ([]consensus.Outbound, []crossDecision) {
	var outs []consensus.Outbound
	if x.locked && now.After(x.lockDeadline) {
		x.locked = false
	}
	st := x.status()
	for digest, inst := range x.instances {
		if inst.sentCommit {
			x.maybeReleaseDeadCommit(inst, digest, st)
		}
	}
	for digest, lead := range x.leads {
		if x.decided[digest] || !now.After(lead.deadline) {
			continue
		}
		if lead.dormant {
			if !x.locked && x.status().Drained {
				outs = append(outs, x.propose(lead, digest, now)...)
			} else {
				lead.deadline = now.Add(x.retryTimeout)
			}
			continue
		}
		if lead.attempts >= maxCrossAttempts {
			outs = append(outs, x.withdraw(lead, digest, now)...)
			delete(x.leads, digest)
			continue
		}
		outs = append(outs, x.withdraw(lead, digest, now)...)
	}
	o, d := x.drainWaiting(now)
	return append(outs, o...), d
}

// commitKey folds the agreed hash list and validity bitmap into the vote
// key so only commits endorsing identical outcomes match.
func commitKey(digest types.Hash, hashes []types.Hash, valid uint64) consensus.VoteKey {
	buf := make([]byte, 0, 32*(len(hashes)+1)+8)
	buf = append(buf, digest[:]...)
	for _, h := range hashes {
		buf = append(buf, h[:]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, valid)
	return consensus.VoteKey{Digest: types.HashBytes(buf)}
}
