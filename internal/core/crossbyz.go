package core

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"sort"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// xbyz implements Algorithm 2: flattened cross-shard consensus with
// Byzantine nodes. Compared to Algorithm 1 the per-cluster quorum grows
// from f+1 to 2f+1 and the accept and commit phases are decentralized:
// every node of every involved cluster multicasts its (signed) ACCEPT and
// COMMIT to all nodes of all involved clusters, so no single node is
// trusted to tally votes.
//
// Conflict handling mirrors the crash engine: scheduling goes through the
// node's shared conflict table (slot vote + lead admission), an initiator
// whose attempt stalls withdraws it with a signed ABORT and re-proposes
// after a jittered exponential backoff, and several leads pipeline when the
// table admits them. Because votes are tallied by everyone, two extra
// guards protect against stale attempts committing after a release:
//   - a node multicasts COMMIT only while it still holds the slot vote for
//     the digest and the agreed hash for its own cluster still equals its
//     chain head, and
//   - an ABORT does not release a node that has already entered the commit
//     phase (its cluster may be pinned by the in-flight decision).
type xbyz struct {
	topo    *consensus.Topology
	cluster types.ClusterID
	self    types.NodeID
	signer  crypto.Signer
	verify  crypto.Verifier

	status   func() chainStatus
	validate func(*types.Transaction) bool

	table    *consensus.ConflictTable
	maxLeads int

	lockTimeout  time.Duration
	retryTimeout time.Duration
	rng          *rand.Rand

	waiting   map[types.Hash]*types.Envelope
	waitOrder []types.Hash

	instances map[types.Hash]*xinst
	leads     map[types.Hash]*xbyzLead
	decided   map[types.Hash]bool

	// Diagnostics (read via Stats).
	nPropose, nWithdraw, nGrant, nDecide, nLockExpire, nParks int

	// ring is a bounded ring of slot-vote events (SHARPER_TRACE only); the
	// crash engine keeps the same ring, so a divergence hunt reads one
	// timeline format regardless of the fault model.
	ring *obs.EventRing
	// tracer, when non-nil, receives digest-keyed lifecycle stamps for
	// sampled cross-shard transactions (propose / lock-grant / prepared).
	tracer *obs.TxTracer
}

// DebugTrace returns the recent slot-vote events (oldest first).
func (x *xbyz) DebugTrace() []string { return x.ring.Lines() }

// DebugEvents returns the recent slot-vote events in structured form.
func (x *xbyz) DebugEvents() []obs.Event { return x.ring.Events() }

// xinst is per-digest participant state.
type xinst struct {
	txs        []*types.Transaction
	involved   types.ClusterSet
	proposer   types.NodeID
	view       uint64
	accepts    *consensus.HashVoteSet
	commits    *consensus.VoteSet
	sentAccept bool
	sentCommit bool
	// needAccept marks a lead instance whose own accept is still deferred
	// behind a busy slot vote; it is cast when the slot frees.
	needAccept bool
	// keyHashes remembers the hash list behind every commit key seen, so
	// the decision adopts whichever key reaches quorum.
	keyHashes map[consensus.VoteKey]keyedHashes
	// committedHashes pins the one hash list this node has endorsed with a
	// COMMIT; re-commits must match it, which keeps two different commit
	// quorums for the same digest from ever co-existing.
	committedHashes []types.Hash
	commitEnv       *types.Envelope // stored commit for re-broadcast
}

// slotOf returns the index of cluster c in the instance's involved set.
func (inst *xinst) slotOf(c types.ClusterID) int {
	for i, ic := range inst.involved {
		if ic == c {
			return i
		}
	}
	return -1
}

// xbyzLead is initiator-only retry state.
type xbyzLead struct {
	txs      []*types.Transaction
	involved types.ClusterSet
	view     uint64
	deadline time.Time
	dormant  bool
	attempts int
	// fastRetried limits split-vote-triggered re-proposals to one per
	// timer window (see xlead.fastRetried).
	fastRetried bool
}

func newXByz(topo *consensus.Topology, cluster types.ClusterID, self types.NodeID,
	signer crypto.Signer, verifier crypto.Verifier, table *consensus.ConflictTable,
	status func() chainStatus, validate func(*types.Transaction) bool,
	lockTimeout, retryTimeout time.Duration, maxLeads int, seed int64) *xbyz {
	if maxLeads <= 0 {
		maxLeads = 1
	}
	return &xbyz{
		topo: topo, cluster: cluster, self: self,
		signer: signer, verify: verifier, status: status, validate: validate,
		table: table, maxLeads: maxLeads,
		lockTimeout: lockTimeout, retryTimeout: retryTimeout,
		rng:       rand.New(rand.NewSource(seed)),
		waiting:   make(map[types.Hash]*types.Envelope),
		instances: make(map[types.Hash]*xinst),
		leads:     make(map[types.Hash]*xbyzLead),
		decided:   make(map[types.Hash]bool),
		ring:      obs.NewEventRing(0, os.Getenv("SHARPER_TRACE") != ""),
	}
}

func (x *xbyz) Locked() bool { return x.table.Held() }

func (x *xbyz) Waiting() int { return len(x.waiting) }

func (x *xbyz) Pending() int { return len(x.instances) + len(x.waiting) }

// CanInitiate consults the conflict table's lead-admission rule.
func (x *xbyz) CanInitiate(involved types.ClusterSet) bool {
	depth := x.maxLeads
	if depth > crossLeadDepth {
		depth = crossLeadDepth
	}
	return x.table.CanLead(involved, depth)
}

// ActiveLeads counts in-flight leads over exactly this set.
func (x *xbyz) ActiveLeads(involved types.ClusterSet) int {
	return x.table.LeadsFor(involved)
}

// NeedsSlot reports whether a lead instance still waits to cast its accept.
func (x *xbyz) NeedsSlot() bool {
	for digest, inst := range x.instances {
		if inst.needAccept {
			if lead, ok := x.leads[digest]; ok && !lead.dormant {
				return true
			}
		}
	}
	return false
}

// Stats reports the scheduler-observability counters.
func (x *xbyz) Stats() types.SchedStats {
	_, _, _, defers, avoided, selfWaits, hw := x.table.Stats()
	return types.SchedStats{
		Proposes:      uint64(x.nPropose),
		Withdraws:     uint64(x.nWithdraw),
		Grants:        uint64(x.nGrant),
		Decides:       uint64(x.nDecide),
		LockExpiries:  uint64(x.nLockExpire),
		Parks:         uint64(x.nParks),
		LeadsInFlight: uint64(x.table.Leads()),
		LeadHighWater: hw,
		TableSize:     uint64(x.table.Size()),
		Defers:        defers,
		DefersAvoided: avoided,
		SelfVoteWaits: selfWaits,
	}
}

func (x *xbyz) backoff(attempts int) time.Duration {
	shift := attempts - 1
	if shift > 2 {
		shift = 2
	}
	base := x.retryTimeout << uint(shift)
	return base + time.Duration(x.rng.Int63n(int64(x.retryTimeout)))
}

func (x *xbyz) getInstance(digest types.Hash) *xinst {
	inst, ok := x.instances[digest]
	if !ok {
		inst = &xinst{
			accepts:   consensus.NewHashVoteSet(),
			commits:   consensus.NewVoteSet(),
			keyHashes: make(map[consensus.VoteKey]keyedHashes),
		}
		x.instances[digest] = inst
	}
	return inst
}

func (x *xbyz) acquire(digest types.Hash, involved types.ClusterSet, st chainStatus, now time.Time) {
	x.table.Acquire(digest, involved, st.Seq+1, st.Head, now.Add(x.lockTimeout))
}

func (x *xbyz) unlock(digest types.Hash) {
	x.table.Release(digest)
}

// Initiate starts Algorithm 2 (lines 6–8) on a batch of cross-shard
// transactions that share one involved-cluster set.
func (x *xbyz) Initiate(txs []*types.Transaction, now time.Time) []consensus.Outbound {
	involved, ok := batchInvolved(txs)
	if !ok {
		return nil
	}
	digest := types.BatchDigest(txs)
	if x.decided[digest] || x.leads[digest] != nil {
		return nil
	}
	lead := &xbyzLead{txs: txs, involved: involved}
	x.leads[digest] = lead
	x.table.RegisterLead(digest, involved)
	return x.propose(lead, digest, now)
}

func (x *xbyz) propose(lead *xbyzLead, digest types.Hash, now time.Time) []consensus.Outbound {
	x.nPropose++
	x.tracer.StampDigest(digest, obs.StagePropose, now)
	x.ring.Recordf("xpropose", uint64(lead.attempts+1), digest, "v=%d", lead.view+1)
	lead.attempts++
	lead.view++
	lead.dormant = false
	lead.fastRetried = false
	lead.deadline = now.Add(x.backoff(lead.attempts))

	st := x.status()
	msg := &types.ConsensusMsg{
		View:       lead.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: []types.Hash{st.Head},
		Txs:        lead.txs,
	}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(lead.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXPropose, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}

	// Join the accept phase at the new attempt view ourselves; the accept is
	// deferred if another attempt holds the slot vote.
	inst := x.getInstance(digest)
	inst.txs = lead.txs
	inst.involved = lead.involved
	inst.proposer = x.self
	if lead.view > inst.view && !inst.sentCommit {
		inst.view = lead.view
		inst.sentAccept = false
	}
	out = append(out, x.tryVote(inst, digest, now)...)
	return out
}

// tryVote casts this node's accept for the instance once the chain is
// drained and the slot vote is grantable, deferring it otherwise.
func (x *xbyz) tryVote(inst *xinst, digest types.Hash, now time.Time) []consensus.Outbound {
	if inst.sentAccept || inst.sentCommit {
		inst.needAccept = false
		return nil
	}
	st := x.status()
	if !st.Drained || !x.table.CanVote(digest) {
		if !inst.needAccept {
			inst.needAccept = true
			x.table.NoteSelfVoteWait()
		}
		return nil
	}
	inst.needAccept = false
	x.acquire(digest, inst.involved, st, now)
	x.tracer.StampDigest(digest, obs.StageLockGrant, now)
	x.ring.Recordf("xselfvote", st.Seq+1, digest, "head=%s v=%d", st.Head, inst.view)
	return x.sendAccept(inst, digest, st)
}

// castSelfVotes retries deferred lead accepts in digest order.
func (x *xbyz) castSelfVotes(now time.Time) ([]consensus.Outbound, []crossDecision) {
	if x.table.Held() || !x.status().Drained {
		return nil, nil // no accept can be cast; skip the scan
	}
	var pending []types.Hash
	for digest, inst := range x.instances {
		if inst.needAccept {
			if lead, ok := x.leads[digest]; ok && !lead.dormant {
				pending = append(pending, digest)
			}
		}
	}
	if len(pending) == 0 {
		return nil, nil
	}
	sort.Slice(pending, func(i, j int) bool {
		return bytes.Compare(pending[i][:], pending[j][:]) < 0
	})
	var outs []consensus.Outbound
	var decs []crossDecision
	for _, digest := range pending {
		inst := x.instances[digest]
		if inst == nil {
			continue
		}
		outs = append(outs, x.tryVote(inst, digest, now)...)
		if inst.sentAccept {
			// Our vote may have been the last one missing.
			o, d := x.maybeCommit(inst, digest, now)
			outs = append(outs, o...)
			decs = append(decs, d...)
		}
	}
	return outs, decs
}

// withdraw invalidates the current attempt and asks participants that have
// not entered the commit phase to release their slot votes.
func (x *xbyz) withdraw(lead *xbyzLead, digest types.Hash, now time.Time) []consensus.Outbound {
	x.nWithdraw++
	lead.dormant = true
	lead.deadline = now.Add(x.backoff(lead.attempts))

	msg := &types.ConsensusMsg{View: lead.view, Digest: digest, Cluster: x.cluster}
	payload := msg.Encode(nil)
	out := []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(lead.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXAbort, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}
	// Release ourselves under the same rule as everyone else.
	if inst := x.instances[digest]; inst != nil {
		inst.needAccept = false
		if !inst.sentCommit {
			x.unlock(digest)
		}
	}
	return out
}

// Step dispatches Algorithm 2 messages. All payloads must carry a valid
// signature from the claimed sender (§2.1).
func (x *xbyz) Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	if ok, known := env.Auth(); known {
		if !ok {
			return nil, nil // verdict precomputed by the parallel verification pool
		}
	} else if !x.verify.Verify(env.From, env.Payload, env.Sig) {
		return nil, nil
	}
	switch env.Type {
	case types.MsgXPropose:
		return x.onPropose(env, now)
	case types.MsgXAccept:
		return x.onAccept(env, now)
	case types.MsgXCommit:
		return x.onCommit(env)
	case types.MsgXAbort:
		return x.onAbort(env, now)
	default:
		return nil, nil
	}
}

// park holds a proposal back in arrival order (see xcrash.park).
func (x *xbyz) park(digest types.Hash, env *types.Envelope) {
	if _, ok := x.waiting[digest]; !ok {
		x.waitOrder = append(x.waitOrder, digest)
		x.nParks++
	}
	x.waiting[digest] = env
}

func (x *xbyz) unpark(digest types.Hash) {
	delete(x.waiting, digest)
}

// onPropose (lines 9–11): validate and multicast a signed ACCEPT carrying
// h_j to every node of every involved cluster.
func (x *xbyz) onPropose(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil {
		return nil, nil
	}
	involved, ok := batchInvolved(m.Txs)
	if !ok || !involved.Contains(x.cluster) {
		return nil, nil
	}
	digest := types.BatchDigest(m.Txs)
	if digest != m.Digest || x.decided[digest] {
		return nil, nil
	}
	// The proposer must belong to an involved cluster; a node outside the
	// involved set has no business initiating (malicious traffic).
	pc, ok := x.topo.ClusterOf(env.From)
	if !ok || !involved.Contains(pc) {
		return nil, nil
	}
	st := x.status()
	inst := x.getInstance(digest)
	inst.txs = m.Txs
	inst.involved = involved
	if inst.proposer == 0 {
		inst.proposer = env.From
	}
	if !st.Drained || !x.table.CanVote(digest) {
		x.park(digest, env)
		return nil, nil
	}
	x.unpark(digest)
	x.maybeReleaseDeadCommit(inst, digest, st)
	if inst.sentCommit {
		// We are pinned to a commit whose parent is still our head: help
		// the new attempt converge to the same hash list by re-voting our
		// pinned h and re-broadcasting our stored commit.
		var out []consensus.Outbound
		if m.View > inst.view {
			inst.view = m.View
			inst.sentAccept = false
			out = x.sendAccept(inst, digest, st)
		}
		if inst.commitEnv != nil {
			out = append(out, consensus.Outbound{
				To:  othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
				Env: inst.commitEnv,
			})
		}
		return out, nil
	}
	if m.View > inst.view {
		// New attempt by the initiator: vote again at the higher view.
		inst.view = m.View
		inst.sentAccept = false
	}
	if inst.sentAccept {
		return nil, nil
	}
	x.nGrant++
	x.acquire(digest, involved, st, now)
	x.ring.Recordf("xvote", st.Seq+1, digest, "head=%s v=%d from=%s", st.Head, m.View, env.From)
	return x.sendAccept(inst, digest, st), nil
}

// maybeReleaseDeadCommit clears a pinned commit whose agreed parent for our
// cluster no longer matches our chain head. Heads only move forward, so no
// correct node of our cluster can ever endorse that hash list again: the
// old attempt is dead and holding its slot vote would wedge the node.
func (x *xbyz) maybeReleaseDeadCommit(inst *xinst, digest types.Hash, st chainStatus) {
	if !inst.sentCommit {
		return
	}
	slot := inst.slotOf(x.cluster)
	if slot < 0 || slot >= len(inst.committedHashes) {
		return
	}
	if inst.committedHashes[slot] == st.Head {
		return
	}
	inst.sentCommit = false
	inst.sentAccept = false
	inst.committedHashes = nil
	inst.commitEnv = nil
	x.unlock(digest)
}

func (x *xbyz) sendAccept(inst *xinst, digest types.Hash, st chainStatus) []consensus.Outbound {
	if inst.sentAccept {
		return nil
	}
	inst.sentAccept = true
	valid := validBits(inst.txs, x.validate)
	inst.accepts.Add(x.cluster, x.self, consensus.HashVote{
		Key:   consensus.VoteKey{View: inst.view, Digest: digest},
		Prev:  st.Head,
		Valid: valid,
	})
	m := &types.ConsensusMsg{
		View:       inst.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: []types.Hash{st.Head},
		Seq:        valid, // per-transaction validity bitmap
	}
	payload := m.Encode(nil)
	return []consensus.Outbound{{
		To: othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
		Env: &types.Envelope{Type: types.MsgXAccept, From: x.self,
			Payload: payload, Sig: x.signer.Sign(payload)},
	}}
}

// onAccept (lines 12–14): on 2f+1 matching accepts from every involved
// cluster, assemble the hash list and multicast a signed COMMIT.
func (x *xbyz) onAccept(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || len(m.PrevHashes) != 1 || x.decided[m.Digest] {
		return nil, nil
	}
	senderCluster, ok := x.topo.ClusterOf(env.From)
	if !ok {
		return nil, nil
	}
	inst := x.getInstance(m.Digest)
	inst.accepts.Add(senderCluster, env.From, consensus.HashVote{
		Key:   consensus.VoteKey{View: m.View, Digest: m.Digest},
		Prev:  m.PrevHashes[0],
		Valid: m.Seq,
	})
	return x.maybeCommit(inst, m.Digest, now)
}

func (x *xbyz) maybeCommit(inst *xinst, digest types.Hash, now time.Time) ([]consensus.Outbound, []crossDecision) {
	if len(inst.txs) == 0 || inst.sentCommit {
		return nil, x.maybeDecide(inst, digest)
	}
	// Guard: only nodes still holding the slot vote may vote in the commit
	// phase, so a withdrawn attempt can never resurrect after its votes were
	// released.
	if !x.table.Holds(digest) {
		return nil, x.maybeDecide(inst, digest)
	}
	acceptKey := consensus.VoteKey{View: inst.view, Digest: digest}
	hashes, valid, ok := inst.accepts.QuorumAllPrev(inst.involved, acceptKey,
		func(c types.ClusterID) int { return x.topo.CrossQuorum(c) })
	if !ok {
		// Vote split across chain heads: if we are the initiator, launch
		// the next attempt immediately (see xcrash for the rationale), at
		// most once per timer window.
		if lead, isLead := x.leads[digest]; isLead && !lead.dormant && !lead.fastRetried {
			for _, c := range inst.involved {
				if inst.accepts.MatchImpossible(c, acceptKey, x.topo.CrossQuorum(c), len(x.topo.Members(c))) {
					out := x.propose(lead, digest, now)
					lead.fastRetried = true
					return out, nil
				}
			}
		}
		return nil, nil
	}
	// Guard: the agreed parent for our own cluster must still be our head.
	mySlot := inst.slotOf(x.cluster)
	if mySlot < 0 || hashes[mySlot] != x.status().Head {
		return nil, nil
	}
	inst.sentCommit = true
	x.tracer.StampDigest(digest, obs.StagePrepared, now)
	x.ring.Recordf("xcommit", 0, digest, "v=%d", inst.view)
	inst.committedHashes = hashes
	key := commitKey(digest, hashes, valid)
	inst.keyHashes[key] = keyedHashes{hashes: hashes, valid: valid}
	inst.commits.Add(x.cluster, x.self, key)

	m := &types.ConsensusMsg{
		View:       inst.view,
		Digest:     digest,
		Cluster:    x.cluster,
		PrevHashes: hashes,
		Txs:        inst.txs,
		Seq:        valid, // aggregated validity bitmap
	}
	payload := m.Encode(nil)
	env := &types.Envelope{Type: types.MsgXCommit, From: x.self,
		Payload: payload, Sig: x.signer.Sign(payload)}
	inst.commitEnv = env
	out := []consensus.Outbound{{
		To:  othersOf(x.topo.InvolvedNodes(inst.involved), x.self),
		Env: env,
	}}
	return out, x.maybeDecide(inst, digest)
}

// onCommit (lines 15–16): on 2f+1 matching commits from every involved
// cluster, execute and append.
func (x *xbyz) onCommit(env *types.Envelope) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || x.decided[m.Digest] {
		return nil, nil
	}
	senderCluster, ok := x.topo.ClusterOf(env.From)
	if !ok {
		return nil, nil
	}
	inst := x.getInstance(m.Digest)
	if len(inst.txs) == 0 && len(m.Txs) > 0 && types.BatchDigest(m.Txs) == m.Digest {
		if involved, ok := batchInvolved(m.Txs); ok {
			inst.txs = m.Txs
			inst.involved = involved
		}
	}
	key := commitKey(m.Digest, m.PrevHashes, m.Seq)
	inst.keyHashes[key] = keyedHashes{hashes: m.PrevHashes, valid: m.Seq}
	inst.commits.Add(senderCluster, env.From, key)
	return nil, x.maybeDecide(inst, m.Digest)
}

func (x *xbyz) maybeDecide(inst *xinst, digest types.Hash) []crossDecision {
	if len(inst.txs) == 0 || x.decided[digest] {
		return nil
	}
	for key, kh := range inst.keyHashes {
		if !inst.commits.QuorumAll(inst.involved, key,
			func(c types.ClusterID) int { return x.topo.CrossQuorum(c) }) {
			continue
		}
		x.decided[digest] = true
		x.nDecide++
		x.ring.Recordf("xdecide", 0, digest, "")
		x.unlock(digest)
		x.unpark(digest)
		txs := inst.txs
		delete(x.instances, digest)
		delete(x.leads, digest)
		x.table.DropLead(digest)
		return []crossDecision{{Txs: txs, Digest: digest, Hashes: kh.hashes, Valid: kh.valid}}
	}
	return nil
}

// keyedHashes pairs a commit key's hash list with its validity bitmap.
type keyedHashes struct {
	hashes []types.Hash
	valid  uint64
}

// onAbort releases the slot vote held for the digest, unless this node
// already entered the commit phase (the decision may be in flight
// cluster-wide). Only the attempt's proposer is honored.
func (x *xbyz) onAbort(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision) {
	m, err := types.DecodeConsensusMsg(env.Payload)
	if err != nil || x.decided[m.Digest] {
		return nil, nil
	}
	inst, ok := x.instances[m.Digest]
	if !ok || inst.proposer != env.From || inst.sentCommit {
		return nil, nil
	}
	x.unpark(m.Digest)
	x.unlock(m.Digest)
	return x.drainAndVote(now)
}

// OnChainAdvanced retries parked proposals and deferred lead accepts.
func (x *xbyz) OnChainAdvanced(now time.Time) ([]consensus.Outbound, []crossDecision) {
	return x.drainAndVote(now)
}

func (x *xbyz) drainAndVote(now time.Time) ([]consensus.Outbound, []crossDecision) {
	// Self-votes before foreign grants (see xcrash.OnChainAdvanced): the
	// home lock of an in-flight lead outranks parked foreign proposals to
	// keep lock acquisition lowest-cluster-first.
	outs, decs := x.castSelfVotes(now)
	o2, d2 := x.drainWaiting(now)
	return append(outs, o2...), append(decs, d2...)
}

func (x *xbyz) drainWaiting(now time.Time) ([]consensus.Outbound, []crossDecision) {
	if len(x.waiting) == 0 || x.table.Held() {
		x.compactWaitOrder()
		return nil, nil
	}
	if !x.status().Drained {
		// No parked proposal can be granted on an undrained chain (see
		// xcrash.drainWaiting).
		return nil, nil
	}
	pending := make([]types.Hash, len(x.waitOrder))
	copy(pending, x.waitOrder)
	var outs []consensus.Outbound
	var decs []crossDecision
	for _, dg := range pending {
		env, ok := x.waiting[dg]
		if !ok {
			continue
		}
		o, d := x.onPropose(env, now)
		outs = append(outs, o...)
		decs = append(decs, d...)
		if x.table.Held() {
			break
		}
	}
	x.compactWaitOrder()
	return outs, decs
}

func (x *xbyz) compactWaitOrder() {
	if len(x.waitOrder) <= 4*len(x.waiting)+8 {
		return
	}
	kept := x.waitOrder[:0]
	for _, dg := range x.waitOrder {
		if _, ok := x.waiting[dg]; ok {
			kept = append(kept, dg)
		}
	}
	x.waitOrder = kept
}

// Tick expires slot votes (crashed-initiator fallback) and drives the
// withdraw / backoff / re-propose cycle.
func (x *xbyz) Tick(now time.Time) ([]consensus.Outbound, []crossDecision) {
	var outs []consensus.Outbound
	if _, ok := x.table.ExpireHolder(now); ok {
		x.nLockExpire++
	}
	st := x.status()
	for digest, inst := range x.instances {
		if inst.sentCommit {
			x.maybeReleaseDeadCommit(inst, digest, st)
		}
	}
	for digest, lead := range x.leads {
		if x.decided[digest] || !now.After(lead.deadline) {
			continue
		}
		if lead.dormant {
			if x.table.CanVote(digest) && x.status().Drained {
				outs = append(outs, x.propose(lead, digest, now)...)
			} else {
				lead.deadline = now.Add(x.retryTimeout)
			}
			continue
		}
		if lead.attempts >= maxCrossAttempts {
			outs = append(outs, x.withdraw(lead, digest, now)...)
			delete(x.leads, digest)
			x.table.DropLead(digest)
			continue
		}
		outs = append(outs, x.withdraw(lead, digest, now)...)
		// Withdraw same-set followers together (see xcrash.Tick).
		for dg2, l2 := range x.leads {
			if dg2 != digest && !l2.dormant && !x.decided[dg2] && l2.involved.Equal(lead.involved) {
				outs = append(outs, x.withdraw(l2, dg2, now)...)
			}
		}
	}
	o, d := x.drainAndVote(now)
	return append(outs, o...), d
}

// commitKey folds the agreed hash list and validity bitmap into the vote
// key so only commits endorsing identical outcomes match.
func commitKey(digest types.Hash, hashes []types.Hash, valid uint64) consensus.VoteKey {
	buf := make([]byte, 0, 32*(len(hashes)+1)+8)
	buf = append(buf, digest[:]...)
	for _, h := range hashes {
		buf = append(buf, h[:]...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, valid)
	return consensus.VoteKey{Digest: types.HashBytes(buf)}
}
