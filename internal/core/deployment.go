package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/ledger"
	"sharper/internal/mempool"
	"sharper/internal/obs"
	"sharper/internal/state"
	"sharper/internal/storage"
	"sharper/internal/transport"
	"sharper/internal/transport/tcpnet"
	"sharper/internal/types"
)

// TransportKind selects the message fabric a deployment runs over.
type TransportKind int

const (
	// TransportSim is the in-process simulated fabric (internal/transport):
	// modelled latency, fault injection, per-message processing cost. The
	// default, and what tests and benchmarks use.
	TransportSim TransportKind = iota
	// TransportTCP gives every replica its own TCP fabric on a loopback
	// socket (internal/transport/tcpnet): real length-prefixed,
	// HMAC-authenticated frames between real listeners, inside one process.
	// Fault injection is physical — CrashNode closes the victim's sockets.
	TransportTCP
)

// MaxBatchSize is the hard cap on transactions per block: the flattened
// cross-shard protocol carries per-transaction validity verdicts as a 64-bit
// bitmap (ConsensusMsg.Seq), so larger batches cannot be voted on.
const MaxBatchSize = 64

// Config describes a full SharPer deployment: failure model, cluster plan,
// network behaviour, and protocol timers.
type Config struct {
	// Model selects crash (Paxos + Algorithm 1) or Byzantine (PBFT +
	// Algorithm 2).
	Model types.FailureModel
	// Clusters is |P|; ignored if Topology is set.
	Clusters int
	// F is the per-cluster fault bound; ignored if Topology is set.
	F int
	// Topology overrides the uniform plan, e.g. for the §3.4
	// clustered-network optimization.
	Topology *consensus.Topology
	// Transport selects the fabric implementation (default TransportSim).
	Transport TransportKind
	// Network configures the simulated fabric; zero value = DefaultConfig.
	// Ignored under TransportTCP (real sockets have real latency).
	Network transport.Config
	// Shaping applies one per-link delay/bandwidth/loss matrix to whichever
	// fabric the deployment runs over: the simulated network consults it per
	// message, and TCP replicas shape each peer link from it (cluster pairs
	// via each peer's cluster, Client for the driver's links and reply
	// routes). transport.Multiregion() reproduces the paper's
	// cross-datacenter setup. Nil leaves both fabrics unshaped.
	Shaping *transport.Shaping
	// SuperPrimary enables §3.2 super-primary routing (default on via
	// NewDeployment unless DisableSuperPrimary).
	DisableSuperPrimary bool
	// Timers; zero values take defaults.
	IntraTimeout time.Duration
	LockTimeout  time.Duration
	RetryTimeout time.Duration
	TickInterval time.Duration
	// Batching and pipelining knobs; zero values take defaults (see
	// NodeConfig).
	BatchSize    int
	BatchTimeout time.Duration
	MaxInFlight  int
	// VerifyWindow is the signature batch-verification window of every
	// node's verify pool: 1 verifies strictly per signature, larger windows
	// batch-verify with bisection on failure. 0 takes the
	// SHARPER_VERIFY_WINDOW override, defaulting to
	// crypto.DefaultVerifyWindow. See NodeConfig.VerifyWindow.
	VerifyWindow int
	// SerializeCross restores the pre-conflict-table cross-shard scheduler
	// (one lead, drain-gated initiation, node-wide deferral) so benchmarks
	// can A/B the conflict-aware scheduler against it.
	SerializeCross bool
	// InlineCommit restores the pre-pipeline synchronous commit path (the
	// event loop applies, persists, and replies inline) so benchmarks can
	// A/B the commit pipeline against it.
	InlineCommit bool
	// PipelineDepth bounds each node's commit-pipeline queue (0 takes the
	// NodeConfig default); tests shrink it to exercise backpressure.
	PipelineDepth int
	// Seed drives all randomness (keys, jitter, fault injection).
	Seed int64
	// Ed25519 switches Byzantine deployments from the default HMAC
	// authenticators (PBFT's normal-case MAC vectors) to real ed25519
	// signatures. MACs are the faithful performance model; signatures cost
	// two orders of magnitude more CPU.
	Ed25519 bool

	// DataDir enables durable storage: every replica keeps a write-ahead
	// log and periodic checkpoints under DataDir/node-<id>, recovers from
	// them when rebuilt over the same directory, and can be restarted in
	// place with RestartNode. Empty means in-memory — unless the
	// SHARPER_PERSIST environment override is set (see below).
	DataDir string
	// Sync is the WAL fsync policy (default storage.SyncGroup).
	Sync storage.SyncPolicy
	// CheckpointInterval is the number of committed blocks between
	// checkpoints (default 256).
	CheckpointInterval int
	// NoPersist opts this deployment out of the SHARPER_PERSIST override —
	// for benchmarks that need a true in-memory baseline next to durable
	// configurations in the same process.
	NoPersist bool

	// NoMetrics disables the per-node observability registries. Metrics are
	// on by default (the hot path costs one atomic per event), so every
	// deployment is scrapeable; the overhead benchmark flips this for its
	// A/B baseline.
	NoMetrics bool
	// TraceSample is the lifecycle tracer's 1-in-N sampling rate (0 takes
	// obs.DefaultTraceSample, 1 traces everything). Ignored under NoMetrics.
	TraceSample int

	// Mempool bounds every replica's client-ingress gateway pool (byte/count
	// caps over pending + in-flight, TTL, committed dedup window); zero
	// fields take the mempool package defaults. See NodeConfig.Mempool.
	Mempool mempool.Config

	// Slash arms the equivocation-detecting auditor on every replica: nodes
	// index inbound consensus envelopes, mint signed fraud proofs from
	// conflicting claims, gossip them cluster-wide, and persist them to the
	// evidence log when storage is on. See internal/slasher.
	Slash bool
	// WrapFabric, when set, decorates each replica's fabric before the node
	// registers on it — the seam the adversary harness uses to compromise
	// nodes (internal/adversary). It runs under both transports and is
	// re-applied when RestartNode rebuilds a replica. Clients are not
	// wrapped.
	WrapFabric func(types.NodeID, transport.Fabric) transport.Fabric
}

// resolvePersistence decides the deployment's storage configuration. An
// explicit DataDir wins; otherwise SHARPER_PERSIST re-runs any deployment
// with durability on (mirroring SHARPER_BATCH): a temporary directory is
// created, owned, and removed at Stop. SHARPER_PERSIST's value may name the
// sync policy ("1"/"group", "none", "always").
func resolvePersistence(cfg *Config) (dataDir string, owned bool, err error) {
	if cfg.DataDir != "" {
		return cfg.DataDir, false, nil
	}
	v := os.Getenv("SHARPER_PERSIST")
	if v == "" || v == "0" || cfg.NoPersist {
		return "", false, nil
	}
	p, err := storage.ParseSyncPolicy(v)
	if err != nil {
		// A typo must not silently test a different durability policy.
		return "", false, fmt.Errorf("core: SHARPER_PERSIST: %w", err)
	}
	cfg.Sync = p
	dir, err := os.MkdirTemp("", "sharper-persist-")
	if err != nil {
		return "", false, err
	}
	return dir, true, nil
}

// Deployment is a running SharPer network: clusters of nodes over a message
// fabric (simulated or TCP), plus factories for clients.
type Deployment struct {
	cfg  Config
	Topo *consensus.Topology
	// Net is the fabric clients attach to: the shared simulated network, or
	// the dial-only client fabric of a TCP deployment.
	Net     transport.Fabric
	Keyring crypto.Provider
	Shards  state.ShardMap

	// fabrics holds each replica's own fabric under TransportTCP (every
	// node listens on its own loopback socket); empty under TransportSim,
	// where all nodes share Net.
	fabrics          map[types.NodeID]*tcpnet.Net
	nodes            map[types.NodeID]*Node
	nodeCfgs         map[types.NodeID]NodeConfig // for RestartNode rebuilds
	clientsConnected atomic.Bool                 // NewClient may run concurrently
	started          bool

	// Durable-storage bookkeeping: the resolved base directory, whether the
	// deployment created it (SHARPER_PERSIST temp dirs are removed at Stop),
	// and the per-store options.
	dataDir     string
	ownsDataDir bool
	storageOpts storage.Options

	// Genesis seeding parameters, remembered so RestartNode can rebuild a
	// replica's genesis state before recovery replays over it.
	seedPerShard int
	seedBalance  int64
}

// NodeDataDir is where one replica's storage lives under a deployment's
// base directory — the single definition of the on-disk layout, shared
// with sharperd's per-process replicas.
func NodeDataDir(base string, id types.NodeID) string {
	return filepath.Join(base, fmt.Sprintf("node-%d", id))
}

// ShapeTune translates a topology-level shaping matrix into per-fabric
// tcpnet link configuration: each replica shapes its outbound link to every
// peer by the two clusters' pair entry, the client driver's links and the
// replicas' reply routes take the Client shape. Returns nil (leave fabrics
// untouched) when shaping is nil — the single translation point shared by
// in-process TCP deployments and sharperd's one-process-per-replica mode.
func ShapeTune(sh *transport.Shaping, seed int64, clusterOf func(types.NodeID) (types.ClusterID, bool)) func(*tcpnet.Config) {
	if sh == nil {
		return nil
	}
	return func(tc *tcpnet.Config) {
		tc.ShapeSeed = seed
		// Dial-only fabrics with no listener are client drivers; their
		// endpoints live outside every cluster.
		isClient := tc.Listener == nil && tc.ListenAddr == ""
		selfCluster, located := types.ClusterID(0), false
		if !isClient {
			selfCluster, located = clusterOf(tc.Self)
		}
		shape := make(map[types.NodeID]transport.LinkShape, len(tc.Peers))
		for id := range tc.Peers {
			if id == tc.Self && !isClient {
				continue
			}
			var s transport.LinkShape
			if isClient || !located {
				s = sh.Client
			} else if pc, ok := clusterOf(id); ok {
				s = sh.For(selfCluster, pc)
			} else {
				s = sh.Default
			}
			if !s.IsZero() {
				shape[id] = s
			}
		}
		if len(shape) > 0 {
			tc.Shape = shape
		}
		if cs := sh.Client; !cs.IsZero() {
			tc.ClientShape = &cs
		}
	}
}

// NewDeployment validates the configuration and builds all nodes (stopped).
func NewDeployment(cfg Config) (*Deployment, error) {
	topo := cfg.Topology
	if topo == nil {
		if cfg.Clusters <= 0 || cfg.F <= 0 {
			return nil, fmt.Errorf("core: Clusters and F must be positive (got %d, %d)", cfg.Clusters, cfg.F)
		}
		topo = consensus.UniformTopology(cfg.Model, cfg.Clusters, cfg.F)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.Model != cfg.Model && !topo.Hybrid() {
		return nil, fmt.Errorf("core: topology model %s != config model %s", topo.Model, cfg.Model)
	}
	if cfg.BatchSize > MaxBatchSize {
		return nil, fmt.Errorf("core: BatchSize %d exceeds the %d-transaction cap (the cross-shard validity bitmap is %d bits wide)",
			cfg.BatchSize, MaxBatchSize, MaxBatchSize)
	}

	var clientNet transport.Fabric
	var fabrics map[types.NodeID]*tcpnet.Net
	nodeFabric := func(types.NodeID) transport.Fabric { return clientNet }
	switch cfg.Transport {
	case TransportSim:
		netCfg := cfg.Network
		if netCfg == (transport.Config{}) {
			netCfg = transport.DefaultConfig()
		}
		if netCfg.Seed == 0 {
			netCfg.Seed = cfg.Seed
		}
		if cfg.Shaping != nil {
			netCfg.Shaping = cfg.Shaping
		}
		clientNet = transport.New(netCfg, func(id types.NodeID) (types.ClusterID, bool) {
			return topo.ClusterOf(id)
		})
	case TransportTCP:
		secret := crypto.WireKey(fmt.Sprintf("loopback-%d", cfg.Seed))
		var clientFab *tcpnet.Net
		var err error
		fabrics, clientFab, err = tcpnet.Loopback(topo.AllNodes(), secret, ShapeTune(cfg.Shaping, cfg.Seed, topo.ClusterOf))
		if err != nil {
			return nil, err
		}
		clientNet = clientFab
		nodeFabric = func(id types.NodeID) transport.Fabric { return fabrics[id] }
	default:
		return nil, fmt.Errorf("core: unknown transport kind %d", cfg.Transport)
	}

	shards := state.ShardMap{NumShards: len(topo.Clusters)}

	dataDir, ownsDir, err := resolvePersistence(&cfg)
	if err != nil {
		return nil, err
	}

	var auth crypto.Provider = crypto.NewMACKeyring()
	if cfg.Ed25519 {
		auth = crypto.NewKeyring()
	}
	d := &Deployment{
		cfg:         cfg,
		Topo:        topo,
		Net:         clientNet,
		Keyring:     auth,
		Shards:      shards,
		fabrics:     fabrics,
		nodes:       make(map[types.NodeID]*Node),
		nodeCfgs:    make(map[types.NodeID]NodeConfig),
		dataDir:     dataDir,
		ownsDataDir: ownsDir,
		storageOpts: storage.Options{Sync: cfg.Sync, CheckpointInterval: cfg.CheckpointInterval},
	}

	// Construction failures must release everything already built: open
	// stores (each with a live flusher goroutine) and an owned temp dir.
	fail := func(err error) (*Deployment, error) {
		d.closeStorages()
		if d.ownsDataDir {
			os.RemoveAll(d.dataDir)
		}
		return nil, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	// Signatures are required deployment-wide as soon as any cluster runs
	// under the Byzantine model (hybrid deployments, §3.4).
	sign := topo.AnyByzantine()
	for _, id := range topo.AllNodes() {
		var signer crypto.Signer = crypto.NoopSigner{}
		var verifier crypto.Verifier = crypto.NoopSigner{}
		if sign {
			if err := d.Keyring.Generate(id, rng); err != nil {
				return fail(err)
			}
			s, err := d.Keyring.SignerFor(id)
			if err != nil {
				return fail(err)
			}
			signer, verifier = s, d.Keyring
		}
		cluster, _ := topo.ClusterOf(id)
		var reg *obs.Registry
		if !cfg.NoMetrics {
			reg = obs.NewRegistry()
		}
		var st *storage.Store
		if d.dataDir != "" {
			opts := d.storageOpts
			opts.Metrics = obs.NewStoreMetrics(reg)
			var serr error
			st, serr = storage.Open(NodeDataDir(d.dataDir, id), opts)
			if serr != nil {
				return fail(serr)
			}
		}
		fab := nodeFabric(id)
		if cfg.WrapFabric != nil {
			fab = cfg.WrapFabric(id, fab)
		}
		registerSimLinkGauges(reg, clientNet, id)
		ncfg := NodeConfig{
			Model:          topo.ModelOf(cluster),
			Topology:       topo,
			Cluster:        cluster,
			Self:           id,
			Net:            fab,
			Shards:         shards,
			Signer:         signer,
			Verifier:       verifier,
			IntraTimeout:   cfg.IntraTimeout,
			LockTimeout:    cfg.LockTimeout,
			RetryTimeout:   cfg.RetryTimeout,
			TickInterval:   cfg.TickInterval,
			BatchSize:      cfg.BatchSize,
			BatchTimeout:   cfg.BatchTimeout,
			MaxInFlight:    cfg.MaxInFlight,
			SerializeCross: cfg.SerializeCross,
			InlineCommit:   cfg.InlineCommit,
			PipelineDepth:  cfg.PipelineDepth,
			SuperPrimary:   !cfg.DisableSuperPrimary,
			VerifyWindow:   cfg.VerifyWindow,
			Seed:           cfg.Seed + int64(id) + 2,
			Storage:        st,
			Slash:          cfg.Slash,
			Metrics:        reg,
			TraceSample:    cfg.TraceSample,
			Mempool:        cfg.Mempool,
		}
		d.nodeCfgs[id] = ncfg
		d.nodes[id] = NewNode(ncfg)
	}
	return d, nil
}

// registerSimLinkGauges exposes a replica's inbound link counters on its
// registry when the deployment runs over the shared simulated fabric. Each
// node registers only its OWN link, so a fleet merge never double-counts the
// shared network. Pull-style: the callbacks read the fabric's atomics at
// snapshot time. (TCP fabrics expose per-peer stats through
// tcpnet.LinkStats; sharperd bridges those itself.)
func registerSimLinkGauges(reg *obs.Registry, fab transport.Fabric, id types.NodeID) {
	if reg == nil {
		return
	}
	sim, ok := fab.(*transport.Network)
	if !ok {
		return
	}
	link := sim.Link(id)
	reg.GaugeFunc("link_in_sent", func() uint64 { return uint64(link.Sent.Load()) })
	reg.GaugeFunc("link_in_delivered", func() uint64 { return uint64(link.Delivered.Load()) })
	reg.GaugeFunc("link_in_dropped", func() uint64 { return uint64(link.Dropped.Load()) })
	reg.GaugeFunc("link_in_bytes", func() uint64 { return uint64(link.Bytes.Load()) })
	reg.GaugeFunc("link_in_delay_us", func() uint64 { return uint64(link.DelayMicros.Load()) })
	reg.GaugeFunc("link_in_queue_depth", func() uint64 { return uint64(sim.QueueDepth(id)) })
}

// MetricsSnapshot returns the fleet-wide merged registry snapshot of every
// replica (nil when metrics are disabled). Sched gauges refresh on each
// node's tick, so a merged snapshot is at most one tick stale.
func (d *Deployment) MetricsSnapshot() []obs.Metric {
	var snaps [][]obs.Metric
	for _, n := range d.Nodes() {
		if r := n.Metrics(); r != nil {
			snaps = append(snaps, r.Snapshot())
		}
	}
	if len(snaps) == 0 {
		return nil
	}
	return obs.Merge(snaps...)
}

// closeStorages closes every built node's storage (used on construction
// failure and for never-started deployments).
func (d *Deployment) closeStorages() {
	for _, n := range d.nodes {
		n.CloseStorage()
	}
}

// Start runs every node.
func (d *Deployment) Start() {
	if d.started {
		return
	}
	d.started = true
	for _, n := range d.nodes {
		n.Start()
	}
}

// Stop terminates every node, tears the fabric(s) down, closes storage,
// and removes an owned (SHARPER_PERSIST temp) data directory.
func (d *Deployment) Stop() {
	d.Net.Close()
	for _, fab := range d.fabrics {
		fab.Close()
	}
	if d.started {
		for _, n := range d.nodes {
			n.Stop() // closes the node's storage too
		}
		d.started = false
	} else {
		d.closeStorages()
	}
	if d.ownsDataDir {
		os.RemoveAll(d.dataDir)
		d.ownsDataDir = false
	}
}

// DataDir returns the deployment's resolved storage base directory ("" when
// running in-memory).
func (d *Deployment) DataDir() string { return d.dataDir }

// RestartNode models a full process restart of one replica on the simulated
// fabric: the current incarnation is stopped (its in-memory state dies with
// it), a fresh node is built over the same storage directory — recovering
// chain, shard state, and acceptor obligations from checkpoint + log — and
// started; it then rejoins the cluster and fetches whatever it missed
// through the chain-sync protocol. Combine with CrashNode to model the
// crash itself; RestartNode clears the fabric's crash mark. Without a
// DataDir the node restarts empty (and resyncs from genesis).
//
// TCP replicas restart by restarting their process (see cmd/sharperd -data).
func (d *Deployment) RestartNode(id types.NodeID) (*Node, error) {
	if d.fabrics != nil {
		return nil, fmt.Errorf("core: RestartNode needs the simulated fabric; restart a TCP replica by restarting its process")
	}
	if !d.started {
		return nil, fmt.Errorf("core: RestartNode on a stopped deployment")
	}
	old, ok := d.nodes[id]
	if !ok {
		return nil, fmt.Errorf("core: unknown node %s", id)
	}
	old.Stop() // also closes its storage handle
	cfg := d.nodeCfgs[id]
	cfg.Storage = nil
	if d.dataDir != "" {
		// The incarnation keeps its registry (nodeCfgs carries it), so the
		// rebuilt store's handles resolve to the same counters.
		opts := d.storageOpts
		opts.Metrics = obs.NewStoreMetrics(cfg.Metrics)
		st, err := storage.Open(NodeDataDir(d.dataDir, id), opts)
		if err != nil {
			return nil, err
		}
		cfg.Storage = st
	}
	d.nodeCfgs[id] = cfg
	n := NewNode(cfg)
	d.nodes[id] = n
	// Rebuild the deterministic genesis state before recovery replays over
	// it (a checkpoint snapshot, when present, replaces it wholesale).
	d.seedNode(n)
	if fi := d.Faults(); fi != nil {
		fi.Restart(id)
	}
	n.Start()
	return n, nil
}

// Node returns the replica with the given ID.
func (d *Deployment) Node(id types.NodeID) *Node { return d.nodes[id] }

// Nodes returns all replicas.
func (d *Deployment) Nodes() []*Node {
	out := make([]*Node, 0, len(d.nodes))
	for _, id := range d.Topo.AllNodes() {
		out = append(out, d.nodes[id])
	}
	return out
}

// CrashNode stops delivery to a node, modelling its crash. On the simulated
// fabric the network marks it dead; on TCP the node's own fabric is closed —
// its listener and every connection drop, exactly what killing the process
// would look like to its peers.
func (d *Deployment) CrashNode(id types.NodeID) {
	if fab, ok := d.fabrics[id]; ok {
		fab.Close()
		return
	}
	if fi, ok := d.Net.(transport.FaultInjector); ok {
		fi.Crash(id)
	}
}

// Faults exposes the simulated fabric's fault-injection surface (partitions,
// crash/restart). It returns nil under TransportTCP, where faults are
// physical: close a fabric or kill a process.
func (d *Deployment) Faults() transport.FaultInjector {
	fi, _ := d.Net.(transport.FaultInjector)
	return fi
}

// NodeFabric returns the fabric a replica is attached to: its own TCP
// fabric under TransportTCP, the shared network otherwise.
func (d *Deployment) NodeFabric(id types.NodeID) transport.Fabric {
	if fab, ok := d.fabrics[id]; ok {
		return fab
	}
	return d.Net
}

// connectClients eagerly connects the TCP client fabric to every replica so
// replies forwarded through other nodes can route back. The first call
// waits for the full mesh; later calls use a short grace period (crashed
// replicas stay unreachable by design and must not stall client creation).
func (d *Deployment) connectClients() {
	cf, ok := d.Net.(*tcpnet.Net)
	if !ok {
		return
	}
	timeout := 250 * time.Millisecond
	if !d.clientsConnected.Swap(true) {
		timeout = 5 * time.Second
	}
	cf.ConnectAll(timeout)
}

// SeedAccounts credits `perShard` accounts in every shard with balance on
// every replica of the owning cluster, establishing identical genesis state.
func (d *Deployment) SeedAccounts(perShard int, balance int64) {
	d.seedPerShard, d.seedBalance = perShard, balance
	for _, n := range d.nodes {
		d.seedNode(n)
	}
}

// seedNode replays the genesis credit for one replica's shard.
func (d *Deployment) seedNode(n *Node) {
	for k := 0; k < d.seedPerShard; k++ {
		acct := d.Shards.AccountInShard(n.Cluster(), uint64(k))
		n.Store().Credit(acct, d.seedBalance)
	}
}

// ClusterViews returns one representative ledger view per cluster (the first
// member's), for DAG assembly in tests and examples.
func (d *Deployment) ClusterViews() []*ledger.View {
	var out []*ledger.View
	for _, c := range d.Topo.ClusterIDs() {
		out = append(out, d.nodes[d.Topo.Members(c)[0]].View())
	}
	return out
}

// DAG returns the union ledger assembled from representative views.
func (d *Deployment) DAG() *ledger.DAG { return ledger.NewDAG(d.ClusterViews()...) }

// FraudProofs gathers every distinct fraud proof held across all replicas
// (deduplicated by locus key — gossip makes most proofs appear on every
// honest member of a cluster). Only safe once the deployment has quiesced or
// stopped, like Counters.
func (d *Deployment) FraudProofs() []*types.FraudProof {
	seen := make(map[string]bool)
	var out []*types.FraudProof
	for _, id := range d.Topo.AllNodes() {
		for _, p := range d.nodes[id].FraudProofs() {
			if !seen[p.Key()] {
				seen[p.Key()] = true
				out = append(out, p)
			}
		}
	}
	return out
}

// TotalCommitted sums committed transactions over one representative node
// per cluster (each committed tx counts once per involved cluster).
func (d *Deployment) TotalCommitted() int64 {
	var total int64
	for _, c := range d.Topo.ClusterIDs() {
		total += d.nodes[d.Topo.Members(c)[0]].Committed()
	}
	return total
}
