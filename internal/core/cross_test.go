package core

import (
	"testing"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/ledger"
	"sharper/internal/types"
)

// xharness drives the crash-model flattened engines (Algorithm 1) as pure
// state machines: every node's engine plus a scripted chain status, with
// deterministic FIFO delivery.
type xharness struct {
	t       *testing.T
	topo    *consensus.Topology
	engines map[types.NodeID]*xcrash
	heads   map[types.NodeID]types.Hash
	drained map[types.NodeID]bool
	queue   []xrouted
	decided map[types.NodeID][]crossDecision
	drop    func(to types.NodeID) bool
	now     time.Time
}

type xrouted struct {
	to  types.NodeID
	env *types.Envelope
}

func newXHarness(t *testing.T, clusters int) *xharness {
	topo := consensus.UniformTopology(types.CrashOnly, clusters, 1)
	h := &xharness{
		t:       t,
		topo:    topo,
		engines: make(map[types.NodeID]*xcrash),
		heads:   make(map[types.NodeID]types.Hash),
		drained: make(map[types.NodeID]bool),
		decided: make(map[types.NodeID][]crossDecision),
		now:     time.Unix(10, 0),
	}
	for _, id := range topo.AllNodes() {
		id := id
		cluster, _ := topo.ClusterOf(id)
		h.heads[id] = ledger.GenesisHash()
		h.drained[id] = true
		status := func() chainStatus {
			return chainStatus{Head: h.heads[id], Drained: h.drained[id]}
		}
		validate := func(*types.Transaction) bool { return true }
		h.engines[id] = newXCrash(topo, cluster, id, consensus.NewConflictTable(cluster),
			status, validate, time.Second, 200*time.Millisecond, 4, int64(id))
	}
	return h
}

func (h *xharness) sendAll(from types.NodeID, outs []consensus.Outbound) {
	for _, o := range outs {
		for _, to := range o.To {
			if h.drop != nil && h.drop(to) {
				continue
			}
			h.queue = append(h.queue, xrouted{to: to, env: o.Env})
		}
	}
}

func (h *xharness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		outs, decs := h.engines[m.to].Step(m.env, h.now)
		h.sendAll(m.to, outs)
		for _, d := range decs {
			h.decided[m.to] = append(h.decided[m.to], d)
			h.applyDecision(m.to, d)
		}
	}
}

// applyDecision mimics the runtime: move the node's chain head to the new
// block and notify the engine.
func (h *xharness) applyDecision(id types.NodeID, d crossDecision) {
	block := &types.Block{Txs: d.Txs, Parents: d.Hashes}
	h.heads[id] = block.Hash()
	outs, decs := h.engines[id].OnChainAdvanced(h.now)
	h.sendAll(id, outs)
	for _, d2 := range decs {
		h.decided[id] = append(h.decided[id], d2)
		h.applyDecision(id, d2)
	}
}

func (h *xharness) tick(d time.Duration) {
	h.now = h.now.Add(d)
	for _, id := range h.topo.AllNodes() {
		outs, decs := h.engines[id].Tick(h.now)
		h.sendAll(id, outs)
		for _, dd := range decs {
			h.decided[id] = append(h.decided[id], dd)
			h.applyDecision(id, dd)
		}
	}
	h.pump()
}

// xbatch wraps a transaction as a batch-of-1 initiation.
func xbatch(txs ...*types.Transaction) []*types.Transaction { return txs }

// xdecided reports whether the decision's batch contains the transaction.
func xdecided(d crossDecision, id types.TxID) bool {
	for _, tx := range d.Txs {
		if tx.ID == id {
			return true
		}
	}
	return false
}

func xtx(seq uint64, clusters ...types.ClusterID) *types.Transaction {
	return &types.Transaction{
		ID:       types.TxID{Client: types.ClientIDBase + 1, Seq: seq},
		Client:   types.ClientIDBase + 1,
		Ops:      []types.Op{{From: 0, To: 1, Amount: 1}},
		Involved: types.NewClusterSet(clusters...),
	}
}

func TestAlg1NormalCase(t *testing.T) {
	h := newXHarness(t, 3)
	initiator := h.topo.Primary(0, 0)
	tx := xtx(1, 0, 1)
	h.sendAll(initiator, h.engines[initiator].Initiate(xbatch(tx), h.now))
	h.pump()

	// Every node of clusters 0 and 1 decides; cluster 2 decides nothing.
	for _, id := range h.topo.AllNodes() {
		c, _ := h.topo.ClusterOf(id)
		want := 0
		if c == 0 || c == 1 {
			want = 1
		}
		if got := len(h.decided[id]); got != want {
			t.Fatalf("node %s decided %d, want %d", id, got, want)
		}
	}
	// The agreed parent list has one slot per involved cluster and equals
	// genesis on both.
	d := h.decided[initiator][0]
	if len(d.Hashes) != 2 {
		t.Fatalf("hash list has %d slots, want 2", len(d.Hashes))
	}
	for _, hh := range d.Hashes {
		if hh != ledger.GenesisHash() {
			t.Fatalf("agreed parent %s, want genesis", hh)
		}
	}
	if d.Valid&1 == 0 {
		t.Fatal("decision not marked valid")
	}
}

func TestAlg1ParticipantLockBlocksSecondProposal(t *testing.T) {
	h := newXHarness(t, 3)
	p0 := h.topo.Primary(0, 0)
	p1member := h.topo.Members(1)[1] // a backup of cluster 1

	// T1 {0,1} proposes; deliver only to one cluster-1 backup and hold the
	// rest, so the backup is locked on T1.
	t1 := xtx(1, 0, 1)
	outs := h.engines[p0].Initiate(xbatch(t1), h.now)
	var held []xrouted
	for _, o := range outs {
		for _, to := range o.To {
			if to == p1member {
				h.queue = append(h.queue, xrouted{to: to, env: o.Env})
			} else {
				held = append(held, xrouted{to: to, env: o.Env})
			}
		}
	}
	h.pump()
	if !h.engines[p1member].Locked() {
		t.Fatal("participant did not lock after voting")
	}
	// A conflicting T2 {1,2} proposal arrives at the locked backup: parked.
	p1 := h.topo.Primary(1, 0)
	t2 := xtx(2, 1, 2)
	outs2 := h.engines[p1].Initiate(xbatch(t2), h.now)
	for _, o := range outs2 {
		for _, to := range o.To {
			if to == p1member {
				h.queue = append(h.queue, xrouted{to: to, env: o.Env})
			}
		}
	}
	h.pump()
	if h.engines[p1member].Waiting() != 1 {
		t.Fatalf("conflicting proposal not parked: waiting=%d", h.engines[p1member].Waiting())
	}
	// Release T1's held messages: T1 commits, unlocking the backup, which
	// then grants T2 through the parked proposal.
	h.queue = append(h.queue, held...)
	h.pump()
	if len(h.decided[p1member]) == 0 {
		t.Fatal("T1 never decided at the locked backup")
	}
	if h.engines[p1member].Waiting() != 0 {
		t.Fatal("parked proposal not drained after unlock")
	}
}

func TestAlg1WithdrawReleasesLocks(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	// Cluster 1 is unreachable: T1 can never gather its quorum.
	h.drop = func(to types.NodeID) bool {
		c, _ := h.topo.ClusterOf(to)
		return c == 1
	}
	t1 := xtx(1, 0, 1)
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t1), h.now))
	h.pump()
	if !h.engines[p0].Locked() {
		t.Fatal("initiator did not self-lock")
	}
	// Past the retry deadline the initiator withdraws: it unlocks itself and
	// broadcasts the abort to the reachable nodes.
	h.tick(600 * time.Millisecond)
	if h.engines[p0].Locked() {
		t.Fatal("withdraw did not release the initiator's own lock")
	}
	// Cluster-0 backups that had voted are released by the abort.
	for _, id := range h.topo.Members(0)[1:] {
		if h.engines[id].Locked() {
			t.Fatalf("node %s still locked after abort", id)
		}
	}
	if len(h.decided[p0]) != 0 {
		t.Fatal("withdrawn attempt decided")
	}
}

func TestAlg1StaleAcceptCannotCommitAfterWithdraw(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	t1 := xtx(1, 0, 1)

	// Capture cluster-1's accepts instead of delivering them.
	var stale []xrouted
	h.drop = func(to types.NodeID) bool { return false }
	outs := h.engines[p0].Initiate(xbatch(t1), h.now)
	// Deliver proposals; intercept resulting accepts bound for p0 from
	// cluster-1 nodes.
	for _, o := range outs {
		for _, to := range o.To {
			h.queue = append(h.queue, xrouted{to: to, env: o.Env})
		}
	}
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		fromCluster, _ := h.topo.ClusterOf(m.env.From)
		if m.env.Type == types.MsgXAccept && fromCluster == 1 {
			stale = append(stale, m)
			continue
		}
		os, decs := h.engines[m.to].Step(m.env, h.now)
		h.sendAll(m.to, os)
		for _, d := range decs {
			h.decided[m.to] = append(h.decided[m.to], d)
		}
	}
	// The initiator withdraws (view bump invalidates the old votes)…
	h.tick(600 * time.Millisecond)
	// …then the stale accepts finally arrive: they must not complete a
	// quorum for the withdrawn attempt.
	h.queue = append(h.queue, stale...)
	h.pump()
	for _, id := range h.topo.AllNodes() {
		for _, d := range h.decided[id] {
			if xdecided(d, t1.ID) {
				t.Fatalf("node %s decided a withdrawn attempt from stale votes", id)
			}
		}
	}
}

func TestAlg1SplitVotesTriggerImmediateReproposal(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	// Cluster 1's three nodes report three different chain heads: no f+1
	// match is possible and the initiator must re-propose without waiting
	// for its timer.
	for i, id := range h.topo.Members(1) {
		h.heads[id] = types.HashBytes([]byte{byte(i), 0xab})
	}
	t1 := xtx(1, 0, 1)
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t1), h.now))
	h.pump()
	proposes, _, _, decides, _ := h.engines[p0].Counters()
	if decides != 0 {
		t.Fatal("decided despite a three-way head split")
	}
	if proposes < 2 {
		t.Fatalf("initiator proposed %d times; split votes should force an immediate retry", proposes)
	}
}

func TestAlg1InvalidVoteGatesExecution(t *testing.T) {
	h := newXHarness(t, 2)
	// Cluster 1's nodes all vote "invalid" for their local part.
	for _, id := range h.topo.Members(1) {
		h.engines[id].validate = func(*types.Transaction) bool { return false }
	}
	p0 := h.topo.Primary(0, 0)
	t1 := xtx(1, 0, 1)
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t1), h.now))
	h.pump()
	d := h.decided[p0]
	if len(d) != 1 {
		t.Fatalf("initiator decided %d, want 1 (ordered but invalid)", len(d))
	}
	if d[0].Valid != 0 {
		t.Fatal("decision marked valid despite an invalid cluster vote")
	}
}

func TestAlg1PipelinedSameSetLeads(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	t1, t2 := xtx(1, 0, 1), xtx(2, 0, 1)

	// Two same-set attempts launch back to back: the second's PROPOSE goes
	// out while the first holds the slot votes (its initiator vote defers).
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t1), h.now))
	if !h.engines[p0].CanInitiate(t2.Involved) {
		t.Fatal("same-set follower refused by the conflict table")
	}
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t2), h.now))
	if h.engines[p0].table.Leads() != 2 {
		t.Fatalf("leads in flight = %d, want 2", h.engines[p0].table.Leads())
	}
	h.pump()
	// Both decide everywhere, in order, on a consistent chain.
	for _, id := range h.topo.AllNodes() {
		found1, found2 := false, false
		for _, d := range h.decided[id] {
			found1 = found1 || xdecided(d, t1.ID)
			found2 = found2 || xdecided(d, t2.ID)
		}
		if !found1 || !found2 {
			t.Fatalf("node %s decided t1=%v t2=%v, want both", id, found1, found2)
		}
	}
	if h.engines[p0].table.Leads() != 0 {
		t.Fatalf("leads not drained after decide: %d", h.engines[p0].table.Leads())
	}
}

func TestAlg1WithdrawCascadesToSameSetFollowers(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	// Cluster 1 unreachable: neither attempt can quorum.
	h.drop = func(to types.NodeID) bool {
		c, _ := h.topo.ClusterOf(to)
		return c == 1
	}
	t1, t2 := xtx(1, 0, 1), xtx(2, 0, 1)
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t1), h.now))
	h.sendAll(p0, h.engines[p0].Initiate(xbatch(t2), h.now))
	h.pump()
	// Past the deadline the stalled attempt withdraws — and takes its
	// same-set follower with it, so no follower keeps remote slot votes
	// while the home slot could go to a foreign attempt.
	h.tick(700 * time.Millisecond)
	for _, lead := range h.engines[p0].leads {
		if !lead.dormant {
			t.Fatalf("lead %s still live after the withdraw cascade", lead.digest)
		}
	}
	if h.engines[p0].Locked() {
		t.Fatal("initiator still holds a slot vote after withdrawing both")
	}
	for _, id := range h.topo.Members(0)[1:] {
		if h.engines[id].Locked() {
			t.Fatalf("backup %s still locked after the aborts", id)
		}
	}
}

func TestAlg1DeferredSelfVote(t *testing.T) {
	h := newXHarness(t, 2)
	p0 := h.topo.Primary(0, 0)
	// The initiator's chain is undrained at launch: the PROPOSE still goes
	// out, but the initiator's own vote waits.
	h.drained[p0] = false
	t1 := xtx(1, 0, 1)
	outs := h.engines[p0].Initiate(xbatch(t1), h.now)
	if len(outs) == 0 {
		t.Fatal("undrained initiator did not multicast the proposal")
	}
	if h.engines[p0].Locked() {
		t.Fatal("initiator voted on an undrained chain")
	}
	if !h.engines[p0].NeedsSlot() {
		t.Fatal("deferred self-vote not reported via NeedsSlot")
	}
	h.sendAll(p0, outs)
	h.pump() // participants vote; quorum still needs... possibly done via backups
	// The chain drains; the self-vote is cast on the next chain-advance
	// retry and the attempt completes if it had not already.
	h.drained[p0] = true
	o, decs := h.engines[p0].OnChainAdvanced(h.now)
	h.sendAll(p0, o)
	for _, d := range decs {
		h.decided[p0] = append(h.decided[p0], d)
		h.applyDecision(p0, d)
	}
	h.pump()
	found := false
	for _, d := range h.decided[p0] {
		if xdecided(d, t1.ID) {
			found = true
		}
	}
	if !found {
		t.Fatal("attempt with a deferred self-vote never decided at the initiator")
	}
}

func TestDeferIntraSlotPrecision(t *testing.T) {
	table := consensus.NewConflictTable(0)
	mkEnv := func(seq uint64) *types.Envelope {
		m := &types.ConsensusMsg{View: 0, Seq: seq, Cluster: 0,
			PrevHashes: []types.Hash{ledger.GenesisHash()},
			Txs:        []*types.Transaction{xtx(9, 0)}}
		return &types.Envelope{Type: types.MsgPaxosAccept, From: 1, Payload: m.Encode(nil)}
	}
	// Free table: nothing defers.
	if deferIntra(table, false, mkEnv(5)) {
		t.Fatal("deferred on a free table")
	}
	table.Acquire(types.HashBytes([]byte{1}), types.NewClusterSet(0, 1), 5,
		ledger.GenesisHash(), time.Unix(100, 0))
	// Slot-precise: only the reserved slot defers.
	if !deferIntra(table, false, mkEnv(5)) {
		t.Fatal("proposal at the reserved slot not deferred")
	}
	if deferIntra(table, false, mkEnv(6)) || deferIntra(table, false, mkEnv(4)) {
		t.Fatal("proposal at a non-reserved slot deferred")
	}
	// View-change machinery defers conservatively while the vote is held.
	vc := &types.Envelope{Type: types.MsgViewChange, From: 1}
	if !deferIntra(table, false, vc) {
		t.Fatal("view change not deferred while the slot vote is held")
	}
	// The serialized legacy mode defers everything node-wide.
	if !deferIntra(table, true, mkEnv(6)) {
		t.Fatal("legacy mode did not defer node-wide")
	}
}

func TestAlg1DisjointSetsDecideIndependently(t *testing.T) {
	h := newXHarness(t, 4)
	pa := h.topo.Primary(0, 0)
	pc := h.topo.Primary(2, 0)
	// Hold ALL of T1's traffic undelivered while T2 {2,3} runs end to end:
	// T2 must not need anything from clusters 0/1.
	ta := xtx(1, 0, 1)
	outsA := h.engines[pa].Initiate(xbatch(ta), h.now)
	_ = outsA // never delivered
	tb := xtx(2, 2, 3)
	h.sendAll(pc, h.engines[pc].Initiate(xbatch(tb), h.now))
	h.pump()
	for _, id := range h.topo.Members(2) {
		found := false
		for _, d := range h.decided[id] {
			if xdecided(d, tb.ID) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %s did not decide the disjoint transaction", id)
		}
	}
}
