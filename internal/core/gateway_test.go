package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharper/internal/mempool"
	"sharper/internal/types"
)

// submitTo offers tx directly to one chosen gateway replica, bypassing the
// client's own routing, so tests can exercise specific ingress paths
// (duplicates across nodes, misrouted cross-shard submits).
func submitTo(c *GatewayClient, to types.NodeID, tx *types.Transaction) {
	payload := (&types.Submit{Txs: []*types.Transaction{tx}}).Encode(nil)
	c.net.Send(to, &types.Envelope{Type: types.MsgSubmit, From: c.id, Payload: payload})
}

// awaitVerdict drains the client inbox until a submit reply for id arrives.
func awaitVerdict(t *testing.T, c *GatewayClient, id types.TxID, timeout time.Duration) (types.SubmitCode, types.NodeID) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case env := <-c.inbox:
			if env.Type != types.MsgSubmitReply {
				continue
			}
			r, err := types.DecodeSubmitReply(env.Payload)
			if err != nil || r.TxID != id {
				continue
			}
			return r.Code, env.From
		case <-deadline:
			t.Fatalf("no submit verdict for %s within %s", id, timeout)
			return 0, 0
		}
	}
}

// TestGatewayDuplicateSubmitAcrossNodes submits the same transaction to two
// different gateway replicas of the owning cluster: it must commit exactly
// once, the first submitter gets a commit verdict from its gateway, and the
// second (post-commit) submit is answered from the reply cache without
// re-driving consensus.
func TestGatewayDuplicateSubmitAcrossNodes(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	c := d.NewGatewayClient()
	members := d.Topo.Members(0)
	tx := c.MakeTx(intraOps(d, 0))

	submitTo(c, members[0], tx)
	code, from := awaitVerdict(t, c, tx.ID, 5*time.Second)
	if code != types.SubmitCommitted {
		t.Fatalf("first submit: got %s from %s, want committed", code, from)
	}
	waitQuiesce(t, d)
	before := d.TotalCommitted()

	// Same transaction to a different gateway replica: served from its cached
	// verdict, no new commit.
	submitTo(c, members[1], tx)
	code, from = awaitVerdict(t, c, tx.ID, 5*time.Second)
	if code != types.SubmitCommitted {
		t.Fatalf("duplicate submit: got %s from %s, want committed", code, from)
	}
	if from != members[1] {
		t.Fatalf("duplicate verdict came from %s, want the submitted-to gateway %s", from, members[1])
	}
	waitQuiesce(t, d)
	if after := d.TotalCommitted(); after != before {
		t.Fatalf("duplicate submit drove %d extra commits", after-before)
	}
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
}

// TestGatewayCrossShardLandsAtLowestInitiator submits a cross-shard
// transaction to a gateway of the *wrong* (higher) involved cluster: the
// gateway must relay it to the lowest involved cluster — the initiator under
// super-primary routing — whose replica answers the client directly, and the
// commit must appear in both involved chains.
func TestGatewayCrossShardLandsAtLowestInitiator(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 3)
	c := d.NewGatewayClient()
	tx := c.MakeTx(crossOps(d, 1, 2))
	if got := tx.Involved.Min(); got != 1 {
		t.Fatalf("test workload: initiator cluster = %d, want 1", got)
	}

	// Deliberately misroute to a cluster-2 gateway.
	wrong := d.Topo.Members(2)[0]
	submitTo(c, wrong, tx)
	code, from := awaitVerdict(t, c, tx.ID, 5*time.Second)
	if code != types.SubmitCommitted {
		t.Fatalf("misrouted submit: got %s, want committed", code)
	}
	if cl, ok := d.Topo.ClusterOf(from); !ok || cl != 1 {
		t.Fatalf("verdict came from %s (cluster %d), want an initiator-cluster (1) replica", from, cl)
	}
	waitQuiesce(t, d)
	views := d.ClusterViews()
	if got := len(views[1].CrossShardBlocks()); got != 1 {
		t.Fatalf("initiator cluster has %d cross-shard blocks, want 1", got)
	}
	if got := len(views[2].CrossShardBlocks()); got != 1 {
		t.Fatalf("participant cluster has %d cross-shard blocks, want 1", got)
	}
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
}

// TestGatewaySubmitExpiredDistinctCode checks that a transaction whose client
// timestamp falls outside the mempool TTL is refused with the dedicated
// Expired code — not Overloaded, not a silent timeout — on both fabrics.
func TestGatewaySubmitExpiredDistinctCode(t *testing.T) {
	const ttl = 250 * time.Millisecond
	run := func(t *testing.T, d *Deployment) {
		c := d.NewGatewayClient()
		c.Timeout = 2 * time.Second
		tx := c.MakeTx(intraOps(d, 0))
		tx.Timestamp = time.Now().Add(-4 * ttl).UnixNano()
		_, _, err := c.Submit(tx)
		if !errors.Is(err, ErrExpired) {
			t.Fatalf("stale submit: err = %v, want ErrExpired", err)
		}
		// A fresh timestamp goes through.
		ok, _, err := c.Transfer(intraOps(d, 0))
		if err != nil || !ok {
			t.Fatalf("fresh submit: ok=%v err=%v", ok, err)
		}
	}
	t.Run("sim", func(t *testing.T) {
		d, err := NewDeployment(Config{
			Model: types.CrashOnly, Clusters: 2, F: 1, Seed: 42,
			Mempool: mempool.Config{TTL: ttl},
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SeedAccounts(64, 1_000_000)
		d.Start()
		t.Cleanup(d.Stop)
		run(t, d)
	})
	t.Run("tcp", func(t *testing.T) {
		cfg := tcpConfig(2)
		cfg.Mempool = mempool.Config{TTL: ttl}
		run(t, startTCP(t, cfg))
	})
}

// TestGatewayOverloadShedsSafely drives far more load than a deliberately
// tiny mempool can hold: admission control must shed with Overloaded (never
// crash a replica), the byte cap must hold at every sampled instant, and the
// ledger must stay consistent and anomaly-free once the storm passes.
func TestGatewayOverloadShedsSafely(t *testing.T) {
	const maxBytes = int64(1 << 10)
	d, err := NewDeployment(Config{
		Model: types.CrashOnly, Clusters: 2, F: 1, Seed: 42,
		Mempool: mempool.Config{MaxBytes: maxBytes, MaxCount: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)

	// Monitor the byte cap while the storm runs.
	var capViolations atomic.Int64
	monitorDone := make(chan struct{})
	stopMonitor := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for {
			select {
			case <-stopMonitor:
				return
			case <-time.After(2 * time.Millisecond):
				for _, n := range d.Nodes() {
					if n.gw.pool.PendingBytes() > maxBytes {
						capViolations.Add(1)
					}
				}
			}
		}
	}()

	const clients, perClient = 24, 30
	var shed, committed, timeouts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewGatewayClient()
			c.Timeout = time.Second
			c.MaxAttempts = 1
			for j := 0; j < perClient; j++ {
				ok, _, err := c.Transfer(intraOps(d, types.ClusterID(k%2)))
				switch {
				case errors.Is(err, ErrOverloaded):
					shed.Add(1)
				case err != nil:
					timeouts.Add(1)
				case ok:
					committed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopMonitor)
	<-monitorDone

	if shed.Load() == 0 {
		t.Fatalf("no submits shed (committed=%d timeouts=%d): overload never engaged",
			committed.Load(), timeouts.Load())
	}
	if committed.Load() == 0 {
		t.Fatalf("nothing committed under overload (shed=%d)", shed.Load())
	}
	if v := capViolations.Load(); v != 0 {
		t.Fatalf("pool byte cap exceeded at %d sampled instants", v)
	}
	t.Logf("overload storm: committed=%d shed=%d timeouts=%d",
		committed.Load(), shed.Load(), timeouts.Load())

	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify after overload: %v", err)
	}
	for _, cid := range d.Topo.ClusterIDs() {
		members := d.Topo.Members(cid)
		ref := d.Node(members[0]).View()
		for _, m := range members[1:] {
			v := d.Node(m).View()
			if v.Len() != ref.Len() || v.Head() != ref.Head() {
				t.Fatalf("cluster %s diverged after overload: %s has %d blocks, %s has %d",
					cid, m, v.Len(), members[0], ref.Len())
			}
		}
	}
	for _, n := range d.Nodes() {
		if n.Anomalies() != 0 {
			t.Fatalf("node %s observed %d ledger anomalies", n.ID(), n.Anomalies())
		}
	}
}

// TestGatewayOverloadTCPSheds is the wire-level overload smoke CI runs: a
// short storm against tiny caps over real sockets must shed without crashing
// any replica, and the fleet must audit clean afterwards.
func TestGatewayOverloadTCPSheds(t *testing.T) {
	cfg := tcpConfig(2)
	cfg.Mempool = mempool.Config{MaxBytes: 1 << 10, MaxCount: 4}
	d := startTCP(t, cfg)

	const clients, perClient = 16, 20
	var shed, committed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewGatewayClient()
			c.Timeout = time.Second
			c.MaxAttempts = 1
			for j := 0; j < perClient; j++ {
				ok, _, err := c.Transfer(intraOps(d, types.ClusterID(k%2)))
				if errors.Is(err, ErrOverloaded) {
					shed.Add(1)
				} else if err == nil && ok {
					committed.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatalf("no submits shed over TCP (committed=%d)", committed.Load())
	}
	waitConverged(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify after TCP overload: %v", err)
	}
	for _, n := range d.Nodes() {
		if n.Anomalies() != 0 {
			t.Fatalf("node %s observed %d ledger anomalies", n.ID(), n.Anomalies())
		}
	}
	t.Logf("tcp overload: committed=%d shed=%d", committed.Load(), shed.Load())
}
