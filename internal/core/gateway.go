package core

import (
	"sync"
	"time"

	"sharper/internal/mempool"
	"sharper/internal/obs"
	"sharper/internal/types"
)

// gateway is the replica's client-ingress front door: it admits MsgSubmit
// transactions into the per-shard mempool, answers admission verdicts
// (Overloaded, Expired) immediately, and answers commit verdicts from its own
// observation of execution — every replica applies every committed block, so
// a gateway replies to its clients without owning the ordering path.
//
// Ownership rules: a transaction belongs to the pool of whichever replicas of
// the initiator cluster received it (directly from the client, or via a
// propagation batch from a peer gateway). The primary's pump drains its pool
// into the batch accumulators; non-primary gateways propagate drained batches
// to the primary in one MsgSubmit (Via = self) instead of poking the
// accumulator one transaction at a time. Capacity is released only when a
// commit is observed or the TTL sweep gives up, so a stalled primary backs
// pressure up to every admitting gateway, which then sheds with Overloaded.
type gateway struct {
	n       *Node
	pool    *mempool.Pool
	metrics *obs.MempoolMetrics

	// origins maps an admitted transaction to the client endpoint owed a
	// SubmitReply, stamped for expiry. Written on the loop (onSubmit),
	// consumed on the executor goroutine (observeCommit).
	mu      sync.Mutex
	origins map[types.TxID]gatewayOrigin
}

// gatewayOrigin is one client endpoint awaiting a commit verdict.
type gatewayOrigin struct {
	to types.NodeID
	at time.Time
}

func newGateway(n *Node, cfg mempool.Config) *gateway {
	return &gateway{
		n:       n,
		pool:    mempool.New(cfg),
		metrics: obs.NewMempoolMetrics(n.reg),
		origins: make(map[types.TxID]gatewayOrigin),
	}
}

// onSubmit admits a submitted batch. Runs on the event loop. Direct client
// submits (Via == 0) owe the sender a SubmitReply per transaction; a peer
// gateway's propagation batch (Via != 0) is admission-only — the origin
// gateway answers its own clients.
func (g *gateway) onSubmit(env *types.Envelope, now time.Time) {
	s, err := types.DecodeSubmit(env.Payload)
	if err != nil {
		return
	}
	n := g.n
	direct := s.Via == 0
	for _, tx := range s.Txs {
		if len(tx.Involved) == 0 {
			continue
		}
		target := n.initiatorCluster(tx.Involved)
		if target != n.cfg.Cluster {
			if direct {
				// Misrouted client submit: relay toward the owning cluster,
				// preserving the client's identity so the remote gateway
				// replies straight to it.
				n.cfg.Net.Send(n.cfg.Topology.Members(target)[0], &types.Envelope{
					Type: types.MsgSubmit, From: env.From,
					Payload: (&types.Submit{Txs: []*types.Transaction{tx}}).Encode(nil),
				})
			}
			continue
		}
		if direct {
			if r, ok := n.replyCache.Get(tx.ID); ok {
				// Already executed: answer from the cached verdict.
				code := types.SubmitCommitted
				if !r.Committed {
					code = types.SubmitRejected
				}
				g.sendReply(env.From, tx.ID, code)
				continue
			}
		}
		switch g.pool.Admit(tx, now) {
		case mempool.Admitted:
			if g.metrics != nil {
				g.metrics.Admitted.Inc()
				lat := (now.UnixNano() - tx.Timestamp) / 1000
				if lat < 0 {
					lat = 0
				}
				g.metrics.IngestMicros.Observe(uint64(lat))
			}
			if direct {
				g.recordOrigin(tx.ID, env.From, now)
			}
		case mempool.Duplicate:
			if g.metrics != nil {
				g.metrics.Deduped.Inc()
			}
			if direct {
				// The duplicate submitter is owed the commit verdict too.
				g.recordOrigin(tx.ID, env.From, now)
			}
		case mempool.Overloaded:
			if g.metrics != nil {
				g.metrics.Shed.Inc()
			}
			if direct {
				g.sendReply(env.From, tx.ID, types.SubmitOverloaded)
			}
		case mempool.Expired:
			if g.metrics != nil {
				g.metrics.Expired.Inc()
			}
			if direct {
				g.sendReply(env.From, tx.ID, types.SubmitExpired)
			}
		}
	}
}

func (g *gateway) recordOrigin(id types.TxID, to types.NodeID, now time.Time) {
	g.mu.Lock()
	g.origins[id] = gatewayOrigin{to: to, at: now}
	g.mu.Unlock()
}

// takeOrigin removes and returns the endpoint owed a reply for id.
func (g *gateway) takeOrigin(id types.TxID) (types.NodeID, bool) {
	g.mu.Lock()
	o, ok := g.origins[id]
	if ok {
		delete(g.origins, id)
	}
	g.mu.Unlock()
	return o.to, ok
}

func (g *gateway) sendReply(to types.NodeID, id types.TxID, code types.SubmitCode) {
	payload := (&types.SubmitReply{TxID: id, Replica: g.n.cfg.Self, Code: code}).Encode(nil)
	g.n.cfg.Net.Send(to, &types.Envelope{
		Type: types.MsgSubmitReply, From: g.n.cfg.Self,
		Payload: payload, Sig: g.n.cfg.Signer.Sign(payload),
	})
}

// observeCommit settles one executed transaction: its mempool capacity is
// released, its digest enters the committed dedup window, and any client owed
// a verdict gets it. Called from the commit pipeline's reply stage (after the
// durable group append) and from the inline execute path, on whatever
// goroutine runs execution.
func (g *gateway) observeCommit(tx *types.Transaction, r *types.Reply) {
	g.pool.MarkCommitted(tx.Digest(), time.Now())
	origin, ok := g.takeOrigin(tx.ID)
	if !ok {
		return
	}
	code := types.SubmitCommitted
	if !r.Committed {
		code = types.SubmitRejected
	}
	g.sendReply(origin, tx.ID, code)
}

// sweep expires pool state by age: pending transactions past the TTL are
// answered with Expired; origins whose transaction silently disappeared
// (e.g. shed at the primary after propagation) are dropped so the map cannot
// grow without bound — the client's retransmission re-drives the submit.
// Runs on the event loop tick.
func (g *gateway) sweep(now time.Time) {
	expired := g.pool.Sweep(now)
	if len(expired) > 0 && g.metrics != nil {
		g.metrics.Expired.Add(uint64(len(expired)))
	}
	for _, tx := range expired {
		if origin, ok := g.takeOrigin(tx.ID); ok {
			g.sendReply(origin, tx.ID, types.SubmitExpired)
		}
	}
	cutoff := now.Add(-2 * g.pool.Config().TTL)
	g.mu.Lock()
	for id, o := range g.origins {
		if o.at.Before(cutoff) {
			delete(g.origins, id)
		}
	}
	g.mu.Unlock()
}

// refreshGauges publishes the pool's occupancy; called with the node's other
// gauge refreshes on the event loop.
func (g *gateway) refreshGauges() {
	if g.metrics == nil {
		return
	}
	g.metrics.PendingBytes.Set(uint64(g.pool.PendingBytes()))
	g.metrics.PendingCount.Set(uint64(g.pool.PendingCount()))
}

// pumpGateway moves admitted transactions toward ordering: the primary
// drains its pool straight into the batch accumulators (bounded so the
// sealer, not the pool, stays the batching authority), while a non-primary
// gateway forwards one propagation batch to the primary per turn. Both paths
// stop when the commit pipeline reports backpressure, composing the mempool
// caps with the pipeline gate: overload slows draining, pools fill, Admit
// sheds.
func (n *Node) pumpGateway(now time.Time) {
	g := n.gw
	if g == nil || !g.pool.HasQueued() {
		return
	}
	if n.exec != nil && n.exec.Full() {
		return // commit pipeline full: stop feeding, keep receiving
	}
	if n.intra.IsPrimary() {
		budget := n.cfg.BatchSize*n.cfg.MaxInFlight - len(n.pendingIntra) - len(n.pendingCross)
		if budget > 256 {
			budget = 256
		}
		for _, tx := range g.pool.Drain(budget) {
			n.ingestFromPool(tx, now)
		}
		return
	}
	batch := g.pool.Drain(propagationBatch(n.cfg.BatchSize))
	if len(batch) == 0 {
		return
	}
	payload := (&types.Submit{Via: n.cfg.Self, Txs: batch}).Encode(nil)
	n.cfg.Net.Send(n.intra.Primary(), &types.Envelope{
		Type: types.MsgSubmit, From: n.cfg.Self,
		Payload: payload, Sig: n.cfg.Signer.Sign(payload),
	})
}

// propagationBatch sizes a gateway→primary batch: several sealer batches per
// wire message, bounded by the cross-shard bitmap width.
func propagationBatch(batchSize int) int {
	pb := 4 * batchSize
	if pb < 16 {
		pb = 16
	}
	if pb > 64 {
		pb = 64
	}
	return pb
}

// ingestFromPool routes one drained transaction into the proposal path,
// running the same dedup chain onRequest applies to direct client requests.
// Skipped transactions stay in the pool's in-flight set; the commit
// observation (or the TTL sweep) releases them.
func (n *Node) ingestFromPool(tx *types.Transaction, now time.Time) {
	if r, ok := n.replyCache.Get(tx.ID); ok {
		// Already executed (e.g. a peer gateway's copy won the race): settle
		// immediately so the origin gets its verdict.
		n.gw.observeCommit(tx, r)
		return
	}
	if n.queued[tx.ID] || n.view.Contains(tx.ID) {
		return
	}
	if t, ok := n.inFlight[tx.ID]; ok && now.Sub(t) < n.cfg.IntraTimeout {
		return
	}
	if !tx.IsCrossShard() {
		if tx.Involved[0] != n.cfg.Cluster {
			return // misrouted; admission should have filtered this
		}
		n.inFlight[tx.ID] = now
		n.tracer.Start(tx.ID, false, now)
		n.proposeIntra(tx, now)
		return
	}
	if n.initiatorCluster(tx.Involved) != n.cfg.Cluster {
		return
	}
	n.inFlight[tx.ID] = now
	n.tracer.Start(tx.ID, true, now)
	n.proposeCross(tx, now)
}
