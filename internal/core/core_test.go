package core

import (
	"sync"
	"testing"
	"time"

	"sharper/internal/types"
)

func newTestDeployment(t *testing.T, model types.FailureModel, clusters int) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{
		Model:    model,
		Clusters: clusters,
		F:        1,
		Seed:     42,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
	return d
}

func intraOps(d *Deployment, c types.ClusterID) []types.Op {
	return []types.Op{{
		From:   d.Shards.AccountInShard(c, 0),
		To:     d.Shards.AccountInShard(c, 1),
		Amount: 5,
	}}
}

func crossOps(d *Deployment, a, b types.ClusterID) []types.Op {
	return []types.Op{{
		From:   d.Shards.AccountInShard(a, 0),
		To:     d.Shards.AccountInShard(b, 1),
		Amount: 5,
	}}
}

func TestIntraShardCommitCrash(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	c := d.NewClient()
	for i := 0; i < 10; i++ {
		ok, _, err := c.Transfer(intraOps(d, 0))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
}

func TestCrossShardCommitCrash(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 3)
	c := d.NewClient()
	for i := 0; i < 10; i++ {
		ok, _, err := c.Transfer(crossOps(d, 0, 1))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
	// The cross-shard blocks must appear in both involved views.
	views := d.ClusterViews()
	if got := len(views[0].CrossShardBlocks()); got != 10 {
		t.Fatalf("cluster 0 has %d cross-shard blocks, want 10", got)
	}
	if got := len(views[1].CrossShardBlocks()); got != 10 {
		t.Fatalf("cluster 1 has %d cross-shard blocks, want 10", got)
	}
	if got := len(views[2].CrossShardBlocks()); got != 0 {
		t.Fatalf("cluster 2 has %d cross-shard blocks, want 0", got)
	}
}

func TestIntraShardCommitByzantine(t *testing.T) {
	d := newTestDeployment(t, types.Byzantine, 2)
	c := d.NewClient()
	for i := 0; i < 5; i++ {
		ok, _, err := c.Transfer(intraOps(d, 1))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
}

func TestCrossShardCommitByzantine(t *testing.T) {
	d := newTestDeployment(t, types.Byzantine, 3)
	c := d.NewClient()
	for i := 0; i < 5; i++ {
		ok, _, err := c.Transfer(crossOps(d, 1, 2))
		if err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	for _, model := range []types.FailureModel{types.CrashOnly, types.Byzantine} {
		model := model
		t.Run(model.String(), func(t *testing.T) {
			d := newTestDeployment(t, model, 4)
			const clients = 8
			const perClient = 10
			var wg sync.WaitGroup
			errs := make(chan error, clients*perClient)
			for i := 0; i < clients; i++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					c := d.NewClient()
					c.Timeout = 5 * time.Second // headroom for -race runs
					for j := 0; j < perClient; j++ {
						var ops []types.Op
						switch j % 4 {
						case 0:
							ops = intraOps(d, types.ClusterID(k%4))
						case 1:
							ops = crossOps(d, types.ClusterID(k%4), types.ClusterID((k+1)%4))
						case 2:
							ops = crossOps(d, types.ClusterID((k+2)%4), types.ClusterID((k+3)%4))
						default:
							ops = intraOps(d, types.ClusterID((k+1)%4))
						}
						if _, _, err := c.Transfer(ops); err != nil {
							errs <- err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatalf("client error: %v", err)
			}
			waitQuiesce(t, d)
			dag := d.DAG()
			if err := dag.Verify(); err != nil {
				t.Fatalf("DAG verify: %v", err)
			}
			if err := dag.VerifyPairwiseOrder(); err != nil {
				t.Fatalf("pairwise order: %v", err)
			}
			for _, n := range d.Nodes() {
				if n.Anomalies() != 0 {
					t.Fatalf("node %s observed %d ledger anomalies", n.ID(), n.Anomalies())
				}
			}
		})
	}
}

// TestReplicaConsistency checks that all replicas of a cluster converge to
// the same chain after traffic stops.
func TestReplicaConsistency(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 2)
	c := d.NewClient()
	for i := 0; i < 20; i++ {
		if _, _, err := c.Transfer(crossOps(d, 0, 1)); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		}
	}
	waitQuiesce(t, d)
	for _, cid := range d.Topo.ClusterIDs() {
		members := d.Topo.Members(cid)
		ref := d.Node(members[0]).View()
		for _, m := range members[1:] {
			v := d.Node(m).View()
			if v.Len() != ref.Len() {
				t.Fatalf("cluster %s: node %s has %d blocks, node %s has %d",
					cid, m, v.Len(), members[0], ref.Len())
			}
			if v.Head() != ref.Head() {
				t.Fatalf("cluster %s: head mismatch between %s and %s", cid, m, members[0])
			}
		}
	}
}

// waitQuiesce waits until commit counts stop changing so verification sees a
// settled ledger.
func waitQuiesce(t *testing.T, d *Deployment) {
	t.Helper()
	var last int64 = -1
	for i := 0; i < 100; i++ {
		time.Sleep(20 * time.Millisecond)
		var cur int64
		for _, n := range d.Nodes() {
			cur += n.Committed()
		}
		if cur == last {
			return
		}
		last = cur
	}
	t.Fatalf("deployment did not quiesce")
}
