// Package core implements SharPer itself (§2–§3): the node runtime that
// glues a cluster's intra-shard consensus engine (Paxos or PBFT, pluggable
// per §3.1) to the flattened cross-shard consensus protocol (Algorithm 1 for
// crash-only deployments, Algorithm 2 for Byzantine ones), the per-cluster
// DAG ledger view, the sharded account store, and the simulated network.
package core

import (
	"time"

	"sharper/internal/consensus"
	"sharper/internal/crypto"
	"sharper/internal/obs"
	"sharper/internal/paxos"
	"sharper/internal/pbft"
	"sharper/internal/types"
)

// IntraEngine is the pluggable intra-shard consensus engine of §3.1. Both
// Paxos and PBFT engines satisfy it; any other crash or Byzantine
// fault-tolerant protocol could be slotted in.
type IntraEngine interface {
	// Propose starts consensus on a batch of transactions; only the current
	// primary acts. The batch occupies a single consensus instance.
	Propose(txs []*types.Transaction, now time.Time) ([]consensus.Outbound, uint64)
	// Step consumes a protocol message.
	Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []consensus.Decision)
	// Tick fires protocol timers (view change) and retries parked
	// proposals whose slot reservation cleared; a retried proposal whose
	// commit already arrived delivers, so Tick can surface decisions.
	Tick(now time.Time) ([]consensus.Outbound, []consensus.Decision)
	// SyncChainHead advances the engine past an externally decided block
	// (a cross-shard block committed by the flattened protocol), returning
	// messages and decisions from replaying parked proposals plus the
	// node's own orphaned transactions (in-flight proposals killed by the
	// new block) so the runtime can re-propose them. Decisions MUST be
	// applied by the caller: dropping one leaves the engine's committed
	// state ahead of the ledger, the desync behind the intra/cross fork
	// class (an erased acceptance lets a node double-vote a chain slot).
	SyncChainHead(seq uint64, head types.Hash, now time.Time) ([]consensus.Outbound, []consensus.Decision, []*types.Transaction)
	// ProposedHead returns the seq/hash of the latest proposed block.
	ProposedHead() (uint64, types.Hash)
	// HasUncommitted reports whether any consensus instance with a known
	// body sits above the committed head — including values retained from a
	// deposed view, which may hold a commit quorum elsewhere. The flattened
	// protocol must not vote while one exists, or a cross-shard block could
	// take a slot an intra-shard value already committed into.
	HasUncommitted() bool
	// View returns the engine's current view.
	View() uint64
	// Primary returns the current primary of the cluster.
	Primary() types.NodeID
	// IsPrimary reports whether this node currently leads.
	IsPrimary() bool
	// SuspectPrimary votes to depose the primary after a client request
	// went unexecuted past its timeout.
	SuspectPrimary(now time.Time) []consensus.Outbound
	// Restore warms a freshly built engine from recovered durable state:
	// view position plus accepted-but-uncommitted instances. Called once,
	// after SyncChainHead advanced the engine to the recovered chain head.
	Restore(view, promised uint64, insts []consensus.DurableInstance, now time.Time)
	// DurableState reports the engine state a checkpoint must carry into a
	// fresh log segment: view position and uncommitted acceptances.
	DurableState() (view, promised uint64, insts []consensus.DurableInstance)
}

// chainStatus reports a node's local cluster-chain state to the cross-shard
// engine: the committed sequence/head and whether the chain is drained
// (no proposal is in flight above the committed head). The flattened
// protocol only votes on a drained chain so that all correct nodes of a
// cluster report the same h_j (§3.2).
type chainStatus struct {
	Seq     uint64
	Head    types.Hash
	Drained bool
}

// newIntraEngine builds the model-appropriate engine. reserved is the
// conflict-table eligibility check both engines consult at their vote
// boundary (a chain slot promised to a cross-shard vote takes no intra
// vote), so the §3.2 one-vote-per-slot rule holds even on internal replay
// paths that never cross the node's dispatch. eng (nil-safe) receives engine
// health metrics; onPrepared, when non-nil, fires once per own proposal at
// quorum (commit-quorum / prepared certificate) so the tracer can stamp it.
func newIntraEngine(model types.FailureModel, topo *consensus.Topology, cluster types.ClusterID,
	self types.NodeID, signer crypto.Signer, verifier crypto.Verifier,
	timeout time.Duration, genesis types.Hash, persist consensus.Persister,
	reserved func(seq uint64) bool, eng *obs.EngineMetrics, onPrepared func(seq uint64)) IntraEngine {
	if model == types.Byzantine {
		return pbft.New(pbft.Config{
			Topology: topo, Cluster: cluster, Self: self,
			Signer: signer, Verifier: verifier, Timeout: timeout, Persist: persist,
			Reserved: reserved, Obs: eng, OnPrepared: onPrepared,
		}, genesis)
	}
	return paxos.New(paxos.Config{
		Topology: topo, Cluster: cluster, Self: self, Timeout: timeout, Persist: persist,
		Reserved: reserved, Obs: eng, OnPrepared: onPrepared,
	}, genesis)
}

// crossDecision is a committed cross-shard batch: the block parents are
// Hashes (one per involved cluster, in involved-set order shared by every
// transaction of the batch).
type crossDecision struct {
	Txs    []*types.Transaction
	Digest types.Hash
	Hashes []types.Hash
	// Valid is the aggregated validation bitmap: bit i is set when every
	// involved cluster voted batch transaction i's local part valid.
	// Invalid transactions are appended to the ledger (they were ordered)
	// but not applied.
	Valid uint64
}

// Involved returns the involved-cluster set shared by the decided batch.
func (d *crossDecision) Involved() types.ClusterSet {
	if len(d.Txs) == 0 {
		return nil
	}
	return d.Txs[0].Involved
}

// batchInvolved returns the involved-cluster set shared by every transaction
// of the batch, or false when the batch is empty or mixes sets — malformed
// proposals are dropped at the protocol boundary.
func batchInvolved(txs []*types.Transaction) (types.ClusterSet, bool) {
	if len(txs) == 0 || len(txs) > 64 {
		return nil, false
	}
	inv := txs[0].Involved
	for _, tx := range txs[1:] {
		if !tx.Involved.Equal(inv) {
			return nil, false
		}
	}
	return inv, true
}

// crossLeadDepth caps pipelined same-set cross-shard leads. Depth 2 keeps
// the next attempt's PROPOSE pre-positioned (parked) at every participant so
// the hand-off after a commit costs zero hops, while deeper pipelines only
// add parked-proposal rescans and lead bookkeeping — the per-chain commit
// cadence is one block per accept/commit ping-pong regardless of depth.
const crossLeadDepth = 2

// validBits evaluates validate over the batch and packs the verdicts into
// the per-transaction validity bitmap (bit i = transaction i valid).
func validBits(txs []*types.Transaction, validate func(*types.Transaction) bool) uint64 {
	var bits uint64
	for i, tx := range txs {
		if validate(tx) {
			bits |= 1 << uint(i)
		}
	}
	return bits
}

// crossEngine is the flattened cross-shard protocol, one implementation per
// failure model.
type crossEngine interface {
	// Initiate starts flattened consensus on a batch of transactions that
	// share one involved-cluster set (initiator primary only). Callers check
	// CanInitiate first; several leads may be in flight at once.
	Initiate(txs []*types.Transaction, now time.Time) []consensus.Outbound
	// CanInitiate reports whether a new lead over the involved-cluster set
	// may launch alongside the in-flight ones: the conflict table admits
	// identical sets (they pipeline FIFO) and sets disjoint outside the own
	// cluster (they never contend), up to the lead cap.
	CanInitiate(involved types.ClusterSet) bool
	// ActiveLeads reports the in-flight leads over exactly this set, so the
	// scheduler can keep accumulating a batch while one works (launching
	// every arrival as a batch-of-one forfeits the amortization batching
	// buys).
	ActiveLeads(involved types.ClusterSet) int
	// NeedsSlot reports whether an in-flight lead is still waiting to cast
	// its own vote; the node's scheduler must let the chain drain then
	// instead of feeding it new intra-shard proposals.
	NeedsSlot() bool
	// Stats reports the scheduler-observability counters (leads in flight,
	// conflict-table size, parks, withdraws, deferral precision).
	Stats() types.SchedStats
	// Step consumes a cross-shard protocol message.
	Step(env *types.Envelope, now time.Time) ([]consensus.Outbound, []crossDecision)
	// OnChainAdvanced is called after the local chain appends a block, so
	// proposals that waited for the chain to drain can be voted on.
	OnChainAdvanced(now time.Time) ([]consensus.Outbound, []crossDecision)
	// Tick fires lock expiry and initiator retries.
	Tick(now time.Time) ([]consensus.Outbound, []crossDecision)
	// Locked reports whether this node is currently blocked on an in-flight
	// cross-shard transaction (§3.2: a node that voted accepts no other
	// transactions until commit or timeout).
	Locked() bool
	// Waiting reports the number of cross-shard proposals parked at this
	// node (held back by a lock or an undrained chain). A primary must stop
	// feeding intra-shard proposals while this is non-zero, or the chain
	// never drains and the parked proposals starve.
	Waiting() int
	// Pending reports the number of in-flight instances (for tests).
	Pending() int
}
