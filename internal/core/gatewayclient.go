package core

import (
	"errors"
	"fmt"
	"time"

	"sharper/internal/consensus"
	"sharper/internal/state"
	"sharper/internal/transport"
	"sharper/internal/types"
)

// Sentinel submit outcomes surfaced to callers (the open-loop benchmark
// counts sheds separately from failures).
var (
	// ErrOverloaded: the gateway shed the submit; back off and retry later.
	ErrOverloaded = errors.New("core: gateway overloaded")
	// ErrExpired: the transaction's timestamp fell outside the mempool TTL;
	// re-issue with a fresh timestamp.
	ErrExpired = errors.New("core: submit expired")
)

// GatewayClient submits transactions through the client-ingress plane
// (MsgSubmit → mempool → sealer) instead of the direct MsgRequest path. It
// routes shard-aware — the owning cluster for single-shard transactions, the
// lowest involved cluster (the initiator under super-primary routing) for
// cross-shard ones — and collects the model-appropriate SubmitReply quorum:
// one under the crash model, f+1 matching verdicts from distinct replicas
// under the Byzantine model.
type GatewayClient struct {
	id     types.NodeID
	net    transport.Fabric
	topo   *consensus.Topology
	shards state.ShardMap
	inbox  <-chan *types.Envelope
	seq    uint64
	sendTo map[types.ClusterID]int // rotating member offset per cluster

	// Timeout before the client retransmits a submit.
	Timeout time.Duration
	// MaxAttempts bounds retransmissions before giving up.
	MaxAttempts int
}

// NewGatewayClient registers a fresh gateway-client endpoint on the
// deployment's fabric (TCP fabrics connect to every replica first, so
// replies always have a return path).
func (d *Deployment) NewGatewayClient() *GatewayClient {
	c := NewGatewayClientOn(d.Net, d.Topo, d.Shards)
	if d.fabrics != nil {
		d.connectClients()
	}
	return c
}

// NewGatewayClientOn builds a gateway client with a process-locally unique
// ID on an arbitrary fabric.
func NewGatewayClientOn(fab transport.Fabric, topo *consensus.Topology, shards state.ShardMap) *GatewayClient {
	return NewGatewayClientAt(fab, topo, shards,
		types.ClientIDBase+types.NodeID(clientCounter.Add(1)))
}

// NewGatewayClientAt builds a gateway client with an explicit endpoint ID
// (must be ≥ types.ClientIDBase and unique deployment-wide).
func NewGatewayClientAt(fab transport.Fabric, topo *consensus.Topology, shards state.ShardMap, id types.NodeID) *GatewayClient {
	return &GatewayClient{
		id:          id,
		net:         fab,
		topo:        topo,
		shards:      shards,
		inbox:       fab.Register(id),
		sendTo:      make(map[types.ClusterID]int),
		Timeout:     2 * time.Second,
		MaxAttempts: 8,
	}
}

// ID returns the client's network identity.
func (c *GatewayClient) ID() types.NodeID { return c.id }

// MakeTx assembles a transaction from ops, deriving the involved-cluster set
// through the shard map.
func (c *GatewayClient) MakeTx(ops []types.Op) *types.Transaction {
	c.seq++
	return &types.Transaction{
		ID:        types.TxID{Client: c.id, Seq: c.seq},
		Client:    c.id,
		Timestamp: time.Now().UnixNano(),
		Ops:       ops,
		Involved:  c.shards.Involved(ops),
	}
}

// Submit offers tx to the initiator cluster's gateways and blocks until the
// verdict quorum arrives or every attempt times out. It returns whether the
// transaction committed (false = ordered but rejected by validation).
// Admission sheds surface immediately as ErrOverloaded / ErrExpired.
func (c *GatewayClient) Submit(tx *types.Transaction) (bool, time.Duration, error) {
	target := tx.Involved.Min()
	needed := 1
	if c.topo.ModelOf(target) == types.Byzantine {
		needed = c.topo.F(target) + 1
	}
	payload := (&types.Submit{Txs: []*types.Transaction{tx}}).Encode(nil)
	start := time.Now()

	for attempt := 0; attempt < c.MaxAttempts; attempt++ {
		c.sendSubmit(target, payload, needed, attempt)
		code, ok := c.awaitReplies(tx.ID, needed, c.Timeout)
		if !ok {
			continue
		}
		switch code {
		case types.SubmitCommitted:
			return true, time.Since(start), nil
		case types.SubmitRejected:
			return false, time.Since(start), nil
		case types.SubmitOverloaded:
			return false, time.Since(start), ErrOverloaded
		case types.SubmitExpired:
			return false, time.Since(start), ErrExpired
		}
	}
	return false, time.Since(start), fmt.Errorf("core: submit %s timed out after %d attempts", tx.ID, c.MaxAttempts)
}

// Transfer builds, submits, and waits — the gateway-path mirror of
// Client.Transfer.
func (c *GatewayClient) Transfer(ops []types.Op) (bool, time.Duration, error) {
	return c.Submit(c.MakeTx(ops))
}

// sendSubmit offers the transaction to `needed` distinct gateways of the
// target cluster, rotating the member window on retries so a crashed replica
// does not wedge the client.
func (c *GatewayClient) sendSubmit(target types.ClusterID, payload []byte, needed, attempt int) {
	members := c.topo.Members(target)
	base := c.sendTo[target] + attempt
	if attempt > 0 {
		c.sendTo[target] = base % len(members)
	}
	if needed > len(members) {
		needed = len(members)
	}
	env := &types.Envelope{Type: types.MsgSubmit, From: c.id, Payload: payload}
	for i := 0; i < needed; i++ {
		c.net.Send(members[(base+i)%len(members)], env)
	}
}

// awaitReplies drains the inbox until `needed` matching submit verdicts for
// id arrive from distinct replicas, or the deadline passes. Admission
// verdicts (Overloaded, Expired) return on the first reply: they are local
// judgments, and waiting for a quorum of sheds would just burn the timeout.
func (c *GatewayClient) awaitReplies(id types.TxID, needed int, timeout time.Duration) (types.SubmitCode, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	votes := make(map[types.SubmitCode]map[types.NodeID]bool)
	for {
		select {
		case env := <-c.inbox:
			if env.Type != types.MsgSubmitReply {
				continue
			}
			r, err := types.DecodeSubmitReply(env.Payload)
			if err != nil || r.TxID != id || r.Replica != env.From {
				continue
			}
			if r.Code == types.SubmitOverloaded || r.Code == types.SubmitExpired {
				return r.Code, true
			}
			m, ok := votes[r.Code]
			if !ok {
				m = make(map[types.NodeID]bool)
				votes[r.Code] = m
			}
			m[r.Replica] = true
			if len(m) >= needed {
				return r.Code, true
			}
		case <-deadline.C:
			return 0, false
		}
	}
}
