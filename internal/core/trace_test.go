package core

import (
	"testing"
	"time"

	"sharper/internal/types"
)

// TestTraceRequestRespondsWithRing asserts the debug trace-fetch protocol a
// divergence hunt relies on: a replica running with SHARPER_TRACE answers a
// MsgTraceRequest with its protocol-event ring, over the ordinary fabric,
// so sharperd -drive can dump every process's ring when the wire audit
// fails.
func TestTraceRequestRespondsWithRing(t *testing.T) {
	t.Setenv("SHARPER_TRACE", "1")
	d := newTestDeployment(t, types.CrashOnly, 2)

	// Commit one transfer so the Paxos engines record events.
	c := d.NewClient()
	c.Timeout = 5 * time.Second
	if _, _, err := c.Transfer([]types.Op{{From: d.Shards.AccountInShard(0, 0), To: d.Shards.AccountInShard(0, 1), Amount: 1}}); err != nil {
		t.Fatal(err)
	}

	auditID := types.ClientIDBase + 77_777
	inbox := d.Net.Register(auditID)
	target := d.Topo.Members(0)[0]
	d.Net.Send(target, &types.Envelope{Type: types.MsgTraceRequest, From: auditID})

	deadline := time.After(5 * time.Second)
	for {
		select {
		case env := <-inbox:
			if env.Type != types.MsgTraceResponse {
				continue
			}
			dump, err := types.DecodeTraceDump(env.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if dump.Node != target {
				t.Fatalf("trace dump names node %s, want %s", dump.Node, target)
			}
			if len(dump.Lines) == 0 {
				t.Fatal("trace dump empty despite SHARPER_TRACE and committed traffic")
			}
			return
		case <-deadline:
			t.Fatal("no trace response")
		}
	}
}
