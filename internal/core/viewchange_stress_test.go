package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"sharper/internal/types"
)

// TestViewChangeDivergenceStress hammers a deployment whose suspicion timer
// is short enough that view changes fire constantly under load, with
// message drops forcing value recovery to actually matter, then audits that
// no two replicas of a cluster ever committed different blocks at the same
// height. This reproduces (in-process, deterministically enough to iterate
// on) the chain divergence the multi-process TCP deployment exposed: a
// deposed primary completing a commit quorum whose value the new view
// failed to recover.
func TestViewChangeDivergenceStress(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runViewChangeStress(t, seed, TransportSim)
		})
	}
}

// TestViewChangeDivergenceStressTCP runs the same audit over real loopback
// sockets, where scheduling jitter (not injected drops) drives the view
// changes — the regime that exposed the original divergence.
func TestViewChangeDivergenceStressTCP(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runViewChangeStress(t, seed, TransportTCP)
		})
	}
}

func runViewChangeStress(t *testing.T, seed int64, tr TransportKind) {
	cfg := Config{
		Model:        types.CrashOnly,
		Clusters:     2,
		F:            1,
		Seed:         seed,
		Transport:    tr,
		IntraTimeout: 25 * time.Millisecond, // spurious view changes under load
		TickInterval: 2 * time.Millisecond,
	}
	if tr == TransportSim {
		cfg.Network.DropProb = 0.01
		cfg.Network.Seed = seed
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(128, 1_000_000)
	d.Start()
	defer d.Stop()

	const clients = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewClient()
			c.Timeout = 150 * time.Millisecond
			c.MaxAttempts = 4
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				var ops []types.Op
				if n%3 == 0 { // cross-shard
					ops = []types.Op{{
						From:   d.Shards.AccountInShard(0, uint64(k*16+n%16)),
						To:     d.Shards.AccountInShard(1, uint64(k*16+n%16)),
						Amount: 1,
					}}
				} else {
					sh := types.ClusterID(n % 2)
					ops = []types.Op{{
						From:   d.Shards.AccountInShard(sh, uint64(k*16+n%16)),
						To:     d.Shards.AccountInShard(sh, uint64((k*16+n%16+1)%128)),
						Amount: 1,
					}}
				}
				c.Transfer(ops)
			}
		}(i)
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	// Let in-flight work settle, then audit: same height ⇒ same block.
	time.Sleep(500 * time.Millisecond)
	for _, cid := range d.Topo.ClusterIDs() {
		members := d.Topo.Members(cid)
		ref := d.Node(members[0]).View()
		for _, m := range members[1:] {
			v := d.Node(m).View()
			n := ref.Len()
			if v.Len() < n {
				n = v.Len()
			}
			for i := 0; i < n; i++ {
				if ref.Block(i).Hash() != v.Block(i).Hash() {
					for _, mm := range members {
						if pe, ok := d.Node(mm).intra.(interface{ DebugTrace() []string }); ok {
							tr := pe.DebugTrace()
							t.Logf("=== trace %s (last %d) ===", mm, len(tr))
							for _, line := range tr {
								t.Log("  " + line)
							}
						}
					}
					t.Fatalf("cluster %s DIVERGED at height %d: %s=%v (inv=%v) vs %s=%v (inv=%v)",
						cid, i,
						members[0], ref.Block(i).Txs[0].ID, ref.Block(i).Involved(),
						m, v.Block(i).Txs[0].ID, v.Block(i).Involved())
				}
			}
		}
	}
}
