package core

import (
	"testing"

	"sharper/internal/obs"
	"sharper/internal/types"
)

// traceDeployment runs a small crash deployment with every transaction
// traced, drives intra and cross traffic, and returns it quiesced.
func traceDeployment(t *testing.T, model types.FailureModel) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{
		Model:       model,
		Clusters:    3,
		F:           1,
		Seed:        7,
		TraceSample: 1,
	})
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
	c := d.NewClient()
	for i := 0; i < 6; i++ {
		if ok, _, err := c.Transfer(intraOps(d, 0)); err != nil || !ok {
			t.Fatalf("intra tx %d: ok=%v err=%v", i, ok, err)
		}
		if ok, _, err := c.Transfer(crossOps(d, 0, 1)); err != nil || !ok {
			t.Fatalf("cross tx %d: ok=%v err=%v", i, ok, err)
		}
	}
	waitQuiesce(t, d)
	return d
}

// collectTraces gathers completed traces fleet-wide, split by series.
func collectTraces(d *Deployment) (intra, cross []obs.TxTrace) {
	for _, n := range d.Nodes() {
		for _, tr := range n.Tracer().Completed() {
			if tr.Cross {
				cross = append(cross, tr)
			} else {
				intra = append(intra, tr)
			}
		}
	}
	return intra, cross
}

// checkMonotonic asserts every stamped stage is in lifecycle order and that
// the required stages are present.
func checkMonotonic(t *testing.T, tr obs.TxTrace, required []obs.Stage) {
	t.Helper()
	for _, s := range required {
		if tr.At[s] == 0 {
			t.Errorf("trace %v (cross=%v): stage %s never stamped", tr.ID, tr.Cross, s)
		}
	}
	prev := int64(0)
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		at := tr.At[s]
		if at == 0 {
			continue
		}
		if at < prev {
			t.Errorf("trace %v (cross=%v): stage %s at %d precedes previous stamp %d",
				tr.ID, tr.Cross, s, at, prev)
		}
		prev = at
	}
}

func TestTraceStagesMonotonicCrash(t *testing.T) {
	d := traceDeployment(t, types.CrashOnly)
	intra, cross := collectTraces(d)
	if len(intra) == 0 || len(cross) == 0 {
		t.Fatalf("expected both series traced, got intra=%d cross=%d", len(intra), len(cross))
	}
	intraStages := []obs.Stage{
		obs.StageIngest, obs.StageSeal, obs.StagePropose, obs.StagePrepared,
		obs.StageCommitted, obs.StagePersisted, obs.StageReplied,
	}
	for _, tr := range intra {
		checkMonotonic(t, tr, intraStages)
		if tr.At[obs.StageLockGrant] != 0 {
			t.Errorf("intra trace %v stamped lock_grant", tr.ID)
		}
	}
	crossStages := []obs.Stage{
		obs.StageIngest, obs.StageSeal, obs.StagePropose, obs.StageLockGrant,
		obs.StagePrepared, obs.StageCommitted, obs.StagePersisted, obs.StageReplied,
	}
	for _, tr := range cross {
		checkMonotonic(t, tr, crossStages)
	}
}

func TestTraceStagesMonotonicByzantine(t *testing.T) {
	d := traceDeployment(t, types.Byzantine)
	intra, cross := collectTraces(d)
	if len(intra) == 0 || len(cross) == 0 {
		t.Fatalf("expected both series traced, got intra=%d cross=%d", len(intra), len(cross))
	}
	for _, tr := range append(intra, cross...) {
		checkMonotonic(t, tr, []obs.Stage{
			obs.StageIngest, obs.StageCommitted, obs.StageReplied,
		})
	}
}

// TestFleetMetricsSnapshot checks the merged roll-up carries the series every
// layer registers, with the stage histograms fed by the tracer.
func TestFleetMetricsSnapshot(t *testing.T) {
	d := traceDeployment(t, types.CrashOnly)
	merged := d.MetricsSnapshot()
	if len(merged) == 0 {
		t.Fatal("merged snapshot empty")
	}
	byName := make(map[string]obs.Metric, len(merged))
	for _, m := range merged {
		byName[m.Name] = m
	}
	if c := byName["committed_txs"]; c.Value == 0 {
		t.Error("committed_txs not counted")
	}
	for _, name := range []string{"stage_intra_total_us", "stage_cross_total_us",
		"stage_cross_lock_grant_us"} {
		h, ok := byName[name]
		if !ok || h.Count == 0 {
			t.Errorf("histogram %s missing or empty (ok=%v count=%d)", name, ok, h.Count)
		}
	}
	for _, name := range []string{"sched_grants", "sched_decides"} {
		if byName[name].Value == 0 {
			t.Errorf("gauge %s is zero", name)
		}
	}
	// The wire round-trip must preserve the snapshot (the driver's roll-up
	// path decodes exactly this).
	node := d.Nodes()[0]
	snap := node.Metrics().Snapshot()
	dump := &types.MetricsDump{Node: node.ID(), Metrics: obs.MetricsToWire(snap)}
	dec, err := types.DecodeMetricsDump(dump.Encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	back := obs.MetricsFromWire(dec.Metrics)
	if len(back) != len(snap) {
		t.Fatalf("wire round-trip lost metrics: %d != %d", len(back), len(snap))
	}
	for i := range snap {
		if back[i].Name != snap[i].Name || back[i].Kind != snap[i].Kind {
			t.Fatalf("metric %d mismatch: %+v vs %+v", i, back[i], snap[i])
		}
	}
}
