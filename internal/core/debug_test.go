package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharper/internal/paxos"
	"sharper/internal/types"
	"sharper/internal/workload"
)

// TestStressMixedCrash drives a contended mixed workload and dumps node
// state if anything wedges, to keep liveness regressions debuggable.
func TestStressMixedCrash(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewClient()
			c.Timeout = 5 * time.Second
			for j := 0; j < perClient; j++ {
				var ops []types.Op
				switch j % 4 {
				case 0:
					ops = intraOps(d, types.ClusterID(k%4))
				case 1:
					ops = crossOps(d, types.ClusterID(k%4), types.ClusterID((k+1)%4))
				case 2:
					ops = crossOps(d, types.ClusterID((k+2)%4), types.ClusterID((k+3)%4))
				default:
					ops = intraOps(d, types.ClusterID((k+1)%4))
				}
				if _, _, err := c.Transfer(ops); err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("client %d tx %d: %v", k, j, err))
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(failures) == 0 {
		waitQuiesce(t, d)
		if err := d.DAG().Verify(); err != nil {
			t.Fatalf("DAG verify: %v", err)
		}
		return
	}
	for _, f := range failures {
		t.Log(f)
	}
	d.Stop() // quiesce node goroutines before reading their state
	for _, n := range d.Nodes() {
		t.Logf("node %s cluster %s: locked=%v waiting=%d pending=%d pendingIntra=%d pendingCross=%d deferred=%d pendingApply=%d committed=%d viewLen=%d anomalies=%d primary=%v",
			n.ID(), n.Cluster(), n.cross.Locked(), n.cross.Waiting(), n.cross.Pending(),
			len(n.pendingIntra), len(n.pendingCross), len(n.deferred), len(n.pendingApply),
			n.Committed(), n.view.Len(), n.Anomalies(), n.intra.IsPrimary())
	}
	t.Fatal("stall reproduced")
}

// TestStressMixedByz mirrors TestStressMixedCrash under the Byzantine model,
// dumping cross-engine internals on a stall.
func TestStressMixedByz(t *testing.T) {
	d := newTestDeployment(t, types.Byzantine, 4)
	const clients = 8
	const perClient = 20
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c := d.NewClient()
			c.Timeout = 3 * time.Second
			c.MaxAttempts = 4
			for j := 0; j < perClient; j++ {
				var ops []types.Op
				switch j % 4 {
				case 0:
					ops = intraOps(d, types.ClusterID(k%4))
				case 1:
					ops = crossOps(d, types.ClusterID(k%4), types.ClusterID((k+1)%4))
				case 2:
					ops = crossOps(d, types.ClusterID((k+2)%4), types.ClusterID((k+3)%4))
				default:
					ops = intraOps(d, types.ClusterID((k+1)%4))
				}
				if _, _, err := c.Transfer(ops); err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("client %d tx %d: %v", k, j, err))
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(failures) == 0 {
		waitQuiesce(t, d)
		if err := d.DAG().Verify(); err != nil {
			t.Fatalf("DAG verify: %v", err)
		}
		return
	}
	for _, f := range failures {
		t.Log(f)
	}
	d.Stop() // quiesce node goroutines before reading their state
	for _, n := range d.Nodes() {
		x := n.cross.(*xbyz)
		extra := ""
		for dg, inst := range x.instances {
			extra += fmt.Sprintf(" inst[%s]{view=%d sentA=%v sentC=%v txs=%d}", dg, inst.view, inst.sentAccept, inst.sentCommit, len(inst.txs))
		}
		for dg, lead := range x.leads {
			extra += fmt.Sprintf(" lead[%s]{view=%d att=%d dormant=%v}", dg, lead.view, lead.attempts, lead.dormant)
		}
		st := n.chainStatus()
		holder, _ := x.table.Holder()
		t.Logf("node %s %s: locked=%v(%s) waiting=%d drained=%v pi=%d pc=%d def=%d pa=%d commit=%d len=%d%s",
			n.ID(), n.Cluster(), x.table.Held(), holder, len(x.waiting), st.Drained,
			len(n.pendingIntra), len(n.pendingCross), len(n.deferred), len(n.pendingApply),
			n.Committed(), n.view.Len(), extra)
	}
	t.Fatal("stall reproduced")
}

// TestStressWorkloadCrash drives the bench-style random-pair workload that
// exposed wedges the fixed-pair stress tests missed.
func TestStressWorkloadCrash(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	gen := workload.New(workload.Config{
		Shards:           d.Shards,
		AccountsPerShard: 64,
		CrossShardPct:    20,
		ShardsPerCross:   2,
		Seed:             99,
	})
	const clients = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := d.NewClient()
			c.Timeout = 3 * time.Second
			c.MaxAttempts = 3
			for j := 0; j < 40; j++ {
				if _, _, err := c.Transfer(g.Next()); err != nil {
					mu.Lock()
					failures = append(failures, fmt.Sprintf("client %d tx %d: %v", k, j, err))
					mu.Unlock()
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if len(failures) == 0 {
		waitQuiesce(t, d)
		if err := d.DAG().Verify(); err != nil {
			t.Fatalf("DAG verify: %v", err)
		}
		return
	}
	for _, f := range failures {
		t.Log(f)
	}
	d.Stop() // quiesce node goroutines before reading their state
	for _, n := range d.Nodes() {
		x := n.cross.(*xcrash)
		extra := ""
		for dg, lead := range x.leads {
			extra += fmt.Sprintf(" lead[%s]{view=%d att=%d dormant=%v inv=%s}", dg, lead.view, lead.attempts, lead.dormant, lead.involved)
		}
		for dg := range x.waiting {
			extra += fmt.Sprintf(" wait[%s]", dg)
		}
		st := n.chainStatus()
		eng := ""
		if pe, ok := n.intra.(*paxos.Engine); ok {
			eng = " || " + pe.DebugString()
		}
		holder, _ := x.table.Holder()
		t.Logf("node %s %s: locked=%v(%s) drained=%v viewHead=%s pi=%d pc=%d def=%d pa=%d commit=%d len=%d anom=%d%s%s",
			n.ID(), n.Cluster(), x.table.Held(), holder, st.Drained, n.view.Head(),
			len(n.pendingIntra), len(n.pendingCross), len(n.deferred), len(n.pendingApply),
			n.Committed(), n.view.Len(), n.Anomalies(), extra, eng)
	}
	t.Fatal("stall reproduced")
}

// TestCross100Diag drives a 100% cross-shard workload and dumps protocol
// event counters to diagnose conflict-resolution churn.
func TestCross100Diag(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	gen := workload.New(workload.Config{
		Shards:           d.Shards,
		AccountsPerShard: 64,
		CrossShardPct:    100,
		Seed:             5,
	})
	const clients = 8
	start := time.Now()
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := d.NewClient()
			c.Timeout = 5 * time.Second
			for j := 0; j < 20; j++ {
				if _, _, err := c.Transfer(g.Next()); err == nil {
					done.Add(1)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	t.Logf("committed %d cross txs in %v (%.0f tx/s)", done.Load(), elapsed,
		float64(done.Load())/elapsed.Seconds())
	d.Stop() // quiesce node goroutines before reading their state
	for _, n := range d.Nodes() {
		p, w, g, dec, le := n.cross.(*xcrash).Counters()
		t.Logf("node %s %s: proposes=%d withdraws=%d grants=%d decides=%d lockExpiries=%d pendingCross=%d",
			n.ID(), n.Cluster(), p, w, g, dec, le, len(n.pendingCross))
	}
}

// TestCross100Sustained mirrors the bench harness conditions to find why
// the sweep collapses while short bursts are healthy.
func TestCross100Sustained(t *testing.T) {
	d, err := NewDeployment(Config{Model: types.CrashOnly, Clusters: 4, F: 1, Seed: 42,
		RetryTimeout: 50 * time.Millisecond, LockTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(1024, 1<<40)
	d.Start()
	t.Cleanup(d.Stop)
	gen := workload.New(workload.Config{
		Shards:           d.Shards,
		AccountsPerShard: 1024,
		CrossShardPct:    100,
		ShardsPerCross:   2,
		Amount:           1,
		Seed:             42,
	})
	const clients = 8
	var stop atomic.Bool
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := d.NewClient()
			for !stop.Load() {
				if _, _, err := c.Transfer(g.Next()); err == nil {
					done.Add(1)
				}
			}
		}(i)
	}
	time.Sleep(600 * time.Millisecond)
	stop.Store(true)
	start := done.Load()
	wg.Wait()
	t.Logf("committed %d cross txs in 600ms (%.0f tx/s)", start, float64(start)/0.6)
	d.Stop() // quiesce node goroutines before reading their state
	for _, n := range d.Nodes() {
		p, w, g, dec, le := n.cross.(*xcrash).Counters()
		parks, avgPark, avgLead, avgHold := n.cross.(*xcrash).WaitStats()
		t.Logf("node %s %s: prop=%d wdr=%d grant=%d dec=%d lockExp=%d pc=%d pi=%d parks=%d avgParkMs=%.1f avgLeadMs=%.2f avgHoldMs=%.2f",
			n.ID(), n.Cluster(), p, w, g, dec, le, len(n.pendingCross), len(n.pendingIntra),
			parks, avgPark, avgLead, avgHold)
	}
}
