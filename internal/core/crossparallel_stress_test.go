package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sharper/internal/types"
	"sharper/internal/workload"
)

// TestCrossParallelStress hammers the conflict-aware scheduler with a mixed
// disjoint/overlapping cross-heavy workload — the regime where pipelined
// leads, slot-precise deferral, and the lock-ordering launch gate all fire
// constantly — then audits that no two replicas of a cluster ever committed
// different blocks at one height and that every cross-shard block reached
// every involved cluster. On divergence it dumps every node's intra AND
// cross trace rings (SHARPER_TRACE is enabled for the run; both rings carry
// wall-clock prefixes so they merge into one timeline), which is exactly the
// evidence the ROADMAP's intra/cross fork hunt needs.
func TestCrossParallelStress(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   TransportKind
		sets workload.CrossSetMode
		pct  int
	}{
		{"sim-mixed", TransportSim, workload.SetsMixed, 90},
		{"tcp-mixed", TransportTCP, workload.SetsMixed, 90},
		{"tcp-random", TransportTCP, workload.SetsRandom, 50},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			runCrossParallelStress(t, tc.tr, tc.sets, tc.pct)
		})
	}
}

func runCrossParallelStress(t *testing.T, tr TransportKind, sets workload.CrossSetMode, crossPct int) {
	t.Setenv("SHARPER_TRACE", "1")
	cfg := Config{
		Model:     types.CrashOnly,
		Clusters:  4,
		F:         1,
		Seed:      11,
		Transport: tr,
		BatchSize: 8,
	}
	if tr == TransportSim {
		cfg.Network.DropProb = 0.005
		cfg.Network.Seed = 11
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(256, 1_000_000)
	d.Start()
	defer d.Stop()

	gen := workload.New(workload.Config{
		Shards:           d.Shards,
		AccountsPerShard: 256,
		CrossShardPct:    crossPct,
		ShardsPerCross:   2,
		CrossSets:        sets,
		OverlapPct:       50,
		Seed:             11,
	})
	const clients = 24
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := d.NewClient()
			c.Timeout = 2 * time.Second
			c.MaxAttempts = 4
			for !stop.Load() {
				c.Transfer(g.Next())
			}
		}(i)
	}
	time.Sleep(1500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	time.Sleep(500 * time.Millisecond)

	// Audit 1: within each cluster, same height ⇒ same block.
	var diverged bool
	for _, cid := range d.Topo.ClusterIDs() {
		members := d.Topo.Members(cid)
		ref := d.Node(members[0]).View()
		for _, m := range members[1:] {
			v := d.Node(m).View()
			n := ref.Len()
			if v.Len() < n {
				n = v.Len()
			}
			for i := 0; i < n; i++ {
				if ref.Block(i).Hash() != v.Block(i).Hash() {
					diverged = true
					t.Errorf("cluster %s DIVERGED at height %d: %s=%v (inv=%v) vs %s=%v (inv=%v)",
						cid, i,
						members[0], ref.Block(i).Txs[0].ID, ref.Block(i).Involved(),
						m, v.Block(i).Txs[0].ID, v.Block(i).Involved())
				}
			}
		}
	}
	// Audit 2: the union DAG (cross-shard presence + pairwise order).
	if err := d.DAG().Verify(); err != nil {
		diverged = true
		t.Errorf("DAG verify: %v", err)
	}
	if !diverged {
		return
	}
	// Divergence: dump both protocol rings of every node, merged evidence
	// for the fork hunt.
	for _, n := range d.Nodes() {
		t.Logf("===== node %s (cluster %s) =====", n.ID(), n.Cluster())
		for _, l := range n.DebugTrace() {
			t.Log("  I " + l)
		}
		if x, ok := n.cross.(*xcrash); ok {
			for _, l := range x.DebugTrace() {
				t.Log("  X " + l)
			}
		}
		t.Logf("  stats=%+v", *n.Counters())
	}
	t.Fatal("cross-parallel stress diverged; trace rings above")
}

// TestCrossParallelSchedulerCounters asserts the observability surface moves
// under a cross-heavy run: leads launch, proposals park, and slot-precise
// deferral avoids at least some node-wide stalls.
func TestCrossParallelSchedulerCounters(t *testing.T) {
	d := newTestDeployment(t, types.CrashOnly, 4)
	gen := workload.New(workload.Config{
		Shards:           d.Shards,
		AccountsPerShard: 64,
		CrossShardPct:    80,
		ShardsPerCross:   2,
		Seed:             7,
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			g := gen.Split(k)
			c := d.NewClient()
			c.Timeout = 5 * time.Second
			for j := 0; j < 30; j++ {
				c.Transfer(g.Next())
			}
		}(i)
	}
	wg.Wait()
	d.Stop() // quiesce node goroutines before reading their counters
	var agg types.SchedStats
	for _, n := range d.Nodes() {
		s := n.Counters()
		if s.Node != n.ID() {
			t.Fatalf("counters carry node %v, want %v", s.Node, n.ID())
		}
		agg.Add(s)
	}
	if agg.Proposes == 0 || agg.Grants == 0 || agg.Decides == 0 {
		t.Fatalf("cross-shard counters did not move: %+v", agg)
	}
	if agg.LeadHighWater == 0 {
		t.Fatalf("no lead ever registered in the conflict table: %+v", agg)
	}
}
