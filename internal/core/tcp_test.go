package core

import (
	"testing"
	"time"

	"sharper/internal/types"
)

// tcpConfig is a crash-model TCP deployment tuned for test latency: short
// suspicion timers so view changes finish quickly.
func tcpConfig(clusters int) Config {
	return Config{
		Model:        types.CrashOnly,
		Clusters:     clusters,
		F:            1,
		Transport:    TransportTCP,
		Seed:         11,
		IntraTimeout: 200 * time.Millisecond,
		TickInterval: 2 * time.Millisecond,
	}
}

func startTCP(t *testing.T, cfg Config) *Deployment {
	t.Helper()
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)
	return d
}

// TestTCPDeploymentCommits boots a full crash-model deployment over real
// loopback TCP sockets and commits a mixed intra-/cross-shard workload,
// then audits the assembled DAG — the §5 setting (real networked replicas)
// that the simulated fabric only models.
func TestTCPDeploymentCommits(t *testing.T) {
	d := startTCP(t, tcpConfig(3))
	c := d.NewClient()
	c.Timeout = 2 * time.Second

	// Intra-shard traffic in every shard.
	for shard := 0; shard < 3; shard++ {
		from := d.Shards.AccountInShard(types.ClusterID(shard), 0)
		to := d.Shards.AccountInShard(types.ClusterID(shard), 1)
		ok, _, err := c.Transfer([]types.Op{{From: from, To: to, Amount: 5}})
		if err != nil {
			t.Fatalf("intra tx shard %d: %v", shard, err)
		}
		if !ok {
			t.Fatalf("intra tx shard %d not committed", shard)
		}
	}
	// Cross-shard traffic over two different cluster pairs.
	for i, pair := range [][2]types.ClusterID{{0, 1}, {1, 2}, {0, 2}} {
		from := d.Shards.AccountInShard(pair[0], 2)
		to := d.Shards.AccountInShard(pair[1], 2)
		ok, _, err := c.Transfer([]types.Op{{From: from, To: to, Amount: int64(i + 1)}})
		if err != nil {
			t.Fatalf("cross tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("cross tx %d not committed", i)
		}
	}

	waitConverged(t, d)
	dag := d.DAG()
	if err := dag.Verify(); err != nil {
		t.Fatalf("DAG audit: %v", err)
	}
	if err := dag.VerifyPairwiseOrder(); err != nil {
		t.Fatalf("pairwise order audit: %v", err)
	}
	for _, n := range d.Nodes() {
		if n.Anomalies() != 0 {
			t.Fatalf("node %s observed %d ledger anomalies", n.ID(), n.Anomalies())
		}
	}
}

// waitConverged waits until every replica of each cluster converges on the
// same chain head (cross-shard commits propagate asynchronously to
// non-initiator replicas).
func waitConverged(t *testing.T, d *Deployment) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		settled := true
		for _, cid := range d.Topo.ClusterIDs() {
			members := d.Topo.Members(cid)
			ref := d.Node(members[0]).View()
			for _, m := range members[1:] {
				v := d.Node(m).View()
				if v.Len() != ref.Len() || v.Head() != ref.Head() {
					settled = false
				}
			}
		}
		if settled {
			return
		}
		if time.Now().After(deadline) {
			t.Log("warning: replicas did not fully converge; auditing representative views")
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPPrimaryCrashViewChange kills a primary's listener (closing its TCP
// fabric — sockets drop, peers' redials fail) and asserts the cluster
// rotates to a new primary and keeps committing.
func TestTCPPrimaryCrashViewChange(t *testing.T) {
	d := startTCP(t, tcpConfig(2))
	c := d.NewClient()
	c.Timeout = 400 * time.Millisecond
	c.MaxAttempts = 30

	from := d.Shards.AccountInShard(0, 0)
	to := d.Shards.AccountInShard(0, 1)
	if ok, _, err := c.Transfer([]types.Op{{From: from, To: to, Amount: 1}}); err != nil || !ok {
		t.Fatalf("pre-crash tx: ok=%v err=%v", ok, err)
	}

	// The initial primary of cluster 0 is its first member (view 0).
	primary := d.Topo.Members(0)[0]
	d.CrashNode(primary)

	// The cluster must rotate and keep committing without the primary.
	for i := 0; i < 3; i++ {
		ok, _, err := c.Transfer([]types.Op{{From: from, To: to, Amount: 1}})
		if err != nil {
			t.Fatalf("post-crash tx %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("post-crash tx %d not committed", i)
		}
	}

	// A surviving replica's chain advanced past the pre-crash commit.
	survivor := d.Topo.Members(0)[1]
	if got := d.Node(survivor).View().Len(); got < 4 {
		t.Fatalf("survivor chain too short after view change: %d blocks", got)
	}
}

// TestTCPByzantineDeployment runs the Byzantine model (PBFT + MAC vectors +
// f+1 reply quorums) over real sockets.
func TestTCPByzantineDeployment(t *testing.T) {
	cfg := tcpConfig(2)
	cfg.Model = types.Byzantine
	d := startTCP(t, cfg)
	c := d.NewClient()
	c.Timeout = 2 * time.Second

	from := d.Shards.AccountInShard(0, 0)
	to := d.Shards.AccountInShard(1, 0)
	ok, _, err := c.Transfer([]types.Op{{From: from, To: to, Amount: 3}})
	if err != nil {
		t.Fatalf("byzantine cross tx: %v", err)
	}
	if !ok {
		t.Fatal("byzantine cross tx not committed")
	}
	waitConverged(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG audit: %v", err)
	}
}

// TestBatchSizeValidated asserts the explicit error for batches beyond the
// cross-shard validity-bitmap width (formerly a silent cap).
func TestBatchSizeValidated(t *testing.T) {
	_, err := NewDeployment(Config{Model: types.CrashOnly, Clusters: 2, F: 1, BatchSize: MaxBatchSize + 1})
	if err == nil {
		t.Fatalf("BatchSize %d accepted", MaxBatchSize+1)
	}
	d, err := NewDeployment(Config{Model: types.CrashOnly, Clusters: 2, F: 1, BatchSize: MaxBatchSize})
	if err != nil {
		t.Fatalf("BatchSize %d rejected: %v", MaxBatchSize, err)
	}
	d.Stop()
}
