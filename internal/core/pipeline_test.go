package core

import (
	"path/filepath"
	"testing"
	"time"

	"sharper/internal/types"
)

// TestPipelineCrashRecoveryReplaysUnappliedSuffix is the commit-pipeline
// crash scenario: a replica dies with a checkpointed prefix on disk plus a
// chain-log suffix the checkpoint does not cover (committed and durable,
// but whose store effects live only in the dead process's memory). The
// restarted incarnation must replay that suffix over the snapshot — with
// the logged validity bitmaps, so remote shards' vetoes reproduce — and
// rebuild the reply cache so a retransmission of a pre-crash transaction
// is re-replied with its original verdict instead of re-ordered.
func TestPipelineCrashRecoveryReplaysUnappliedSuffix(t *testing.T) {
	d, err := NewDeployment(Config{
		Model: types.CrashOnly, Clusters: 2, F: 1, Seed: 99,
		DataDir: t.TempDir(), CheckpointInterval: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(32, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)

	c := d.NewClient()
	workload := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			var ops []types.Op
			if i%3 == 2 {
				ops = crossOps(d, 0, 1)
			} else {
				ops = intraOps(d, 0)
			}
			if _, _, err := c.Transfer(ops); err != nil {
				t.Fatalf("tx %d: %v", i, err)
			}
		}
	}

	victim := d.Topo.Members(0)[2]
	workload(10)
	// A vetoed cross-shard overdraft ordered before the crash: its verdict
	// must survive the restart via log replay, not re-execution guesswork.
	overdraft := c.MakeTx([]types.Op{{
		From:   d.Shards.AccountInShard(1, 0),
		To:     d.Shards.AccountInShard(0, 0),
		Amount: 5_000_000, // seeded balance is 1M
	}})
	if ok, _, err := c.Submit(overdraft); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("overdraft reported committed")
	}
	workload(10)
	waitQuiesce(t, d)

	// The scenario needs both halves on disk: a checkpoint (the applied
	// prefix) and chain-log blocks past it (the unapplied suffix).
	lenAtCrash := d.Node(victim).View().Len()
	ckpts, err := filepath.Glob(filepath.Join(NodeDataDir(d.DataDir(), victim), "checkpoint-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) == 0 {
		t.Fatalf("no checkpoint written after %d blocks (interval 4); suffix replay untested", lenAtCrash)
	}
	d.CrashNode(victim)
	workload(6) // the cluster keeps committing while the victim is down

	n2, err := d.RestartNode(victim)
	if err != nil {
		t.Fatal(err)
	}
	if got := n2.RecoveredBlocks(); got < lenAtCrash-1 {
		t.Fatalf("recovered only %d blocks from storage; had %d before the crash", got, lenAtCrash-1)
	}
	// The reply cache must hold the pre-crash verdict immediately after
	// recovery — before any catch-up traffic — or a retransmission would be
	// re-proposed and double-ordered.
	if r, ok := n2.replyCache.Get(overdraft.ID); !ok {
		t.Fatal("restarted replica lost the overdraft's reply-cache entry")
	} else if r.Committed {
		t.Fatal("restarted replica reconstructed the overdraft as committed")
	}

	ref := d.Node(d.Topo.Members(0)[0])
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n2.View().Len() >= ref.View().Len() && n2.View().Head() == ref.View().Head() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica stuck at %d blocks, peer at %d",
				n2.View().Len(), ref.View().Len())
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitQuiesce(t, d)

	// End-to-end verdict reconstruction: the client retransmits the exact
	// pre-crash transaction and must get the original rejection back.
	if ok, _, err := c.Submit(overdraft); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("retransmitted overdraft committed after restart")
	}

	want := ref.Store().Snapshot()
	got := n2.Store().Snapshot()
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("account %s: restarted replica has %d, peer %d", k, got[k], v)
		}
	}
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify after restart: %v", err)
	}
}

// TestPipelineFingerprintMatchesInlineCommit is the parallel-apply
// equivalence audit, in-process: the same workload runs once through the
// pipelined commit path (conflict-partitioned parallel apply) and once
// through the legacy inline path (strictly serial apply on the event
// loop). Balances are seeded high enough that every transfer succeeds, so
// the final state depends only on the set of committed transactions — any
// divergence means the wave partitioning let conflicting transactions
// race. Run under -race this also exercises the stripe locking itself.
func TestPipelineFingerprintMatchesInlineCommit(t *testing.T) {
	run := func(inline bool) *Deployment {
		d, err := NewDeployment(Config{
			Model: types.CrashOnly, Clusters: 2, F: 1, Seed: 7,
			InlineCommit: inline,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.SeedAccounts(64, 1_000_000)
		d.Start()
		c := d.NewClient()
		for i := 0; i < 30; i++ {
			var ops []types.Op
			if i%4 == 3 {
				ops = crossOps(d, 0, 1)
			} else {
				ops = []types.Op{{
					From:   d.Shards.AccountInShard(types.ClusterID(i%2), uint64(i%8)),
					To:     d.Shards.AccountInShard(types.ClusterID(i%2), uint64((i+1)%8)),
					Amount: 5,
				}}
			}
			if ok, _, err := c.Transfer(ops); err != nil {
				t.Fatalf("inline=%v tx %d: %v", inline, i, err)
			} else if !ok {
				t.Fatalf("inline=%v tx %d rejected", inline, i)
			}
		}
		waitQuiesce(t, d)
		d.Stop() // drains the pipeline; fingerprints below are final
		return d
	}
	piped := run(false)
	serial := run(true)

	for _, cid := range []types.ClusterID{0, 1} {
		members := piped.Topo.Members(cid)
		ref := serial.Node(members[0]).Store().Fingerprint()
		for _, m := range members {
			if got := piped.Node(m).Store().Fingerprint(); got != ref {
				t.Fatalf("cluster %s node %s: pipelined fingerprint diverged from inline commit", cid, m)
			}
			if got := serial.Node(m).Store().Fingerprint(); got != ref {
				t.Fatalf("cluster %s node %s: inline replicas disagree among themselves", cid, m)
			}
		}
	}
}

// TestPipelineBackpressureKeepsCommitting pins the pipeline's backpressure
// contract: with a pathologically small executor bound the loop must stop
// *proposing* when the pipeline is full — never stop receiving — so the
// deployment stays live (slowly) instead of deadlocking or dropping
// blocks, and every block still applies exactly once.
func TestPipelineBackpressureKeepsCommitting(t *testing.T) {
	d, err := NewDeployment(Config{
		Model: types.CrashOnly, Clusters: 2, F: 1, Seed: 21,
		PipelineDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SeedAccounts(64, 1_000_000)
	d.Start()
	t.Cleanup(d.Stop)

	c := d.NewClient()
	for i := 0; i < 24; i++ {
		var ops []types.Op
		if i%4 == 3 {
			ops = crossOps(d, 0, 1)
		} else {
			ops = intraOps(d, types.ClusterID(i%2))
		}
		if ok, _, err := c.Transfer(ops); err != nil {
			t.Fatalf("tx %d: %v", i, err)
		} else if !ok {
			t.Fatalf("tx %d rejected", i)
		}
	}
	waitQuiesce(t, d)
	if err := d.DAG().Verify(); err != nil {
		t.Fatalf("DAG verify: %v", err)
	}
	for _, n := range d.Nodes() {
		if n.Anomalies() != 0 {
			t.Fatalf("node %s recorded %d anomalies under backpressure", n.ID(), n.Anomalies())
		}
	}
}
